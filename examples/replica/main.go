// replica: primary/backup epoch shipping and failover for the shard
// service.
//
// A primary shard.Service replicates every group-commit uCheckpoint:
// after a batch's pages are durable locally, the captured dirty-page
// delta ships over a simulated link to a follower on its own disk
// array, which applies it as one synchronous uCheckpoint and acks. In
// sync mode the client ack waits for the follower ack, so an
// acknowledged write is durable on BOTH replicas.
//
// The example serves replicated writes, then cuts the link, cuts
// power on the primary mid-commit, promotes the follower through the
// standard manifest recovery path, recovers the torn ex-primary and
// rejoins it as a follower, and proves both replicas converge to
// byte-identical regions.
//
//	go run ./examples/replica
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"memsnap"
	"memsnap/internal/replica"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
)

const shards = 4

func main() {
	cfg := memsnap.Config{CPUs: shards, DiskBytesEach: 512 << 20}
	primary, err := memsnap.NewStore(cfg)
	if err != nil {
		log.Fatal(err)
	}
	backup, err := memsnap.NewStore(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Wire the pair: link, follower endpoint, sync shipper, service.
	fol, err := replica.NewFollower(backup, replica.FollowerConfig{Shards: shards})
	if err != nil {
		log.Fatal(err)
	}
	link := replica.NewLink(replica.LinkConfig{Seed: 7})
	ship := replica.NewShipper(link, fol, shards, replica.Config{Mode: replica.Sync})
	svc, err := shard.New(primary, shard.Config{Shards: shards, BatchSize: 8, Replicator: ship})
	if err != nil {
		log.Fatal(err)
	}
	ship.Attach(svc)

	// Phase 1: replicated serving. Every acked write is durable on
	// both sides of the link before the client hears about it.
	for i := 0; i < 60; i++ {
		if err := svc.Put("acct", fmt.Sprintf("k-%03d", i), uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	seeded, err := svc.TotalValueSum()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("60 sync-replicated puts served (value sum %d)\n\n", seeded)
	fmt.Println("shard  shipped  acked  ack p99(us)  follower seq")
	folStats := fol.Stats()
	for _, rs := range ship.Stats() {
		fmt.Printf("%5d  %7d  %5d  %11.1f  %12d\n",
			rs.Shard, rs.Shipped, rs.Acked,
			float64(rs.AckLatency.P99)/float64(time.Microsecond),
			folStats[rs.Shard].LastSeq)
	}

	// Phase 2: cut the link, then keep writing. Sync mode turns a
	// dead link into a clean client-visible error — never a silent
	// loss.
	linkCutAt := svc.TotalStats().LastCommitDurable + time.Millisecond
	link.Cut(linkCutAt)
	acked, failed := 0, 0
	ackedKeys := map[string]uint64{}
	for i := 0; i < 20; i++ {
		k, v := fmt.Sprintf("tail-%02d", i), uint64(1000+i)
		err := svc.Put("acct", k, v)
		switch {
		case err == nil:
			acked++
			ackedKeys[k] = v
		case errors.Is(err, replica.ErrLinkDown):
			failed++
		default:
			log.Fatalf("tail put: unclean error %v", err)
		}
	}
	fmt.Printf("\nlink cut at %v: %d tail puts acked before, %d failed cleanly after\n", linkCutAt, acked, failed)

	// Phase 3: kill the primary — power cut inside its final commit
	// window, after the usual clean drain of the request queues.
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	var powerCutAt time.Duration
	for _, st := range svc.Stats() {
		if st.LastCommitSubmit > powerCutAt {
			powerCutAt = st.LastCommitSubmit
		}
	}
	powerCutAt += time.Nanosecond
	primary.Array().CutPower(powerCutAt, sim.NewRNG(7))
	ship.Close()
	fmt.Printf("primary power cut at %v\n\n", powerCutAt)

	// Phase 4: failover. The follower promotes through the standard
	// shard manifest recovery path: every region lands on its last
	// FULLY APPLIED delta (each delta applied as one uCheckpoint, so
	// a torn delta is impossible), under a bumped replication era.
	ship2 := replica.NewShipper(link, nil, shards, replica.Config{})
	svc2, err := fol.Promote(shard.Config{BatchSize: 8, Replicator: ship2})
	if err != nil {
		log.Fatal(err)
	}
	ship2.Attach(svc2)
	fmt.Println("promoted follower:  shard  seq  era  manifest==scan")
	for _, rec := range svc2.Recovery() {
		fmt.Printf("%24d  %3d  %3d  %v\n", rec.Shard, rec.Seq, rec.Era, rec.Consistent())
		if !rec.Existing || !rec.Consistent() {
			log.Fatal("TORN REPLICA — delta application was not atomic")
		}
	}
	for k, v := range ackedKeys {
		got, found, err := svc2.Get("acct", k)
		if err != nil {
			log.Fatal(err)
		}
		if !found || got != v {
			log.Fatalf("acked write %q lost in failover", k)
		}
	}
	fmt.Println("every acknowledged write survived the failover")

	// New epochs on the new primary while the old machine is down.
	for i := 0; i < 10; i++ {
		if err := svc2.Put("acct", fmt.Sprintf("new-%02d", i), 7); err != nil {
			log.Fatal(err)
		}
	}
	ship2.Flush()

	// Phase 5: reconciliation. Recover the ex-primary from its torn
	// disks, rejoin it as a follower, heal the link. Its regions may
	// hold epochs the new primary never acked (divergent era), so
	// Reconcile discards them via full-region snapshots.
	recovered, doneAt, err := memsnap.RecoverStore(cfg, primary.Array(), powerCutAt)
	if err != nil {
		log.Fatal(err)
	}
	fol2, err := replica.NewFollower(recovered, replica.FollowerConfig{Shards: shards, StartAt: doneAt})
	if err != nil {
		log.Fatal(err)
	}
	restoreAt := doneAt + time.Millisecond
	if end := svc2.EndTime(); end+time.Millisecond > restoreAt {
		restoreAt = end + time.Millisecond
	}
	link.Restore(restoreAt)
	ship2.Connect(fol2)
	if err := ship2.Reconcile(restoreAt); err != nil {
		log.Fatal(err)
	}

	digA, err := svc2.ShardDigests()
	if err != nil {
		log.Fatal(err)
	}
	digB := fol2.Digests()
	fmt.Println("\nreconciled ex-primary: shard  snapshots  digests match")
	for i, fs := range fol2.Stats() {
		fmt.Printf("%27d  %9d  %v\n", fs.Shard, fs.Snapshots, digA[i] == digB[i])
		if digA[i] != digB[i] {
			log.Fatal("REPLICAS DIVERGED after reconciliation")
		}
	}
	fmt.Println("both replicas hold byte-identical regions.")

	fmt.Println("\n--- prometheus exposition (new primary + rejoined follower) ---")
	if err := svc2.FormatPrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := ship2.FormatPrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := fol2.FormatPrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if err := svc2.Close(); err != nil {
		log.Fatal(err)
	}
	ship2.Close()
}
