// banktx: atomic multi-page transactions without a WAL.
//
// A bank keeps one account per page. Transfers debit one account and
// credit another — two dirty pages that MUST persist atomically, or a
// crash could create or destroy money. With the file API this is the
// classic motivating case for write-ahead logging; with MemSnap a
// transfer is two in-place writes plus one Persist.
//
// The example runs transfers, cuts power mid-transfer at a random
// moment, recovers, and audits the invariant: total money is exactly
// what completed transfers imply.
//
//	go run ./examples/banktx
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"memsnap"
	"memsnap/internal/sim"
)

const (
	accounts       = 256
	initialBalance = 1000
)

func accountOffset(id int) int64 { return int64(id) * memsnap.PageSize }

func readBalance(ctx *memsnap.Context, r *memsnap.Region, id int) int64 {
	buf := make([]byte, 8)
	ctx.ReadAt(r, accountOffset(id), buf)
	return int64(binary.LittleEndian.Uint64(buf))
}

func writeBalance(ctx *memsnap.Context, r *memsnap.Region, id int, v int64) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	ctx.WriteAt(r, accountOffset(id), buf)
}

func main() {
	store, err := memsnap.NewStore(memsnap.Config{})
	if err != nil {
		log.Fatal(err)
	}
	proc := store.NewProcess()
	ctx := proc.NewContext(0)
	bank, err := proc.Open(ctx, "bank", accounts*memsnap.PageSize)
	if err != nil {
		log.Fatal(err)
	}

	// Fund the accounts (one uCheckpoint for the whole ledger).
	for id := 0; id < accounts; id++ {
		writeBalance(ctx, bank, id, initialBalance)
	}
	if _, err := ctx.Persist(bank, memsnap.Sync); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("funded %d accounts with %d each\n", accounts, initialBalance)

	// Run transfers; each one is: debit, credit, persist.
	rng := sim.NewRNG(7)
	acked := 0
	var lastStart time.Duration
	const transfers = 500
	for i := 0; i < transfers; i++ {
		from, to := rng.Intn(accounts), rng.Intn(accounts)
		if from == to {
			continue
		}
		amount := int64(1 + rng.Intn(100))
		lastStart = ctx.Clock().Now()
		writeBalance(ctx, bank, from, readBalance(ctx, bank, from)-amount)
		writeBalance(ctx, bank, to, readBalance(ctx, bank, to)+amount)
		if _, err := ctx.Persist(bank, memsnap.Sync); err != nil {
			log.Fatal(err)
		}
		acked++
	}

	// Crash at a random instant inside the final transfer's commit
	// window: it either fully persisted or is fully invisible.
	end := ctx.Clock().Now()
	cut := lastStart + time.Duration(rng.Int63n(int64(end-lastStart)+1))
	store.Array().CutPower(cut, rng)
	fmt.Printf("ran %d transfers; power cut at %v (last commit window %v..%v)\n",
		acked, cut, lastStart, end)

	// Recover and audit.
	store2, at, err := memsnap.RecoverStore(memsnap.Config{}, store.Array(), end)
	if err != nil {
		log.Fatal(err)
	}
	proc2 := store2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	bank2, err := proc2.Open(ctx2, "bank", accounts*memsnap.PageSize)
	if err != nil {
		log.Fatal(err)
	}

	var total int64
	for id := 0; id < accounts; id++ {
		total += readBalance(ctx2, bank2, id)
	}
	want := int64(accounts * initialBalance)
	fmt.Printf("audited total after crash: %d (expected %d)\n", total, want)
	if total != want {
		log.Fatal("MONEY WAS CREATED OR DESTROYED — atomicity violated")
	}
	fmt.Println("ledger is consistent: every transfer was all-or-nothing, with no WAL anywhere.")
}
