// Quickstart: the MemSnap programming model in one file.
//
// Open a persistent region, mutate it in place, call Persist — no
// files, no WAL, no serialization. Then crash the machine and recover
// everything from the μCheckpoints.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"memsnap"
	"memsnap/internal/sim"
)

func main() {
	// A Store is a simulated machine: memory, TLBs and a two-SSD
	// array with a COW object store.
	store, err := memsnap.NewStore(memsnap.Config{})
	if err != nil {
		log.Fatal(err)
	}

	proc := store.NewProcess()
	ctx := proc.NewContext(0) // one application thread

	// Regions map at the same virtual address on every open, so
	// in-region pointers survive reboots.
	region, err := proc.Open(ctx, "guestbook", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region %q mapped at %#x (%d KiB)\n", region.Name(), region.Addr(), region.Len()>>10)

	// Mutate memory in place...
	ctx.WriteAt(region, 0, []byte("hello, fearless persistence"))
	ctx.WriteAt(region, 64<<10, []byte("page-granular dirty tracking"))

	// ...and persist the dirty set as one atomic uCheckpoint.
	epoch, err := ctx.Persist(region, memsnap.Sync)
	if err != nil {
		log.Fatal(err)
	}
	b := ctx.LastBreakdown
	fmt.Printf("persisted epoch %d: %d pages in %v (reset %v, IO %v)\n",
		epoch, b.Pages, b.Total, b.ResetTracking, b.WaitIO)

	// Unpersisted writes exist only in memory...
	ctx.WriteAt(region, 0, []byte("THIS WRITE WILL BE LOST..."))

	// ...because now the machine loses power.
	crashTime := ctx.Clock().Now()
	store.Array().CutPower(crashTime, sim.NewRNG(42))
	fmt.Printf("\n*** power cut at %v ***\n\n", crashTime)

	// Reboot: recover the store from the same disks.
	store2, at, err := memsnap.RecoverStore(memsnap.Config{}, store.Array(), crashTime)
	if err != nil {
		log.Fatal(err)
	}
	proc2 := store2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)

	region2, err := proc2.Open(ctx2, "guestbook", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	if region2.Addr() != region.Addr() {
		log.Fatal("region moved across reboot!")
	}

	buf := make([]byte, 28)
	ctx2.ReadAt(region2, 0, buf)
	fmt.Printf("recovered offset 0:    %q\n", buf)
	ctx2.ReadAt(region2, 64<<10, buf)
	fmt.Printf("recovered offset 64K:  %q\n", buf[:28])
	fmt.Printf("recovered epoch:       %d\n", region2.Epoch())
	fmt.Println("\nthe committed uCheckpoint survived; the unpersisted write did not.")
}
