// shardsvc: a sharded multi-tenant KV service with group-commit
// uCheckpoints.
//
// A router hashes (tenant, key) pairs across 8 shards. Each shard owns
// one MemSnap region and a worker that coalesces client writes into
// group commits: one Persist(Async) per batch, with the next batch
// applied in memory while the previous batch's IO is in flight. A
// write is acknowledged only once its group commit is durable.
//
// The example serves a concurrent workload, prints per-shard serving
// statistics, then fires a burst of UNacknowledged transfers, cuts
// power while their commits are mid-flight, recovers, and audits two
// invariants: every acknowledged write survived, and the cross-shard
// value sum is exact (transfers move value, never create it).
//
//	go run ./examples/shardsvc
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"memsnap"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
)

const (
	shards    = 8
	clients   = 4 * shards
	opsPerCli = 100
	bankFunds = 1000
)

// findPair returns two distinct keys that both route to shard sh.
func findPair(svc *shard.Service, tenant string, sh int) (string, string) {
	var pair []string
	for i := 0; len(pair) < 2; i++ {
		key := fmt.Sprintf("acct-%04d", i)
		if svc.ShardOf(tenant, key) == sh {
			pair = append(pair, key)
		}
	}
	return pair[0], pair[1]
}

func main() {
	store, err := memsnap.NewStore(memsnap.Config{CPUs: shards, DiskBytesEach: 512 << 20})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := shard.New(store, shard.Config{Shards: shards, BatchSize: 16})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: concurrent serving. 4 clients per shard, each keeping a
	// window of async requests in flight (a pipelined RPC client), so
	// shard workers find full queues and coalesce writes into group
	// commits.
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			const window = 16
			tenant := fmt.Sprintf("tenant-%02d", c%8)
			var pending []<-chan shard.Response
			drain := func(keep int) {
				for len(pending) > keep {
					if resp := <-pending[0]; resp.Err != nil {
						log.Fatal(resp.Err)
					}
					pending = pending[1:]
				}
			}
			for i := 0; i < opsPerCli; i++ {
				key := fmt.Sprintf("k-%03d", (c*37+i)%64)
				ch, err := svc.DoAsync(shard.Op{Kind: shard.OpAdd, Tenant: tenant, Key: key, Value: 1})
				if err != nil {
					log.Fatal(err)
				}
				pending = append(pending, ch)
				drain(window - 1)
			}
			drain(0)
		}(c)
	}
	wg.Wait()

	fmt.Printf("served %d ops across %d shards (%d clients)\n\n", clients*opsPerCli, shards, clients)
	fmt.Println("shard  ops   commits  occupancy  p50(us)  p99(us)  queueHW")
	for _, st := range svc.Stats() {
		fmt.Printf("%5d  %4d  %7d  %9.1f  %7.1f  %7.1f  %7d\n",
			st.Shard, st.Ops, st.Commits, st.BatchOccupancy,
			float64(st.CommitLatency.P50)/float64(time.Microsecond),
			float64(st.CommitLatency.P99)/float64(time.Microsecond),
			st.QueueHighWater)
	}
	total := svc.TotalStats()
	fmt.Printf("total  %4d  %7d  %9.1f (batching saved %d of %d commits)\n\n",
		total.Ops, total.Commits, total.BatchOccupancy,
		total.Writes-total.Commits, total.Writes)

	// Phase 2: fund one bank account pair per shard (acknowledged, so
	// durable before any cut we inject later).
	var pairs [shards][2]string
	for sh := 0; sh < shards; sh++ {
		from, to := findPair(svc, "bank", sh)
		pairs[sh] = [2]string{from, to}
		if err := svc.Put("bank", from, bankFunds); err != nil {
			log.Fatal(err)
		}
	}
	expected, err := svc.TotalValueSum()
	if err != nil {
		log.Fatal(err)
	}

	// Everything acknowledged so far is durable no later than tSafe.
	tSafe := svc.TotalStats().LastCommitDurable

	// Phase 3: a burst of transfers nobody waits for, then a power cut
	// inside their commit window. Transfers are sum-neutral, so the
	// invariant must hold whichever group commits the cut tears.
	for round := 0; round < 10; round++ {
		for sh := 0; sh < shards; sh++ {
			_, err := svc.DoAsync(shard.Op{
				Kind: shard.OpTransfer, Tenant: "bank",
				Key: pairs[sh][0], Key2: pairs[sh][1], Value: 10,
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	doneAt := svc.EndTime()
	cutAt := svc.TotalStats().LastCommitSubmit + time.Nanosecond
	if cutAt <= tSafe {
		cutAt = tSafe + time.Nanosecond
	}
	store.Array().CutPower(cutAt, sim.NewRNG(7))
	fmt.Printf("power cut at %v (all acked writes durable by %v)\n\n", cutAt, tSafe)

	// Phase 4: recover. Every shard reopens at its last durable epoch;
	// the manifest is cross-checked against a full scan of its slots.
	store2, at, err := memsnap.RecoverStore(memsnap.Config{CPUs: shards, DiskBytesEach: 512 << 20}, store.Array(), doneAt)
	if err != nil {
		log.Fatal(err)
	}
	svc2, err := shard.New(store2, shard.Config{Shards: shards, BatchSize: 16, StartAt: at})
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()

	fmt.Println("shard  epoch  records  value sum  manifest==scan")
	for _, rec := range svc2.Recovery() {
		if !rec.Existing {
			log.Fatalf("shard %d lost its region", rec.Shard)
		}
		fmt.Printf("%5d  %5d  %7d  %9d  %v\n",
			rec.Shard, rec.Epoch, rec.Records, rec.ValueSum, rec.Consistent())
		if !rec.Consistent() {
			log.Fatal("TORN SHARD — manifest does not describe the data")
		}
	}

	recovered, err := svc2.TotalValueSum()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-shard value sum after crash: %d (expected %d)\n", recovered, expected)
	if recovered != expected {
		log.Fatal("VALUE WAS CREATED OR DESTROYED — group commit atomicity violated")
	}
	for sh := 0; sh < shards; sh++ {
		from, _, _ := svc2.Get("bank", pairs[sh][0])
		to, _, _ := svc2.Get("bank", pairs[sh][1])
		if from+to != bankFunds {
			log.Fatalf("shard %d bank pair sums to %d", sh, from+to)
		}
	}
	fmt.Println("every shard recovered to a consistent group commit; all acked writes intact.")
}
