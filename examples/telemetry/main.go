// telemetry: per-thread dirty sets and asynchronous uCheckpoints.
//
// Several collector threads append fixed-size telemetry records into
// disjoint slices of one region. Each thread persists only ITS OWN
// dirty pages — MemSnap tracks dirty sets per thread, so one
// collector's commit never drags along another's half-written batch
// (the isolation that fsync/msync fundamentally cannot provide, §2).
//
// Collectors use Async persists and overlap record generation with
// the previous batch's IO, calling Wait only at batch boundaries.
//
//	go run ./examples/telemetry
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"memsnap"
)

const (
	collectors    = 4
	batches       = 20
	recordsPerBat = 64
	recordSize    = 64
	laneBytes     = 1 << 20 // region slice per collector
)

func main() {
	store, err := memsnap.NewStore(memsnap.Config{})
	if err != nil {
		log.Fatal(err)
	}
	proc := store.NewProcess()
	setup := proc.NewContext(0)
	region, err := proc.Open(setup, "telemetry", collectors*laneBytes)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	type stats struct {
		batches int
		elapsed float64
		asyncUs float64
	}
	results := make([]stats, collectors)

	for c := 0; c < collectors; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := proc.NewContext(c)
			base := int64(c) * laneBytes
			rec := make([]byte, recordSize)
			start := ctx.Clock().Now()

			var lastEpoch memsnap.Epoch
			for b := 0; b < batches; b++ {
				for r := 0; r < recordsPerBat; r++ {
					binary.LittleEndian.PutUint64(rec, uint64(c))
					binary.LittleEndian.PutUint64(rec[8:], uint64(b*recordsPerBat+r))
					off := base + int64((b*recordsPerBat+r)*recordSize)
					ctx.WriteAt(region, off, rec)
				}
				// Initiate the IO and keep collecting; durability is
				// awaited one batch behind.
				if lastEpoch != 0 {
					ctx.Wait(region, lastEpoch)
				}
				epoch, err := ctx.Persist(region, memsnap.Async)
				if err != nil {
					log.Fatal(err)
				}
				lastEpoch = epoch
			}
			ctx.Wait(region, lastEpoch)

			results[c] = stats{
				batches: batches,
				elapsed: (ctx.Clock().Now() - start).Seconds() * 1000,
				asyncUs: float64(ctx.PersistLatency.Mean().Microseconds()),
			}
		}(c)
	}
	wg.Wait()

	fmt.Printf("%d collectors x %d batches x %d records (%d B each), async uCheckpoints:\n\n",
		collectors, batches, recordsPerBat, recordSize)
	for c, st := range results {
		fmt.Printf("collector %d: %d batches in %6.2f ms virtual, mean persist call %5.1f us (async return)\n",
			c, st.batches, st.elapsed, st.asyncUs)
	}

	// Audit: every record from every collector is durable.
	check := proc.NewContext(0)
	buf := make([]byte, 16)
	bad := 0
	for c := 0; c < collectors; c++ {
		for i := 0; i < batches*recordsPerBat; i++ {
			check.ReadAt(region, int64(c)*laneBytes+int64(i*recordSize), buf)
			if binary.LittleEndian.Uint64(buf) != uint64(c) ||
				binary.LittleEndian.Uint64(buf[8:]) != uint64(i) {
				bad++
			}
		}
	}
	fmt.Printf("\naudit: %d corrupt records out of %d\n", bad, collectors*batches*recordsPerBat)
	if bad > 0 {
		log.Fatal("per-thread isolation failed")
	}
}
