// kvstore: the RocksDB case study (§7.2) as a runnable example.
//
// rockskv is a write-optimized key-value store with three persistence
// designs behind one API: the WAL+LSM baseline, Aurora-style region
// checkpointing, and the MemSnap persistent MemTable. The example
// runs the same workload through all three, prints the latency
// comparison (Table 9 in miniature), then demonstrates MemSnap crash
// recovery with the skip-pointer rebuild.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"memsnap/internal/aurora"
	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/fs"
	"memsnap/internal/rockskv"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

const ops = 400

func drive(name string, db *rockskv.DB) {
	s := db.NewSession(0)
	gen := workload.NewMixGraph(1, 5000)
	lat := sim.NewLatencyRecorder()
	for i := 0; i < ops; i++ {
		req := gen.Next()
		start := s.Clock().Now()
		switch req.Op {
		case workload.OpGet:
			s.Get(req.Key)
		case workload.OpPut:
			if err := s.Put(req.Key, req.Value); err != nil {
				log.Fatal(err)
			}
		case workload.OpSeek:
			s.Seek(req.Key, req.ScanLen)
		}
		lat.Record(s.Clock().Now() - start)
	}
	sum := lat.Summarize()
	fmt.Printf("%-14s avg %8v   p99 %8v\n", name, sum.Mean, sum.P99)
}

func main() {
	costs := sim.DefaultCosts()
	fmt.Printf("MixGraph (84%% get / 14%% put / 3%% seek), %d ops, synchronous writes:\n\n", ops)

	// Baseline: WAL + MemTable + SSTables.
	fsys := fs.New(costs, disk.NewArray(costs, 2, 1<<30), fs.FFS)
	drive("baseline+WAL", rockskv.NewWAL(fsys, sim.NewClock(), rockskv.Config{MemTableLimit: 1 << 20}))

	// Aurora: checkpoint the whole region after every write.
	arr := disk.NewArray(costs, 2, 1<<30)
	region := aurora.NewRegion(costs, arr, "memtable", 0, 1<<30)
	drive("aurora", rockskv.NewAurora(region, rockskv.Config{}))

	// MemSnap: persistent skip list, one uCheckpoint per write.
	sys, err := core.NewSystem(core.Options{DiskBytesEach: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	db, err := rockskv.NewMemSnap(proc, ctx, "memtable", 256<<20)
	if err != nil {
		log.Fatal(err)
	}
	drive("memsnap", db)

	// Crash the MemSnap store and show the recovery path: the
	// persistent level-0 chain is intact; skip pointers rebuild.
	s := db.NewSession(1)
	s.Put([]byte("survives"), []byte("yes"))
	crashAt := s.Clock().Now()
	sys.Array().CutPower(crashAt, sim.NewRNG(9))

	sys2, at, err := core.Recover(core.Options{DiskBytesEach: 1 << 30}, sys.Array(), crashAt)
	if err != nil {
		log.Fatal(err)
	}
	proc2 := sys2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	db2, err := rockskv.NewMemSnap(proc2, ctx2, "memtable", 256<<20)
	if err != nil {
		log.Fatal(err)
	}
	s2 := db2.NewSession(0)
	v, ok := s2.Get([]byte("survives"))
	fmt.Printf("\nafter power cut + recovery: Get(\"survives\") = %q (found=%v)\n", v, ok)
	first := s2.Seek(nil, 3)
	fmt.Printf("rebuilt index iterates in order: ")
	for _, kv := range first {
		fmt.Printf("%s ", kv.Key[12:24])
	}
	fmt.Println()
}
