// Command msnap-load is the external load generator for the real-TCP
// data plane: configurable connections × pipeline depth × get/put mix
// with zipfian key popularity, producing a real-machine ops/s and
// tail-latency baseline written to BENCH_net.json (alongside the
// persist hot-path report in BENCH_persist.json).
//
// Usage:
//
//	msnap-load -addr HOST:PORT [flags]      drive an external msnap-serve
//	msnap-load -spawn [flags]               spawn an in-process server on
//	                                        loopback and also measure
//	                                        steady-state allocations/op
//
// In -spawn mode the whole serving path (client, TCP loopback, server,
// shard workers) runs in one process, so runtime.MemStats brackets the
// measured window and -max-allocs-per-op can gate CI on the per-op
// allocation ceiling. Latencies are wall-clock: this tool measures the
// real service boundary, not the simulation inside it.
//
// With -sample N, one in N requests carries wire trace context; the
// client records its round-trip spans and -trace-out writes them as
// Chrome trace-event JSON. Against an external msnap-serve the server
// half of each sampled flow shows up in that server's /tracez, sharing
// the flow ids; in -spawn mode both halves land in one document.
// Tenant popularity is zipfian (like keys), so the server's /topz
// ranking has real skew to rank.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/netsvc"
	"memsnap/internal/obs"
	"memsnap/internal/proto"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
)

type config struct {
	Addr     string  `json:"addr,omitempty"`
	Spawn    bool    `json:"spawn"`
	Conns    int     `json:"conns"`
	Pipeline int     `json:"pipeline"`
	Ops      int64   `json:"ops"`
	Warmup   int64   `json:"warmup"`
	GetPct   int     `json:"get_pct"`
	Tenants  int     `json:"tenants"`
	Keys     int     `json:"keys"`
	Theta    float64 `json:"theta"`
	Seed     uint64  `json:"seed"`
	Shards   int     `json:"shards"`
	Sample   int     `json:"sample,omitempty"`
}

type latencyUs struct {
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type result struct {
	Ops            int64     `json:"ops"`
	Retries        int64     `json:"retries"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	OpsPerSec      float64   `json:"ops_per_sec"`
	LatencyUs      latencyUs `json:"latency_us"`
	// Server-side fields, populated in -spawn mode only.
	ServerAllocsPerOp float64 `json:"server_allocs_per_op,omitempty"`
	RetryAfter        int64   `json:"retry_after_responses,omitempty"`
	BytesIn           int64   `json:"bytes_in,omitempty"`
	BytesOut          int64   `json:"bytes_out,omitempty"`
}

type report struct {
	Note   string `json:"note"`
	Config config `json:"config"`
	Result result `json:"result"`
}

func main() { os.Exit(run()) }

func run() int {
	var cfg config
	flag.StringVar(&cfg.Addr, "addr", "", "server address (empty with -spawn)")
	flag.BoolVar(&cfg.Spawn, "spawn", false, "spawn an in-process server on loopback")
	flag.IntVar(&cfg.Conns, "conns", 4, "client connections")
	flag.IntVar(&cfg.Pipeline, "pipeline", 16, "pipeline depth (concurrent ops per connection)")
	flag.Int64Var(&cfg.Ops, "ops", 20000, "measured operations")
	flag.Int64Var(&cfg.Warmup, "warmup", 2000, "warmup operations before the measured window")
	flag.IntVar(&cfg.GetPct, "get", 80, "percentage of gets (rest are puts)")
	flag.IntVar(&cfg.Tenants, "tenants", 4, "tenant count")
	flag.IntVar(&cfg.Keys, "keys", 10000, "key-space size")
	flag.Float64Var(&cfg.Theta, "theta", 0.99, "zipfian skew (0 < theta < 1)")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "workload RNG seed")
	flag.IntVar(&cfg.Shards, "shards", 8, "shard count (-spawn mode)")
	flag.IntVar(&cfg.Sample, "sample", 0, "trace-sample one in N requests onto the wire (0: tracing off)")
	traceOut := flag.String("trace-out", "", "write the client-side trace (Chrome trace-event JSON) to this path")
	out := flag.String("out", "", "write a JSON report to this path")
	maxAllocs := flag.Float64("max-allocs-per-op", 0,
		"fail when -spawn steady-state allocations/op exceed this ceiling (0: no gate)")
	flag.Parse()

	if cfg.Spawn == (cfg.Addr != "") {
		fmt.Fprintln(os.Stderr, "msnap-load: exactly one of -addr or -spawn is required")
		return 2
	}

	// One recorder for the run: the clients' round-trip lanes, plus —
	// in -spawn mode — the in-process server's net and shard lanes, so
	// a single -trace-out document holds the whole stitched flow.
	var rec *obs.Recorder
	if cfg.Sample > 0 {
		rec = obs.NewRecorder(1 << 16)
	}

	addr := cfg.Addr
	var srv *netsvc.Server
	var svc *shard.Service
	if cfg.Spawn {
		sys, err := core.NewSystem(core.Options{CPUs: cfg.Shards, DiskBytesEach: 512 << 20})
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-load: %v\n", err)
			return 1
		}
		svc, err = shard.New(sys, shard.Config{Shards: cfg.Shards, Recorder: rec})
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-load: %v\n", err)
			return 1
		}
		srv, err = netsvc.Serve("127.0.0.1:0", svc, netsvc.Config{MaxInFlight: cfg.Pipeline, Recorder: rec})
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-load: %v\n", err)
			return 1
		}
		addr = srv.Addr()
	}

	clients, err := dialAll(addr, cfg.Conns, cfg.Pipeline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-load: %v\n", err)
		return 1
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// Client-side trace sampling: one shared sampler (so the effective
	// rate is one in N across the whole run), each client on its own
	// lane. Span timestamps are wall time since the run started — the
	// client has no virtual clock.
	if cfg.Sample > 0 {
		sampler := obs.NewSampler(cfg.Seed, cfg.Sample)
		epoch := time.Now() //lint:allow walltime client trace timeline origin
		now := func() time.Duration {
			return time.Since(epoch) //lint:allow walltime client trace timestamps
		}
		if svc != nil {
			// -spawn: the service's virtual clock is in-process, so the
			// client lanes can share the server lanes' timeline.
			now = svc.EndTime
		}
		for i, c := range clients {
			c.EnableTracing(netsvc.Tracing{
				Recorder: rec, Sampler: sampler, Now: now, Track: obs.ClientTrack(i),
			})
		}
	}

	// Pre-built workload vocabulary: all key/tenant bytes exist before
	// the measured window, keeping the client's own allocations out of
	// the server-side measurement.
	tenants := make([][]byte, cfg.Tenants)
	for i := range tenants {
		tenants[i] = []byte(fmt.Sprintf("t%02d", i))
	}
	keys := make([][]byte, cfg.Keys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%06d", i))
	}
	zipf := sim.NewZipf(int64(cfg.Keys), cfg.Theta)

	// Warmup: populate server-side intern tables, pools and map
	// buckets, and heat the key space.
	if cfg.Warmup > 0 {
		drive(clients, cfg, tenants, keys, zipf, cfg.Warmup, 0, nil)
	}

	var m0, m1 runtime.MemStats
	if cfg.Spawn {
		runtime.GC()
		runtime.ReadMemStats(&m0)
	}
	var hist obs.Histogram
	start := time.Now() //lint:allow walltime load generator measures the real service boundary
	drive(clients, cfg, tenants, keys, zipf, cfg.Ops, 1, &hist)
	elapsed := time.Since(start) //lint:allow walltime load generator measures the real service boundary
	if cfg.Spawn {
		runtime.ReadMemStats(&m1)
	}

	var retries int64
	for _, c := range clients {
		retries += c.Retries()
	}
	snap := hist.Snapshot()
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	res := result{
		Ops:            cfg.Ops,
		Retries:        retries,
		ElapsedSeconds: elapsed.Seconds(),
		OpsPerSec:      float64(cfg.Ops) / elapsed.Seconds(),
		LatencyUs: latencyUs{
			P50:  us(snap.P50()),
			P99:  us(snap.P99()),
			P999: us(snap.P999()),
			Mean: us(snap.Mean()),
			Max:  us(snap.Max),
		},
	}
	if cfg.Spawn {
		res.ServerAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(cfg.Ops)
		st := srv.Stats()
		res.RetryAfter = st.RetryAfter
		res.BytesIn = st.BytesIn
		res.BytesOut = st.BytesOut
	}

	fmt.Printf("msnap-load: %d ops in %.2fs = %.0f ops/s  p50=%.1fus p99=%.1fus p999=%.1fus  retries=%d\n",
		res.Ops, res.ElapsedSeconds, res.OpsPerSec,
		res.LatencyUs.P50, res.LatencyUs.P99, res.LatencyUs.P999, res.Retries)
	if cfg.Spawn {
		fmt.Printf("msnap-load: server-side %.2f allocs/op, %d bytes in, %d bytes out\n",
			res.ServerAllocsPerOp, res.BytesIn, res.BytesOut)
	}

	if *out != "" {
		rep := report{
			Note:   "real-TCP data plane baseline: msnap-load against netsvc over loopback; wall-clock client-visible latency",
			Config: cfg,
			Result: res,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-load: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "msnap-load: %v\n", err)
			return 1
		}
		fmt.Printf("report written to %s\n", *out)
	}

	// Close the clients before draining the spawned server so Close
	// does not wait on open-but-idle connections.
	for _, c := range clients {
		c.Close()
	}
	if cfg.Spawn {
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "msnap-load: drain: %v\n", err)
			return 1
		}
		if err := svc.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "msnap-load: close: %v\n", err)
			return 1
		}
	}
	if *traceOut != "" && rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-load: %v\n", err)
			return 1
		}
		if err := obs.WriteTrace(f, rec.Drain()); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "msnap-load: trace: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "msnap-load: %v\n", err)
			return 1
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if cfg.Spawn && *maxAllocs > 0 && res.ServerAllocsPerOp > *maxAllocs {
		fmt.Fprintf(os.Stderr, "msnap-load: steady-state %.2f allocs/op exceed the ceiling %.2f/op\n",
			res.ServerAllocsPerOp, *maxAllocs)
		return 1
	}
	return 0
}

// dialAll connects n pipelined clients, retrying briefly so a server
// that is still binding (CI backgrounds it) does not fail the run.
func dialAll(addr string, n, depth int) ([]*netsvc.Client, error) {
	clients := make([]*netsvc.Client, 0, n)
	for i := 0; i < n; i++ {
		var c *netsvc.Client
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			c, err = netsvc.Dial(addr, depth)
			if err == nil {
				break
			}
			time.Sleep(100 * time.Millisecond) //lint:allow walltime dial retry against a real server
		}
		if err != nil {
			for _, cc := range clients {
				cc.Close()
			}
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		clients = append(clients, c)
	}
	return clients, nil
}

// drive runs total ops across every client × pipeline-depth worker.
// Each worker owns a deterministic RNG derived from the seed, so the
// key sequence replays bit-for-bit; hist (when set) records per-op
// wall latency including RETRY_AFTER backoff and resends.
func drive(clients []*netsvc.Client, cfg config, tenants, keys [][]byte, zipf *sim.Zipf, total int64, phase uint64, hist *obs.Histogram) {
	var counter atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Int64
	// Tenant popularity is zipfian too (same theta as the key space):
	// real multi-tenant load is skewed, and the skew is what the
	// server-side top-K attribution sketch is built to rank.
	tzipf := sim.NewZipf(int64(cfg.Tenants), cfg.Theta)
	for ci, c := range clients {
		for p := 0; p < cfg.Pipeline; p++ {
			wg.Add(1)
			go func(c *netsvc.Client, worker uint64) {
				defer wg.Done()
				rng := sim.NewRNG(cfg.Seed + phase<<32 + worker)
				var q proto.Request
				for counter.Add(1) <= total {
					q = proto.Request{
						Tenant: tenants[tzipf.Next(rng)],
						Key:    keys[zipf.Next(rng)],
					}
					if rng.Intn(100) < cfg.GetPct {
						q.Kind = proto.KindGet
					} else {
						q.Kind = proto.KindPut
						q.Value = rng.Uint64() % 1000
					}
					opStart := time.Now() //lint:allow walltime client-visible latency of the real service
					p, err := c.Do(&q)
					if err != nil {
						failed.Add(1)
						return
					}
					if hist != nil {
						hist.Record(time.Since(opStart)) //lint:allow walltime client-visible latency of the real service
					}
					if p.Status != proto.StatusOK {
						failed.Add(1)
						return
					}
				}
			}(c, uint64(ci)*uint64(cfg.Pipeline)+uint64(p))
		}
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "msnap-load: %d workers aborted on errors\n", n)
		os.Exit(1)
	}
}
