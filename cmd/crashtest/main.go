// Command crashtest is a crash-consistency torture tool: it repeatedly
// runs transactional workloads against MemSnap, cuts power at a random
// instant (tearing in-flight IO at sector granularity), recovers, and
// verifies invariants.
//
// Three scenarios are rotated per iteration:
//
//	region:  multi-page uCheckpoints into a raw region; after recovery
//	         the region must hold exactly a prefix of the committed
//	         checkpoint sequence (atomic, prefix-consistent).
//	bank:    money transfers (examples/banktx's invariant, randomized).
//	kv:      rockskv MemSnap mode with counter increments; the value
//	         sum must equal the acknowledged increments (§7.2's test).
//
//	crashtest -iters 100 -seed 42
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/rockskv"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

func main() {
	iters := flag.Int("iters", 30, "torture iterations")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	flag.Parse()

	for i := 0; i < *iters; i++ {
		s := uint64(*seed) + uint64(i)*7919
		switch i % 3 {
		case 0:
			regionScenario(s)
		case 1:
			bankScenario(s)
		case 2:
			kvScenario(s)
		}
		fmt.Printf("iter %3d: ok (%s)\n", i, []string{"region", "bank", "kv"}[i%3])
	}
	fmt.Printf("\n%d iterations, no consistency violations\n", *iters)
}

func newSys() *core.System {
	sys, err := core.NewSystem(core.Options{DiskBytesEach: 512 << 20})
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

// regionScenario writes numbered multi-page checkpoints and checks
// prefix consistency after a torn crash.
func regionScenario(seed uint64) {
	rng := sim.NewRNG(seed)
	sys := newSys()
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	r, err := proc.Open(ctx, "torture", 16<<20)
	if err != nil {
		log.Fatal(err)
	}

	const pages = 8
	commits := 3 + rng.Intn(8)
	var lastStart time.Duration
	for c := 1; c <= commits; c++ {
		lastStart = ctx.Clock().Now()
		for p := 0; p < pages; p++ {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, uint64(c))
			ctx.WriteAt(r, int64(p)*core.PageSize, buf)
		}
		if _, err := ctx.Persist(r, core.MSSync); err != nil {
			log.Fatal(err)
		}
	}
	end := ctx.Clock().Now()
	cut := lastStart + time.Duration(rng.Int63n(int64(end-lastStart)+1))
	sys.Array().CutPower(cut, rng)

	sys2, at, err := core.Recover(core.Options{DiskBytesEach: 512 << 20}, sys.Array(), end)
	if err != nil {
		log.Fatalf("seed %d: recovery: %v", seed, err)
	}
	proc2 := sys2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	r2, _ := proc2.Open(ctx2, "torture", 16<<20)
	buf := make([]byte, 8)
	ctx2.ReadAt(r2, 0, buf)
	got := binary.LittleEndian.Uint64(buf)
	if got != uint64(commits) && got != uint64(commits-1) {
		log.Fatalf("seed %d: recovered commit %d, want %d or %d", seed, got, commits-1, commits)
	}
	for p := 1; p < pages; p++ {
		ctx2.ReadAt(r2, int64(p)*core.PageSize, buf)
		if binary.LittleEndian.Uint64(buf) != got {
			log.Fatalf("seed %d: page %d from commit %d, page 0 from %d — torn checkpoint",
				seed, p, binary.LittleEndian.Uint64(buf), got)
		}
	}
}

// bankScenario transfers money and audits the total.
func bankScenario(seed uint64) {
	rng := sim.NewRNG(seed)
	sys := newSys()
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	const accounts = 64
	r, _ := proc.Open(ctx, "bank", accounts*core.PageSize)

	write := func(c *core.Context, reg *core.Region, id int, v int64) {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(v))
		c.WriteAt(reg, int64(id)*core.PageSize, buf)
	}
	read := func(c *core.Context, reg *core.Region, id int) int64 {
		buf := make([]byte, 8)
		c.ReadAt(reg, int64(id)*core.PageSize, buf)
		return int64(binary.LittleEndian.Uint64(buf))
	}

	for id := 0; id < accounts; id++ {
		write(ctx, r, id, 100)
	}
	ctx.Persist(r, core.MSSync)

	transfers := 10 + rng.Intn(40)
	var lastStart time.Duration
	for t := 0; t < transfers; t++ {
		from, to := rng.Intn(accounts), rng.Intn(accounts)
		amt := int64(rng.Intn(50))
		lastStart = ctx.Clock().Now()
		write(ctx, r, from, read(ctx, r, from)-amt)
		write(ctx, r, to, read(ctx, r, to)+amt)
		ctx.Persist(r, core.MSSync)
	}
	end := ctx.Clock().Now()
	cut := lastStart + time.Duration(rng.Int63n(int64(end-lastStart)+1))
	sys.Array().CutPower(cut, rng)

	sys2, at, err := core.Recover(core.Options{DiskBytesEach: 512 << 20}, sys.Array(), end)
	if err != nil {
		log.Fatalf("seed %d: recovery: %v", seed, err)
	}
	proc2 := sys2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	r2, _ := proc2.Open(ctx2, "bank", accounts*core.PageSize)
	var total int64
	for id := 0; id < accounts; id++ {
		total += read(ctx2, r2, id)
	}
	if total != accounts*100 {
		log.Fatalf("seed %d: bank total %d != %d — atomicity violated", seed, total, accounts*100)
	}
}

// kvScenario increments counters in rockskv (MemSnap mode) via
// MultiPut and checks the value-sum invariant after a crash.
func kvScenario(seed uint64) {
	rng := sim.NewRNG(seed)
	sys := newSys()
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	db, err := rockskv.NewMemSnap(proc, ctx, "kv", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession(0)

	const keys = 32
	enc := func(v int64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(v))
		return b
	}
	for k := 0; k < keys; k++ {
		s.Put(workload.Key16(int64(k)), enc(0))
	}

	acked := int64(0)
	txs := 5 + rng.Intn(15)
	var lastStart time.Duration
	for t := 0; t < txs; t++ {
		var kvs []rockskv.KV
		seen := map[int64]bool{}
		for len(kvs) < 5 {
			id := rng.Int63n(keys)
			if seen[id] {
				continue
			}
			seen[id] = true
			cur, _ := s.Get(workload.Key16(id))
			kvs = append(kvs, rockskv.KV{
				Key:   workload.Key16(id),
				Value: enc(int64(binary.LittleEndian.Uint64(cur)) + 1),
			})
		}
		lastStart = s.Clock().Now()
		if err := s.MultiPut(kvs); err != nil {
			log.Fatal(err)
		}
		acked += int64(len(kvs))
	}
	end := s.Clock().Now()

	// Cut during the final acknowledged transaction: it is durable,
	// so the sum must match exactly... unless the cut lands before
	// its record persisted — then the last tx is fully absent.
	cut := lastStart + time.Duration(rng.Int63n(int64(end-lastStart)+1))
	sys.Array().CutPower(cut, rng)

	sys2, at, err := core.Recover(core.Options{DiskBytesEach: 512 << 20}, sys.Array(), end)
	if err != nil {
		log.Fatalf("seed %d: recovery: %v", seed, err)
	}
	proc2 := sys2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	db2, err := rockskv.NewMemSnap(proc2, ctx2, "kv", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	s2 := db2.NewSession(0)
	var sum int64
	for k := 0; k < keys; k++ {
		v, ok := s2.Get(workload.Key16(int64(k)))
		if !ok {
			log.Fatalf("seed %d: counter %d lost", seed, k)
		}
		sum += int64(binary.LittleEndian.Uint64(v))
	}
	if sum != acked && sum != acked-5 {
		log.Fatalf("seed %d: sum %d, want %d (all acked) or %d (torn last tx)", seed, sum, acked, acked-5)
	}
}
