// Command msnap-serve runs the μCheckpoint-backed shard service
// behind the real-TCP data plane: a standalone server any
// proto-speaking client (cmd/msnap-load, or anything implementing the
// wire format in internal/proto) can drive over the network.
//
// Usage:
//
//	msnap-serve [-addr HOST:PORT] [-obs HOST:PORT] [-shards N]
//	            [-queue N] [-batch N] [-inflight N] [-flight PATH]
//
// The data plane listens on -addr. With -obs set, the observability
// endpoint from internal/obs also comes up, serving combined shard +
// network + per-tenant metrics on /metricz, JSON state on /varz, the
// lifecycle trace on /tracez, liveness on /healthz and the tenant
// top-K on /topz. Requests arriving with wire trace context (sampled
// by a tracing client) record net-lane spans into the shared ring, so
// /tracez stitches client-visible requests into the shard and replica
// lanes. SIGINT/SIGTERM trigger a graceful drain: /healthz flips to
// draining, the server stops accepting, completes every in-flight
// pipelined request with its real durable outcome, then closes the
// shard service. With -flight set, a flight-recorder bundle is written
// there on shutdown — and on panic, before the process dies.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"memsnap/internal/core"
	"memsnap/internal/netsvc"
	"memsnap/internal/obs"
	"memsnap/internal/shard"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:4700", "data-plane listen address")
	obsAddr := flag.String("obs", "", "observability listen address (empty: disabled)")
	shards := flag.Int("shards", 8, "shard count")
	queue := flag.Int("queue", 256, "per-shard request queue depth")
	batch := flag.Int("batch", 16, "max write ops per group commit")
	inflight := flag.Int("inflight", 64, "per-connection pipeline bound")
	flight := flag.String("flight", "", "write a flight-recorder bundle here on shutdown and panic (empty: disabled)")
	flag.Parse()

	sys, err := core.NewSystem(core.Options{CPUs: *shards, DiskBytesEach: 512 << 20})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: %v\n", err)
		return 1
	}
	rec := obs.NewRecorder(1 << 14)
	sketch := obs.NewTenantSketch(obs.DefaultTenantTopK)
	svc, err := shard.New(sys, shard.Config{
		Shards: *shards, QueueDepth: *queue, BatchSize: *batch, Recorder: rec,
		Tenants: sketch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: %v\n", err)
		return 1
	}
	srv, err := netsvc.Serve(*addr, svc, netsvc.Config{MaxInFlight: *inflight, Recorder: rec})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: %v\n", err)
		return 1
	}
	fmt.Printf("msnap-serve: data plane on %s (%d shards)\n", srv.Addr(), *shards)

	metrics := func(w io.Writer) error {
		if err := svc.FormatPrometheus(w); err != nil {
			return err
		}
		if err := srv.FormatPrometheus(w); err != nil {
			return err
		}
		return sketch.WriteProm(w)
	}
	vars := func() any {
		return struct {
			Net     netsvc.Stats       `json:"net"`
			Shards  []shard.ShardStats `json:"shards"`
			Tenants []obs.TenantStat   `json:"tenants"`
		}{srv.Stats(), svc.Stats(), sketch.Top()}
	}
	writeFlight := func(reason string) {
		if *flight == "" {
			return
		}
		b := obs.Bundle{
			Reason: reason, VirtualNow: svc.EndTime(),
			Vars: vars(), Metrics: metrics, Recorder: rec,
		}
		if err := obs.WriteBundleFile(*flight, b); err != nil {
			fmt.Fprintf(os.Stderr, "msnap-serve: flight bundle: %v\n", err)
			return
		}
		fmt.Printf("msnap-serve: flight bundle written to %s\n", *flight)
	}
	// The black-box contract: if serving panics, the bundle still gets
	// written before the process dies.
	defer func() {
		if p := recover(); p != nil {
			writeFlight(fmt.Sprintf("panic: %v", p))
			panic(p)
		}
	}()

	var draining atomic.Bool
	var osrv *obs.Server
	if *obsAddr != "" {
		osrv, err = obs.Serve(*obsAddr, obs.ServerSources{
			Metrics: metrics,
			Vars:    vars,
			Trace:   rec.Drain,
			Health: func() (bool, string) {
				if draining.Load() {
					return false, "draining"
				}
				return true, "serving"
			},
			TopK: sketch.Top,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-serve: %v\n", err)
			return 1
		}
		fmt.Printf("msnap-serve: observability on %s\n", osrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful drain: flip /healthz to draining, then data plane first
	// (completes every admitted request), then the shard service, then
	// observability — so the endpoint answers 503 while draining.
	draining.Store(true)
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: drain: %v\n", err)
		return 1
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: close: %v\n", err)
		return 1
	}
	writeFlight("SIGTERM: graceful drain complete")
	if osrv != nil {
		osrv.Close()
	}
	st := srv.Stats()
	fmt.Printf("msnap-serve: drained (%d requests, %d responses, %d retry_after)\n",
		st.Requests, st.Responses, st.RetryAfter)
	return 0
}
