// Command msnap-serve runs the μCheckpoint-backed shard service
// behind the real-TCP data plane: a standalone server any
// proto-speaking client (cmd/msnap-load, or anything implementing the
// wire format in internal/proto) can drive over the network.
//
// Usage:
//
//	msnap-serve [-addr HOST:PORT] [-obs HOST:PORT] [-shards N]
//	            [-queue N] [-batch N] [-inflight N]
//
// The data plane listens on -addr. With -obs set, the observability
// endpoint from internal/obs also comes up, serving combined shard +
// network metrics on /metricz, JSON state on /varz and the lifecycle
// trace on /tracez. SIGINT/SIGTERM trigger a graceful drain: the
// server stops accepting, completes every in-flight pipelined request
// with its real durable outcome, then closes the shard service.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"memsnap/internal/core"
	"memsnap/internal/netsvc"
	"memsnap/internal/obs"
	"memsnap/internal/shard"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:4700", "data-plane listen address")
	obsAddr := flag.String("obs", "", "observability listen address (empty: disabled)")
	shards := flag.Int("shards", 8, "shard count")
	queue := flag.Int("queue", 256, "per-shard request queue depth")
	batch := flag.Int("batch", 16, "max write ops per group commit")
	inflight := flag.Int("inflight", 64, "per-connection pipeline bound")
	flag.Parse()

	sys, err := core.NewSystem(core.Options{CPUs: *shards, DiskBytesEach: 512 << 20})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: %v\n", err)
		return 1
	}
	rec := obs.NewRecorder(4096)
	svc, err := shard.New(sys, shard.Config{
		Shards: *shards, QueueDepth: *queue, BatchSize: *batch, Recorder: rec,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: %v\n", err)
		return 1
	}
	srv, err := netsvc.Serve(*addr, svc, netsvc.Config{MaxInFlight: *inflight})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: %v\n", err)
		return 1
	}
	fmt.Printf("msnap-serve: data plane on %s (%d shards)\n", srv.Addr(), *shards)

	var osrv *obs.Server
	if *obsAddr != "" {
		osrv, err = obs.Serve(*obsAddr, obs.ServerSources{
			Metrics: func(w io.Writer) error {
				if err := svc.FormatPrometheus(w); err != nil {
					return err
				}
				return srv.FormatPrometheus(w)
			},
			Vars: func() any {
				return struct {
					Net    netsvc.Stats       `json:"net"`
					Shards []shard.ShardStats `json:"shards"`
				}{srv.Stats(), svc.Stats()}
			},
			Trace: rec.Drain,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-serve: %v\n", err)
			return 1
		}
		fmt.Printf("msnap-serve: observability on %s\n", osrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful drain: data plane first (completes every admitted
	// request), then the shard service, then observability.
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: drain: %v\n", err)
		return 1
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "msnap-serve: close: %v\n", err)
		return 1
	}
	if osrv != nil {
		osrv.Close()
	}
	st := srv.Stats()
	fmt.Printf("msnap-serve: drained (%d requests, %d responses, %d retry_after)\n",
		st.Requests, st.Responses, st.RetryAfter)
	return 0
}
