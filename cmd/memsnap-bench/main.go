// Command memsnap-bench regenerates the paper's tables and figures on
// the simulated machine.
//
// Usage:
//
//	memsnap-bench -list
//	memsnap-bench [-scale S] [-threads N] [-seed K] all
//	memsnap-bench [-scale S] table6 fig3 ...
//	memsnap-bench -json [-out BENCH_persist.json] [-scale S]
//
// Each experiment prints a table mirroring the paper's layout, with
// notes recording the scaled-down workload parameters. Virtual-time
// microseconds are directly comparable to the paper's measured
// microseconds in shape (see EXPERIMENTS.md for the side-by-side).
//
// -json instead runs the real-machine persist hot-path benchmark
// (internal/perfbench) and writes the machine-readable report; it
// exits non-zero if steady-state persist allocations exceed the
// committed ceiling, so CI can gate on it.
//
// -replica runs the replication wire benchmark: bytes on the link per
// write transaction for TATP, TPC-C, and YCSB-A, in both full-page
// and sub-page-diff modes. The numbers are virtual-time deterministic,
// so the BENCH_replica.json report is committable; the run exits
// non-zero if the sub-page reduction falls below the committed floor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"memsnap/internal/harness"
	"memsnap/internal/perfbench"
)

// writeReport serializes a benchmark report as indented JSON.
func writeReport(path string, rep any) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = harness default)")
	threads := flag.Int("threads", 4, "worker threads for multi-threaded experiments")
	seed := flag.Uint64("seed", 1, "workload RNG seed")
	jsonBench := flag.Bool("json", false, "run the persist hot-path benchmark and write a JSON report")
	replicaBench := flag.Bool("replica", false, "run the replication wire benchmark and write a JSON report")
	out := flag.String("out", "", "output path for the -json / -replica report")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <experiment>... | all\n\nflags:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments:\n")
		for _, e := range harness.Registry() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()

	if *replicaBench {
		if *out == "" {
			*out = "BENCH_replica.json"
		}
		rep, err := perfbench.RunReplica(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			os.Exit(1)
		}
		if err := writeReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			os.Exit(1)
		}
		for _, sc := range rep.Scenarios {
			fmt.Printf("%-8s %-5s %8d txns %12d wire B %10.1f B/txn %8.2f encode us/txn\n",
				sc.Workload, sc.Mode, sc.Txns, sc.WireBytes, sc.BytesPerTxn, sc.EncodeUsPerTxn)
		}
		for _, wl := range perfbench.ReplicaWorkloads() {
			fmt.Printf("%-8s bytes/txn reduction: %.2fx\n", wl, rep.Reduction[wl])
		}
		fmt.Printf("report written to %s\n", *out)
		if err := perfbench.CheckReplicaCeilings(rep); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonBench {
		if *out == "" {
			*out = "BENCH_persist.json"
		}
		rep, err := perfbench.Run(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			os.Exit(1)
		}
		if err := writeReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			os.Exit(1)
		}
		for _, sc := range rep.Scenarios {
			fmt.Printf("%-28s %8.1f allocs/op %12.0f B/op %12.0f ops/s  virt p50=%.1fus p99=%.1fus\n",
				sc.Name, sc.AllocsPerOp, sc.BytesPerOp, sc.RealOpsPerSec, sc.VirtualP50Us, sc.VirtualP99Us)
		}
		fmt.Printf("report written to %s\n", *out)
		if err := perfbench.CheckCeilings(rep); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range harness.Registry() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	opts := harness.Options{Scale: *scale, Threads: *threads, Seed: *seed}

	var experiments []harness.Experiment
	if len(args) == 1 && args[0] == "all" {
		experiments = harness.Registry()
	} else {
		for _, id := range args {
			e, ok := harness.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			experiments = append(experiments, e)
		}
	}

	for _, e := range experiments {
		// Reporting how long the run took on the operator's machine is
		// the one place wall-clock time is the point; no simulated
		// result depends on it.
		start := time.Now() //lint:allow walltime real-time progress report, not simulated work
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		//lint:allow walltime real-time progress report, not simulated work
		fmt.Printf("%s\n(%s completed in %.1fs real time)\n\n", res.Format(), e.ID, time.Since(start).Seconds())
	}
}
