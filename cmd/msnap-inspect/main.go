// Command msnap-inspect builds a demonstration MemSnap store, crashes
// it at a random point, recovers it, and prints the object store's
// state: objects, epochs, block maps and allocator statistics.
//
// It exists to make the on-disk format and crash-recovery behavior
// inspectable without writing code:
//
//	msnap-inspect                  # build, crash, recover, dump
//	msnap-inspect -objects 5 -commits 20 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"memsnap/internal/disk"
	"memsnap/internal/objstore"
	"memsnap/internal/sim"
)

func main() {
	objects := flag.Int("objects", 3, "number of objects to create")
	commits := flag.Int("commits", 10, "commits per object before the crash")
	seed := flag.Uint64("seed", 1, "RNG seed (affects data and the power-cut tear)")
	crash := flag.Bool("crash", true, "cut power during the final in-flight commit")
	flag.Parse()

	costs := sim.DefaultCosts()
	arr := disk.NewArray(costs, 2, 256<<20)
	store, at, err := objstore.Format(costs, arr, 0)
	check(err)

	rng := sim.NewRNG(*seed)
	fmt.Printf("formatted store: %d devices x %d MiB, stripe %d KiB\n\n",
		arr.NumDevices(), arr.Capacity()/int64(arr.NumDevices())>>20, costs.StripeSize>>10)

	var objs []*objstore.Object
	for i := 0; i < *objects; i++ {
		name := fmt.Sprintf("region-%d", i)
		obj, done, err := store.CreateObject(at, name, 16<<20)
		check(err)
		at = done
		objs = append(objs, obj)
	}

	block := make([]byte, objstore.BlockSize)
	for c := 0; c < *commits; c++ {
		for _, obj := range objs {
			var writes []objstore.BlockWrite
			for w := 0; w < 1+int(rng.Uint64()%4); w++ {
				for i := range block {
					block[i] = byte(rng.Uint64())
				}
				writes = append(writes, objstore.BlockWrite{
					Index: rng.Int63n(1024),
					Data:  append([]byte(nil), block...),
				})
			}
			_, done, err := obj.Commit(at, writes)
			check(err)
			at = done
		}
	}

	if *crash {
		// One more commit, torn mid-flight.
		_, done, err := objs[0].Commit(at, []objstore.BlockWrite{{Index: 0, Data: block}})
		check(err)
		cut := at + time.Duration(rng.Int63n(int64(done-at)+1))
		arr.CutPower(cut, rng)
		fmt.Printf("power cut at %v (in-flight commit submitted at %v, due %v)\n\n", cut, at, done)
		at = done
	}

	recovered, at2, err := objstore.Open(costs, arr, at)
	check(err)
	fmt.Printf("recovery completed at %v\n", at2)
	fmt.Printf("free blocks: %d\n\n", recovered.FreeBlocks())

	for _, name := range recovered.Objects() {
		obj, err := recovered.OpenObject(name)
		check(err)
		blocks := obj.WrittenBlocks()
		fmt.Printf("object %-12s epoch %-4d max %6d blocks, %4d written\n",
			obj.Name(), obj.Epoch(), obj.MaxBlocks(), len(blocks))
		if len(blocks) > 0 {
			fmt.Printf("  written blocks:")
			for i, b := range blocks {
				if i >= 12 {
					fmt.Printf(" ... (+%d more)", len(blocks)-i)
					break
				}
				fmt.Printf(" %d", b)
			}
			fmt.Println()
		}
	}

	stats := arr.Stats()
	fmt.Printf("\ndisk: %d writes, %d reads, %.1f MiB written, %.1f MiB read\n",
		stats.Writes, stats.Reads,
		float64(stats.BytesWritten)/(1<<20), float64(stats.BytesRead)/(1<<20))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "msnap-inspect:", err)
		os.Exit(1)
	}
}
