// Command msnap-trace runs a replicated shard workload with lifecycle
// tracing enabled and exports the result as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing), optionally serving the
// live observability endpoint.
//
// Usage:
//
//	msnap-trace [-shards N] [-clients C] [-ops K] [-seed S] [-out trace.json]
//	msnap-trace -smoke [-listen 127.0.0.1:0]
//	msnap-trace -serve [-listen 127.0.0.1:8091]
//
// The default mode runs the workload and writes the drained trace to
// -out. -smoke additionally starts the TCP observability endpoint,
// self-scrapes /metricz, /varz and /tracez over real loopback
// connections, validates the JSON payloads, and writes the scraped
// trace to -out — the CI smoke path. -serve runs the workload and then
// keeps serving the endpoint until the process is killed.
//
// All timestamps in the exported trace are virtual time: the workload
// is a simulation, and the trace shows its simulated concurrency, not
// host scheduling.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net" //lint:allow sockio smoke client for the obs loopback endpoint
	"os"
	"sync"

	"memsnap/internal/core"
	"memsnap/internal/obs"
	"memsnap/internal/replica"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
)

func main() { os.Exit(run()) }

func run() int {
	shards := flag.Int("shards", 4, "shard count (primary and follower)")
	clients := flag.Int("clients", 4, "concurrent workload clients")
	ops := flag.Int("ops", 200, "operations per client")
	keys := flag.Int("keys", 512, "key-space size per tenant")
	seed := flag.Uint64("seed", 1, "workload RNG seed")
	ring := flag.Int("ring", 1<<16, "trace ring capacity in events")
	sample := flag.Int("sample", 64, "trace-sample one in N workload writes into request flows (0: off)")
	out := flag.String("out", "trace.json", "trace output path (empty: skip the file)")
	listen := flag.String("listen", "127.0.0.1:0", "observability endpoint address (-smoke/-serve)")
	smoke := flag.Bool("smoke", false, "serve the endpoint, self-scrape and validate /metricz, /varz and /tracez, then exit")
	serveMode := flag.Bool("serve", false, "keep serving the endpoint after the workload until killed")
	flag.Parse()

	rec := obs.NewRecorder(*ring)

	// Primary and follower each get their own machine (their own disk
	// array — the follower survives the primary's death).
	sysOpts := core.Options{CPUs: *shards, DiskBytesEach: 512 << 20}
	sysA, err := core.NewSystem(sysOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: primary system: %v\n", err)
		return 1
	}
	sysB, err := core.NewSystem(sysOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: follower system: %v\n", err)
		return 1
	}

	link := replica.NewLink(replica.LinkConfig{})
	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: *shards, Recorder: rec})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: follower: %v\n", err)
		return 1
	}
	ship := replica.NewShipper(link, fol, *shards, replica.Config{Mode: replica.Async, Recorder: rec})
	sketch := obs.NewTenantSketch(obs.DefaultTenantTopK)
	svc, err := shard.New(sysA, shard.Config{Shards: *shards, Replicator: ship, Recorder: rec, Tenants: sketch})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: service: %v\n", err)
		return 1
	}
	ship.Attach(svc)
	defer svc.Close()
	defer ship.Close()

	var sampler *obs.Sampler
	if *sample > 0 {
		sampler = obs.NewSampler(*seed, *sample)
	}
	runWorkload(svc, *clients, *ops, *keys, *seed, sampler)

	total := svc.TotalStats()
	fmt.Printf("workload done: %d ops, %d commits, %d trace events recorded (%d dropped)\n",
		total.Ops, total.Commits, total.Obs.Recorded, total.Obs.Dropped)

	// The boundary clock gives /varz a virtual "now": the furthest any
	// worker has advanced.
	bclk := sim.NewClock()
	bclk.AdvanceTo(total.Elapsed)

	src := obs.ServerSources{
		Metrics: func(w io.Writer) error {
			if err := svc.FormatPrometheus(w); err != nil {
				return err
			}
			if err := ship.FormatPrometheus(w); err != nil {
				return err
			}
			if err := fol.FormatPrometheus(w); err != nil {
				return err
			}
			return sketch.WriteProm(w)
		},
		Vars: func() any {
			return map[string]any{
				"total":       svc.TotalStats(),
				"shards":      svc.Stats(),
				"replication": ship.Stats(),
				"follower":    fol.Stats(),
				"tenants":     sketch.Top(),
			}
		},
		Trace: rec.Drain,
		Clock: bclk,
		TopK:  sketch.Top,
	}

	switch {
	case *smoke:
		return runSmoke(*listen, src, *out)
	case *serveMode:
		srv, err := obs.Serve(*listen, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-trace: serve: %v\n", err)
			return 1
		}
		fmt.Printf("serving http://%s/{metricz,varz,tracez} (kill to stop)\n", srv.Addr())
		select {}
	default:
		if *out == "" {
			return 0
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-trace: %v\n", err)
			return 1
		}
		if err := obs.WriteTrace(f, rec.Drain()); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "msnap-trace: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "msnap-trace: %v\n", err)
			return 1
		}
		fmt.Printf("trace written to %s\n", *out)
		return 0
	}
}

// runWorkload drives clients concurrent goroutines of mixed
// put/add/get traffic over a deterministic key walk. When sampler is
// set, sampled writes carry a trace id so their commit, ship and apply
// spans stitch into request flows.
func runWorkload(svc *shard.Service, clients, ops, keys int, seed uint64, sampler *obs.Sampler) {
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := sim.NewRNG(seed + uint64(c)*0x9e3779b9)
			tenant := fmt.Sprintf("t%d", c%3)
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%04d", (c*7919+i*613)%keys)
				switch rng.Intn(4) {
				case 0:
					svc.Get(tenant, key)
				case 1:
					svc.Add(tenant, key, uint64(i%7+1))
				default:
					op := shard.Op{Kind: shard.OpPut, Tenant: tenant, Key: key,
						Value: uint64(c)<<32 | uint64(i)}
					if id, ok := sampler.Sample(); ok {
						op.TraceID = id
					}
					svc.Do(op)
				}
			}
		}(c)
	}
	wg.Wait()
}

// runSmoke starts the endpoint, scrapes all three paths over real TCP,
// validates each payload, and writes the scraped trace to out.
func runSmoke(listen string, src obs.ServerSources, out string) int {
	srv, err := obs.Serve(listen, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: serve: %v\n", err)
		return 1
	}
	defer srv.Close()
	fmt.Printf("smoke: endpoint on %s\n", srv.Addr())

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "msnap-trace: smoke: "+format+"\n", args...)
		return 1
	}

	code, metrics, err := get(srv.Addr(), "/metricz")
	if err != nil || code != 200 {
		return fail("/metricz: code %d err %v", code, err)
	}
	for _, want := range []string{
		"memsnap_shard_commit_latency_seconds_bucket",
		"memsnap_shard_persist_latency_seconds_count",
		"memsnap_obs_events_recorded_total",
		"memsnap_replica_ack_latency_seconds_count",
		"memsnap_tenant_ops",
		"memsnap_tenant_wire_bytes",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			return fail("/metricz missing series %s", want)
		}
	}
	fmt.Printf("smoke: /metricz ok (%d bytes)\n", len(metrics))

	code, varz, err := get(srv.Addr(), "/varz")
	if err != nil || code != 200 {
		return fail("/varz: code %d err %v", code, err)
	}
	var vdoc struct {
		VirtualSeconds float64        `json:"virtual_now_seconds"`
		Vars           map[string]any `json:"vars"`
	}
	if err := json.Unmarshal(varz, &vdoc); err != nil {
		return fail("/varz is not valid JSON: %v", err)
	}
	if vdoc.VirtualSeconds <= 0 || vdoc.Vars["total"] == nil {
		return fail("/varz payload incomplete: now=%v keys=%d", vdoc.VirtualSeconds, len(vdoc.Vars))
	}
	fmt.Printf("smoke: /varz ok (virtual now %.6fs)\n", vdoc.VirtualSeconds)

	code, health, err := get(srv.Addr(), "/healthz")
	if err != nil || code != 200 {
		return fail("/healthz: code %d err %v", code, err)
	}
	fmt.Printf("smoke: /healthz ok (%s)\n", bytes.TrimSpace(health))

	code, topz, err := get(srv.Addr(), "/topz")
	if err != nil || code != 200 {
		return fail("/topz: code %d err %v", code, err)
	}
	var topdoc struct {
		Tenants []struct {
			Tenant string `json:"tenant"`
			Ops    uint64 `json:"ops"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(topz, &topdoc); err != nil {
		return fail("/topz is not valid JSON: %v", err)
	}
	if len(topdoc.Tenants) == 0 || topdoc.Tenants[0].Ops == 0 {
		return fail("/topz ranked no tenant activity: %s", topz)
	}
	fmt.Printf("smoke: /topz ok (%d tenants, top %q with %d ops)\n",
		len(topdoc.Tenants), topdoc.Tenants[0].Tenant, topdoc.Tenants[0].Ops)

	code, trace, err := get(srv.Addr(), "/tracez")
	if err != nil || code != 200 {
		return fail("/tracez: code %d err %v", code, err)
	}
	var tdoc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &tdoc); err != nil {
		return fail("/tracez is not valid JSON: %v", err)
	}
	if len(tdoc.TraceEvents) == 0 {
		return fail("/tracez drained no events")
	}
	lanes := map[string]bool{}
	flows := map[string][]string{}
	for _, ev := range tdoc.TraceEvents {
		if cat, ok := ev["cat"].(string); ok {
			lanes[cat] = true
		}
		if ph, _ := ev["ph"].(string); ph == "s" || ph == "t" || ph == "f" {
			id, _ := ev["id"].(string)
			flows[id] = append(flows[id], ph)
		}
	}
	for _, want := range []string{"vm", "persist", "shard", "replica"} {
		if !lanes[want] {
			return fail("/tracez missing %q events (have %v)", want, lanes)
		}
	}
	if len(flows) == 0 {
		return fail("/tracez has no request flow events (sampling should have tagged some commits)")
	}
	for id, phases := range flows {
		if phases[0] != "s" || phases[len(phases)-1] != "f" {
			return fail("/tracez flow %s malformed: %v", id, phases)
		}
	}
	fmt.Printf("smoke: /tracez ok (%d events across %d categories, %d request flows)\n",
		len(tdoc.TraceEvents), len(lanes), len(flows))

	if out != "" {
		if err := os.WriteFile(out, trace, 0o644); err != nil {
			return fail("writing %s: %v", out, err)
		}
		fmt.Printf("smoke: trace written to %s\n", out)
	}
	return 0
}

// get performs one minimal HTTP GET over a fresh loopback connection.
func get(addr, path string) (int, []byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.0\r\nHost: msnap\r\n\r\n", path); err != nil {
		return 0, nil, err
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		return 0, nil, err
	}
	var proto string
	var code int
	if _, err := fmt.Sscanf(status, "%s %d", &proto, &code); err != nil {
		return 0, nil, fmt.Errorf("bad status line %q", status)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, nil, err
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	body, err := io.ReadAll(br)
	return code, body, err
}
