// Command msnap-trace runs a replicated shard workload with lifecycle
// tracing enabled and exports the result as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing), optionally serving the
// live observability endpoint.
//
// Usage:
//
//	msnap-trace [-shards N] [-clients C] [-ops K] [-seed S] [-out trace.json]
//	msnap-trace -smoke [-listen 127.0.0.1:0]
//	msnap-trace -serve [-listen 127.0.0.1:8091]
//
// The default mode runs the workload and writes the drained trace to
// -out. -smoke additionally starts the TCP observability endpoint,
// self-scrapes /metricz, /varz and /tracez over real loopback
// connections, validates the JSON payloads, and writes the scraped
// trace to -out — the CI smoke path. -serve runs the workload and then
// keeps serving the endpoint until the process is killed.
//
// All timestamps in the exported trace are virtual time: the workload
// is a simulation, and the trace shows its simulated concurrency, not
// host scheduling.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net" //lint:allow sockio smoke client for the obs loopback endpoint
	"os"
	"sync"

	"memsnap/internal/core"
	"memsnap/internal/obs"
	"memsnap/internal/replica"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
)

func main() { os.Exit(run()) }

func run() int {
	shards := flag.Int("shards", 4, "shard count (primary and follower)")
	clients := flag.Int("clients", 4, "concurrent workload clients")
	ops := flag.Int("ops", 200, "operations per client")
	keys := flag.Int("keys", 512, "key-space size per tenant")
	seed := flag.Uint64("seed", 1, "workload RNG seed")
	ring := flag.Int("ring", 1<<16, "trace ring capacity in events")
	out := flag.String("out", "trace.json", "trace output path (empty: skip the file)")
	listen := flag.String("listen", "127.0.0.1:0", "observability endpoint address (-smoke/-serve)")
	smoke := flag.Bool("smoke", false, "serve the endpoint, self-scrape and validate /metricz, /varz and /tracez, then exit")
	serveMode := flag.Bool("serve", false, "keep serving the endpoint after the workload until killed")
	flag.Parse()

	rec := obs.NewRecorder(*ring)

	// Primary and follower each get their own machine (their own disk
	// array — the follower survives the primary's death).
	sysOpts := core.Options{CPUs: *shards, DiskBytesEach: 512 << 20}
	sysA, err := core.NewSystem(sysOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: primary system: %v\n", err)
		return 1
	}
	sysB, err := core.NewSystem(sysOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: follower system: %v\n", err)
		return 1
	}

	link := replica.NewLink(replica.LinkConfig{})
	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: *shards, Recorder: rec})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: follower: %v\n", err)
		return 1
	}
	ship := replica.NewShipper(link, fol, *shards, replica.Config{Mode: replica.Async, Recorder: rec})
	svc, err := shard.New(sysA, shard.Config{Shards: *shards, Replicator: ship, Recorder: rec})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: service: %v\n", err)
		return 1
	}
	ship.Attach(svc)
	defer svc.Close()
	defer ship.Close()

	runWorkload(svc, *clients, *ops, *keys, *seed)

	total := svc.TotalStats()
	fmt.Printf("workload done: %d ops, %d commits, %d trace events recorded (%d dropped)\n",
		total.Ops, total.Commits, total.Obs.Recorded, total.Obs.Dropped)

	// The boundary clock gives /varz a virtual "now": the furthest any
	// worker has advanced.
	bclk := sim.NewClock()
	bclk.AdvanceTo(total.Elapsed)

	src := obs.ServerSources{
		Metrics: func(w io.Writer) error {
			if err := svc.FormatPrometheus(w); err != nil {
				return err
			}
			if err := ship.FormatPrometheus(w); err != nil {
				return err
			}
			return fol.FormatPrometheus(w)
		},
		Vars: func() any {
			return map[string]any{
				"total":       svc.TotalStats(),
				"shards":      svc.Stats(),
				"replication": ship.Stats(),
				"follower":    fol.Stats(),
			}
		},
		Trace: rec.Drain,
		Clock: bclk,
	}

	switch {
	case *smoke:
		return runSmoke(*listen, src, *out)
	case *serveMode:
		srv, err := obs.Serve(*listen, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-trace: serve: %v\n", err)
			return 1
		}
		fmt.Printf("serving http://%s/{metricz,varz,tracez} (kill to stop)\n", srv.Addr())
		select {}
	default:
		if *out == "" {
			return 0
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msnap-trace: %v\n", err)
			return 1
		}
		if err := obs.WriteTrace(f, rec.Drain()); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "msnap-trace: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "msnap-trace: %v\n", err)
			return 1
		}
		fmt.Printf("trace written to %s\n", *out)
		return 0
	}
}

// runWorkload drives clients concurrent goroutines of mixed
// put/add/get traffic over a deterministic key walk.
func runWorkload(svc *shard.Service, clients, ops, keys int, seed uint64) {
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := sim.NewRNG(seed + uint64(c)*0x9e3779b9)
			tenant := fmt.Sprintf("t%d", c%3)
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%04d", (c*7919+i*613)%keys)
				switch rng.Intn(4) {
				case 0:
					svc.Get(tenant, key)
				case 1:
					svc.Add(tenant, key, uint64(i%7+1))
				default:
					svc.Put(tenant, key, uint64(c)<<32|uint64(i))
				}
			}
		}(c)
	}
	wg.Wait()
}

// runSmoke starts the endpoint, scrapes all three paths over real TCP,
// validates each payload, and writes the scraped trace to out.
func runSmoke(listen string, src obs.ServerSources, out string) int {
	srv, err := obs.Serve(listen, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msnap-trace: serve: %v\n", err)
		return 1
	}
	defer srv.Close()
	fmt.Printf("smoke: endpoint on %s\n", srv.Addr())

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "msnap-trace: smoke: "+format+"\n", args...)
		return 1
	}

	code, metrics, err := get(srv.Addr(), "/metricz")
	if err != nil || code != 200 {
		return fail("/metricz: code %d err %v", code, err)
	}
	for _, want := range []string{
		"memsnap_shard_commit_latency_seconds_bucket",
		"memsnap_shard_persist_latency_seconds_count",
		"memsnap_obs_events_recorded_total",
		"memsnap_replica_ack_latency_seconds_count",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			return fail("/metricz missing series %s", want)
		}
	}
	fmt.Printf("smoke: /metricz ok (%d bytes)\n", len(metrics))

	code, varz, err := get(srv.Addr(), "/varz")
	if err != nil || code != 200 {
		return fail("/varz: code %d err %v", code, err)
	}
	var vdoc struct {
		VirtualSeconds float64        `json:"virtual_now_seconds"`
		Vars           map[string]any `json:"vars"`
	}
	if err := json.Unmarshal(varz, &vdoc); err != nil {
		return fail("/varz is not valid JSON: %v", err)
	}
	if vdoc.VirtualSeconds <= 0 || vdoc.Vars["total"] == nil {
		return fail("/varz payload incomplete: now=%v keys=%d", vdoc.VirtualSeconds, len(vdoc.Vars))
	}
	fmt.Printf("smoke: /varz ok (virtual now %.6fs)\n", vdoc.VirtualSeconds)

	code, trace, err := get(srv.Addr(), "/tracez")
	if err != nil || code != 200 {
		return fail("/tracez: code %d err %v", code, err)
	}
	var tdoc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &tdoc); err != nil {
		return fail("/tracez is not valid JSON: %v", err)
	}
	if len(tdoc.TraceEvents) == 0 {
		return fail("/tracez drained no events")
	}
	lanes := map[string]bool{}
	for _, ev := range tdoc.TraceEvents {
		if cat, ok := ev["cat"].(string); ok {
			lanes[cat] = true
		}
	}
	for _, want := range []string{"vm", "persist", "shard", "replica"} {
		if !lanes[want] {
			return fail("/tracez missing %q events (have %v)", want, lanes)
		}
	}
	fmt.Printf("smoke: /tracez ok (%d events across %d categories)\n", len(tdoc.TraceEvents), len(lanes))

	if out != "" {
		if err := os.WriteFile(out, trace, 0o644); err != nil {
			return fail("writing %s: %v", out, err)
		}
		fmt.Printf("smoke: trace written to %s\n", out)
	}
	return 0
}

// get performs one minimal HTTP GET over a fresh loopback connection.
func get(addr, path string) (int, []byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.0\r\nHost: msnap\r\n\r\n", path); err != nil {
		return 0, nil, err
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		return 0, nil, err
	}
	var proto string
	var code int
	if _, err := fmt.Sscanf(status, "%s %d", &proto, &code); err != nil {
		return 0, nil, fmt.Errorf("bad status line %q", status)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, nil, err
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	body, err := io.ReadAll(br)
	return code, body, err
}
