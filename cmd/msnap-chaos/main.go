// Command msnap-chaos sweeps the deterministic fault matrix: seeds ×
// fault schedules × topologies under a chosen workload, asserting the
// four per-cell invariants (manifest-committed recovery, follower
// prefix convergence, exactly-once responses, zero pool leaks).
//
// Usage:
//
//	msnap-chaos                                 # default 3×7×3 grid, ycsb-a
//	msnap-chaos -seeds 1,7,42,99 -schedules powercut,cutrace -topos replica
//	msnap-chaos -workload tpcc -minops 800
//	msnap-chaos -json -out chaos.json           # machine-readable matrix
//	msnap-chaos -cell 'seed=7/sched=cutrace/topo=replica'   # reproduce one cell
//	msnap-chaos -bundle-dir flight/             # flight bundle per failing cell
//	msnap-chaos -list                           # print grid axes
//
// Every failure prints its cell ID; feeding that ID back via -cell
// reruns exactly that cell, bit for bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"memsnap/internal/chaos"
)

func main() {
	seeds := flag.String("seeds", "", "comma-separated cell seeds (default 1,7,42)")
	schedules := flag.String("schedules", "", "comma-separated schedule names (default all)")
	topos := flag.String("topos", "", "comma-separated topologies (default single,replica,net)")
	workloadName := flag.String("workload", "ycsb-a", "workload generator")
	shards := flag.Int("shards", 2, "shards per service")
	minOps := flag.Int("minops", 400, "per-cell workload op floor")
	jsonOut := flag.Bool("json", false, "emit the machine-readable matrix report")
	out := flag.String("out", "", "write the report to a file instead of stdout")
	cellID := flag.String("cell", "", "run a single cell by ID (seed=S/sched=NAME/topo=T)")
	bundleDir := flag.String("bundle-dir", "", "write each failing cell's flight-recorder bundle into this directory")
	list := flag.Bool("list", false, "list grid axes and exit")
	flag.Parse()

	if *list {
		fmt.Println("schedules:")
		for _, s := range chaos.Schedules() {
			fmt.Printf("  %-10s %v\n             %s\n", s.Name, s.Topos, s.Desc)
		}
		fmt.Printf("topologies: %v\n", chaos.Topologies())
		fmt.Printf("workloads:  %v\n", chaos.Workloads())
		return
	}

	cfg := chaos.Config{
		Workload:  *workloadName,
		Shards:    *shards,
		MinOps:    *minOps,
		BundleDir: *bundleDir,
	}
	if *bundleDir != "" {
		if err := os.MkdirAll(*bundleDir, 0o755); err != nil {
			fatalf("bundle dir: %v", err)
		}
	}
	for _, s := range splitList(*seeds) {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			fatalf("bad seed %q: %v", s, err)
		}
		cfg.Seeds = append(cfg.Seeds, n)
	}
	cfg.Schedules = splitList(*schedules)
	for _, t := range splitList(*topos) {
		cfg.Topologies = append(cfg.Topologies, chaos.Topology(t))
	}

	if *cellID != "" {
		cell, err := chaos.ParseCellID(*cellID)
		if err != nil {
			fatalf("%v", err)
		}
		res := chaos.RunCell(cfg, cell)
		rep := &chaos.Report{
			Workload: cfg.Workload, Seeds: []uint64{cell.Seed},
			Schedules: []string{cell.Schedule}, Topologies: []chaos.Topology{cell.Topology},
			Cells: []chaos.CellResult{res}, Total: 1,
		}
		if !res.Pass {
			rep.Failed = 1
		}
		emit(rep, *jsonOut, *out)
		if !res.Pass {
			os.Exit(1)
		}
		return
	}

	rep, err := chaos.Run(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	emit(rep, *jsonOut, *out)
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

func emit(rep *chaos.Report, asJSON bool, path string) {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if asJSON {
		if err := rep.WriteJSON(w); err != nil {
			fatalf("write report: %v", err)
		}
		if path != "" {
			// Keep the terminal summary even when the JSON goes to a file.
			fmt.Print(rep.Matrix())
		}
		return
	}
	fmt.Fprint(w, rep.Matrix())
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "msnap-chaos: "+format+"\n", args...)
	os.Exit(1)
}
