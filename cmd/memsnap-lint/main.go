// Command memsnap-lint runs the repo's design-rule analyzers
// (internal/lint) over the module and exits non-zero on violations.
//
// Usage:
//
//	memsnap-lint [-list] [pattern ...]
//
// Patterns are import-path or directory prefixes relative to the
// module root ("./..." or no arguments means the whole module;
// "./internal/shard" or "internal/shard/..." restricts to a subtree).
// The tool has zero third-party dependencies and needs no network:
// module packages are type-checked from the repo tree, the standard
// library from GOROOT source.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memsnap/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	rules := flag.String("rules", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: memsnap-lint [-list] [-rules a,b] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fatalf("unknown analyzer %q (use -list)", r)
		}
		analyzers = sel
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs = filterPackages(pkgs, loader.Module, root, flag.Args())

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "memsnap-lint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// filterPackages keeps packages matching any of the path patterns.
// Empty patterns or "./..." match everything.
func filterPackages(pkgs []*lint.Package, module, root string, patterns []string) []*lint.Package {
	var prefixes []string
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "...")
		pat = strings.TrimSuffix(pat, "/")
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			return pkgs
		}
		prefixes = append(prefixes, module+"/"+filepath.ToSlash(pat))
	}
	if len(prefixes) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, pre := range prefixes {
			if p.Path == pre || strings.HasPrefix(p.Path, pre+"/") {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memsnap-lint: "+format+"\n", args...)
	os.Exit(1)
}
