// Command memsnap-lint runs the repo's design-rule analyzers
// (internal/lint) over the module and exits non-zero on violations.
//
// Usage:
//
//	memsnap-lint [-list] [-json] [pattern ...]
//
// Patterns are import-path or directory prefixes relative to the
// module root ("./..." or no arguments means the whole module;
// "./internal/shard" or "internal/shard/..." restricts to a subtree).
// With -json, diagnostics are written to stdout as a JSON array of
// {file, line, col, rule, message} objects (empty array when clean)
// for machine consumption; the exit status still reflects violations.
// The tool has zero third-party dependencies and needs no network:
// module packages are type-checked from the repo tree, the standard
// library from GOROOT source.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memsnap/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	rules := flag.String("rules", "", "comma-separated subset of analyzers to run (default: all)")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: memsnap-lint [-list] [-rules a,b] [-json] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fatalf("unknown analyzer %q (use -list)", r)
		}
		analyzers = sel
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs = filterPackages(pkgs, loader.Module, root, flag.Args())

	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		writeJSON(root, diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "memsnap-lint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable diagnostic shape (-json).
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSON emits diagnostics as a JSON array on stdout, with file
// paths relative to the module root so reports are stable across
// checkouts. An empty run prints "[]", never "null".
func writeJSON(root string, diags []lint.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonDiag{
			File:    file,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatalf("encoding JSON: %v", err)
	}
}

// filterPackages keeps packages matching any of the path patterns.
// Empty patterns or "./..." match everything.
func filterPackages(pkgs []*lint.Package, module, root string, patterns []string) []*lint.Package {
	var prefixes []string
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "...")
		pat = strings.TrimSuffix(pat, "/")
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			return pkgs
		}
		prefixes = append(prefixes, module+"/"+filepath.ToSlash(pat))
	}
	if len(prefixes) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, pre := range prefixes {
			if p.Path == pre || strings.HasPrefix(p.Path, pre+"/") {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memsnap-lint: "+format+"\n", args...)
	os.Exit(1)
}
