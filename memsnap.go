// Package memsnap is a Go reproduction of "MemSnap uCheckpoints: A
// Data Single Level Store for Fearless Persistence" (ASPLOS 2024).
//
// MemSnap lets an application treat one in-memory dataset as its only
// copy — a data single level store. Programs map named persistent
// regions at fixed virtual addresses, mutate them in place, and call
// Persist to atomically write exactly the pages the calling thread
// dirtied (a uCheckpoint), with no write-ahead log and no file API.
//
// Because the original system lives in the FreeBSD kernel (page-fault
// handling, PTE manipulation, TLB shootdowns, direct NVMe IO), this
// reproduction runs the same design over a simulated machine: all
// region accesses go through a Context, which plays the role of a
// hardware thread and delivers simulated page faults, and all costs
// are charged to deterministic virtual clocks calibrated against the
// paper's measurements. See DESIGN.md for the substitution table.
//
// Basic usage:
//
//	store, _ := memsnap.NewStore(memsnap.Config{})
//	proc := store.NewProcess()
//	ctx := proc.NewContext(0)
//	region, _ := proc.Open(ctx, "mydata", 1<<20)
//	ctx.WriteAt(region, 0, []byte("hello"))
//	epoch, _ := ctx.Persist(region, memsnap.Sync)
//
// After a crash, reopen the store with RecoverStore and map the same
// region: all data from completed uCheckpoints is intact, and
// in-flight ones are invisible — atomicity across memory and storage.
package memsnap

import (
	"time"

	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/objstore"
	"memsnap/internal/sim"
)

// Re-exported core types. The public API is a thin veneer over
// internal/core so examples, tools and tests share one implementation.
type (
	// Store is a MemSnap machine: memory, TLBs, disks and the COW
	// object store.
	Store = core.System
	// Process is one application process (an address space).
	Process = core.Process
	// Context is one application thread; the unit of dirty-set
	// tracking.
	Context = core.Context
	// Region is a named persistent memory region.
	Region = core.Region
	// Epoch identifies one uCheckpoint of a region.
	Epoch = objstore.Epoch
	// Flags modify Persist.
	Flags = core.Flags
	// PersistBreakdown is the phase timing of a Persist call.
	PersistBreakdown = core.PersistBreakdown
	// CostModel holds the simulation's calibrated cost constants.
	CostModel = sim.CostModel
	// Clock is a virtual clock.
	Clock = sim.Clock
)

// Persist flags (Table 4 of the paper).
const (
	// Sync blocks until the uCheckpoint is durable.
	Sync = core.MSSync
	// Async initiates the IO and returns; use Context.Wait.
	Async = core.MSAsync
	// Global persists every thread's dirty set, not just the
	// caller's.
	Global = core.MSGlobal
)

// PageSize is the tracking and persistence granularity.
const PageSize = core.PageSize

// Config sizes a new Store.
type Config struct {
	// Costs overrides the calibrated cost model (nil = defaults).
	Costs *CostModel
	// CPUs is the simulated CPU count (default 24).
	CPUs int
	// Disks is the stripe width (default 2).
	Disks int
	// DiskBytesEach is the per-device capacity (default 256 MiB).
	DiskBytesEach int64
}

// NewStore formats a fresh MemSnap machine.
func NewStore(cfg Config) (*Store, error) {
	return core.NewSystem(core.Options{
		Costs:         cfg.Costs,
		CPUs:          cfg.CPUs,
		Disks:         cfg.Disks,
		DiskBytesEach: cfg.DiskBytesEach,
	})
}

// RecoverStore reboots a machine from the disks of a previous one —
// the crash-recovery path. It returns the recovered store and the
// virtual time at which recovery finished.
func RecoverStore(cfg Config, arr *disk.Array, at time.Duration) (*Store, time.Duration, error) {
	return core.Recover(core.Options{
		Costs:         cfg.Costs,
		CPUs:          cfg.CPUs,
		Disks:         cfg.Disks,
		DiskBytesEach: cfg.DiskBytesEach,
	}, arr, at)
}

// DefaultCosts returns the calibrated cost model (see DESIGN.md for
// the calibration targets).
func DefaultCosts() *CostModel { return sim.DefaultCosts() }
