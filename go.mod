module memsnap

go 1.22
