package memsnap_test

// Benchmark harness: one testing.B benchmark per paper table/figure.
// Each benchmark drives the corresponding harness experiment at a
// small scale and reports headline values as custom metrics
// (simulated microseconds / operations per simulated second), so
// `go test -bench=. -benchmem` regenerates the paper's evaluation in
// summary form. For full tables run `go run ./cmd/memsnap-bench all`.

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"memsnap"
	"memsnap/internal/harness"
	"memsnap/internal/sim"
)

// benchOpts keeps bench runs short; b.N loops re-run the experiment.
func benchOpts() harness.Options { return harness.Options{Scale: 0.05, Threads: 2, Seed: 1} }

// reportCell parses a numeric table cell (possibly with K suffix) as
// a custom metric.
func reportCell(b *testing.B, res *harness.Result, row, col int, name string) {
	b.Helper()
	cell := res.Rows[row][col]
	mult := 1.0
	s := strings.TrimSuffix(cell, "K")
	if s != cell {
		mult = 1000
	}
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "ms")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	b.ReportMetric(v*mult, name)
}

func runExperiment(b *testing.B, id string) *harness.Result {
	b.Helper()
	e, ok := harness.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var res *harness.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = e.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkTable1_RocksDBCPUBreakdown regenerates Table 1.
func BenchmarkTable1_RocksDBCPUBreakdown(b *testing.B) {
	res := runExperiment(b, "table1")
	reportCell(b, res, 0, 1, "txmem_pct")
}

// BenchmarkTable2_AuroraBreakdown regenerates Table 2.
func BenchmarkTable2_AuroraBreakdown(b *testing.B) {
	res := runExperiment(b, "table2")
	reportCell(b, res, 4, 1, "total_us")
	reportCell(b, res, 1, 1, "shadow_us")
}

// BenchmarkFigure1_ProtectionReset regenerates Figure 1.
func BenchmarkFigure1_ProtectionReset(b *testing.B) {
	res := runExperiment(b, "fig1")
	reportCell(b, res, 0, 1, "scan4K_us")
	reportCell(b, res, 0, 3, "trace4K_us")
}

// BenchmarkTable5_PersistBreakdown regenerates Table 5.
func BenchmarkTable5_PersistBreakdown(b *testing.B) {
	res := runExperiment(b, "table5")
	reportCell(b, res, 3, 1, "total_us")
	reportCell(b, res, 0, 1, "reset_us")
}

// BenchmarkTable6_PersistenceAPIs regenerates Table 6.
func BenchmarkTable6_PersistenceAPIs(b *testing.B) {
	res := runExperiment(b, "table6")
	reportCell(b, res, 0, 6, "memsnap4K_sync_us")
	reportCell(b, res, 0, 4, "ffs4K_rand_us")
	reportCell(b, res, 4, 6, "memsnap64K_sync_us")
}

// BenchmarkFigure3_MemSnapVsAurora regenerates Figure 3.
func BenchmarkFigure3_MemSnapVsAurora(b *testing.B) {
	res := runExperiment(b, "fig3")
	reportCell(b, res, 0, 1, "memsnap4K_us")
	reportCell(b, res, 0, 2, "aurora_region4K_us")
	reportCell(b, res, 0, 3, "aurora_app4K_us")
}

// BenchmarkTable7_SQLiteSyscalls regenerates Table 7.
func BenchmarkTable7_SQLiteSyscalls(b *testing.B) {
	res := runExperiment(b, "table7")
	reportCell(b, res, 0, 2, "persist4Krand_us")
	reportCell(b, res, 0, 4, "fsync4Krand_us")
}

// BenchmarkTable8_SQLiteCPU regenerates Table 8.
func BenchmarkTable8_SQLiteCPU(b *testing.B) {
	res := runExperiment(b, "table8")
	reportCell(b, res, 0, 5, "baseline_rand_wall_ms")
	reportCell(b, res, 1, 5, "memsnap_rand_wall_ms")
}

// BenchmarkFigure4_SQLiteLatency regenerates Figure 4.
func BenchmarkFigure4_SQLiteLatency(b *testing.B) {
	res := runExperiment(b, "fig4")
	reportCell(b, res, 0, 2, "memsnap4Krand_avg_us")
	reportCell(b, res, 0, 4, "baseline4Krand_avg_us")
}

// BenchmarkFigure5_TATP regenerates Figure 5.
func BenchmarkFigure5_TATP(b *testing.B) {
	res := runExperiment(b, "fig5")
	reportCell(b, res, 0, 1, "baseline1K_tps")
	reportCell(b, res, 0, 2, "memsnap1K_tps")
}

// BenchmarkTable9_RocksDBThroughput regenerates Table 9.
func BenchmarkTable9_RocksDBThroughput(b *testing.B) {
	res := runExperiment(b, "table9")
	reportCell(b, res, 0, 1, "memsnap_kops")
	reportCell(b, res, 2, 1, "aurora_kops")
}

// BenchmarkTable10_PersistVsAurora regenerates Table 10.
func BenchmarkTable10_PersistVsAurora(b *testing.B) {
	res := runExperiment(b, "table10")
	reportCell(b, res, 4, 1, "memsnap_total_us")
	reportCell(b, res, 4, 2, "aurora_total_us")
}

// BenchmarkFigure6_PostgresTPCC regenerates Figure 6.
func BenchmarkFigure6_PostgresTPCC(b *testing.B) {
	res := runExperiment(b, "fig6")
	reportCell(b, res, 0, 1, "ffs_tps")
	reportCell(b, res, 3, 1, "memsnap_tps")
	reportCell(b, res, 3, 3, "memsnap_kb_per_tx")
}

// BenchmarkAblation_TLBFlushThreshold regenerates the TLB policy
// ablation (DESIGN.md §5).
func BenchmarkAblation_TLBFlushThreshold(b *testing.B) {
	res := runExperiment(b, "ablation-tlb")
	reportCell(b, res, 0, 1, "shootdown1_us")
}

// BenchmarkAblation_StoreBackend regenerates the store-backend
// ablation.
func BenchmarkAblation_StoreBackend(b *testing.B) {
	res := runExperiment(b, "ablation-store")
	reportCell(b, res, 0, 2, "cow_commit_us")
	reportCell(b, res, 0, 3, "rewrite_us")
}

// BenchmarkAblation_SkipPointers regenerates the skip-pointer
// ablation.
func BenchmarkAblation_SkipPointers(b *testing.B) {
	runExperiment(b, "ablation-skip")
}

// BenchmarkAblation_WriteAmp regenerates the write-amplification
// ablation.
func BenchmarkAblation_WriteAmp(b *testing.B) {
	runExperiment(b, "ablation-writeamp")
}

// BenchmarkAblation_GroupCommitBatch regenerates the shard service's
// group-commit batch ablation: 8-shard throughput with batch caps of
// 1, 16 and 64 (rows 3-5 of the shardsvc grid).
func BenchmarkAblation_GroupCommitBatch(b *testing.B) {
	res := runExperiment(b, "shardsvc")
	reportCell(b, res, 3, 2, "batch1_kops")
	reportCell(b, res, 4, 2, "batch16_kops")
	reportCell(b, res, 5, 2, "batch64_kops")
	reportCell(b, res, 5, 3, "batch64_occupancy")
}

// BenchmarkRawPersist4K measures the core uCheckpoint path directly
// (no experiment harness): one dirty page, synchronous persist.
func BenchmarkRawPersist4K(b *testing.B) {
	store, err := memsnap.NewStore(memsnap.Config{DiskBytesEach: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	proc := store.NewProcess()
	ctx := proc.NewContext(0)
	region, err := proc.Open(ctx, "bench", 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.WriteAt(region, int64(i%1000)*memsnap.PageSize, payload)
		if _, err := ctx.Persist(region, memsnap.Sync); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.PersistLatency.Mean().Microseconds()), "sim_us/persist")
}

// BenchmarkRawTrackingFault measures the simulated minor-fault path.
func BenchmarkRawTrackingFault(b *testing.B) {
	store, _ := memsnap.NewStore(memsnap.Config{DiskBytesEach: 1 << 30})
	proc := store.NewProcess()
	ctx := proc.NewContext(0)
	region, _ := proc.Open(ctx, "bench", 256<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.WriteAt(region, int64(i%60000)*memsnap.PageSize, []byte{1})
		if i%4096 == 4095 {
			// Reset tracking so faults keep firing.
			ctx.Persist(region, memsnap.Async)
			ctx.Wait(region, 0)
		}
	}
}

// BenchmarkRawRNG keeps the simulation substrate honest about its own
// real-world overheads.
func BenchmarkRawRNG(b *testing.B) {
	rng := sim.NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += rng.Uint64()
	}
	_ = sink
}
