package pgdb

import (
	"bytes"
	"testing"
	"testing/quick"
)

func freshHeapPage() []byte {
	p := make([]byte, HeapPageSize)
	heapInit(p)
	return p
}

func TestHeapInsertTuple(t *testing.T) {
	p := freshHeapPage()
	slot := heapInsert(p, 7, []byte("payload-one"))
	if slot != 0 {
		t.Fatalf("first slot = %d", slot)
	}
	xmin, xmax, payload := heapTuple(p, slot)
	if xmin != 7 || xmax != 0 || string(payload) != "payload-one" {
		t.Fatalf("tuple = %d/%d/%q", xmin, xmax, payload)
	}
	slot2 := heapInsert(p, 8, []byte("payload-two"))
	if slot2 != 1 {
		t.Fatalf("second slot = %d", slot2)
	}
	// First tuple untouched.
	if _, _, pl := heapTuple(p, 0); string(pl) != "payload-one" {
		t.Fatal("first tuple disturbed")
	}
}

func TestHeapSetXmax(t *testing.T) {
	p := freshHeapPage()
	slot := heapInsert(p, 3, []byte("v"))
	heapSetXmax(p, slot, 44)
	_, xmax, _ := heapTuple(p, slot)
	if xmax != 44 {
		t.Fatalf("xmax = %d", xmax)
	}
}

func TestHeapFreeSpaceAccounting(t *testing.T) {
	p := freshHeapPage()
	start := heapFree(p)
	if start <= 0 || start >= HeapPageSize {
		t.Fatalf("initial free = %d", start)
	}
	payload := bytes.Repeat([]byte{1}, 100)
	heapInsert(p, 1, payload)
	if got := heapFree(p); got != start-(tupleHdr+100+2) {
		t.Fatalf("free after insert = %d, want %d", got, start-(tupleHdr+100+2))
	}
}

func TestHeapFits(t *testing.T) {
	p := freshHeapPage()
	big := bytes.Repeat([]byte{1}, maxTuple)
	if !heapFits(p, big) {
		t.Fatal("max tuple should fit an empty page")
	}
	heapInsert(p, 1, big)
	if heapFits(p, []byte("x")) {
		t.Fatal("full page claims to fit more")
	}
}

func TestHeapTupleOutOfRangePanics(t *testing.T) {
	p := freshHeapPage()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad slot")
		}
	}()
	heapTuple(p, 5)
}

func TestHeapFillDrainProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		p := freshHeapPage()
		type rec struct {
			slot    uint16
			payload []byte
		}
		var recs []rec
		for i, sz := range sizes {
			payload := bytes.Repeat([]byte{byte(i)}, int(sz)+1)
			if !heapFits(p, payload) {
				break
			}
			slot := heapInsert(p, uint32(i+1), payload)
			recs = append(recs, rec{slot, payload})
		}
		for i, r := range recs {
			xmin, _, payload := heapTuple(p, r.slot)
			if xmin != uint32(i+1) || !bytes.Equal(payload, r.payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTIDNil(t *testing.T) {
	if !(TID{}).Nil() {
		t.Fatal("zero TID not nil")
	}
	if (TID{Page: 1}).Nil() {
		t.Fatal("non-zero TID nil")
	}
}
