package pgdb

import (
	"fmt"
	"sync"
	"sync/atomic"

	"memsnap/internal/core"
	"memsnap/internal/fs"
	"memsnap/internal/sim"
	"memsnap/internal/wal"
)

// Variant selects the storage design under test (Figure 6).
type Variant int

// Storage variants.
const (
	// VarFFS is stock PostgreSQL on a journaling filesystem.
	VarFFS Variant = iota
	// VarMmap memory-maps table files (flushes via msync).
	VarMmap
	// VarMmapBufDirect additionally modifies mapped data in place,
	// logging full page images every commit.
	VarMmapBufDirect
	// VarMemSnap replaces files with MemSnap regions; commits are
	// uCheckpoints and the WAL is gone.
	VarMemSnap
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VarFFS:
		return "ffs"
	case VarMmap:
		return "ffs-mmap"
	case VarMmapBufDirect:
		return "ffs-mmap-bd"
	case VarMemSnap:
		return "memsnap"
	}
	return "?"
}

// DefaultCheckpointWAL is the WAL size that triggers a checkpoint in
// the file variants.
const DefaultCheckpointWAL = 16 << 20

// bufKey addresses one heap page in the shared buffer cache.
type bufKey struct {
	rel  string
	page uint32
}

type buffer struct {
	// fill reads the page from storage exactly once, after the buffer
	// is published in the cache map; racing lookups block on it.
	fill  sync.Once
	data  []byte
	dirty bool
	// shadow holds the last region-committed image (MemSnap variant)
	// so commits persist only the 4 KiB halves that actually changed
	// — the granularity the real system gets for free by pointing
	// the buffer cache directly into regions.
	shadow []byte
}

// Cluster is one database instance shared by all backends.
type Cluster struct {
	variant Variant
	costs   *sim.CostModel

	// File-variant state.
	fsys  *fs.FS
	files map[string]*fs.File
	log   *wal.WAL
	// pagesLogged tracks pages whose full image already went to the
	// WAL since the last checkpoint (full_page_writes).
	pagesLogged  map[bufKey]bool
	checkpointAt int64

	// MemSnap-variant state.
	sys     *core.System
	proc0   *core.Process // region-owning process
	ctx0    *core.Context
	regions map[string]*core.Region

	mu        sync.Mutex
	relations map[string]*relation
	buffers   map[bufKey]*buffer

	// contentMu is PostgreSQL's per-buffer content locks, coarsened to
	// one lock: it guards heap page bytes plus the dirty/shadow fields
	// of every buffer. mu only guards the maps above. Lock ordering:
	// contentMu before mu; never the reverse.
	contentMu sync.Mutex

	// lockmgr serializes commits and checkpoints (PostgreSQL's WAL
	// insert lock, heavily simplified).
	lockmgr sim.VLock

	nextXid     atomic.Uint32
	committed   sync.Map // xid -> true (the commit log)
	regionBytes int64

	// Checkpoints counts checkpointer runs.
	Checkpoints int64
	// Commits counts committed transactions.
	Commits atomic.Int64
}

// Config configures a cluster.
type Config struct {
	Variant Variant
	Costs   *sim.CostModel
	// Fsys backs the file variants.
	Fsys *fs.FS
	// Sys backs the MemSnap variant.
	Sys *core.System
	// CheckpointWAL overrides DefaultCheckpointWAL.
	CheckpointWAL int64
	// RegionBytes sizes each relation's region (MemSnap variant).
	RegionBytes int64
}

// NewCluster initializes an empty cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Costs == nil {
		cfg.Costs = sim.DefaultCosts()
	}
	if cfg.CheckpointWAL <= 0 {
		cfg.CheckpointWAL = DefaultCheckpointWAL
	}
	if cfg.RegionBytes <= 0 {
		cfg.RegionBytes = 256 << 20
	}
	c := &Cluster{
		variant:      cfg.Variant,
		costs:        cfg.Costs,
		relations:    make(map[string]*relation),
		buffers:      make(map[bufKey]*buffer),
		pagesLogged:  make(map[bufKey]bool),
		checkpointAt: cfg.CheckpointWAL,
	}
	c.nextXid.Store(1)
	switch cfg.Variant {
	case VarMemSnap:
		if cfg.Sys == nil {
			return nil, fmt.Errorf("pgdb: MemSnap variant needs Sys")
		}
		c.sys = cfg.Sys
		c.proc0 = cfg.Sys.NewProcess()
		c.ctx0 = c.proc0.NewContext(0)
		c.regions = make(map[string]*core.Region)
		c.regionBytes = cfg.RegionBytes
	default:
		if cfg.Fsys == nil {
			return nil, fmt.Errorf("pgdb: file variants need Fsys")
		}
		c.fsys = cfg.Fsys
		c.files = make(map[string]*fs.File)
		clk := sim.NewClock()
		c.log = wal.Create(cfg.Fsys, clk, "pg_wal")
	}
	return c, nil
}

// Variant returns the storage variant.
func (c *Cluster) Variant() Variant { return c.variant }

// CreateRelation adds a table.
func (c *Cluster) CreateRelation(clk *sim.Clock, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.relations[name]; ok {
		return fmt.Errorf("pgdb: relation %q exists", name)
	}
	c.relations[name] = &relation{name: name}
	switch c.variant {
	case VarMemSnap:
		region, err := c.proc0.Open(c.ctx0, "rel-"+name, c.regionBytes)
		if err != nil {
			return err
		}
		c.regions[name] = region
	default:
		c.files[name] = c.fsys.Create(clk, "rel-"+name)
	}
	return nil
}

// relationNames returns all relations (sorted for determinism).
func (c *Cluster) relationNames() []string {
	names := make([]string, 0, len(c.relations))
	for n := range c.relations {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// xidCommitted reports whether a transaction committed.
func (c *Cluster) xidCommitted(xid uint32) bool {
	if xid == 0 {
		return false
	}
	_, ok := c.committed.Load(xid)
	return ok
}
