package pgdb

import (
	"encoding/binary"
	"fmt"
	"sync"

	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

// TPCC drives the sysbench TPC-C schema over a pgdb cluster
// (Figure 6). Primary-key indexes are kept in driver memory (the
// reproduction benchmarks storage-engine throughput, not index IO,
// which PostgreSQL would also largely cache for this working set).
type TPCC struct {
	c          *Cluster
	warehouses int64
	items      int64 // stock rows per warehouse

	mu  sync.Mutex
	idx map[string]map[int64]TID
	// lastOrder tracks each (warehouse, district)'s newest order id.
	lastOrder map[int64]int64
	// pendingDelivery queues undelivered orders per warehouse.
	pendingDelivery map[int64][]int64
	orderSeq        int64

	// whLocks serialize same-warehouse writers (PostgreSQL row locks,
	// coarsened).
	whLocks []sim.VLock
}

// Relation names.
const (
	relWarehouse = "warehouse"
	relDistrict  = "district"
	relCustomer  = "customer"
	relStock     = "stock"
	relOrders    = "orders"
	relOrderLine = "order_line"
	relHistory   = "history"
)

// tpccRow is the generic fixed-shape tuple all TPC-C tables use in
// this reproduction: an id plus three numeric fields.
func encodeRow(id, f1, f2, f3 int64) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b, uint64(id))
	binary.LittleEndian.PutUint64(b[8:], uint64(f1))
	binary.LittleEndian.PutUint64(b[16:], uint64(f2))
	binary.LittleEndian.PutUint64(b[24:], uint64(f3))
	return b
}

func decodeRow(b []byte) (id, f1, f2, f3 int64) {
	return int64(binary.LittleEndian.Uint64(b)),
		int64(binary.LittleEndian.Uint64(b[8:])),
		int64(binary.LittleEndian.Uint64(b[16:])),
		int64(binary.LittleEndian.Uint64(b[24:]))
}

// NewTPCC creates the schema and loads initial data using the given
// backend, with the standard 100000 stock items per warehouse.
func NewTPCC(c *Cluster, loader *Backend, warehouses int64) (*TPCC, error) {
	return NewTPCCWithItems(c, loader, warehouses, 100000)
}

// NewTPCCWithItems scales the stock table (tests use small values).
func NewTPCCWithItems(c *Cluster, loader *Backend, warehouses, itemsPerWarehouse int64) (*TPCC, error) {
	d := &TPCC{
		c:               c,
		warehouses:      warehouses,
		items:           itemsPerWarehouse,
		idx:             make(map[string]map[int64]TID),
		lastOrder:       make(map[int64]int64),
		pendingDelivery: make(map[int64][]int64),
		whLocks:         make([]sim.VLock, warehouses),
	}
	for _, rel := range []string{relWarehouse, relDistrict, relCustomer, relStock, relOrders, relOrderLine, relHistory} {
		if err := c.CreateRelation(loader.Clock(), rel); err != nil {
			return nil, err
		}
		d.idx[rel] = make(map[int64]TID)
	}

	loader.Begin()
	count := 0
	commitChunk := func() error {
		count++
		if count%2000 == 0 {
			loader.Commit()
			loader.Begin()
		}
		return nil
	}
	for w := int64(0); w < warehouses; w++ {
		if err := d.load(loader, relWarehouse, w, 0); err != nil {
			return nil, err
		}
		for dist := int64(0); dist < 10; dist++ {
			if err := d.load(loader, relDistrict, w*10+dist, 1); err != nil {
				return nil, err
			}
			for cust := int64(0); cust < 300; cust++ {
				id := (w*10+dist)*300 + cust
				if err := d.load(loader, relCustomer, id, 0); err != nil {
					return nil, err
				}
				commitChunk()
			}
		}
		for item := int64(0); item < d.items; item++ {
			if err := d.load(loader, relStock, w*d.items+item, 50); err != nil {
				return nil, err
			}
			commitChunk()
		}
	}
	loader.Commit()
	return d, nil
}

func (d *TPCC) load(b *Backend, rel string, id, f1 int64) error {
	tid, err := b.Insert(rel, encodeRow(id, f1, 0, 0))
	if err != nil {
		return err
	}
	d.idx[rel][id] = tid
	return nil
}

// lookup resolves a row id.
func (d *TPCC) lookup(rel string, id int64) (TID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tid, ok := d.idx[rel][id]
	return tid, ok
}

func (d *TPCC) setIndex(rel string, id int64, tid TID) {
	d.mu.Lock()
	d.idx[rel][id] = tid
	d.mu.Unlock()
}

// fetchRow reads a row by id.
func (d *TPCC) fetchRow(b *Backend, rel string, id int64) (TID, int64, int64, int64, error) {
	tid, ok := d.lookup(rel, id)
	if !ok {
		return TID{}, 0, 0, 0, fmt.Errorf("pgdb: %s row %d missing", rel, id)
	}
	payload, ok := b.Fetch(rel, tid)
	if !ok {
		return TID{}, 0, 0, 0, fmt.Errorf("pgdb: %s row %d invisible", rel, id)
	}
	_, f1, f2, f3 := decodeRow(payload)
	return tid, f1, f2, f3, nil
}

// updateRow writes a new version of a row and refreshes the index.
func (d *TPCC) updateRow(b *Backend, rel string, id int64, tid TID, f1, f2, f3 int64) error {
	newTID, err := b.Update(rel, tid, encodeRow(id, f1, f2, f3))
	if err != nil {
		return err
	}
	d.setIndex(rel, id, newTID)
	return nil
}

// Run executes one generated transaction on the given backend.
func (d *TPCC) Run(b *Backend, tx workload.TPCCTx) error {
	switch tx.Op {
	case workload.TPCCNewOrder:
		return d.newOrder(b, tx)
	case workload.TPCCPayment:
		return d.payment(b, tx)
	case workload.TPCCOrderStatus:
		return d.orderStatus(b, tx)
	case workload.TPCCDelivery:
		return d.delivery(b, tx)
	case workload.TPCCStockLevel:
		return d.stockLevel(b, tx)
	}
	return fmt.Errorf("pgdb: unknown op %v", tx.Op)
}

func (d *TPCC) newOrder(b *Backend, tx workload.TPCCTx) error {
	lock := &d.whLocks[tx.Warehouse]
	lock.Lock(b.Clock())
	defer lock.Unlock(b.Clock())
	b.Begin()

	distID := tx.Warehouse*10 + tx.District
	tid, nextOid, ytd, f3, err := d.fetchRow(b, relDistrict, distID)
	if err != nil {
		b.Abort()
		return err
	}
	if err := d.updateRow(b, relDistrict, distID, tid, nextOid+1, ytd, f3); err != nil {
		b.Abort()
		return err
	}

	for _, item := range tx.Items {
		stockID := tx.Warehouse*d.items + item.Item%d.items
		stid, qty, sytd, sf3, err := d.fetchRow(b, relStock, stockID)
		if err != nil {
			b.Abort()
			return err
		}
		newQty := qty - int64(item.Quantity)
		if newQty < 10 {
			newQty += 91
		}
		if err := d.updateRow(b, relStock, stockID, stid, newQty, sytd+int64(item.Quantity), sf3); err != nil {
			b.Abort()
			return err
		}
	}

	d.mu.Lock()
	d.orderSeq++
	oid := d.orderSeq
	d.mu.Unlock()
	custID := distID*300 + tx.Customer%300
	otid, err := b.Insert(relOrders, encodeRow(oid, custID, int64(len(tx.Items)), 0))
	if err != nil {
		b.Abort()
		return err
	}
	for i, item := range tx.Items {
		if _, err := b.Insert(relOrderLine, encodeRow(oid*100+int64(i), item.Item, int64(item.Quantity), 0)); err != nil {
			b.Abort()
			return err
		}
	}
	b.Commit()

	d.mu.Lock()
	d.idx[relOrders][oid] = otid
	d.lastOrder[distID] = oid
	d.pendingDelivery[tx.Warehouse] = append(d.pendingDelivery[tx.Warehouse], oid)
	d.mu.Unlock()
	return nil
}

func (d *TPCC) payment(b *Backend, tx workload.TPCCTx) error {
	lock := &d.whLocks[tx.Warehouse]
	lock.Lock(b.Clock())
	defer lock.Unlock(b.Clock())
	b.Begin()

	wtid, wytd, wf2, wf3, err := d.fetchRow(b, relWarehouse, tx.Warehouse)
	if err != nil {
		b.Abort()
		return err
	}
	if err := d.updateRow(b, relWarehouse, tx.Warehouse, wtid, wytd+tx.Amount, wf2, wf3); err != nil {
		b.Abort()
		return err
	}
	distID := tx.Warehouse*10 + tx.District
	dtid, dnext, dytd, df3, err := d.fetchRow(b, relDistrict, distID)
	if err != nil {
		b.Abort()
		return err
	}
	if err := d.updateRow(b, relDistrict, distID, dtid, dnext, dytd+tx.Amount, df3); err != nil {
		b.Abort()
		return err
	}
	custID := distID*300 + tx.Customer%300
	ctid, bal, cf2, cf3, err := d.fetchRow(b, relCustomer, custID)
	if err != nil {
		b.Abort()
		return err
	}
	if err := d.updateRow(b, relCustomer, custID, ctid, bal-tx.Amount, cf2, cf3); err != nil {
		b.Abort()
		return err
	}
	if _, err := b.Insert(relHistory, encodeRow(custID, tx.Amount, 0, 0)); err != nil {
		b.Abort()
		return err
	}
	b.Commit()
	return nil
}

func (d *TPCC) orderStatus(b *Backend, tx workload.TPCCTx) error {
	b.Begin()
	defer b.Commit()
	distID := tx.Warehouse*10 + tx.District
	custID := distID*300 + tx.Customer%300
	if _, _, _, _, err := d.fetchRow(b, relCustomer, custID); err != nil {
		return err
	}
	d.mu.Lock()
	oid := d.lastOrder[distID]
	d.mu.Unlock()
	if oid == 0 {
		return nil // no orders yet
	}
	_, _, lines, _, err := d.fetchRow(b, relOrders, oid)
	if err != nil {
		return err
	}
	_ = lines
	return nil
}

func (d *TPCC) delivery(b *Backend, tx workload.TPCCTx) error {
	d.mu.Lock()
	queue := d.pendingDelivery[tx.Warehouse]
	if len(queue) == 0 {
		d.mu.Unlock()
		return nil
	}
	oid := queue[0]
	d.pendingDelivery[tx.Warehouse] = queue[1:]
	d.mu.Unlock()

	lock := &d.whLocks[tx.Warehouse]
	lock.Lock(b.Clock())
	defer lock.Unlock(b.Clock())
	b.Begin()
	tid, custID, lines, _, err := d.fetchRow(b, relOrders, oid)
	if err != nil {
		b.Abort()
		return err
	}
	if err := d.updateRow(b, relOrders, oid, tid, custID, lines, 1 /* delivered */); err != nil {
		b.Abort()
		return err
	}
	ctid, bal, cf2, cf3, err := d.fetchRow(b, relCustomer, custID)
	if err != nil {
		b.Abort()
		return err
	}
	if err := d.updateRow(b, relCustomer, custID, ctid, bal+10, cf2, cf3); err != nil {
		b.Abort()
		return err
	}
	b.Commit()
	return nil
}

func (d *TPCC) stockLevel(b *Backend, tx workload.TPCCTx) error {
	b.Begin()
	defer b.Commit()
	base := tx.Warehouse * d.items
	low := 0
	for i := int64(0); i < 20; i++ {
		id := base + (tx.Customer*7+i)%d.items
		if _, qty, _, _, err := d.fetchRow(b, relStock, id); err == nil && qty < 15 {
			low++
		}
	}
	return nil
}

// WarehouseYTD sums warehouse year-to-date balances (consistency
// checks in tests).
func (d *TPCC) WarehouseYTD(b *Backend) int64 {
	b.Begin()
	defer b.Commit()
	var sum int64
	for w := int64(0); w < d.warehouses; w++ {
		if _, ytd, _, _, err := d.fetchRow(b, relWarehouse, w); err == nil {
			sum += ytd
		}
	}
	return sum
}
