package pgdb

import (
	"encoding/binary"
	"fmt"

	"memsnap/internal/core"
	"memsnap/internal/sim"
)

// Backend is one database connection's server process. In the MemSnap
// variant each backend is its own simulated process sharing the
// relation regions (the paper's multiprocess configuration); its
// dirty set is tracked per backend and persisted by its own commits.
type Backend struct {
	c   *Cluster
	id  int
	clk *sim.Clock

	// MemSnap variant: the backend's own process/context with shared
	// mappings of every relation region.
	proc    *core.Process
	ctx     *core.Context
	regions map[string]*core.Region

	// Transaction state.
	xid     uint32
	touched map[bufKey]bool
	// walBuf accumulates this transaction's logical WAL payload
	// bytes (flushed at commit).
	walRecs [][]byte
}

// NewBackend creates a backend on simulated CPU cpu.
func (c *Cluster) NewBackend(cpu int) (*Backend, error) {
	b := &Backend{c: c, id: cpu, touched: make(map[bufKey]bool)}
	if c.variant == VarMemSnap {
		b.proc = c.sys.NewProcess()
		b.ctx = b.proc.NewContext(cpu)
		b.clk = b.ctx.Clock()
		b.regions = make(map[string]*core.Region)
		c.mu.Lock()
		for name, region := range c.regions {
			shared, err := b.proc.OpenShared(b.ctx, region)
			if err != nil {
				c.mu.Unlock()
				return nil, err
			}
			b.regions[name] = shared
		}
		c.mu.Unlock()
	} else {
		b.clk = sim.NewClock()
	}
	return b, nil
}

// Clock returns the backend's virtual clock.
func (b *Backend) Clock() *sim.Clock { return b.clk }

// Begin starts a transaction.
func (b *Backend) Begin() {
	if b.xid != 0 {
		panic("pgdb: nested transaction")
	}
	b.xid = b.c.nextXid.Add(1)
	b.clk.Advance(b.c.costs.SyscallEntry)
}

// Xid returns the current transaction id (0 outside a transaction).
func (b *Backend) Xid() uint32 { return b.xid }

// getBuffer pins a heap page in the shared buffer cache, reading it
// from storage on a miss. The mmap variants pay the direct-mapping
// access penalty here (faults and TLB pressure instead of a warm
// buffer-cache hit).
func (b *Backend) getBuffer(rel string, pageNo uint32) *buffer {
	c := b.c
	if c.variant == VarMmap || c.variant == VarMmapBufDirect {
		b.clk.Advance(c.costs.MmapAccessPenalty)
	}
	key := bufKey{rel, pageNo}
	c.mu.Lock()
	buf := c.buffers[key]
	miss := buf == nil
	if miss {
		buf = &buffer{data: make([]byte, HeapPageSize)}
		c.buffers[key] = buf
	}
	c.mu.Unlock()
	if miss {
		b.clk.Advance(c.costs.BufferCacheInsert)
	} else {
		b.clk.Advance(c.costs.BufferCacheLookup)
	}
	buf.fill.Do(func() { b.readPageFromStorage(rel, pageNo, buf.data) })
	return buf
}

// readPageFromStorage fills buf with a heap page's durable contents.
func (b *Backend) readPageFromStorage(rel string, pageNo uint32, dst []byte) {
	c := b.c
	switch c.variant {
	case VarMemSnap:
		region := b.regionFor(rel)
		b.ctx.ReadAt(region, int64(pageNo)*HeapPageSize, dst)
	default:
		c.mu.Lock()
		file := c.files[rel]
		c.mu.Unlock()
		file.Read(b.clk, int64(pageNo)*HeapPageSize, dst)
	}
}

func (b *Backend) regionFor(rel string) *core.Region {
	if r := b.regions[rel]; r != nil {
		return r
	}
	// Relation created after this backend started: map it now.
	b.c.mu.Lock()
	region := b.c.regions[rel]
	b.c.mu.Unlock()
	if region == nil {
		panic(fmt.Sprintf("pgdb: no region for %q", rel))
	}
	shared, err := b.proc.OpenShared(b.ctx, region)
	if err != nil {
		panic(err)
	}
	b.regions[rel] = shared
	return shared
}

// pageForWrite returns the buffer of a heap page and notes it in the
// transaction's touched set.
func (b *Backend) pageForWrite(rel string, pageNo uint32) []byte {
	if b.xid == 0 {
		panic("pgdb: write outside transaction")
	}
	buf := b.getBuffer(rel, pageNo)
	c := b.c
	c.contentMu.Lock()
	buf.dirty = true
	c.contentMu.Unlock()
	b.touched[bufKey{rel, pageNo}] = true
	return buf.data
}

// pageForRead returns the buffer of a heap page.
func (b *Backend) pageForRead(rel string, pageNo uint32) []byte {
	return b.getBuffer(rel, pageNo).data
}

// Insert appends a tuple version; returns its TID.
func (b *Backend) Insert(rel string, payload []byte) (TID, error) {
	if len(payload) > maxTuple {
		return TID{}, fmt.Errorf("pgdb: tuple of %d bytes", len(payload))
	}
	b.clk.Advance(b.c.costs.PGExecutorPerRowOp)
	c := b.c
	c.mu.Lock()
	r := c.relations[rel]
	if r == nil {
		c.mu.Unlock()
		return TID{}, fmt.Errorf("pgdb: no relation %q", rel)
	}
	pageNo := r.pages
	c.mu.Unlock()

	// Try the last page; extend the heap when full.
	for {
		if pageNo == 0 {
			pageNo = b.extendHeap(rel)
			continue
		}
		p := b.pageForWrite(rel, pageNo-1)
		c.contentMu.Lock()
		fits := heapFits(p, payload)
		var slot uint16
		if fits {
			slot = heapInsert(p, b.xid, payload)
		}
		c.contentMu.Unlock()
		if fits {
			b.logTuple(rel, pageNo-1, payload)
			b.clk.Advance(c.costs.MemcpyCost(len(payload)))
			return TID{Page: pageNo - 1, Slot: slot}, nil
		}
		pageNo = b.extendHeap(rel)
	}
}

// extendHeap allocates and formats a fresh heap page, returning the
// new page count.
func (b *Backend) extendHeap(rel string) uint32 {
	c := b.c
	c.mu.Lock()
	r := c.relations[rel]
	r.pages++
	pageNo := r.pages
	c.mu.Unlock()
	p := b.pageForWrite(rel, pageNo-1)
	c.contentMu.Lock()
	heapInit(p)
	c.contentMu.Unlock()
	return pageNo
}

// Fetch returns the payload at tid if it is visible to this backend
// (committed, or written by the current transaction).
func (b *Backend) Fetch(rel string, tid TID) ([]byte, bool) {
	b.clk.Advance(b.c.costs.PGExecutorPerRowOp)
	p := b.pageForRead(rel, tid.Page)
	b.c.contentMu.Lock()
	xmin, xmax, payload := heapTuple(p, tid.Slot)
	payload = append([]byte(nil), payload...)
	b.c.contentMu.Unlock()
	if !b.visible(xmin, xmax) {
		return nil, false
	}
	b.clk.Advance(b.c.costs.MemcpyCost(len(payload)))
	return payload, true
}

// visible implements read-committed MVCC visibility.
func (b *Backend) visible(xmin, xmax uint32) bool {
	c := b.c
	if xmin != b.xid && !c.xidCommitted(xmin) {
		return false
	}
	if xmax == 0 {
		return true
	}
	if xmax == b.xid || c.xidCommitted(xmax) {
		return false
	}
	return true
}

// Update appends a new version of the tuple at tid and marks the old
// one superseded. Returns the new TID. MVCC: the old version is
// never overwritten (Properties 2 and 3 of §4 hold by construction).
func (b *Backend) Update(rel string, tid TID, payload []byte) (TID, error) {
	b.clk.Advance(b.c.costs.PGExecutorPerRowOp)
	p := b.pageForWrite(rel, tid.Page)
	b.c.contentMu.Lock()
	heapSetXmax(p, tid.Slot, b.xid)
	b.c.contentMu.Unlock()
	b.logTuple(rel, tid.Page, nil)
	return b.Insert(rel, payload)
}

// logTuple appends a logical WAL record for the modification, plus a
// full page image when the variant requires one.
func (b *Backend) logTuple(rel string, pageNo uint32, payload []byte) {
	c := b.c
	if c.variant == VarMemSnap {
		return // no WAL at all
	}
	rec := make([]byte, 16+len(payload))
	binary.LittleEndian.PutUint32(rec, b.xid)
	binary.LittleEndian.PutUint32(rec[4:], pageNo)
	copy(rec[16:], payload)
	b.walRecs = append(b.walRecs, rec)

	key := bufKey{rel, pageNo}
	switch c.variant {
	case VarFFS, VarMmap:
		// full_page_writes: first touch after a checkpoint logs the
		// whole page.
		c.mu.Lock()
		logged := c.pagesLogged[key]
		if !logged {
			c.pagesLogged[key] = true
		}
		c.mu.Unlock()
		if !logged {
			img := make([]byte, HeapPageSize)
			p := b.pageForRead(rel, pageNo)
			c.contentMu.Lock()
			copy(img, p)
			c.contentMu.Unlock()
			b.walRecs = append(b.walRecs, img)
		}
	case VarMmapBufDirect:
		// No staging copy isolates uncommitted data, so every commit
		// must log full images of all pages it touched; handled in
		// Commit via the touched set.
	}
}

// Commit makes the transaction durable.
func (b *Backend) Commit() {
	if b.xid == 0 {
		panic("pgdb: commit outside transaction")
	}
	c := b.c
	switch c.variant {
	case VarMemSnap:
		// Propagate touched buffers into their regions at OS-page
		// granularity — only the 4 KiB halves that changed — and
		// persist this backend's dirty set as one uCheckpoint. (In
		// the real system the buffer cache points directly into the
		// region, so MemSnap's tracking gives this granularity for
		// free.)
		const osPage = HeapPageSize / 2
		c.contentMu.Lock()
		for key := range b.touched {
			region := b.regionFor(key.rel)
			buf := b.getBuffer(key.rel, key.page)
			if buf.shadow == nil {
				buf.shadow = make([]byte, HeapPageSize)
				b.readPageFromStorage(key.rel, key.page, buf.shadow)
			}
			for half := 0; half < 2; half++ {
				lo, hi := half*osPage, (half+1)*osPage
				if bytesEqual(buf.data[lo:hi], buf.shadow[lo:hi]) {
					continue
				}
				b.ctx.WriteAt(region, int64(key.page)*HeapPageSize+int64(lo), buf.data[lo:hi])
				copy(buf.shadow[lo:hi], buf.data[lo:hi])
			}
		}
		c.contentMu.Unlock()
		if _, err := b.ctx.Persist(nil, core.MSSync); err != nil {
			panic(err)
		}
	default:
		c.lockmgr.Lock(b.clk)
		if c.variant == VarMmapBufDirect {
			for key := range b.touched {
				img := make([]byte, HeapPageSize)
				p := b.pageForRead(key.rel, key.page)
				c.contentMu.Lock()
				copy(img, p)
				c.contentMu.Unlock()
				b.walRecs = append(b.walRecs, img)
			}
		}
		for _, rec := range b.walRecs {
			c.log.Append(b.clk, rec)
		}
		c.log.Sync(b.clk)
		needCkpt := c.log.Size() >= c.checkpointAt
		c.lockmgr.Unlock(b.clk)
		if needCkpt {
			b.checkpoint()
		}
	}
	c.committed.Store(b.xid, true)
	c.Commits.Add(1)
	b.xid = 0
	b.touched = make(map[bufKey]bool)
	b.walRecs = nil
}

// bytesEqual reports a == b without allocating.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Abort abandons the transaction (versions it wrote stay dead: their
// xmin never commits).
func (b *Backend) Abort() {
	b.xid = 0
	b.touched = make(map[bufKey]bool)
	b.walRecs = nil
}

// checkpoint flushes all dirty buffers to the relation files and
// truncates the WAL.
func (b *Backend) checkpoint() {
	c := b.c
	c.lockmgr.Lock(b.clk)
	defer c.lockmgr.Unlock(b.clk)
	if c.log.Size() < c.checkpointAt {
		return // another backend got here first
	}
	c.contentMu.Lock()
	c.mu.Lock()
	type flush struct {
		key bufKey
		buf *buffer
	}
	var dirty []flush
	for key, buf := range c.buffers {
		if buf.dirty {
			dirty = append(dirty, flush{key, buf})
			buf.dirty = false
		}
	}
	c.pagesLogged = make(map[bufKey]bool)
	c.Checkpoints++
	c.mu.Unlock()

	touchedRels := make(map[string]bool)
	for _, f := range dirty {
		c.mu.Lock()
		file := c.files[f.key.rel]
		c.mu.Unlock()
		file.Write(b.clk, int64(f.key.page)*HeapPageSize, f.buf.data)
		touchedRels[f.key.rel] = true
	}
	c.contentMu.Unlock()
	for rel := range touchedRels {
		c.mu.Lock()
		file := c.files[rel]
		c.mu.Unlock()
		switch c.variant {
		case VarFFS:
			file.Fsync(b.clk)
		default: // mmap variants flush with msync
			file.Msync(b.clk)
		}
	}
	c.log.Reset(b.clk)
	c.log.Sync(b.clk)
}
