// Package pgdb is the reproduction's PostgreSQL: a multiprocess MVCC
// database with an 8 KiB buffer cache, evaluated under the four
// storage variants of the paper's Figure 6 —
//
//   - VarFFS (baseline): relations are files; commits append logical
//     WAL records with full-page writes and fsync; a checkpointer
//     flushes dirty buffers when the WAL grows past a threshold.
//   - VarMmap: relations are memory-mapped; flushes go through msync,
//     whose cost scales with the resident set.
//   - VarMmapBufDirect: mapped relations are modified in place with
//     no buffer-cache staging copy; every commit logs full images of
//     all pages it touched (nothing else isolates uncommitted data).
//   - VarMemSnap: relations are MemSnap regions; a commit is one
//     msnap_persist of the backend's dirty set. full_page_writes is
//     off and the WAL is gone (§7.3).
//
// MVCC is what makes per-backend persistence safe: tuples are never
// updated in place, so a uCheckpoint that carries another backend's
// appended-but-uncommitted tuple versions cannot corrupt anything —
// visibility is decided by the commit log, not by page contents.
package pgdb

import (
	"encoding/binary"
	"fmt"
)

// HeapPageSize is PostgreSQL's 8 KiB block size.
const HeapPageSize = 8192

// TID addresses one tuple version: heap page and line-pointer slot.
type TID struct {
	Page uint32
	Slot uint16
}

// Nil reports an unset TID.
func (t TID) Nil() bool { return t.Page == 0 && t.Slot == 0 }

// Tuple header layout within a heap page slot:
//
//	xmin u32: inserting transaction
//	xmax u32: deleting/superseding transaction (0 = live)
//	len  u16: payload length
const tupleHdr = 10

// Heap page layout:
//
//	nslots u16
//	free   u16 (offset where the next tuple payload ends; payloads
//	            grow down from the end, slot pointers grow up)
//	slot pointers: u16 offsets
const heapHdr = 4

// relation is one table's heap: a sequence of 8 KiB pages accessed
// through the cluster's storage layer.
type relation struct {
	name  string
	pages uint32 // allocated heap pages
}

// heapInit formats an empty heap page.
func heapInit(p []byte) {
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint16(p, 0)
	binary.LittleEndian.PutUint16(p[2:], HeapPageSize)
}

// heapFree returns the usable space left in a page.
func heapFree(p []byte) int {
	n := int(binary.LittleEndian.Uint16(p))
	free := int(binary.LittleEndian.Uint16(p[2:]))
	return free - heapHdr - n*2
}

// heapInsert appends a tuple version; returns the slot. Caller
// guarantees space.
func heapInsert(p []byte, xmin uint32, payload []byte) uint16 {
	n := int(binary.LittleEndian.Uint16(p))
	free := int(binary.LittleEndian.Uint16(p[2:]))
	need := tupleHdr + len(payload)
	off := free - need
	binary.LittleEndian.PutUint32(p[off:], xmin)
	binary.LittleEndian.PutUint32(p[off+4:], 0)
	binary.LittleEndian.PutUint16(p[off+8:], uint16(len(payload)))
	copy(p[off+tupleHdr:], payload)
	binary.LittleEndian.PutUint16(p[heapHdr+n*2:], uint16(off))
	binary.LittleEndian.PutUint16(p, uint16(n+1))
	binary.LittleEndian.PutUint16(p[2:], uint16(off))
	return uint16(n)
}

// heapTuple returns (xmin, xmax, payload) of a slot.
func heapTuple(p []byte, slot uint16) (uint32, uint32, []byte) {
	n := int(binary.LittleEndian.Uint16(p))
	if int(slot) >= n {
		panic(fmt.Sprintf("pgdb: slot %d out of range (%d)", slot, n))
	}
	off := int(binary.LittleEndian.Uint16(p[heapHdr+int(slot)*2:]))
	xmin := binary.LittleEndian.Uint32(p[off:])
	xmax := binary.LittleEndian.Uint32(p[off+4:])
	l := int(binary.LittleEndian.Uint16(p[off+8:]))
	return xmin, xmax, p[off+tupleHdr : off+tupleHdr+l]
}

// heapSetXmax marks a version superseded by xid.
func heapSetXmax(p []byte, slot uint16, xid uint32) {
	off := int(binary.LittleEndian.Uint16(p[heapHdr+int(slot)*2:]))
	binary.LittleEndian.PutUint32(p[off+4:], xid)
}

// heapFits reports whether a payload fits the page.
func heapFits(p []byte, payload []byte) bool {
	return heapFree(p) >= tupleHdr+len(payload)+2
}

// maxTuple bounds tuple payloads to one page.
const maxTuple = HeapPageSize - heapHdr - tupleHdr - 2
