package pgdb

import (
	"bytes"
	"sync"
	"testing"

	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/fs"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

func newCluster(t *testing.T, v Variant) *Cluster {
	t.Helper()
	costs := sim.DefaultCosts()
	cfg := Config{Variant: v, Costs: costs, RegionBytes: 64 << 20}
	if v == VarMemSnap {
		sys, err := core.NewSystem(core.Options{DiskBytesEach: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Sys = sys
	} else {
		cfg.Fsys = fs.New(costs, disk.NewArray(costs, 2, 2<<30), fs.FFS)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func eachVariant(t *testing.T, fn func(t *testing.T, c *Cluster)) {
	for _, v := range []Variant{VarFFS, VarMmap, VarMmapBufDirect, VarMemSnap} {
		t.Run(v.String(), func(t *testing.T) { fn(t, newCluster(t, v)) })
	}
}

func TestInsertFetch(t *testing.T) {
	eachVariant(t, func(t *testing.T, c *Cluster) {
		b, err := c.NewBackend(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CreateRelation(b.Clock(), "t"); err != nil {
			t.Fatal(err)
		}
		b.Begin()
		tid, err := b.Insert("t", []byte("tuple-one"))
		if err != nil {
			t.Fatal(err)
		}
		// Visible to the inserting transaction before commit.
		v, ok := b.Fetch("t", tid)
		if !ok || string(v) != "tuple-one" {
			t.Fatalf("own insert invisible: %q ok=%v", v, ok)
		}
		b.Commit()
		b.Begin()
		v, ok = b.Fetch("t", tid)
		b.Commit()
		if !ok || string(v) != "tuple-one" {
			t.Fatalf("committed tuple: %q ok=%v", v, ok)
		}
	})
}

func TestMVCCIsolation(t *testing.T) {
	eachVariant(t, func(t *testing.T, c *Cluster) {
		b1, _ := c.NewBackend(0)
		b2, _ := c.NewBackend(1)
		c.CreateRelation(b1.Clock(), "t")

		b1.Begin()
		tid, _ := b1.Insert("t", []byte("uncommitted"))

		// Another backend must not see the uncommitted tuple.
		b2.Begin()
		if _, ok := b2.Fetch("t", tid); ok {
			t.Fatal("dirty read")
		}
		b2.Commit()

		b1.Commit()
		b2.Begin()
		if _, ok := b2.Fetch("t", tid); !ok {
			t.Fatal("committed tuple invisible")
		}
		b2.Commit()
	})
}

func TestMVCCUpdateVersions(t *testing.T) {
	eachVariant(t, func(t *testing.T, c *Cluster) {
		b, _ := c.NewBackend(0)
		c.CreateRelation(b.Clock(), "t")
		b.Begin()
		tid1, _ := b.Insert("t", []byte("v1"))
		b.Commit()

		b.Begin()
		tid2, err := b.Update("t", tid1, []byte("v2"))
		if err != nil {
			t.Fatal(err)
		}
		b.Commit()

		b.Begin()
		if _, ok := b.Fetch("t", tid1); ok {
			t.Fatal("superseded version still visible")
		}
		v, ok := b.Fetch("t", tid2)
		if !ok || string(v) != "v2" {
			t.Fatalf("new version: %q ok=%v", v, ok)
		}
		b.Commit()
	})
}

func TestAbortInvisible(t *testing.T) {
	eachVariant(t, func(t *testing.T, c *Cluster) {
		b, _ := c.NewBackend(0)
		c.CreateRelation(b.Clock(), "t")
		b.Begin()
		tid, _ := b.Insert("t", []byte("aborted"))
		b.Abort()
		b.Begin()
		if _, ok := b.Fetch("t", tid); ok {
			t.Fatal("aborted tuple visible")
		}
		b.Commit()
	})
}

func TestHeapExtension(t *testing.T) {
	eachVariant(t, func(t *testing.T, c *Cluster) {
		b, _ := c.NewBackend(0)
		c.CreateRelation(b.Clock(), "t")
		b.Begin()
		payload := bytes.Repeat([]byte{0xAA}, 500)
		var tids []TID
		for i := 0; i < 100; i++ {
			tid, err := b.Insert("t", payload)
			if err != nil {
				t.Fatal(err)
			}
			tids = append(tids, tid)
		}
		b.Commit()
		if c.relations["t"].pages < 2 {
			t.Fatalf("heap did not extend: %d pages", c.relations["t"].pages)
		}
		b.Begin()
		for i, tid := range tids {
			if v, ok := b.Fetch("t", tid); !ok || !bytes.Equal(v, payload) {
				t.Fatalf("tuple %d lost across pages", i)
			}
		}
		b.Commit()
	})
}

func TestCheckpointTriggers(t *testing.T) {
	costs := sim.DefaultCosts()
	fsys := fs.New(costs, disk.NewArray(costs, 2, 2<<30), fs.FFS)
	c, _ := NewCluster(Config{Variant: VarFFS, Costs: costs, Fsys: fsys, CheckpointWAL: 64 << 10})
	b, _ := c.NewBackend(0)
	c.CreateRelation(b.Clock(), "t")
	payload := bytes.Repeat([]byte{1}, 200)
	for i := 0; i < 600 && c.Checkpoints == 0; i++ {
		b.Begin()
		b.Insert("t", payload)
		b.Commit()
	}
	if c.Checkpoints == 0 {
		t.Fatal("checkpoint never ran")
	}
}

func TestMemSnapCommitPersistsOwnDirtySet(t *testing.T) {
	c := newCluster(t, VarMemSnap)
	b1, _ := c.NewBackend(0)
	b2, _ := c.NewBackend(1)
	c.CreateRelation(b1.Clock(), "t")

	b1.Begin()
	b2.Begin()
	tid1, _ := b1.Insert("t", []byte("from-b1"))
	tid2, _ := b2.Insert("t", []byte("from-b2"))
	b1.Commit()
	// b2 has not committed; b1's uCheckpoint may carry b2's appended
	// version (MVCC makes that safe) but b2's data must become
	// visible only after its own commit.
	b2.Commit()

	b3, _ := c.NewBackend(2)
	b3.Begin()
	if v, ok := b3.Fetch("t", tid1); !ok || string(v) != "from-b1" {
		t.Fatalf("b1 tuple: %q ok=%v", v, ok)
	}
	if v, ok := b3.Fetch("t", tid2); !ok || string(v) != "from-b2" {
		t.Fatalf("b2 tuple: %q ok=%v", v, ok)
	}
	b3.Commit()
}

func TestTPCCAllVariants(t *testing.T) {
	eachVariant(t, func(t *testing.T, c *Cluster) {
		loader, _ := c.NewBackend(0)
		d, err := NewTPCCWithItems(c, loader, 2, 2000)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := c.NewBackend(1)
		gen := workload.NewTPCC(7, 2)
		var payments int64
		for i := 0; i < 200; i++ {
			tx := gen.Next()
			if err := d.Run(b, tx); err != nil {
				t.Fatalf("tx %d (%v): %v", i, tx.Op, err)
			}
			if tx.Op == workload.TPCCPayment {
				payments += tx.Amount
			}
		}
		check, _ := c.NewBackend(2)
		if got := d.WarehouseYTD(check); got != payments {
			t.Fatalf("warehouse YTD %d != payments %d", got, payments)
		}
	})
}

func TestTPCCConcurrentBackends(t *testing.T) {
	c := newCluster(t, VarMemSnap)
	loader, _ := c.NewBackend(0)
	d, err := NewTPCCWithItems(c, loader, 4, 2000)
	if err != nil {
		t.Fatal(err)
	}
	const threads = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	var payments int64
	errs := make(chan error, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			b, err := c.NewBackend(th + 1)
			if err != nil {
				errs <- err
				return
			}
			gen := workload.NewTPCC(uint64(th)+100, 4)
			for i := 0; i < 100; i++ {
				tx := gen.Next()
				if err := d.Run(b, tx); err != nil {
					errs <- err
					return
				}
				if tx.Op == workload.TPCCPayment {
					mu.Lock()
					payments += tx.Amount
					mu.Unlock()
				}
			}
		}(th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check, _ := c.NewBackend(9)
	if got := d.WarehouseYTD(check); got != payments {
		t.Fatalf("warehouse YTD %d != payments %d under concurrency", got, payments)
	}
}

func TestVariantCommitCosts(t *testing.T) {
	// Figure 6's ordering on the write path: bufdirect commits carry
	// full page images every time, so its WAL grows fastest.
	walBytes := func(v Variant) int64 {
		c := newCluster(t, v)
		b, _ := c.NewBackend(0)
		c.CreateRelation(b.Clock(), "t")
		var tid TID
		b.Begin()
		tid, _ = b.Insert("t", bytes.Repeat([]byte{1}, 100))
		b.Commit()
		for i := 0; i < 20; i++ {
			b.Begin()
			tid, _ = b.Update("t", tid, bytes.Repeat([]byte{byte(i)}, 100))
			b.Commit()
		}
		return c.log.Size()
	}
	ffs := walBytes(VarFFS)
	bd := walBytes(VarMmapBufDirect)
	if bd <= ffs {
		t.Fatalf("bufdirect WAL %d not larger than baseline %d", bd, ffs)
	}
}

func TestTupleTooLarge(t *testing.T) {
	c := newCluster(t, VarFFS)
	b, _ := c.NewBackend(0)
	c.CreateRelation(b.Clock(), "t")
	b.Begin()
	if _, err := b.Insert("t", make([]byte, HeapPageSize)); err == nil {
		t.Fatal("oversized tuple accepted")
	}
	b.Commit()
}
