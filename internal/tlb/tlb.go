// Package tlb simulates per-CPU translation lookaside buffers and the
// inter-processor shootdown protocol MemSnap uses when resetting page
// protections after a uCheckpoint.
//
// MemSnap issues per-page shootdowns for small dirty sets and a full
// TLB invalidation for large ones; the crossover threshold lives in
// the cost model (TLBFlushThreshold).
package tlb

import (
	"sync"
	"time"

	"memsnap/internal/mem"
	"memsnap/internal/sim"
)

// Entry is one cached translation.
type Entry struct {
	Frame    mem.Frame
	Writable bool
}

// TLB is one CPU's translation cache. It is safe for concurrent use
// (threads migrate between simulated CPUs and remote CPUs invalidate
// entries during shootdowns).
type TLB struct {
	mu       sync.Mutex
	capacity int
	entries  map[uint64]Entry
	fifo     []uint64

	hits   int64
	misses int64
}

// DefaultCapacity is the number of 4 KiB translations a simulated
// CPU's TLB holds (1536 matches Skylake-SP's L2 STLB).
const DefaultCapacity = 1536

// New returns an empty TLB with the given capacity (DefaultCapacity if
// capacity <= 0).
func New(capacity int) *TLB {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &TLB{
		capacity: capacity,
		entries:  make(map[uint64]Entry, capacity),
	}
}

// Lookup returns the cached translation for vpn.
func (t *TLB) Lookup(vpn uint64) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[vpn]
	if ok {
		t.hits++
	} else {
		t.misses++
	}
	return e, ok
}

// Insert caches a translation, evicting FIFO if full.
func (t *TLB) Insert(vpn uint64, e Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.entries[vpn]; !exists {
		if len(t.entries) >= t.capacity {
			victim := t.fifo[0]
			t.fifo = t.fifo[1:]
			delete(t.entries, victim)
		}
		t.fifo = append(t.fifo, vpn)
	}
	t.entries[vpn] = e
}

// InvalidatePage drops the translation for vpn, if cached.
func (t *TLB) InvalidatePage(vpn uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.entries[vpn]; !ok {
		return
	}
	delete(t.entries, vpn)
	for i, v := range t.fifo {
		if v == vpn {
			t.fifo = append(t.fifo[:i], t.fifo[i+1:]...)
			break
		}
	}
}

// InvalidateAll empties the TLB.
func (t *TLB) InvalidateAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.entries)
	t.fifo = t.fifo[:0]
}

// Len returns the number of cached translations.
func (t *TLB) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Stats reports hit/miss counters.
func (t *TLB) Stats() (hits, misses int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses
}

// System models the TLBs of all CPUs in the machine plus the shootdown
// protocol between them.
type System struct {
	costs *sim.CostModel
	cpus  []*TLB
}

// NewSystem creates a system with ncpus TLBs.
func NewSystem(costs *sim.CostModel, ncpus int) *System {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	if ncpus <= 0 {
		ncpus = 1
	}
	s := &System{costs: costs}
	for i := 0; i < ncpus; i++ {
		s.cpus = append(s.cpus, New(0))
	}
	return s
}

// CPU returns the TLB of the given CPU.
func (s *System) CPU(i int) *TLB { return s.cpus[i%len(s.cpus)] }

// NumCPUs returns the number of simulated CPUs.
func (s *System) NumCPUs() int { return len(s.cpus) }

// ShootdownPages invalidates the given pages on every CPU, charging
// the per-page IPI cost to clk. The initiating thread pays the cost;
// remote CPUs are interrupted for free in virtual time (their stall is
// folded into the per-page constant, as in the paper's model where the
// initiator waits for acknowledgements).
func (s *System) ShootdownPages(clk *sim.Clock, vpns []uint64) {
	if clk != nil {
		clk.Advance(s.costs.TLBShootdownPerPage * time.Duration(len(vpns)))
	}
	for _, t := range s.cpus {
		for _, vpn := range vpns {
			t.InvalidatePage(vpn)
		}
	}
}

// ShootdownPage is the single-page ShootdownPages: same IPI cost,
// no vpns slice — the allocation-free variant for per-page callers on
// the persist path.
func (s *System) ShootdownPage(clk *sim.Clock, vpn uint64) {
	if clk != nil {
		clk.Advance(s.costs.TLBShootdownPerPage)
	}
	for _, t := range s.cpus {
		t.InvalidatePage(vpn)
	}
}

// FullFlush invalidates every TLB in the system for a fixed cost.
func (s *System) FullFlush(clk *sim.Clock) {
	if clk != nil {
		clk.Advance(s.costs.TLBFullFlush)
	}
	for _, t := range s.cpus {
		t.InvalidateAll()
	}
}

// Invalidate picks the cheaper strategy for the given dirty set, the
// policy MemSnap applies after a uCheckpoint: per-page shootdowns
// below the threshold, a full flush at or above it.
func (s *System) Invalidate(clk *sim.Clock, vpns []uint64) {
	if len(vpns) < s.costs.TLBFlushThreshold {
		s.ShootdownPages(clk, vpns)
		return
	}
	s.FullFlush(clk)
}
