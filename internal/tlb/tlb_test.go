package tlb

import (
	"testing"
	"testing/quick"
	"time"

	"memsnap/internal/mem"
	"memsnap/internal/sim"
)

func TestLookupInsert(t *testing.T) {
	tl := New(4)
	if _, ok := tl.Lookup(1); ok {
		t.Fatal("empty TLB hit")
	}
	tl.Insert(1, Entry{Frame: mem.Frame(7), Writable: true})
	e, ok := tl.Lookup(1)
	if !ok || e.Frame != 7 || !e.Writable {
		t.Fatalf("lookup after insert: %+v ok=%v", e, ok)
	}
	hits, misses := tl.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tl := New(4)
	tl.Insert(1, Entry{Frame: 1, Writable: false})
	tl.Insert(1, Entry{Frame: 1, Writable: true})
	if tl.Len() != 1 {
		t.Fatalf("len = %d", tl.Len())
	}
	e, _ := tl.Lookup(1)
	if !e.Writable {
		t.Fatal("update lost")
	}
}

func TestFIFOEviction(t *testing.T) {
	tl := New(2)
	tl.Insert(1, Entry{})
	tl.Insert(2, Entry{})
	tl.Insert(3, Entry{}) // evicts 1
	if _, ok := tl.Lookup(1); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := tl.Lookup(2); !ok {
		t.Fatal("entry 2 wrongly evicted")
	}
	if tl.Len() != 2 {
		t.Fatalf("len = %d", tl.Len())
	}
}

func TestInvalidatePage(t *testing.T) {
	tl := New(4)
	tl.Insert(5, Entry{})
	tl.InvalidatePage(5)
	if _, ok := tl.Lookup(5); ok {
		t.Fatal("invalidated entry still cached")
	}
	tl.InvalidatePage(99) // absent: no-op
	// FIFO bookkeeping must stay consistent after invalidation.
	tl.Insert(6, Entry{})
	tl.Insert(7, Entry{})
	tl.Insert(8, Entry{})
	tl.Insert(9, Entry{})
	if tl.Len() > 4 {
		t.Fatalf("capacity violated: %d", tl.Len())
	}
}

func TestInvalidateAll(t *testing.T) {
	tl := New(8)
	for i := uint64(0); i < 8; i++ {
		tl.Insert(i, Entry{})
	}
	tl.InvalidateAll()
	if tl.Len() != 0 {
		t.Fatalf("len after flush = %d", tl.Len())
	}
}

func TestSystemShootdown(t *testing.T) {
	costs := sim.DefaultCosts()
	s := NewSystem(costs, 4)
	for cpu := 0; cpu < 4; cpu++ {
		s.CPU(cpu).Insert(10, Entry{})
		s.CPU(cpu).Insert(11, Entry{})
	}
	clk := sim.NewClock()
	s.ShootdownPages(clk, []uint64{10})
	if clk.Now() != costs.TLBShootdownPerPage {
		t.Fatalf("shootdown cost %v", clk.Now())
	}
	for cpu := 0; cpu < 4; cpu++ {
		if _, ok := s.CPU(cpu).Lookup(10); ok {
			t.Fatalf("cpu %d still caches shot-down page", cpu)
		}
		if _, ok := s.CPU(cpu).Lookup(11); !ok {
			t.Fatalf("cpu %d lost unrelated entry", cpu)
		}
	}
}

func TestSystemFullFlush(t *testing.T) {
	costs := sim.DefaultCosts()
	s := NewSystem(costs, 2)
	s.CPU(0).Insert(1, Entry{})
	s.CPU(1).Insert(2, Entry{})
	clk := sim.NewClock()
	s.FullFlush(clk)
	if clk.Now() != costs.TLBFullFlush {
		t.Fatalf("flush cost %v", clk.Now())
	}
	if s.CPU(0).Len() != 0 || s.CPU(1).Len() != 0 {
		t.Fatal("flush left entries")
	}
}

func TestInvalidatePolicyThreshold(t *testing.T) {
	costs := sim.DefaultCosts()
	s := NewSystem(costs, 1)

	small := make([]uint64, costs.TLBFlushThreshold-1)
	for i := range small {
		small[i] = uint64(i)
	}
	clk := sim.NewClock()
	s.Invalidate(clk, small)
	wantSmall := costs.TLBShootdownPerPage * time.Duration(len(small))
	if clk.Now() != wantSmall {
		t.Fatalf("small invalidate cost %v, want %v (per-page path)", clk.Now(), wantSmall)
	}

	large := make([]uint64, costs.TLBFlushThreshold)
	clk2 := sim.NewClock()
	s.Invalidate(clk2, large)
	if clk2.Now() != costs.TLBFullFlush {
		t.Fatalf("large invalidate cost %v, want full flush %v", clk2.Now(), costs.TLBFullFlush)
	}
}

func TestSystemCPUWraps(t *testing.T) {
	s := NewSystem(nil, 3)
	if s.NumCPUs() != 3 {
		t.Fatalf("ncpus = %d", s.NumCPUs())
	}
	if s.CPU(0) != s.CPU(3) {
		t.Fatal("CPU index does not wrap")
	}
}

func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		tl := New(16)
		for _, op := range ops {
			vpn := uint64(op % 64)
			switch op % 3 {
			case 0, 1:
				tl.Insert(vpn, Entry{Frame: mem.Frame(op)})
			case 2:
				tl.InvalidatePage(vpn)
			}
			if tl.Len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
