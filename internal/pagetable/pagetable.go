// Package pagetable simulates x86-64 style multi-level radix page
// tables: 4 levels of 512-entry nodes translating a 48-bit virtual
// address, with per-entry permission bits.
//
// The package exposes the three operations MemSnap's protection-reset
// paths need (Figure 1 of the paper):
//
//   - ScanRange: linearly scan every PTE slot covering a mapping (the
//     baseline strategy, cost proportional to the mapping size);
//   - Walk: a root-to-leaf walk for one page (the per-page strategy,
//     cost proportional to the dirty set times the walk depth);
//   - direct PTE mutation through a stored *PTE (the trace-buffer
//     strategy — the PTE's address is stable for the mapping's
//     lifetime, exactly like a pinned physical PTE address).
package pagetable

import (
	"time"

	"memsnap/internal/mem"
	"memsnap/internal/sim"
)

const (
	// BitsPerLevel is the radix width of one page-table level.
	BitsPerLevel = 9
	// EntriesPerNode is the fanout of one node.
	EntriesPerNode = 1 << BitsPerLevel
	// Levels is the number of levels (L4..L1 as on x86-64).
	Levels = 4
	// MaxVPNBits is the number of virtual-page-number bits covered.
	MaxVPNBits = BitsPerLevel * Levels
)

// PTE is one leaf page-table entry. A *PTE obtained from Walk or
// EnsurePTE remains valid (and aliased to the live entry) until the
// page is unmapped — the simulation analogue of recording the PTE's
// physical address in MemSnap's trace buffer.
type PTE struct {
	// Present indicates a frame is installed.
	Present bool
	// Writable is the hardware write-permission bit. MemSnap's
	// "tracked" state is Present && !Writable on a writable mapping.
	Writable bool
	// Frame is the installed physical frame.
	Frame mem.Frame
	// VPN is the virtual page number this entry translates (kept for
	// reverse navigation during scans and debugging).
	VPN uint64
}

type node struct {
	children [EntriesPerNode]*node // nil at leaf level
	ptes     [EntriesPerNode]*PTE  // only at leaf level
	leaf     bool
}

// Table is one address space's page table. It is not internally
// synchronized; the owning address space serializes access.
type Table struct {
	costs *sim.CostModel
	root  *node

	// nodes counts allocated interior+leaf nodes, for stats.
	nodes int
}

// New returns an empty table.
func New(costs *sim.CostModel) *Table {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &Table{costs: costs, root: &node{}}
}

func indexAt(vpn uint64, level int) int {
	// level 0 is the root (L4); level Levels-1 selects the leaf slot.
	shift := uint((Levels - 1 - level) * BitsPerLevel)
	return int((vpn >> shift) & (EntriesPerNode - 1))
}

// EnsurePTE returns the PTE for vpn, allocating intermediate nodes as
// needed. No cost is charged: table construction happens at mmap time,
// which the paper does not measure.
func (t *Table) EnsurePTE(vpn uint64) *PTE {
	n := t.root
	for level := 0; level < Levels-1; level++ {
		idx := indexAt(vpn, level)
		child := n.children[idx]
		if child == nil {
			//lint:allow hotalloc first-touch page-table growth, once per node for the table lifetime
			child = &node{leaf: level == Levels-2}
			n.children[idx] = child
			t.nodes++
		}
		n = child
	}
	idx := indexAt(vpn, Levels-1)
	pte := n.ptes[idx]
	if pte == nil {
		//lint:allow hotalloc first-touch PTE materialization, once per page
		pte = &PTE{VPN: vpn}
		n.ptes[idx] = pte
	}
	return pte
}

// Lookup returns the PTE for vpn without charging cost, or nil if no
// entry exists. Used by tests and by the TLB-refill fast path whose
// cost is charged separately.
func (t *Table) Lookup(vpn uint64) *PTE {
	n := t.root
	for level := 0; level < Levels-1; level++ {
		n = n.children[indexAt(vpn, level)]
		if n == nil {
			return nil
		}
	}
	return n.ptes[indexAt(vpn, Levels-1)]
}

// Walk performs a charged root-to-leaf walk for vpn: the per-page
// protection-reset strategy. Returns nil if the page is unmapped.
func (t *Table) Walk(clk *sim.Clock, vpn uint64) *PTE {
	if clk != nil {
		clk.Advance(t.costs.PageWalk)
	}
	return t.Lookup(vpn)
}

// Map installs a frame at vpn with the given write permission.
func (t *Table) Map(vpn uint64, frame mem.Frame, writable bool) *PTE {
	pte := t.EnsurePTE(vpn)
	pte.Present = true
	pte.Writable = writable
	pte.Frame = frame
	return pte
}

// Unmap clears the entry at vpn. The *PTE remains allocated (mirroring
// a zeroed hardware PTE slot) but Present is false.
func (t *Table) Unmap(vpn uint64) {
	if pte := t.Lookup(vpn); pte != nil {
		pte.Present = false
		pte.Writable = false
		pte.Frame = mem.NoFrame
	}
}

// ScanRange visits every PTE slot in the leaf tables spanning
// [startVPN, startVPN+pages) and invokes fn for each present entry.
// The charged cost covers every slot in every touched leaf node —
// present or not — which is what makes the full-scan strategy
// expensive for sparse dirty sets (Figure 1's baseline).
func (t *Table) ScanRange(clk *sim.Clock, startVPN, pages uint64, fn func(*PTE)) {
	if pages == 0 {
		return
	}
	endVPN := startVPN + pages - 1
	firstLeaf := startVPN >> BitsPerLevel
	lastLeaf := endVPN >> BitsPerLevel
	slots := (lastLeaf - firstLeaf + 1) * EntriesPerNode
	if clk != nil {
		clk.Advance(t.costs.PageTableScanPerEntry * time.Duration(slots))
	}
	for leaf := firstLeaf; leaf <= lastLeaf; leaf++ {
		ln := t.leafNode(leaf)
		if ln == nil {
			continue
		}
		for i := 0; i < EntriesPerNode; i++ {
			pte := ln.ptes[i]
			if pte == nil || !pte.Present {
				continue
			}
			if pte.VPN < startVPN || pte.VPN > endVPN {
				continue
			}
			fn(pte)
		}
	}
}

// leafNode returns the leaf node covering leafIndex (vpn >>
// BitsPerLevel), or nil.
func (t *Table) leafNode(leafIndex uint64) *node {
	vpn := leafIndex << BitsPerLevel
	n := t.root
	for level := 0; level < Levels-1; level++ {
		n = n.children[indexAt(vpn, level)]
		if n == nil {
			return nil
		}
	}
	return n
}

// NodeCount returns the number of allocated table nodes (excluding the
// root), for stats and tests.
func (t *Table) NodeCount() int { return t.nodes }
