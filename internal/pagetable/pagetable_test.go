package pagetable

import (
	"testing"
	"testing/quick"

	"memsnap/internal/mem"
	"memsnap/internal/sim"
)

func TestMapLookup(t *testing.T) {
	pt := New(nil)
	pte := pt.Map(0x12345, mem.Frame(7), true)
	if !pte.Present || !pte.Writable || pte.Frame != 7 || pte.VPN != 0x12345 {
		t.Fatalf("mapped PTE = %+v", pte)
	}
	if got := pt.Lookup(0x12345); got != pte {
		t.Fatal("Lookup returned different PTE")
	}
	if pt.Lookup(0x12346) != nil {
		t.Fatal("Lookup of unmapped VPN returned entry")
	}
}

func TestPTEReferenceStable(t *testing.T) {
	// The trace-buffer optimization depends on *PTE staying aliased to
	// the live entry across later table growth.
	pt := New(nil)
	pte := pt.Map(100, mem.Frame(1), false)
	for vpn := uint64(0); vpn < 4096; vpn++ {
		pt.Map(vpn<<9, mem.Frame(vpn), true) // force many nodes
	}
	if got := pt.Lookup(100); got != pte {
		t.Fatal("PTE pointer invalidated by table growth")
	}
	pte.Writable = true // direct mutation, as the trace buffer does
	if !pt.Lookup(100).Writable {
		t.Fatal("direct PTE mutation not visible through Lookup")
	}
}

func TestUnmap(t *testing.T) {
	pt := New(nil)
	pt.Map(55, mem.Frame(3), true)
	pt.Unmap(55)
	pte := pt.Lookup(55)
	if pte == nil {
		t.Fatal("Unmap removed the slot entirely")
	}
	if pte.Present || pte.Writable || pte.Frame != mem.NoFrame {
		t.Fatalf("Unmap left state: %+v", pte)
	}
	pt.Unmap(9999) // unmapped: no-op, no panic
}

func TestWalkCharges(t *testing.T) {
	pt := New(nil)
	pt.Map(10, mem.Frame(1), true)
	clk := sim.NewClock()
	if pte := pt.Walk(clk, 10); pte == nil || pte.Frame != 1 {
		t.Fatal("Walk did not find PTE")
	}
	costs := sim.DefaultCosts()
	if clk.Now() != costs.PageWalk {
		t.Fatalf("Walk charged %v, want %v", clk.Now(), costs.PageWalk)
	}
	if pt.Walk(clk, 11) != nil {
		t.Fatal("Walk found unmapped page")
	}
}

func TestScanRangeFindsOnlyRange(t *testing.T) {
	pt := New(nil)
	for vpn := uint64(0); vpn < 100; vpn++ {
		pt.Map(vpn, mem.Frame(vpn), true)
	}
	var seen []uint64
	pt.ScanRange(nil, 10, 20, func(p *PTE) { seen = append(seen, p.VPN) })
	if len(seen) != 20 {
		t.Fatalf("scan found %d entries, want 20", len(seen))
	}
	for i, vpn := range seen {
		if vpn != uint64(10+i) {
			t.Fatalf("scan order wrong at %d: %d", i, vpn)
		}
	}
}

func TestScanRangeCostProportionalToSpan(t *testing.T) {
	costs := sim.DefaultCosts()
	pt := New(costs)
	pt.Map(0, mem.Frame(0), true)

	small, large := sim.NewClock(), sim.NewClock()
	pt.ScanRange(small, 0, 512, func(*PTE) {})      // one leaf node
	pt.ScanRange(large, 0, 512*1024, func(*PTE) {}) // 1024 leaf nodes

	if small.Now() != costs.PageTableScanPerEntry*512 {
		t.Fatalf("small scan cost %v", small.Now())
	}
	if large.Now() != costs.PageTableScanPerEntry*512*1024 {
		t.Fatalf("large scan cost %v", large.Now())
	}
	// This is exactly why Figure 1's baseline is slow: cost tracks the
	// mapping, not the dirty set.
	if large.Now() < 1000*small.Now() {
		t.Fatal("scan cost not proportional to span")
	}
}

func TestScanRangeSparse(t *testing.T) {
	pt := New(nil)
	pt.Map(1000, mem.Frame(1), true)
	pt.Map(200000, mem.Frame(2), true)
	var hits int
	pt.ScanRange(nil, 0, 1<<20, func(*PTE) { hits++ })
	if hits != 2 {
		t.Fatalf("sparse scan hits = %d", hits)
	}
	// Empty range.
	pt.ScanRange(nil, 0, 0, func(*PTE) { t.Fatal("empty range visited") })
}

func TestFigure1Ordering(t *testing.T) {
	// The three strategies must be ordered trace < walk < scan for a
	// small dirty set in a 1 GiB mapping, reproducing Figure 1.
	costs := sim.DefaultCosts()
	pt := New(costs)
	const mappingPages = 1 << 18 // 1 GiB
	dirty := []uint64{5, 5000, 100000, 200000}
	var refs []*PTE
	for _, vpn := range dirty {
		refs = append(refs, pt.Map(vpn, mem.Frame(vpn), true))
	}

	scanClk := sim.NewClock()
	pt.ScanRange(scanClk, 0, mappingPages, func(p *PTE) { p.Writable = false })

	walkClk := sim.NewClock()
	for _, vpn := range dirty {
		pt.Walk(walkClk, vpn).Writable = false
	}

	traceClk := sim.NewClock()
	for _, ref := range refs {
		traceClk.Advance(costs.PTEWrite)
		ref.Writable = false
	}

	if !(traceClk.Now() < walkClk.Now() && walkClk.Now() < scanClk.Now()) {
		t.Fatalf("ordering violated: trace=%v walk=%v scan=%v",
			traceClk.Now(), walkClk.Now(), scanClk.Now())
	}
}

func TestNodeCountGrows(t *testing.T) {
	pt := New(nil)
	before := pt.NodeCount()
	pt.Map(0, mem.Frame(0), true)
	if pt.NodeCount() <= before {
		t.Fatal("mapping did not allocate nodes")
	}
}

func TestMapLookupRoundTripProperty(t *testing.T) {
	f := func(vpns []uint32) bool {
		pt := New(nil)
		want := make(map[uint64]mem.Frame)
		for i, raw := range vpns {
			vpn := uint64(raw) // stays within 48-bit space
			pt.Map(vpn, mem.Frame(i), i%2 == 0)
			want[vpn] = mem.Frame(i)
		}
		for vpn, frame := range want {
			pte := pt.Lookup(vpn)
			if pte == nil || !pte.Present || pte.Frame != frame {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWalkCostLinearInPages(t *testing.T) {
	costs := sim.DefaultCosts()
	pt := New(costs)
	for vpn := uint64(0); vpn < 256; vpn++ {
		pt.Map(vpn, mem.Frame(vpn), true)
	}
	clk := sim.NewClock()
	for vpn := uint64(0); vpn < 256; vpn++ {
		pt.Walk(clk, vpn)
	}
	want := 256 * costs.PageWalk
	if clk.Now() != want {
		t.Fatalf("256 walks cost %v, want %v", clk.Now(), want)
	}
}
