package pagetable

import (
	"testing"

	"memsnap/internal/mem"
	"memsnap/internal/sim"
)

// FuzzTableWalk drives the 4-level radix table with a decoded op
// stream and cross-checks Map/Unmap/Walk/ScanRange against a map
// oracle. It also pins the invariant the trace-buffer strategy
// depends on (Fig. 1): a *PTE returned for a VPN stays aliased to the
// live entry for the table's lifetime, exactly like a pinned physical
// PTE address. Four bytes per op:
//
//	byte 0 & 3:  opcode (0 map, 1 unmap, 2 walk, 3 scan)
//	byte 0 & 4:  writable bit for map
//	bytes 1-3:   27-bit VPN (spans multiple leaf nodes and levels)
func FuzzTableWalk(f *testing.F) {
	f.Add([]byte("0aaa2aaa1aaa2aaa"))
	f.Add([]byte("0\x00\x00\x010\x00\x02\x010\x7f\xff\xff2\x00\x00\x013\x00\x00\x00"))
	f.Add([]byte("4abc6abc5abc7abc")) // writable-bit variants
	f.Add([]byte("0aaa0aab0aac0aad3aa\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := New(nil)
		clk := sim.NewClock()
		type entry struct {
			frame    mem.Frame
			writable bool
		}
		oracle := map[uint64]entry{}
		ptes := map[uint64]*PTE{} // pinned PTE references, as a trace buffer would hold
		lastNodes := 0

		for op := 0; len(data) >= 4; op++ {
			kind := data[0] & 3
			writable := data[0]&4 != 0
			vpn := uint64(data[1])<<18 | uint64(data[2])<<9 | uint64(data[3])
			data = data[4:]

			switch kind {
			case 0: // map
				pte := tab.Map(vpn, mem.Frame(uint32(vpn)), writable)
				if !pte.Present || pte.Frame != mem.Frame(uint32(vpn)) || pte.Writable != writable {
					t.Fatalf("op %d: Map(%#x) installed %+v", op, vpn, *pte)
				}
				if old, ok := ptes[vpn]; ok && old != pte {
					t.Fatalf("op %d: Map(%#x) returned a different *PTE; stored references must stay stable", op, vpn)
				}
				ptes[vpn] = pte
				oracle[vpn] = entry{frame: mem.Frame(uint32(vpn)), writable: writable}
			case 1: // unmap
				tab.Unmap(vpn)
				delete(oracle, vpn)
				if pte, ok := ptes[vpn]; ok && pte.Present {
					t.Fatalf("op %d: Unmap(%#x) left the pinned PTE present", op, vpn)
				}
			case 2: // charged walk
				before := clk.Now()
				pte := tab.Walk(clk, vpn)
				if clk.Now() <= before {
					t.Fatalf("op %d: Walk charged no virtual time", op)
				}
				want, present := oracle[vpn]
				switch {
				case present:
					if pte == nil || !pte.Present || pte.Frame != want.frame || pte.Writable != want.writable {
						t.Fatalf("op %d: Walk(%#x) = %+v, oracle %+v", op, vpn, pte, want)
					}
					if pinned := ptes[vpn]; pinned != nil && pinned != pte {
						t.Fatalf("op %d: Walk(%#x) returned a different *PTE than the pinned reference", op, vpn)
					}
				case pte != nil && pte.Present:
					t.Fatalf("op %d: Walk(%#x) found a phantom entry %+v", op, vpn, pte)
				}
			case 3: // scan a window and compare with the oracle subset
				pages := vpn%1500 + 1
				start := vpn - vpn%7
				seen := map[uint64]bool{}
				tab.ScanRange(clk, start, pages, func(pte *PTE) {
					if pte.VPN < start || pte.VPN >= start+pages {
						t.Fatalf("op %d: ScanRange visited out-of-range VPN %#x", op, pte.VPN)
					}
					if seen[pte.VPN] {
						t.Fatalf("op %d: ScanRange visited VPN %#x twice", op, pte.VPN)
					}
					seen[pte.VPN] = true
					want, ok := oracle[pte.VPN]
					if !ok || pte.Frame != want.frame {
						t.Fatalf("op %d: ScanRange saw %+v, oracle %+v (present=%v)", op, *pte, want, ok)
					}
				})
				for v := range oracle {
					if v >= start && v < start+pages && !seen[v] {
						t.Fatalf("op %d: ScanRange [%#x,+%d) missed mapped VPN %#x", op, start, pages, v)
					}
				}
			}

			if n := tab.NodeCount(); n < lastNodes {
				t.Fatalf("op %d: NodeCount went backwards (%d -> %d)", op, lastNodes, n)
			} else {
				lastNodes = n
			}
		}

		// Final sweep: Lookup agrees with the oracle for every key ever
		// touched, and pinned references still alias live entries.
		for vpn, pte := range ptes {
			got := tab.Lookup(vpn)
			if got != pte {
				t.Fatalf("final: Lookup(%#x) no longer returns the pinned *PTE", vpn)
			}
			if want, ok := oracle[vpn]; ok {
				if !got.Present || got.Frame != want.frame {
					t.Fatalf("final: Lookup(%#x) = %+v, oracle %+v", vpn, *got, want)
				}
			} else if got.Present {
				t.Fatalf("final: Lookup(%#x) present after unmap", vpn)
			}
		}
	})
}
