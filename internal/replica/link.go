package replica

import (
	"sync"
	"time"

	"memsnap/internal/sim"
)

// LinkConfig configures a simulated replication link.
type LinkConfig struct {
	// Costs supplies LinkBaseLatency and the per-byte transfer rate.
	Costs *sim.CostModel
	// LossProb is the independent per-message loss probability.
	LossProb float64
	// Seed seeds the loss RNG (deterministic per link).
	Seed uint64
}

// Link is a simulated half-duplex network pipe, modelled exactly like
// the disk: pure virtual-time cost arithmetic with a single-server
// FIFO queue (nextFree) for bandwidth serialization, plus optional
// random loss and injected outages. Both directions of the
// replication protocol (deltas out, acks back) share the one pipe.
type Link struct {
	costs    *sim.CostModel
	lossProb float64

	mu       sync.Mutex
	rng      *sim.RNG
	nextFree time.Duration
	outages  []outage
	sent     int64
	lost     int64
	bytes    int64
}

// outage is a half-open virtual-time interval during which the link
// drops everything, including messages already in flight when it
// starts (a cut mid-delta loses the whole delta).
type outage struct {
	from time.Duration
	to   time.Duration // 1<<62 while the cut is open
}

const outageOpen = time.Duration(1) << 62

// NewLink builds a link from cfg (Costs defaults to sim.DefaultCosts).
func NewLink(cfg LinkConfig) *Link {
	if cfg.Costs == nil {
		cfg.Costs = sim.DefaultCosts()
	}
	return &Link{
		costs:    cfg.Costs,
		lossProb: cfg.LossProb,
		rng:      sim.NewRNG(cfg.Seed),
	}
}

// Deliver transmits size bytes starting no earlier than at, queuing
// behind earlier transmissions. It returns the arrival time and
// whether the message survived; a lost message (random loss, or any
// overlap with an outage) still consumed its slot on the pipe, and
// its would-be arrival time anchors the sender's retry timer.
func (l *Link) Deliver(at time.Duration, size int) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := at
	if l.nextFree > start {
		start = l.nextFree
	}
	transfer := l.costs.LinkTransferCost(size)
	arrive := start + l.costs.LinkBaseLatency + transfer
	l.nextFree = start + transfer
	l.sent++
	l.bytes += int64(size)
	for _, o := range l.outages {
		if start < o.to && arrive > o.from {
			l.lost++
			return arrive, false
		}
	}
	if l.lossProb > 0 && l.rng.Float64() < l.lossProb {
		l.lost++
		return arrive, false
	}
	return arrive, true
}

// Cut severs the link at virtual time at: every message whose
// transmission overlaps the cut — including one already in flight —
// is lost, until Restore.
func (l *Link) Cut(at time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.outages = append(l.outages, outage{from: at, to: outageOpen})
}

// OutageWindow installs a bounded outage [from, to): every message
// whose transmission overlaps the window is lost. Windows may be
// installed ahead of virtual time — fault schedules pre-install them
// at scenario start — and may overlap each other or an open Cut.
func (l *Link) OutageWindow(from, to time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.outages = append(l.outages, outage{from: from, to: to})
}

// Restore heals the most recent open cut at virtual time at.
func (l *Link) Restore(at time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.outages) - 1; i >= 0; i-- {
		if l.outages[i].to == outageOpen {
			l.outages[i].to = at
			return
		}
	}
}

// LinkStats are cumulative link counters.
type LinkStats struct {
	Sent      int64
	Lost      int64
	BytesSent int64
}

// Stats snapshots the link counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkStats{Sent: l.sent, Lost: l.lost, BytesSent: l.bytes}
}
