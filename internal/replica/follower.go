package replica

import (
	"fmt"
	"sync"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/obs"
	"memsnap/internal/shard"
)

// ApplyCode classifies the follower's response to a delta.
type ApplyCode int

const (
	// ApplyOK: the delta was the next in sequence and is durable on
	// the follower.
	ApplyOK ApplyCode = iota
	// ApplyDuplicate: the delta was already applied (a retransmission
	// after a lost ack); re-acked idempotently.
	ApplyDuplicate
	// ApplyGap: the delta is ahead of the follower's position (or
	// from a newer era the follower has no base for); the shipper
	// must replay the missing deltas or transfer a snapshot.
	ApplyGap
	// ApplyStale: the sender is superseded — the follower was
	// promoted or follows a newer era.
	ApplyStale
)

// ApplyStatus is the follower's ack payload: the outcome plus its
// last fully applied sequence number, which the shipper uses to size
// a catch-up.
type ApplyStatus struct {
	Code    ApplyCode
	LastSeq uint64
}

// FollowerConfig sizes a follower. Shards and RegionBytes must match
// the primary's shard.Config.
type FollowerConfig struct {
	Shards      int
	RegionBytes int64
	// StartAt positions the follower's clocks, e.g. at the recovery
	// completion time when rejoining from a recovered store.
	StartAt time.Duration
	// Recorder, when set, receives apply/apply_batch spans (and the
	// apply Contexts' persist/fault events) on each shard's follower
	// lane (obs.FollowerTrack).
	Recorder *obs.Recorder
}

func (c *FollowerConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.RegionBytes <= 0 {
		c.RegionBytes = 4 << 20
	}
}

// FollowerShardStats are one follower shard's apply counters and
// replication position.
type FollowerShardStats struct {
	Shard      int
	Applied    int64
	Duplicates int64
	Gaps       int64
	Stale      int64
	Snapshots  int64
	// Batches counts coalesced delta runs applied as one uCheckpoint.
	Batches int64
	// BaseMismatches counts encoded deltas rejected before any write
	// because an XOR frame's pre-image hash did not match the
	// follower's page chain — the guard that turns a diverged pre-image
	// into a full-page replay or snapshot resync instead of silent
	// corruption. PatchedBytes counts bytes written through sub-page
	// frames (extent literals and XOR literal runs).
	BaseMismatches int64
	PatchedBytes   int64
	LastSeq        uint64
	Era            uint64
}

// Follower is the backup endpoint: it owns a full set of shard
// regions in its own System (its own disk array — it survives the
// primary's death) and applies shipped deltas in sequence order, each
// as one synchronous uCheckpoint. Regions carry the same names as the
// primary's, so Promote can bring the follower up through the
// standard shard recovery path.
//
// A fresh follower formats its regions exactly as a fresh primary
// would (format is deterministic), so even a shard that never ships a
// delta is byte-identical across the pair; each delta (starting at
// seq 1) then carries the manifest page and keeps the region
// bit-for-bit in step. A follower built over a recovered store (a
// rejoining ex-primary) instead resumes from the manifest position of
// each region.
type Follower struct {
	cfg  FollowerConfig
	sys  *core.System
	proc *core.Process

	mu       sync.Mutex
	promoted bool

	shards []*followerShard
}

type followerShard struct {
	mu     sync.Mutex
	ctx    *core.Context
	region *core.Region

	lastSeq uint64
	era     uint64

	// valPages is the encoded-apply validation scratch: the per-page
	// expected-hash chain threaded across one delta or batch (see
	// validateEnc). Reused between applies.
	valPages []valPage

	applied      int64
	duplicates   int64
	gaps         int64
	stale        int64
	snapshots    int64
	batches      int64
	baseMismatch int64
	patchedBytes int64
}

// valPage tracks one page's expected content hash while validating an
// encoded delta run: known=false means the page is touched by the run
// but its resulting hash is unknown (an extents frame, or an unencoded
// delta's page), so a later XOR frame against it must conservatively
// reject.
type valPage struct {
	index int64
	hash  uint64
	known bool
}

// lookupVal returns the tracked validation entry for a page index.
//
//memsnap:hotpath
func (fs *followerShard) lookupVal(index int64) *valPage {
	for i := range fs.valPages {
		if fs.valPages[i].index == index {
			return &fs.valPages[i]
		}
	}
	return nil
}

// validateEnc walks one encoded delta's frames, checking every
// payload's structure and chaining XOR pre-image hashes against the
// tracked page state — seeded by hashing the live region page on a
// run's first XOR touch of that page. It returns the number of bytes
// hashed (the caller charges DiffCost for them) and ok=false when any
// frame is malformed or an XOR base mismatches; the caller must then
// reject the whole delta with ApplyGap before writing anything, which
// forces the shipper into full-page replay or a snapshot resync — a
// diverged pre-image chain can never be silently patched over.
//
//memsnap:hotpath
func (fs *followerShard) validateEnc(enc []byte) (hashed int, ok bool) {
	for len(enc) > 0 {
		fr, rest, err := decodeFrame(enc)
		if err != nil || checkFrame(core.PageSize, fr) != nil {
			return hashed, false
		}
		enc = rest
		switch fr.kind {
		case kindFull:
			// The frame replaces the page outright; its hash feeds any
			// later XOR frame on the same page in this run.
			e := fs.lookupVal(fr.index)
			if e == nil {
				fs.valPages = append(fs.valPages, valPage{index: fr.index})
				e = &fs.valPages[len(fs.valPages)-1]
			}
			e.hash, e.known = fnv64(fr.payload), true
			hashed += len(fr.payload)
		case kindExtents:
			// Literal patch: the resulting page hash is not computed, so
			// mark the page touched-but-unknown.
			if e := fs.lookupVal(fr.index); e != nil {
				e.known = false
			} else {
				fs.valPages = append(fs.valPages, valPage{index: fr.index})
			}
		case kindXorRLE:
			base, next, okh := xorHashes(fr.payload)
			if !okh {
				return hashed, false
			}
			e := fs.lookupVal(fr.index)
			if e == nil {
				pg := fs.ctx.PageForRead(fs.region, fr.index*core.PageSize)
				hashed += len(pg)
				if fnv64(pg) != base {
					return hashed, false
				}
				fs.valPages = append(fs.valPages, valPage{index: fr.index, hash: next, known: true})
			} else {
				if !e.known || e.hash != base {
					return hashed, false
				}
				e.hash = next
			}
		}
	}
	return hashed, true
}

// trackUnencoded folds an unencoded delta's full pages into the
// validation chain (batch members built outside the encoder): each
// page is replaced verbatim, with its resulting hash left unknown.
func (fs *followerShard) trackUnencoded(pages []core.CommittedPage) {
	for i := range pages {
		if e := fs.lookupVal(pages[i].Index); e != nil {
			e.known = false
		} else {
			fs.valPages = append(fs.valPages, valPage{index: pages[i].Index})
		}
	}
}

// patchEnc applies a validated encoding onto the live region pages and
// returns the bytes written. Frames were structure-checked by
// validateEnc, so patching cannot fail midway.
//
//memsnap:hotpath
func (fs *followerShard) patchEnc(enc []byte) (written int) {
	for len(enc) > 0 {
		var fr frame
		fr, enc, _ = decodeFrame(enc)
		page := fs.ctx.PageForWrite(fs.region, fr.index*core.PageSize)
		n, _ := patchFrame(page[:core.PageSize], fr)
		written += n
	}
	return written
}

// NewFollower opens a follower over sys. Pre-existing shard regions
// (a rejoining ex-primary's) are resumed at their manifest position;
// missing ones start empty at sequence zero.
func NewFollower(sys *core.System, cfg FollowerConfig) (*Follower, error) {
	cfg.fill()
	f := &Follower{cfg: cfg, sys: sys, proc: sys.NewProcess()}
	existing := make(map[string]bool)
	for _, name := range sys.RegionNames() {
		existing[name] = true
	}
	for i := 0; i < cfg.Shards; i++ {
		ctx := f.proc.NewContext(i)
		ctx.Clock().AdvanceTo(cfg.StartAt)
		ctx.SetRecorder(cfg.Recorder, obs.FollowerTrack(i))
		pre := existing[shard.RegionName(i)]
		region, err := f.proc.Open(ctx, shard.RegionName(i), cfg.RegionBytes)
		if err != nil {
			return nil, err
		}
		fs := &followerShard{ctx: ctx, region: region}
		if pre {
			if seq, era, _, ok := shard.ManifestMeta(ctx, region); ok {
				fs.lastSeq, fs.era = seq, era
			}
		} else {
			// Format the fresh region exactly as a fresh primary
			// shard would: format is deterministic, so an idle shard
			// that never ships a delta is still byte-identical across
			// the replica pair.
			if err := shard.FormatRegion(ctx, region, i, cfg.Shards, cfg.RegionBytes, 0); err != nil {
				return nil, err
			}
		}
		f.shards = append(f.shards, fs)
	}
	return f, nil
}

// Apply applies one delta arriving at virtual time at and returns the
// time the ack is ready plus its status. Deltas apply only in exact
// sequence order within the follower's era; each successful apply is
// one synchronous uCheckpoint, so the follower's durable state always
// ends on a whole-delta boundary.
func (f *Follower) Apply(at time.Duration, d *Delta) (time.Duration, ApplyStatus) {
	f.mu.Lock()
	promoted := f.promoted
	f.mu.Unlock()
	if d.Shard < 0 || d.Shard >= len(f.shards) {
		return at, ApplyStatus{Code: ApplyStale}
	}
	fs := f.shards[d.Shard]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clk := fs.ctx.Clock()
	clk.AdvanceTo(at)
	applyStart := clk.Now()
	switch {
	case promoted || d.Era < fs.era:
		fs.stale++
		return clk.Now(), ApplyStatus{Code: ApplyStale, LastSeq: fs.lastSeq}
	case d.Era > fs.era:
		// A newer primary. From a clean slate the full history (seq 1)
		// is a safe base; anything else needs a snapshot to discard
		// whatever this replica holds from the old era.
		if !(fs.lastSeq == 0 && d.Seq == 1) {
			fs.gaps++
			return clk.Now(), ApplyStatus{Code: ApplyGap, LastSeq: fs.lastSeq}
		}
		fs.era = d.Era
	}
	if d.Seq <= fs.lastSeq {
		fs.duplicates++
		return clk.Now(), ApplyStatus{Code: ApplyDuplicate, LastSeq: fs.lastSeq}
	}
	if d.Seq != fs.lastSeq+1 {
		fs.gaps++
		return clk.Now(), ApplyStatus{Code: ApplyGap, LastSeq: fs.lastSeq}
	}
	if d.enc != nil {
		// Sub-page apply: validate the whole encoding — structure plus
		// XOR pre-image hash chain — before any byte lands, then patch.
		costs := f.sys.Costs()
		fs.valPages = fs.valPages[:0]
		hashed, ok := fs.validateEnc(d.enc)
		clk.Advance(costs.DiffCost(hashed))
		if !ok {
			fs.baseMismatch++
			fs.gaps++
			return clk.Now(), ApplyStatus{Code: ApplyGap, LastSeq: fs.lastSeq}
		}
		written := fs.patchEnc(d.enc)
		fs.patchedBytes += int64(written)
		clk.Advance(costs.MemcpyCost(written))
	} else {
		for _, pg := range d.Pages {
			fs.ctx.WriteAt(fs.region, pg.Index*core.PageSize, pg.Data)
		}
	}
	if _, err := fs.ctx.Persist(fs.region, core.MSSync); err != nil {
		// The delta did not become durable; report a gap so the
		// shipper retries from our (unchanged) position.
		fs.gaps++
		return clk.Now(), ApplyStatus{Code: ApplyGap, LastSeq: fs.lastSeq}
	}
	fs.lastSeq = d.Seq
	fs.applied++
	now := clk.Now()
	f.cfg.Recorder.SpanFlow(obs.CatReplica, obs.NameApply, obs.FollowerTrack(d.Shard), applyStart, now-applyStart, int64(d.Seq), d.TraceID)
	return now, ApplyStatus{Code: ApplyOK, LastSeq: fs.lastSeq}
}

// ApplyBatch applies a coalesced run of consecutive same-era deltas
// from one link message as a single unit. The entire chain is
// validated against the shard's position BEFORE any page is written;
// then every member's pages land and ONE synchronous uCheckpoint
// persists the run, so the follower's durable state still only ever
// advances by whole deltas — just several at a time. An
// already-applied prefix (retransmission after a lost ack) is skipped
// idempotently; a malformed or out-of-position batch is reported as a
// gap with the region untouched.
func (f *Follower) ApplyBatch(at time.Duration, ds []*Delta) (time.Duration, ApplyStatus) {
	if len(ds) == 0 {
		return at, ApplyStatus{Code: ApplyGap}
	}
	if len(ds) == 1 {
		return f.Apply(at, ds[0])
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Shard != ds[0].Shard || ds[i].Era != ds[0].Era || ds[i].Seq != ds[i-1].Seq+1 {
			return at, ApplyStatus{Code: ApplyGap}
		}
	}
	f.mu.Lock()
	promoted := f.promoted
	f.mu.Unlock()
	if ds[0].Shard < 0 || ds[0].Shard >= len(f.shards) {
		return at, ApplyStatus{Code: ApplyStale}
	}
	fs := f.shards[ds[0].Shard]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clk := fs.ctx.Clock()
	clk.AdvanceTo(at)
	applyStart := clk.Now()
	switch {
	case promoted || ds[0].Era < fs.era:
		fs.stale++
		return clk.Now(), ApplyStatus{Code: ApplyStale, LastSeq: fs.lastSeq}
	case ds[0].Era > fs.era:
		if !(fs.lastSeq == 0 && ds[0].Seq == 1) {
			fs.gaps++
			return clk.Now(), ApplyStatus{Code: ApplyGap, LastSeq: fs.lastSeq}
		}
		fs.era = ds[0].Era
	}
	skip := 0
	for skip < len(ds) && ds[skip].Seq <= fs.lastSeq {
		skip++
	}
	if skip == len(ds) {
		fs.duplicates += int64(skip)
		return clk.Now(), ApplyStatus{Code: ApplyDuplicate, LastSeq: fs.lastSeq}
	}
	if ds[skip].Seq != fs.lastSeq+1 {
		fs.gaps++
		return clk.Now(), ApplyStatus{Code: ApplyGap, LastSeq: fs.lastSeq}
	}
	// Validate every encoded member's frames — with the XOR pre-image
	// hash chain threaded across the whole run, since a later delta's
	// base is an earlier delta's result — before any byte lands.
	costs := f.sys.Costs()
	fs.valPages = fs.valPages[:0]
	hashed := 0
	valOK := true
	for _, d := range ds[skip:] {
		if d.enc == nil {
			fs.trackUnencoded(d.Pages)
			continue
		}
		h, ok := fs.validateEnc(d.enc)
		hashed += h
		if !ok {
			valOK = false
			break
		}
	}
	clk.Advance(costs.DiffCost(hashed))
	if !valOK {
		fs.baseMismatch++
		fs.gaps++
		return clk.Now(), ApplyStatus{Code: ApplyGap, LastSeq: fs.lastSeq}
	}
	written := 0
	for _, d := range ds[skip:] {
		if d.enc != nil {
			written += fs.patchEnc(d.enc)
			continue
		}
		for _, pg := range d.Pages {
			fs.ctx.WriteAt(fs.region, pg.Index*core.PageSize, pg.Data)
		}
	}
	fs.patchedBytes += int64(written)
	clk.Advance(costs.MemcpyCost(written))
	if _, err := fs.ctx.Persist(fs.region, core.MSSync); err != nil {
		// The run did not become durable; report a gap so the shipper
		// retries from our (unchanged) position.
		fs.gaps++
		return clk.Now(), ApplyStatus{Code: ApplyGap, LastSeq: fs.lastSeq}
	}
	fs.duplicates += int64(skip)
	fs.lastSeq = ds[len(ds)-1].Seq
	fs.applied += int64(len(ds) - skip)
	fs.batches++
	now := clk.Now()
	var flow uint64
	for _, fd := range ds {
		if fd.TraceID != 0 {
			flow = fd.TraceID
			break
		}
	}
	f.cfg.Recorder.SpanFlow(obs.CatReplica, obs.NameApplyBatch, obs.FollowerTrack(ds[0].Shard), applyStart, now-applyStart, int64(len(ds)-skip), flow)
	return now, ApplyStatus{Code: ApplyOK, LastSeq: fs.lastSeq}
}

// ApplySnapshot installs a full-region snapshot, replacing whatever
// the follower shard held — the catch-up (and era-reconciliation)
// path. The whole region is written and persisted as one synchronous
// uCheckpoint.
func (f *Follower) ApplySnapshot(at time.Duration, snap *shard.Snapshot) (time.Duration, error) {
	f.mu.Lock()
	promoted := f.promoted
	f.mu.Unlock()
	if promoted {
		return at, ErrPromoted
	}
	if snap.Shard < 0 || snap.Shard >= len(f.shards) {
		return at, fmt.Errorf("replica: snapshot for unknown shard %d", snap.Shard)
	}
	fs := f.shards[snap.Shard]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clk := fs.ctx.Clock()
	clk.AdvanceTo(at)
	if snap.Era < fs.era {
		fs.stale++
		return clk.Now(), ErrStale
	}
	for _, pg := range snap.Pages {
		fs.ctx.WriteAt(fs.region, pg.Index*core.PageSize, pg.Data)
	}
	if _, err := fs.ctx.Persist(fs.region, core.MSSync); err != nil {
		return clk.Now(), err
	}
	fs.lastSeq, fs.era = snap.Seq, snap.Era
	fs.snapshots++
	return clk.Now(), nil
}

// LastApplied returns a shard's replication position.
func (f *Follower) LastApplied(shardID int) (seq, era uint64) {
	fs := f.shards[shardID]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.lastSeq, fs.era
}

// Sums reads each follower shard's manifest value sum (zero for a
// shard that has not applied anything yet).
func (f *Follower) Sums() []uint64 {
	out := make([]uint64, len(f.shards))
	for i, fs := range f.shards {
		fs.mu.Lock()
		if _, _, sum, ok := shard.ManifestMeta(fs.ctx, fs.region); ok {
			out[i] = sum
		}
		fs.mu.Unlock()
	}
	return out
}

// Digests computes each follower shard's page-level region digest,
// comparable with Service.ShardDigests.
func (f *Follower) Digests() []uint64 {
	out := make([]uint64, len(f.shards))
	for i, fs := range f.shards {
		fs.mu.Lock()
		out[i] = shard.DigestRegion(fs.ctx, fs.region)
		fs.mu.Unlock()
	}
	return out
}

// Stats snapshots every follower shard's counters.
func (f *Follower) Stats() []FollowerShardStats {
	out := make([]FollowerShardStats, len(f.shards))
	for i, fs := range f.shards {
		fs.mu.Lock()
		out[i] = FollowerShardStats{
			Shard:          i,
			Applied:        fs.applied,
			Duplicates:     fs.duplicates,
			Gaps:           fs.gaps,
			Stale:          fs.stale,
			Snapshots:      fs.snapshots,
			Batches:        fs.batches,
			BaseMismatches: fs.baseMismatch,
			PatchedBytes:   fs.patchedBytes,
			LastSeq:        fs.lastSeq,
			Era:            fs.era,
		}
		fs.mu.Unlock()
	}
	return out
}

// EndTime returns the latest virtual time across follower shards.
func (f *Follower) EndTime() time.Duration {
	var end time.Duration
	for _, fs := range f.shards {
		fs.mu.Lock()
		if t := fs.ctx.Clock().Now(); t > end {
			end = t
		}
		fs.mu.Unlock()
	}
	return end
}

// Promote fails the follower over: it stops accepting deltas (further
// Apply calls report ApplyStale) and reopens its regions as a running
// shard.Service through the standard manifest recovery path, at the
// last fully applied epoch of every shard, under a replication era
// one past the highest this follower has seen. cfg.Shards,
// RegionBytes, Era and StartAt are filled from the follower's state;
// set cfg.Replicator to ship onward to the next follower (e.g. the
// reconciled ex-primary).
func (f *Follower) Promote(cfg shard.Config) (*shard.Service, error) {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return nil, ErrPromoted
	}
	f.promoted = true
	f.mu.Unlock()

	var maxEra uint64
	start := cfg.StartAt
	for _, fs := range f.shards {
		fs.mu.Lock()
		if fs.era > maxEra {
			maxEra = fs.era
		}
		if t := fs.ctx.Clock().Now(); t > start {
			start = t
		}
		fs.mu.Unlock()
	}
	cfg.Shards = f.cfg.Shards
	cfg.RegionBytes = f.cfg.RegionBytes
	if cfg.Era <= maxEra {
		cfg.Era = maxEra + 1
	}
	cfg.StartAt = start
	return shard.New(f.sys, cfg)
}
