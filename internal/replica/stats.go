package replica

import (
	"fmt"
	"io"
	"time"

	"memsnap/internal/obs"
)

func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func promSeconds(d time.Duration) string { return promFloat(d.Seconds()) }

func promHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// FormatPrometheus writes the shipper's per-shard replication
// counters to w in the Prometheus text exposition format, one
// {shard="N"} series per metric. Deterministic for a given state, so
// it can be golden-tested.
func (s *Shipper) FormatPrometheus(w io.Writer) error {
	stats := s.Stats()
	type metric struct {
		name, help, typ string
		value           func(st *ShardRepStats) string
	}
	metrics := []metric{
		{"memsnap_replica_shipped_total", "Delta transmissions, retransmissions included.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Shipped) }},
		{"memsnap_replica_acked_total", "Deltas confirmed by the follower.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Acked) }},
		{"memsnap_replica_duplicates_total", "Duplicate deliveries re-acked by the follower.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Duplicates) }},
		{"memsnap_replica_retries_total", "Retransmissions after a lost delta or ack.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Retries) }},
		{"memsnap_replica_lost_deltas_total", "Delta transmissions lost on the link.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.LostDeltas) }},
		{"memsnap_replica_lost_acks_total", "Follower acks lost on the link.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.LostAcks) }},
		{"memsnap_replica_gaps_total", "Follower gap reports.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Gaps) }},
		{"memsnap_replica_snapshots_total", "Full-region catch-up transfers.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Snapshots) }},
		{"memsnap_replica_stale_total", "Era rejections from the follower.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Stale) }},
		{"memsnap_replica_exhausted_total", "Messages abandoned after the retry budget.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Exhausted) }},
		{"memsnap_replica_unsent_total", "Deltas dropped with no follower connected.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Unsent) }},
		{"memsnap_replica_batches_total", "Coalesced multi-delta transmissions acked as a unit.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Batches) }},
		{"memsnap_replica_batched_deltas_total", "Deltas carried inside coalesced transmissions.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.BatchedDeltas) }},
		{"memsnap_replica_wire_bytes_total", "Delta, batch and snapshot payload bytes put on the link, retransmissions included.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.WireBytes) }},
		{"memsnap_replica_diff_saved_bytes_total", "Wire bytes avoided by sub-page delta encoding versus full-page framing.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.DiffSavedBytes) }},
		{"memsnap_replica_extents_total", "Byte-range extents emitted by the sub-page encoder.", "counter",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.Extents) }},
		{"memsnap_replica_encode_seconds_total", "Cumulative virtual time spent encoding sub-page deltas.", "counter",
			func(st *ShardRepStats) string { return promSeconds(st.EncodeTime) }},
		{"memsnap_replica_last_acked_seq", "Highest sequence number the follower acked.", "gauge",
			func(st *ShardRepStats) string { return fmt.Sprintf("%d", st.LastAckedSeq) }},
		{"memsnap_replica_ack_latency_seconds_mean", "Mean durability-to-follower-ack latency (virtual seconds).", "gauge",
			func(st *ShardRepStats) string { return promSeconds(st.AckLatency.Mean) }},
		{"memsnap_replica_ack_latency_seconds_p99", "99th percentile durability-to-follower-ack latency (virtual seconds).", "gauge",
			func(st *ShardRepStats) string { return promSeconds(st.AckLatency.P99) }},
	}
	for _, m := range metrics {
		if err := promHeader(w, m.name, m.help, m.typ); err != nil {
			return err
		}
		for i := range stats {
			st := &stats[i]
			if _, err := fmt.Fprintf(w, "%s{shard=%q} %s\n", m.name, fmt.Sprint(st.Shard), m.value(st)); err != nil {
				return err
			}
		}
	}
	// Replication ack latency as a proper histogram (log2 le
	// boundaries in seconds), one per shard.
	const histName = "memsnap_replica_ack_latency_seconds"
	if err := obs.WritePromHeader(w, histName, "Durability-to-follower-ack latency histogram (virtual seconds)."); err != nil {
		return err
	}
	for i := range stats {
		st := &stats[i]
		if err := st.AckHist.WriteProm(w, histName, fmt.Sprintf("shard=%q", fmt.Sprint(st.Shard))); err != nil {
			return err
		}
	}
	return nil
}

// FormatPrometheus writes the follower's per-shard apply counters to
// w in the Prometheus text exposition format.
func (f *Follower) FormatPrometheus(w io.Writer) error {
	stats := f.Stats()
	type metric struct {
		name, help, typ string
		value           func(st *FollowerShardStats) string
	}
	metrics := []metric{
		{"memsnap_follower_applied_total", "Deltas applied in sequence order.", "counter",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.Applied) }},
		{"memsnap_follower_duplicates_total", "Duplicate deltas re-acked idempotently.", "counter",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.Duplicates) }},
		{"memsnap_follower_gaps_total", "Out-of-sequence deltas reported as gaps.", "counter",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.Gaps) }},
		{"memsnap_follower_stale_total", "Deltas rejected from a superseded era.", "counter",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.Stale) }},
		{"memsnap_follower_snapshots_total", "Full-region snapshots installed.", "counter",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.Snapshots) }},
		{"memsnap_follower_batches_total", "Coalesced delta runs applied as one uCheckpoint.", "counter",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.Batches) }},
		{"memsnap_follower_base_mismatches_total", "Encoded deltas rejected before writing on an XOR pre-image hash mismatch.", "counter",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.BaseMismatches) }},
		{"memsnap_follower_patched_bytes_total", "Bytes written through sub-page frames.", "counter",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.PatchedBytes) }},
		{"memsnap_follower_last_seq", "Last fully applied sequence number.", "gauge",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.LastSeq) }},
		{"memsnap_follower_era", "Replication era the shard follows.", "gauge",
			func(st *FollowerShardStats) string { return fmt.Sprintf("%d", st.Era) }},
	}
	for _, m := range metrics {
		if err := promHeader(w, m.name, m.help, m.typ); err != nil {
			return err
		}
		for i := range stats {
			st := &stats[i]
			if _, err := fmt.Fprintf(w, "%s{shard=%q} %s\n", m.name, fmt.Sprint(st.Shard), m.value(st)); err != nil {
				return err
			}
		}
	}
	return nil
}
