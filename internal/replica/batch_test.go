package replica

// White-box tests for delta batching: the async sender's coalescing
// (collectBatch/processBatch) and the follower's whole-run apply
// (ApplyBatch). A Sync-mode shipper spawns no sender goroutines, so
// these tests own the sender role and drive the batch machinery
// deterministically — the exact code path the async goroutine runs.

import (
	"fmt"
	"testing"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/shard"
)

const batchRegionBytes = 1 << 18

func batchFollower(t *testing.T, shards int) *Follower {
	t.Helper()
	sys, err := core.NewSystem(core.Options{CPUs: shards, DiskBytesEach: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := NewFollower(sys, FollowerConfig{Shards: shards, RegionBytes: batchRegionBytes})
	if err != nil {
		t.Fatal(err)
	}
	return fol
}

// batchDelta builds an unpooled single-shard delta of npages pages,
// each stamped with the sequence number.
func batchDelta(seq uint64, npages int) *Delta {
	d := &Delta{Shard: 0, Seq: seq, Era: 0}
	for i := 0; i < npages; i++ {
		data := make([]byte, core.PageSize)
		data[0] = byte(seq)
		d.Pages = append(d.Pages, core.CommittedPage{Index: int64(1 + i), Data: data})
	}
	return d
}

// enqueue plays the worker role: one queued job with one reference,
// exactly as the async branch of ShipCommit does.
func enqueue(s *Shipper, ss *shipShard, d *Delta, at time.Duration) {
	d.retain()
	s.jobs.Add(1)
	ss.queue <- shipJob{at: at, d: d}
}

// TestBatchCoalescingDelivers drives five consecutive deltas through
// the sender loop's batch path with MaxBatch=3 and checks both ends'
// accounting: two link messages (3+2), every delta applied, and one
// follower uCheckpoint per run. A retransmission of an already-applied
// run is then acked as a whole-batch duplicate.
func TestBatchCoalescingDelivers(t *testing.T) {
	fol := batchFollower(t, 1)
	s := NewShipper(NewLink(LinkConfig{}), fol, 1, Config{Mode: Sync, MaxBatch: 3})
	ss := s.shards[0]

	for seq := uint64(1); seq <= 5; seq++ {
		enqueue(s, ss, batchDelta(seq, 1), time.Duration(seq)*time.Millisecond)
	}
	for len(ss.queue) > 0 {
		s.processBatch(ss, s.collectBatch(ss, <-ss.queue))
	}
	s.jobs.Wait() // all job references settled

	st := s.Stats()[0]
	if st.Batches != 2 || st.BatchedDeltas != 5 {
		t.Errorf("shipper batches=%d batchedDeltas=%d, want 2 and 5", st.Batches, st.BatchedDeltas)
	}
	if st.Acked != 5 || st.LastAckedSeq != 5 {
		t.Errorf("acked=%d lastAckedSeq=%d, want 5 and 5", st.Acked, st.LastAckedSeq)
	}
	if st.Shipped != 2 {
		t.Errorf("shipped %d link messages, want 2", st.Shipped)
	}
	fs := fol.Stats()[0]
	if fs.Applied != 5 || fs.Batches != 2 || fs.LastSeq != 5 {
		t.Errorf("follower applied=%d batches=%d lastSeq=%d, want 5, 2, 5", fs.Applied, fs.Batches, fs.LastSeq)
	}

	// Retransmit the first run whole (the lost-ack scenario): the
	// follower must skip it idempotently and ack as a duplicate.
	for seq := uint64(1); seq <= 3; seq++ {
		enqueue(s, ss, batchDelta(seq, 1), 10*time.Millisecond)
	}
	s.processBatch(ss, s.collectBatch(ss, <-ss.queue))
	s.jobs.Wait()

	st = s.Stats()[0]
	if st.Duplicates != 3 || st.Acked != 8 {
		t.Errorf("after retransmit: duplicates=%d acked=%d, want 3 and 8", st.Duplicates, st.Acked)
	}
	fs = fol.Stats()[0]
	if fs.Duplicates != 3 || fs.Applied != 5 || fs.LastSeq != 5 {
		t.Errorf("follower after retransmit: duplicates=%d applied=%d lastSeq=%d, want 3, 5, 5", fs.Duplicates, fs.Applied, fs.LastSeq)
	}
}

// TestCollectBatchSplitsOnSeqGap: a non-consecutive sequence number
// must not coalesce — the run ends and the rejected job waits at the
// front of the backlog for the next pass.
func TestCollectBatchSplitsOnSeqGap(t *testing.T) {
	s := NewShipper(NewLink(LinkConfig{}), nil, 1, Config{Mode: Sync, MaxBatch: 10})
	ss := s.shards[0]
	for _, seq := range []uint64{1, 2, 4} {
		ss.queue <- shipJob{d: batchDelta(seq, 1)}
	}
	batch := s.collectBatch(ss, <-ss.queue)
	if len(batch) != 2 || batch[0].d.Seq != 1 || batch[1].d.Seq != 2 {
		t.Fatalf("batch = %d jobs (first seqs %v), want the consecutive run [1 2]", len(batch), seqsOf(batch))
	}
	if len(ss.backlog) != 1 || ss.backlog[0].d.Seq != 4 {
		t.Fatalf("backlog = %v, want the rejected seq-4 job at the front", seqsOf(ss.backlog))
	}
}

// TestCollectBatchSplitsOnEra: deltas from different replication eras
// never share a link message.
func TestCollectBatchSplitsOnEra(t *testing.T) {
	s := NewShipper(NewLink(LinkConfig{}), nil, 1, Config{Mode: Sync, MaxBatch: 10})
	ss := s.shards[0]
	d2 := batchDelta(2, 1)
	d2.Era = 1
	ss.queue <- shipJob{d: batchDelta(1, 1)}
	ss.queue <- shipJob{d: d2}
	batch := s.collectBatch(ss, <-ss.queue)
	if len(batch) != 1 || batch[0].d.Seq != 1 {
		t.Fatalf("batch = %v, want just seq 1", seqsOf(batch))
	}
	if len(ss.backlog) != 1 || ss.backlog[0].d.Era != 1 {
		t.Fatalf("era-1 delta not deferred to backlog: %v", seqsOf(ss.backlog))
	}
}

// TestCollectBatchBytesBudget: MaxBatchBytes caps the coalesced wire
// size even when MaxBatch would admit more.
func TestCollectBatchBytesBudget(t *testing.T) {
	one := batchDelta(1, 1).WireSize()
	s := NewShipper(NewLink(LinkConfig{}), nil, 1,
		Config{Mode: Sync, MaxBatch: 10, MaxBatchBytes: 2*one + 1})
	ss := s.shards[0]
	for seq := uint64(1); seq <= 4; seq++ {
		ss.queue <- shipJob{d: batchDelta(seq, 1)}
	}
	batch := s.collectBatch(ss, <-ss.queue)
	if len(batch) != 2 {
		t.Fatalf("batch = %v under a two-delta byte budget, want 2 jobs", seqsOf(batch))
	}
	if len(ss.backlog) != 1 || ss.backlog[0].d.Seq != 3 {
		t.Fatalf("backlog = %v, want seq 3 deferred", seqsOf(ss.backlog))
	}
}

func seqsOf(jobs []shipJob) []uint64 {
	var out []uint64
	for _, j := range jobs {
		out = append(out, j.d.Seq)
	}
	return out
}

// TestApplyBatchPartialDuplicate: a run overlapping the follower's
// position (retransmission racing new deltas) skips the applied
// prefix and lands the rest in one uCheckpoint.
func TestApplyBatchPartialDuplicate(t *testing.T) {
	fol := batchFollower(t, 1)
	at := time.Duration(0)
	for seq := uint64(1); seq <= 4; seq++ {
		var st ApplyStatus
		at, st = fol.Apply(at, batchDelta(seq, 1))
		if st.Code != ApplyOK {
			t.Fatalf("seed apply %d: %v", seq, st.Code)
		}
	}
	run := []*Delta{batchDelta(3, 1), batchDelta(4, 1), batchDelta(5, 1), batchDelta(6, 1)}
	_, st := fol.ApplyBatch(at, run)
	if st.Code != ApplyOK || st.LastSeq != 6 {
		t.Fatalf("overlapping batch: code=%v lastSeq=%d, want OK and 6", st.Code, st.LastSeq)
	}
	fs := fol.Stats()[0]
	if fs.Applied != 6 || fs.Duplicates != 2 || fs.Batches != 1 {
		t.Errorf("applied=%d duplicates=%d batches=%d, want 6, 2, 1", fs.Applied, fs.Duplicates, fs.Batches)
	}
}

// TestApplyBatchGapLeavesRegionUntouched: a run ahead of the
// follower's position is rejected before any page is written.
func TestApplyBatchGapLeavesRegionUntouched(t *testing.T) {
	fol := batchFollower(t, 1)
	before := fol.Digests()[0]
	run := []*Delta{batchDelta(5, 1), batchDelta(6, 1), batchDelta(7, 1)}
	_, st := fol.ApplyBatch(0, run)
	if st.Code != ApplyGap || st.LastSeq != 0 {
		t.Fatalf("gap batch: code=%v lastSeq=%d, want Gap and 0", st.Code, st.LastSeq)
	}
	if after := fol.Digests()[0]; after != before {
		t.Errorf("rejected batch modified the region: digest %#x -> %#x", before, after)
	}
	if fs := fol.Stats()[0]; fs.Gaps != 1 || fs.Applied != 0 {
		t.Errorf("gaps=%d applied=%d, want 1 and 0", fs.Gaps, fs.Applied)
	}
}

// TestApplyBatchMalformed: a chain that is not a gap-free same-era
// run of one shard is rejected outright.
func TestApplyBatchMalformed(t *testing.T) {
	fol := batchFollower(t, 2)
	cases := map[string][]*Delta{
		"empty":           {},
		"seq hole":        {batchDelta(1, 1), batchDelta(3, 1)},
		"mixed era":       {batchDelta(1, 1), func() *Delta { d := batchDelta(2, 1); d.Era = 1; return d }()},
		"mixed shard":     {batchDelta(1, 1), func() *Delta { d := batchDelta(2, 1); d.Shard = 1; return d }()},
		"descending seqs": {batchDelta(2, 1), batchDelta(1, 1)},
	}
	for name, run := range cases {
		if _, st := fol.ApplyBatch(0, run); st.Code != ApplyGap {
			t.Errorf("%s: code=%v, want Gap", name, st.Code)
		}
	}
	if fs := fol.Stats()[0]; fs.Applied != 0 || fs.LastSeq != 0 {
		t.Errorf("malformed batches changed position: applied=%d lastSeq=%d", fs.Applied, fs.LastSeq)
	}
}

// TestAsyncBatchingEndToEnd runs the real async pipeline — service,
// capture pooling, batched shipping — and checks the replicas
// converge and every capture-pool page is returned once both ends
// shut down.
func TestAsyncBatchingEndToEnd(t *testing.T) {
	pages0, slices0 := core.CapturePoolStats()
	const shards = 2
	sysA, err := core.NewSystem(core.Options{CPUs: shards, DiskBytesEach: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fol := batchFollower(t, shards)
	link := NewLink(LinkConfig{})
	ship := NewShipper(link, fol, shards, Config{}) // Async, batching on by default
	svc, err := shard.New(sysA, shard.Config{Shards: shards, RegionBytes: batchRegionBytes, Replicator: ship})
	if err != nil {
		t.Fatal(err)
	}
	ship.Attach(svc)

	for i := 0; i < 80; i++ {
		if err := svc.Put("t", fmt.Sprintf("k%03d", i), uint64(i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	ship.Flush()

	pd, err := svc.ShardDigests()
	if err != nil {
		t.Fatal(err)
	}
	fd := fol.Digests()
	for i := range pd {
		if pd[i] != fd[i] {
			t.Errorf("shard %d: primary digest %#x != follower digest %#x", i, pd[i], fd[i])
		}
	}

	var acked, applied int64
	for _, st := range ship.Stats() {
		acked += st.Acked
	}
	for _, fs := range fol.Stats() {
		applied += fs.Applied
	}
	if acked == 0 || acked != applied {
		t.Errorf("acked=%d applied=%d, want equal and nonzero", acked, applied)
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ship.Close(); err != nil {
		t.Fatal(err)
	}
	pages1, slices1 := core.CapturePoolStats()
	if pages1.InUse() != pages0.InUse() {
		t.Errorf("capture page pool leaked through replication: in-use %d -> %d", pages0.InUse(), pages1.InUse())
	}
	if slices1.InUse() != slices0.InUse() {
		t.Errorf("captured-pages slice pool leaked through replication: in-use %d -> %d", slices0.InUse(), slices1.InUse())
	}
}
