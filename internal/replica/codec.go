package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/pool"
	"memsnap/internal/sim"
)

// Wire format of an encoded delta: a sequence of per-page frames, each
//
//	[8B page index LE][1B kind][3B payload length LE][payload]
//
// with three payload kinds, chosen per page by encoded size:
//
//	kindFull    the whole page, verbatim. The only kind for pages
//	            captured without a pre-image (first capture, fresh
//	            context after recovery/promotion, pre-image budget
//	            eviction) — the full-page fallback.
//	kindExtents [2B count] then per extent [2B off][2B len][len bytes
//	            of new content]. Literal bytes: patching needs no base,
//	            so extents are idempotent under retransmission.
//	kindXorRLE  [8B pre-image hash][8B new-content hash] then a
//	            run-length stream over (new XOR pre-image): alternating
//	            uvarint zero-run and literal-run lengths, each literal
//	            run followed by its XOR bytes, until the page is
//	            covered. Patching XORs into the follower's page, which
//	            therefore MUST be byte-identical to the encoder's
//	            pre-image: both hashes ride in the frame and the
//	            follower validates the chain before writing anything. A
//	            mismatch rejects the delta (gap), which forces full-page
//	            replay or a snapshot resync — never a silently corrupt
//	            pre-image chain.
//
// An encoded delta is framed once, at ShipCommit time, and the encoded
// bytes are cached on the Delta for its whole pipeline life, so
// retransmissions and batch assembly always account the same wire size
// (MaxBatchBytes bounds encoded bytes and can never be under-counted
// by a recomputation after the pre-image buffers are released).
const (
	frameHeaderBytes = 12

	kindFull    = 0
	kindExtents = 1
	kindXorRLE  = 2
)

// encPool recycles encoded-delta buffers.
var encPool = pool.NewSlicePool[byte]()

// EncPoolStats snapshots the encoded-delta buffer pool (leak checks).
func EncPoolStats() pool.Stats { return encPool.Stats() }

// fnv64 is FNV-1a over b.
//
//memsnap:hotpath
func fnv64(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime
	}
	return h
}

// xorRLESize returns the payload size of a kindXorRLE encoding of cur
// against prev without materializing it.
//
//memsnap:hotpath
func xorRLESize(prev, cur []byte) int {
	size := 16 // base + new hash
	i, n := 0, len(cur)
	for i < n {
		z := i
		for z < n && prev[z] == cur[z] {
			z++
		}
		size += uvarintLen(uint64(z - i))
		i = z
		if i >= n {
			break
		}
		l := i
		for l < n && prev[l] != cur[l] {
			l++
		}
		size += uvarintLen(uint64(l-i)) + (l - i)
		i = l
	}
	return size
}

// uvarintLen is the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendXorRLE appends the kindXorRLE payload of cur vs prev.
//
//memsnap:hotpath
func appendXorRLE(dst, prev, cur []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, fnv64(prev))
	dst = binary.LittleEndian.AppendUint64(dst, fnv64(cur))
	i, n := 0, len(cur)
	for i < n {
		z := i
		for z < n && prev[z] == cur[z] {
			z++
		}
		dst = binary.AppendUvarint(dst, uint64(z-i))
		i = z
		if i >= n {
			break
		}
		l := i
		for l < n && prev[l] != cur[l] {
			l++
		}
		dst = binary.AppendUvarint(dst, uint64(l-i))
		for j := i; j < l; j++ {
			dst = append(dst, prev[j]^cur[j])
		}
		i = l
	}
	return dst
}

// extentsSize returns the payload size of a kindExtents encoding.
func extentsSize(ext []core.Extent) int {
	size := 2
	for _, e := range ext {
		size += 4 + int(e.Len)
	}
	return size
}

// appendFrameHeader appends one frame header.
//
//memsnap:hotpath
func appendFrameHeader(dst []byte, index int64, kind byte, payload int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(index))
	dst = append(dst, kind, byte(payload), byte(payload>>8), byte(payload>>16))
	return dst
}

// appendPageFrame appends the smallest frame encoding pg. forceFull
// disables sub-page encodings (Config.FullPages, snapshot-grade
// transfers).
//
//memsnap:hotpath
func appendPageFrame(dst []byte, pg *core.CommittedPage, forceFull bool) (out []byte, kind byte, extents int) {
	full := len(pg.Data)
	kind = kindFull
	best := full
	if !forceFull && pg.Prev != nil && pg.Extents != nil {
		if s := extentsSize(pg.Extents); s < best {
			kind, best = kindExtents, s
		}
		if s := xorRLESize(pg.Prev, pg.Data); s < best {
			kind, best = kindXorRLE, s
		}
	}
	dst = appendFrameHeader(dst, pg.Index, kind, best)
	switch kind {
	case kindFull:
		dst = append(dst, pg.Data...)
	case kindExtents:
		dst = append(dst, byte(len(pg.Extents)), byte(len(pg.Extents)>>8))
		for _, e := range pg.Extents {
			dst = append(dst, byte(e.Off), byte(e.Off>>8), byte(e.Len), byte(e.Len>>8))
			dst = append(dst, pg.Data[e.Off:int(e.Off)+int(e.Len)]...)
		}
		extents = len(pg.Extents)
	case kindXorRLE:
		dst = appendXorRLE(dst, pg.Prev, pg.Data)
	}
	return dst, kind, extents
}

// encodeResult summarizes one delta's encoding for the shipper's
// counters.
type encodeResult struct {
	wire    int           // encoded payload bytes (excl. message header)
	saved   int           // full-page wire bytes minus encoded bytes
	extents int           // extents emitted across kindExtents frames
	cost    time.Duration // virtual encode time
}

// encode frames the delta's pages once and caches the encoding on the
// delta; WireSize switches to the encoded size. The pre-image buffers
// and extent lists are consumed — released back to their pools — so
// the retained-window copy of the delta holds only Data plus the
// encoding, and the encoding can never be recomputed (larger) after
// eviction. forceFull ships verbatim pages (the diffing-off baseline).
//
//memsnap:hotpath
//memsnap:owns
func (d *Delta) encode(costs *sim.CostModel, forceFull bool) encodeResult {
	if d.enc != nil || len(d.Pages) == 0 {
		return encodeResult{}
	}
	capHint := 0
	scanned := 0
	for i := range d.Pages {
		capHint += frameHeaderBytes + len(d.Pages[i].Data)
		if d.Pages[i].Prev != nil {
			scanned += len(d.Pages[i].Data)
		}
	}
	enc := encPool.Get(capHint)
	var extents int
	for i := range d.Pages {
		pg := &d.Pages[i]
		var nExt int
		enc, _, nExt = appendPageFrame(enc, pg, forceFull)
		extents += nExt
		if d.pooled {
			pg.ReleasePre()
		} else {
			pg.Prev, pg.Extents = nil, nil
		}
	}
	d.enc = enc
	res := encodeResult{
		wire:    len(enc),
		saved:   pagesWireSize(len(d.Pages)) - (msgHeaderBytes + len(enc)),
		extents: extents,
	}
	if res.saved < 0 {
		res.saved = 0
	}
	res.cost = costs.DiffCost(scanned) + costs.MemcpyCost(len(enc))
	return res
}

// frame is one decoded page frame; payload aliases the encoded buffer.
type frame struct {
	index   int64
	kind    byte
	payload []byte
}

// decodeFrame splits the first frame off enc.
//
//memsnap:hotpath
func decodeFrame(enc []byte) (f frame, rest []byte, err error) {
	if len(enc) < frameHeaderBytes {
		//lint:allow hotalloc malformed-frame error path
		return frame{}, nil, fmt.Errorf("replica: truncated frame header (%d bytes)", len(enc))
	}
	f.index = int64(binary.LittleEndian.Uint64(enc))
	f.kind = enc[8]
	plen := int(enc[9]) | int(enc[10])<<8 | int(enc[11])<<16
	if f.kind > kindXorRLE {
		//lint:allow hotalloc malformed-frame error path
		return frame{}, nil, fmt.Errorf("replica: unknown frame kind %d", f.kind)
	}
	if len(enc) < frameHeaderBytes+plen {
		//lint:allow hotalloc malformed-frame error path
		return frame{}, nil, fmt.Errorf("replica: truncated frame payload (%d of %d bytes)", len(enc)-frameHeaderBytes, plen)
	}
	f.payload = enc[frameHeaderBytes : frameHeaderBytes+plen]
	return f, enc[frameHeaderBytes+plen:], nil
}

// errMalformedFrame rejects a structurally invalid frame payload
// during the follower's pre-write validation pass.
var errMalformedFrame = errors.New("replica: malformed frame payload")

// checkFrame validates f's payload structure against a page of pageLen
// bytes without writing anything — the follower runs it on every frame
// BEFORE any byte lands in the region, so patchFrame can never fail
// midway through an apply and leave a torn page.
//
//memsnap:hotpath
func checkFrame(pageLen int, f frame) error {
	switch f.kind {
	case kindFull:
		if len(f.payload) != pageLen {
			return errMalformedFrame
		}
		return nil
	case kindExtents:
		if len(f.payload) < 2 {
			return errMalformedFrame
		}
		count := int(f.payload[0]) | int(f.payload[1])<<8
		p := f.payload[2:]
		for i := 0; i < count; i++ {
			if len(p) < 4 {
				return errMalformedFrame
			}
			off := int(p[0]) | int(p[1])<<8
			length := int(p[2]) | int(p[3])<<8
			p = p[4:]
			if len(p) < length || off+length > pageLen {
				return errMalformedFrame
			}
			p = p[length:]
		}
		if len(p) != 0 {
			return errMalformedFrame
		}
		return nil
	case kindXorRLE:
		if len(f.payload) < 16 {
			return errMalformedFrame
		}
		p := f.payload[16:]
		pos := 0
		for len(p) > 0 || pos < pageLen {
			z, n := binary.Uvarint(p)
			if n <= 0 || z > uint64(pageLen-pos) {
				return errMalformedFrame
			}
			p = p[n:]
			pos += int(z)
			if pos == pageLen {
				break
			}
			l, n := binary.Uvarint(p)
			if n <= 0 {
				return errMalformedFrame
			}
			p = p[n:]
			if l > uint64(len(p)) || l > uint64(pageLen-pos) {
				return errMalformedFrame
			}
			p = p[l:]
			pos += int(l)
		}
		if len(p) != 0 {
			return errMalformedFrame
		}
		return nil
	}
	return errMalformedFrame
}

// xorHashes reads the base/new pre-image hashes of a kindXorRLE frame.
func xorHashes(payload []byte) (base, next uint64, ok bool) {
	if len(payload) < 16 {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(payload), binary.LittleEndian.Uint64(payload[8:]), true
}

// patchFrame applies one decoded frame onto the live page bytes. page
// must be the frame's whole page (len PageSize for full frames). It
// returns the number of bytes written (the memcpy cost the caller
// charges) and an error on malformed payloads — the caller must have
// validated XOR base hashes beforehand; a malformed payload surfacing
// here means the region may hold a partial patch and the apply must be
// rejected without persisting.
//
//memsnap:hotpath
func patchFrame(page []byte, f frame) (int, error) {
	switch f.kind {
	case kindFull:
		if len(f.payload) != len(page) {
			//lint:allow hotalloc malformed-frame error path
			return 0, fmt.Errorf("replica: full frame size %d, page %d", len(f.payload), len(page))
		}
		copy(page, f.payload)
		return len(page), nil
	case kindExtents:
		if len(f.payload) < 2 {
			//lint:allow hotalloc malformed-frame error path
			return 0, fmt.Errorf("replica: truncated extent count")
		}
		count := int(f.payload[0]) | int(f.payload[1])<<8
		p := f.payload[2:]
		written := 0
		for i := 0; i < count; i++ {
			if len(p) < 4 {
				//lint:allow hotalloc malformed-frame error path
				return written, fmt.Errorf("replica: truncated extent header")
			}
			off := int(p[0]) | int(p[1])<<8
			length := int(p[2]) | int(p[3])<<8
			p = p[4:]
			if len(p) < length || off+length > len(page) {
				//lint:allow hotalloc malformed-frame error path
				return written, fmt.Errorf("replica: extent [%d,%d) outside page", off, off+length)
			}
			copy(page[off:off+length], p[:length])
			p = p[length:]
			written += length
		}
		if len(p) != 0 {
			//lint:allow hotalloc malformed-frame error path
			return written, fmt.Errorf("replica: %d trailing bytes after extents", len(p))
		}
		return written, nil
	case kindXorRLE:
		if len(f.payload) < 16 {
			//lint:allow hotalloc malformed-frame error path
			return 0, fmt.Errorf("replica: truncated xor-rle hashes")
		}
		p := f.payload[16:] // hashes validated by the caller
		pos, written := 0, 0
		for len(p) > 0 || pos < len(page) {
			z, n := binary.Uvarint(p)
			if n <= 0 || z > uint64(len(page)-pos) {
				//lint:allow hotalloc malformed-frame error path
				return written, fmt.Errorf("replica: bad zero run")
			}
			p = p[n:]
			pos += int(z)
			if pos == len(page) {
				break
			}
			l, n := binary.Uvarint(p)
			if n <= 0 {
				//lint:allow hotalloc malformed-frame error path
				return written, fmt.Errorf("replica: bad literal-run varint")
			}
			p = p[n:]
			if l > uint64(len(p)) || l > uint64(len(page)-pos) {
				//lint:allow hotalloc malformed-frame error path
				return written, fmt.Errorf("replica: literal run past page end")
			}
			for j := 0; j < int(l); j++ {
				page[pos+j] ^= p[j]
			}
			p = p[l:]
			pos += int(l)
			written += int(l)
		}
		if len(p) != 0 {
			//lint:allow hotalloc malformed-frame error path
			return written, fmt.Errorf("replica: %d trailing bytes after RLE stream", len(p))
		}
		return written, nil
	}
	//lint:allow hotalloc malformed-frame error path
	return 0, fmt.Errorf("replica: unknown frame kind %d", f.kind)
}
