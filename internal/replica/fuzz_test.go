package replica

// FuzzDeltaCodec drives the full sub-page codec loop from a fuzzed
// mutation script: mutate a deterministic base page, diff, encode
// (both diffing and forceFull modes per the fuzzed flag), decode,
// validate, patch — the patched page must equal the directly written
// one, byte for byte, and the frame hashes must chain correctly. The
// raw input is then replayed through the decoder as an adversarial
// frame stream, which must reject malformed frames with errors, never
// panic or write out of page bounds.

import (
	"bytes"
	"testing"

	"memsnap/internal/core"
	"memsnap/internal/sim"
)

func FuzzDeltaCodec(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{0x10, 0x00, 0xAA, 0x04}, false)
	f.Add([]byte{0x10, 0x00, 0xAA, 0x04}, true)
	f.Add([]byte{0x00, 0x00, 0x01, 0x3F, 0xFF, 0x0F, 0x02, 0x3F}, false)
	// A dense scatter: one mutation op per 24-byte stride, exercising
	// the extent-collapse and XOR/RLE paths.
	scatter := make([]byte, 0, 4*172)
	for off := 0; off < core.PageSize; off += 24 {
		scatter = append(scatter, byte(off), byte(off>>8), byte(off), 0x01)
	}
	f.Add(scatter, false)

	f.Fuzz(func(t *testing.T, script []byte, forceFull bool) {
		base := basePage()
		cur := append([]byte(nil), base...)
		for i := 0; i+4 <= len(script); i += 4 {
			off := (int(script[i]) | int(script[i+1])<<8) % core.PageSize
			val := script[i+2]
			run := int(script[i+3])%64 + 1
			for j := 0; j < run && off+j < core.PageSize; j++ {
				cur[off+j] = val + byte(j)
			}
		}

		d := codecDelta(1, 5, append([]byte(nil), base...), cur)
		res := d.encode(sim.DefaultCosts(), forceFull)
		if d.enc == nil {
			t.Fatal("encode cached nothing")
		}
		if res.wire != len(d.enc) || d.WireSize() != msgHeaderBytes+len(d.enc) {
			t.Fatalf("size accounting: wire=%d len(enc)=%d WireSize=%d", res.wire, len(d.enc), d.WireSize())
		}
		if !forceFull && len(d.enc) > frameHeaderBytes+core.PageSize {
			t.Fatalf("encoded frame (%d bytes) larger than a full-page frame", len(d.enc))
		}

		got := append([]byte(nil), base...)
		frames := 0
		enc := d.enc
		for len(enc) > 0 {
			fr, rest, err := decodeFrame(enc)
			if err != nil {
				t.Fatalf("decodeFrame on encoder output: %v", err)
			}
			if err := checkFrame(core.PageSize, fr); err != nil {
				t.Fatalf("checkFrame on encoder output: %v", err)
			}
			if fr.index != 5 {
				t.Fatalf("frame index = %d, want 5", fr.index)
			}
			if fr.kind == kindXorRLE {
				bh, nh, ok := xorHashes(fr.payload)
				if !ok || bh != fnv64(base) || nh != fnv64(cur) {
					t.Fatal("xor-rle frame hashes do not chain base -> new")
				}
			}
			if _, err := patchFrame(got, fr); err != nil {
				t.Fatalf("patchFrame on validated frame: %v", err)
			}
			enc = rest
			frames++
		}
		if frames != 1 {
			t.Fatalf("one page encoded into %d frames", frames)
		}
		if !bytes.Equal(got, cur) {
			t.Fatal("decode+patch does not equal the directly written page")
		}

		// Adversarial pass: the raw fuzz input as a frame stream. Every
		// outcome is acceptable except a panic or an out-of-bounds write.
		junk := make([]byte, core.PageSize)
		enc = script
		for len(enc) > 0 {
			fr, rest, err := decodeFrame(enc)
			if err != nil {
				break
			}
			structOK := checkFrame(core.PageSize, fr) == nil
			if _, err := patchFrame(junk, fr); (err == nil) != structOK {
				t.Fatalf("checkFrame/patchFrame disagree (structOK=%v, patch err=%v)", structOK, err)
			}
			enc = rest
		}
	})
}
