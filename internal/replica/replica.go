// Package replica implements primary/backup replication for the shard
// service by shipping uCheckpoint epochs.
//
// The unit of replication is the shard worker's group commit: one
// uCheckpoint whose dirty-page delta (slot pages plus the manifest
// page that numbers it) the primary captures after local durability
// and ships over a simulated Link to a Follower. The follower applies
// each delta in sequence order onto its own region — in one MSSync
// uCheckpoint per delta, so a follower region always holds a whole
// prefix of the primary's commit history and can never expose a torn
// delta — and acks with its applied position.
//
// A Shipper drives the per-shard pipeline: asynchronous by default
// (deltas queue in a bounded in-flight window behind the worker),
// synchronous on request (the worker holds client acks until the
// follower acks). Lost deltas and lost acks are retried on a timeout;
// duplicate deliveries are acked idempotently. When a follower's
// sequence gap exceeds the shipper's retained window, catch-up falls
// back to a full-region Snapshot transfer.
//
// Failover: Follower.Promote reopens the follower's regions through
// the standard shard manifest recovery path, at the last *fully
// applied* epoch, under a bumped replication era. Reconciliation: the
// demoted primary recovers its own store, rejoins as a follower, and
// the era mismatch forces a snapshot transfer that discards whatever
// it had committed beyond the new primary's history.
package replica

import (
	"errors"
	"sync/atomic"

	"memsnap/internal/core"
	"memsnap/internal/objstore"
)

// Errors.
var (
	// ErrLinkDown is returned when a synchronous commit (or snapshot
	// transfer) exhausted its retries without a follower ack. The
	// commit is durable locally but unconfirmed remotely.
	ErrLinkDown = errors.New("replica: follower unreachable: commit durable locally but not acknowledged")
	// ErrStale is returned when the follower rejected us as
	// superseded: it has seen a newer replication era (we are a
	// demoted primary, or it was promoted).
	ErrStale = errors.New("replica: superseded by a newer replication era")
	// ErrNotAttached is returned by operations that need a service or
	// follower endpoint that has not been attached yet.
	ErrNotAttached = errors.New("replica: shipper not attached to a service and follower")
	// ErrPromoted is returned by follower operations after Promote.
	ErrPromoted = errors.New("replica: follower has been promoted")
)

// Delta is one shipped group commit (see shard.Commit): the dirty-page
// delta of a single uCheckpoint, identified by the shard, its
// replication era and the manifest commit sequence number that rides
// in page 0 of the delta itself.
type Delta struct {
	Shard int
	Seq   uint64
	Era   uint64
	Epoch objstore.Epoch
	Pages []core.CommittedPage
	// TraceID carries the originating batch's distributed trace id
	// (0: untraced) onto the follower's apply spans.
	TraceID uint64

	// enc is the delta's sub-page wire encoding (see codec.go),
	// produced exactly once by ShipCommit and cached for the delta's
	// whole pipeline life — retransmissions, batch assembly and
	// retained-window replay all reuse these bytes, so WireSize is a
	// constant of the delta and MaxBatchBytes accounting cannot drift
	// when the pre-image buffers are released after encoding. nil for
	// deltas constructed outside the Shipper (tests, perfbench), which
	// ship with the legacy full-page wire size and are applied from
	// Pages directly.
	enc []byte

	// refs counts the pipeline's holders of this delta (the retained
	// replay window, a queued async job, a replay borrow); pooled marks
	// Pages as owned capture-pool pages that return to the pool when
	// the last holder releases. Deltas constructed outside the Shipper
	// (tests, perfbench) never take a reference and are ordinary
	// garbage-collected values.
	refs   atomic.Int32
	pooled bool
}

// retain adds one pipeline reference.
func (d *Delta) retain() { d.refs.Add(1) }

// release drops one pipeline reference; the last one returns pooled
// pages to the capture pool and the cached encoding to its pool.
func (d *Delta) release() {
	if d.refs.Add(-1) != 0 {
		return
	}
	if d.enc != nil {
		encPool.Put(d.enc)
		d.enc = nil
	}
	if d.pooled {
		core.ReleasePages(d.Pages)
		d.Pages = nil
	}
}

// Wire sizes: a fixed per-message header, 8 bytes of page index plus
// the page contents per page, and a small fixed ack.
const (
	msgHeaderBytes = 32
	pageWireBytes  = 8 + core.PageSize
	ackWireBytes   = 32
)

// WireSize is the delta's size on the link in bytes: the cached
// sub-page encoding when the delta has been encoded, the legacy
// full-page framing otherwise. For an encoded delta this is a
// constant for its whole pipeline life (the encoding is never
// recomputed), so retry and batch byte accounting cannot drift.
//
//memsnap:hotpath
func (d *Delta) WireSize() int {
	if d.enc != nil {
		return msgHeaderBytes + len(d.enc)
	}
	return msgHeaderBytes + len(d.Pages)*pageWireBytes
}

func pagesWireSize(n int) int { return msgHeaderBytes + n*pageWireBytes }

func maxd[T ~int64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
