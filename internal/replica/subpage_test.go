package replica

// White-box integration tests for sub-page delta shipping: the
// end-to-end wire-byte reduction against the FullPages baseline, and
// the pre-image hash guard driving a diverged follower into a snapshot
// resync instead of silently XOR-patching a wrong base.

import (
	"fmt"
	"testing"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
)

// runReplicatedWorkload runs an identical single-shard synchronous
// replication workload and returns the link bytes it shipped plus the
// shipper stats.
func runReplicatedWorkload(t *testing.T, fullPages bool) (int64, ShardRepStats, *Follower) {
	t.Helper()
	mkSys := func() *core.System {
		sys, err := core.NewSystem(core.Options{CPUs: 1, DiskBytesEach: 512 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	link := NewLink(LinkConfig{})
	fol, err := NewFollower(mkSys(), FollowerConfig{Shards: 1, RegionBytes: batchRegionBytes})
	if err != nil {
		t.Fatal(err)
	}
	ship := NewShipper(link, fol, 1, Config{Mode: Sync, FullPages: fullPages})
	svc, err := shard.New(mkSys(), shard.Config{Shards: 1, RegionBytes: batchRegionBytes, Replicator: ship})
	if err != nil {
		t.Fatal(err)
	}
	ship.Attach(svc)
	for i := 0; i < 60; i++ {
		if i%4 == 3 {
			if _, err := svc.Add("t", fmt.Sprintf("k%02d", i%8), 1); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := svc.Put("t", fmt.Sprintf("k%02d", i%8), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pd, err := svc.ShardDigests()
	if err != nil {
		t.Fatal(err)
	}
	if fd := fol.Digests(); pd[0] != fd[0] {
		t.Fatalf("replicas diverged: primary %#x follower %#x", pd[0], fd[0])
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	st := ship.Stats()[0]
	if err := ship.Close(); err != nil {
		t.Fatal(err)
	}
	return link.Stats().BytesSent, st, fol
}

// TestSubPageShippingReducesWireBytes pins the tentpole win: the same
// workload ships several-fold fewer bytes with sub-page diffing than
// with full pages, while the follower stays byte-identical.
func TestSubPageShippingReducesWireBytes(t *testing.T) {
	full, fullSt, _ := runReplicatedWorkload(t, true)
	diff, diffSt, fol := runReplicatedWorkload(t, false)
	if full == 0 || diff == 0 {
		t.Fatalf("no link traffic: full=%d diff=%d", full, diff)
	}
	if diff*3 > full {
		t.Fatalf("sub-page shipping sent %d bytes vs %d full-page: less than the required 3x reduction", diff, full)
	}
	if fullSt.DiffSavedBytes != 0 {
		t.Fatalf("FullPages baseline reported %d saved bytes, want 0", fullSt.DiffSavedBytes)
	}
	if diffSt.DiffSavedBytes == 0 || diffSt.Extents == 0 || diffSt.EncodeTime <= 0 {
		t.Fatalf("diffing stats not populated: %+v", diffSt)
	}
	if diffSt.WireBytes == 0 {
		t.Fatal("WireBytes counter not populated")
	}
	fst := fol.Stats()[0]
	if fst.PatchedBytes == 0 {
		t.Fatal("follower patched no sub-page bytes")
	}
	if fst.BaseMismatches != 0 || fst.Gaps != 0 || fst.Snapshots != 0 {
		t.Fatalf("clean run tripped the resync machinery: %+v", fst)
	}
}

// TestBaseMismatchForcesSnapshotResync: an XOR frame whose pre-image
// does not match the follower's page is rejected before any write —
// the byte-identical-prefix invariant — and the shipper falls back to
// a snapshot resync that restores convergence.
func TestBaseMismatchForcesSnapshotResync(t *testing.T) {
	fol := batchFollower(t, 1)
	link := NewLink(LinkConfig{})
	s := NewShipper(link, fol, 1, Config{Mode: Sync})
	ss := s.shards[0]

	// Seq 1 lands normally (full frames: no pre-image yet).
	base := basePage()
	d1 := &Delta{Shard: 0, Seq: 1, Pages: []core.CommittedPage{{Index: 1, Data: append([]byte(nil), base...)}}}
	d1.encode(sim.DefaultCosts(), false)
	ss.retain(d1, s.cfg.Window)
	if _, err := s.deliver(ss, 0, d1, nil, true); err != nil {
		t.Fatal(err)
	}

	// Seq 2 claims a pre-image the follower never had: a fragmented
	// diff so the encoder picks XOR+RLE, whose base hash the follower
	// must check against its live page (which holds `base`, not
	// `wrongPrev`).
	wrongPrev := make([]byte, core.PageSize)
	for i := range wrongPrev {
		wrongPrev[i] = byte(i * 31)
	}
	cur := append([]byte(nil), wrongPrev...)
	for i := 0; i < len(cur); i += 24 {
		cur[i] ^= 0x01
	}
	d2 := codecDelta(2, 1, wrongPrev, cur)
	d2.encode(sim.DefaultCosts(), false)
	if kinds := frameKinds(t, d2.enc); kinds[0] != kindXorRLE {
		t.Fatalf("want an XOR frame to exercise the hash guard, got kind %d", kinds[0])
	}
	ss.retain(d2, s.cfg.Window)

	// The catch-up snapshot the shipper will fall back to.
	snapPage := append([]byte(nil), cur...)
	snapFn := func() shard.Snapshot {
		return shard.Snapshot{Shard: 0, Seq: 2, Era: 0, Pages: []core.CommittedPage{{Index: 1, Data: snapPage}}}
	}
	if _, err := s.deliver(ss, time.Millisecond, d2, snapFn, true); err != nil {
		t.Fatalf("deliver with snapshot fallback: %v", err)
	}

	fst := fol.Stats()[0]
	if fst.BaseMismatches == 0 {
		t.Fatal("the pre-image hash guard never fired")
	}
	if fst.Snapshots != 1 {
		t.Fatalf("follower installed %d snapshots, want 1", fst.Snapshots)
	}
	if fst.LastSeq != 2 {
		t.Fatalf("follower position = %d, want 2 after resync", fst.LastSeq)
	}
	st := s.Stats()[0]
	if st.Gaps == 0 || st.Snapshots != 1 {
		t.Fatalf("shipper stats %+v: want gap reports and one snapshot", st)
	}
	// The region must hold the snapshot content, not an XOR patch of
	// the wrong base.
	fs := fol.shards[0]
	got := fs.ctx.PageForRead(fs.region, core.PageSize)
	for i := range got {
		if got[i] != cur[i] {
			t.Fatalf("follower page diverged at byte %d after resync", i)
		}
	}
}
