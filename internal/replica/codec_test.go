package replica

// White-box tests for the sub-page delta wire codec: per-kind
// round-trips, encoder kind selection, the encode-once WireSize
// invariant (a retransmission can never re-account a delta after its
// pre-images are gone), and batch byte-budget stability under retry.

import (
	"bytes"
	"testing"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/sim"
)

// basePage builds the deterministic pre-image used across codec tests.
func basePage() []byte {
	b := make([]byte, core.PageSize)
	for i := range b {
		b[i] = byte(i*131 + i>>8)
	}
	return b
}

// codecDelta builds an unpooled single-page delta with a pre-image and
// its computed extent diff, ready for encode.
func codecDelta(seq uint64, index int64, prev, cur []byte) *Delta {
	return &Delta{Shard: 0, Seq: seq, Pages: []core.CommittedPage{{
		Index:   index,
		Data:    append([]byte(nil), cur...),
		Prev:    prev,
		Extents: core.DiffExtents(prev, cur, make([]core.Extent, 0, 8)),
	}}}
}

// decodePatch decodes every frame of enc onto a copy of base and
// returns the patched page, failing the test on any malformed frame.
func decodePatch(t *testing.T, enc, base []byte) []byte {
	t.Helper()
	got := append([]byte(nil), base...)
	for len(enc) > 0 {
		fr, rest, err := decodeFrame(enc)
		if err != nil {
			t.Fatalf("decodeFrame: %v", err)
		}
		if err := checkFrame(core.PageSize, fr); err != nil {
			t.Fatalf("checkFrame: %v", err)
		}
		if _, err := patchFrame(got, fr); err != nil {
			t.Fatalf("patchFrame: %v", err)
		}
		enc = rest
	}
	return got
}

// frameKinds decodes enc and returns the kind of every frame.
func frameKinds(t *testing.T, enc []byte) []byte {
	t.Helper()
	var kinds []byte
	for len(enc) > 0 {
		fr, rest, err := decodeFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, fr.kind)
		enc = rest
	}
	return kinds
}

func TestCodecRoundTripKinds(t *testing.T) {
	base := basePage()
	costs := sim.DefaultCosts()
	cases := []struct {
		name   string
		mutate func(cur []byte)
		kind   byte
	}{
		{"single_byte", func(cur []byte) { cur[100] ^= 0xFF }, kindExtents},
		{"one_run", func(cur []byte) {
			for i := 200; i < 232; i++ {
				cur[i] = 0xAB
			}
		}, kindExtents},
		{"identical_page", func(cur []byte) {}, kindExtents},
		{"whole_page", func(cur []byte) {
			for i := range cur {
				cur[i] ^= 0x5A
			}
		}, kindFull},
		{"fragmented", func(cur []byte) {
			// One byte every 24: far past maxDiffExtents runs, so the
			// extent list collapses to a near-page span while XOR+RLE
			// keeps the precise runs and wins.
			for i := 0; i < len(cur); i += 24 {
				cur[i] ^= 0x01
			}
		}, kindXorRLE},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := append([]byte(nil), base...)
			tc.mutate(cur)
			d := codecDelta(1, 7, append([]byte(nil), base...), cur)
			res := d.encode(costs, false)
			if d.enc == nil {
				t.Fatal("encode cached nothing")
			}
			if res.wire != len(d.enc) {
				t.Fatalf("encodeResult.wire = %d, len(enc) = %d", res.wire, len(d.enc))
			}
			if kinds := frameKinds(t, d.enc); len(kinds) != 1 || kinds[0] != tc.kind {
				t.Fatalf("frame kinds = %v, want [%d]", kinds, tc.kind)
			}
			if got := decodePatch(t, d.enc, base); !bytes.Equal(got, cur) {
				t.Fatal("decode+patch does not reproduce the written page")
			}
			if res.cost <= 0 {
				t.Fatal("encode charged no virtual time")
			}
		})
	}
}

// TestCodecForceFull: FullPages mode ships every page verbatim — the
// pre-diffing baseline — and still round-trips.
func TestCodecForceFull(t *testing.T) {
	base := basePage()
	cur := append([]byte(nil), base...)
	cur[9] ^= 0x40
	d := codecDelta(1, 3, base, cur)
	d.encode(sim.DefaultCosts(), true)
	if kinds := frameKinds(t, d.enc); len(kinds) != 1 || kinds[0] != kindFull {
		t.Fatalf("forceFull frame kinds = %v, want [%d]", kinds, kindFull)
	}
	if len(d.enc) != frameHeaderBytes+core.PageSize {
		t.Fatalf("forceFull enc = %d bytes, want %d", len(d.enc), frameHeaderBytes+core.PageSize)
	}
	if got := decodePatch(t, d.enc, base); !bytes.Equal(got, cur) {
		t.Fatal("forceFull round trip mismatch")
	}
}

// TestWireSizeStableAfterPreImageRelease pins the encode-once
// invariant that fixes batch accounting under retry: once encoded, a
// delta's WireSize never changes — not after its pre-image buffers and
// extent lists are released (encode consumes them), and not on a
// second encode call. Before this invariant, a retransmission whose
// encoding was recomputed after pre-image eviction could only produce
// full-page frames, under-counting the MaxBatchBytes budget its
// original (smaller) encoding had been admitted under.
func TestWireSizeStableAfterPreImageRelease(t *testing.T) {
	base := basePage()
	cur := append([]byte(nil), base...)
	cur[500] ^= 0x11
	d := codecDelta(1, 2, base, cur)
	legacy := d.WireSize()
	if legacy != pagesWireSize(1) {
		t.Fatalf("unencoded WireSize = %d, want legacy %d", legacy, pagesWireSize(1))
	}
	d.encode(sim.DefaultCosts(), false)
	ws := d.WireSize()
	if ws >= legacy {
		t.Fatalf("encoded WireSize = %d, not smaller than legacy %d", ws, legacy)
	}
	if d.Pages[0].Prev != nil || d.Pages[0].Extents != nil {
		t.Fatal("encode did not consume the pre-image buffers")
	}
	// The pre-images are gone — exactly the state a retained-window
	// delta is in when a retry retransmits it.
	if again := d.WireSize(); again != ws {
		t.Fatalf("WireSize drifted after pre-image release: %d -> %d", ws, again)
	}
	if res := d.encode(sim.DefaultCosts(), false); res.wire != 0 {
		t.Fatalf("second encode re-ran (wire=%d), must be a no-op", res.wire)
	}
	if again := d.WireSize(); again != ws {
		t.Fatalf("WireSize drifted after re-encode attempt: %d -> %d", ws, again)
	}
}

// TestCollectBatchPacksEncodedSizes: the byte budget admits deltas by
// their encoded size, so sub-page deltas that would blow a full-page
// budget coalesce into one message.
func TestCollectBatchPacksEncodedSizes(t *testing.T) {
	fol := batchFollower(t, 1)
	s := NewShipper(NewLink(LinkConfig{}), fol, 1, Config{Mode: Sync, MaxBatch: 4, MaxBatchBytes: 512})
	ss := s.shards[0]
	base := basePage()
	var jobs []shipJob
	for seq := uint64(1); seq <= 4; seq++ {
		cur := append([]byte(nil), base...)
		cur[int(seq)*10] = byte(seq)
		d := codecDelta(seq, 1, append([]byte(nil), base...), cur)
		d.encode(sim.DefaultCosts(), false)
		if d.WireSize() > 128 {
			t.Fatalf("seq %d: encoded WireSize = %d, expected a small extent frame", seq, d.WireSize())
		}
		jobs = append(jobs, shipJob{at: 0, d: d})
	}
	for _, j := range jobs[1:] {
		enqueue(s, ss, j.d, 0)
	}
	jobs[0].d.retain()
	s.jobs.Add(1)
	batch := s.collectBatch(ss, jobs[0])
	if len(batch) != 4 {
		t.Fatalf("coalesced %d encoded deltas, want 4 (sum of encoded sizes fits the 512-byte budget)", len(batch))
	}
	size := 0
	for _, j := range batch {
		size += j.d.WireSize()
	}
	if size > 512 {
		t.Fatalf("batch wire size %d exceeds MaxBatchBytes", size)
	}
	for range batch {
		s.jobs.Done()
	}
}

// TestBatchBytesStableUnderRetry: a retransmitted batch puts exactly
// the same bytes on the link as the first transmission — the cached
// encodings cannot be re-derived (larger) after pre-image release, so
// the MaxBatchBytes bound holds for every retry of an admitted batch.
func TestBatchBytesStableUnderRetry(t *testing.T) {
	fol := batchFollower(t, 1)
	link := NewLink(LinkConfig{})
	s := NewShipper(link, fol, 1, Config{Mode: Sync, MaxBatch: 4, MaxBatchBytes: 1 << 16})
	ss := s.shards[0]
	base := basePage()
	var batch []shipJob
	wire := 0
	for seq := uint64(1); seq <= 3; seq++ {
		cur := append([]byte(nil), base...)
		cur[int(seq)*50] = 0xC0 | byte(seq)
		d := codecDelta(seq, 1, append([]byte(nil), base...), cur)
		d.encode(sim.DefaultCosts(), false)
		wire += d.WireSize()
		batch = append(batch, shipJob{at: 0, d: d})
	}
	if kinds := frameKinds(t, batch[0].d.enc); kinds[0] != kindExtents {
		t.Fatalf("want base-independent extent frames for this test, got kind %d", kinds[0])
	}
	t1 := s.deliverBatch(ss, 0, batch)
	sent1 := link.Stats().BytesSent
	if want := int64(wire + ackWireBytes); sent1 != want {
		t.Fatalf("first transmission put %d bytes on the link, want %d", sent1, want)
	}
	// Retransmit (the lost-ack case): the follower re-acks the whole
	// run as a duplicate, and the message is byte-for-byte the same
	// size even though every pre-image was consumed at encode time.
	s.deliverBatch(ss, t1+time.Millisecond, batch)
	sent2 := link.Stats().BytesSent - sent1
	if want := int64(wire + ackWireBytes); sent2 != want {
		t.Fatalf("retransmission put %d bytes on the link, want %d (must match the admitted size)", sent2, want)
	}
	st := fol.Stats()[0]
	if st.Applied != 3 || st.Duplicates != 3 {
		t.Fatalf("follower stats = %+v; want 3 applied then 3 duplicates", st)
	}
}
