package replica

import (
	"sync"
	"time"

	"memsnap/internal/obs"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
)

// Mode selects when the primary's clients are acknowledged relative
// to replication.
type Mode int

const (
	// Async (the default): ShipCommit enqueues the delta in the
	// shard's bounded in-flight window and returns immediately, so
	// client acks wait only for local durability.
	Async Mode = iota
	// Sync: ShipCommit transmits inline and returns the follower-ack
	// time, so the worker holds client acks until the commit is
	// durable on both replicas (or fails them with ErrLinkDown).
	Sync
)

// Config tunes a Shipper.
type Config struct {
	Mode Mode
	// Window bounds the per-shard in-flight delta queue and the
	// retained-delta history used for gap replay (default 8). An
	// async worker committing more than Window deltas ahead of the
	// sender blocks until a slot frees.
	Window int
	// RetryTimeout is the virtual time a sender waits before
	// retransmitting a delta whose delivery or ack was lost
	// (default 200us).
	RetryTimeout time.Duration
	// MaxRetries bounds retransmissions per message before the
	// follower is declared unreachable (default 8).
	MaxRetries int
	// MaxBatch bounds how many consecutive queued deltas an async
	// sender coalesces into one link message (default 4; 1 disables
	// batching). Only gap-free same-era runs coalesce, so the follower
	// can validate and persist a batch as a single unit.
	MaxBatch int
	// MaxBatchBytes bounds a coalesced message's wire size — the
	// *encoded* size when sub-page diffing is on (default 256 KiB).
	MaxBatchBytes int
	// FullPages disables sub-page delta encoding: every page ships
	// verbatim, reproducing the pre-diffing wire behavior. The
	// before/after baseline for bytes-on-link measurements.
	FullPages bool
	// Recorder, when set, receives ship/retry/snapshot trace spans on
	// each shard's sender lane (obs.ShipTrack).
	Recorder *obs.Recorder
}

func (c *Config) fill() {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 200 * time.Microsecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 256 << 10
	}
}

// ShardRepStats are one shard's replication pipeline counters.
type ShardRepStats struct {
	Shard int
	// Shipped counts link message transmissions (retransmissions
	// included; a batched message carrying several deltas counts
	// once); Acked counts deltas confirmed by the follower;
	// Duplicates are acks for deltas the follower had already
	// applied.
	Shipped, Acked, Duplicates int64
	// Retries, LostDeltas, LostAcks count the retransmission machinery.
	Retries, LostDeltas, LostAcks int64
	// Gaps counts follower gap reports; Snapshots counts full-region
	// catch-up transfers; Stale counts era rejections; Exhausted
	// counts messages abandoned after MaxRetries; Unsent counts
	// deltas dropped because no follower was connected.
	Gaps, Snapshots, Stale, Exhausted, Unsent int64
	// Batches counts coalesced multi-delta transmissions acked as a
	// unit; BatchedDeltas counts the deltas they carried.
	Batches, BatchedDeltas int64
	// WireBytes counts delta/batch/snapshot payload bytes put on the
	// link (retransmissions included; acks excluded). DiffSavedBytes
	// counts wire bytes the sub-page encoding avoided versus full-page
	// framing, per unique delta; Extents counts byte-range extents
	// emitted. EncodeTime is the cumulative virtual encode cost.
	WireBytes, DiffSavedBytes, Extents int64
	EncodeTime                         time.Duration
	// LastAckedSeq is the highest sequence number the follower acked.
	LastAckedSeq uint64
	// AckLatency summarizes per-delta latency from local durability
	// to follower ack; AckHist is its log2-bucketed histogram.
	AckLatency sim.Summary
	AckHist    obs.HistSnapshot
}

type shipJob struct {
	at time.Duration
	d  *Delta
}

type shipShard struct {
	id    int
	queue chan shipJob

	// backlog and horizon belong to the shard's single sender (the
	// async goroutine, or the worker in sync mode): jobs deferred
	// while a snapshot was in flight, and the virtual time the sender
	// is busy until. batch is the sender's coalescing scratch.
	backlog []shipJob
	horizon time.Duration
	batch   []shipJob
	deltas  []*Delta

	mu       sync.Mutex
	retained []*Delta
	st       ShardRepStats
	ackLat   *sim.LatencyRecorder
	// ackHist is the log2-bucketed twin of ackLat (lock-free record,
	// exported as Prometheus _bucket/_sum/_count series).
	ackHist obs.Histogram
}

// retain appends d to the replay history, keeping the last window
// deltas; the history holds one reference per retained delta.
//
//memsnap:owns
func (ss *shipShard) retain(d *Delta, window int) {
	d.retain()
	var evicted *Delta
	ss.mu.Lock()
	ss.retained = append(ss.retained, d)
	if len(ss.retained) > window {
		evicted = ss.retained[0]
		copy(ss.retained, ss.retained[1:])
		ss.retained[len(ss.retained)-1] = nil
		ss.retained = ss.retained[:len(ss.retained)-1]
	}
	ss.mu.Unlock()
	if evicted != nil {
		evicted.release()
	}
}

// retainedRange returns the retained deltas covering [from, to], or
// ok=false when the history has a hole in that range (snapshot
// catch-up required). An empty range is trivially covered. Returned
// deltas carry a reference each; the caller releases them.
//
//memsnap:owns
func (ss *shipShard) retainedRange(from, to uint64) ([]*Delta, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if from > to {
		return nil, true
	}
	var out []*Delta
	want := from
	for _, d := range ss.retained {
		if d.Seq < from || d.Seq > to {
			continue
		}
		if d.Seq != want {
			return nil, false
		}
		out = append(out, d)
		want = d.Seq + 1
	}
	if want != to+1 {
		return nil, false
	}
	// Take the borrows under ss.mu: the window cannot evict (and thus
	// release) any of these concurrently while we hold the lock.
	for _, d := range out {
		d.retain()
	}
	return out, true
}

// Shipper is the primary-side replication pipeline: it implements
// shard.Replicator, turning each locally durable group commit into a
// Delta shipped over the Link to the Follower. Construct it first,
// pass it in shard.Config.Replicator, then Attach the service (the
// snapshot source for async catch-up). The follower endpoint may be
// connected later (a promoted primary starts shipping into the void
// until the demoted one rejoins); deltas meanwhile count as Unsent
// and are retained up to the window for replay.
//
// Shutdown order: close the service first (its final drain still
// ships), then the Shipper.
type Shipper struct {
	cfg  Config
	link *Link

	mu     sync.Mutex
	fol    *Follower
	svc    *shard.Service
	closed bool

	shards []*shipShard
	stop   chan struct{}
	wg     sync.WaitGroup
	jobs   sync.WaitGroup
}

// NewShipper builds a shipper for nshards shards over link. fol may
// be nil and connected later via Connect.
func NewShipper(link *Link, fol *Follower, nshards int, cfg Config) *Shipper {
	cfg.fill()
	if nshards <= 0 {
		nshards = 8
	}
	s := &Shipper{cfg: cfg, link: link, fol: fol, stop: make(chan struct{})}
	for i := 0; i < nshards; i++ {
		s.shards = append(s.shards, &shipShard{
			id:     i,
			queue:  make(chan shipJob, cfg.Window),
			ackLat: sim.NewLatencyRecorder(),
		})
	}
	if cfg.Mode == Async {
		for _, ss := range s.shards {
			s.wg.Add(1)
			go s.run(ss)
		}
	}
	return s
}

// Attach wires the primary service in as the snapshot source for
// catch-up transfers and Reconcile.
func (s *Shipper) Attach(svc *shard.Service) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.svc = svc
}

// Connect wires (or replaces) the follower endpoint.
func (s *Shipper) Connect(fol *Follower) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fol = fol
}

func (s *Shipper) follower() *Follower {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fol
}

// ShipCommit implements shard.Replicator. Async mode retains a
// reference the queued job owns; the run loop releases it.
//
//memsnap:owns
func (s *Shipper) ShipCommit(shardID int, at time.Duration, c shard.Commit, snap func() shard.Snapshot) (time.Duration, error) {
	ss := s.shards[shardID]
	d := &Delta{Shard: shardID, Seq: c.Seq, Era: c.Era, Epoch: c.Epoch, Pages: c.Pages, pooled: c.Owned, TraceID: c.TraceID}
	// Encode once, before the delta enters the pipeline: the cached
	// encoding fixes WireSize for the delta's whole life and consumes
	// the capture-time pre-images, so the retained window holds only
	// page data plus encoded bytes.
	if res := d.encode(s.link.costs, s.cfg.FullPages); res.wire > 0 {
		s.cfg.Recorder.SpanFlow(obs.CatReplica, obs.NameEncode, obs.ShipTrack(shardID), at, res.cost, int64(res.wire), d.TraceID)
		at += res.cost
		ss.mu.Lock()
		ss.st.DiffSavedBytes += int64(res.saved)
		ss.st.Extents += int64(res.extents)
		ss.st.EncodeTime += res.cost
		ss.mu.Unlock()
	}
	ss.retain(d, s.cfg.Window)
	if s.cfg.Mode == Sync {
		sendAt := maxd(at, ss.horizon)
		ackAt, err := s.deliver(ss, sendAt, d, snap, true)
		if ackAt > ss.horizon {
			ss.horizon = ackAt
		}
		return ackAt, err
	}
	d.retain() // the queued job's reference
	s.jobs.Add(1)
	select {
	case ss.queue <- shipJob{at: at, d: d}:
	case <-s.stop:
		s.jobs.Done()
		d.release()
		ss.mu.Lock()
		ss.st.Unsent++
		ss.mu.Unlock()
	}
	return at, nil
}

// run is a shard's async sender loop: backlog first (jobs deferred
// behind a snapshot transfer), then the queue, then a final drain
// after stop. Each fetched job seeds a coalescing pass over whatever
// else is already waiting.
//
//memsnap:hotpath
func (s *Shipper) run(ss *shipShard) {
	defer s.wg.Done()
	for {
		if len(ss.backlog) > 0 {
			var j shipJob
			j, ss.backlog = ss.backlog[0], ss.backlog[1:]
			s.processBatch(ss, s.collectBatch(ss, j))
			continue
		}
		select {
		case j := <-ss.queue:
			s.processBatch(ss, s.collectBatch(ss, j))
		case <-s.stop:
			for {
				if len(ss.backlog) > 0 {
					var j shipJob
					j, ss.backlog = ss.backlog[0], ss.backlog[1:]
					s.processBatch(ss, s.collectBatch(ss, j))
					continue
				}
				select {
				case j := <-ss.queue:
					s.processBatch(ss, s.collectBatch(ss, j))
				default:
					return
				}
			}
		}
	}
}

// collectBatch greedily coalesces jobs already waiting behind first —
// backlog, then queue — into one run, bounded by MaxBatch and
// MaxBatchBytes. Only a gap-free run of consecutive sequence numbers
// from one era coalesces: that is the unit the follower can validate
// and persist as a whole. The first non-coalescible job goes back to
// the front of the backlog for the next pass.
func (s *Shipper) collectBatch(ss *shipShard, first shipJob) []shipJob {
	batch := append(ss.batch[:0], first)
	size := first.d.WireSize()
	for len(batch) < s.cfg.MaxBatch {
		var j shipJob
		if len(ss.backlog) > 0 {
			j, ss.backlog = ss.backlog[0], ss.backlog[1:]
		} else {
			select {
			case j = <-ss.queue:
			default:
				ss.batch = batch
				return batch
			}
		}
		prev := batch[len(batch)-1].d
		if j.d.Era != prev.Era || j.d.Seq != prev.Seq+1 || size+j.d.WireSize() > s.cfg.MaxBatchBytes {
			ss.backlog = append(ss.backlog, shipJob{})
			copy(ss.backlog[1:], ss.backlog)
			ss.backlog[0] = j
			ss.batch = batch
			return batch
		}
		batch = append(batch, j)
		size += j.d.WireSize()
	}
	ss.batch = batch
	return batch
}

// processBatch delivers one coalesced run (possibly of length one) and
// settles its jobs' references. The send cannot precede the newest
// member's local durability time.
func (s *Shipper) processBatch(ss *shipShard, batch []shipJob) {
	sendAt := maxd(batch[len(batch)-1].at, ss.horizon)
	var ackAt time.Duration
	if len(batch) == 1 {
		ackAt, _ = s.deliver(ss, sendAt, batch[0].d, nil, true)
	} else {
		ackAt = s.deliverBatch(ss, sendAt, batch)
	}
	if ackAt > ss.horizon {
		ss.horizon = ackAt
	}
	for i := range batch {
		batch[i].d.release()
		batch[i].d = nil
		s.jobs.Done()
	}
}

// deliverBatch transmits a consecutive delta run as one link message
// that the follower applies — and persists — as a unit. Any outcome
// other than a clean ack (or whole-batch duplicate) falls back to the
// per-delta deliver path, which owns retries and catch-up.
func (s *Shipper) deliverBatch(ss *shipShard, at time.Duration, batch []shipJob) time.Duration {
	fol := s.follower()
	if fol == nil {
		ss.mu.Lock()
		ss.st.Unsent += int64(len(batch))
		ss.mu.Unlock()
		return at
	}
	deltas := ss.deltas[:0]
	size := 0
	for i := range batch {
		deltas = append(deltas, batch[i].d)
		size += batch[i].d.WireSize()
	}
	ss.deltas = deltas
	sendAt := at
	last := at
	for try := 0; try <= s.cfg.MaxRetries; try++ {
		ss.mu.Lock()
		ss.st.Shipped++
		ss.st.WireBytes += int64(size)
		if try > 0 {
			ss.st.Retries++
		}
		ss.mu.Unlock()
		if try > 0 {
			s.cfg.Recorder.Instant(obs.CatReplica, obs.NameRetry, obs.ShipTrack(ss.id), sendAt, int64(try))
		}
		arrive, ok := s.link.Deliver(sendAt, size)
		last = arrive
		if !ok {
			ss.mu.Lock()
			ss.st.LostDeltas++
			ss.mu.Unlock()
			sendAt = arrive + s.cfg.RetryTimeout
			continue
		}
		ackReady, status := fol.ApplyBatch(arrive, deltas)
		ackAt, ok := s.link.Deliver(ackReady, ackWireBytes)
		last = ackAt
		if !ok {
			ss.mu.Lock()
			ss.st.LostAcks++
			ss.mu.Unlock()
			sendAt = ackAt + s.cfg.RetryTimeout
			continue
		}
		switch status.Code {
		case ApplyOK, ApplyDuplicate:
			ss.mu.Lock()
			ss.st.Acked += int64(len(deltas))
			if status.Code == ApplyDuplicate {
				ss.st.Duplicates += int64(len(deltas))
			}
			if status.LastSeq > ss.st.LastAckedSeq {
				ss.st.LastAckedSeq = status.LastSeq
			}
			ss.st.Batches++
			ss.st.BatchedDeltas += int64(len(deltas))
			ss.mu.Unlock()
			ss.ackLat.Record(ackAt - at)
			ss.ackHist.Record(ackAt - at)
			var flow uint64
			for _, fd := range deltas {
				if fd.TraceID != 0 {
					flow = fd.TraceID
					break
				}
			}
			s.cfg.Recorder.SpanFlow(obs.CatReplica, obs.NameShipBatch, obs.ShipTrack(ss.id), at, ackAt-at, int64(len(deltas)), flow)
			return ackAt
		default:
			// Stale, gap, partial duplicate: re-run the members through
			// the per-delta state machine with its replay/snapshot
			// catch-up. Stale surfaces there as well.
			t := ackAt
			for _, d := range deltas {
				t2, err := s.deliver(ss, t, d, nil, true)
				t = t2
				if err != nil {
					break
				}
			}
			return t
		}
	}
	ss.mu.Lock()
	ss.st.Exhausted++
	ss.mu.Unlock()
	return last
}

// deliver runs the send/ack state machine for one delta: transmit,
// apply at the follower, ack back, with timeout retransmission on
// either loss (a retransmission after a lost ack is exactly the
// duplicate delivery the follower acks idempotently). A gap report
// triggers catch-up when allowCatchup is set; snapFn, when non-nil,
// provides the snapshot from the calling goroutine (the sync path,
// where the caller is the shard worker itself).
func (s *Shipper) deliver(ss *shipShard, at time.Duration, d *Delta, snapFn func() shard.Snapshot, allowCatchup bool) (time.Duration, error) {
	fol := s.follower()
	if fol == nil {
		ss.mu.Lock()
		ss.st.Unsent++
		ss.mu.Unlock()
		return at, ErrNotAttached
	}
	size := d.WireSize()
	sendAt := at
	last := at
	for try := 0; try <= s.cfg.MaxRetries; try++ {
		ss.mu.Lock()
		ss.st.Shipped++
		ss.st.WireBytes += int64(size)
		if try > 0 {
			ss.st.Retries++
		}
		ss.mu.Unlock()
		if try > 0 {
			s.cfg.Recorder.Instant(obs.CatReplica, obs.NameRetry, obs.ShipTrack(ss.id), sendAt, int64(try))
		}
		arrive, ok := s.link.Deliver(sendAt, size)
		last = arrive
		if !ok {
			ss.mu.Lock()
			ss.st.LostDeltas++
			ss.mu.Unlock()
			sendAt = arrive + s.cfg.RetryTimeout
			continue
		}
		ackReady, status := fol.Apply(arrive, d)
		ackAt, ok := s.link.Deliver(ackReady, ackWireBytes)
		last = ackAt
		if !ok {
			ss.mu.Lock()
			ss.st.LostAcks++
			ss.mu.Unlock()
			sendAt = ackAt + s.cfg.RetryTimeout
			continue
		}
		switch status.Code {
		case ApplyOK, ApplyDuplicate:
			ss.mu.Lock()
			ss.st.Acked++
			if status.Code == ApplyDuplicate {
				ss.st.Duplicates++
			}
			if d.Seq > ss.st.LastAckedSeq {
				ss.st.LastAckedSeq = d.Seq
			}
			ss.mu.Unlock()
			ss.ackLat.Record(ackAt - at)
			ss.ackHist.Record(ackAt - at)
			s.cfg.Recorder.SpanFlow(obs.CatReplica, obs.NameShip, obs.ShipTrack(ss.id), at, ackAt-at, int64(d.Seq), d.TraceID)
			return ackAt, nil
		case ApplyStale:
			ss.mu.Lock()
			ss.st.Stale++
			ss.mu.Unlock()
			return ackAt, ErrStale
		case ApplyGap:
			ss.mu.Lock()
			ss.st.Gaps++
			ss.mu.Unlock()
			if !allowCatchup {
				return ackAt, ErrLinkDown
			}
			return s.catchUp(ss, ackAt, status.LastSeq, d, snapFn)
		}
	}
	ss.mu.Lock()
	ss.st.Exhausted++
	ss.mu.Unlock()
	return last, ErrLinkDown
}

// catchUp closes a follower gap ending at d: replay the missing
// deltas from the retained window when it covers them, otherwise
// transfer a full-region snapshot.
//
//memsnap:coldpath
func (s *Shipper) catchUp(ss *shipShard, at time.Duration, folLast uint64, d *Delta, snapFn func() shard.Snapshot) (time.Duration, error) {
	if replay, ok := ss.retainedRange(folLast+1, d.Seq); ok {
		t := at
		good := true
		for _, rd := range replay {
			if good {
				var err error
				if t, err = s.deliver(ss, t, rd, nil, false); err != nil {
					good = false
					at = t
				}
			}
			rd.release()
		}
		if good {
			return t, nil
		}
	}
	snap, err := s.obtainSnapshot(ss, snapFn)
	if err != nil {
		return at, err
	}
	return s.sendSnapshot(ss, at, snap)
}

// obtainSnapshot produces the catch-up snapshot: from snapFn on the
// calling worker goroutine (sync mode), or through the attached
// service's worker queue. In the latter case the sender keeps
// draining its own queue into the backlog meanwhile, so the shard
// worker — possibly blocked on a full window — can always make
// progress to serve the snapshot request: no deadlock.
//
//memsnap:coldpath
func (s *Shipper) obtainSnapshot(ss *shipShard, snapFn func() shard.Snapshot) (*shard.Snapshot, error) {
	if snapFn != nil {
		snap := snapFn()
		return &snap, nil
	}
	s.mu.Lock()
	svc := s.svc
	s.mu.Unlock()
	if svc == nil {
		return nil, ErrNotAttached
	}
	type res struct {
		snap *shard.Snapshot
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		sn, err := svc.ShardSnapshot(ss.id)
		ch <- res{sn, err}
	}()
	for {
		select {
		case r := <-ch:
			return r.snap, r.err
		case j := <-ss.queue:
			ss.backlog = append(ss.backlog, j)
		}
	}
}

// sendSnapshot transfers a full-region snapshot with the same
// loss/retry machinery as deltas.
//
//memsnap:coldpath
func (s *Shipper) sendSnapshot(ss *shipShard, at time.Duration, snap *shard.Snapshot) (time.Duration, error) {
	fol := s.follower()
	if fol == nil {
		return at, ErrNotAttached
	}
	size := pagesWireSize(len(snap.Pages))
	sendAt := at
	last := at
	for try := 0; try <= s.cfg.MaxRetries; try++ {
		ss.mu.Lock()
		ss.st.WireBytes += int64(size)
		if try > 0 {
			ss.st.Retries++
		}
		ss.mu.Unlock()
		if try > 0 {
			s.cfg.Recorder.Instant(obs.CatReplica, obs.NameRetry, obs.ShipTrack(ss.id), sendAt, int64(try))
		}
		arrive, ok := s.link.Deliver(sendAt, size)
		last = arrive
		if !ok {
			ss.mu.Lock()
			ss.st.LostDeltas++
			ss.mu.Unlock()
			sendAt = arrive + s.cfg.RetryTimeout
			continue
		}
		ackReady, err := fol.ApplySnapshot(arrive, snap)
		if err != nil {
			return ackReady, err
		}
		ackAt, ok := s.link.Deliver(ackReady, ackWireBytes)
		last = ackAt
		if !ok {
			ss.mu.Lock()
			ss.st.LostAcks++
			ss.mu.Unlock()
			sendAt = ackAt + s.cfg.RetryTimeout
			continue
		}
		ss.mu.Lock()
		ss.st.Snapshots++
		if snap.Seq > ss.st.LastAckedSeq {
			ss.st.LastAckedSeq = snap.Seq
		}
		ss.mu.Unlock()
		s.cfg.Recorder.Span(obs.CatReplica, obs.NameSnapshot, obs.ShipTrack(ss.id), at, ackAt-at, int64(len(snap.Pages)))
		return ackAt, nil
	}
	ss.mu.Lock()
	ss.st.Exhausted++
	ss.mu.Unlock()
	return last, ErrLinkDown
}

// Reconcile brings the connected follower to the attached service's
// current position, shard by shard, starting at virtual time at:
// shards already in sync are skipped, same-era laggards within the
// retained window are caught up by delta replay, and everything else
// — in particular a rejoined ex-primary whose era diverged — receives
// a full-region snapshot that discards its stray epochs. Call it
// after Connect when a demoted primary rejoins.
func (s *Shipper) Reconcile(at time.Duration) error {
	s.mu.Lock()
	svc, fol := s.svc, s.fol
	s.mu.Unlock()
	if svc == nil || fol == nil {
		return ErrNotAttached
	}
	for _, ss := range s.shards {
		meta, err := svc.ShardMeta(ss.id)
		if err != nil {
			return err
		}
		fseq, fera := fol.LastApplied(ss.id)
		if fera == meta.Era && fseq == meta.Seq {
			continue
		}
		if fera == meta.Era && fseq < meta.Seq {
			if replay, ok := ss.retainedRange(fseq+1, meta.Seq); ok {
				t := at
				good := true
				for _, rd := range replay {
					if good {
						if t, err = s.deliver(ss, t, rd, nil, false); err != nil {
							good = false
						}
					}
					rd.release()
				}
				if good {
					continue
				}
			}
		}
		snap, err := svc.ShardSnapshot(ss.id)
		if err != nil {
			return err
		}
		if _, err := s.sendSnapshot(ss, at, snap); err != nil {
			return err
		}
	}
	return nil
}

// Flush blocks until every enqueued async delta has been processed.
func (s *Shipper) Flush() { s.jobs.Wait() }

// Stats snapshots every shard's pipeline counters.
func (s *Shipper) Stats() []ShardRepStats {
	out := make([]ShardRepStats, len(s.shards))
	for i, ss := range s.shards {
		ss.mu.Lock()
		st := ss.st
		ss.mu.Unlock()
		st.Shard = i
		st.AckLatency = ss.ackLat.Summarize()
		st.AckHist = ss.ackHist.Snapshot()
		out[i] = st
	}
	return out
}

// Close waits out in-flight async deltas and stops the senders.
// Idempotent. Close the shard service first: its shutdown drain still
// ships through this shipper.
func (s *Shipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.jobs.Wait()
	close(s.stop)
	s.wg.Wait()
	// Drop the replay windows: the last references to fully shipped
	// deltas, returning their captured pages to the pool.
	for _, ss := range s.shards {
		ss.mu.Lock()
		retained := ss.retained
		ss.retained = nil
		ss.mu.Unlock()
		for _, d := range retained {
			d.release()
		}
	}
	return nil
}
