package replica_test

import (
	"testing"
	"time"

	"memsnap/internal/replica"
)

// TestLinkOutageWindow pins the pre-installed bounded-outage
// semantics: messages overlapping the window are lost, messages
// entirely before or after it survive, and overlapping windows
// compose.
func TestLinkOutageWindow(t *testing.T) {
	link := replica.NewLink(replica.LinkConfig{})
	link.OutageWindow(10*time.Millisecond, 12*time.Millisecond)

	if _, ok := link.Deliver(0, 64); !ok {
		t.Fatalf("message before the window was lost")
	}
	if _, ok := link.Deliver(10*time.Millisecond+time.Microsecond, 64); ok {
		t.Fatalf("message inside the window survived")
	}
	if _, ok := link.Deliver(13*time.Millisecond, 64); !ok {
		t.Fatalf("message after the window was lost")
	}

	// A second overlapping window extends the blackout.
	link.OutageWindow(11*time.Millisecond, 15*time.Millisecond)
	if _, ok := link.Deliver(14*time.Millisecond, 64); ok {
		t.Fatalf("message inside the second window survived")
	}
	if _, ok := link.Deliver(16*time.Millisecond, 64); !ok {
		t.Fatalf("message after both windows was lost")
	}
}
