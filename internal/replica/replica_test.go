package replica_test

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/replica"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
)

const regionBytes = 1 << 18

func sysOpts(shards int) core.Options {
	return core.Options{CPUs: shards, DiskBytesEach: 512 << 20}
}

func newSys(t *testing.T, shards int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(sysOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func checkConverged(t *testing.T, svc *shard.Service, fol *replica.Follower) {
	t.Helper()
	pd, err := svc.ShardDigests()
	if err != nil {
		t.Fatal(err)
	}
	fd := fol.Digests()
	for i := range pd {
		if pd[i] != fd[i] {
			t.Errorf("shard %d: primary digest %#x != follower digest %#x", i, pd[i], fd[i])
		}
	}
	ps, err := svc.ShardSums()
	if err != nil {
		t.Fatal(err)
	}
	fs := fol.Sums()
	for i := range ps {
		if ps[i] != fs[i] {
			t.Errorf("shard %d: primary sum %d != follower sum %d", i, ps[i], fs[i])
		}
	}
}

// TestSyncReplicationBasic: in synchronous mode every acknowledged
// write is durable on both replicas, and the follower region is
// byte-identical to the primary's after each ack.
func TestSyncReplicationBasic(t *testing.T) {
	const shards = 4
	sysA, sysB := newSys(t, shards), newSys(t, shards)
	link := replica.NewLink(replica.LinkConfig{})
	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: shards, RegionBytes: regionBytes})
	if err != nil {
		t.Fatal(err)
	}
	ship := replica.NewShipper(link, fol, shards, replica.Config{Mode: replica.Sync})
	svc, err := shard.New(sysA, shard.Config{Shards: shards, RegionBytes: regionBytes, Replicator: ship})
	if err != nil {
		t.Fatal(err)
	}
	ship.Attach(svc)
	defer ship.Close()
	defer svc.Close()

	var total uint64
	for i := 0; i < 40; i++ {
		v := uint64(i + 1)
		if err := svc.Put("t", fmt.Sprintf("k%03d", i), v); err != nil {
			t.Fatal(err)
		}
		total += v
	}
	checkConverged(t, svc, fol)

	var folSum uint64
	for _, s := range fol.Sums() {
		folSum += s
	}
	if folSum != total {
		t.Errorf("follower total sum = %d, want %d", folSum, total)
	}
	var applied int64
	for _, st := range fol.Stats() {
		applied += st.Applied
		if st.Duplicates != 0 || st.Gaps != 0 || st.Snapshots != 0 || st.Stale != 0 {
			t.Errorf("shard %d: unexpected follower counters %+v on a clean link", st.Shard, st)
		}
	}
	if applied == 0 {
		t.Fatal("follower applied nothing")
	}
	ls := link.Stats()
	if ls.Sent == 0 || ls.Lost != 0 {
		t.Errorf("link stats = %+v; want sends and no losses", ls)
	}
}

// TestDuplicateDeliveryIdempotent: redelivering an already-applied
// delta (the retransmission after a lost ack) is re-acked as a
// duplicate and leaves the follower region untouched.
func TestDuplicateDeliveryIdempotent(t *testing.T) {
	sysB := newSys(t, 1)
	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: 1, RegionBytes: regionBytes})
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, core.PageSize)
	for i := range page {
		page[i] = byte(i)
	}
	d := &replica.Delta{Shard: 0, Seq: 1, Pages: []core.CommittedPage{{Index: 2, Data: page}}}

	at, st := fol.Apply(time.Millisecond, d)
	if st.Code != replica.ApplyOK || st.LastSeq != 1 {
		t.Fatalf("first Apply = %+v; want OK at seq 1", st)
	}
	digest := fol.Digests()[0]

	_, st = fol.Apply(at+time.Millisecond, d)
	if st.Code != replica.ApplyDuplicate || st.LastSeq != 1 {
		t.Fatalf("second Apply = %+v; want Duplicate at seq 1", st)
	}
	if got := fol.Digests()[0]; got != digest {
		t.Fatalf("duplicate delivery changed the region: %#x -> %#x", digest, got)
	}
	if fs := fol.Stats()[0]; fs.Applied != 1 || fs.Duplicates != 1 {
		t.Fatalf("follower counters = %+v; want 1 applied, 1 duplicate", fs)
	}

	// A delta from the past the follower never saw is also a
	// duplicate (idempotent), and one from the future is a gap.
	_, st = fol.Apply(time.Second, &replica.Delta{Shard: 0, Seq: 5, Pages: []core.CommittedPage{{Index: 1, Data: page}}})
	if st.Code != replica.ApplyGap || st.LastSeq != 1 {
		t.Fatalf("future Apply = %+v; want Gap at seq 1", st)
	}
}

// TestLossyLinkConverges: under heavy random loss the retry machinery
// (duplicate deliveries included) still converges the follower to the
// primary, commit for commit.
func TestLossyLinkConverges(t *testing.T) {
	const shards = 2
	sysA, sysB := newSys(t, shards), newSys(t, shards)
	link := replica.NewLink(replica.LinkConfig{LossProb: 0.25, Seed: 9})
	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: shards, RegionBytes: regionBytes})
	if err != nil {
		t.Fatal(err)
	}
	ship := replica.NewShipper(link, fol, shards, replica.Config{Mode: replica.Sync, MaxRetries: 16})
	svc, err := shard.New(sysA, shard.Config{Shards: shards, RegionBytes: regionBytes, Replicator: ship})
	if err != nil {
		t.Fatal(err)
	}
	ship.Attach(svc)
	defer ship.Close()
	defer svc.Close()

	for i := 0; i < 60; i++ {
		if err := svc.Put("t", fmt.Sprintf("k%03d", i), uint64(i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	checkConverged(t, svc, fol)

	var lost, retries, shipDups int64
	for _, st := range ship.Stats() {
		lost += st.LostDeltas + st.LostAcks
		retries += st.Retries
		shipDups += st.Duplicates
	}
	if lost == 0 || retries == 0 {
		t.Errorf("lossy link recorded no losses/retries (lost=%d retries=%d)", lost, retries)
	}
	var folDups, lostAcks int64
	for _, st := range fol.Stats() {
		folDups += st.Duplicates
	}
	for _, st := range ship.Stats() {
		lostAcks += st.LostAcks
	}
	// The follower sees every duplicate delivery; the shipper only
	// counts the ones whose duplicate-ack made it back.
	if folDups < shipDups {
		t.Errorf("duplicate accounting inverted: follower %d < shipper %d", folDups, shipDups)
	}
	if lostAcks > 0 && folDups == 0 {
		t.Errorf("%d acks lost but the follower never saw a duplicate delivery", lostAcks)
	}
	if ls := link.Stats(); ls.Lost == 0 {
		t.Errorf("link stats recorded no losses: %+v", ls)
	}
}

// TestGapSnapshotCatchUp: a follower connected after more commits
// than the retained window forces a full-region snapshot transfer
// through the async pipeline's catch-up path, after which normal
// delta shipping resumes.
func TestGapSnapshotCatchUp(t *testing.T) {
	sysA, sysB := newSys(t, 1), newSys(t, 1)
	link := replica.NewLink(replica.LinkConfig{})
	ship := replica.NewShipper(link, nil, 1, replica.Config{Window: 8})
	svc, err := shard.New(sysA, shard.Config{Shards: 1, RegionBytes: regionBytes, Replicator: ship})
	if err != nil {
		t.Fatal(err)
	}
	ship.Attach(svc)
	defer ship.Close()
	defer svc.Close()

	// 25 commits with no follower: all unsent, only the last 8 retained.
	for i := 0; i < 25; i++ {
		if err := svc.Put("t", fmt.Sprintf("k%03d", i), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	ship.Flush()

	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: 1, RegionBytes: regionBytes})
	if err != nil {
		t.Fatal(err)
	}
	ship.Connect(fol)

	// The next delta arrives with a 25-commit gap the window cannot
	// replay: the shipper must fall back to a snapshot.
	if err := svc.Put("t", "post-connect", 7); err != nil {
		t.Fatal(err)
	}
	ship.Flush()
	fs := fol.Stats()[0]
	if fs.Snapshots != 1 {
		t.Fatalf("follower snapshots = %d, want 1 (gap exceeded window)", fs.Snapshots)
	}
	if fs.Gaps == 0 {
		t.Error("gap was never reported before the snapshot")
	}

	// Normal pipeline resumes after catch-up.
	for i := 0; i < 5; i++ {
		if err := svc.Put("t", fmt.Sprintf("post%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	ship.Flush()
	fs = fol.Stats()[0]
	if fs.Snapshots != 1 {
		t.Fatalf("extra snapshots after catch-up: %d", fs.Snapshots)
	}
	if fs.Applied == 0 {
		t.Error("no deltas applied after catch-up")
	}
	checkConverged(t, svc, fol)
}

// TestGapReplayCatchUp: a gap still covered by the retained window is
// closed by replaying deltas, with no snapshot transfer.
func TestGapReplayCatchUp(t *testing.T) {
	sysA, sysB := newSys(t, 1), newSys(t, 1)
	link := replica.NewLink(replica.LinkConfig{})
	ship := replica.NewShipper(link, nil, 1, replica.Config{Window: 8})
	svc, err := shard.New(sysA, shard.Config{Shards: 1, RegionBytes: regionBytes, Replicator: ship})
	if err != nil {
		t.Fatal(err)
	}
	ship.Attach(svc)
	defer ship.Close()
	defer svc.Close()

	// Only 5 commits (< window) before the follower connects.
	for i := 0; i < 5; i++ {
		if err := svc.Put("t", fmt.Sprintf("k%03d", i), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	ship.Flush()

	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: 1, RegionBytes: regionBytes})
	if err != nil {
		t.Fatal(err)
	}
	ship.Connect(fol)
	if err := svc.Put("t", "post-connect", 7); err != nil {
		t.Fatal(err)
	}
	ship.Flush()

	fs := fol.Stats()[0]
	if fs.Snapshots != 0 {
		t.Fatalf("follower snapshots = %d, want 0 (window covers the gap)", fs.Snapshots)
	}
	if fs.Applied != 6 {
		t.Fatalf("follower applied %d deltas, want 6 (5 replayed + 1 live)", fs.Applied)
	}
	if seq, _ := fol.LastApplied(0); seq != 6 {
		t.Fatalf("follower at seq %d, want 6", seq)
	}
	checkConverged(t, svc, fol)
}

// failoverSeeds returns the deterministic seed matrix, overridable
// with MEMSNAP_FAILOVER_SEED for CI sweeps.
func failoverSeeds(t *testing.T) []uint64 {
	if s := os.Getenv("MEMSNAP_FAILOVER_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad MEMSNAP_FAILOVER_SEED %q: %v", s, err)
		}
		return []uint64{v}
	}
	return []uint64{1, 7, 42}
}

// TestFailover is the acceptance scenario: a link cut lands mid-delta
// during synchronous commits, the primary then loses power mid-IO,
// the follower promotes through the manifest recovery path at its
// last fully applied epoch, and the recovered ex-primary rejoins as a
// follower and reconciles (era mismatch -> snapshot) until both
// regions are byte-identical. Every client op gets a durable-on-both
// ack or a clean ErrLinkDown — never a silent lost ack.
func TestFailover(t *testing.T) {
	for _, seed := range failoverSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFailover(t, seed)
		})
	}
}

// TestFailoverDeterministic: the whole failover scenario is a pure
// function of the seed.
func TestFailoverDeterministic(t *testing.T) {
	d1 := runFailover(t, 7)
	d2 := runFailover(t, 7)
	if len(d1) != len(d2) {
		t.Fatalf("digest counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("shard %d digest differs across identical runs: %#x vs %#x", i, d1[i], d2[i])
		}
	}
}

func runFailover(t *testing.T, seed uint64) []uint64 {
	t.Helper()
	const shards = 4
	sysA, sysB := newSys(t, shards), newSys(t, shards)
	link := replica.NewLink(replica.LinkConfig{Seed: seed})
	folB, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: shards, RegionBytes: regionBytes})
	if err != nil {
		t.Fatal(err)
	}
	shipA := replica.NewShipper(link, folB, shards, replica.Config{Mode: replica.Sync})
	svcA, err := shard.New(sysA, shard.Config{
		Shards: shards, RegionBytes: regionBytes, BatchSize: 4, Replicator: shipA,
	})
	if err != nil {
		t.Fatal(err)
	}
	shipA.Attach(svcA)

	// Seed data, fully replicated: 40 keys of 100, plus one
	// co-sharded bank pair per shard for sum-neutral transfers.
	var seeded uint64
	for i := 0; i < 40; i++ {
		if err := svcA.Put("t", fmt.Sprintf("seed%03d", i), 100); err != nil {
			t.Fatal(err)
		}
		seeded += 100
	}
	pairs := make([][2]string, shards)
	for sh := 0; sh < shards; sh++ {
		var a, b string
		for i := 0; i < 2000 && b == ""; i++ {
			k := fmt.Sprintf("bank%04d", i)
			if svcA.ShardOf("t", k) != sh {
				continue
			}
			if a == "" {
				a = k
			} else {
				b = k
			}
		}
		if b == "" {
			t.Fatalf("no co-sharded pair found for shard %d", sh)
		}
		pairs[sh] = [2]string{a, b}
		if err := svcA.Put("t", a, 1000); err != nil {
			t.Fatal(err)
		}
		seeded += 1000
	}

	// Cut the link a little into the future, then keep committing:
	// some tail ops replicate cleanly before the cut, the rest see a
	// clean ErrLinkDown after their local commit.
	var tSafe time.Duration
	for _, st := range svcA.Stats() {
		if st.LastCommitDurable > tSafe {
			tSafe = st.LastCommitDurable
		}
	}
	linkCutAt := tSafe + time.Millisecond
	link.Cut(linkCutAt)

	type tailOp struct {
		key string
		val uint64
		err error
	}
	var tails []tailOp
	var ok, failed int
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("tail%02d", i)
		v := uint64(1000 + i)
		err := svcA.Put("t", k, v)
		if err == nil {
			ok++
		} else if errors.Is(err, replica.ErrLinkDown) {
			failed++
		} else {
			t.Fatalf("tail put %d: unclean error %v", i, err)
		}
		tails = append(tails, tailOp{k, v, err})
		// Sum-neutral transfer riding along on each shard in turn.
		p := pairs[i%shards]
		if terr := svcA.Transfer("t", p[0], p[1], 10); terr != nil && !errors.Is(terr, replica.ErrLinkDown) {
			t.Fatalf("tail transfer %d: unclean error %v", i, terr)
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("tail should straddle the link cut: %d acked, %d failed", ok, failed)
	}

	// Unacknowledged in-flight transfers, then primary shutdown and a
	// power cut inside the final commits' IO window.
	var inflight []<-chan shard.Response
	for round := 0; round < 6; round++ {
		for sh := 0; sh < shards; sh++ {
			ch, err := svcA.DoAsync(shard.Op{
				Kind: shard.OpTransfer, Tenant: "t",
				Key: pairs[sh][0], Key2: pairs[sh][1], Value: 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			inflight = append(inflight, ch)
		}
	}
	if err := svcA.Close(); err != nil {
		t.Fatal(err)
	}
	// Never a silent lost ack: every submitted op has its response.
	for i, ch := range inflight {
		select {
		case resp := <-ch:
			if resp.Err != nil && !errors.Is(resp.Err, replica.ErrLinkDown) {
				t.Fatalf("in-flight op %d: unclean error %v", i, resp.Err)
			}
		default:
			t.Fatalf("in-flight op %d never received a response", i)
		}
	}
	var powerCutAt time.Duration
	for _, st := range svcA.Stats() {
		if st.LastCommitSubmit > powerCutAt {
			powerCutAt = st.LastCommitSubmit
		}
	}
	powerCutAt += time.Nanosecond
	sysA.Array().CutPower(powerCutAt, sim.NewRNG(seed))
	shipA.Close()

	// Failover: promote the follower through the standard manifest
	// recovery path, shipping onward (async) to a yet-unconnected
	// follower slot.
	shipB := replica.NewShipper(link, nil, shards, replica.Config{})
	svcB, err := folB.Promote(shard.Config{BatchSize: 4, Replicator: shipB})
	if err != nil {
		t.Fatal(err)
	}
	shipB.Attach(svcB)
	defer shipB.Close()
	defer svcB.Close()
	for _, rec := range svcB.Recovery() {
		if !rec.Existing || !rec.Consistent() {
			t.Fatalf("promoted shard %d inconsistent: %+v", rec.Shard, rec)
		}
		if rec.Era == 0 {
			t.Fatalf("promoted shard %d did not bump the era: %+v", rec.Shard, rec)
		}
	}
	if _, err := folB.Promote(shard.Config{}); !errors.Is(err, replica.ErrPromoted) {
		t.Fatalf("second Promote = %v; want ErrPromoted", err)
	}

	// The promoted service exposes exactly the replicated prefix:
	// every acked tail put present, failed ones present-or-absent but
	// never corrupt, transfers sum-neutral throughout.
	var present uint64
	for _, tp := range tails {
		v, found, gerr := svcB.Get("t", tp.key)
		if gerr != nil {
			t.Fatal(gerr)
		}
		if tp.err == nil {
			if !found || v != tp.val {
				t.Fatalf("acked put %q lost after failover (found=%v v=%d want %d)", tp.key, found, v, tp.val)
			}
		}
		if found {
			if v != tp.val {
				t.Fatalf("torn value for %q after failover: %d want %d", tp.key, v, tp.val)
			}
			present += v
		}
	}
	sumB, err := svcB.TotalValueSum()
	if err != nil {
		t.Fatal(err)
	}
	if sumB != seeded+present {
		t.Fatalf("promoted sum = %d, want %d (seeded) + %d (surviving tail)", sumB, seeded, present)
	}

	// New epochs on the new primary while the old one is still down.
	for i := 0; i < 10; i++ {
		if err := svcB.Put("t", fmt.Sprintf("new%02d", i), 7); err != nil {
			t.Fatal(err)
		}
	}
	shipB.Flush()

	// Reconciliation: recover the ex-primary from its torn disks,
	// rejoin it as a follower, heal the link, and let the era
	// mismatch force snapshots that discard its divergent epochs.
	sysA2, doneAt, err := core.Recover(sysOpts(shards), sysA.Array(), powerCutAt)
	if err != nil {
		t.Fatal(err)
	}
	folA, err := replica.NewFollower(sysA2, replica.FollowerConfig{
		Shards: shards, RegionBytes: regionBytes, StartAt: doneAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	divergent := false
	for i := 0; i < shards; i++ {
		if _, era := folA.LastApplied(i); era == 0 {
			divergent = true // still on the old era: must be reconciled
		}
	}
	if !divergent {
		t.Fatal("recovered ex-primary unexpectedly already on the new era")
	}

	restoreAt := doneAt + time.Millisecond
	if bEnd := svcB.EndTime(); bEnd+time.Millisecond > restoreAt {
		restoreAt = bEnd + time.Millisecond
	}
	link.Restore(restoreAt)
	shipB.Connect(folA)
	if err := shipB.Reconcile(restoreAt); err != nil {
		t.Fatal(err)
	}
	for _, fs := range folA.Stats() {
		if fs.Snapshots != 1 {
			t.Fatalf("shard %d: %d snapshots during reconciliation, want 1 (era mismatch)", fs.Shard, fs.Snapshots)
		}
	}

	// Convergence: byte-identical regions, identical sums.
	checkConverged(t, svcB, folA)
	digests, err := svcB.ShardDigests()
	if err != nil {
		t.Fatal(err)
	}
	return digests
}
