package replica

// Golden test for the replica Prometheus exposition: handcrafted
// shipper and follower counters in, byte-for-byte pinned text out, so
// any metric rename, reorder or format drift fails loudly. Rerun with
// -update-golden after an intentional change.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata")

func TestFormatPrometheusGolden(t *testing.T) {
	s := NewShipper(NewLink(LinkConfig{}), nil, 2, Config{Mode: Sync})
	s.shards[0].st = ShardRepStats{
		Shipped: 12, Acked: 10, Duplicates: 1,
		Retries: 2, LostDeltas: 1, LostAcks: 1,
		Gaps: 1, Snapshots: 1, Unsent: 2,
		Batches: 3, BatchedDeltas: 7,
		WireBytes: 123456, DiffSavedBytes: 98765, Extents: 42,
		EncodeTime:   150 * time.Microsecond,
		LastAckedSeq: 10,
	}
	s.shards[0].ackLat.Record(time.Millisecond)
	s.shards[0].ackLat.Record(2 * time.Millisecond)
	s.shards[0].ackHist.Record(time.Millisecond)
	s.shards[0].ackHist.Record(2 * time.Millisecond)

	fol := batchFollower(t, 2)
	fol.shards[0].applied = 10
	fol.shards[0].duplicates = 1
	fol.shards[0].gaps = 2
	fol.shards[0].snapshots = 1
	fol.shards[0].batches = 3
	fol.shards[0].baseMismatch = 1
	fol.shards[0].patchedBytes = 4321
	fol.shards[0].lastSeq = 10
	fol.shards[0].era = 1

	var buf bytes.Buffer
	if err := s.FormatPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fol.FormatPrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("FormatPrometheus output drifted from %s (rerun with -update-golden after an intentional change)\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}
