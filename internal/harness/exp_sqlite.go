package harness

import (
	"fmt"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/fs"
	"memsnap/internal/litedb"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

// dbbenchRun executes the §7.1 dbbench workload against a litedb
// instance and returns measurement hooks.
type dbbenchEnv struct {
	db    *litedb.DB
	clk   *sim.Clock
	fsys  *fs.FS        // WAL mode only
	ctx   *core.Context // MemSnap mode only
	sys   *core.System
	txLat *sim.LatencyRecorder
}

// newDBBenchEnv builds a database in the given mode.
func newDBBenchEnv(memsnapMode bool, buckets *sim.TimeBuckets) (*dbbenchEnv, error) {
	costs := sim.DefaultCosts()
	env := &dbbenchEnv{txLat: sim.NewLatencyRecorder()}
	if memsnapMode {
		sys, err := core.NewSystem(core.Options{DiskBytesEach: 1 << 30})
		if err != nil {
			return nil, err
		}
		proc := sys.NewProcess()
		ctx := proc.NewContext(0)
		if buckets != nil {
			ctx.Thread().Buckets = buckets
		}
		db, err := litedb.OpenMemSnap(proc, ctx, "dbbench", 512<<20)
		if err != nil {
			return nil, err
		}
		env.db, env.ctx, env.sys, env.clk = db, ctx, sys, ctx.Clock()
	} else {
		fsys := fs.New(costs, disk.NewArray(costs, 2, 4<<30), fs.FFS)
		fsys.Buckets = buckets
		clk := sim.NewClock()
		env.db, env.fsys, env.clk = litedb.CreateWAL(fsys, clk, "dbbench"), fsys, clk
	}
	tx := env.db.Begin()
	if err := tx.CreateTable("kv"); err != nil {
		tx.Rollback()
		return nil, err
	}
	tx.Commit()
	return env, nil
}

// runDBBench pushes totalWrites key-value writes through in
// txBytes-sized transactions.
func (env *dbbenchEnv) run(seed uint64, keys int64, txBytes, totalWrites int, random bool) error {
	gen := workload.NewDBBench(seed, keys, 128, txBytes, random)
	written := 0
	for written < totalWrites {
		start := env.clk.Now()
		tx := env.db.Begin()
		for _, kv := range gen.NextTx() {
			if err := tx.Put("kv", kv.Key, kv.Value); err != nil {
				tx.Rollback()
				return err
			}
			written++
		}
		tx.Commit()
		env.txLat.Record(env.clk.Now() - start)
	}
	return nil
}

// Table7 reproduces the persistence-syscall accounting of dbbench:
// msnap_persist vs fsync/write/read counts and latencies.
func Table7(opts Options) (*Result, error) {
	opts = opts.fill()
	totalWrites := opts.scaled(40000) // paper: 2M KV writes
	res := &Result{
		ID:     "table7",
		Title:  "Persistence-related system calls during dbbench",
		Header: []string{"Tx size", "Pattern", "memsnap lat", "memsnap ops", "fsync lat", "fsync ops", "write lat", "write ops", "read lat", "read ops"},
		Notes: []string{
			fmt.Sprintf("scaled: %d total 128 B writes per cell (paper: 2M); latencies in us", totalWrites),
			"memsnap makes only msnap_persist calls; the baseline adds WAL write/read traffic and checkpoint fsyncs",
		},
	}
	for _, random := range []bool{true, false} {
		pattern := "rand"
		if !random {
			pattern = "seq"
		}
		for _, txBytes := range []int{4 << 10, 64 << 10, 1 << 20} {
			// MemSnap run.
			envM, err := newDBBenchEnv(true, nil)
			if err != nil {
				return nil, err
			}
			if err := envM.run(opts.Seed, 1<<20, txBytes, totalWrites, random); err != nil {
				return nil, err
			}
			persistLat := envM.ctx.PersistLatency.Mean()
			persistOps := envM.ctx.Persists

			// Baseline run.
			envB, err := newDBBenchEnv(false, nil)
			if err != nil {
				return nil, err
			}
			if err := envB.run(opts.Seed, 1<<20, txBytes, totalWrites, random); err != nil {
				return nil, err
			}
			fsys := envB.fsys
			res.Rows = append(res.Rows, []string{
				fmtSize(txBytes), pattern,
				us(persistLat), countK(persistOps),
				us(fsys.FsyncStats.Latency.Mean()), countK(fsys.FsyncStats.Count()),
				us(fsys.WriteStats.Latency.Mean()), countK(fsys.WriteStats.Count()),
				us(fsys.ReadStats.Latency.Mean()), countK(fsys.ReadStats.Count()),
			})
		}
	}
	return res, nil
}

// Table8 reproduces the CPU usage and wall-clock comparison.
func Table8(opts Options) (*Result, error) {
	opts = opts.fill()
	totalWrites := opts.scaled(40000)
	res := &Result{
		ID:     "table8",
		Title:  "CPU usage and total dbbench execution time",
		Header: []string{"Pattern", "Config", "userspace", "persistence", "page faults", "wall (virtual)"},
		Notes: []string{
			fmt.Sprintf("scaled: %d writes, 64 KiB transactions", totalWrites),
			"persistence = fsync+write+read kernel time (baseline) or msnap_persist time (memsnap)",
		},
	}
	for _, random := range []bool{true, false} {
		pattern := "rand"
		if !random {
			pattern = "seq"
		}
		// Baseline.
		buckets := sim.NewTimeBuckets()
		envB, err := newDBBenchEnv(false, buckets)
		if err != nil {
			return nil, err
		}
		if err := envB.run(opts.Seed, 1<<20, 64<<10, totalWrites, random); err != nil {
			return nil, err
		}
		wallB := envB.clk.Now()
		kernelB := buckets.Total() + bucketIO(buckets)
		userB := wallB - kernelB
		if userB < 0 {
			userB = 0
		}
		res.Rows = append(res.Rows, []string{
			pattern, "baseline",
			pct(float64(userB) / float64(wallB)),
			pct(float64(kernelB) / float64(wallB)),
			"0.0%",
			fmt.Sprintf("%.2fms", wallB.Seconds()*1000),
		})

		// MemSnap.
		bucketsM := sim.NewTimeBuckets()
		envM, err := newDBBenchEnv(true, bucketsM)
		if err != nil {
			return nil, err
		}
		if err := envM.run(opts.Seed, 1<<20, 64<<10, totalWrites, random); err != nil {
			return nil, err
		}
		wallM := envM.clk.Now()
		persistM := envM.ctx.PersistLatency.Total()
		faultM := bucketsM.Get("page faults")
		userM := wallM - persistM - faultM
		if userM < 0 {
			userM = 0
		}
		res.Rows = append(res.Rows, []string{
			pattern, "memsnap",
			pct(float64(userM) / float64(wallM)),
			pct(float64(persistM) / float64(wallM)),
			pct(float64(faultM) / float64(wallM)),
			fmt.Sprintf("%.2fms", wallM.Seconds()*1000),
		})
	}
	return res, nil
}

// bucketIO returns the data-io bucket (already included in Total; this
// keeps the helper obvious at call sites that want kernel time only).
func bucketIO(*sim.TimeBuckets) time.Duration { return 0 }

// Figure4 reproduces average and p99 transaction latency by
// transaction size.
func Figure4(opts Options) (*Result, error) {
	opts = opts.fill()
	totalWrites := opts.scaled(20000)
	res := &Result{
		ID:     "fig4",
		Title:  "dbbench transaction latency: MemSnap vs WAL+checkpoint",
		Header: []string{"Tx size", "Pattern", "memsnap avg (us)", "memsnap p99", "baseline avg", "baseline p99"},
		Notes:  []string{fmt.Sprintf("scaled: %d writes per cell (paper: 2M)", totalWrites)},
	}
	for _, random := range []bool{true, false} {
		pattern := "rand"
		if !random {
			pattern = "seq"
		}
		for _, txBytes := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
			envM, err := newDBBenchEnv(true, nil)
			if err != nil {
				return nil, err
			}
			if err := envM.run(opts.Seed, 1<<20, txBytes, totalWrites, random); err != nil {
				return nil, err
			}
			sm := envM.txLat.Summarize()

			envB, err := newDBBenchEnv(false, nil)
			if err != nil {
				return nil, err
			}
			if err := envB.run(opts.Seed, 1<<20, txBytes, totalWrites, random); err != nil {
				return nil, err
			}
			sb := envB.txLat.Summarize()

			res.Rows = append(res.Rows, []string{
				fmtSize(txBytes), pattern,
				usK(sm.Mean), usK(sm.P99), usK(sb.Mean), usK(sb.P99),
			})
		}
	}
	return res, nil
}

// Figure5 reproduces TATP throughput versus database size.
func Figure5(opts Options) (*Result, error) {
	opts = opts.fill()
	txCount := opts.scaled(8000)
	res := &Result{
		ID:     "fig5",
		Title:  "TATP throughput vs database size",
		Header: []string{"Subscribers", "baseline tx/s", "memsnap tx/s", "memsnap speedup"},
		Notes: []string{
			fmt.Sprintf("scaled: %d transactions per point, 60 s in the paper; sizes scaled from 1K-1M", txCount),
			"throughput in transactions per simulated second",
		},
	}
	sizes := []int64{1000, 10000, int64(opts.scaled(100000))}
	for _, subs := range sizes {
		run := func(memsnapMode bool) (float64, error) {
			env, err := newDBBenchEnv(memsnapMode, nil)
			if err != nil {
				return 0, err
			}
			d, err := newTATPDriver(env.db, subs)
			if err != nil {
				return 0, err
			}
			gen := workload.NewTATP(opts.Seed, subs)
			start := env.clk.Now()
			for i := 0; i < txCount; i++ {
				if _, err := d.run(gen.Next()); err != nil {
					return 0, err
				}
			}
			elapsed := env.clk.Now() - start
			return float64(txCount) / elapsed.Seconds(), nil
		}
		base, err := run(false)
		if err != nil {
			return nil, err
		}
		ms, err := run(true)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", subs),
			fmt.Sprintf("%.0f", base),
			fmt.Sprintf("%.0f", ms),
			fmt.Sprintf("%.2fx", ms/base),
		})
	}
	return res, nil
}
