package harness

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tiny returns options small enough for CI.
func tiny() Options { return Options{Scale: 0.08, Threads: 2, Seed: 3} }

// parseUS parses a "N.N" or "N.NK" microsecond cell.
func parseUS(t *testing.T, cell string) float64 {
	t.Helper()
	mult := 1.0
	s := strings.TrimSuffix(cell, "K")
	if s != cell {
		mult = 1000
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v * mult
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig1", "table5", "table6", "fig3",
		"table7", "table8", "fig4", "fig5", "table9", "table10", "fig6",
		"shardsvc", "replica", "chaos"}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Fatal("registry too small")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	total := parseUS(t, res.Rows[4][1])
	if total < 100 || total > 420 {
		t.Fatalf("aurora total %v us, paper 208.1", total)
	}
	shadowing := parseUS(t, res.Rows[0][1]) + parseUS(t, res.Rows[1][1]) + parseUS(t, res.Rows[3][1])
	if shadowing < 0.6*total {
		t.Fatalf("shadow overhead %.1f not dominant of %.1f", shadowing, total)
	}
}

func TestFigure1Shape(t *testing.T) {
	res, err := Figure1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		scan, walk, trace := parseUS(t, row[1]), parseUS(t, row[2]), parseUS(t, row[3])
		if !(trace < walk && walk < scan) {
			t.Fatalf("row %v: ordering violated", row)
		}
	}
	// Trace buffer cost for one page is near zero (paper: "almost
	// nothing").
	if v := parseUS(t, res.Rows[0][3]); v > 1 {
		t.Fatalf("trace reset of 4 KiB costs %.2f us", v)
	}
}

func TestTable5Shape(t *testing.T) {
	res, err := Table5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	total := parseUS(t, res.Rows[3][1])
	if total < 25 || total > 110 {
		t.Fatalf("persist total %.1f us, paper 51.4", total)
	}
	wait := parseUS(t, res.Rows[2][1])
	if wait < 0.5*total {
		t.Fatalf("IO wait %.1f should dominate total %.1f", wait, total)
	}
}

func TestTable6Shape(t *testing.T) {
	res, err := Table6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ioSizes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// 4 KiB row: memsnap sync within ~3x of disk; ffs random much
	// slower; async far below sync.
	row := res.Rows[0]
	disk := parseUS(t, row[1])
	ffsRand := parseUS(t, row[4])
	msSync := parseUS(t, row[6])
	msAsync := parseUS(t, row[7])
	if msSync > 3*disk {
		t.Fatalf("memsnap 4K sync %.1f vs disk %.1f: overhead too high", msSync, disk)
	}
	if ffsRand < 3*msSync {
		t.Fatalf("ffs random %.1f not >> memsnap %.1f", ffsRand, msSync)
	}
	if msAsync > msSync/2 {
		t.Fatalf("async %.1f not well below sync %.1f", msAsync, msSync)
	}
	// Large-size row: memsnap stays an order below random fsync.
	last := res.Rows[len(res.Rows)-1]
	if parseUS(t, last[4]) < 5*parseUS(t, last[6]) {
		t.Fatalf("4 MiB: ffs rand %s vs memsnap %s", last[4], last[6])
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := Figure3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Rows {
		ms := parseUS(t, row[1])
		region := parseUS(t, row[2])
		app := parseUS(t, row[3])
		if !(ms < region && region < app) {
			t.Fatalf("row %d (%s): memsnap %.1f, region %.1f, app %.1f", i, row[0], ms, region, app)
		}
	}
	// Small-IO advantage is large (paper: 7x vs region, up to 60x vs
	// app).
	first := res.Rows[0]
	if parseUS(t, first[2]) < 3*parseUS(t, first[1]) {
		t.Fatalf("4K: region %s not >> memsnap %s", first[2], first[1])
	}
	if parseUS(t, first[3]) < 20*parseUS(t, first[1]) {
		t.Fatalf("4K: app %s not >>> memsnap %s", first[3], first[1])
	}
}

func TestTable7Shape(t *testing.T) {
	res, err := Table7(Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		persistLat := parseUS(t, row[2])
		fsyncLat := parseUS(t, row[4])
		if persistLat >= fsyncLat {
			t.Fatalf("%s %s: persist %.1f not cheaper than fsync %.1f", row[0], row[1], persistLat, fsyncLat)
		}
		if row[7] == "0" {
			t.Fatalf("baseline made no write() calls")
		}
	}
}

func TestTable8Shape(t *testing.T) {
	res, err := Table8(Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in baseline/memsnap pairs per pattern; memsnap must
	// finish faster.
	for i := 0; i < len(res.Rows); i += 2 {
		base := res.Rows[i]
		ms := res.Rows[i+1]
		var wb, wm float64
		if _, err := parse2(base[5], &wb); err != nil {
			t.Fatal(err)
		}
		if _, err := parse2(ms[5], &wm); err != nil {
			t.Fatal(err)
		}
		if wm >= wb {
			t.Fatalf("%s: memsnap wall %.2fms not faster than baseline %.2fms", base[0], wm, wb)
		}
	}
}

func parse2(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	*out = v
	return 1, err
}

func TestFigure4Shape(t *testing.T) {
	res, err := Figure4(Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		msAvg := parseUS(t, row[2])
		baseAvg := parseUS(t, row[4])
		if msAvg >= baseAvg {
			t.Fatalf("%s %s: memsnap avg %.0f not below baseline %.0f", row[0], row[1], msAvg, baseAvg)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	res, err := Figure5(Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// MemSnap wins at every size and the gap grows with DB size.
	var firstSpeedup, lastSpeedup float64
	for i, row := range res.Rows {
		sp, _ := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if sp <= 1 {
			t.Fatalf("size %s: memsnap speedup %.2f <= 1", row[0], sp)
		}
		if i == 0 {
			firstSpeedup = sp
		}
		lastSpeedup = sp
	}
	if lastSpeedup <= firstSpeedup*0.8 {
		t.Fatalf("speedup did not hold with DB size: %.2f -> %.2f", firstSpeedup, lastSpeedup)
	}
}

func TestTable9Shape(t *testing.T) {
	res, err := Table9(Options{Scale: 0.05, Threads: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	kops := map[string]float64{}
	avg := map[string]float64{}
	for _, row := range res.Rows {
		k, _ := strconv.ParseFloat(row[1], 64)
		kops[row[0]] = k
		avg[row[0]] = parseUS(t, row[2])
	}
	if kops["memsnap"] <= kops["aurora"] {
		t.Fatalf("memsnap %.1f Kops not above aurora %.1f", kops["memsnap"], kops["aurora"])
	}
	if kops["memsnap"] <= kops["baseline+WAL"]*0.9 {
		t.Fatalf("memsnap %.1f Kops well below baseline %.1f", kops["memsnap"], kops["baseline+WAL"])
	}
	if avg["aurora"] <= avg["memsnap"] {
		t.Fatal("aurora latency not above memsnap")
	}
}

func TestTable10Shape(t *testing.T) {
	res, err := Table10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	ms := parseUS(t, res.Rows[4][1])
	aurora := parseUS(t, res.Rows[4][2])
	if aurora < 2*ms {
		t.Fatalf("aurora %.1f not well above memsnap %.1f", aurora, ms)
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(Options{Scale: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var txMem, total float64
	for _, row := range res.Rows {
		v := parsePct(t, row[1])
		total += v
		if row[0] == "Userspace: Tx Memory" {
			txMem = v
		}
	}
	// The paper's headline: the in-memory transaction is a minority
	// of total time.
	if txMem > 40 {
		t.Fatalf("tx memory %.1f%% — persistence should dominate", txMem)
	}
	if total < 90 || total > 110 {
		t.Fatalf("breakdown sums to %.1f%%", total)
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := Figure6(Options{Scale: 0.2, Threads: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tps := map[string]float64{}
	kbtx := map[string]float64{}
	for _, row := range res.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		tps[row[0]] = v
		m, _ := strconv.ParseFloat(row[3], 64)
		kbtx[row[0]] = m
	}
	// Figure 6 shape: mmap variants below baseline; memsnap at or
	// above baseline tx/s with less disk write volume per tx.
	if tps["ffs-mmap-bd"] >= tps["ffs"] {
		t.Fatalf("bufdirect %.0f tps not below baseline %.0f", tps["ffs-mmap-bd"], tps["ffs"])
	}
	if tps["ffs-mmap"] >= tps["ffs"]*1.05 {
		t.Fatalf("mmap %.0f tps above baseline %.0f", tps["ffs-mmap"], tps["ffs"])
	}
	if tps["memsnap"] < 0.95*tps["ffs"] {
		t.Fatalf("memsnap %.0f tps below baseline %.0f", tps["memsnap"], tps["ffs"])
	}
	if kbtx["memsnap"] >= 0.95*kbtx["ffs"] {
		t.Fatalf("memsnap %.1f KB/tx not below baseline %.1f", kbtx["memsnap"], kbtx["ffs"])
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablation-tlb", "ablation-store", "ablation-skip", "ablation-writeamp", "ablation-trace"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		res, err := e.Run(Options{Scale: 0.1, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s: empty result", id)
		}
	}
}

func TestResultFormat(t *testing.T) {
	r := &Result{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	out := r.Format()
	for _, want := range []string{"demo", "a ", "bb", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestHelpers(t *testing.T) {
	if us(1500*time.Nanosecond) != "1.5" {
		t.Fatal(us(1500 * time.Nanosecond))
	}
	if usK(20*time.Millisecond) != "20.0K" {
		t.Fatal(usK(20 * time.Millisecond))
	}
	if countK(63100) != "63.1 K" {
		t.Fatal(countK(63100))
	}
	if fmtSize(4096) != "4 KiB" || fmtSize(1<<20) != "1 MiB" {
		t.Fatal("fmtSize")
	}
}

func TestShardSvcShape(t *testing.T) {
	res, err := ShardSvc(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("shardsvc grid has %d rows, want 9 (3 shard counts x 3 batch sizes)", len(res.Rows))
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		return v
	}
	// Rows 3-5 are the 8-shard series: batch 1, 16, 64. Group commit
	// must beat per-op commits on throughput and coalesce >1 write.
	kops1, kops64 := parse(res.Rows[3][2]), parse(res.Rows[5][2])
	if kops64 <= kops1 {
		t.Fatalf("batch=64 throughput %.1f not above batch=1 %.1f", kops64, kops1)
	}
	if occ := parse(res.Rows[4][3]); occ <= 1.0 {
		t.Fatalf("batch=16 occupancy %.1f, want > 1", occ)
	}
	if occ := parse(res.Rows[3][3]); occ != 1.0 {
		t.Fatalf("batch=1 occupancy %.1f, want exactly 1", occ)
	}
}

func TestReplicaShape(t *testing.T) {
	res, err := Replica(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("replica grid has %d rows, want 4 (2 modes x 2 windows)", len(res.Rows))
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		return v
	}
	for _, row := range res.Rows {
		// On a clean link every delta is acked exactly once, but the
		// async sender coalesces consecutive deltas into batched link
		// messages, so messages shipped can be fewer than deltas acked.
		// Sync mode never batches: there the counts match exactly.
		shipped, acked := parse(row[5]), parse(row[6])
		if shipped <= 0 || shipped > acked {
			t.Fatalf("%s/%s: shipped %v acked %v, want 0 < shipped <= acked after flush on a clean link",
				row[0], row[1], shipped, acked)
		}
		if row[0] == "sync" && shipped != acked {
			t.Fatalf("sync/%s: shipped %v acked %v, want equal (no batching in sync mode)",
				row[1], shipped, acked)
		}
		if snaps := parse(row[9]); snaps != 0 {
			t.Fatalf("%s/%s: %v snapshots on a clean link, want 0", row[0], row[1], snaps)
		}
		if row[0] == "sync" {
			if lag := parse(row[8]); lag != 0 {
				t.Fatalf("sync/%s: max lag %v, want 0 (client acks wait for follower acks)", row[1], lag)
			}
		}
	}
	// Rows 0-1 async, 2-3 sync at the same windows: shipping off the
	// critical path must not be slower than holding client acks.
	if a, s := parse(res.Rows[0][2]), parse(res.Rows[2][2]); a < s {
		t.Fatalf("async throughput %.1f below sync %.1f", a, s)
	}
}
