package harness

import (
	"fmt"

	"memsnap/internal/chaos"
)

// Chaos runs the fault-matrix scenario runner (internal/chaos) as a
// harness experiment: one row per (schedule, topology) pair, sweeping
// the cell seeds, with the per-row fault/recovery counters that show
// each schedule actually exercised its fault path.
func Chaos(opts Options) (*Result, error) {
	opts = opts.fill()
	cfg := chaos.Config{
		Seeds:    []uint64{opts.Seed, opts.Seed + 6, opts.Seed + 41},
		Workload: "ycsb-a",
		MinOps:   opts.scaled(400),
	}
	rep, err := chaos.Run(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "chaos",
		Title:  "Fault matrix: seeds x schedules x topologies under YCSB-A",
		Header: []string{"Schedule", "Topology", "Cells", "Pass", "Ops", "LinkDown", "Faults", "Recoveries"},
		Notes: []string{
			fmt.Sprintf("seeds %v, >=%d ops per cell (scale %.2f); every cell ends in a cut-power audit", cfg.Seeds, cfg.MinOps, opts.Scale),
			"a failing cell's ID is a standalone reproducer: msnap-chaos -cell '<id>'",
		},
	}
	type rowKey struct {
		sched string
		topo  chaos.Topology
	}
	agg := make(map[rowKey]*[6]int64)
	var order []rowKey
	for _, c := range rep.Cells {
		k := rowKey{c.Schedule, c.Topology}
		a := agg[k]
		if a == nil {
			a = new([6]int64)
			agg[k] = a
			order = append(order, k)
		}
		a[0]++
		if c.Pass {
			a[1]++
		}
		a[2] += c.Ops
		a[3] += c.LinkDown
		a[4] += int64(c.FaultsFired)
		a[5] += int64(c.Recoveries)
	}
	for _, k := range order {
		a := agg[k]
		res.Rows = append(res.Rows, []string{
			k.sched, string(k.topo),
			fmt.Sprintf("%d", a[0]), fmt.Sprintf("%d", a[1]),
			fmt.Sprintf("%d", a[2]), fmt.Sprintf("%d", a[3]),
			fmt.Sprintf("%d", a[4]), fmt.Sprintf("%d", a[5]),
		})
	}
	if rep.Failed > 0 {
		for _, c := range rep.FailedCells() {
			res.Notes = append(res.Notes, fmt.Sprintf("FAIL %s: %s", c.ID, c.Violations[0]))
		}
	}
	return res, nil
}
