package harness

import (
	"fmt"
	"sync"

	"memsnap/internal/core"
	"memsnap/internal/replica"
	"memsnap/internal/shard"
)

// Replica evaluates the primary/backup epoch-shipping layer
// (internal/replica): client throughput and commit latency with
// replication enabled, across a mode (async/sync) x in-flight window
// grid, plus the shipping-side counters that show how far the backup
// trails the primary.
func Replica(opts Options) (*Result, error) {
	opts = opts.fill()
	res := &Result{
		ID:     "replica",
		Title:  "Epoch shipping: throughput and lag vs mode x window",
		Header: []string{"Mode", "Window", "Kops/s", "Commit p50 (us)", "Commit p99 (us)", "Shipped", "Acked", "Ack p99 (us)", "Max lag", "Snapshots", "Wire B/txn"},
		Notes: []string{
			"4 shards, 2 async clients per shard with 8 outstanding ops each, 75% Add / 25% Get",
			fmt.Sprintf("%d ops per client (scale %.2f); clean link at default cost model", opts.scaled(200), opts.Scale),
			"sync mode holds the client ack until the follower ack, so commit latency includes the round trip",
			"max lag is the largest (primary commit seq - follower acked seq) across shards, sampled before the final flush",
			"wire B/txn is replication link bytes per write op, with sub-page delta shipping on (the default)",
		},
	}
	for _, mode := range []replica.Mode{replica.Async, replica.Sync} {
		for _, window := range []int{4, 16} {
			row, err := replicaRun(mode, window, opts)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// replicaRun serves one grid cell: a primary system replicating every
// group commit over a clean link to a follower on its own array.
func replicaRun(mode replica.Mode, window int, opts Options) ([]string, error) {
	const shards = 4
	sysA, err := core.NewSystem(core.Options{CPUs: shards, DiskBytesEach: 512 << 20})
	if err != nil {
		return nil, err
	}
	sysB, err := core.NewSystem(core.Options{CPUs: shards, DiskBytesEach: 512 << 20})
	if err != nil {
		return nil, err
	}
	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: shards})
	if err != nil {
		return nil, err
	}
	link := replica.NewLink(replica.LinkConfig{Seed: opts.Seed})
	ship := replica.NewShipper(link, fol, shards, replica.Config{Mode: mode, Window: window})
	svc, err := shard.New(sysA, shard.Config{Shards: shards, BatchSize: 8, Replicator: ship})
	if err != nil {
		return nil, err
	}
	ship.Attach(svc)

	const clientWindow = 8
	clients := 2 * shards
	opsPer := opts.scaled(200)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%02d", c%4)
			pending := make([]<-chan shard.Response, 0, clientWindow)
			drain := func(keep int) error {
				for len(pending) > keep {
					resp := <-pending[0]
					pending = pending[1:]
					if resp.Err != nil {
						return resp.Err
					}
				}
				return nil
			}
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("k-%04d", (c*7919+i*613)%256)
				op := shard.Op{Kind: shard.OpAdd, Tenant: tenant, Key: key, Value: 1}
				if i%4 == 3 {
					op = shard.Op{Kind: shard.OpGet, Tenant: tenant, Key: key}
				}
				ch, err := svc.DoAsync(op)
				if err != nil {
					errs <- err
					return
				}
				pending = append(pending, ch)
				if err := drain(clientWindow - 1); err != nil {
					errs <- err
					return
				}
			}
			if err := drain(0); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Sample replication lag before flushing the pipeline: how far the
	// follower's acked position trails each shard's commit counter.
	var maxLag uint64
	repStats := ship.Stats()
	for i := 0; i < shards; i++ {
		meta, err := svc.ShardMeta(i)
		if err != nil {
			return nil, err
		}
		if lag := meta.Seq - repStats[i].LastAckedSeq; lag > maxLag {
			maxLag = lag
		}
	}

	st := svc.TotalStats()
	if err := svc.Close(); err != nil {
		return nil, err
	}
	ship.Flush()
	repStats = ship.Stats()
	var shipped, acked, snapshots, wireBytes int64
	ackP99 := repStats[0].AckLatency.P99
	for _, rs := range repStats {
		shipped += rs.Shipped
		acked += rs.Acked
		snapshots += rs.Snapshots
		wireBytes += rs.WireBytes
		if rs.AckLatency.P99 > ackP99 {
			ackP99 = rs.AckLatency.P99
		}
	}
	if err := ship.Close(); err != nil {
		return nil, err
	}

	kops := 0.0
	if st.Elapsed > 0 {
		kops = float64(st.Ops) / st.Elapsed.Seconds() / 1000
	}
	modeName := "async"
	if mode == replica.Sync {
		modeName = "sync"
	}
	// 3 of every 4 client ops are writes; only those ship deltas.
	writeTxns := int64(clients) * int64(opsPer) * 3 / 4
	bytesPerTxn := 0.0
	if writeTxns > 0 {
		bytesPerTxn = float64(wireBytes) / float64(writeTxns)
	}
	return []string{
		modeName,
		fmt.Sprintf("%d", window),
		fmt.Sprintf("%.1f", kops),
		us(st.CommitLatency.P50),
		us(st.CommitLatency.P99),
		fmt.Sprintf("%d", shipped),
		fmt.Sprintf("%d", acked),
		us(ackP99),
		fmt.Sprintf("%d", maxLag),
		fmt.Sprintf("%d", snapshots),
		fmt.Sprintf("%.0f", bytesPerTxn),
	}, nil
}
