// Package harness reproduces the paper's evaluation: one experiment
// per table and figure, each returning a Result whose rows mirror the
// published layout. Absolute numbers are simulated microseconds on
// the calibrated machine model; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Experiments accept a Scale knob because the paper's full runs
// (e.g. 20M-key MixGraph fills, 2M-write dbbench) would take hours of
// real time in a simulator; each experiment documents its scaled
// parameters in the result notes.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the paper label, e.g. "table6" or "fig3".
	ID string
	// Title summarizes what the paper shows.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data series.
	Rows [][]string
	// Notes document scaling and interpretation.
	Notes []string
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tunes experiment scale.
type Options struct {
	// Scale multiplies workload sizes; 1.0 is the harness default
	// (itself scaled down from the paper; see each experiment's
	// notes). Tests use smaller scales.
	Scale float64
	// Threads overrides worker counts where applicable.
	Threads int
	// Seed makes runs reproducible.
	Seed uint64
}

func (o Options) fill() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// scaled returns max(1, int(base*o.Scale)).
func (o Options) scaled(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "RocksDB CPU breakdown (baseline, MixGraph)", Table1},
		{"table2", "Aurora region-checkpoint latency breakdown", Table2},
		{"fig1", "Page-protection reset strategies vs dirty-set size", Figure1},
		{"table5", "msnap_persist breakdown (64 KiB)", Table5},
		{"table6", "Persistence API latency: direct IO vs fsync vs memsnap", Table6},
		{"fig3", "MemSnap vs Aurora checkpoint latency", Figure3},
		{"table7", "SQLite persistence syscalls (dbbench)", Table7},
		{"table8", "SQLite CPU usage and wall time (dbbench)", Table8},
		{"fig4", "SQLite transaction latency vs transaction size", Figure4},
		{"fig5", "SQLite TATP throughput vs database size", Figure5},
		{"table9", "RocksDB throughput and latency (MixGraph)", Table9},
		{"table10", "MemSnap vs Aurora persistence-op breakdown", Table10},
		{"fig6", "PostgreSQL TPC-C across storage variants", Figure6},
		{"shardsvc", "Sharded KV service: throughput vs shards x group-commit batch", ShardSvc},
		{"replica", "Epoch shipping: throughput and lag vs mode x window", Replica},
		{"chaos", "Fault matrix: seeds x schedules x topologies under YCSB-A", Chaos},
		{"ablation-tlb", "Ablation: TLB shootdown threshold", AblationTLBThreshold},
		{"ablation-store", "Ablation: COW radix store vs whole-object rewrite", AblationStoreBackend},
		{"ablation-skip", "Ablation: persisting skip pointers", AblationSkipPointers},
		{"ablation-writeamp", "Ablation: page-granularity write amplification", AblationWriteAmp},
		{"ablation-trace", "Ablation: trace buffer capacity vs reset cost", AblationTraceBuffer},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// us renders a duration as microseconds with one decimal.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// usK renders microseconds, switching to "N.NK" above 10000 like the
// paper's tables.
func usK(d time.Duration) string {
	v := float64(d) / float64(time.Microsecond)
	if v >= 10000 {
		return fmt.Sprintf("%.1fK", v/1000)
	}
	return fmt.Sprintf("%.0f", v)
}

// pct renders a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// count renders large counts in K units like Table 7.
func countK(n int64) string {
	if n >= 1000 {
		return fmt.Sprintf("%.1f K", float64(n)/1000)
	}
	return fmt.Sprintf("%d", n)
}
