package harness

import (
	"encoding/binary"
	"fmt"

	"memsnap/internal/litedb"
	"memsnap/internal/workload"
)

// tatpDriver runs the TATP telecom schema on a litedb database
// (Figure 5). Tables: subscriber, access_info, special_facility,
// call_forwarding — each keyed by subscriber id (and type where
// relevant), as in the TATP specification.
type tatpDriver struct {
	db *litedb.DB
}

const (
	tblSubscriber = "subscriber"
	tblAccessInfo = "access_info"
	tblSpecialFac = "special_facility"
	tblCallFwd    = "call_forwarding"
)

func tatpKey(sub int64, sub2 int) []byte {
	k := make([]byte, 12)
	binary.BigEndian.PutUint64(k, uint64(sub))
	binary.BigEndian.PutUint32(k[8:], uint32(sub2))
	return k
}

// subscriberRow is ~100 bytes like TATP's subscriber tuple.
func subscriberRow(sub, location int64) []byte {
	row := make([]byte, 100)
	binary.LittleEndian.PutUint64(row, uint64(sub))
	binary.LittleEndian.PutUint64(row[8:], uint64(location))
	for i := 16; i < len(row); i++ {
		row[i] = byte(sub + int64(i))
	}
	return row
}

// newTATPDriver creates the schema and loads subscribers records.
func newTATPDriver(db *litedb.DB, subscribers int64) (*tatpDriver, error) {
	d := &tatpDriver{db: db}
	tx := db.Begin()
	for _, tbl := range []string{tblSubscriber, tblAccessInfo, tblSpecialFac, tblCallFwd} {
		if err := tx.CreateTable(tbl); err != nil {
			tx.Rollback()
			return nil, err
		}
	}
	tx.Commit()

	// Load in chunks so the WAL-mode loader checkpoints naturally.
	const chunk = 500
	for start := int64(0); start < subscribers; start += chunk {
		tx := db.Begin()
		end := start + chunk
		if end > subscribers {
			end = subscribers
		}
		for sub := start; sub < end; sub++ {
			if err := tx.Put(tblSubscriber, tatpKey(sub, 0), subscriberRow(sub, 0)); err != nil {
				tx.Rollback()
				return nil, err
			}
			for ai := 1; ai <= 4; ai++ {
				if err := tx.Put(tblAccessInfo, tatpKey(sub, ai), subscriberRow(sub, int64(ai))); err != nil {
					tx.Rollback()
					return nil, err
				}
			}
			if err := tx.Put(tblSpecialFac, tatpKey(sub, 1), subscriberRow(sub, 1)); err != nil {
				tx.Rollback()
				return nil, err
			}
		}
		tx.Commit()
	}
	return d, nil
}

// run executes one TATP transaction; returns whether it wrote.
func (d *tatpDriver) run(tx workload.TATPTx) (bool, error) {
	t := d.db.Begin()
	defer t.Commit()
	switch tx.Op {
	case workload.TATPGetSubscriberData:
		if _, ok, err := t.Get(tblSubscriber, tatpKey(tx.Subscriber, 0)); err != nil || !ok {
			return false, orMissing(err, "subscriber")
		}
	case workload.TATPGetNewDestination:
		t.Get(tblSpecialFac, tatpKey(tx.Subscriber, 1))
		t.Get(tblCallFwd, tatpKey(tx.Subscriber, tx.AIType))
	case workload.TATPGetAccessData:
		if _, ok, err := t.Get(tblAccessInfo, tatpKey(tx.Subscriber, tx.AIType)); err != nil || !ok {
			return false, orMissing(err, "access_info")
		}
	case workload.TATPUpdateSubscriberData:
		if err := t.Put(tblSpecialFac, tatpKey(tx.Subscriber, 1), subscriberRow(tx.Subscriber, tx.Location)); err != nil {
			return false, err
		}
		return true, nil
	case workload.TATPUpdateLocation:
		if err := t.Put(tblSubscriber, tatpKey(tx.Subscriber, 0), subscriberRow(tx.Subscriber, tx.Location)); err != nil {
			return false, err
		}
		return true, nil
	case workload.TATPInsertCallForwarding:
		if err := t.Put(tblCallFwd, tatpKey(tx.Subscriber, tx.AIType), subscriberRow(tx.Subscriber, 0)); err != nil {
			return false, err
		}
		return true, nil
	case workload.TATPDeleteCallForwarding:
		if _, err := t.Delete(tblCallFwd, tatpKey(tx.Subscriber, tx.AIType)); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func orMissing(err error, what string) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("tatp: %s row missing", what)
}
