package harness

import (
	"fmt"
	"sync"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/fs"
	"memsnap/internal/pgdb"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

// Figure6 reproduces the PostgreSQL TPC-C comparison across the four
// storage variants: transactions per second, disk write throughput,
// and IOs per second.
func Figure6(opts Options) (*Result, error) {
	opts = opts.fill()
	warehouses := int64(4)
	backends := opts.Threads
	txPerBackend := opts.scaled(400)

	res := &Result{
		ID:     "fig6",
		Title:  "PostgreSQL TPC-C across storage variants",
		Header: []string{"Variant", "tx/s", "disk MB/s", "KB/tx", "IO/s", "rel. tx/s"},
		Notes: []string{
			fmt.Sprintf("scaled: %d warehouses, %d backends x %d transactions (paper: 150 warehouses, 24 connections, 2 min)", warehouses, backends, txPerBackend),
			"paper Figure 6: mmap -15-25%% vs baseline; memsnap ~+1.5%% tx/s with ~80%% less disk write throughput",
		},
	}

	var baselineTPS float64
	for _, variant := range []pgdb.Variant{pgdb.VarFFS, pgdb.VarMmap, pgdb.VarMmapBufDirect, pgdb.VarMemSnap} {
		tps, mbps, iops, err := runTPCC(variant, opts, warehouses, backends, txPerBackend)
		if err != nil {
			return nil, err
		}
		if variant == pgdb.VarFFS {
			baselineTPS = tps
		}
		res.Rows = append(res.Rows, []string{
			variant.String(),
			fmt.Sprintf("%.0f", tps),
			fmt.Sprintf("%.1f", mbps),
			fmt.Sprintf("%.1f", mbps*1024/tps),
			fmt.Sprintf("%.0f", iops),
			fmt.Sprintf("%.2fx", tps/baselineTPS),
		})
	}
	return res, nil
}

// runTPCC executes the workload on one variant and reports
// throughput plus disk statistics per simulated second.
func runTPCC(variant pgdb.Variant, opts Options, warehouses int64, backends, txPerBackend int) (tps, mbps, iops float64, err error) {
	costs := sim.DefaultCosts()
	// The paper's 30 GiB database checkpoints every few seconds under
	// TPC-C; scale the WAL checkpoint interval with the database so
	// full-page-write and checkpoint traffic keep their real ratios.
	cfg := pgdb.Config{Variant: variant, Costs: costs, RegionBytes: 128 << 20, CheckpointWAL: 1 << 20}
	var arr *disk.Array
	if variant == pgdb.VarMemSnap {
		sys, err := core.NewSystem(core.Options{DiskBytesEach: 2 << 30})
		if err != nil {
			return 0, 0, 0, err
		}
		cfg.Sys = sys
		arr = sys.Array()
	} else {
		arr = disk.NewArray(costs, 2, 4<<30)
		cfg.Fsys = fs.New(costs, arr, fs.FFS)
	}
	c, err := pgdb.NewCluster(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	loader, err := c.NewBackend(0)
	if err != nil {
		return 0, 0, 0, err
	}
	d, err := pgdb.NewTPCC(c, loader, warehouses)
	_ = d
	if err != nil {
		return 0, 0, 0, err
	}
	loadEnd := loader.Clock().Now()
	statsBefore := arr.Stats()

	var wg sync.WaitGroup
	errCh := make(chan error, backends)
	clocks := make([]*sim.Clock, backends)
	for i := 0; i < backends; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := c.NewBackend(i + 1)
			if err != nil {
				errCh <- err
				return
			}
			b.Clock().AdvanceTo(loadEnd)
			clocks[i] = b.Clock()
			gen := workload.NewTPCC(opts.Seed+uint64(i), warehouses)
			for t := 0; t < txPerBackend; t++ {
				if err := d.Run(b, gen.Next()); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return 0, 0, 0, err
	}

	var end time.Duration
	for _, clk := range clocks {
		if clk != nil && clk.Now() > end {
			end = clk.Now()
		}
	}
	elapsed := (end - loadEnd).Seconds()
	statsAfter := arr.Stats()
	totalTx := float64(backends * txPerBackend)
	tps = totalTx / elapsed
	mbps = float64(statsAfter.BytesWritten-statsBefore.BytesWritten) / elapsed / (1 << 20)
	iops = float64(statsAfter.Writes-statsBefore.Writes) / elapsed
	return tps, mbps, iops, nil
}
