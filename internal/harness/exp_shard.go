package harness

import (
	"fmt"
	"sync"

	"memsnap/internal/core"
	"memsnap/internal/shard"
)

// ShardSvc evaluates the sharded KV serving layer (internal/shard):
// throughput and group-commit latency across a shard-count x
// batch-size grid. Each configuration runs 4 client goroutines per
// shard, each keeping a window of asynchronous requests outstanding so
// workers can coalesce writes into group commits.
func ShardSvc(opts Options) (*Result, error) {
	opts = opts.fill()
	res := &Result{
		ID:     "shardsvc",
		Title:  "Sharded KV service: throughput vs shards x group-commit batch",
		Header: []string{"Shards", "Batch", "Kops/s", "Occupancy", "Commit p50 (us)", "Commit p99 (us)", "Commits"},
		Notes: []string{
			"4 async clients per shard, window of 16 outstanding ops each, 75% Add / 25% Get",
			fmt.Sprintf("%d ops per client (scale %.2f); throughput over max virtual elapsed across shard workers", opts.scaled(300), opts.Scale),
			"occupancy is mean write ops coalesced per group commit",
		},
	}
	for _, shards := range []int{4, 8, 16} {
		for _, batch := range []int{1, 16, 64} {
			row, err := shardSvcRun(shards, batch, opts)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// shardSvcRun serves one grid cell: a fresh system, a service with the
// given shard count and batch cap, and 4 clients per shard issuing a
// windowed async stream of operations.
func shardSvcRun(shards, batch int, opts Options) ([]string, error) {
	sys, err := core.NewSystem(core.Options{CPUs: shards, DiskBytesEach: 512 << 20})
	if err != nil {
		return nil, err
	}
	svc, err := shard.New(sys, shard.Config{Shards: shards, BatchSize: batch})
	if err != nil {
		return nil, err
	}

	const window = 16
	clients := 4 * shards
	opsPer := opts.scaled(300)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%02d", c%8)
			pending := make([]<-chan shard.Response, 0, window)
			drain := func(keep int) error {
				for len(pending) > keep {
					resp := <-pending[0]
					pending = pending[1:]
					if resp.Err != nil {
						return resp.Err
					}
				}
				return nil
			}
			for i := 0; i < opsPer; i++ {
				// Deterministic key walk over a 512-key working set per
				// tenant; no RNG so runs are reproducible bit-for-bit.
				key := fmt.Sprintf("k-%04d", (c*7919+i*613)%512)
				op := shard.Op{Kind: shard.OpAdd, Tenant: tenant, Key: key, Value: 1}
				if i%4 == 3 {
					op = shard.Op{Kind: shard.OpGet, Tenant: tenant, Key: key}
				}
				ch, err := svc.DoAsync(op)
				if err != nil {
					errs <- err
					return
				}
				pending = append(pending, ch)
				if err := drain(window - 1); err != nil {
					errs <- err
					return
				}
			}
			if err := drain(0); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	st := svc.TotalStats()
	if err := svc.Close(); err != nil {
		return nil, err
	}
	kops := 0.0
	if st.Elapsed > 0 {
		kops = float64(st.Ops) / st.Elapsed.Seconds() / 1000
	}
	return []string{
		fmt.Sprintf("%d", shards),
		fmt.Sprintf("%d", batch),
		fmt.Sprintf("%.1f", kops),
		fmt.Sprintf("%.1f", st.BatchOccupancy),
		us(st.CommitLatency.P50),
		us(st.CommitLatency.P99),
		fmt.Sprintf("%d", st.Commits),
	}, nil
}
