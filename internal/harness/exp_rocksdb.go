package harness

import (
	"fmt"
	"sync"
	"time"

	"memsnap/internal/aurora"
	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/fs"
	"memsnap/internal/rockskv"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

// mixGraphRun drives the MixGraph workload against a rockskv store
// with the given number of worker threads and returns per-op latency
// plus the final virtual time (max across workers).
func mixGraphRun(db *rockskv.DB, threads, opsPerThread int, keys int64, seed uint64, fill int) (*sim.LatencyRecorder, time.Duration, error) {
	// Fill phase (single worker; not measured).
	filler := db.NewSession(0)
	fillGen := workload.NewMixGraph(seed, keys)
	for i := 0; i < fill; i++ {
		req := fillGen.Next()
		if err := filler.Put(req.Key, make([]byte, 100)); err != nil {
			return nil, 0, err
		}
	}
	fillEnd := filler.Clock().Now()

	lat := sim.NewLatencyRecorder()
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	clocks := make([]*sim.Clock, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			s := db.NewSession(th)
			s.Clock().AdvanceTo(fillEnd)
			clocks[th] = s.Clock()
			gen := workload.NewMixGraph(seed+uint64(th)+1, keys)
			for i := 0; i < opsPerThread; i++ {
				req := gen.Next()
				start := s.Clock().Now()
				switch req.Op {
				case workload.OpGet:
					s.Get(req.Key)
				case workload.OpPut:
					if err := s.Put(req.Key, req.Value); err != nil {
						errs <- err
						return
					}
				case workload.OpSeek:
					s.Seek(req.Key, req.ScanLen)
				}
				lat.Record(s.Clock().Now() - start)
			}
		}(th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, 0, err
	}
	var end time.Duration
	for _, c := range clocks {
		if c != nil && c.Now() > end {
			end = c.Now()
		}
	}
	return lat, end - fillEnd, nil
}

// Table9 reproduces the RocksDB three-way comparison under MixGraph.
func Table9(opts Options) (*Result, error) {
	opts = opts.fill()
	costs := sim.DefaultCosts()
	threads := opts.Threads
	opsPerThread := opts.scaled(2500)
	keys := int64(opts.scaled(20000)) // paper: 20M keys
	fill := opts.scaled(5000)

	res := &Result{
		ID:     "table9",
		Title:  "RocksDB MixGraph: throughput and latency by persistence design",
		Header: []string{"Configuration", "Kops/s", "Avg (us)", "99th (us)"},
		Notes: []string{
			fmt.Sprintf("scaled: %d keys, %d threads x %d ops (paper: 20M keys, 12 threads)", keys, threads, opsPerThread),
		},
	}

	configs := []struct {
		name string
		mk   func() (*rockskv.DB, error)
	}{
		{"memsnap", func() (*rockskv.DB, error) {
			sys, err := core.NewSystem(core.Options{DiskBytesEach: 2 << 30})
			if err != nil {
				return nil, err
			}
			proc := sys.NewProcess()
			ctx := proc.NewContext(0)
			return rockskv.NewMemSnap(proc, ctx, "memtable", 1<<30)
		}},
		{"baseline+WAL", func() (*rockskv.DB, error) {
			fsys := fs.New(costs, disk.NewArray(costs, 2, 4<<30), fs.FFS)
			return rockskv.NewWAL(fsys, sim.NewClock(), rockskv.Config{MemTableLimit: 4 << 20}), nil
		}},
		{"aurora", func() (*rockskv.DB, error) {
			arr := disk.NewArray(costs, 2, 4<<30)
			region := aurora.NewRegion(costs, arr, "memtable", 0, 1<<30)
			return rockskv.NewAurora(region, rockskv.Config{}), nil
		}},
	}

	for _, cfg := range configs {
		db, err := cfg.mk()
		if err != nil {
			return nil, err
		}
		lat, elapsed, err := mixGraphRun(db, threads, opsPerThread, keys, opts.Seed, fill)
		if err != nil {
			return nil, err
		}
		s := lat.Summarize()
		kops := float64(s.Count) / elapsed.Seconds() / 1000
		res.Rows = append(res.Rows, []string{
			cfg.name,
			fmt.Sprintf("%.1f", kops),
			us(s.Mean),
			us(s.P99),
		})
	}
	return res, nil
}

// Table1 reproduces the baseline RocksDB CPU breakdown under
// MixGraph: most CPU goes to persistence, not the in-memory
// transaction.
func Table1(opts Options) (*Result, error) {
	opts = opts.fill()
	costs := sim.DefaultCosts()
	ops := opts.scaled(20000)
	keys := int64(opts.scaled(20000))

	fsys := fs.New(costs, disk.NewArray(costs, 2, 4<<30), fs.FFS)
	kernel := sim.NewTimeBuckets()
	fsys.Buckets = kernel
	db := rockskv.NewWAL(fsys, sim.NewClock(), rockskv.Config{MemTableLimit: 4 << 20})
	user := sim.NewTimeBuckets()
	db.Buckets = user

	s := db.NewSession(0)
	gen := workload.NewMixGraph(opts.Seed, keys)
	for i := 0; i < ops; i++ {
		req := gen.Next()
		switch req.Op {
		case workload.OpGet:
			s.Get(req.Key)
		case workload.OpPut:
			if err := s.Put(req.Key, req.Value); err != nil {
				return nil, err
			}
		case workload.OpSeek:
			s.Seek(req.Key, req.ScanLen)
		}
	}
	total := s.Clock().Now()

	frac := func(d time.Duration) string { return pct(float64(d) / float64(total)) }
	// Kernel buckets and device IO are first-class; the remaining
	// userspace time is everything not charged to a specific bucket.
	// The "log" and "io generation" user buckets wrap kernel calls,
	// so they are reported inclusively in the notes instead of as
	// disjoint rows.
	kernelCPU := kernel.Get("syscall") + kernel.Get("vfs") + kernel.Get("buffer cache") + kernel.Get("file system")
	ioWait := kernel.Get("data io")
	txMem := user.Get("tx memory")
	ser := user.Get("serialization")
	other := total - txMem - ser - kernelCPU - ioWait
	if other < 0 {
		other = 0
	}

	res := &Result{
		ID:     "table1",
		Title:  "Baseline RocksDB execution-time breakdown (MixGraph)",
		Header: []string{"Task", "% Time"},
		Rows: [][]string{
			{"Userspace: Tx Memory", frac(txMem)},
			{"Userspace: Serialization", frac(ser)},
			{"Userspace: Other (log mgmt, LSM)", frac(other)},
			{"Kernel: Syscall", frac(kernel.Get("syscall"))},
			{"Kernel: VFS", frac(kernel.Get("vfs"))},
			{"Kernel: Buffer Cache", frac(kernel.Get("buffer cache"))},
			{"Kernel: File System", frac(kernel.Get("file system"))},
			{"Device IO wait", frac(ioWait)},
		},
		Notes: []string{
			fmt.Sprintf("scaled: %d MixGraph ops over %d keys", ops, keys),
			fmt.Sprintf("WAL logging path (incl. kernel+IO): %s; SSTable flush/compaction: %s",
				pct(float64(user.Get("log"))/float64(total)),
				pct(float64(user.Get("io generation"))/float64(total))),
			"paper Table 1: only 18.3% of time is the in-memory transaction; the rest is persistence",
		},
	}
	return res, nil
}
