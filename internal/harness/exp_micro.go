package harness

import (
	"fmt"
	"time"

	"memsnap/internal/aurora"
	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/fs"
	"memsnap/internal/sim"
	"memsnap/internal/vm"
)

// ioSizes are the write sizes of Table 6 / Figures 1 and 3.
var ioSizes = []int{
	4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10,
	128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20,
}

// Table2 reproduces the Aurora region-checkpoint breakdown: a 64 KiB
// dirty set in a ~1 GiB region, most latency in shadow management.
func Table2(opts Options) (*Result, error) {
	opts = opts.fill()
	costs := sim.DefaultCosts()
	arr := disk.NewArray(costs, 2, 2<<30)
	region := aurora.NewRegion(costs, arr, "db", 0, 1<<30)
	clk := sim.NewClock()
	region.Write(clk, 0, make([]byte, 64<<10))
	b := region.Checkpoint(clk)
	return &Result{
		ID:     "table2",
		Title:  "Latency breakdown for synchronous Aurora region checkpointing (64 KiB dirty)",
		Header: []string{"Operation", "Aurora (us)"},
		Rows: [][]string{
			{"Waiting for Calls", us(b.WaitingForCalls)},
			{"Applying COW", us(b.ApplyingCOW)},
			{"Flush IO", us(b.FlushIO)},
			{"Removing COW", us(b.RemovingCOW)},
			{"Total", us(b.Total)},
		},
		Notes: []string{"paper: 26.7 / 79.8 / 27.9 / 91.7 / 208.1 us (Table 2)"},
	}, nil
}

// Figure1 compares the three protection-reset strategies over dirty
// sets from one page to 4 MiB inside a 1 GiB mapping.
func Figure1(opts Options) (*Result, error) {
	opts = opts.fill()
	costs := sim.DefaultCosts()
	res := &Result{
		ID:     "fig1",
		Title:  "Cost of re-applying read protection (1 GiB mapping)",
		Header: []string{"Dirty set", "Full scan (us)", "Per-page walk (us)", "Trace buffer (us)"},
		Notes:  []string{"paper Figure 1: trace buffer is flat and near zero; scan dominated by mapping size"},
	}
	for _, size := range []int{4 << 10, 64 << 10, 512 << 10, 4 << 20} {
		pages := size / vm.PageSize
		mk := func() (*vm.AddressSpace, *vm.Mapping, *vm.Thread, []vm.DirtyRecord) {
			as := vm.NewAddressSpace(costs, nil, nil)
			m := &vm.Mapping{Name: "m", Start: 0x10000000, Pages: 1 << 18, Tracked: true}
			if err := as.Map(m); err != nil {
				panic(err)
			}
			th := as.NewThread(nil, 0)
			rng := sim.NewRNG(opts.Seed)
			for i := 0; i < pages; i++ {
				vpn := uint64(rng.Int63n(1 << 18))
				th.Write(0x10000000+vpn*vm.PageSize, []byte{1})
			}
			return as, m, th, th.TakeDirty(nil)
		}

		as, m, _, _ := mk()
		scanClk := sim.NewClock()
		as.ResetProtectionsScan(scanClk, m)

		as, _, _, recs := mk()
		walkClk := sim.NewClock()
		as.ResetProtectionsWalk(walkClk, recs)

		as, _, _, recs = mk()
		traceClk := sim.NewClock()
		as.ResetProtectionsTrace(traceClk, recs)

		res.Rows = append(res.Rows, []string{
			fmtSize(size), us(scanClk.Now()), us(walkClk.Now()), us(traceClk.Now()),
		})
	}
	return res, nil
}

// Table5 reproduces the msnap_persist breakdown for a 64 KiB dirty
// set.
func Table5(opts Options) (*Result, error) {
	opts = opts.fill()
	sys, err := core.NewSystem(core.Options{})
	if err != nil {
		return nil, err
	}
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	r, err := proc.Open(ctx, "data", 64<<20)
	if err != nil {
		return nil, err
	}
	// Warm the region so the measured persist has no page-in costs.
	ctx.WriteAt(r, 0, make([]byte, 64<<10))
	ctx.Persist(r, core.MSSync)
	ctx.WriteAt(r, 0, make([]byte, 64<<10))
	if _, err := ctx.Persist(r, core.MSSync); err != nil {
		return nil, err
	}
	b := ctx.LastBreakdown
	return &Result{
		ID:     "table5",
		Title:  "Breakdown of an msnap_persist call (64 KiB dirty)",
		Header: []string{"Operation", "Overhead (us)"},
		Rows: [][]string{
			{"Resetting Tracking", us(b.ResetTracking)},
			{"Initiating Writes", us(b.InitiateWrites)},
			{"Waiting on IO", us(b.WaitIO)},
			{"Total", us(b.Total)},
		},
		Notes: []string{"paper: 5.1 / 6.5 / 39.7 / 51.4 us (Table 5)"},
	}, nil
}

// Table6 reproduces the persistence-API latency comparison.
func Table6(opts Options) (*Result, error) {
	opts = opts.fill()
	costs := sim.DefaultCosts()

	res := &Result{
		ID:    "table6",
		Title: "Latency of persistence APIs by write size",
		Header: []string{"Size", "Disk (us)", "ffs seq", "zfs seq", "ffs rand",
			"zfs rand", "memsnap sync", "memsnap async"},
		Notes: []string{
			"disk = one direct QD1 write (N/A beyond 64 KiB, as in the paper)",
			"fsync columns flush the given amount of dirty file data",
			"memsnap columns persist a random page-granularity dirty set",
		},
	}

	fsyncLat := func(kind fs.Kind, bytes int, random bool) time.Duration {
		arr := disk.NewArray(costs, 2, 2<<30)
		fsys := fs.New(costs, arr, kind)
		clk := sim.NewClock()
		blocks := bytes / fs.BlockSize
		var file *fs.File
		if random {
			file = fsys.Create(clk, "db")
			// Preload an established 64 MiB file.
			chunk := make([]byte, 256<<10)
			for off := int64(0); off < 64<<20; off += int64(len(chunk)) {
				file.Write(clk, off, chunk)
			}
			file.Fsync(clk)
			rng := sim.NewRNG(opts.Seed)
			blockBuf := make([]byte, fs.BlockSize)
			for i := 0; i < blocks; i++ {
				file.Write(clk, rng.Int63n(16384)*fs.BlockSize, blockBuf)
			}
		} else {
			file = fsys.Create(clk, "log")
			blockBuf := make([]byte, fs.BlockSize)
			for i := 0; i < blocks; i++ {
				file.Write(clk, int64(i)*fs.BlockSize, blockBuf)
			}
		}
		start := clk.Now()
		file.Fsync(clk)
		return clk.Now() - start
	}

	memsnapLat := func(bytes int, async bool) time.Duration {
		sys, _ := core.NewSystem(core.Options{DiskBytesEach: 512 << 20})
		proc := sys.NewProcess()
		ctx := proc.NewContext(0)
		r, _ := proc.Open(ctx, "data", 128<<20)
		// Warm all pages we will touch.
		rng := sim.NewRNG(opts.Seed)
		pages := bytes / core.PageSize
		offs := make([]int64, pages)
		for i := range offs {
			offs[i] = rng.Int63n(16384) * core.PageSize
		}
		for _, off := range offs {
			ctx.WriteAt(r, off, []byte{1})
		}
		ctx.Persist(r, core.MSSync)
		for _, off := range offs {
			ctx.WriteAt(r, off, []byte{2})
		}
		start := ctx.Clock().Now()
		flags := core.MSSync
		if async {
			flags = core.MSAsync
		}
		ctx.Persist(r, flags)
		lat := ctx.Clock().Now() - start
		if async {
			ctx.Wait(r, 0)
		}
		return lat
	}

	for _, size := range ioSizes {
		row := []string{fmtSize(size)}
		if size <= 64<<10 {
			row = append(row, usK(costs.IOCost(size)))
		} else {
			row = append(row, "N/A")
		}
		row = append(row,
			usK(fsyncLat(fs.FFS, size, false)),
			usK(fsyncLat(fs.CoWFS, size, false)),
			usK(fsyncLat(fs.FFS, size, true)),
			usK(fsyncLat(fs.CoWFS, size, true)),
			usK(memsnapLat(size, false)),
			usK(memsnapLat(size, true)),
		)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Figure3 compares MemSnap against Aurora's region and application
// checkpointing across dirty-set sizes.
func Figure3(opts Options) (*Result, error) {
	opts = opts.fill()
	costs := sim.DefaultCosts()
	res := &Result{
		ID:     "fig3",
		Title:  "Synchronous persistence latency: MemSnap vs Aurora (random dirty sets)",
		Header: []string{"Dirty set", "memsnap (us)", "aurora region (us)", "aurora app (us)"},
		Notes:  []string{"paper Figure 3: memsnap ~7x faster than region, ~60x faster than app checkpoints for small IOs"},
	}

	for _, size := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		// MemSnap.
		sys, _ := core.NewSystem(core.Options{DiskBytesEach: 512 << 20})
		proc := sys.NewProcess()
		ctx := proc.NewContext(0)
		r, _ := proc.Open(ctx, "data", 128<<20)
		rng := sim.NewRNG(opts.Seed)
		pages := size / core.PageSize
		offs := make([]int64, pages)
		for i := range offs {
			offs[i] = rng.Int63n(16384) * core.PageSize
		}
		for _, off := range offs {
			ctx.WriteAt(r, off, []byte{1})
		}
		ctx.Persist(r, core.MSSync)
		for _, off := range offs {
			ctx.WriteAt(r, off, []byte{2})
		}
		start := ctx.Clock().Now()
		ctx.Persist(r, core.MSSync)
		msLat := ctx.Clock().Now() - start

		// Aurora region (1 GiB mapping, like the RocksDB case).
		arr := disk.NewArray(costs, 2, 2<<30)
		region := aurora.NewRegion(costs, arr, "db", 0, 1<<30)
		clk := sim.NewClock()
		rng = sim.NewRNG(opts.Seed)
		for i := 0; i < pages; i++ {
			region.Write(clk, rng.Int63n(16384)*4096, make([]byte, 4096))
		}
		regLat := region.Checkpoint(clk).Total

		// Aurora application checkpoint (region + 2 GiB of app state).
		arr2 := disk.NewArray(costs, 2, 4<<30)
		region2 := aurora.NewRegion(costs, arr2, "db", 0, 1<<30)
		app := aurora.NewApp(costs, []*aurora.Region{region2}, 2<<30)
		clk2 := sim.NewClock()
		rng = sim.NewRNG(opts.Seed)
		for i := 0; i < pages; i++ {
			region2.Write(clk2, rng.Int63n(16384)*4096, make([]byte, 4096))
		}
		appLat := app.Checkpoint(clk2).Total

		res.Rows = append(res.Rows, []string{
			fmtSize(size), us(msLat), us(regLat), us(appLat),
		})
	}
	return res, nil
}

// Table10 contrasts the MemSnap and Aurora persistence breakdowns for
// a 64 KiB operation side by side.
func Table10(opts Options) (*Result, error) {
	t5, err := Table5(opts)
	if err != nil {
		return nil, err
	}
	t2, err := Table2(opts)
	if err != nil {
		return nil, err
	}
	// t5 rows: reset/initiate/waitIO/total; t2 rows: waiting/cow/io/collapse/total.
	return &Result{
		ID:     "table10",
		Title:  "Breakdown of MemSnap vs Aurora persistence cost (64 KiB)",
		Header: []string{"Operation", "MemSnap (us)", "Aurora (us)"},
		Rows: [][]string{
			{"Waiting for Calls", "N/A", t2.Rows[0][1]},
			{"Applying COW", t5.Rows[0][1], t2.Rows[1][1]},
			{"Flush IO", sumUS(t5.Rows[1][1], t5.Rows[2][1]), t2.Rows[2][1]},
			{"Removing COW", "N/A", t2.Rows[3][1]},
			{"Total", t5.Rows[3][1], t2.Rows[4][1]},
		},
		Notes: []string{"paper Table 10: 5.1/46.3/51.4 vs 26.7/79.8/27.9/91.7/208.1 us"},
	}, nil
}

// sumUS adds two "N.N" microsecond strings.
func sumUS(a, b string) string {
	var x, y float64
	fmt.Sscanf(a, "%f", &x)
	fmt.Sscanf(b, "%f", &y)
	return fmt.Sprintf("%.1f", x+y)
}

// fmtSize renders byte sizes like the paper ("4 KiB", "1 MiB").
func fmtSize(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%d MiB", n>>20)
	}
	return fmt.Sprintf("%d KiB", n>>10)
}
