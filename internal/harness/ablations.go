package harness

import (
	"fmt"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/objstore"
	"memsnap/internal/rockskv"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

// AblationTLBThreshold sweeps the per-page-shootdown vs full-flush
// crossover that MemSnap's protection reset uses.
func AblationTLBThreshold(opts Options) (*Result, error) {
	opts = opts.fill()
	res := &Result{
		ID:     "ablation-tlb",
		Title:  "Ablation: TLB invalidation strategy after a uCheckpoint",
		Header: []string{"Dirty pages", "Per-page shootdown (us)", "Full flush (us)", "Chosen policy"},
		Notes:  []string{"the policy switches to a full flush above TLBFlushThreshold pages"},
	}
	costs := sim.DefaultCosts()
	for _, pages := range []int{1, 4, 8, 16, 32, 64, 256} {
		perPage := costs.TLBShootdownPerPage * time.Duration(pages)
		full := costs.TLBFullFlush
		policy := "shootdown"
		if pages >= costs.TLBFlushThreshold {
			policy = "full flush"
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", pages), us(perPage), us(full), policy,
		})
	}
	return res, nil
}

// AblationStoreBackend compares the COW radix store's commit against
// a naive backend that rewrites the entire object per checkpoint.
func AblationStoreBackend(opts Options) (*Result, error) {
	opts = opts.fill()
	costs := sim.DefaultCosts()
	res := &Result{
		ID:     "ablation-store",
		Title:  "Ablation: COW radix object store vs whole-object rewrite",
		Header: []string{"Object size", "Dirty", "COW commit (us)", "Full rewrite (us)"},
		Notes:  []string{"full rewrite models a store without block-level COW: every checkpoint writes the whole object"},
	}
	for _, objBytes := range []int{1 << 20, 16 << 20, 64 << 20} {
		arr := disk.NewArray(costs, 2, 512<<20)
		store, at, err := objstore.Format(costs, arr, 0)
		if err != nil {
			return nil, err
		}
		obj, at, err := store.CreateObject(at, "o", int64(objBytes))
		if err != nil {
			return nil, err
		}
		// Populate, then measure a 16 KiB dirty commit.
		blocks := objBytes / objstore.BlockSize
		var fill []objstore.BlockWrite
		for i := 0; i < blocks; i += 64 {
			fill = append(fill, objstore.BlockWrite{Index: int64(i), Data: make([]byte, objstore.BlockSize)})
		}
		_, at, _ = obj.Commit(at, fill)
		dirty := []objstore.BlockWrite{
			{Index: 0, Data: make([]byte, objstore.BlockSize)},
			{Index: 1, Data: make([]byte, objstore.BlockSize)},
			{Index: 2, Data: make([]byte, objstore.BlockSize)},
			{Index: 3, Data: make([]byte, objstore.BlockSize)},
		}
		_, done, err := obj.Commit(at, dirty)
		if err != nil {
			return nil, err
		}
		cowLat := done - at

		// Whole-object rewrite: one sequential write of the object
		// plus a commit record.
		arr2 := disk.NewArray(costs, 2, 512<<20)
		rwDone := arr2.Write(0, 0, make([]byte, objBytes))
		rwDone = arr2.Write(rwDone, int64(objBytes), make([]byte, 512))

		res.Rows = append(res.Rows, []string{
			fmtSize(objBytes), "16 KiB", us(cowLat), us(rwDone),
		})
	}
	return res, nil
}

// AblationSkipPointers measures the cost of persisting skip pointers
// versus rebuilding them at recovery (the paper's §7.2 optimization).
func AblationSkipPointers(opts Options) (*Result, error) {
	opts = opts.fill()
	n := opts.scaled(2000)
	res := &Result{
		ID:     "ablation-skip",
		Title:  "Ablation: persistent skip pointers vs rebuild-on-recovery",
		Header: []string{"Metric", "Volatile skip pointers (shipped)", "Persistent towers (modeled)"},
		Notes: []string{
			"persisting towers dirties every predecessor at each level (~1.33 extra pages/insert on average)",
			fmt.Sprintf("measured over %d inserts", n),
		},
	}

	sys, err := core.NewSystem(core.Options{DiskBytesEach: 2 << 30})
	if err != nil {
		return nil, err
	}
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	db, err := rockskv.NewMemSnap(proc, ctx, "memtable", 512<<20)
	if err != nil {
		return nil, err
	}
	s := db.NewSession(0)
	start := s.Clock().Now()
	var persisted int64 = 0
	for i := 0; i < n; i++ {
		if err := s.Put(workload.Key16(int64(i*7919%n)), make([]byte, 100)); err != nil {
			return nil, err
		}
	}
	elapsed := s.Clock().Now() - start
	persisted = sys.Array().Stats().BytesWritten

	// Modeled persistent towers: expected extra dirty pages per
	// insert = sum over levels of p^level = 1/(1-1/4)-1 = 1/3 extra
	// predecessors, each its own page, plus tower updates in the new
	// node (already counted). Extra IO = extra pages * (4 KiB + tree
	// overhead); extra latency = extra per-page persist cost.
	extraPagesPerInsert := 1.0 / 3.0
	costs := sys.Costs()
	extraLatency := time.Duration(float64(n) * extraPagesPerInsert * float64(costs.IOCost(4096)) / 2)
	extraBytes := int64(float64(n) * extraPagesPerInsert * 4096 * 1.1)

	res.Rows = append(res.Rows, []string{"total insert time", fmt.Sprintf("%.2fms", elapsed.Seconds()*1000), fmt.Sprintf("%.2fms", (elapsed+extraLatency).Seconds()*1000)})
	res.Rows = append(res.Rows, []string{"disk bytes written", fmtSize(int(persisted)), fmtSize(int(persisted + extraBytes))})

	// Recovery cost of the shipped design (index rebuild).
	crashAt := s.Clock().Now()
	sys2, doneAt, err := core.Recover(core.Options{DiskBytesEach: 2 << 30}, sys.Array(), crashAt)
	if err != nil {
		return nil, err
	}
	proc2 := sys2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(doneAt)
	recStart := ctx2.Clock().Now()
	if _, err := rockskv.NewMemSnap(proc2, ctx2, "memtable", 512<<20); err != nil {
		return nil, err
	}
	rebuild := ctx2.Clock().Now() - recStart
	res.Rows = append(res.Rows, []string{"recovery index rebuild", fmt.Sprintf("%.2fms", rebuild.Seconds()*1000), "0 (towers on disk)"})
	return res, nil
}

// AblationWriteAmp quantifies page-granularity write amplification
// versus value size (§5's limitation discussion).
func AblationWriteAmp(opts Options) (*Result, error) {
	opts = opts.fill()
	res := &Result{
		ID:     "ablation-writeamp",
		Title:  "Ablation: uCheckpoint write amplification vs value size",
		Header: []string{"Value size", "Dirty bytes", "Disk bytes", "Amplification"},
		Notes:  []string{"MemSnap flushes whole 4 KiB pages; small values pay proportionally more (§5)"},
	}
	for _, valSize := range []int{64, 256, 1024, 4096} {
		sys, err := core.NewSystem(core.Options{DiskBytesEach: 1 << 30})
		if err != nil {
			return nil, err
		}
		proc := sys.NewProcess()
		ctx := proc.NewContext(0)
		r, _ := proc.Open(ctx, "data", 64<<20)
		const writes = 64
		for i := 0; i < writes; i++ {
			ctx.WriteAt(r, int64(i)*core.PageSize, make([]byte, valSize))
			ctx.Persist(r, core.MSSync)
		}
		disk := sys.Array().Stats().BytesWritten
		logical := int64(writes * valSize)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d B", valSize),
			fmtSize(int(logical)),
			fmtSize(int(disk)),
			fmt.Sprintf("%.1fx", float64(disk)/float64(logical)),
		})
	}
	return res, nil
}

// AblationTraceBuffer contrasts trace-buffer protection reset against
// the per-page walk as the dirty set grows (the design choice behind
// Figure 1, isolated).
func AblationTraceBuffer(opts Options) (*Result, error) {
	opts = opts.fill()
	costs := sim.DefaultCosts()
	res := &Result{
		ID:     "ablation-trace",
		Title:  "Ablation: trace-buffer reset vs per-page walk",
		Header: []string{"Dirty pages", "Trace buffer (us)", "Per-page walk (us)", "Walk / trace"},
	}
	for _, pages := range []int{1, 16, 256, 1024, 4096} {
		trace := costs.PTEWrite * time.Duration(pages)
		walk := (costs.PageWalk + costs.PTEWrite) * time.Duration(pages)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", pages), us(trace), us(walk),
			fmt.Sprintf("%.1fx", float64(walk)/float64(trace)),
		})
	}
	return res, nil
}
