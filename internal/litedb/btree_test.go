package litedb

import (
	"bytes"
	"fmt"
	"testing"

	"memsnap/internal/sim"
)

// memPager is a trivial in-memory pager for isolated B+tree tests.
type memPager struct {
	pages [][]byte
}

func (m *memPager) page(n uint32) []byte         { return m.pages[n] }
func (m *memPager) pageForWrite(n uint32) []byte { return m.pages[n] }
func (m *memPager) allocPage() uint32 {
	m.pages = append(m.pages, make([]byte, PageSize))
	return uint32(len(m.pages) - 1)
}

func newTestTree() *btree {
	pg := &memPager{}
	pg.allocPage() // page 0 is reserved (catalog / nil sentinel)
	root := pg.allocPage()
	initPage(pg.page(root), pageTypeLeaf)
	return &btree{pg: pg, root: root}
}

// TestBtreeOracleFuzz compares the B+tree against a map oracle under
// random puts, deletes and overwrites with varying value sizes.
func TestBtreeOracleFuzz(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		rng := sim.NewRNG(seed + 99)
		tree := newTestTree()
		oracle := map[string][]byte{}

		for op := 0; op < 8000; op++ {
			key := []byte(fmt.Sprintf("key-%06d", rng.Intn(1500)))
			switch rng.Intn(10) {
			case 0, 1:
				if tree.delete(key) != (oracle[string(key)] != nil) {
					t.Fatalf("seed %d op %d: delete result mismatch for %s", seed, op, key)
				}
				delete(oracle, string(key))
			default:
				val := bytes.Repeat([]byte{byte(op)}, 1+rng.Intn(300))
				if err := tree.put(key, val); err != nil {
					t.Fatalf("seed %d op %d: put: %v", seed, op, err)
				}
				oracle[string(key)] = val
			}
		}

		// Point lookups.
		for k, want := range oracle {
			got, ok := tree.get([]byte(k))
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("seed %d: key %s: got %d bytes ok=%v, want %d bytes", seed, k, len(got), ok, len(want))
			}
		}
		// Absent keys stay absent.
		if _, ok := tree.get([]byte("key-999999")); ok {
			t.Fatalf("seed %d: phantom key", seed)
		}
		// Full scan matches the oracle in both content and order.
		var prev []byte
		count := 0
		tree.scan(nil, nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("seed %d: scan out of order: %s after %s", seed, k, prev)
			}
			want, ok := oracle[string(k)]
			if !ok || !bytes.Equal(v, want) {
				t.Fatalf("seed %d: scan saw wrong value for %s", seed, k)
			}
			prev = append(prev[:0], k...)
			count++
			return true
		})
		if count != len(oracle) {
			t.Fatalf("seed %d: scan saw %d keys, oracle has %d", seed, count, len(oracle))
		}
	}
}

// TestBtreeRangeScanBounds exercises partial scans against an oracle.
func TestBtreeRangeScanBounds(t *testing.T) {
	tree := newTestTree()
	for i := 0; i < 2000; i++ {
		tree.put([]byte(fmt.Sprintf("%05d", i)), []byte{byte(i)})
	}
	var got []string
	tree.scan([]byte("00500"), []byte("00510"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 || got[0] != "00500" || got[9] != "00509" {
		t.Fatalf("range scan = %v", got)
	}
	// Early termination.
	n := 0
	tree.scan(nil, nil, func(k, v []byte) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop at %d", n)
	}
}

// TestBtreeSequentialAndReverseInsert hits both split paths hard.
func TestBtreeSequentialAndReverseInsert(t *testing.T) {
	for _, reverse := range []bool{false, true} {
		tree := newTestTree()
		const n = 4000
		val := bytes.Repeat([]byte{7}, 120)
		for i := 0; i < n; i++ {
			k := i
			if reverse {
				k = n - 1 - i
			}
			if err := tree.put([]byte(fmt.Sprintf("%08d", k)), val); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i += 137 {
			if _, ok := tree.get([]byte(fmt.Sprintf("%08d", i))); !ok {
				t.Fatalf("reverse=%v: key %d lost", reverse, i)
			}
		}
	}
}

// TestCompactReclaimsSpace ensures dead cell space is reused.
func TestCompactReclaimsSpace(t *testing.T) {
	tree := newTestTree()
	key := []byte("the-key")
	// Repeatedly resize the same value: dead cells accumulate until
	// compact reclaims them in place (no split should ever occur).
	for i := 0; i < 500; i++ {
		val := bytes.Repeat([]byte{byte(i)}, 100+i%37)
		if err := tree.put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	mp := tree.pg.(*memPager)
	if len(mp.pages) != 2 {
		t.Fatalf("single-key churn split the tree: %d pages", len(mp.pages))
	}
}
