package litedb

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/fs"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

func newWALDB(t *testing.T) (*DB, *fs.FS, *sim.Clock) {
	t.Helper()
	costs := sim.DefaultCosts()
	fsys := fs.New(costs, disk.NewArray(costs, 2, 1<<30), fs.FFS)
	clk := sim.NewClock()
	return CreateWAL(fsys, clk, "test.db"), fsys, clk
}

func newMemSnapDB(t *testing.T) (*DB, *core.System, *core.Context) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	db, err := OpenMemSnap(proc, ctx, "test.db", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return db, sys, ctx
}

func eachMode(t *testing.T, fn func(t *testing.T, db *DB)) {
	t.Run("wal", func(t *testing.T) {
		db, _, _ := newWALDB(t)
		fn(t, db)
	})
	t.Run("memsnap", func(t *testing.T) {
		db, _, _ := newMemSnapDB(t)
		fn(t, db)
	})
}

func TestPutGetDelete(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		tx := db.Begin()
		tx.CreateTable("kv")
		if err := tx.Put("kv", []byte("alpha"), []byte("1")); err != nil {
			t.Fatal(err)
		}
		tx.Put("kv", []byte("beta"), []byte("2"))
		v, ok, _ := tx.Get("kv", []byte("alpha"))
		if !ok || string(v) != "1" {
			t.Fatalf("get alpha = %q ok=%v", v, ok)
		}
		if _, ok, _ := tx.Get("kv", []byte("gamma")); ok {
			t.Fatal("found missing key")
		}
		existed, _ := tx.Delete("kv", []byte("alpha"))
		if !existed {
			t.Fatal("delete missed")
		}
		if _, ok, _ := tx.Get("kv", []byte("alpha")); ok {
			t.Fatal("deleted key still visible")
		}
		tx.Commit()
	})
}

func TestUpdateInPlace(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		tx := db.Begin()
		tx.CreateTable("kv")
		tx.Put("kv", []byte("k"), []byte("old"))
		tx.Put("kv", []byte("k"), []byte("new"))
		v, _, _ := tx.Get("kv", []byte("k"))
		if string(v) != "new" {
			t.Fatalf("updated value = %q", v)
		}
		// Different length forces remove+insert.
		tx.Put("kv", []byte("k"), []byte("much longer value"))
		v, _, _ = tx.Get("kv", []byte("k"))
		if string(v) != "much longer value" {
			t.Fatalf("resized value = %q", v)
		}
		tx.Commit()
	})
}

func TestManyKeysForceSplits(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		tx := db.Begin()
		tx.CreateTable("kv")
		const n = 5000
		val := bytes.Repeat([]byte{0x61}, 100)
		for i := 0; i < n; i++ {
			if err := tx.Put("kv", workload.Key16(int64(i*7919%n)), val); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			v, ok, _ := tx.Get("kv", workload.Key16(int64(i)))
			if !ok || !bytes.Equal(v, val) {
				t.Fatalf("key %d lost after splits", i)
			}
		}
		tx.Commit()
	})
}

func TestScanOrdered(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		tx := db.Begin()
		tx.CreateTable("kv")
		for i := 999; i >= 0; i-- {
			tx.Put("kv", workload.Key16(int64(i)), []byte(fmt.Sprint(i)))
		}
		var keys [][]byte
		tx.Scan("kv", workload.Key16(100), workload.Key16(200), func(k, v []byte) bool {
			keys = append(keys, append([]byte(nil), k...))
			return true
		})
		if len(keys) != 100 {
			t.Fatalf("scan returned %d keys", len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if bytes.Compare(keys[i-1], keys[i]) >= 0 {
				t.Fatal("scan out of order")
			}
		}
		tx.Commit()
	})
}

func TestScanAcrossLeaves(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		tx := db.Begin()
		tx.CreateTable("kv")
		const n = 3000
		for i := 0; i < n; i++ {
			tx.Put("kv", workload.Key16(int64(i)), bytes.Repeat([]byte{1}, 64))
		}
		count := 0
		tx.Scan("kv", nil, nil, func(k, v []byte) bool { count++; return true })
		if count != n {
			t.Fatalf("full scan saw %d/%d keys", count, n)
		}
		tx.Commit()
	})
}

func TestMultipleTables(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		tx := db.Begin()
		tx.CreateTable("a")
		tx.CreateTable("b")
		tx.Put("a", []byte("k"), []byte("in-a"))
		tx.Put("b", []byte("k"), []byte("in-b"))
		va, _, _ := tx.Get("a", []byte("k"))
		vb, _, _ := tx.Get("b", []byte("k"))
		if string(va) != "in-a" || string(vb) != "in-b" {
			t.Fatalf("cross-table: a=%q b=%q", va, vb)
		}
		tx.Commit()
	})
}

func TestRollback(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		tx := db.Begin()
		tx.CreateTable("kv")
		tx.Put("kv", []byte("committed"), []byte("yes"))
		tx.Commit()

		tx2 := db.Begin()
		tx2.Put("kv", []byte("committed"), []byte("NO!"))
		tx2.Put("kv", []byte("aborted"), []byte("gone"))
		tx2.Rollback()

		tx3 := db.Begin()
		v, ok, _ := tx3.Get("kv", []byte("committed"))
		if !ok || string(v) != "yes" {
			t.Fatalf("rollback leaked: %q ok=%v", v, ok)
		}
		if _, ok, _ := tx3.Get("kv", []byte("aborted")); ok {
			t.Fatal("aborted insert visible")
		}
		tx3.Commit()
	})
}

func TestOversizedPayloadRejected(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		tx := db.Begin()
		tx.CreateTable("kv")
		err := tx.Put("kv", []byte("k"), make([]byte, PageSize))
		if err == nil {
			t.Fatal("oversized value accepted")
		}
		tx.Commit()
	})
}

func TestMissingTable(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		tx := db.Begin()
		if err := tx.Put("nope", []byte("k"), []byte("v")); err == nil {
			t.Fatal("put to missing table")
		}
		tx.Commit()
	})
}

func TestWALReopenRecovers(t *testing.T) {
	costs := sim.DefaultCosts()
	fsys := fs.New(costs, disk.NewArray(costs, 2, 1<<30), fs.FFS)
	clk := sim.NewClock()
	db := CreateWAL(fsys, clk, "test.db")
	tx := db.Begin()
	tx.CreateTable("kv")
	for i := 0; i < 500; i++ {
		tx.Put("kv", workload.Key16(int64(i)), []byte(fmt.Sprint(i)))
	}
	tx.Commit()

	// Reopen from the filesystem (simulating process restart): WAL
	// replay must restore everything.
	db2, err := OpenWAL(fsys, clk, "test.db")
	if err != nil {
		t.Fatal(err)
	}
	tx2 := db2.Begin()
	for i := 0; i < 500; i++ {
		v, ok, _ := tx2.Get("kv", workload.Key16(int64(i)))
		if !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("key %d after reopen: %q ok=%v", i, v, ok)
		}
	}
	tx2.Commit()
}

func TestWALCheckpointTriggers(t *testing.T) {
	db, _, _ := newWALDB(t)
	tx := db.Begin()
	tx.CreateTable("kv")
	tx.Commit()
	// Push more than CheckpointThreshold bytes of frames through.
	val := bytes.Repeat([]byte{7}, 256)
	i := 0
	for db.Checkpoints() == 0 && i < 10000 {
		tx := db.Begin()
		for j := 0; j < 8; j++ {
			tx.Put("kv", workload.Key16(int64(i*8+j)), val)
		}
		tx.Commit()
		i++
	}
	if db.Checkpoints() == 0 {
		t.Fatal("checkpoint never triggered")
	}
	// Data must survive checkpointing.
	tx2 := db.Begin()
	if _, ok, _ := tx2.Get("kv", workload.Key16(0)); !ok {
		t.Fatal("key lost across checkpoint")
	}
	tx2.Commit()
}

func TestMemSnapCrashRecovery(t *testing.T) {
	sys, _ := core.NewSystem(core.Options{})
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	db, err := OpenMemSnap(proc, ctx, "crash.db", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	tx.CreateTable("kv")
	for i := 0; i < 300; i++ {
		tx.Put("kv", workload.Key16(int64(i)), []byte(fmt.Sprint(i)))
	}
	tx.Commit()

	// An uncommitted transaction in progress at crash time.
	tx2 := db.Begin()
	tx2.Put("kv", []byte("uncommitted"), []byte("lost"))

	sys.Array().CutPower(ctx.Clock().Now(), sim.NewRNG(9))
	sys2, at, err := core.Recover(core.Options{}, sys.Array(), ctx.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	proc2 := sys2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	db2, err := OpenMemSnap(proc2, ctx2, "crash.db", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	tx3 := db2.Begin()
	for i := 0; i < 300; i++ {
		v, ok, _ := tx3.Get("kv", workload.Key16(int64(i)))
		if !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("key %d after crash: %q ok=%v", i, v, ok)
		}
	}
	if _, ok, _ := tx3.Get("kv", []byte("uncommitted")); ok {
		t.Fatal("uncommitted write survived the crash")
	}
	tx3.Commit()
}

func TestEquivalenceWALvsMemSnap(t *testing.T) {
	// Both backends must produce identical database contents for the
	// same operation sequence.
	f := func(seed uint64, opsRaw []uint16) bool {
		if len(opsRaw) == 0 {
			return true
		}
		run := func(db *DB) map[string]string {
			tx := db.Begin()
			tx.CreateTable("kv")
			tx.Commit()
			rng := sim.NewRNG(seed)
			for _, raw := range opsRaw {
				tx := db.Begin()
				key := workload.Key16(int64(raw % 64))
				switch raw % 3 {
				case 0, 1:
					val := []byte(fmt.Sprintf("v%d", rng.Uint64()%1000))
					tx.Put("kv", key, val)
				case 2:
					tx.Delete("kv", key)
				}
				tx.Commit()
			}
			out := make(map[string]string)
			tx = db.Begin()
			tx.Scan("kv", nil, nil, func(k, v []byte) bool {
				out[string(k)] = string(v)
				return true
			})
			tx.Commit()
			return out
		}
		dbW, _, _ := newWALDB(t)
		dbM, _, _ := newMemSnapDB(t)
		a, b := run(dbW), run(dbM)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMemSnapFasterThanWALForRandomWrites(t *testing.T) {
	// The headline §7.1 result, in miniature: random-key transactions
	// commit faster under MemSnap than under WAL-and-checkpoint.
	runBench := func(make func() (*DB, *sim.Clock)) (perTx float64) {
		db, clk := make()
		tx := db.Begin()
		tx.CreateTable("kv")
		tx.Commit()
		gen := workload.NewDBBench(1, 100000, 128, 4096, true)
		start := clk.Now()
		const txs = 300
		for i := 0; i < txs; i++ {
			tx := db.Begin()
			for _, kv := range gen.NextTx() {
				tx.Put("kv", kv.Key, kv.Value)
			}
			tx.Commit()
		}
		return float64(clk.Now()-start) / txs
	}
	walTime := runBench(func() (*DB, *sim.Clock) {
		db, _, clk := newWALDB(t)
		return db, clk
	})
	msTime := runBench(func() (*DB, *sim.Clock) {
		db, _, ctx := newMemSnapDB(t)
		return db, ctx.Clock()
	})
	if msTime >= walTime {
		t.Fatalf("memsnap (%v ns/tx) not faster than WAL (%v ns/tx)", msTime, walTime)
	}
}
