package litedb

import (
	"encoding/binary"
	"fmt"
	"sync"

	"memsnap/internal/core"
	"memsnap/internal/fs"
	"memsnap/internal/sim"
)

// catalogMagic marks an initialized database (page 0).
const catalogMagic = 0x4c444231 // "LDB1"

// backend is the full persistence interface a DB needs: the B+tree
// pager plus transaction boundaries.
type backend interface {
	pager
	pageCount() uint32
	setPageCount(uint32)
	commit()
	rollback()
}

func (p *walPager) setPageCount(n uint32)     { p.numPages = n }
func (p *memsnapPager) setPageCount(n uint32) { p.numPages = n }

// Mode identifies the persistence backend.
type Mode int

// Database persistence modes.
const (
	// ModeWAL is the file-API baseline (WAL and checkpoint).
	ModeWAL Mode = iota
	// ModeMemSnap is the uCheckpoint plugin.
	ModeMemSnap
)

// DB is one litedb database: a catalog of named B+tree tables over a
// persistence backend. litedb is single-writer (like SQLite):
// transactions serialize on an internal lock.
type DB struct {
	mode Mode
	be   backend

	mu     sync.Mutex
	tables map[string]*btree
	inTx   bool

	// Commits counts committed write transactions.
	Commits int64
}

// CreateWAL creates a fresh database in WAL mode on a filesystem.
func CreateWAL(fsys *fs.FS, clk *sim.Clock, name string) *DB {
	be := newWALPager(fsys, clk, name)
	db := &DB{mode: ModeWAL, be: be, tables: make(map[string]*btree)}
	db.initCatalog()
	be.commit()
	return db
}

// OpenWAL reopens a WAL-mode database, replaying its log (the crash
// recovery path).
func OpenWAL(fsys *fs.FS, clk *sim.Clock, name string) (*DB, error) {
	be, err := openWALPager(fsys, clk, name)
	if err != nil {
		return nil, err
	}
	db := &DB{mode: ModeWAL, be: be, tables: make(map[string]*btree)}
	if err := db.loadCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// OpenMemSnap creates or reopens a database in MemSnap mode. The
// region is created at the given size on first open; afterwards the
// catalog is read straight out of the recovered region.
func OpenMemSnap(proc *core.Process, ctx *core.Context, name string, size int64) (*DB, error) {
	region, err := proc.Open(ctx, name, size)
	if err != nil {
		return nil, err
	}
	be := newMemsnapPager(ctx, region)
	db := &DB{mode: ModeMemSnap, be: be, tables: make(map[string]*btree)}
	// Distinguish fresh from recovered by the catalog magic.
	hdr := ctx.PageForRead(region, 0)
	if binary.LittleEndian.Uint32(hdr) == catalogMagic {
		if err := db.loadCatalog(); err != nil {
			return nil, err
		}
		return db, nil
	}
	db.initCatalog()
	be.commit()
	return db, nil
}

// Mode returns the persistence mode.
func (db *DB) Mode() Mode { return db.mode }

// Checkpoints returns how many WAL checkpoints have run (WAL mode).
func (db *DB) Checkpoints() int64 {
	if p, ok := db.be.(*walPager); ok {
		return p.checkpoints
	}
	return 0
}

// initCatalog formats page 0 of a fresh database.
func (db *DB) initCatalog() {
	pageNo := db.be.allocPage()
	if pageNo != 0 {
		panic("litedb: catalog must be page 0")
	}
	p := db.be.pageForWrite(0)
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint32(p, catalogMagic)
	db.writeCatalog()
}

// writeCatalog serializes table roots and the allocation frontier
// into page 0.
func (db *DB) writeCatalog() {
	p := db.be.pageForWrite(0)
	binary.LittleEndian.PutUint32(p, catalogMagic)
	binary.LittleEndian.PutUint32(p[4:], db.be.pageCount())
	binary.LittleEndian.PutUint16(p[8:], uint16(len(db.tables)))
	off := 10
	// Deterministic order for stable images.
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		t := db.tables[name]
		if off+2+len(name)+4 > PageSize {
			panic("litedb: catalog overflow")
		}
		binary.LittleEndian.PutUint16(p[off:], uint16(len(name)))
		copy(p[off+2:], name)
		binary.LittleEndian.PutUint32(p[off+2+len(name):], t.root)
		off += 2 + len(name) + 4
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// loadCatalog parses page 0.
func (db *DB) loadCatalog() error {
	p := db.be.page(0)
	if binary.LittleEndian.Uint32(p) != catalogMagic {
		return fmt.Errorf("litedb: bad catalog magic")
	}
	db.be.setPageCount(binary.LittleEndian.Uint32(p[4:]))
	n := int(binary.LittleEndian.Uint16(p[8:]))
	off := 10
	for i := 0; i < n; i++ {
		nameLen := int(binary.LittleEndian.Uint16(p[off:]))
		name := string(p[off+2 : off+2+nameLen])
		root := binary.LittleEndian.Uint32(p[off+2+nameLen:])
		db.tables[name] = &btree{pg: db.be, root: root}
		off += 2 + nameLen + 4
	}
	return nil
}

// Tx is one transaction. litedb is single-writer: the transaction
// holds the database lock until Commit or Rollback.
type Tx struct {
	db      *DB
	roots   map[string]uint32 // roots at Begin, for catalog updates
	pagesAt uint32
	done    bool
}

// Begin starts a transaction, taking the writer lock.
func (db *DB) Begin() *Tx {
	db.mu.Lock()
	db.inTx = true
	roots := make(map[string]uint32, len(db.tables))
	for name, t := range db.tables {
		roots[name] = t.root
	}
	return &Tx{db: db, roots: roots, pagesAt: db.be.pageCount()}
}

// CreateTable adds a table (idempotent).
func (tx *Tx) CreateTable(name string) error {
	db := tx.db
	if _, ok := db.tables[name]; ok {
		return nil
	}
	rootNo := db.be.allocPage()
	p := db.be.pageForWrite(rootNo)
	initPage(p, pageTypeLeaf)
	db.tables[name] = &btree{pg: db.be, root: rootNo}
	return nil
}

// table resolves a table or errors.
func (tx *Tx) table(name string) (*btree, error) {
	t, ok := tx.db.tables[name]
	if !ok {
		return nil, fmt.Errorf("litedb: no such table %q", name)
	}
	return t, nil
}

// Put inserts or updates a row.
func (tx *Tx) Put(tableName string, key, val []byte) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	return t.put(key, val)
}

// Get reads a row.
func (tx *Tx) Get(tableName string, key []byte) ([]byte, bool, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return nil, false, err
	}
	v, ok := t.get(key)
	return v, ok, nil
}

// Delete removes a row; reports whether it existed.
func (tx *Tx) Delete(tableName string, key []byte) (bool, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return false, err
	}
	return t.delete(key), nil
}

// Scan visits rows of a table in key order within [start, end); nil
// end means to the last key.
func (tx *Tx) Scan(tableName string, start, end []byte, fn func(k, v []byte) bool) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	t.scan(start, end, fn)
	return nil
}

// Commit makes the transaction durable and releases the lock.
func (tx *Tx) Commit() {
	if tx.done {
		panic("litedb: commit on finished tx")
	}
	db := tx.db
	// Fold root/frontier changes into the catalog page so they
	// persist with the same atomic unit as the data.
	changed := db.be.pageCount() != tx.pagesAt
	for name, t := range db.tables {
		if tx.roots[name] != t.root || len(tx.roots) != len(db.tables) {
			changed = true
		}
	}
	if changed {
		db.writeCatalog()
	}
	db.be.commit()
	db.Commits++
	tx.done = true
	db.inTx = false
	db.mu.Unlock()
}

// Rollback abandons the transaction and releases the lock.
func (tx *Tx) Rollback() {
	if tx.done {
		panic("litedb: rollback on finished tx")
	}
	db := tx.db
	db.be.rollback()
	db.be.setPageCount(tx.pagesAt)
	// Restore in-memory roots and drop tables created by this tx.
	for name := range db.tables {
		if root, ok := tx.roots[name]; ok {
			db.tables[name].root = root
		} else {
			delete(db.tables, name)
		}
	}
	tx.done = true
	db.inTx = false
	db.mu.Unlock()
}
