package litedb

import (
	"encoding/binary"
	"fmt"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/fs"
	"memsnap/internal/sim"
	"memsnap/internal/wal"
)

// CheckpointThreshold is the default WAL size that triggers a
// checkpoint in WAL mode (SQLite's default of ~4 MiB of log data,
// §7.1).
const CheckpointThreshold = 4 << 20

// DefaultCacheSize bounds the page cache in pages (SQLite defaults to
// ~2000 pages).
const DefaultCacheSize = 2000

// walPager is the baseline backend: a memory-mapped database file
// plus a write-ahead log. Transactions buffer dirty pages; commit
// appends them to the WAL and fsyncs; checkpoints copy WAL frames
// back into the DB file.
type walPager struct {
	clk   *sim.Clock
	fsys  *fs.FS
	costs *sim.CostModel
	db    *fs.File
	log   *wal.WAL

	numPages uint32
	// frames is the page cache: the latest committed image of hot
	// pages (the WAL doubles as a cache, bounded like SQLite's).
	frames map[uint32][]byte
	// walOffsets locates each page's latest committed frame in the
	// WAL file, for read-through after eviction.
	walOffsets map[uint32]int64
	// txDirty collects the current transaction's page images.
	txDirty map[uint32][]byte

	// cacheLimit bounds frames (pages); evictions force read()
	// syscalls on the next access, as in SQLite's bounded page cache.
	cacheLimit          int
	checkpointThreshold int64
	checkpoints         int64
}

// costsScanPerEntry returns the per-resident-page flush scan cost.
func (p *walPager) costsScanPerEntry() time.Duration {
	return p.costs.PageTableScanPerEntry
}

func newWALPager(fsys *fs.FS, clk *sim.Clock, name string) *walPager {
	p := &walPager{
		clk:                 clk,
		fsys:                fsys,
		costs:               sim.DefaultCosts(),
		db:                  fsys.Create(clk, name),
		log:                 wal.Create(fsys, clk, name+"-wal"),
		frames:              make(map[uint32][]byte),
		walOffsets:          make(map[uint32]int64),
		txDirty:             make(map[uint32][]byte),
		cacheLimit:          DefaultCacheSize,
		checkpointThreshold: CheckpointThreshold,
	}
	return p
}

// openWALPager reopens an existing database, replaying the WAL.
func openWALPager(fsys *fs.FS, clk *sim.Clock, name string) (*walPager, error) {
	db, err := fsys.Open(clk, name)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(fsys, clk, name+"-wal")
	if err != nil {
		return nil, err
	}
	p := &walPager{
		clk:                 clk,
		fsys:                fsys,
		costs:               sim.DefaultCosts(),
		db:                  db,
		log:                 log,
		frames:              make(map[uint32][]byte),
		walOffsets:          make(map[uint32]int64),
		txDirty:             make(map[uint32][]byte),
		cacheLimit:          DefaultCacheSize,
		checkpointThreshold: CheckpointThreshold,
	}
	p.numPages = uint32(db.Size() / PageSize)
	// Replay committed WAL frames over the database image. Offsets
	// are reconstructed from the record framing (12-byte header).
	var walOff int64
	err = log.Replay(clk, func(rec []byte) error {
		if len(rec) != 4+PageSize {
			return fmt.Errorf("litedb: bad WAL frame size %d", len(rec))
		}
		pageNo := binary.LittleEndian.Uint32(rec)
		img := append([]byte(nil), rec[4:]...)
		p.frames[pageNo] = img
		p.walOffsets[pageNo] = walOff + 12 + 4
		walOff += 12 + int64(len(rec))
		if pageNo >= p.numPages {
			p.numPages = pageNo + 1
		}
		p.evict()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (p *walPager) page(pageNo uint32) []byte {
	if img, ok := p.txDirty[pageNo]; ok {
		return img
	}
	if img, ok := p.frames[pageNo]; ok {
		return img
	}
	// Cache miss: the page's latest image is in the WAL (if committed
	// there since the last checkpoint) or in the database file.
	buf := make([]byte, PageSize)
	if off, ok := p.walOffsets[pageNo]; ok {
		p.log.File().Read(p.clk, off, buf)
	} else {
		p.db.Read(p.clk, int64(pageNo)*PageSize, buf)
	}
	p.frames[pageNo] = buf
	p.evict()
	return buf
}

// evict drops arbitrary clean cached pages above the cache limit
// (they remain readable from the WAL or DB file).
func (p *walPager) evict() {
	for pageNo := range p.frames {
		if len(p.frames) <= p.cacheLimit {
			return
		}
		if _, dirty := p.txDirty[pageNo]; dirty {
			continue
		}
		delete(p.frames, pageNo)
	}
}

func (p *walPager) pageForWrite(pageNo uint32) []byte {
	if img, ok := p.txDirty[pageNo]; ok {
		return img
	}
	img := append([]byte(nil), p.page(pageNo)...)
	p.txDirty[pageNo] = img
	return img
}

func (p *walPager) allocPage() uint32 {
	pageNo := p.numPages
	p.numPages++
	img := make([]byte, PageSize)
	p.txDirty[pageNo] = img
	return pageNo
}

func (p *walPager) pageCount() uint32 { return p.numPages }

// commit appends the transaction's dirty pages to the WAL, fsyncs it,
// then checkpoints if the log is large enough.
//
// SQLite memory-maps the WAL and database; flushing a mapped file
// scans the mapping's resident pages, so commit cost grows with the
// cached dataset and not just the dirty set — the mechanism behind
// the baseline's degradation on large databases (Figure 5).
func (p *walPager) commit() {
	p.clk.Advance(time.Duration(len(p.frames)) * p.costsScanPerEntry())
	for pageNo, img := range p.txDirty {
		rec := make([]byte, 4+PageSize)
		binary.LittleEndian.PutUint32(rec, pageNo)
		copy(rec[4:], img)
		off := p.log.Append(p.clk, rec)
		p.walOffsets[pageNo] = off + 12 + 4
		p.frames[pageNo] = img
	}
	p.txDirty = make(map[uint32][]byte)
	p.log.Sync(p.clk)
	p.evict()
	if p.log.Size() >= p.checkpointThreshold {
		p.checkpoint()
	}
}

// rollback discards the transaction's buffered pages.
func (p *walPager) rollback() {
	p.txDirty = make(map[uint32][]byte)
	// Pages allocated by the aborted tx stay allocated (harmless
	// leak, as in real systems until vacuum).
}

// checkpoint copies WAL frames into the database file, syncs it (an
// msync, as the DB file is memory mapped), and truncates the log.
// Frames evicted from the cache are read back from the WAL file
// first — checkpointing flushes the log, not just the cache.
func (p *walPager) checkpoint() {
	for pageNo, off := range p.walOffsets {
		img, ok := p.frames[pageNo]
		if !ok {
			img = make([]byte, PageSize)
			p.log.File().Read(p.clk, off, img)
		}
		p.db.Write(p.clk, int64(pageNo)*PageSize, img)
	}
	p.db.Msync(p.clk)
	p.log.Reset(p.clk)
	p.log.Sync(p.clk)
	p.walOffsets = make(map[uint32]int64)
	p.checkpoints++
}

// memsnapPager is the MemSnap plugin backend: database pages live
// directly in a persistent region; commit is one uCheckpoint.
type memsnapPager struct {
	ctx    *core.Context
	region *core.Region

	numPages uint32
	maxPages uint32
	dirty    map[uint32]bool
}

func newMemsnapPager(ctx *core.Context, region *core.Region) *memsnapPager {
	return &memsnapPager{
		ctx:      ctx,
		region:   region,
		maxPages: uint32(region.Len() / PageSize),
		dirty:    make(map[uint32]bool),
	}
}

func (p *memsnapPager) page(pageNo uint32) []byte {
	return p.ctx.PageForRead(p.region, int64(pageNo)*PageSize)
}

func (p *memsnapPager) pageForWrite(pageNo uint32) []byte {
	p.dirty[pageNo] = true
	return p.ctx.PageForWrite(p.region, int64(pageNo)*PageSize)
}

func (p *memsnapPager) allocPage() uint32 {
	if p.numPages >= p.maxPages {
		panic(fmt.Sprintf("litedb: region full (%d pages)", p.maxPages))
	}
	pageNo := p.numPages
	p.numPages++
	return pageNo
}

func (p *memsnapPager) pageCount() uint32 { return p.numPages }

// commit persists the calling thread's dirty set as one uCheckpoint.
func (p *memsnapPager) commit() {
	p.dirty = make(map[uint32]bool)
	if _, err := p.ctx.Persist(p.region, core.MSSync); err != nil {
		panic(fmt.Sprintf("litedb: persist: %v", err))
	}
}

// rollback restores dirtied pages from the last durable epoch, then
// drops the (now meaningless) dirty tracking state.
func (p *memsnapPager) rollback() {
	for pageNo := range p.dirty {
		img := p.ctx.PageForWrite(p.region, int64(pageNo)*PageSize)
		done, err := p.region.Object().ReadBlock(p.ctx.Clock().Now(), int64(pageNo), img)
		if err != nil {
			panic(fmt.Sprintf("litedb: rollback: %v", err))
		}
		p.ctx.Clock().AdvanceTo(done)
	}
	p.dirty = make(map[uint32]bool)
	// Drop the restored pages from the dirty set so they are not
	// persisted by the next commit.
	p.ctx.Thread().TakeDirty(p.region.Mapping())
}
