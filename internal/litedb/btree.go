// Package litedb is the reproduction's SQLite: an embedded,
// single-writer, B+tree relational storage engine with two
// interchangeable persistence backends —
//
//   - WAL mode (the baseline): database pages live in a memory-mapped
//     file; committed transactions append dirtied pages to a
//     write-ahead log and fsync it; when the WAL exceeds the
//     checkpoint threshold its frames are copied back into the
//     database file (SQLite's WAL-and-checkpoint design, §7.1).
//   - MemSnap mode (the paper's plugin): database pages live in a
//     MemSnap region; commit is a single msnap_persist uCheckpoint.
//     No WAL, no checkpoints.
//
// The B+tree, catalog, lock manager and transaction layer are shared
// between modes, mirroring how the paper's plugin swaps only the
// storage engine's persistence calls.
package litedb

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// PageSize is the database page size (configured to 4 KiB to match
// MemSnap's tracking granularity, as §7.1 prescribes).
const PageSize = 4096

// Page layout constants.
const (
	pageTypeLeaf     = 1
	pageTypeInterior = 2

	hdrType     = 0 // u8
	hdrNCells   = 1 // u16
	hdrFreeOff  = 3 // u16: start of the cell content area
	hdrRightPtr = 5 // u32: rightmost child (interior) / next leaf
	hdrSize     = 9
	ptrSize     = 2 // cell pointer array entry
)

// maxPayload bounds key+value so a page always fits at least two
// cells.
const maxPayload = (PageSize - hdrSize - 2*ptrSize - 16) / 2

// pager is what the B+tree needs from a persistence backend.
type pager interface {
	// page returns a read-only view of a page.
	page(pageNo uint32) []byte
	// pageForWrite returns a writable view, marking it dirty in the
	// current transaction.
	pageForWrite(pageNo uint32) []byte
	// allocPage returns a fresh zeroed page number.
	allocPage() uint32
}

// initPage formats a raw page.
func initPage(p []byte, pageType byte) {
	for i := range p {
		p[i] = 0
	}
	p[hdrType] = pageType
	putU16(p, hdrNCells, 0)
	putU16(p, hdrFreeOff, PageSize)
	putU32(p, hdrRightPtr, 0)
}

func putU16(p []byte, off int, v uint16) { binary.LittleEndian.PutUint16(p[off:], v) }
func getU16(p []byte, off int) uint16    { return binary.LittleEndian.Uint16(p[off:]) }
func putU32(p []byte, off int, v uint32) { binary.LittleEndian.PutUint32(p[off:], v) }
func getU32(p []byte, off int) uint32    { return binary.LittleEndian.Uint32(p[off:]) }

// cellPtr returns the content offset of cell i.
func cellPtr(p []byte, i int) int { return int(getU16(p, hdrSize+i*ptrSize)) }

func setCellPtr(p []byte, i int, off int) { putU16(p, hdrSize+i*ptrSize, uint16(off)) }

// leafCell decodes cell i of a leaf page.
func leafCell(p []byte, i int) (key, val []byte) {
	off := cellPtr(p, i)
	kl := int(getU16(p, off))
	vl := int(getU16(p, off+2))
	return p[off+4 : off+4+kl], p[off+4+kl : off+4+kl+vl]
}

// interiorCell decodes cell i of an interior page.
func interiorCell(p []byte, i int) (key []byte, child uint32) {
	off := cellPtr(p, i)
	kl := int(getU16(p, off))
	child = getU32(p, off+2)
	return p[off+6 : off+6+kl], child
}

func leafCellSize(key, val []byte) int { return 4 + len(key) + len(val) }
func interiorCellSize(key []byte) int  { return 6 + len(key) }
func freeSpace(p []byte) int {
	return int(getU16(p, hdrFreeOff)) - hdrSize - int(getU16(p, hdrNCells))*ptrSize
}
func nCells(p []byte) int { return int(getU16(p, hdrNCells)) }

// findCell binary-searches for key; returns (index, exact).
func findCell(p []byte, key []byte, interior bool) (int, bool) {
	lo, hi := 0, nCells(p)
	for lo < hi {
		mid := (lo + hi) / 2
		var k []byte
		if interior {
			k, _ = interiorCell(p, mid)
		} else {
			k, _ = leafCell(p, mid)
		}
		switch bytes.Compare(key, k) {
		case 0:
			return mid, true
		case -1:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// insertLeafCell writes a cell into a leaf page at index idx. Caller
// guarantees space.
func insertLeafCell(p []byte, idx int, key, val []byte) {
	size := leafCellSize(key, val)
	off := int(getU16(p, hdrFreeOff)) - size
	putU16(p, off, uint16(len(key)))
	putU16(p, off+2, uint16(len(val)))
	copy(p[off+4:], key)
	copy(p[off+4+len(key):], val)
	n := nCells(p)
	copy(p[hdrSize+(idx+1)*ptrSize:], p[hdrSize+idx*ptrSize:hdrSize+n*ptrSize])
	setCellPtr(p, idx, off)
	putU16(p, hdrNCells, uint16(n+1))
	putU16(p, hdrFreeOff, uint16(off))
}

func insertInteriorCell(p []byte, idx int, key []byte, child uint32) {
	size := interiorCellSize(key)
	off := int(getU16(p, hdrFreeOff)) - size
	putU16(p, off, uint16(len(key)))
	putU32(p, off+2, child)
	copy(p[off+6:], key)
	n := nCells(p)
	copy(p[hdrSize+(idx+1)*ptrSize:], p[hdrSize+idx*ptrSize:hdrSize+n*ptrSize])
	setCellPtr(p, idx, off)
	putU16(p, hdrNCells, uint16(n+1))
	putU16(p, hdrFreeOff, uint16(off))
}

// removeCell drops cell idx (content space is reclaimed by compact).
func removeCell(p []byte, idx int) {
	n := nCells(p)
	copy(p[hdrSize+idx*ptrSize:], p[hdrSize+(idx+1)*ptrSize:hdrSize+n*ptrSize])
	putU16(p, hdrNCells, uint16(n-1))
}

// compact rewrites a page dropping dead cell content.
func compact(p []byte) {
	interior := p[hdrType] == pageTypeInterior
	n := nCells(p)
	type cell struct {
		key, val []byte
		child    uint32
	}
	cells := make([]cell, n)
	for i := 0; i < n; i++ {
		if interior {
			k, c := interiorCell(p, i)
			cells[i] = cell{key: append([]byte(nil), k...), child: c}
		} else {
			k, v := leafCell(p, i)
			cells[i] = cell{key: append([]byte(nil), k...), val: append([]byte(nil), v...)}
		}
	}
	right := getU32(p, hdrRightPtr)
	initPage(p, p[hdrType])
	putU32(p, hdrRightPtr, right)
	for i, c := range cells {
		if interior {
			insertInteriorCell(p, i, c.key, c.child)
		} else {
			insertLeafCell(p, i, c.key, c.val)
		}
	}
}

// btree is one table's B+tree rooted at a page.
type btree struct {
	pg   pager
	root uint32
}

// get returns the value for key, or (nil, false).
func (t *btree) get(key []byte) ([]byte, bool) {
	pageNo := t.root
	for {
		p := t.pg.page(pageNo)
		if p[hdrType] == pageTypeLeaf {
			idx, exact := findCell(p, key, false)
			if !exact {
				return nil, false
			}
			_, v := leafCell(p, idx)
			return append([]byte(nil), v...), true
		}
		idx, exact := findCell(p, key, true)
		if exact {
			_, child := interiorCell(p, idx)
			pageNo = child
			continue
		}
		if idx < nCells(p) {
			_, child := interiorCell(p, idx)
			pageNo = child
		} else {
			pageNo = getU32(p, hdrRightPtr)
		}
	}
}

// put inserts or replaces key. Returns an error for oversized
// payloads.
func (t *btree) put(key, val []byte) error {
	if len(key)+len(val) > maxPayload {
		return fmt.Errorf("litedb: payload %d exceeds max %d", len(key)+len(val), maxPayload)
	}
	newRoot, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

// splitResult carries a promoted separator after a child split.
type splitResult struct {
	sep      []byte
	newRight uint32
}

// insert descends into pageNo; returns the (possibly new) root.
func (t *btree) insert(rootNo uint32, key, val []byte) (uint32, error) {
	split, err := t.insertInto(rootNo, key, val)
	if err != nil {
		return 0, err
	}
	if split == nil {
		return rootNo, nil
	}
	// Root split: new interior root.
	newRootNo := t.pg.allocPage()
	p := t.pg.pageForWrite(newRootNo)
	initPage(p, pageTypeInterior)
	insertInteriorCell(p, 0, split.sep, rootNo)
	putU32(p, hdrRightPtr, split.newRight)
	return newRootNo, nil
}

func (t *btree) insertInto(pageNo uint32, key, val []byte) (*splitResult, error) {
	p := t.pg.page(pageNo)
	if p[hdrType] == pageTypeLeaf {
		return t.insertLeaf(pageNo, key, val)
	}

	idx, exact := findCell(p, key, true)
	var childNo uint32
	if exact || idx < nCells(p) {
		_, childNo = interiorCell(p, idx)
	} else {
		childNo = getU32(p, hdrRightPtr)
	}
	split, err := t.insertInto(childNo, key, val)
	if err != nil || split == nil {
		return nil, err
	}

	// Child split: insert the separator here.
	wp := t.pg.pageForWrite(pageNo)
	if freeSpace(wp) < interiorCellSize(split.sep)+ptrSize {
		compact(wp)
	}
	if freeSpace(wp) < interiorCellSize(split.sep)+ptrSize {
		return t.splitInterior(pageNo, split)
	}
	t.addSeparator(wp, split)
	return nil, nil
}

// addSeparator inserts split.sep into interior page wp.
func (t *btree) addSeparator(wp []byte, split *splitResult) {
	idx, _ := findCell(wp, split.sep, true)
	if idx < nCells(wp) {
		// The child that split was cells[idx].child; its cell now
		// routes keys <= sep to the old child; the new right sibling
		// takes over the old cell's position via a new cell.
		_, oldChild := interiorCell(wp, idx)
		t.replaceChild(wp, idx, split.newRight)
		insertInteriorCell(wp, idx, split.sep, oldChild)
	} else {
		// Split of the rightmost child.
		oldRight := getU32(wp, hdrRightPtr)
		insertInteriorCell(wp, idx, split.sep, oldRight)
		putU32(wp, hdrRightPtr, split.newRight)
	}
}

// replaceChild rewrites the child pointer of cell idx.
func (t *btree) replaceChild(p []byte, idx int, child uint32) {
	off := cellPtr(p, idx)
	putU32(p, off+2, child)
}

func (t *btree) insertLeaf(pageNo uint32, key, val []byte) (*splitResult, error) {
	p := t.pg.pageForWrite(pageNo)
	idx, exact := findCell(p, key, false)
	if exact {
		_, old := leafCell(p, idx)
		if len(old) == len(val) {
			// In-place update.
			off := cellPtr(p, idx)
			kl := int(getU16(p, off))
			copy(p[off+4+kl:], val)
			return nil, nil
		}
		removeCell(p, idx)
	}
	need := leafCellSize(key, val) + ptrSize
	if freeSpace(p) < need {
		compact(p)
	}
	if freeSpace(p) >= need {
		idx, _ = findCell(p, key, false)
		insertLeafCell(p, idx, key, val)
		return nil, nil
	}
	return t.splitLeaf(pageNo, key, val)
}

// splitLeaf splits a full leaf and inserts the pending key into the
// proper half. Returns the separator for the parent.
func (t *btree) splitLeaf(pageNo uint32, key, val []byte) (*splitResult, error) {
	p := t.pg.pageForWrite(pageNo)
	n := nCells(p)
	type kv struct{ k, v []byte }
	cells := make([]kv, 0, n+1)
	for i := 0; i < n; i++ {
		k, v := leafCell(p, i)
		cells = append(cells, kv{append([]byte(nil), k...), append([]byte(nil), v...)})
	}
	idx, _ := findCell(p, key, false)
	cells = append(cells[:idx], append([]kv{{append([]byte(nil), key...), append([]byte(nil), val...)}}, cells[idx:]...)...)

	mid := len(cells) / 2
	rightNo := t.pg.allocPage()
	right := t.pg.pageForWrite(rightNo)
	initPage(right, pageTypeLeaf)
	// Leaf chain: new right takes over p's next pointer.
	putU32(right, hdrRightPtr, getU32(p, hdrRightPtr))

	oldNext := getU32(p, hdrRightPtr)
	_ = oldNext
	initPage(p, pageTypeLeaf)
	putU32(p, hdrRightPtr, rightNo)
	for i, c := range cells[:mid] {
		insertLeafCell(p, i, c.k, c.v)
	}
	for i, c := range cells[mid:] {
		insertLeafCell(right, i, c.k, c.v)
	}
	return &splitResult{sep: cells[mid-1].k, newRight: rightNo}, nil
}

// splitInterior splits a full interior page that must absorb `split`.
func (t *btree) splitInterior(pageNo uint32, pending *splitResult) (*splitResult, error) {
	p := t.pg.pageForWrite(pageNo)
	n := nCells(p)
	type ic struct {
		k     []byte
		child uint32
	}
	cells := make([]ic, 0, n+1)
	for i := 0; i < n; i++ {
		k, c := interiorCell(p, i)
		cells = append(cells, ic{append([]byte(nil), k...), c})
	}
	rightmost := getU32(p, hdrRightPtr)

	// Merge the pending separator into the cell list.
	idx := 0
	for idx < len(cells) && bytes.Compare(pending.sep, cells[idx].k) > 0 {
		idx++
	}
	if idx < len(cells) {
		oldChild := cells[idx].child
		cells[idx].child = pending.newRight
		cells = append(cells[:idx], append([]ic{{pending.sep, oldChild}}, cells[idx:]...)...)
	} else {
		cells = append(cells, ic{pending.sep, rightmost})
		rightmost = pending.newRight
	}

	mid := len(cells) / 2
	sep := cells[mid]

	rightNo := t.pg.allocPage()
	right := t.pg.pageForWrite(rightNo)
	initPage(right, pageTypeInterior)
	for i, c := range cells[mid+1:] {
		insertInteriorCell(right, i, c.k, c.child)
	}
	putU32(right, hdrRightPtr, rightmost)

	initPage(p, pageTypeInterior)
	for i, c := range cells[:mid] {
		insertInteriorCell(p, i, c.k, c.child)
	}
	putU32(p, hdrRightPtr, sep.child)

	return &splitResult{sep: sep.k, newRight: rightNo}, nil
}

// delete removes key. Pages are not rebalanced (like SQLite, space is
// reused by later inserts after compaction).
func (t *btree) delete(key []byte) bool {
	pageNo := t.root
	for {
		p := t.pg.page(pageNo)
		if p[hdrType] == pageTypeLeaf {
			idx, exact := findCell(p, key, false)
			if !exact {
				return false
			}
			wp := t.pg.pageForWrite(pageNo)
			removeCell(wp, idx)
			return true
		}
		idx, exact := findCell(p, key, true)
		if exact || idx < nCells(p) {
			_, child := interiorCell(p, idx)
			pageNo = child
		} else {
			pageNo = getU32(p, hdrRightPtr)
		}
	}
}

// scan visits keys in [start, end) in order; fn returns false to
// stop. A nil end scans to the last key.
func (t *btree) scan(start, end []byte, fn func(k, v []byte) bool) {
	// Descend to the leaf containing start.
	pageNo := t.root
	for {
		p := t.pg.page(pageNo)
		if p[hdrType] == pageTypeLeaf {
			break
		}
		idx, exact := findCell(p, start, true)
		if exact || idx < nCells(p) {
			_, child := interiorCell(p, idx)
			pageNo = child
		} else {
			pageNo = getU32(p, hdrRightPtr)
		}
	}
	for pageNo != 0 {
		p := t.pg.page(pageNo)
		n := nCells(p)
		idx, _ := findCell(p, start, false)
		for ; idx < n; idx++ {
			k, v := leafCell(p, idx)
			if end != nil && bytes.Compare(k, end) >= 0 {
				return
			}
			if !fn(k, v) {
				return
			}
		}
		pageNo = getU32(p, hdrRightPtr)
		start = nil
		if pageNo != 0 {
			start = []byte{} // continue from the first cell
		}
	}
}
