package litedb

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzBTreeInsertDelete drives the B+tree with an op stream decoded
// from the fuzz input and cross-checks every result against a map
// oracle, then verifies a full ordered scan. The decoder consumes
// four bytes per op:
//
//	byte 0 & 3: opcode (0 delete, 1 get, 2/3 put)
//	bytes 1-2:  key id (mod keySpace, so collisions and overwrites
//	            are common enough to exercise in-place update,
//	            remove+reinsert, and page compaction)
//	byte 3:     value length (mod 300: crosses the page-split
//	            threshold for realistic fills)
//
// Printable inputs work too ('0' deletes, '1' gets, '2'/'3' put),
// which keeps the committed seed corpus human-readable.
func FuzzBTreeInsertDelete(f *testing.F) {
	f.Add([]byte("2aa\x503ab\x602ac\x201aa\x000ab\x001ab\x00"))
	f.Add(bytes.Repeat([]byte("2km\xff"), 64))       // big values: force splits
	f.Add(bytes.Repeat([]byte("0aa\x001aa\x00"), 8)) // delete/get churn
	f.Add([]byte("3zz\x012zz\x000zz\x003zz\x12"))    // overwrite + delete + reinsert
	f.Fuzz(func(t *testing.T, data []byte) {
		tree := newTestTree()
		oracle := map[string][]byte{}
		for op := 0; len(data) >= 4; op++ {
			kind := data[0] & 3
			keyID := (int(data[1])<<8 | int(data[2])) % 2048
			vlen := int(data[3]) % 300
			data = data[4:]
			key := []byte(fmt.Sprintf("k%05d", keyID))

			switch kind {
			case 0: // delete
				_, want := oracle[string(key)]
				if got := tree.delete(key); got != want {
					t.Fatalf("op %d: delete(%s) = %v, oracle has %v", op, key, got, want)
				}
				delete(oracle, string(key))
			case 1: // get
				got, ok := tree.get(key)
				want, wok := oracle[string(key)]
				if ok != wok || !bytes.Equal(got, want) {
					t.Fatalf("op %d: get(%s) = (%d bytes, %v), oracle (%d bytes, %v)",
						op, key, len(got), ok, len(want), wok)
				}
			default: // put
				val := bytes.Repeat([]byte{byte(keyID)}, vlen)
				if err := tree.put(key, val); err != nil {
					t.Fatalf("op %d: put(%s, %d bytes): %v", op, key, vlen, err)
				}
				oracle[string(key)] = val
			}
		}

		// Every surviving key is readable and the full scan is ordered
		// and exactly matches the oracle.
		for k, want := range oracle {
			got, ok := tree.get([]byte(k))
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("final get(%s) = (%d bytes, %v), want %d bytes", k, len(got), ok, len(want))
			}
		}
		var prev []byte
		count := 0
		tree.scan(nil, nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("scan out of order: %s after %s", k, prev)
			}
			want, ok := oracle[string(k)]
			if !ok || !bytes.Equal(v, want) {
				t.Fatalf("scan saw %s with %d bytes; oracle has (%d bytes, %v)", k, len(v), len(want), ok)
			}
			prev = append(prev[:0], k...)
			count++
			return true
		})
		if count != len(oracle) {
			t.Fatalf("scan visited %d keys, oracle has %d", count, len(oracle))
		}
	})
}
