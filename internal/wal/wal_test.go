package wal

import (
	"bytes"
	"testing"

	"memsnap/internal/disk"
	"memsnap/internal/fs"
	"memsnap/internal/sim"
)

func newFS() *fs.FS {
	costs := sim.DefaultCosts()
	return fs.New(costs, disk.NewArray(costs, 2, 128<<20), fs.FFS)
}

func TestAppendReplay(t *testing.T) {
	fsys := newFS()
	clk := sim.NewClock()
	w := Create(fsys, clk, "wal")
	recs := [][]byte{[]byte("one"), []byte("twotwo"), []byte("three33")}
	for _, r := range recs {
		w.Append(clk, r)
	}
	w.Sync(clk)
	if w.Records() != 3 {
		t.Fatalf("records = %d", w.Records())
	}

	w2, err := Open(fsys, clk, "wal")
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	if err := w2.Replay(clk, func(r []byte) error {
		got = append(got, append([]byte(nil), r...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records", len(got))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d = %q", i, got[i])
		}
	}
}

func TestAppendAfterOpenContinues(t *testing.T) {
	fsys := newFS()
	clk := sim.NewClock()
	w := Create(fsys, clk, "wal")
	w.Append(clk, []byte("first"))
	w.Sync(clk)
	w2, _ := Open(fsys, clk, "wal")
	w2.Append(clk, []byte("second"))
	var got []string
	w2.Replay(clk, func(r []byte) error { got = append(got, string(r)); return nil })
	if len(got) != 2 || got[1] != "second" {
		t.Fatalf("records after reopen-append: %v", got)
	}
}

func TestReplayStopsAtTornRecord(t *testing.T) {
	costs := sim.DefaultCosts()
	arr := disk.NewArray(costs, 2, 128<<20)
	fsys := fs.New(costs, arr, fs.FFS)
	clk := sim.NewClock()
	w := Create(fsys, clk, "wal")
	w.Append(clk, []byte("durable-record"))
	w.Sync(clk)
	// A record written but never synced, then "crashed": simulate the
	// torn tail by writing garbage where the checksum would be.
	off := w.Append(clk, []byte("torn-record!"))
	file, _ := fsys.Open(clk, "wal")
	file.Write(clk, off+4, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0})
	w.Sync(clk)

	w2, _ := Open(fsys, clk, "wal")
	var got []string
	w2.Replay(clk, func(r []byte) error { got = append(got, string(r)); return nil })
	if len(got) != 1 || got[0] != "durable-record" {
		t.Fatalf("replay past torn record: %v", got)
	}
}

func TestReset(t *testing.T) {
	fsys := newFS()
	clk := sim.NewClock()
	w := Create(fsys, clk, "wal")
	w.Append(clk, []byte("a"))
	w.Sync(clk)
	w.Reset(clk)
	if w.Size() != 0 || w.Records() != 0 {
		t.Fatalf("after reset: size=%d records=%d", w.Size(), w.Records())
	}
	var got int
	w.Replay(clk, func([]byte) error { got++; return nil })
	if got != 0 {
		t.Fatal("records survived reset")
	}
}

func TestSizeGrows(t *testing.T) {
	fsys := newFS()
	clk := sim.NewClock()
	w := Create(fsys, clk, "wal")
	w.Append(clk, make([]byte, 1000))
	if w.Size() != 1012 {
		t.Fatalf("size = %d", w.Size())
	}
}
