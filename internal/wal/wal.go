// Package wal implements the write-ahead log used by the baseline
// database configurations: length-prefixed, checksummed records
// appended to a file, made durable with fsync, and replayable after a
// crash up to the first invalid record.
//
// MemSnap's thesis is that this entire mechanism — and the double
// write it implies — can be subsumed by uCheckpoints; the baselines
// keep it so the comparison is faithful.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"memsnap/internal/fs"
	"memsnap/internal/sim"
)

const headerSize = 12 // length (4) + checksum (8)

// WAL is one write-ahead log file.
type WAL struct {
	file   *fs.File
	offset int64
	count  int64
}

// Create makes a fresh log at path.
func Create(fsys *fs.FS, clk *sim.Clock, path string) *WAL {
	return &WAL{file: fsys.Create(clk, path)}
}

// Open opens an existing log and positions the append offset after
// the last valid record.
func Open(fsys *fs.FS, clk *sim.Clock, path string) (*WAL, error) {
	file, err := fsys.Open(clk, path)
	if err != nil {
		return nil, err
	}
	w := &WAL{file: file}
	// Scan to the end of the valid prefix.
	err = w.replay(clk, func([]byte) error { return nil })
	if err != nil {
		return nil, err
	}
	return w, nil
}

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Append adds one record to the log (buffered; call Sync for
// durability). Returns the record's offset.
func (w *WAL) Append(clk *sim.Clock, rec []byte) int64 {
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(rec)))
	binary.LittleEndian.PutUint64(hdr[4:], checksum(rec))
	off := w.offset
	buf := append(hdr, rec...)
	w.file.Write(clk, off, buf)
	w.offset += int64(len(buf))
	w.count++
	return off
}

// Sync makes all appended records durable.
func (w *WAL) Sync(clk *sim.Clock) {
	w.file.Fsync(clk)
}

// Size returns the byte size of the log.
func (w *WAL) Size() int64 { return w.offset }

// File exposes the backing file (callers that cache record offsets
// read payloads back without a full replay).
func (w *WAL) File() *fs.File { return w.file }

// Records returns how many records have been appended since the last
// Reset (or open).
func (w *WAL) Records() int64 { return w.count }

// Reset truncates the log after a checkpoint has captured its
// contents.
func (w *WAL) Reset(clk *sim.Clock) {
	w.file.Truncate(clk, 0)
	w.offset = 0
	w.count = 0
}

// Replay invokes fn for every valid record in order, stopping at the
// first corrupt or truncated record (which a crash may legitimately
// produce). The append offset is positioned after the valid prefix.
func (w *WAL) Replay(clk *sim.Clock, fn func(rec []byte) error) error {
	return w.replay(clk, fn)
}

func (w *WAL) replay(clk *sim.Clock, fn func(rec []byte) error) error {
	size := w.file.Size()
	var off int64
	var count int64
	for off+headerSize <= size {
		hdr := make([]byte, headerSize)
		w.file.Read(clk, off, hdr)
		n := int64(binary.LittleEndian.Uint32(hdr[0:]))
		sum := binary.LittleEndian.Uint64(hdr[4:])
		if n == 0 || off+headerSize+n > size {
			break // truncated tail
		}
		rec := make([]byte, n)
		w.file.Read(clk, off+headerSize, rec)
		if checksum(rec) != sum {
			break // torn record
		}
		if err := fn(rec); err != nil {
			return fmt.Errorf("wal: replay callback: %w", err)
		}
		off += headerSize + n
		count++
	}
	w.offset = off
	w.count = count
	return nil
}
