// Package pool provides sync.Pool-backed object pools for the persist
// hot path: fixed-size page buffers and generic scratch slices.
//
// Both pools hand out and take back pointer-shaped handles, never raw
// slice headers, so a steady-state Get/Put cycle performs no interface
// boxing and therefore no heap allocation. Counters track every
// Get/Put/miss, giving tests a leak-check hook: after a balanced
// workload InUse must return to its pre-workload value.
//
// Releasing is always optional for correctness — an unreleased buffer
// is simply collected by the GC — but a *double* release corrupts the
// pool (two owners of one buffer), so ownership-transferring APIs in
// the layers above nil out their references when they hand a buffer
// on.
package pool

import (
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of a pool's traffic.
type Stats struct {
	// Gets counts buffers handed out; Puts counts buffers returned.
	Gets, Puts int64
	// Misses counts Gets that had to allocate because the pool was
	// empty (cold start, or the GC flushed the sync.Pool).
	Misses int64
}

// InUse is the number of buffers currently held by callers.
func (s Stats) InUse() int64 { return s.Gets - s.Puts }

type counters struct {
	gets, puts, misses atomic.Int64
}

func (c *counters) stats() Stats {
	return Stats{Gets: c.gets.Load(), Puts: c.puts.Load(), Misses: c.misses.Load()}
}

// Page is a pooled fixed-size buffer. Callers use Data and return the
// handle with Release; the handle must not be used after Release.
type Page struct {
	Data  []byte
	owner *PagePool
}

// Release returns the page to its pool. Safe on a nil handle.
func (pg *Page) Release() {
	if pg == nil || pg.owner == nil {
		return
	}
	pg.owner.put(pg)
}

// PagePool is a sync.Pool of fixed-size page buffers.
type PagePool struct {
	size int
	p    sync.Pool
	c    counters
}

// NewPagePool returns a pool of size-byte pages.
func NewPagePool(size int) *PagePool {
	pp := &PagePool{size: size}
	pp.p.New = func() any {
		pp.c.misses.Add(1)
		return &Page{Data: make([]byte, size), owner: pp}
	}
	return pp
}

// Get returns a page of the pool's size. Contents are undefined — the
// caller overwrites them.
func (pp *PagePool) Get() *Page {
	pp.c.gets.Add(1)
	return pp.p.Get().(*Page)
}

func (pp *PagePool) put(pg *Page) {
	pp.c.puts.Add(1)
	pp.p.Put(pg)
}

// Size returns the page size in bytes.
func (pp *PagePool) Size() int { return pp.size }

// Stats snapshots the pool counters.
func (pp *PagePool) Stats() Stats { return pp.c.stats() }

// SlicePool recycles []T scratch buffers (length 0, capacity
// preserved). Internally slices travel inside pooled *item wrappers:
// a full wrapper carries a slice, an empty one waits to carry the
// next Put, so neither direction boxes a slice header.
type SlicePool[T any] struct {
	full  sync.Pool // *item[T] with s != nil
	empty sync.Pool // *item[T] with s == nil
	c     counters
}

type item[T any] struct{ s []T }

// NewSlicePool returns an empty slice pool.
func NewSlicePool[T any]() *SlicePool[T] { return &SlicePool[T]{} }

// Get returns a zero-length slice, freshly allocated with capHint
// capacity when the pool is empty.
func (p *SlicePool[T]) Get(capHint int) []T {
	p.c.gets.Add(1)
	if it, _ := p.full.Get().(*item[T]); it != nil {
		s := it.s
		it.s = nil
		p.empty.Put(it)
		return s
	}
	p.c.misses.Add(1)
	if capHint < 1 {
		capHint = 1
	}
	//lint:allow hotalloc pool miss grows the pool; steady state recycles
	return make([]T, 0, capHint)
}

// Put recycles s. Elements are zeroed first so the backing array does
// not retain references. Zero-capacity slices are dropped.
func (p *SlicePool[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	p.c.puts.Add(1)
	clear(s[:cap(s)])
	it, _ := p.empty.Get().(*item[T])
	if it == nil {
		//lint:allow hotalloc wrapper-item pool miss; items recycle in steady state
		it = &item[T]{}
	}
	it.s = s[:0]
	p.full.Put(it)
}

// Stats snapshots the pool counters.
func (p *SlicePool[T]) Stats() Stats { return p.c.stats() }
