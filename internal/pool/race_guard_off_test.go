//go:build !race

package pool

// raceEnabled reports whether the race detector is compiled in; the
// build-tagged twin of this file flips it. Allocation-count tests skip
// under -race, where the runtime's instrumentation allocates.
const raceEnabled = false
