package pool

import (
	"testing"
)

func TestPagePoolRecycles(t *testing.T) {
	pp := NewPagePool(4096)
	pg := pp.Get()
	if len(pg.Data) != 4096 {
		t.Fatalf("page len = %d", len(pg.Data))
	}
	pg.Data[0] = 0xAB
	pg.Release()
	st := pp.Stats()
	if st.Gets != 1 || st.Puts != 1 || st.InUse() != 0 {
		t.Fatalf("stats after balanced cycle: %+v", st)
	}
	// The released page comes back (same handle via the sync.Pool's
	// per-P cache in a single-goroutine test).
	pg2 := pp.Get()
	if len(pg2.Data) != 4096 {
		t.Fatalf("recycled page len = %d", len(pg2.Data))
	}
	pg2.Release()
	// sync.Pool randomly drops Puts under -race, so the recycled hit
	// is only observable in a normal build.
	if got := pp.Stats().Misses; !raceEnabled && got != 1 {
		t.Fatalf("misses = %d, want 1 (only the cold Get allocates)", got)
	}
}

func TestPagePoolNilRelease(t *testing.T) {
	var pg *Page
	pg.Release() // must not panic
	(&Page{Data: []byte{1}}).Release()
}

func TestSlicePoolRecyclesCapacity(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops Puts under -race; recycling is not observable")
	}
	p := NewSlicePool[int]()
	s := p.Get(4)
	s = append(s, 1, 2, 3, 4, 5, 6, 7, 8)
	c := cap(s)
	p.Put(s)
	s2 := p.Get(1)
	if len(s2) != 0 {
		t.Fatalf("recycled slice len = %d, want 0", len(s2))
	}
	if cap(s2) != c {
		t.Fatalf("recycled slice cap = %d, want %d", cap(s2), c)
	}
	st := p.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.InUse() != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSlicePoolClearsReferences(t *testing.T) {
	p := NewSlicePool[*int]()
	v := 7
	s := p.Get(2)
	s = append(s, &v)
	p.Put(s)
	s2 := p.Get(1)
	s2 = s2[:cap(s2)]
	for i, e := range s2 {
		if e != nil {
			t.Fatalf("element %d retained a reference after Put", i)
		}
	}
}

func TestSlicePoolDropsZeroCap(t *testing.T) {
	p := NewSlicePool[byte]()
	p.Put(nil)
	if st := p.Stats(); st.Puts != 0 {
		t.Fatalf("nil Put counted: %+v", st)
	}
}

// TestSteadyStateAllocFree pins the zero-allocation property the
// persist hot path depends on: warm Get/Put cycles allocate nothing.
func TestSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	pp := NewPagePool(4096)
	sp := NewSlicePool[int64]()
	// Warm both pools.
	pg := pp.Get()
	pg.Release()
	sp.Put(sp.Get(16))
	avg := testing.AllocsPerRun(100, func() {
		pg := pp.Get()
		pg.Data[0]++
		pg.Release()
		s := sp.Get(16)
		s = append(s, 1)
		sp.Put(s)
	})
	if avg != 0 {
		t.Fatalf("warm Get/Put cycle allocates %.1f/op, want 0", avg)
	}
}
