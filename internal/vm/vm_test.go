package vm

import (
	"bytes"
	"testing"
	"testing/quick"

	"memsnap/internal/mem"
	"memsnap/internal/sim"
	"memsnap/internal/tlb"
)

func newAS() *AddressSpace {
	costs := sim.DefaultCosts()
	return NewAddressSpace(costs, mem.New(costs), tlb.NewSystem(costs, 2))
}

func mapRegion(t *testing.T, as *AddressSpace, name string, start, pages uint64, tracked bool) *Mapping {
	t.Helper()
	m := &Mapping{Name: name, Start: start, Pages: pages, Tracked: tracked}
	if err := as.Map(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapRejectsOverlapAndMisalignment(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "a", 0x10000, 16, true)
	if err := as.Map(&Mapping{Name: "b", Start: 0x10000 + 8*PageSize, Pages: 16}); err == nil {
		t.Fatal("overlap accepted")
	}
	if err := as.Map(&Mapping{Name: "c", Start: 123, Pages: 1}); err == nil {
		t.Fatal("misaligned mapping accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 64, true)
	th := as.NewThread(nil, 0)
	data := []byte("hello fearless persistence")
	th.Write(0x100000+100, data)
	buf := make([]byte, len(data))
	th.Read(0x100000+100, buf)
	if !bytes.Equal(buf, data) {
		t.Fatalf("read back %q", buf)
	}
}

func TestWriteSpanningPages(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 4, true)
	th := as.NewThread(nil, 0)
	data := bytes.Repeat([]byte{0xCD}, 3*PageSize)
	th.Write(0x100000+PageSize/2, data)
	buf := make([]byte, len(data))
	th.Read(0x100000+PageSize/2, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-page write corrupted")
	}
	if th.DirtyLen() != 4 {
		t.Fatalf("dirty pages = %d, want 4", th.DirtyLen())
	}
}

func TestTrackingFaultOncePerPage(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 8, true)
	th := as.NewThread(nil, 0)
	for i := 0; i < 100; i++ {
		th.Write(0x100000, []byte{byte(i)})
	}
	if got := as.Stats().TrackingFaults; got != 1 {
		t.Fatalf("tracking faults = %d, want 1", got)
	}
	if th.DirtyLen() != 1 {
		t.Fatalf("dirty len = %d", th.DirtyLen())
	}
}

func TestReadDoesNotTrack(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 8, true)
	th := as.NewThread(nil, 0)
	buf := make([]byte, 64)
	th.Read(0x100000, buf)
	th.Read(0x100000+PageSize, buf)
	if th.DirtyLen() != 0 {
		t.Fatalf("reads produced dirty pages: %d", th.DirtyLen())
	}
	if as.Stats().TrackingFaults != 0 {
		t.Fatal("reads caused tracking faults")
	}
}

func TestPerThreadDirtySets(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 16, true)
	t1 := as.NewThread(nil, 0)
	t2 := as.NewThread(nil, 1)
	t1.Write(0x100000, []byte{1})
	t1.Write(0x100000+PageSize, []byte{1})
	t2.Write(0x100000+2*PageSize, []byte{2})
	if t1.DirtyLen() != 2 || t2.DirtyLen() != 1 {
		t.Fatalf("dirty sets: t1=%d t2=%d", t1.DirtyLen(), t2.DirtyLen())
	}
	recs := t1.TakeDirty(nil)
	if len(recs) != 2 {
		t.Fatalf("TakeDirty = %d records", len(recs))
	}
	if t1.DirtyLen() != 0 || t2.DirtyLen() != 1 {
		t.Fatal("TakeDirty disturbed the other thread's set")
	}
}

func TestTakeDirtyFiltersByMapping(t *testing.T) {
	as := newAS()
	ma := mapRegion(t, as, "a", 0x100000, 8, true)
	mb := mapRegion(t, as, "b", 0x200000, 8, true)
	th := as.NewThread(nil, 0)
	th.Write(0x100000, []byte{1})
	th.Write(0x200000, []byte{2})
	got := th.TakeDirty(ma)
	if len(got) != 1 || got[0].Mapping != ma {
		t.Fatalf("filtered TakeDirty = %+v", got)
	}
	if th.DirtyLen() != 1 {
		t.Fatal("record for b lost")
	}
	rest := th.TakeDirty(mb)
	if len(rest) != 1 || rest[0].Mapping != mb {
		t.Fatalf("remaining records = %+v", rest)
	}
}

func TestProtectionResetRestartsTracking(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 8, true)
	th := as.NewThread(nil, 0)
	th.Write(0x100000, []byte{1})
	recs := th.TakeDirty(nil)
	vpns := as.ResetProtectionsTrace(th.Clock(), recs)
	as.TLBs().Invalidate(th.Clock(), vpns)
	// Next write to the same page must fault and re-track.
	th.Write(0x100000, []byte{2})
	if th.DirtyLen() != 1 {
		t.Fatalf("retracking failed: dirty=%d", th.DirtyLen())
	}
	if as.Stats().TrackingFaults != 2 {
		t.Fatalf("tracking faults = %d, want 2", as.Stats().TrackingFaults)
	}
}

func TestInFlightCOW(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 8, true)
	th := as.NewThread(nil, 0)
	th.Write(0x100000, []byte("original"))
	recs := th.TakeDirty(nil)

	release := as.MarkCheckpointInProgress(recs)
	vpns := as.ResetProtectionsTrace(th.Clock(), recs)
	as.TLBs().Invalidate(th.Clock(), vpns)
	snaps := as.SnapshotPages(recs)

	// A concurrent write during the in-flight window must not disturb
	// the snapshot.
	th.Write(0x100000, []byte("MUTATED!"))
	if as.Stats().COWFaults != 1 {
		t.Fatalf("COW faults = %d, want 1", as.Stats().COWFaults)
	}
	if string(snaps[0][:8]) != "original" {
		t.Fatalf("snapshot disturbed: %q", snaps[0][:8])
	}
	// The writer sees its own update.
	buf := make([]byte, 8)
	th.Read(0x100000, buf)
	if string(buf) != "MUTATED!" {
		t.Fatalf("writer lost its update: %q", buf)
	}
	release()

	// After release, writes to the (new) frame go down the cheap
	// tracking path again.
	recs2 := th.TakeDirty(nil)
	if len(recs2) != 1 {
		t.Fatalf("COW write not retracked: %d records", len(recs2))
	}
	if recs2[0].Page == recs[0].Page {
		t.Fatal("COW did not duplicate the frame")
	}
}

func TestWriteWithoutCheckpointNoCOW(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 8, true)
	th := as.NewThread(nil, 0)
	th.Write(0x100000, []byte{1})
	th.Write(0x100000+PageSize, []byte{1})
	if as.Stats().COWFaults != 0 {
		t.Fatal("COW fault without checkpoint in progress")
	}
}

func TestUntrackedMappingWritesFreely(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "plain", 0x100000, 8, false)
	th := as.NewThread(nil, 0)
	th.Write(0x100000, []byte{1})
	if th.DirtyLen() != 0 {
		t.Fatal("untracked mapping produced dirty records")
	}
	if as.Stats().TrackingFaults != 0 {
		t.Fatal("untracked mapping took tracking fault")
	}
}

func TestSegfaultPanics(t *testing.T) {
	as := newAS()
	th := as.NewThread(nil, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped access did not panic")
		}
	}()
	th.Write(0xdead000, []byte{1})
}

func TestFaultCostsCharged(t *testing.T) {
	costs := sim.DefaultCosts()
	as := NewAddressSpace(costs, nil, nil)
	mapRegion(t, as, "r", 0x100000, 8, true)
	clk := sim.NewClock()
	th := as.NewThread(clk, 0)
	before := clk.Now()
	th.Write(0x100000, []byte{1})
	// page-in fault + tracking fault + alloc + memcpy must all be
	// charged.
	if clk.Now()-before < 2*costs.MinorFault {
		t.Fatalf("write charged only %v", clk.Now()-before)
	}
}

func TestBucketsAccounting(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 8, true)
	th := as.NewThread(nil, 0)
	th.Buckets = sim.NewTimeBuckets()
	th.Write(0x100000, []byte{1})
	if th.Buckets.Get("page faults") == 0 {
		t.Fatal("fault time not bucketed")
	}
}

func TestUnmapClearsTranslations(t *testing.T) {
	as := newAS()
	m := mapRegion(t, as, "r", 0x100000, 4, true)
	th := as.NewThread(nil, 0)
	th.Write(0x100000, []byte{1})
	rec := th.TakeDirty(nil)[0]
	as.Unmap(m)
	if as.FindMapping(0x100000) != nil {
		t.Fatal("mapping still found")
	}
	if rec.Page.RefCount() != 0 {
		t.Fatalf("refcount after unmap = %d", rec.Page.RefCount())
	}
}

func TestSharedMappingMultiprocess(t *testing.T) {
	// Two address spaces sharing a region's pages: the PostgreSQL
	// configuration. A persist by one process must reset protections
	// in both page tables (via reverse mappings).
	costs := sim.DefaultCosts()
	phys := mem.New(costs)
	tlbs := tlb.NewSystem(costs, 2)
	as1 := NewAddressSpace(costs, phys, tlbs)
	as2 := NewAddressSpace(costs, phys, tlbs)

	shared := make([]*mem.Page, 8)
	m1 := &Mapping{Name: "shm", Start: 0x100000, Pages: 8, Tracked: true, SharedPages: shared}
	m2 := &Mapping{Name: "shm", Start: 0x100000, Pages: 8, Tracked: true, SharedPages: shared}
	if err := as1.Map(m1); err != nil {
		t.Fatal(err)
	}
	if err := as2.Map(m2); err != nil {
		t.Fatal(err)
	}

	t1 := as1.NewThread(nil, 0)
	t2 := as2.NewThread(nil, 1)

	t1.Write(0x100000, []byte("from p1"))
	buf := make([]byte, 7)
	t2.Read(0x100000, buf)
	if string(buf) != "from p1" {
		t.Fatalf("shared memory not shared: %q", buf)
	}

	// Dirty the page from p2 as well so both page tables have
	// writable PTEs.
	t2.Write(0x100000, []byte("from p2"))

	recs := t1.TakeDirty(nil)
	vpns := as1.ResetProtectionsTrace(t1.Clock(), recs)
	as1.TLBs().Invalidate(t1.Clock(), vpns)

	// Both address spaces' PTEs must now be read-only.
	if as1.Table().Lookup(0x100000 / PageSize).Writable {
		t.Fatal("as1 PTE still writable")
	}
	if as2.Table().Lookup(0x100000 / PageSize).Writable {
		t.Fatal("as2 PTE still writable (reverse mapping not honored)")
	}
}

func TestResetStrategiesEquivalentProperty(t *testing.T) {
	// All three strategies must leave the same final PTE state.
	f := func(pageSel []uint8) bool {
		if len(pageSel) == 0 {
			return true
		}
		run := func(strategy int) []bool {
			as := newAS()
			m := &Mapping{Name: "r", Start: 0x100000, Pages: 256, Tracked: true}
			if err := as.Map(m); err != nil {
				return nil
			}
			th := as.NewThread(nil, 0)
			for _, s := range pageSel {
				th.Write(0x100000+uint64(s)*PageSize, []byte{s})
			}
			recs := th.TakeDirty(nil)
			switch strategy {
			case 0:
				as.ResetProtectionsTrace(th.Clock(), recs)
			case 1:
				as.ResetProtectionsWalk(th.Clock(), recs)
			case 2:
				as.ResetProtectionsScan(th.Clock(), m)
			}
			state := make([]bool, 256)
			for i := uint64(0); i < 256; i++ {
				pte := as.Table().Lookup(0x100000/PageSize + i)
				state[i] = pte != nil && pte.Present && pte.Writable
			}
			return state
		}
		a, b, c := run(0), run(1), run(2)
		for i := range a {
			if a[i] != b[i] || b[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1StrategyCosts(t *testing.T) {
	// For a small dirty set in a large mapping: trace < walk < scan.
	as := newAS()
	m := mapRegion(t, as, "big", 0x10000000, 1<<18, true) // 1 GiB
	th := as.NewThread(nil, 0)
	for i := 0; i < 16; i++ {
		th.Write(0x10000000+uint64(i*997*PageSize), []byte{1})
	}
	recs := th.TakeDirty(nil)

	traceClk, walkClk, scanClk := sim.NewClock(), sim.NewClock(), sim.NewClock()
	as.ResetProtectionsTrace(traceClk, recs)
	as.ResetProtectionsWalk(walkClk, recs)
	as.ResetProtectionsScan(scanClk, m)

	if !(traceClk.Now() < walkClk.Now() && walkClk.Now() < scanClk.Now()) {
		t.Fatalf("figure 1 ordering violated: trace=%v walk=%v scan=%v",
			traceClk.Now(), walkClk.Now(), scanClk.Now())
	}
}

func TestPageForWriteTracksAndAliases(t *testing.T) {
	as := newAS()
	mapRegion(t, as, "r", 0x100000, 4, true)
	th := as.NewThread(nil, 0)
	pg := th.PageForWrite(0x100000 + PageSize)
	pg[0] = 0x42
	if th.DirtyLen() != 1 {
		t.Fatal("PageForWrite did not track")
	}
	buf := make([]byte, 1)
	th.Read(0x100000+PageSize, buf)
	if buf[0] != 0x42 {
		t.Fatal("PageForWrite slice does not alias the frame")
	}
}

func TestChargeThreadStopAll(t *testing.T) {
	as := newAS()
	as.NewThread(nil, 0)
	as.NewThread(nil, 1)
	clk := sim.NewClock()
	d := as.ChargeThreadStopAll(clk)
	costs := sim.DefaultCosts()
	want := 2 * (costs.ThreadStop + costs.ThreadResume)
	if d != want || clk.Now() != want {
		t.Fatalf("stop-all charged %v, want %v", d, want)
	}
}
