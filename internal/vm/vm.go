// Package vm simulates the virtual memory subsystem MemSnap modifies:
// address spaces, memory mappings, page-fault handling, and per-thread
// dirty-set tracking.
//
// Every access to a MemSnap region goes through a Thread, the
// simulation's stand-in for a hardware thread: it owns a virtual
// clock, runs on a simulated CPU (selecting a TLB), and accumulates a
// trace buffer of (page, PTE reference) records — the kernel
// structure at the center of the paper's contribution.
//
// Two fault paths implement MemSnap's semantics (§3):
//
//   - tracking fault: first write to a clean tracked page. The page is
//     appended to the faulting thread's trace buffer, the PTE is made
//     writable, and execution continues. No copy.
//   - in-flight COW fault: write to a page whose checkpoint-in-progress
//     flag is set. The frame is duplicated, the PTE switched to the
//     copy, and the writer proceeds against the copy while the flush
//     keeps reading the original.
package vm

import (
	"fmt"
	"sync"

	"memsnap/internal/mem"
	"memsnap/internal/pagetable"
	"memsnap/internal/sim"
	"memsnap/internal/tlb"
)

// PageSize re-exports the system page size.
const PageSize = mem.PageSize

// Backing supplies the initial contents of pages faulted in for the
// first time (the pager). Implementations charge any IO they perform
// to the supplied clock.
type Backing interface {
	// PageIn fills dst (one page) with the contents of page pageIdx
	// of the mapping.
	PageIn(clk *sim.Clock, pageIdx uint64, dst []byte)
}

// ZeroBacking is an anonymous-memory pager: pages fault in zeroed.
type ZeroBacking struct{}

// PageIn implements Backing.
func (ZeroBacking) PageIn(*sim.Clock, uint64, []byte) {}

// Mapping is one contiguous virtual range in an address space.
type Mapping struct {
	// Name identifies the mapping (MemSnap region name or file path).
	Name string
	// Start is the first virtual address (page aligned).
	Start uint64
	// Pages is the length in pages.
	Pages uint64
	// Tracked selects the MemSnap PTE configuration: the mapping is
	// writable but every PTE starts read-only so first writes fault.
	Tracked bool
	// Backing pages in initial contents.
	Backing Backing

	// SharedPages, when non-nil, makes this mapping an additional
	// view of pages owned by another mapping (multiprocess shared
	// regions). Indexed by page index within the mapping.
	SharedPages []*mem.Page
}

// End returns the first address past the mapping.
func (m *Mapping) End() uint64 { return m.Start + m.Pages*PageSize }

// DirtyRecord is one trace-buffer entry: a page dirtied by a thread
// plus the direct PTE reference used for O(1) protection reset.
type DirtyRecord struct {
	VPN     uint64
	Addr    uint64
	PTE     *pagetable.PTE
	Page    *mem.Page
	Mapping *Mapping
}

// FaultStats counts fault-handler activity.
type FaultStats struct {
	TrackingFaults int64
	COWFaults      int64
	PageIns        int64
}

// AddressSpace is one process's virtual address space.
type AddressSpace struct {
	costs *sim.CostModel
	phys  *mem.PhysMem
	tlbs  *tlb.System

	mu       sync.Mutex
	table    *pagetable.Table
	mappings []*Mapping
	threads  []*Thread

	stats FaultStats
}

// NewAddressSpace creates an empty address space over the given
// physical memory and TLB system.
func NewAddressSpace(costs *sim.CostModel, phys *mem.PhysMem, tlbs *tlb.System) *AddressSpace {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	if phys == nil {
		phys = mem.New(costs)
	}
	if tlbs == nil {
		tlbs = tlb.NewSystem(costs, 1)
	}
	return &AddressSpace{
		costs: costs,
		phys:  phys,
		tlbs:  tlbs,
		table: pagetable.New(costs),
	}
}

// Phys returns the physical memory backing this address space.
func (as *AddressSpace) Phys() *mem.PhysMem { return as.phys }

// TLBs returns the TLB system.
func (as *AddressSpace) TLBs() *tlb.System { return as.tlbs }

// Costs returns the cost model.
func (as *AddressSpace) Costs() *sim.CostModel { return as.costs }

// Map installs a mapping. Overlapping ranges are rejected.
func (as *AddressSpace) Map(m *Mapping) error {
	if m.Start%PageSize != 0 {
		return fmt.Errorf("vm: mapping %q start %#x not page aligned", m.Name, m.Start)
	}
	if m.Backing == nil {
		m.Backing = ZeroBacking{}
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, other := range as.mappings {
		if m.Start < other.End() && other.Start < m.End() {
			return fmt.Errorf("vm: mapping %q overlaps %q", m.Name, other.Name)
		}
	}
	as.mappings = append(as.mappings, m)
	return nil
}

// Unmap removes a mapping and clears its PTEs and reverse mappings.
func (as *AddressSpace) Unmap(m *Mapping) {
	as.mu.Lock()
	defer as.mu.Unlock()
	for i, other := range as.mappings {
		if other == m {
			as.mappings = append(as.mappings[:i], as.mappings[i+1:]...)
			break
		}
	}
	for idx := uint64(0); idx < m.Pages; idx++ {
		vpn := m.Start/PageSize + idx
		if pte := as.table.Lookup(vpn); pte != nil && pte.Present {
			if pg := as.phys.Page(pte.Frame); pg != nil {
				pg.RemoveMapping(as, vpn)
			}
			as.table.Unmap(vpn)
		}
	}
}

// FindMapping returns the mapping containing addr, or nil.
func (as *AddressSpace) FindMapping(addr uint64) *Mapping {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.findMappingLocked(addr)
}

func (as *AddressSpace) findMappingLocked(addr uint64) *Mapping {
	for _, m := range as.mappings {
		if addr >= m.Start && addr < m.End() {
			return m
		}
	}
	return nil
}

// Stats returns a snapshot of fault counters.
func (as *AddressSpace) Stats() FaultStats {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.stats
}

// Threads returns the registered threads (for MS_GLOBAL persists and
// Aurora's stop-the-world).
func (as *AddressSpace) Threads() []*Thread {
	as.mu.Lock()
	defer as.mu.Unlock()
	return append([]*Thread(nil), as.threads...)
}

// Table exposes the page table for protection-strategy experiments
// (Figure 1) and tests.
func (as *AddressSpace) Table() *pagetable.Table { return as.table }
