package vm

import (
	"sync"
	"testing"

	"memsnap/internal/mem"
	"memsnap/internal/sim"
	"memsnap/internal/tlb"
)

// TestWriteCheckpointTOCTOU is the regression test for the
// cross-address-space translate-then-copy race: one process hammers a
// shared region with full-page uniform-pattern writes while another
// process repeatedly checkpoints it (mark → protect → snapshot). With
// the old unlocked copy in Thread.Write, the page could be marked and
// snapshotted between the writer's fault and its copy, so the copy
// raced the snapshot read (-race) and the captured frame could tear
// (mixed patterns). With the locked translate+copy, every captured
// page is a complete pattern and the test is -race clean.
func TestWriteCheckpointTOCTOU(t *testing.T) {
	const (
		pages  = 4
		rounds = 300
	)
	costs := sim.DefaultCosts()
	phys := mem.New(costs)
	tlbs := tlb.NewSystem(costs, 2)
	as1 := NewAddressSpace(costs, phys, tlbs)
	as2 := NewAddressSpace(costs, phys, tlbs)

	shared := make([]*mem.Page, pages)
	m1 := &Mapping{Name: "shm", Start: 0x100000, Pages: pages, Tracked: true, SharedPages: shared}
	m2 := &Mapping{Name: "shm", Start: 0x100000, Pages: pages, Tracked: true, SharedPages: shared}
	if err := as1.Map(m1); err != nil {
		t.Fatal(err)
	}
	if err := as2.Map(m2); err != nil {
		t.Fatal(err)
	}
	writer := as1.NewThread(sim.NewClock(), 0)
	ckpt := as2.NewThread(sim.NewClock(), 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Shared-memory applications (the pgdb configuration) serialize
	// writes to a page with their own locks; the checkpoint capture is
	// the OS-transparent part that must be race-free WITHOUT them.
	var pageLocks [pages]sync.Mutex

	// Process 1: full-page uniform writes to seeded-random pages. A
	// page's content is therefore always one byte value repeated —
	// unless a copy interleaves with a checkpoint capture.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := sim.NewRNG(42)
		var buf [PageSize]byte
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pat := byte(i%255 + 1)
			for j := range buf {
				buf[j] = pat
			}
			pageIdx := uint64(rng.Intn(pages))
			pageLocks[pageIdx].Lock()
			writer.Write(m1.Start+pageIdx*PageSize, buf[:])
			pageLocks[pageIdx].Unlock()
		}
	}()

	// Process 2: dirty every page with its own pattern, then run the
	// mark → protect → snapshot → verify → clear checkpoint sequence.
	tornErr := make(chan string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		var buf [PageSize]byte
		for r := 1; r <= rounds; r++ {
			pat := byte(r % 256)
			for j := range buf {
				buf[j] = pat
			}
			for p := uint64(0); p < pages; p++ {
				pageLocks[p].Lock()
				ckpt.Write(m2.Start+p*PageSize, buf[:])
				pageLocks[p].Unlock()
			}
			records := ckpt.TakeDirty(m2)
			if len(records) == 0 {
				continue
			}
			hold := as2.MarkCheckpointPages(records, nil)
			vpns := as2.ResetProtectionsTrace(ckpt.Clock(), records)
			tlbs.Invalidate(ckpt.Clock(), vpns)
			snaps := as2.SnapshotPagesInto(records, nil)
			for i, snap := range snaps {
				first := snap[0]
				for _, b := range snap {
					if b != first {
						select {
						case tornErr <- "torn page captured: page " +
							string(rune('0'+records[i].VPN%10)) +
							" mixes byte patterns":
						default:
						}
						return
					}
				}
			}
			ClearCheckpointPages(hold)
		}
	}()

	wg.Wait()
	select {
	case msg := <-tornErr:
		t.Fatal(msg)
	default:
	}
}
