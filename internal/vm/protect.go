package vm

import (
	"time"

	"memsnap/internal/mem"
	"memsnap/internal/pagetable"
	"memsnap/internal/sim"
)

// This file implements the three techniques for re-applying read
// protection to a dirty set after a uCheckpoint, compared in Figure 1
// of the paper:
//
//   - ResetProtectionsScan: traverse the page tables of the whole
//     mapping to find and protect dirty pages (the baseline). Cost is
//     proportional to the mapping size.
//   - ResetProtectionsWalk: walk the page table from the root once per
//     dirty page. Cost is walkDepth x dirty pages.
//   - ResetProtectionsTrace: modify the PTEs directly through the
//     references recorded in the trace buffer at fault time. Cost is
//     one PTE store per dirty page — MemSnap's strategy.
//
// All three also reset protections in *other* address spaces that map
// the same physical page (multiprocess applications) by following the
// page's physical-to-virtual reverse mappings, and clear the
// FlagTracked bit.

// resetOtherMappings write-protects every mapping of pg outside as,
// charging a page walk plus a PTE write per remote address space.
func resetOtherMappings(clk *sim.Clock, as *AddressSpace, pg *mem.Page, costs *sim.CostModel) {
	for _, rm := range pg.Mappings() {
		other, ok := rm.Owner.(*AddressSpace)
		if !ok || other == as {
			continue
		}
		other.mu.Lock()
		if pte := other.table.Lookup(rm.VPN); pte != nil && pte.Present {
			if clk != nil {
				clk.Advance(costs.PageWalk + costs.PTEWrite)
			}
			pte.Writable = false
		}
		other.mu.Unlock()
		other.tlbs.ShootdownPage(clk, rm.VPN)
	}
}

// ResetProtectionsTrace is MemSnap's protection reset: direct PTE
// stores through the trace-buffer references. The caller passes the
// records taken from a thread's trace buffer. Returns the VPNs reset
// (for the TLB invalidation that must follow).
func (as *AddressSpace) ResetProtectionsTrace(clk *sim.Clock, records []DirtyRecord) []uint64 {
	return as.ResetProtectionsTraceInto(clk, records, nil)
}

// ResetProtectionsTraceInto is ResetProtectionsTrace appending the
// reset VPNs into a caller-owned buffer, so the persist hot path can
// reuse one across calls.
func (as *AddressSpace) ResetProtectionsTraceInto(clk *sim.Clock, records []DirtyRecord, vpns []uint64) []uint64 {
	as.mu.Lock()
	for _, rec := range records {
		if clk != nil {
			clk.Advance(as.costs.PTEWrite)
		}
		rec.PTE.Writable = false
		rec.Page.ClearFlag(mem.FlagTracked)
		vpns = append(vpns, rec.VPN)
	}
	as.mu.Unlock()
	for _, rec := range records {
		if rec.Page.RefCount() > 1 {
			resetOtherMappings(clk, as, rec.Page, as.costs)
		}
	}
	return vpns
}

// ResetProtectionsWalk implements the per-page strategy: a full
// root-to-leaf walk for every dirty page.
func (as *AddressSpace) ResetProtectionsWalk(clk *sim.Clock, records []DirtyRecord) []uint64 {
	as.mu.Lock()
	vpns := make([]uint64, 0, len(records))
	for _, rec := range records {
		if pte := as.table.Walk(clk, rec.VPN); pte != nil {
			if clk != nil {
				clk.Advance(as.costs.PTEWrite)
			}
			pte.Writable = false
		}
		rec.Page.ClearFlag(mem.FlagTracked)
		vpns = append(vpns, rec.VPN)
	}
	as.mu.Unlock()
	for _, rec := range records {
		if rec.Page.RefCount() > 1 {
			resetOtherMappings(clk, as, rec.Page, as.costs)
		}
	}
	return vpns
}

// ResetProtectionsScan implements the baseline strategy: linearly
// scan the page tables spanning the whole mapping and protect every
// writable entry found. Cost scales with the mapping, not the dirty
// set.
func (as *AddressSpace) ResetProtectionsScan(clk *sim.Clock, m *Mapping) []uint64 {
	as.mu.Lock()
	var vpns []uint64
	as.table.ScanRange(clk, m.Start/PageSize, m.Pages, func(pte *pagetable.PTE) {
		if !pte.Writable {
			return
		}
		if clk != nil {
			clk.Advance(as.costs.PTEWrite)
		}
		pte.Writable = false
		if pg := as.phys.Page(pte.Frame); pg != nil {
			pg.ClearFlag(mem.FlagTracked)
		}
		vpns = append(vpns, pte.VPN)
	})
	as.mu.Unlock()
	return vpns
}

// MarkCheckpointInProgress sets the in-progress flag on every record's
// page. Call this BEFORE resetting protections: a writer that faults
// while the flush is being prepared must already observe the flag and
// take the COW path. The returned release function clears the flags;
// call it when the IO completes.
func (as *AddressSpace) MarkCheckpointInProgress(records []DirtyRecord) (release func()) {
	pages := as.MarkCheckpointPages(records, nil)
	return func() { ClearCheckpointPages(pages) }
}

// MarkCheckpointPages is the allocation-free form of
// MarkCheckpointInProgress: it sets the in-progress flag on every
// record's page and appends the pages to buf. The caller releases the
// flags with ClearCheckpointPages when the IO completes.
func (as *AddressSpace) MarkCheckpointPages(records []DirtyRecord, buf []*mem.Page) []*mem.Page {
	for _, rec := range records {
		rec.Page.SetFlag(mem.FlagCheckpointInProgress)
		buf = append(buf, rec.Page)
	}
	return buf
}

// ClearCheckpointPages clears the in-progress flag set by
// MarkCheckpointPages.
func ClearCheckpointPages(pages []*mem.Page) {
	for _, pg := range pages {
		pg.ClearFlag(mem.FlagCheckpointInProgress)
	}
}

// SnapshotPages returns the frame bytes of each record's page. The
// slices alias live frames; the in-progress flag guarantees stability
// because any concurrent writer duplicates the frame (unified COW)
// rather than mutating it.
func (as *AddressSpace) SnapshotPages(records []DirtyRecord) [][]byte {
	return as.SnapshotPagesInto(records, nil)
}

// SnapshotPagesInto is SnapshotPages appending into a caller-owned
// buffer.
func (as *AddressSpace) SnapshotPagesInto(records []DirtyRecord, snapshots [][]byte) [][]byte {
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, rec := range records {
		snapshots = append(snapshots, as.phys.Data(rec.Page.Frame()))
	}
	return snapshots
}

// ChargeThreadStopAll models stopping every registered thread (the
// serialization point of fork-style and Aurora-style checkpointing).
// The initiating clock pays a stop cost per thread; MemSnap never
// calls this on its persist path.
func (as *AddressSpace) ChargeThreadStopAll(clk *sim.Clock) time.Duration {
	as.mu.Lock()
	n := len(as.threads)
	as.mu.Unlock()
	d := time.Duration(n) * (as.costs.ThreadStop + as.costs.ThreadResume)
	if clk != nil {
		clk.Advance(d)
	}
	return d
}
