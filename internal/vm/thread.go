package vm

import (
	"fmt"
	"time"

	"memsnap/internal/mem"
	"memsnap/internal/obs"
	"memsnap/internal/pagetable"
	"memsnap/internal/sim"
	"memsnap/internal/tlb"
)

// Thread is a simulated application thread: the unit of dirty-set
// tracking. All region memory accesses are performed through a Thread
// so the simulation can deliver page faults.
type Thread struct {
	ID    int
	clock *sim.Clock
	cpu   int
	as    *AddressSpace

	// dirty is the trace buffer: the per-thread list of dirtied pages
	// with their PTE references, in fault order.
	dirty []DirtyRecord
	// tracked marks VPNs already present in dirty, to keep the list
	// duplicate-free without scanning.
	tracked map[uint64]bool

	// Buckets, when set, receives fault-handler CPU time under the
	// "page faults" label (Tables 1 and 8 accounting).
	Buckets *sim.TimeBuckets

	// rec, when non-nil, receives fault instants (tracking fault,
	// in-flight COW, page-in) on the recTrack trace lane, stamped with
	// the thread's virtual clock.
	rec      *obs.Recorder
	recTrack int32
}

// SetRecorder attaches (or with nil detaches) an observability
// recorder for the thread's fault instants on the given trace lane.
func (t *Thread) SetRecorder(r *obs.Recorder, track int32) {
	t.rec = r
	t.recTrack = track
}

// NewThread registers a new thread in the address space, running on
// the given CPU (wraps modulo the CPU count).
func (as *AddressSpace) NewThread(clock *sim.Clock, cpu int) *Thread {
	if clock == nil {
		clock = sim.NewClock()
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	t := &Thread{
		ID:      len(as.threads),
		clock:   clock,
		cpu:     cpu % as.tlbs.NumCPUs(),
		as:      as,
		tracked: make(map[uint64]bool),
	}
	as.threads = append(as.threads, t)
	return t
}

// Clock returns the thread's virtual clock.
func (t *Thread) Clock() *sim.Clock { return t.clock }

// AddressSpace returns the thread's address space.
func (t *Thread) AddressSpace() *AddressSpace { return t.as }

// charge advances the thread clock and mirrors the charge into the
// fault bucket if accounting is enabled.
func (t *Thread) chargeFault(d time.Duration) {
	t.clock.Advance(d)
	if t.Buckets != nil {
		t.Buckets.Add("page faults", d)
	}
}

// translate resolves addr for reading or writing, handling faults.
// It returns the physical page so callers can access frame data.
// The address-space lock is held across the fault for simplicity; the
// paper's point that MemSnap does not *stop other threads* is modeled
// in the cost model (no ThreadStop charges on this path), not by
// lock-freedom of the simulator.
func (t *Thread) translate(addr uint64, write bool) *mem.Page {
	vpn := addr / PageSize
	cpu := t.as.tlbs.CPU(t.cpu)

	// TLB hit fast path: free, like hardware.
	if e, ok := cpu.Lookup(vpn); ok {
		if !write || e.Writable {
			return t.as.phys.Page(e.Frame)
		}
		// Write to a read-only translation: fall into the fault path.
	}

	as := t.as
	as.mu.Lock()
	defer as.mu.Unlock()
	return t.translateLocked(addr, write)
}

// translateLocked is the fault path, called with as.mu held. It
// deliberately does not consult the TLB: a concurrent checkpoint
// write-protects PTEs under as.mu but shoots stale TLB entries down
// only after releasing it, so a cached writable translation may be
// stale — the PTE is the authority here.
func (t *Thread) translateLocked(addr uint64, write bool) *mem.Page {
	vpn := addr / PageSize
	cpu := t.as.tlbs.CPU(t.cpu)
	as := t.as

	m := as.findMappingLocked(addr)
	if m == nil {
		//lint:allow hotalloc fatal-path formatting on a segfault
		panic(fmt.Sprintf("vm: segfault at %#x (no mapping)", addr))
	}
	pte := as.table.Lookup(vpn)
	if pte == nil || !pte.Present {
		// Page-in fault.
		t.chargeFault(as.costs.MinorFault)
		as.stats.PageIns++
		pageIdx := (addr - m.Start) / PageSize
		t.rec.Instant(obs.CatVM, obs.NamePageIn, t.recTrack, t.clock.Now(), int64(pageIdx))
		var pg *mem.Page
		if m.SharedPages != nil {
			pg = m.SharedPages[pageIdx]
			if pg == nil {
				pg = as.phys.Alloc(t.clock)
				m.Backing.PageIn(t.clock, pageIdx, as.phys.Data(pg.Frame()))
				m.SharedPages[pageIdx] = pg
			}
		} else {
			pg = as.phys.Alloc(t.clock)
			m.Backing.PageIn(t.clock, pageIdx, as.phys.Data(pg.Frame()))
		}
		// Tracked mappings install read-only PTEs (the MemSnap
		// configuration); untracked install writable directly.
		pte = as.table.Map(vpn, pg.Frame(), !m.Tracked)
		pg.AddMapping(mem.ReverseMapping{Owner: as, VPN: vpn})
		if write && m.Tracked {
			t.writeFaultLocked(m, vpn, pte)
		}
		cpu.Insert(vpn, tlb.Entry{Frame: pte.Frame, Writable: pte.Writable})
		return as.phys.Page(pte.Frame)
	}

	if write && !pte.Writable {
		if !m.Tracked {
			//lint:allow hotalloc fatal-path formatting on a protection violation
			panic(fmt.Sprintf("vm: write to read-only mapping %q at %#x", m.Name, addr))
		}
		t.writeFaultLocked(m, vpn, pte)
	}
	cpu.Insert(vpn, tlb.Entry{Frame: pte.Frame, Writable: pte.Writable})
	return as.phys.Page(pte.Frame)
}

// writeFaultLocked handles a write to a read-only PTE in a tracked
// mapping: MemSnap's two fault paths.
func (t *Thread) writeFaultLocked(m *Mapping, vpn uint64, pte *pagetable.PTE) {
	as := t.as
	pg := as.phys.Page(pte.Frame)

	if pg.HasFlag(mem.FlagCheckpointInProgress) {
		// In-flight COW: duplicate the frame so the checkpoint keeps
		// an atomic snapshot while the writer proceeds on the copy.
		t.chargeFault(as.costs.COWFault)
		as.stats.COWFaults++
		t.rec.Instant(obs.CatVM, obs.NameCOWFault, t.recTrack, t.clock.Now(), int64(vpn))
		dup := as.phys.Copy(t.clock, pg)
		pg.RemoveMapping(as, vpn)
		dup.AddMapping(mem.ReverseMapping{Owner: as, VPN: vpn})
		pte.Frame = dup.Frame()
		pg = dup
		// Shared mappings must observe the replacement too.
		if m.SharedPages != nil {
			m.SharedPages[(vpn*PageSize-m.Start)/PageSize] = dup
		}
	} else {
		// Tracking fault: no copy.
		t.chargeFault(as.costs.MinorFault)
		as.stats.TrackingFaults++
		t.rec.Instant(obs.CatVM, obs.NameTrackingFault, t.recTrack, t.clock.Now(), int64(vpn))
	}

	pte.Writable = true
	pg.SetFlag(mem.FlagTracked)
	if !t.tracked[vpn] {
		t.tracked[vpn] = true
		t.dirty = append(t.dirty, DirtyRecord{
			VPN:     vpn,
			Addr:    vpn * PageSize,
			PTE:     pte,
			Page:    pg,
			Mapping: m,
		})
	} else {
		// The thread re-dirtied a page it already tracks (possible
		// after an in-flight COW replaced the frame): refresh the
		// record so the next uCheckpoint flushes the live frame.
		for i := range t.dirty {
			if t.dirty[i].VPN == vpn {
				t.dirty[i].Page = pg
				t.dirty[i].PTE = pte
				break
			}
		}
	}
}

// Write copies data into the address space at addr, faulting as
// needed. The memcpy cost is charged to the thread clock.
//
// Each per-page translate+copy step runs under the address-space
// lock, making it atomic relative to a concurrent checkpoint's
// MarkCheckpointPages + protection reset — which takes this lock even
// from another address space, via resetOtherMappings. The copy either
// completes before the page is write-protected (and is therefore
// ordered before the checkpoint's snapshot read), or the translation
// observes the read-only PTE, faults, and the copy proceeds on the
// COW duplicate, leaving the snapshotted frame quiescent. The old
// translate-then-copy without the lock spanning both raced a
// cross-address-space Persist: the page could be marked and
// snapshotted between the fault and the copy (TOCTOU), tearing the
// captured frame.
//
//memsnap:hotpath
func (t *Thread) Write(addr uint64, data []byte) {
	as := t.as
	t.clock.Advance(as.costs.MemcpyCost(len(data)))
	for len(data) > 0 {
		off := addr % PageSize
		n := PageSize - off
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		as.mu.Lock()
		pg := t.translateLocked(addr, true)
		copy(as.phys.Data(pg.Frame())[off:], data[:n])
		as.mu.Unlock()
		addr += n
		data = data[n:]
	}
}

// Read copies bytes out of the address space into buf.
//
//memsnap:hotpath
func (t *Thread) Read(addr uint64, buf []byte) {
	t.clock.Advance(t.as.costs.MemcpyCost(len(buf)))
	for len(buf) > 0 {
		pg := t.translate(addr, false)
		off := addr % PageSize
		n := PageSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		copy(buf[:n], t.as.phys.Data(pg.Frame())[off:])
		addr += n
		buf = buf[n:]
	}
}

// PageForWrite runs the write-fault machinery for the page containing
// addr and returns the live frame bytes for direct in-place mutation.
// Callers must not retain the slice across a Persist (the frame may be
// replaced by an in-flight COW).
func (t *Thread) PageForWrite(addr uint64) []byte {
	pg := t.translate(addr, true)
	return t.as.phys.Data(pg.Frame())
}

// PageForRead returns the frame bytes for reading.
func (t *Thread) PageForRead(addr uint64) []byte {
	pg := t.translate(addr, false)
	return t.as.phys.Data(pg.Frame())
}

// DirtyLen returns the number of pages in the thread's trace buffer.
func (t *Thread) DirtyLen() int {
	t.as.mu.Lock()
	defer t.as.mu.Unlock()
	return len(t.dirty)
}

// TakeDirty removes and returns the thread's dirty records, filtered
// to the given mapping (nil means all mappings). Called under the
// persist path with the address-space lock NOT held.
func (t *Thread) TakeDirty(m *Mapping) []DirtyRecord {
	return t.TakeDirtyInto(m, nil)
}

// TakeDirtyInto is TakeDirty appending into a caller-owned buffer, so
// a persist loop can reuse one records slice across calls. The thread
// keeps its own trace-buffer backing array (truncated, tracking map
// cleared in place), making the steady-state handoff allocation-free.
func (t *Thread) TakeDirtyInto(m *Mapping, out []DirtyRecord) []DirtyRecord {
	t.as.mu.Lock()
	defer t.as.mu.Unlock()
	return t.takeDirtyIntoLocked(m, out)
}

// TakeDirtyAllInto drains every thread's trace buffer (filtered to m;
// nil means all mappings) into out under one address-space lock
// acquisition — the MSGlobal gather without per-thread slice copies.
func (as *AddressSpace) TakeDirtyAllInto(m *Mapping, out []DirtyRecord) []DirtyRecord {
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, t := range as.threads {
		out = t.takeDirtyIntoLocked(m, out)
	}
	return out
}

func (t *Thread) takeDirtyIntoLocked(m *Mapping, out []DirtyRecord) []DirtyRecord {
	if m == nil {
		out = append(out, t.dirty...)
		t.dirty = t.dirty[:0]
		for k := range t.tracked {
			delete(t.tracked, k)
		}
		return out
	}
	kept := t.dirty[:0]
	for _, rec := range t.dirty {
		if rec.Mapping == m {
			out = append(out, rec)
			delete(t.tracked, rec.VPN)
		} else {
			kept = append(kept, rec)
		}
	}
	t.dirty = kept
	return out
}
