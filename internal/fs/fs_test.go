package fs

import (
	"bytes"
	"testing"
	"time"

	"memsnap/internal/disk"
	"memsnap/internal/sim"
)

func newFS(kind Kind) *FS {
	costs := sim.DefaultCosts()
	return New(costs, disk.NewArray(costs, 2, 512<<20), kind)
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFS(FFS)
	clk := sim.NewClock()
	file := f.Create(clk, "db")
	data := []byte("some database contents spanning bytes")
	file.Write(clk, 100, data)
	buf := make([]byte, len(data))
	file.Read(clk, 100, buf)
	if !bytes.Equal(buf, data) {
		t.Fatalf("read back %q", buf)
	}
	if file.Size() != 100+int64(len(data)) {
		t.Fatalf("size = %d", file.Size())
	}
}

func TestOpenMissing(t *testing.T) {
	f := newFS(FFS)
	clk := sim.NewClock()
	if _, err := f.Open(clk, "nope"); err == nil {
		t.Fatal("opened missing file")
	}
	f.Create(clk, "yes")
	if _, err := f.Open(clk, "yes"); err != nil {
		t.Fatal(err)
	}
	f.Remove(clk, "yes")
	if _, err := f.Open(clk, "yes"); err == nil {
		t.Fatal("opened removed file")
	}
}

func TestWriteIsWriteBack(t *testing.T) {
	f := newFS(FFS)
	clk := sim.NewClock()
	file := f.Create(clk, "db")
	file.Write(clk, 0, bytes.Repeat([]byte{1}, 64<<10))
	if got := f.Array().Stats().BytesWritten; got != 0 {
		t.Fatalf("write hit the disk before fsync: %d bytes", got)
	}
	if file.DirtyBlocks() != 16 {
		t.Fatalf("dirty blocks = %d", file.DirtyBlocks())
	}
	file.Fsync(clk)
	if got := f.Array().Stats().BytesWritten; got < 64<<10 {
		t.Fatalf("fsync wrote only %d bytes", got)
	}
	if file.DirtyBlocks() != 0 {
		t.Fatal("fsync left dirty blocks")
	}
}

func TestFsyncNoDirtyCheap(t *testing.T) {
	f := newFS(FFS)
	clk := sim.NewClock()
	file := f.Create(clk, "db")
	start := clk.Now()
	file.Fsync(clk)
	if clk.Now()-start > 10*time.Microsecond {
		t.Fatalf("no-op fsync cost %v", clk.Now()-start)
	}
}

// prepFile writes and syncs `blocks` sequential blocks so that later
// dirty blocks are overwrites of established on-disk locations.
func prepFile(f *FS, clk *sim.Clock, name string, blocks int) *File {
	file := f.Create(clk, name)
	buf := make([]byte, 64*BlockSize)
	for i := 0; i < blocks; i += 64 {
		n := blocks - i
		if n > 64 {
			n = 64
		}
		file.Write(clk, int64(i)*BlockSize, buf[:n*BlockSize])
	}
	file.Fsync(clk)
	return file
}

// fsyncLatency measures one flush. The sequential pattern appends to
// a fresh log file (write-ahead-logging style); the random pattern
// overwrites random blocks of an established database file — the two
// access patterns of the paper's Table 6.
func fsyncLatency(kind Kind, blocks int, random bool) time.Duration {
	f := newFS(kind)
	clk := sim.NewClock()
	var file *File
	rng := sim.NewRNG(42)
	data := make([]byte, BlockSize)
	if random {
		file = prepFile(f, clk, "db", 4096)
		for i := 0; i < blocks; i++ {
			file.Write(clk, rng.Int63n(4096)*BlockSize, data)
		}
	} else {
		file = f.Create(clk, "log")
		for i := 0; i < blocks; i++ {
			file.Write(clk, int64(i)*BlockSize, data)
		}
	}
	start := clk.Now()
	file.Fsync(clk)
	return clk.Now() - start
}

func TestFsyncTable6Calibration(t *testing.T) {
	// Spot-check the paper's Table 6 shape with generous tolerances:
	// the *shape* must hold (random >> sequential, ZFS random worse
	// than FFS early, both far above MemSnap).
	cases := []struct {
		kind   Kind
		blocks int
		random bool
		lo, hi time.Duration
	}{
		{FFS, 1, false, 40 * time.Microsecond, 110 * time.Microsecond},        // paper 70
		{FFS, 16, false, 70 * time.Microsecond, 210 * time.Microsecond},       // paper 134
		{FFS, 1, true, 100 * time.Microsecond, 240 * time.Microsecond},        // paper 156
		{FFS, 16, true, 1200 * time.Microsecond, 2900 * time.Microsecond},     // paper 1.9K
		{FFS, 1024, true, 20000 * time.Microsecond, 50000 * time.Microsecond}, // paper 33.7K
		{CoWFS, 1, true, 150 * time.Microsecond, 350 * time.Microsecond},      // paper 232
		{CoWFS, 16, true, 2000 * time.Microsecond, 4400 * time.Microsecond},   // paper 2.9K
	}
	for _, tc := range cases {
		got := fsyncLatency(tc.kind, tc.blocks, tc.random)
		if got < tc.lo || got > tc.hi {
			t.Errorf("%v fsync %d blocks random=%v: %v, want [%v, %v]",
				tc.kind, tc.blocks, tc.random, got, tc.lo, tc.hi)
		}
	}
}

func TestRandomFsyncMuchSlowerThanSequential(t *testing.T) {
	for _, kind := range []Kind{FFS, CoWFS} {
		seq := fsyncLatency(kind, 64, false)
		rnd := fsyncLatency(kind, 64, true)
		if rnd < 5*seq {
			t.Errorf("%v: random fsync %v not >> sequential %v", kind, rnd, seq)
		}
	}
}

func TestMsyncScalesWithResidentSet(t *testing.T) {
	// Figure 5's mechanism: the mapped-file flush cost grows with the
	// resident size of the file even for a single dirty page.
	measure := func(resident int) time.Duration {
		f := newFS(FFS)
		clk := sim.NewClock()
		file := prepFile(f, clk, "db", resident)
		file.Write(clk, 0, make([]byte, BlockSize))
		start := clk.Now()
		file.Msync(clk)
		return clk.Now() - start
	}
	small, large := measure(64), measure(65536)
	if large <= small+100*time.Microsecond {
		t.Fatalf("msync did not scale with resident set: %v vs %v", small, large)
	}
}

func TestPartialBlockOverwriteRMW(t *testing.T) {
	f := newFS(FFS)
	clk := sim.NewClock()
	file := prepFile(f, clk, "db", 4)
	// Drop the cache by truncating and recreating cache state: emulate
	// by opening fresh FS? Simpler: write partial to an uncached
	// on-disk block after clearing cache via Truncate+rewrite.
	full := bytes.Repeat([]byte{0xEE}, BlockSize)
	file.Write(clk, 0, full)
	file.Fsync(clk)
	// Evict by hand: no eviction API, so verify read-back correctness
	// of partial overwrite instead.
	file.Write(clk, 10, []byte("partial"))
	buf := make([]byte, BlockSize)
	file.Read(clk, 0, buf)
	if string(buf[10:17]) != "partial" || buf[0] != 0xEE {
		t.Fatal("partial overwrite corrupted block")
	}
}

func TestTruncate(t *testing.T) {
	f := newFS(FFS)
	clk := sim.NewClock()
	file := f.Create(clk, "wal")
	file.Write(clk, 0, make([]byte, 10*BlockSize))
	file.Fsync(clk)
	file.Truncate(clk, BlockSize)
	if file.Size() != BlockSize {
		t.Fatalf("size after truncate = %d", file.Size())
	}
	if file.ResidentBlocks() != 1 {
		t.Fatalf("resident after truncate = %d", file.ResidentBlocks())
	}
	// Growing again reads zeros past the old end.
	buf := make([]byte, 8)
	file.Read(clk, 5*BlockSize, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("stale data after truncate")
		}
	}
}

func TestSyscallStats(t *testing.T) {
	f := newFS(FFS)
	clk := sim.NewClock()
	file := f.Create(clk, "db")
	file.Write(clk, 0, []byte("x"))
	file.Write(clk, 4096, []byte("y"))
	file.Read(clk, 0, make([]byte, 1))
	file.Fsync(clk)
	if f.WriteStats.Count() != 2 || f.ReadStats.Count() != 1 || f.FsyncStats.Count() != 1 {
		t.Fatalf("stats: w=%d r=%d f=%d", f.WriteStats.Count(), f.ReadStats.Count(), f.FsyncStats.Count())
	}
	if f.FsyncStats.Latency.Mean() <= f.WriteStats.Latency.Mean() {
		t.Fatal("fsync not slower than write")
	}
}

func TestSequentialFsyncLinearInSize(t *testing.T) {
	l16 := fsyncLatency(FFS, 16, false)
	l1024 := fsyncLatency(FFS, 1024, false)
	if l1024 < 10*l16 {
		t.Fatalf("sequential fsync not scaling: 16=%v 1024=%v", l16, l1024)
	}
	if l1024 > 100*l16 {
		t.Fatalf("sequential fsync superlinear: 16=%v 1024=%v", l16, l1024)
	}
}
