// Package fs simulates the file-API baselines MemSnap is evaluated
// against: a VFS layer with a write-back buffer cache on top of two
// filesystem personalities —
//
//   - FFS: journaling + soft-updates style. Random block flushes pay
//     per-block metadata (cylinder group / indirect block) costs;
//     sequential extents amortize them.
//   - CoWFS ("ZFS"): copy-on-write. Random block flushes rewrite
//     indirect chains; transaction-group commits add fixed barriers.
//
// The cost structure is calibrated against the fsync columns of the
// paper's Table 6. Data flushes are chunked at 128 KiB (MAXPHYS) and
// issued at queue depth 1, which is why file writes do not enjoy the
// stripe parallelism MemSnap's vectored uCheckpoint IO gets.
package fs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"memsnap/internal/disk"
	"memsnap/internal/sim"
)

// BlockSize is the filesystem block size.
const BlockSize = 4096

// maxPhys is the largest single data IO the FS issues.
const maxPhys = 128 << 10

// Kind selects the filesystem personality.
type Kind int

const (
	// FFS is the journaling / soft-updates personality.
	FFS Kind = iota
	// CoWFS is the copy-on-write (ZFS-like) personality.
	CoWFS
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == CoWFS {
		return "zfs"
	}
	return "ffs"
}

// SyscallStats aggregates per-call counters for one syscall type.
type SyscallStats struct {
	count   atomic.Int64
	Latency *sim.LatencyRecorder
}

func newSyscallStats() *SyscallStats {
	return &SyscallStats{Latency: sim.NewLatencyRecorder()}
}

// Count returns how many calls were made.
func (s *SyscallStats) Count() int64 { return s.count.Load() }

// record notes one call of the given latency.
func (s *SyscallStats) record(lat time.Duration) {
	s.count.Add(1)
	s.Latency.Record(lat)
}

// FS is one mounted filesystem over its own disk array.
type FS struct {
	costs *sim.CostModel
	arr   *disk.Array
	kind  Kind

	mu    sync.Mutex
	files map[string]*File
	next  int64 // block allocator bump pointer (bytes)

	// WriteStats/ReadStats/FsyncStats mirror the paper's syscall
	// accounting (Table 7, Table 9).
	WriteStats *SyscallStats
	ReadStats  *SyscallStats
	FsyncStats *SyscallStats

	// Buckets, when set, accumulates kernel CPU time by component
	// (the Table 1 / Table 8 breakdowns): "syscall", "vfs",
	// "buffer cache", "file system", "data io".
	Buckets *sim.TimeBuckets
}

// New mounts an empty filesystem of the given kind over arr.
func New(costs *sim.CostModel, arr *disk.Array, kind Kind) *FS {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &FS{
		costs:      costs,
		arr:        arr,
		kind:       kind,
		files:      make(map[string]*File),
		WriteStats: newSyscallStats(),
		ReadStats:  newSyscallStats(),
		FsyncStats: newSyscallStats(),
	}
}

// Array exposes the backing array for disk-throughput accounting.
func (f *FS) Array() *disk.Array { return f.arr }

// charge advances clk and mirrors the charge into a kernel bucket if
// accounting is enabled.
func (f *FS) charge(clk *sim.Clock, bucket string, d time.Duration) {
	clk.Advance(d)
	if f.Buckets != nil {
		f.Buckets.Add(bucket, d)
	}
}

// Kind returns the personality.
func (f *FS) Kind() Kind { return f.kind }

// File is one file: cached blocks plus their on-disk placement.
type File struct {
	fs   *FS
	name string

	mu     sync.Mutex
	size   int64
	cache  map[int64]*cachedBlock // block index -> cache entry
	onDisk map[int64]int64        // block index -> disk offset
	// flushedHigh is the highest block index flushed so far; rewrites
	// at or past it are log-tail appends (no metadata churn), not
	// random updates.
	flushedHigh int64
}

type cachedBlock struct {
	data  []byte
	dirty bool
}

// Create makes (or truncates) a file.
func (f *FS) Create(clk *sim.Clock, name string) *File {
	clk.Advance(f.costs.SyscallEntry + f.costs.VFSLookup)
	f.mu.Lock()
	defer f.mu.Unlock()
	file := &File{
		fs:          f,
		name:        name,
		cache:       make(map[int64]*cachedBlock),
		onDisk:      make(map[int64]int64),
		flushedHigh: -1,
	}
	f.files[name] = file
	return file
}

// Open returns an existing file.
func (f *FS) Open(clk *sim.Clock, name string) (*File, error) {
	clk.Advance(f.costs.SyscallEntry + f.costs.VFSLookup)
	f.mu.Lock()
	defer f.mu.Unlock()
	file, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("fs: %s: no such file", name)
	}
	return file, nil
}

// Remove deletes a file, releasing its blocks.
func (f *FS) Remove(clk *sim.Clock, name string) {
	clk.Advance(f.costs.SyscallEntry + f.costs.VFSLookup)
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.files, name)
}

// allocBlock hands out one on-disk block.
func (f *FS) allocBlock() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	off := f.next
	f.next += BlockSize
	if f.next > f.arr.Capacity() {
		// Files in the baselines are overwritten in place; when the
		// log of block allocations runs off the end, wrap. (The
		// baseline volumes are sized generously by callers.)
		f.next = 0
	}
	return off
}

// Name returns the file name.
func (fl *File) Name() string { return fl.name }

// Size returns the file size in bytes.
func (fl *File) Size() int64 {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.size
}

// ResidentBlocks returns how many blocks are in the buffer cache.
func (fl *File) ResidentBlocks() int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return len(fl.cache)
}

// DirtyBlocks returns how many cached blocks are dirty.
func (fl *File) DirtyBlocks() int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	n := 0
	for _, b := range fl.cache {
		if b.dirty {
			n++
		}
	}
	return n
}

// Write implements the write syscall: data lands in the buffer cache
// (write-back); nothing reaches the disk until Fsync.
func (fl *File) Write(clk *sim.Clock, off int64, data []byte) {
	fs := fl.fs
	start := clk.Now()
	fs.charge(clk, "syscall", fs.costs.SyscallEntry)
	fs.charge(clk, "vfs", fs.costs.VFSLookup)
	fs.charge(clk, "buffer cache", fs.costs.MemcpyCost(len(data)))

	fl.mu.Lock()
	for len(data) > 0 {
		idx := off / BlockSize
		within := off % BlockSize
		n := BlockSize - within
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		blk := fl.cache[idx]
		if blk == nil {
			blk = &cachedBlock{data: make([]byte, BlockSize)}
			fl.cache[idx] = blk
			fs.charge(clk, "buffer cache", fs.costs.BufferCacheInsert)
			if addr, ok := fl.onDisk[idx]; ok && (within != 0 || n != BlockSize) {
				// Partial overwrite of an uncached on-disk block:
				// read-modify-write.
				done := fs.arr.Read(clk.Now(), addr, blk.data)
				clk.AdvanceTo(done)
			}
		} else {
			fs.charge(clk, "buffer cache", fs.costs.BufferCacheLookup)
		}
		copy(blk.data[within:], data[:n])
		blk.dirty = true
		off += n
		data = data[n:]
	}
	if off > fl.size {
		fl.size = off
	}
	fl.mu.Unlock()

	fs.WriteStats.record(clk.Now() - start)
}

// Read implements the read syscall.
func (fl *File) Read(clk *sim.Clock, off int64, buf []byte) {
	fs := fl.fs
	start := clk.Now()
	fs.charge(clk, "syscall", fs.costs.SyscallEntry)
	fs.charge(clk, "vfs", fs.costs.VFSLookup)
	fs.charge(clk, "buffer cache", fs.costs.MemcpyCost(len(buf)))

	fl.mu.Lock()
	for len(buf) > 0 {
		idx := off / BlockSize
		within := off % BlockSize
		n := BlockSize - within
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		blk := fl.cache[idx]
		if blk == nil {
			blk = &cachedBlock{data: make([]byte, BlockSize)}
			if addr, ok := fl.onDisk[idx]; ok {
				done := fs.arr.Read(clk.Now(), addr, blk.data)
				clk.AdvanceTo(done)
			}
			fl.cache[idx] = blk
			fs.charge(clk, "buffer cache", fs.costs.BufferCacheInsert)
		} else {
			fs.charge(clk, "buffer cache", fs.costs.BufferCacheLookup)
		}
		copy(buf[:n], blk.data[within:within+n])
		off += n
		buf = buf[n:]
	}
	fl.mu.Unlock()

	fs.ReadStats.record(clk.Now() - start)
}

// Truncate shrinks the file to length bytes, dropping cached blocks
// past the end.
func (fl *File) Truncate(clk *sim.Clock, length int64) {
	clk.Advance(fl.fs.costs.SyscallEntry + fl.fs.costs.VFSLookup)
	fl.mu.Lock()
	defer fl.mu.Unlock()
	lastBlock := (length + BlockSize - 1) / BlockSize
	for idx := range fl.cache {
		if idx >= lastBlock {
			delete(fl.cache, idx)
		}
	}
	for idx := range fl.onDisk {
		if idx >= lastBlock {
			delete(fl.onDisk, idx)
		}
	}
	fl.size = length
	if fl.flushedHigh >= lastBlock {
		fl.flushedHigh = lastBlock - 1
	}
}

// Fsync flushes the file's dirty blocks and the metadata needed to
// reference them, blocking until durable. Cost is O(dirty set).
func (fl *File) Fsync(clk *sim.Clock) {
	fl.sync(clk, false)
}

// Msync is the flush path for memory-mapped files: before flushing it
// must scan the mapping's page tables to find dirty pages, so its
// cost scales with the file's *resident* size, not just the dirty
// set — the effect behind the baseline's degradation in Figure 5 and
// the paper's §2 critique of msync.
func (fl *File) Msync(clk *sim.Clock) {
	fl.sync(clk, true)
}

func (fl *File) sync(clk *sim.Clock, mapped bool) {
	fs := fl.fs
	start := clk.Now()
	fs.charge(clk, "syscall", fs.costs.SyscallEntry)
	fs.charge(clk, "vfs", fs.costs.VFSLookup)

	fl.mu.Lock()
	var dirty []int64
	for idx, blk := range fl.cache {
		if blk.dirty {
			dirty = append(dirty, idx)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })

	if mapped {
		// Page-table scan over the resident mapping.
		fs.charge(clk, "file system", time.Duration(len(fl.cache))*fs.costs.PageTableScanPerEntry)
	}

	if len(dirty) == 0 {
		fl.mu.Unlock()
		fs.FsyncStats.record(clk.Now() - start)
		return
	}

	// Allocate/locate on-disk homes and classify the flush pattern.
	//
	// FFS overwrites in place: blocks extending a disk-contiguous run
	// amortize metadata, a run head that overwrites an old block pays
	// the full cylinder-group/indirect read-modify-write cost, and
	// freshly allocated heads (log appends) are cheap. CoWFS never
	// overwrites: every block gets a new address (sequential on
	// disk), and the expensive unit is the indirect-chain rewrite per
	// *logically* discontiguous run.
	type run struct {
		addr int64
		data []byte
	}
	var runs []run
	expensiveBlocks := 0 // blocks paying full per-block metadata cost
	cheapBlocks := 0     // blocks amortized into a run
	prevIdx := int64(-2)
	prevHigh := fl.flushedHigh
	for _, idx := range dirty {
		blk := fl.cache[idx]
		addr, ok := fl.onDisk[idx]
		fresh := !ok || idx >= prevHigh // appends and tail rewrites
		if !ok || fs.kind == CoWFS {
			addr = fs.allocBlock()
			fl.onDisk[idx] = addr
		}
		if idx > fl.flushedHigh {
			fl.flushedHigh = idx
		}
		extends := false
		if n := len(runs); n > 0 && runs[n-1].addr+int64(len(runs[n-1].data)) == addr {
			runs[n-1].data = append(runs[n-1].data, blk.data...)
			extends = true
		} else {
			runs = append(runs, run{addr: addr, data: append([]byte(nil), blk.data...)})
		}
		switch fs.kind {
		case FFS:
			if extends || fresh {
				cheapBlocks++
			} else {
				expensiveBlocks++
			}
		case CoWFS:
			if idx == prevIdx+1 {
				cheapBlocks++
			} else {
				expensiveBlocks++
			}
		}
		prevIdx = idx
		blk.dirty = false
	}
	fl.mu.Unlock()

	fs.chargeMetadata(clk, expensiveBlocks, cheapBlocks)

	// Data IO: chunked at maxPhys, queue depth 1.
	at := clk.Now()
	for _, r := range runs {
		data := r.data
		addr := r.addr
		for len(data) > 0 {
			n := maxPhys
			if n > len(data) {
				n = len(data)
			}
			at = fs.arr.Write(at, addr, data[:n])
			addr += int64(n)
			data = data[n:]
		}
	}
	if fs.Buckets != nil {
		fs.Buckets.Add("data io", at-clk.Now())
	}
	clk.AdvanceTo(at)

	fs.FsyncStats.record(clk.Now() - start)
}

// chargeMetadata applies the personality-specific metadata cost of a
// flush.
func (fs *FS) chargeMetadata(clk *sim.Clock, randomBlocks, seqBlocks int) {
	c := fs.costs
	start := clk.Now()
	defer func() {
		if fs.Buckets != nil {
			fs.Buckets.Add("file system", clk.Now()-start)
		}
	}()
	switch fs.kind {
	case FFS:
		clk.Advance(c.JournalCommit)
		// Random blocks: cylinder-group and indirect-block updates,
		// batched by the journal past FFSMetaBatch.
		full := randomBlocks
		if full > c.FFSMetaBatch {
			full = c.FFSMetaBatch
		}
		clk.Advance(time.Duration(full) * c.FFSMetaPerBlock)
		clk.Advance(time.Duration(randomBlocks-full) * c.FFSMetaPerBlockBatched)
		// Sequential blocks: cheap per-block bookkeeping, capped
		// (journal batching).
		seq := seqBlocks
		if seq > 256 {
			seq = 256
		}
		clk.Advance(time.Duration(seq) * 2 * time.Microsecond)
	case CoWFS:
		clk.Advance(c.ZFSTxgFixed)
		full := randomBlocks
		if full > c.ZFSIndirectBatch {
			full = c.ZFSIndirectBatch
		}
		clk.Advance(time.Duration(full) * c.ZFSIndirectPerBlock)
		clk.Advance(time.Duration(randomBlocks-full) * c.ZFSIndirectPerBlockBatched)
		seq := seqBlocks
		if seq > 256 {
			seq = 256
		}
		clk.Advance(time.Duration(seq) * 2200 * time.Nanosecond)
	}
}
