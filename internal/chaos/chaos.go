// Package chaos is a declarative fault-matrix scenario runner over the
// simulated MemSnap stack. A scenario cell composes three orthogonal
// axes:
//
//   - a topology — a single shard service, a primary+follower pair
//     replicating over a simulated link (internal/replica), or a
//     TCP-fronted service (internal/netsvc);
//   - a workload — the YCSB-style mixed-ratio generator, TATP, or
//     TPC-C (internal/workload), driven deterministically from the
//     cell seed;
//   - a fault schedule — a list of (virtual-time, target, fault)
//     events on sim.Clock virtual time: power cuts, link outage
//     windows, slow-disk stragglers, follower crashes mid-batch, and
//     service drains mid-pipeline.
//
// The runner sweeps seeds × schedules × topologies and asserts on
// every cell, regardless of which faults fired:
//
//   - recovery consistency: after every crash and at a final
//     cut-power audit, every shard reopens on a manifest-committed
//     epoch whose manifest counters match a full data rescan
//     (shard.ShardRecovery.Consistent);
//   - replica convergence: at quiesce the follower's per-shard page
//     digests and value sums are byte-identical to the primary's, and
//     its replication position never runs ahead;
//   - exactly-once responses: every admitted request receives exactly
//     one response carrying a real outcome (never ErrClosed after
//     admission), and read/response values match a client-side model
//     that tracks which writes could legally have survived each
//     crash;
//   - leak accounting: the capture pools drain back to their
//     cell-start in-use level once the cell tears down.
//
// A failure anywhere in the grid reprints as its cell ID
// `seed=S/sched=NAME/topo=T`, and feeding that ID back (msnap-chaos
// -cell, or RunCell) reproduces the run: the workload stream, fault
// instants, and final per-shard digests are bit-for-bit identical
// across reruns. Schedules that exercise genuine pipelined
// concurrency (the drain burst racing Close) can shift group-commit
// composition between runs, so virtual-time instants may drift there;
// the surviving state, and every invariant verdict, may not. Cells
// share process-global pools, so cells must not run concurrently; Run
// executes them sequentially.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Topology selects the system shape a cell runs against.
type Topology string

// The three topologies.
const (
	// TopoSingle is one shard service over one simulated machine.
	TopoSingle Topology = "single"
	// TopoReplica is a primary shard service synchronously shipping
	// µCheckpoint deltas to a follower over a simulated link.
	TopoReplica Topology = "replica"
	// TopoNet fronts a single shard service with the real-TCP framed
	// protocol server and drives it through a pipelined client.
	TopoNet Topology = "net"
)

// Topologies lists all topologies in grid order.
func Topologies() []Topology { return []Topology{TopoSingle, TopoReplica, TopoNet} }

// Cell names one grid cell: the cross product point of a seed, a
// fault schedule, and a topology.
type Cell struct {
	Seed     uint64
	Schedule string
	Topology Topology
}

// ID renders the canonical cell ID, e.g. "seed=7/sched=powercut/topo=replica".
func (c Cell) ID() string {
	return fmt.Sprintf("seed=%d/sched=%s/topo=%s", c.Seed, c.Schedule, c.Topology)
}

// ParseCellID parses an ID in the format produced by Cell.ID.
func ParseCellID(id string) (Cell, error) {
	var c Cell
	parts := strings.Split(strings.Trim(id, "{} "), "/")
	if len(parts) != 3 {
		return c, fmt.Errorf("chaos: cell ID %q: want seed=S/sched=NAME/topo=T", id)
	}
	for _, p := range parts {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return c, fmt.Errorf("chaos: cell ID part %q: want key=value", p)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return c, fmt.Errorf("chaos: cell ID seed %q: %v", v, err)
			}
			c.Seed = n
		case "sched":
			c.Schedule = v
		case "topo":
			c.Topology = Topology(v)
		default:
			return c, fmt.Errorf("chaos: cell ID part %q: unknown key", p)
		}
	}
	if c.Schedule == "" || c.Topology == "" {
		return c, fmt.Errorf("chaos: cell ID %q: missing sched or topo", id)
	}
	return c, nil
}

// CellResult is the outcome of one grid cell.
type CellResult struct {
	ID       string   `json:"id"`
	Seed     uint64   `json:"seed"`
	Schedule string   `json:"schedule"`
	Topology Topology `json:"topology"`
	Workload string   `json:"workload"`
	Pass     bool     `json:"pass"`
	// Violations lists every invariant breach, empty on pass.
	Violations []string `json:"violations,omitempty"`
	// Ops counts workload operations driven; Admitted/Responses are
	// the exactly-once ledger (every admitted request must produce
	// exactly one response).
	Ops       int64 `json:"ops"`
	Admitted  int64 `json:"admitted"`
	Responses int64 `json:"responses"`
	// LinkDown counts operations acknowledged with the sanctioned
	// "durable locally, replication unconfirmed" outcome.
	LinkDown int64 `json:"link_down"`
	// FaultsFired counts schedule events that executed; Recoveries
	// counts manifest recoveries performed (crash events plus the
	// final cut-power audit).
	FaultsFired int `json:"faults_fired"`
	Recoveries  int `json:"recoveries"`
	// Digests are the primary's final per-shard page digests at the
	// pre-audit quiesce point (hex); a cell rerun from the same ID
	// must reproduce them bit for bit.
	Digests []string `json:"digests,omitempty"`
	// VirtualEnd is the primary's virtual clock when the cell
	// finished, before the final audit. Deterministic except under
	// schedules with pipelined concurrency (drain), where batching
	// composition — but never surviving state — varies.
	VirtualEnd time.Duration `json:"virtual_end"`
	// BundlePath is where the cell's flight-recorder bundle was
	// written (failing cells only, and only when Config.BundleDir is
	// set).
	BundlePath string `json:"bundle_path,omitempty"`
}

// fail appends a formatted violation.
func (r *CellResult) fail(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}
