package chaos

import (
	"strings"
	"testing"
)

// TestParseCellIDRoundTrip checks the printed cell ID parses back to
// the same cell.
func TestParseCellIDRoundTrip(t *testing.T) {
	cells := []Cell{
		{Seed: 1, Schedule: "steady", Topology: TopoSingle},
		{Seed: 18446744073709551615, Schedule: "cutrace", Topology: TopoReplica},
		{Seed: 42, Schedule: "drain", Topology: TopoNet},
	}
	for _, c := range cells {
		got, err := ParseCellID(c.ID())
		if err != nil {
			t.Fatalf("ParseCellID(%q): %v", c.ID(), err)
		}
		if got != c {
			t.Fatalf("round trip %q: got %+v, want %+v", c.ID(), got, c)
		}
	}
	if _, err := ParseCellID("seed=zzz/sched=a/topo=b"); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, err := ParseCellID("seed=1/sched=a"); err == nil {
		t.Fatal("two-part ID accepted")
	}
}

// TestCellDeterminism reruns one faulted replica cell and requires a
// bit-identical outcome, digests included: the cell ID alone must be a
// complete reproducer.
func TestCellDeterminism(t *testing.T) {
	cfg := Config{MinOps: 200}
	cell := Cell{Seed: 7, Schedule: "powercut", Topology: TopoReplica}
	a := RunCell(cfg, cell)
	b := RunCell(cfg, cell)
	if !a.Pass {
		t.Fatalf("cell %s failed:\n%s", a.ID, strings.Join(a.Violations, "\n"))
	}
	if a.Ops != b.Ops || a.Responses != b.Responses || a.LinkDown != b.LinkDown ||
		a.Recoveries != b.Recoveries || a.VirtualEnd != b.VirtualEnd {
		t.Fatalf("rerun diverged: %+v vs %+v", a, b)
	}
	if len(a.Digests) != len(b.Digests) {
		t.Fatalf("digest count diverged: %v vs %v", a.Digests, b.Digests)
	}
	for i := range a.Digests {
		if a.Digests[i] != b.Digests[i] {
			t.Fatalf("shard %d digest diverged: %s vs %s", i, a.Digests[i], b.Digests[i])
		}
	}

	// Drain's pipelined burst may shift batching (and so virtual
	// time) between runs, but the surviving state must not move.
	da := RunCell(cfg, Cell{Seed: 7, Schedule: "drain", Topology: TopoSingle})
	db := RunCell(cfg, Cell{Seed: 7, Schedule: "drain", Topology: TopoSingle})
	if !da.Pass {
		t.Fatalf("cell %s failed:\n%s", da.ID, strings.Join(da.Violations, "\n"))
	}
	for i := range da.Digests {
		if da.Digests[i] != db.Digests[i] {
			t.Fatalf("drain shard %d digest diverged: %s vs %s", i, da.Digests[i], db.Digests[i])
		}
	}
}

// TestGridSmoke sweeps a small grid across every schedule and
// topology and requires every cell to pass. This is the tier-1 face
// of the chaos matrix; the msnap-chaos command runs bigger grids.
func TestGridSmoke(t *testing.T) {
	for _, wl := range []string{"ycsb-a", "tatp"} {
		rep, err := Run(Config{Seeds: []uint64{1, 42}, Workload: wl, MinOps: 200})
		if err != nil {
			t.Fatalf("workload %s: %v", wl, err)
		}
		if rep.Failed > 0 {
			t.Errorf("workload %s:\n%s", wl, rep.Matrix())
		}
		if rep.Total < 2*7 { // 2 seeds × at least one topo per schedule
			t.Errorf("workload %s: only %d cells", wl, rep.Total)
		}
	}
}

// TestOutageComposesWithClampedPowerCut is the regression pinning the
// interaction of a replica.Link outage window with the gcFloor-clamped
// Array.CutPower: the cutrace schedule fires both at the same virtual
// instant, and the cell must still recover onto a manifest-committed
// epoch on every device with the follower converging afterwards.
func TestOutageComposesWithClampedPowerCut(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		res := RunCell(Config{MinOps: 200}, Cell{Seed: seed, Schedule: "cutrace", Topology: TopoReplica})
		if !res.Pass {
			t.Errorf("cell %s:\n  %s", res.ID, strings.Join(res.Violations, "\n  "))
		}
		if res.FaultsFired < 2 {
			t.Errorf("cell %s: only %d faults fired, want outage + power cut", res.ID, res.FaultsFired)
		}
		if res.Recoveries < 2 {
			t.Errorf("cell %s: %d recoveries, want failover + final audit", res.ID, res.Recoveries)
		}
	}
}

// TestDiffCrashTearsSubPageApply pins the diffcrash schedule: two
// follower crashes tear sub-page-patched µCheckpoint applies (the
// replica topology ships extent/XOR frames by default) around a link
// outage, and every cell must converge through the pre-image hash
// guard's replay/snapshot resync — never by XOR-patching a torn base.
func TestDiffCrashTearsSubPageApply(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		res := RunCell(Config{MinOps: 200}, Cell{Seed: seed, Schedule: "diffcrash", Topology: TopoReplica})
		if !res.Pass {
			t.Errorf("cell %s:\n  %s", res.ID, strings.Join(res.Violations, "\n  "))
		}
		if res.FaultsFired != 3 {
			t.Errorf("cell %s: %d faults fired, want 2 follower crashes + outage", res.ID, res.FaultsFired)
		}
		if res.Recoveries < 3 {
			t.Errorf("cell %s: %d recoveries, want 2 follower rebuilds + final audit", res.ID, res.Recoveries)
		}
	}
}

// TestRunRejectsUnknownAxes checks sweep validation.
func TestRunRejectsUnknownAxes(t *testing.T) {
	if _, err := Run(Config{Schedules: []string{"nope"}}); err == nil {
		t.Fatal("unknown schedule accepted")
	}
	if _, err := Run(Config{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	res := RunCell(Config{}, Cell{Seed: 1, Schedule: "linkflap", Topology: TopoSingle})
	if res.Pass {
		t.Fatal("unsupported schedule/topology pair passed")
	}
}
