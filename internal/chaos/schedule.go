package chaos

import "time"

// FaultKind is one injectable fault.
type FaultKind string

// The injectable faults.
const (
	// FaultPowerCut crashes the primary: the service closes, the
	// array loses power inside the final commit's IO window (sector
	// tearing), and the store recovers through the standard manifest
	// path. On the replica topology this is a failover: the follower
	// is promoted and the torn ex-primary rejoins as a follower.
	FaultPowerCut FaultKind = "powercut"
	// FaultLinkOutage installs a bounded link blackout [At, At+Dur):
	// every replication message overlapping it is lost. Windows are
	// pre-installed at cell start (the link evaluates them by
	// virtual-time overlap), so an outage can legally coincide with
	// any other fault instant.
	FaultLinkOutage FaultKind = "linkout"
	// FaultSlowDisk makes one device a straggler: IO whose service
	// starts in [At, At+Dur) costs Factor× normal latency. Also
	// pre-installed at cell start.
	FaultSlowDisk FaultKind = "slowdisk"
	// FaultFollowerCrash cuts power on the follower machine one
	// nanosecond before its last applied delta's durability point —
	// tearing the tail of its most recent µCheckpoint — then rebuilds
	// a follower over the recovered store and reconnects it, forcing
	// the shipper through its gap replay / snapshot catch-up path.
	FaultFollowerCrash FaultKind = "folcrash"
	// FaultDrain submits a pipelined burst of tagged writes and closes
	// the service while they are still queued, asserting the drain
	// contract: every admitted request gets exactly one real-outcome
	// response, never ErrClosed. The service is then reopened over the
	// same store and the workload continues. On the net topology the
	// burst goes over TCP and the server is closed mid-flight instead.
	FaultDrain FaultKind = "drain"
)

// Target selects which component a fault event applies to.
type Target string

// Fault targets.
const (
	// TargetPrimary is the primary machine / service.
	TargetPrimary Target = "primary"
	// TargetFollower is the follower machine (replica topology only;
	// events targeting an absent component are skipped).
	TargetFollower Target = "follower"
	// TargetLink is the replication link (replica topology only).
	TargetLink Target = "link"
)

// Event is one scheduled fault: at virtual time At, inject Kind on
// Target. Window faults (linkout, slowdisk) span [At, At+Dur) and are
// pre-installed before the workload starts; point faults (powercut,
// folcrash, drain) fire at the first quiescent instant at or after At
// — the runner drives one synchronous operation at a time and checks
// the primary's virtual clock between operations, so firing points
// are deterministic.
type Event struct {
	At     time.Duration `json:"at"`
	Dur    time.Duration `json:"dur,omitempty"`
	Target Target        `json:"target"`
	Kind   FaultKind     `json:"kind"`
	// Dev is the straggling device index for slowdisk.
	Dev int `json:"dev,omitempty"`
	// Factor is the slowdisk latency multiplier.
	Factor int `json:"factor,omitempty"`
}

// Schedule is a named fault schedule plus the topologies it applies
// to.
type Schedule struct {
	Name   string
	Desc   string
	Topos  []Topology
	Events []Event
}

// Supports reports whether the schedule runs on topo.
func (s Schedule) Supports(topo Topology) bool {
	for _, t := range s.Topos {
		if t == topo {
			return true
		}
	}
	return false
}

// Schedules returns the built-in fault schedules. Virtual-time
// instants are calibrated to the cell's op rate (a synchronously
// replicated write costs on the order of 100µs virtual), so every
// event fires well inside the default op budget.
func Schedules() []Schedule {
	return []Schedule{
		{
			Name:  "steady",
			Desc:  "no faults: control cell, exercises only the final cut-power audit",
			Topos: []Topology{TopoSingle, TopoReplica, TopoNet},
		},
		{
			Name:  "powercut",
			Desc:  "primary power cut mid-commit at 4ms, manifest recovery (failover on replica)",
			Topos: []Topology{TopoSingle, TopoReplica},
			Events: []Event{
				{At: 4 * time.Millisecond, Target: TargetPrimary, Kind: FaultPowerCut},
			},
		},
		{
			Name:  "linkflap",
			Desc:  "two link outage windows, one outlasting the shipper's retry budget so writes ack ErrLinkDown and the gap replays",
			Topos: []Topology{TopoReplica},
			Events: []Event{
				{At: 1500 * time.Microsecond, Dur: 2500 * time.Microsecond, Target: TargetLink, Kind: FaultLinkOutage},
				{At: 6 * time.Millisecond, Dur: 800 * time.Microsecond, Target: TargetLink, Kind: FaultLinkOutage},
			},
		},
		{
			Name:  "slowdisk",
			Desc:  "fail-slow straggler windows (8x latency) on a primary and a follower device",
			Topos: []Topology{TopoSingle, TopoReplica},
			Events: []Event{
				{At: 1 * time.Millisecond, Dur: 6 * time.Millisecond, Target: TargetPrimary, Kind: FaultSlowDisk, Dev: 0, Factor: 8},
				{At: 2 * time.Millisecond, Dur: 6 * time.Millisecond, Target: TargetFollower, Kind: FaultSlowDisk, Dev: 1, Factor: 8},
			},
		},
		{
			Name:  "folcrash",
			Desc:  "follower power cut tearing its last applied µCheckpoint mid-batch, rebuild, gap catch-up",
			Topos: []Topology{TopoReplica},
			Events: []Event{
				{At: 3 * time.Millisecond, Target: TargetFollower, Kind: FaultFollowerCrash},
			},
		},
		{
			Name:  "drain",
			Desc:  "service drain mid-pipeline: close with a tagged burst still queued, assert exactly-once, reopen",
			Topos: []Topology{TopoSingle, TopoReplica, TopoNet},
			Events: []Event{
				{At: 2 * time.Millisecond, Target: TargetPrimary, Kind: FaultDrain},
			},
		},
		{
			Name: "diffcrash",
			Desc: "follower crashes tearing sub-page-patched batch applies (2ms and 6ms) around a link outage; the pre-image hash chain must force replay/snapshot resync, never silent XOR corruption",
			// The replica topology ships sub-page frames by default, so
			// each crash tears a µCheckpoint whose pages were assembled
			// from extent patches and XOR deltas. The rebuilt follower's
			// torn pages no longer match any shipped pre-image; the
			// byte-identical-prefix invariant (base-hash validation
			// before any write) must reject the next XOR frame and drive
			// catch-up instead of patching a diverged base. The outage
			// window between the crashes piles up a gap so the second
			// crash lands on a follower that just resynced.
			Topos: []Topology{TopoReplica},
			Events: []Event{
				{At: 2 * time.Millisecond, Target: TargetFollower, Kind: FaultFollowerCrash},
				{At: 4 * time.Millisecond, Dur: 1500 * time.Microsecond, Target: TargetLink, Kind: FaultLinkOutage},
				{At: 6 * time.Millisecond, Target: TargetFollower, Kind: FaultFollowerCrash},
			},
		},
		{
			Name:  "cutrace",
			Desc:  "link outage window overlapping a power cut at the same virtual instant (outage 3-5ms, cut at 3ms)",
			Topos: []Topology{TopoReplica},
			Events: []Event{
				{At: 3 * time.Millisecond, Dur: 2 * time.Millisecond, Target: TargetLink, Kind: FaultLinkOutage},
				{At: 3 * time.Millisecond, Target: TargetPrimary, Kind: FaultPowerCut},
			},
		},
	}
}

// FindSchedule returns the named built-in schedule.
func FindSchedule(name string) (Schedule, bool) {
	for _, s := range Schedules() {
		if s.Name == name {
			return s, true
		}
	}
	return Schedule{}, false
}

// ScheduleNames returns the built-in schedule names in grid order.
func ScheduleNames() []string {
	all := Schedules()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}
