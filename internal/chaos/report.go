package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report is the machine-readable outcome of a grid sweep.
type Report struct {
	Workload   string       `json:"workload"`
	Seeds      []uint64     `json:"seeds"`
	Schedules  []string     `json:"schedules"`
	Topologies []Topology   `json:"topologies"`
	Cells      []CellResult `json:"cells"`
	Total      int          `json:"total"`
	Failed     int          `json:"failed"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FailedCells returns the failing cells, grid order.
func (r *Report) FailedCells() []CellResult {
	var out []CellResult
	for _, c := range r.Cells {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Matrix renders a human-readable pass/fail matrix: one row per
// (schedule, topology), one column per seed, followed by the failing
// cells' IDs and violations. Any failing ID feeds straight back into
// RunCell (or msnap-chaos -cell) as a reproducer.
func (r *Report) Matrix() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos matrix: workload=%s, %d cells, %d failed\n", r.Workload, r.Total, r.Failed)
	wide := 0
	rows := make(map[string][]CellResult)
	var order []string
	for _, c := range r.Cells {
		row := fmt.Sprintf("%s/%s", c.Schedule, c.Topology)
		if _, ok := rows[row]; !ok {
			order = append(order, row)
		}
		rows[row] = append(rows[row], c)
		if len(row) > wide {
			wide = len(row)
		}
	}
	fmt.Fprintf(&b, "%-*s", wide+2, "")
	for _, s := range r.Seeds {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("seed=%d", s))
	}
	b.WriteByte('\n')
	for _, row := range order {
		fmt.Fprintf(&b, "%-*s", wide+2, row)
		byseed := make(map[uint64]CellResult, len(rows[row]))
		for _, c := range rows[row] {
			byseed[c.Seed] = c
		}
		for _, s := range r.Seeds {
			c, ok := byseed[s]
			switch {
			case !ok:
				fmt.Fprintf(&b, " %9s", "-")
			case c.Pass:
				fmt.Fprintf(&b, " %9s", "ok")
			default:
				fmt.Fprintf(&b, " %9s", "FAIL")
			}
		}
		b.WriteByte('\n')
	}
	for _, c := range r.FailedCells() {
		fmt.Fprintf(&b, "\nFAIL %s (%d violations):\n", c.ID, len(c.Violations))
		for i, v := range c.Violations {
			if i == 8 {
				fmt.Fprintf(&b, "  ... %d more\n", len(c.Violations)-i)
				break
			}
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}
