package chaos

import (
	"fmt"

	"memsnap/internal/shard"
	"memsnap/internal/workload"
)

// opSource adapts a workload generator to a deterministic stream of
// shard operations.
type opSource interface {
	Next() shard.Op
}

// Workloads lists the selectable workload names.
func Workloads() []string { return []string{"ycsb-a", "ycsb-b", "ycsb-f", "tatp", "tpcc"} }

// newSource builds the named workload seeded from the cell seed.
// Keyspaces are kept small so the mixed ops collide on hot keys and
// every shard sees steady write traffic.
func newSource(name string, seed uint64) (opSource, error) {
	switch name {
	case "", "ycsb-a":
		cfg := workload.YCSBWorkloadA()
		cfg.Records = 512
		return &ycsbSource{y: workload.NewYCSB(seed, cfg)}, nil
	case "ycsb-b":
		cfg := workload.YCSBWorkloadB()
		cfg.Records = 512
		return &ycsbSource{y: workload.NewYCSB(seed, cfg)}, nil
	case "ycsb-f":
		cfg := workload.YCSBWorkloadF()
		cfg.Records = 512
		return &ycsbSource{y: workload.NewYCSB(seed, cfg)}, nil
	case "tatp":
		return &tatpSource{t: workload.NewTATP(seed, 1024)}, nil
	case "tpcc":
		return &tpccSource{t: workload.NewTPCC(seed, 4)}, nil
	}
	return nil, fmt.Errorf("chaos: unknown workload %q (have %v)", name, Workloads())
}

// ycsbSource maps the YCSB mixed-ratio generator onto shard ops:
// reads become gets, updates and inserts become puts, and the
// read-modify-write transaction becomes an atomic add.
type ycsbSource struct {
	y *workload.YCSB
}

func (s *ycsbSource) Next() shard.Op {
	op := s.y.Next()
	key := fmt.Sprintf("y%06d", op.Key)
	switch op.Kind {
	case workload.YCSBRead:
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: key}
	case workload.YCSBRMW:
		return shard.Op{Kind: shard.OpAdd, Tenant: "t", Key: key, Value: op.Value}
	default: // update, insert
		return shard.Op{Kind: shard.OpPut, Tenant: "t", Key: key, Value: op.Value}
	}
}

// tatpSource maps TATP onto shard ops over subscriber and
// call-forwarding records.
type tatpSource struct {
	t *workload.TATP
}

func (s *tatpSource) Next() shard.Op {
	tx := s.t.Next()
	sub := fmt.Sprintf("sub%06d", tx.Subscriber)
	cf := fmt.Sprintf("cf%06d-%d", tx.Subscriber, tx.AIType)
	switch tx.Op {
	case workload.TATPGetSubscriberData, workload.TATPGetAccessData:
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: sub}
	case workload.TATPGetNewDestination:
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: cf}
	case workload.TATPUpdateSubscriberData:
		return shard.Op{Kind: shard.OpPut, Tenant: "t", Key: sub, Value: uint64(tx.AIType)}
	case workload.TATPUpdateLocation:
		return shard.Op{Kind: shard.OpPut, Tenant: "t", Key: sub, Value: uint64(tx.Location)}
	case workload.TATPInsertCallForwarding:
		return shard.Op{Kind: shard.OpPut, Tenant: "t", Key: cf, Value: uint64(tx.Subscriber) + 1}
	default: // TATPDeleteCallForwarding
		return shard.Op{Kind: shard.OpDelete, Tenant: "t", Key: cf}
	}
}

// tpccSource maps TPC-C onto per-district counters: new orders and
// deliveries bump order counters, payments bump year-to-date sums,
// and the read transactions probe them.
type tpccSource struct {
	t *workload.TPCC
}

func (s *tpccSource) Next() shard.Op {
	tx := s.t.Next()
	district := fmt.Sprintf("w%02d-d%02d", tx.Warehouse, tx.District)
	switch tx.Op {
	case workload.TPCCNewOrder:
		return shard.Op{Kind: shard.OpAdd, Tenant: "t", Key: district + "-orders", Value: uint64(len(tx.Items))}
	case workload.TPCCPayment:
		return shard.Op{Kind: shard.OpAdd, Tenant: "t", Key: district + "-ytd", Value: uint64(tx.Amount%10000) + 1}
	case workload.TPCCDelivery:
		return shard.Op{Kind: shard.OpAdd, Tenant: "t", Key: district + "-delivered", Value: 1}
	case workload.TPCCOrderStatus:
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: district + "-orders"}
	default: // TPCCStockLevel
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: district + "-ytd"}
	}
}
