package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"memsnap/internal/core"
	"memsnap/internal/netsvc"
	"memsnap/internal/proto"
	"memsnap/internal/replica"
	"memsnap/internal/shard"
)

// Config parameterizes a grid sweep. The zero value sweeps the full
// built-in grid: 3 seeds × every schedule × every supporting topology
// under the default YCSB-A workload.
type Config struct {
	// Seeds are the cell seeds (default 1, 7, 42).
	Seeds []uint64
	// Schedules restricts the fault schedules by name (default all).
	Schedules []string
	// Topologies restricts the topologies (default all).
	Topologies []Topology
	// Workload names the generator (see Workloads; default ycsb-a).
	Workload string
	// Shards is the service's shard count (default 2).
	Shards int
	// RegionBytes is the per-shard region size (default 256 KiB).
	RegionBytes int64
	// MinOps is the per-cell workload op floor (default 400); a cell
	// runs until it reaches MinOps and every scheduled fault fired.
	MinOps int
	// BundleDir, when non-empty, makes every failing cell write a
	// flight-recorder bundle (the cell's trace ring, stats and final
	// metrics — see obs.WriteBundle) into this directory, named after
	// the cell ID; CellResult.BundlePath records where.
	BundleDir string
}

func (c *Config) fill() {
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1, 7, 42}
	}
	if len(c.Schedules) == 0 {
		c.Schedules = ScheduleNames()
	}
	if len(c.Topologies) == 0 {
		c.Topologies = Topologies()
	}
	if c.Workload == "" {
		c.Workload = "ycsb-a"
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.RegionBytes <= 0 {
		c.RegionBytes = 1 << 18
	}
	if c.MinOps <= 0 {
		c.MinOps = 400
	}
}

// Run sweeps the grid sequentially (cells share process-global pools,
// so they must not overlap) and returns the matrix report.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	for _, name := range cfg.Schedules {
		if _, ok := FindSchedule(name); !ok {
			return nil, fmt.Errorf("chaos: unknown schedule %q (have %v)", name, ScheduleNames())
		}
	}
	if _, err := newSource(cfg.Workload, 0); err != nil {
		return nil, err
	}
	rep := &Report{
		Workload:   cfg.Workload,
		Seeds:      cfg.Seeds,
		Schedules:  cfg.Schedules,
		Topologies: cfg.Topologies,
	}
	for _, name := range cfg.Schedules {
		sched, _ := FindSchedule(name)
		for _, topo := range cfg.Topologies {
			if !sched.Supports(topo) {
				continue
			}
			for _, seed := range cfg.Seeds {
				rep.Cells = append(rep.Cells, RunCell(cfg, Cell{Seed: seed, Schedule: name, Topology: topo}))
			}
		}
	}
	rep.Total = len(rep.Cells)
	for _, c := range rep.Cells {
		if !c.Pass {
			rep.Failed++
		}
	}
	return rep, nil
}

// RunCell executes one grid cell and asserts every invariant. A rerun
// of the same (cfg, cell) replays the same workload stream, fault
// instants, and final digests, which is what makes a printed cell ID
// a standalone reproducer (see the package comment for the one
// carve-out: virtual-time drift under pipelined-concurrency faults).
func RunCell(cfg Config, cell Cell) CellResult {
	cfg.fill()
	res := CellResult{
		ID: cell.ID(), Seed: cell.Seed, Schedule: cell.Schedule,
		Topology: cell.Topology, Workload: cfg.Workload,
	}
	sched, ok := FindSchedule(cell.Schedule)
	if !ok {
		res.fail("unknown schedule %q", cell.Schedule)
		return res
	}
	if !sched.Supports(cell.Topology) {
		res.fail("schedule %q does not support topology %q (topos: %v)", cell.Schedule, cell.Topology, sched.Topos)
		return res
	}
	src, err := newSource(cfg.Workload, cell.Seed)
	if err != nil {
		res.fail("%v", err)
		return res
	}

	basePages, baseSlices := core.CapturePoolStats()
	baseExt := core.CaptureExtentStats()
	baseEnc := replica.EncPoolStats()
	cl, err := buildCluster(cell, cfg.Shards, cfg.RegionBytes)
	if err != nil {
		res.fail("build %s topology: %v", cell.Topology, err)
		return res
	}

	d := &driver{cfg: cfg, cl: cl, md: newModel(), src: src, res: &res,
		lastKeyByShard: make([]string, cfg.Shards)}
	d.installWindows(sched)
	d.seedPhase()
	d.runLoop(sched)
	d.endPhase()
	d.finalAudit()
	cl.teardown()
	res.Recoveries = cl.recoveries

	// Leak accounting: with the cell fully torn down, the capture
	// pools must be back at their cell-start in-use level.
	endPages, endSlices := core.CapturePoolStats()
	if got, want := endPages.InUse(), basePages.InUse(); got != want {
		res.fail("leak: capture page pool in-use %d, was %d at cell start", got, want)
	}
	if got, want := endSlices.InUse(), baseSlices.InUse(); got != want {
		res.fail("leak: capture slice pool in-use %d, was %d at cell start", got, want)
	}
	if got, want := core.CaptureExtentStats().InUse(), baseExt.InUse(); got != want {
		res.fail("leak: diff extent pool in-use %d, was %d at cell start", got, want)
	}
	if got, want := replica.EncPoolStats().InUse(), baseEnc.InUse(); got != want {
		res.fail("leak: delta encoding pool in-use %d, was %d at cell start", got, want)
	}

	res.Pass = len(res.Violations) == 0
	if !res.Pass && cfg.BundleDir != "" {
		writeCellBundle(cfg.BundleDir, cl, &res)
	}
	return res
}

// driver runs one cell: it feeds workload ops through the cluster one
// at a time (one outstanding op keeps virtual time, and therefore the
// whole cell, deterministic), fires schedule events at quiescent
// instants, and shadows every outcome in the model.
type driver struct {
	cfg Config
	cl  *cluster
	md  *model
	src opSource
	res *CellResult

	// probes holds one key routed to each shard, used to settle every
	// shard with a single-op commit after pipelined phases.
	probes []string
	// lastKeyByShard tracks the most recent write key per shard: with
	// one synchronous client, a power cut can tear at most the final
	// commit of each shard, so exactly these keys become uncertain.
	lastKeyByShard []string
	pending        []Event
	drainRound     int
	settleSeq      uint64
}

// installWindows pre-installs window faults (their injection points
// evaluate virtual-time overlap, so installing them ahead of time is
// exact) and queues point faults, sorted by instant.
func (d *driver) installWindows(sched Schedule) {
	for _, ev := range sched.Events {
		switch ev.Kind {
		case FaultLinkOutage:
			if d.cl.link == nil {
				continue
			}
			d.cl.link.OutageWindow(ev.At, ev.At+ev.Dur)
			if end := ev.At + ev.Dur; end > d.cl.outageEnd {
				d.cl.outageEnd = end
			}
			d.res.FaultsFired++
		case FaultSlowDisk:
			switch ev.Target {
			case TargetPrimary:
				d.cl.sys.Array().SetStraggler(ev.Dev, ev.At, ev.At+ev.Dur, ev.Factor)
			case TargetFollower:
				if d.cl.folSys == nil {
					continue
				}
				d.cl.folSys.Array().SetStraggler(ev.Dev, ev.At, ev.At+ev.Dur, ev.Factor)
			default:
				d.res.fail("slowdisk event targets %q: no device there", ev.Target)
				continue
			}
			d.res.FaultsFired++
		default:
			if ev.Kind == FaultFollowerCrash && d.cl.fol == nil {
				continue
			}
			d.pending = append(d.pending, ev)
		}
	}
	sort.SliceStable(d.pending, func(i, j int) bool { return d.pending[i].At < d.pending[j].At })
}

// seedPhase finds one probe key per shard and writes it, so every
// shard opens with at least one commit before any fault can fire.
func (d *driver) seedPhase() {
	d.probes = make([]string, d.cfg.Shards)
	found := 0
	for i := 0; i < 1<<16 && found < d.cfg.Shards; i++ {
		k := fmt.Sprintf("probe%05d", i)
		if sh := d.cl.svc.ShardOf("t", k); d.probes[sh] == "" {
			d.probes[sh] = k
			found++
		}
	}
	if found < d.cfg.Shards {
		d.res.fail("no probe key found for %d of %d shards", d.cfg.Shards-found, d.cfg.Shards)
		return
	}
	d.settle()
}

// settle writes one probe key per shard synchronously, guaranteeing
// each shard's most recent commit holds exactly one op (the tear
// granularity lastKeyByShard assumes) and flushing any replication
// gap left by an outage or follower rebuild.
func (d *driver) settle() {
	for sh := 0; sh < d.cfg.Shards; sh++ {
		d.settleSeq++
		d.apply(shard.Op{Kind: shard.OpPut, Tenant: "t", Key: d.probes[sh], Value: d.settleSeq})
	}
}

// runLoop drives workload ops until the op floor is met and every
// point fault has fired at its scheduled virtual instant.
func (d *driver) runLoop(sched Schedule) {
	minOps, maxOps := int64(d.cfg.MinOps), int64(d.cfg.MinOps)*20
	for d.res.Ops < minOps || len(d.pending) > 0 {
		if d.res.Ops >= maxOps {
			d.res.fail("op budget exhausted at %v with %d scheduled faults still pending", d.cl.now(), len(d.pending))
			return
		}
		for len(d.pending) > 0 && d.cl.now() >= d.pending[0].At {
			ev := d.pending[0]
			d.pending = d.pending[1:]
			d.fire(ev)
			d.res.FaultsFired++
		}
		d.apply(d.src.Next())
	}
	// Outlive any remaining outage window so the end-phase settle can
	// replicate cleanly.
	for d.cl.outageEnd > 0 && d.cl.now() <= d.cl.outageEnd && d.res.Ops < maxOps {
		d.apply(d.src.Next())
	}
}

// fire executes one point fault at a quiescent instant (no op in
// flight).
func (d *driver) fire(ev Event) {
	switch ev.Kind {
	case FaultPowerCut:
		if d.cl.topo == TopoReplica {
			if err := d.cl.failover(ev, d.res); err != nil {
				d.res.fail("failover: %v", err)
				return
			}
			// The promoted follower holds every confirmed write;
			// only unconfirmed (ErrLinkDown) suffixes are ambiguous.
			d.md.failover()
			return
		}
		if err := d.cl.svc.Close(); err != nil {
			d.res.fail("powercut close: %v", err)
		}
		cutAt := d.cl.cutPrimary(ev.At, 0x1)
		d.markTearUncertain()
		if err := d.cl.recoverPrimary(cutAt, d.res); err != nil {
			d.res.fail("powercut: %v", err)
		}
	case FaultFollowerCrash:
		if err := d.cl.crashFollower(d.res); err != nil {
			d.res.fail("folcrash: %v", err)
		}
	case FaultDrain:
		if d.cl.topo == TopoNet {
			d.fireDrainNet()
		} else {
			d.fireDrain()
		}
	default:
		d.res.fail("unhandled point fault %q", ev.Kind)
	}
}

// markTearUncertain flags each shard's most recent write key: a power
// cut inside the final commits' IO window can roll exactly those back.
func (d *driver) markTearUncertain() {
	for _, key := range d.lastKeyByShard {
		if key != "" {
			d.md.markUncertain(key)
		}
	}
}

// apply drives one synchronous operation and validates its outcome
// against the model.
func (d *driver) apply(op shard.Op) {
	d.res.Ops++
	d.res.Admitted++
	r := d.cl.do(op)
	d.res.Responses++
	key := op.Key
	switch op.Kind {
	case shard.OpGet:
		if r.Err != nil {
			d.res.fail("get %q: %v", key, r.Err)
			return
		}
		if v := d.md.checkRead(key, r.Value, r.Found); v != "" {
			d.res.fail("%s", v)
		}
	case shard.OpPut:
		switch {
		case r.Err == nil:
			d.md.confirmedWrite(key, op.Value, true)
			d.noteWrite(key)
		case errors.Is(r.Err, replica.ErrLinkDown):
			d.res.LinkDown++
			d.md.unconfirmedWrite(key, op.Value, true)
			d.noteWrite(key)
		default:
			d.res.fail("put %q: unsanctioned error %v", key, r.Err)
		}
	case shard.OpAdd:
		switch {
		case r.Err == nil:
			if v := d.md.checkAdd(key, op.Value, r.Value); v != "" {
				d.res.fail("%s", v)
			}
			d.md.confirmedWrite(key, r.Value, true)
			d.noteWrite(key)
		case errors.Is(r.Err, replica.ErrLinkDown):
			// The response still carries the primary's applied value.
			d.res.LinkDown++
			if v := d.md.checkAdd(key, op.Value, r.Value); v != "" {
				d.res.fail("%s", v)
			}
			d.md.unconfirmedWrite(key, r.Value, true)
			d.noteWrite(key)
		default:
			d.res.fail("add %q: unsanctioned error %v", key, r.Err)
		}
	case shard.OpDelete:
		switch {
		case r.Err == nil:
			if cur, exact := d.md.current(key); exact && r.Found != cur.present {
				d.res.fail("delete %q: found=%v, model says present=%v", key, r.Found, cur.present)
			}
			d.md.confirmedWrite(key, 0, false)
			d.noteWrite(key)
		case errors.Is(r.Err, replica.ErrLinkDown):
			d.res.LinkDown++
			d.md.unconfirmedWrite(key, 0, false)
			d.noteWrite(key)
		default:
			d.res.fail("delete %q: unsanctioned error %v", key, r.Err)
		}
	default:
		d.res.fail("workload produced unsupported op kind %v", op.Kind)
	}
}

func (d *driver) noteWrite(key string) {
	d.lastKeyByShard[d.cl.svc.ShardOf("t", key)] = key
}

// fireDrain pipelines a burst of tagged writes into the service and
// closes it while they are still queued, asserting the drain
// contract: every admitted request receives exactly one real-outcome
// response. The service then reopens over the same store.
func (d *driver) fireDrain() {
	const burst = 24
	d.drainRound++
	resp := make(chan shard.Response, burst)
	keys := make([]string, burst)
	admitted := 0
	for i := 0; i < burst; i++ {
		keys[i] = fmt.Sprintf("drain%d-%02d", d.drainRound, i)
		op := shard.Op{Kind: shard.OpPut, Tenant: "t", Key: keys[i], Value: uint64(7000 + i)}
		if err := d.cl.svc.DoTagged(op, uint64(i+1), resp); err != nil {
			d.res.fail("drain burst admit %d: %v", i, err)
			continue
		}
		d.res.Ops++
		d.res.Admitted++
		admitted++
	}
	if err := d.cl.svc.Close(); err != nil {
		d.res.fail("drain close: %v", err)
	}
	seen := make(map[uint64]bool, admitted)
	for i := 0; i < admitted; i++ {
		select {
		case r := <-resp:
			d.res.Responses++
			if seen[r.Tag] {
				d.res.fail("drain: duplicate response for tag %d", r.Tag)
				continue
			}
			seen[r.Tag] = true
			key := keys[r.Tag-1]
			switch {
			case r.Err == nil:
				d.md.confirmedWrite(key, uint64(7000+int(r.Tag)-1), true)
				d.noteWrite(key)
			case errors.Is(r.Err, replica.ErrLinkDown):
				d.res.LinkDown++
				d.md.unconfirmedWrite(key, uint64(7000+int(r.Tag)-1), true)
				d.noteWrite(key)
			case errors.Is(r.Err, shard.ErrClosed):
				d.res.fail("drain: admitted request %d answered ErrClosed — drain ordering broken", r.Tag)
			default:
				d.res.fail("drain: request %d unsanctioned error %v", r.Tag, r.Err)
			}
		default:
			d.res.fail("drain: %d of %d admitted requests never answered", admitted-i, admitted)
			i = admitted
		}
	}
	// Reopen over the same store and settle each shard.
	svc2, err := shard.New(d.cl.sys, d.cl.shardConfig(d.cl.svc.EndTime()))
	if err != nil {
		d.res.fail("post-drain reopen: %v", err)
		return
	}
	checkRecovery(svc2, "post-drain reopen", d.res)
	if d.cl.ship != nil {
		d.cl.ship.Attach(svc2)
	}
	d.cl.svc = svc2
	d.cl.recoveries++
	d.settle()
}

// fireDrainNet is the drain fault on the TCP topology: concurrent
// pipelined requests race the server's graceful close; afterwards the
// server must have answered exactly what it admitted. The shard
// service itself stays open; a fresh server and client replace the
// drained ones.
func (d *driver) fireDrainNet() {
	const workers, perWorker = 4, 6
	d.drainRound++
	type outcome struct {
		key  string
		val  uint64
		resp proto.Response
		err  error
	}
	results := make([]outcome, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				idx := w*perWorker + i
				key := fmt.Sprintf("drain%d-%02d", d.drainRound, idx)
				val := uint64(9000 + idx)
				q := proto.Request{
					ID:   uint64(d.drainRound)<<32 | uint64(idx+1)<<8,
					Kind: proto.KindPut, Tenant: []byte("t"), Key: []byte(key), Value: val,
				}
				resp, err := d.cl.cli.Do(&q)
				results[idx] = outcome{key: key, val: val, resp: resp, err: err}
			}
		}(w)
	}
	if err := d.cl.srv.Close(); err != nil {
		d.res.fail("net drain: server close: %v", err)
	}
	wg.Wait()
	for _, o := range results {
		switch {
		case o.err != nil:
			// The connection died before a response: the write may or
			// may not have been admitted. Either surviving state is
			// legal; a torn value is not.
			d.md.maybeWrite(o.key, o.val, true)
		case o.resp.Status == proto.StatusOK:
			d.res.Ops++
			d.res.Admitted++
			d.res.Responses++
			d.md.confirmedWrite(o.key, o.val, true)
			d.noteWrite(o.key)
		default:
			d.res.fail("net drain: put %q answered status %v", o.key, o.resp.Status)
		}
	}
	// Admitted ⇒ answered, on the server's own ledger.
	st := d.cl.srv.Stats()
	if st.Requests != st.Responses {
		d.res.fail("net drain: server admitted %d requests but answered %d", st.Requests, st.Responses)
	}
	if st.InFlight != 0 {
		d.res.fail("net drain: %d requests still in flight after close", st.InFlight)
	}
	d.cl.cli.Close()
	srv2, err := netsvc.Serve("127.0.0.1:0", d.cl.svc, netsvc.Config{})
	if err != nil {
		d.res.fail("net drain: reopen server: %v", err)
		return
	}
	cli2, err := netsvc.Dial(srv2.Addr(), 8)
	if err != nil {
		d.res.fail("net drain: redial: %v", err)
		srv2.Close()
		return
	}
	d.cl.srv, d.cl.cli = srv2, cli2
	d.settle()
}

// endPhase quiesces the cell: settle every shard, then assert the
// replica convergence invariant and record the final digests.
func (d *driver) endPhase() {
	d.settle()
	if d.cl.topo == TopoReplica {
		d.cl.checkConverged(d.res)
	}
	if digests, err := d.cl.svc.ShardDigests(); err != nil {
		d.res.fail("final digests: %v", err)
	} else {
		for _, dg := range digests {
			d.res.Digests = append(d.res.Digests, fmt.Sprintf("%016x", dg))
		}
	}
	d.res.VirtualEnd = d.cl.now()
}

// finalAudit is the cell's closing crash drill, run on every cell
// including steady ones: cut power inside the final commits' IO
// window, recover through the manifest, and verify every key the cell
// ever wrote against the model's surviving-state sets.
func (d *driver) finalAudit() {
	cl := d.cl
	if cl.cli != nil {
		cl.cli.Close()
		cl.cli = nil
	}
	if cl.srv != nil {
		cl.srv.Close()
		cl.srv = nil
	}
	if err := cl.svc.Close(); err != nil {
		d.res.fail("final audit: close: %v", err)
	}
	cutAt := cl.cutPrimary(cl.now(), 0x3)
	if cl.ship != nil {
		cl.ship.Close()
		cl.ship = nil
	}
	d.markTearUncertain()
	sys2, doneAt, err := core.Recover(cl.sysOpts, cl.sys.Array(), cutAt)
	if err != nil {
		d.res.fail("final audit: recover: %v", err)
		return
	}
	svc2, err := shard.New(sys2, cl.shardConfig(doneAt))
	if err != nil {
		d.res.fail("final audit: reopen: %v", err)
		return
	}
	cl.recoveries++
	checkRecovery(svc2, "final cut-power audit", d.res)
	bad := 0
	for _, k := range d.md.sortedKeys() {
		r := svc2.Do(shard.Op{Kind: shard.OpGet, Tenant: "t", Key: k})
		if r.Err != nil {
			d.res.fail("final audit: get %q: %v", k, r.Err)
			bad++
		} else if v := d.md.checkRead(k, r.Value, r.Found); v != "" {
			d.res.fail("final audit: %s", v)
			bad++
		}
		if bad >= 5 {
			d.res.fail("final audit: stopping after %d mismatches", bad)
			break
		}
	}
	svc2.Close()
	cl.sys, cl.svc = sys2, svc2
}
