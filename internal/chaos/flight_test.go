package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"memsnap/internal/shard"
)

// TestFailingCellEmitsBundle pins the flight-recorder contract: a cell
// that records violations writes one self-contained JSON bundle whose
// trace section holds the cell's recent span history.
func TestFailingCellEmitsBundle(t *testing.T) {
	dir := t.TempDir()
	cell := Cell{Seed: 1, Schedule: "steady", Topology: TopoSingle}
	cl, err := buildCluster(cell, 2, 1<<18)
	if err != nil {
		t.Fatalf("build cluster: %v", err)
	}
	for i := 0; i < 16; i++ {
		r := cl.do(shard.Op{Kind: shard.OpPut, Tenant: "acme", Key: "k", Value: uint64(i)})
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	cl.teardown()

	res := CellResult{ID: cell.ID()}
	res.fail("synthetic violation: flight bundle test")
	writeCellBundle(dir, cl, &res)
	if res.BundlePath == "" {
		t.Fatalf("no bundle path recorded; violations: %v", res.Violations)
	}
	raw, err := os.ReadFile(res.BundlePath)
	if err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	var doc struct {
		Reason   string `json:"reason"`
		Recorder struct {
			Recorded uint64 `json:"recorded"`
		} `json:"recorder"`
		Metrics string `json:"metrics"`
		Trace   struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if doc.Reason == "" {
		t.Error("bundle has no reason")
	}
	if doc.Recorder.Recorded == 0 {
		t.Error("bundle recorder saw no events")
	}
	if len(doc.Trace.TraceEvents) == 0 {
		t.Error("bundle trace is empty")
	}
	if doc.Metrics == "" {
		t.Error("bundle has no metrics exposition")
	}
}

// TestPassingCellWritesNoBundle pins that BundleDir is failure-only.
func TestPassingCellWritesNoBundle(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seeds: []uint64{1}, MinOps: 50, BundleDir: dir}
	res := RunCell(cfg, Cell{Seed: 1, Schedule: "steady", Topology: TopoSingle})
	if !res.Pass {
		t.Fatalf("steady cell failed: %v", res.Violations)
	}
	if res.BundlePath != "" {
		t.Fatalf("passing cell recorded a bundle path %q", res.BundlePath)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("passing cell left files in the bundle dir: %v", ents)
	}
}

func TestBundleFileName(t *testing.T) {
	got := bundleFileName("seed=7/sched=powercut/topo=replica")
	want := "seed-7_sched-powercut_topo-replica.flight.json"
	if got != want {
		t.Fatalf("bundleFileName = %q, want %q", got, want)
	}
	if filepath.Base(got) != got {
		t.Fatalf("bundle name %q is not a bare file name", got)
	}
}
