package chaos

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"memsnap/internal/obs"
)

// flightRingEvents sizes the per-cell flight-recorder ring. Cells are
// short (hundreds of ops), so this comfortably covers a whole cell;
// on longer runs the ring keeps the most recent window, which is what
// a post-mortem wants.
const flightRingEvents = 1 << 14

// writeCellBundle writes a failing cell's flight-recorder bundle into
// dir, recording the path (or the write error, as one more violation)
// on res. The cluster may be half-built or already torn down: every
// source is optional, and the recorder ring plus the final service
// stats survive teardown.
func writeCellBundle(dir string, cl *cluster, res *CellResult) {
	b := obs.Bundle{
		Reason: fmt.Sprintf("chaos cell %s: %d violation(s): %s",
			res.ID, len(res.Violations), strings.Join(res.Violations, "; ")),
		Vars: res,
	}
	if cl != nil {
		b.Recorder = cl.rec
		if cl.svc != nil {
			b.VirtualNow = cl.svc.EndTime()
			b.Metrics = func(w io.Writer) error { return cl.svc.FormatPrometheus(w) }
		}
	}
	path := filepath.Join(dir, bundleFileName(res.ID))
	if err := obs.WriteBundleFile(path, b); err != nil {
		res.fail("flight bundle: %v", err)
		return
	}
	res.BundlePath = path
}

// bundleFileName maps a cell ID (which contains '/' and '=') onto one
// portable file name, e.g. seed-7_sched-powercut_topo-replica.flight.json.
func bundleFileName(cellID string) string {
	var sb strings.Builder
	for _, r := range cellID {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			sb.WriteRune(r)
		case r == '/':
			sb.WriteByte('_')
		default:
			sb.WriteByte('-')
		}
	}
	return sb.String() + ".flight.json"
}
