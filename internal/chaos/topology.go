package chaos

import (
	"fmt"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/netsvc"
	"memsnap/internal/obs"
	"memsnap/internal/proto"
	"memsnap/internal/replica"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
)

// cluster is one cell's live system: the primary machine and service,
// plus the follower pair (replica topology) or the TCP front end (net
// topology).
type cluster struct {
	topo        Topology
	seed        uint64
	shards      int
	regionBytes int64
	batch       int
	sysOpts     core.Options

	sys *core.System
	svc *shard.Service

	// rec is the cell's flight-recorder ring, shared by every lane the
	// topology has (shard workers, shipper, follower, net edge) so a
	// failing cell's bundle holds the whole recent cross-lane history.
	rec *obs.Recorder

	// Replica topology.
	folSys *core.System
	fol    *replica.Follower
	link   *replica.Link
	ship   *replica.Shipper

	// Net topology.
	srv *netsvc.Server
	cli *netsvc.Client

	// outageEnd is the latest pre-installed link-outage end; fault
	// handlers that need the link up (reconcile after failover) start
	// no earlier than this.
	outageEnd time.Duration

	recoveries int
	nextReqID  uint64
}

// shardConfig builds the service config shared by every (re)open.
func (cl *cluster) shardConfig(startAt time.Duration) shard.Config {
	cfg := shard.Config{
		Shards:      cl.shards,
		RegionBytes: cl.regionBytes,
		BatchSize:   cl.batch,
		StartAt:     startAt,
		Recorder:    cl.rec,
	}
	if cl.ship != nil {
		cfg.Replicator = cl.ship
	}
	return cfg
}

// buildCluster boots the cell's topology from scratch.
func buildCluster(cell Cell, shards int, regionBytes int64) (*cluster, error) {
	cl := &cluster{
		topo:        cell.Topology,
		seed:        cell.Seed,
		shards:      shards,
		regionBytes: regionBytes,
		batch:       4,
		sysOpts:     core.Options{CPUs: shards, Disks: 2, DiskBytesEach: 64 << 20},
		rec:         obs.NewRecorder(flightRingEvents),
	}
	var err error
	if cl.sys, err = core.NewSystem(cl.sysOpts); err != nil {
		return nil, err
	}
	if cell.Topology == TopoReplica {
		if cl.folSys, err = core.NewSystem(cl.sysOpts); err != nil {
			return nil, err
		}
		cl.link = replica.NewLink(replica.LinkConfig{Seed: cell.Seed})
		cl.fol, err = replica.NewFollower(cl.folSys, replica.FollowerConfig{
			Shards: shards, RegionBytes: regionBytes, Recorder: cl.rec,
		})
		if err != nil {
			return nil, err
		}
		cl.ship = replica.NewShipper(cl.link, cl.fol, shards, replica.Config{Mode: replica.Sync, Recorder: cl.rec})
	}
	if cl.svc, err = shard.New(cl.sys, cl.shardConfig(0)); err != nil {
		return nil, err
	}
	if cl.ship != nil {
		cl.ship.Attach(cl.svc)
	}
	if cell.Topology == TopoNet {
		if cl.srv, err = netsvc.Serve("127.0.0.1:0", cl.svc, netsvc.Config{Recorder: cl.rec}); err != nil {
			return nil, err
		}
		if cl.cli, err = netsvc.Dial(cl.srv.Addr(), 8); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// now is the cell's virtual clock: the primary's latest worker time.
func (cl *cluster) now() time.Duration { return cl.svc.EndTime() }

// rng derives a deterministic per-purpose RNG from the cell seed.
func (cl *cluster) rng(salt uint64) *sim.RNG {
	return sim.NewRNG(cl.seed*0x9e3779b97f4a7c15 + salt)
}

// do runs one synchronous operation through the topology's client
// path: directly against the service, or over TCP on the net
// topology.
func (cl *cluster) do(op shard.Op) shard.Response {
	if cl.topo != TopoNet {
		return cl.svc.Do(op)
	}
	cl.nextReqID++
	q := proto.Request{
		ID:     cl.nextReqID,
		Tenant: []byte(op.Tenant),
		Key:    []byte(op.Key),
		Value:  op.Value,
	}
	switch op.Kind {
	case shard.OpGet:
		q.Kind = proto.KindGet
	case shard.OpPut:
		q.Kind = proto.KindPut
	case shard.OpAdd:
		q.Kind = proto.KindAdd
	case shard.OpDelete:
		q.Kind = proto.KindDelete
	default:
		return shard.Response{Err: fmt.Errorf("chaos: op kind %v not mapped onto the wire", op.Kind)}
	}
	p, err := cl.cli.Do(&q)
	if err != nil {
		return shard.Response{Err: err}
	}
	r := shard.Response{Value: p.Value, Found: p.Found}
	if p.Status != proto.StatusOK {
		r.Err = fmt.Errorf("chaos: wire status %v", p.Status)
	}
	return r
}

// cutPrimary cuts the primary array inside (or after) its final
// commit's IO window and returns the cut instant.
func (cl *cluster) cutPrimary(at time.Duration, salt uint64) time.Duration {
	cutAt := at
	for _, st := range cl.svc.Stats() {
		if t := st.LastCommitSubmit + time.Nanosecond; t > cutAt {
			cutAt = t
		}
	}
	cl.sys.Array().CutPower(cutAt, cl.rng(salt))
	return cutAt
}

// recoverPrimary boots a fresh service over the primary's (possibly
// torn) array and swaps it in, recording recovery-consistency
// violations on res.
func (cl *cluster) recoverPrimary(cutAt time.Duration, res *CellResult) error {
	sys2, doneAt, err := core.Recover(cl.sysOpts, cl.sys.Array(), cutAt)
	if err != nil {
		return fmt.Errorf("recover primary: %w", err)
	}
	svc2, err := shard.New(sys2, cl.shardConfig(doneAt))
	if err != nil {
		return fmt.Errorf("reopen primary: %w", err)
	}
	checkRecovery(svc2, "primary power-cut recovery", res)
	if cl.ship != nil {
		cl.ship.Attach(svc2)
	}
	cl.sys, cl.svc = sys2, svc2
	cl.recoveries++
	return nil
}

// checkRecovery asserts the cell's crash-consistency invariant: every
// shard reopened an existing region whose manifest-committed counters
// match a full rescan of its data.
func checkRecovery(svc *shard.Service, what string, res *CellResult) {
	for _, rec := range svc.Recovery() {
		if !rec.Existing {
			res.fail("%s: shard %d reopened as freshly formatted, not from its manifest", what, rec.Shard)
		}
		if !rec.Consistent() {
			res.fail("%s: shard %d manifest/scan mismatch: records %d/%d sum %d/%d (epoch %d)",
				what, rec.Shard, rec.Records, rec.ScanRecords, rec.ValueSum, rec.ScanSum, rec.Epoch)
		}
	}
}

// failover implements FaultPowerCut on the replica topology: close
// and cut the primary mid-commit, promote the follower through
// manifest recovery, then recover the torn ex-primary and rejoin it
// as the new follower, reconciling away its divergent epochs.
func (cl *cluster) failover(ev Event, res *CellResult) error {
	if err := cl.svc.Close(); err != nil {
		res.fail("failover: close primary: %v", err)
	}
	cutAt := cl.cutPrimary(ev.At, 0x1)
	cl.ship.Close()

	ship2 := replica.NewShipper(cl.link, nil, cl.shards, replica.Config{Mode: replica.Sync, Recorder: cl.rec})
	svc2, err := cl.fol.Promote(shard.Config{BatchSize: cl.batch, Replicator: ship2, Recorder: cl.rec})
	if err != nil {
		return fmt.Errorf("promote follower: %w", err)
	}
	ship2.Attach(svc2)
	checkRecovery(svc2, "promotion recovery", res)
	for _, rec := range svc2.Recovery() {
		if rec.Era == 0 {
			res.fail("promotion recovery: shard %d did not bump the replication era", rec.Shard)
		}
	}

	// The torn ex-primary rejoins as the new follower.
	exSys, doneAt, err := core.Recover(cl.sysOpts, cl.sys.Array(), cutAt)
	if err != nil {
		return fmt.Errorf("recover ex-primary: %w", err)
	}
	fol2, err := replica.NewFollower(exSys, replica.FollowerConfig{
		Shards: cl.shards, RegionBytes: cl.regionBytes, StartAt: doneAt, Recorder: cl.rec,
	})
	if err != nil {
		return fmt.Errorf("rejoin ex-primary: %w", err)
	}
	ship2.Connect(fol2)

	// Reconcile once the link is guaranteed back up (an outage window
	// may legally cover the cut instant — the cutrace schedule).
	recAt := svc2.EndTime()
	if doneAt > recAt {
		recAt = doneAt
	}
	if cl.outageEnd > recAt {
		recAt = cl.outageEnd
	}
	if err := ship2.Reconcile(recAt + time.Millisecond); err != nil {
		res.fail("reconcile ex-primary after failover: %v", err)
	}

	cl.sys, cl.folSys = cl.folSys, exSys
	cl.svc, cl.fol, cl.ship = svc2, fol2, ship2
	cl.recoveries++
	return nil
}

// crashFollower implements FaultFollowerCrash: cut the follower's
// array one nanosecond before its last applied delta became durable —
// tearing the tail of its most recent µCheckpoint — rebuild a
// follower over the recovered store, and reconnect it. The next
// shipped commit sees the seq gap and drives replay or snapshot
// catch-up.
func (cl *cluster) crashFollower(res *CellResult) error {
	cutAt := cl.fol.EndTime()
	if cutAt > 0 {
		cutAt -= time.Nanosecond
	}
	cl.folSys.Array().CutPower(cutAt, cl.rng(0x2))
	sys2, doneAt, err := core.Recover(cl.sysOpts, cl.folSys.Array(), cutAt)
	if err != nil {
		return fmt.Errorf("recover follower: %w", err)
	}
	fol2, err := replica.NewFollower(sys2, replica.FollowerConfig{
		Shards: cl.shards, RegionBytes: cl.regionBytes, StartAt: doneAt, Recorder: cl.rec,
	})
	if err != nil {
		return fmt.Errorf("rebuild follower: %w", err)
	}
	// Prefix invariant: a recovered follower can be behind the
	// primary, never ahead (deltas ship only after local durability).
	for sh := 0; sh < cl.shards; sh++ {
		fseq, _ := fol2.LastApplied(sh)
		meta, err := cl.svc.ShardMeta(sh)
		if err != nil {
			return fmt.Errorf("shard %d meta: %w", sh, err)
		}
		if fseq > meta.Seq {
			res.fail("follower crash recovery: shard %d follower seq %d ahead of primary %d",
				sh, fseq, meta.Seq)
		}
	}
	cl.ship.Connect(fol2)
	cl.folSys, cl.fol = sys2, fol2
	cl.recoveries++
	return nil
}

// checkConverged asserts the byte-identical-prefix invariant at a
// quiesced instant: the follower's per-shard digests, sums, and
// replication positions equal the primary's exactly.
func (cl *cluster) checkConverged(res *CellResult) {
	pd, err := cl.svc.ShardDigests()
	if err != nil {
		res.fail("primary digests: %v", err)
		return
	}
	ps, err := cl.svc.ShardSums()
	if err != nil {
		res.fail("primary sums: %v", err)
		return
	}
	fd, fs := cl.fol.Digests(), cl.fol.Sums()
	for sh := 0; sh < cl.shards; sh++ {
		if fd[sh] != pd[sh] {
			res.fail("convergence: shard %d digest %#x != primary %#x", sh, fd[sh], pd[sh])
		}
		if fs[sh] != ps[sh] {
			res.fail("convergence: shard %d sum %d != primary %d", sh, fs[sh], ps[sh])
		}
		meta, err := cl.svc.ShardMeta(sh)
		if err != nil {
			res.fail("shard %d meta: %v", sh, err)
			continue
		}
		fseq, fera := cl.fol.LastApplied(sh)
		if fseq != meta.Seq || fera != meta.Era {
			res.fail("convergence: shard %d follower at (seq %d, era %d), primary at (seq %d, era %d)",
				sh, fseq, fera, meta.Seq, meta.Era)
		}
	}
}

// teardown closes whatever is still open, tolerating half-built
// clusters.
func (cl *cluster) teardown() {
	if cl.cli != nil {
		cl.cli.Close()
	}
	if cl.srv != nil {
		cl.srv.Close()
	}
	if cl.svc != nil {
		cl.svc.Close()
	}
	if cl.ship != nil {
		cl.ship.Close()
	}
}
