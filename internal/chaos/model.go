package chaos

import (
	"fmt"
	"sort"
)

// entry is one point of a key's write history: the value after some
// prefix of the key's writes (present=false encodes absence).
type entry struct {
	val     uint64
	present bool
}

// keyState tracks what the service may legally return for one key.
//
// The last entry is always the current primary-visible state. The
// preceding entries are retained survivability points: after a crash
// the store rolls back to some committed prefix, so the surviving
// value must be one of them. Confirmed (fully replicated, durably
// acked) writes truncate the history to its last two points (the
// final commit of a shard can still be torn by a power cut inside its
// IO window, so the immediately-previous state stays survivable);
// unconfirmed writes (acked ErrLinkDown: durable locally, follower
// unreached) append without truncating, because a failover may land
// on any point of the unconfirmed suffix.
//
// uncertain flips once a crash actually made the current state
// ambiguous; from then on reads check membership in the history
// instead of equality with the last entry, until the next confirmed
// write re-collapses the key.
type keyState struct {
	hist      []entry
	unconf    int // trailing entries not confirmed on the follower
	uncertain bool
}

// model is the per-cell client-side checker: it shadows every write
// the driver issues and validates every read and recovery against the
// set of legally surviving values.
type model struct {
	m map[string]*keyState
}

func newModel() *model { return &model{m: make(map[string]*keyState)} }

func (md *model) state(key string) *keyState {
	ks := md.m[key]
	if ks == nil {
		ks = &keyState{hist: []entry{{present: false}}}
		md.m[key] = ks
	}
	return ks
}

// confirmedWrite records a write that was durably acked with full
// replication confirmation (or no replication configured).
func (md *model) confirmedWrite(key string, val uint64, present bool) {
	ks := md.state(key)
	e := entry{val: val, present: present}
	if ks.uncertain || ks.unconf > 0 {
		// The pre-state was ambiguous; keep the old survivability
		// points (a future torn final commit may roll back to any of
		// them) and append the now-exact current state.
		ks.hist = append(ks.hist, e)
	} else {
		prev := ks.hist[len(ks.hist)-1]
		ks.hist = append(ks.hist[:0], prev, e)
	}
	ks.unconf = 0
	ks.uncertain = false
}

// unconfirmedWrite records a write acked ErrLinkDown: applied and
// durable on the primary, possibly never seen by the follower.
func (md *model) unconfirmedWrite(key string, val uint64, present bool) {
	ks := md.state(key)
	ks.hist = append(ks.hist, entry{val: val, present: present})
	ks.unconf++
}

// current returns the primary-visible state, exact only when the key
// is not uncertain.
func (md *model) current(key string) (entry, bool) {
	ks := md.m[key]
	if ks == nil {
		return entry{}, false
	}
	return ks.hist[len(ks.hist)-1], !ks.uncertain
}

// checkRead validates an OpGet outcome; it returns a violation
// message or "".
func (md *model) checkRead(key string, val uint64, found bool) string {
	ks := md.m[key]
	if ks == nil {
		if found {
			return fmt.Sprintf("read %q: found value %d for a never-written key", key, val)
		}
		return ""
	}
	if !ks.uncertain {
		want := ks.hist[len(ks.hist)-1]
		if found != want.present || (found && val != want.val) {
			return fmt.Sprintf("read %q: got (found=%v val=%d), want (found=%v val=%d)",
				key, found, val, want.present, want.val)
		}
		return ""
	}
	for _, e := range ks.hist {
		if found == e.present && (!found || val == e.val) {
			return ""
		}
	}
	return fmt.Sprintf("read %q: got (found=%v val=%d), not among %d surviving states",
		key, found, val, len(ks.hist))
}

// checkAdd validates an OpAdd post-increment value against the
// pre-state and returns the violation ("" if fine). The caller then
// records the write (confirmed or not) with the returned value.
func (md *model) checkAdd(key string, delta, got uint64) string {
	ks := md.m[key]
	if ks == nil {
		if got != delta {
			return fmt.Sprintf("add %q: post-value %d, want %d on a fresh key", key, got, delta)
		}
		return ""
	}
	if !ks.uncertain {
		cur := ks.hist[len(ks.hist)-1]
		var want uint64
		if cur.present {
			want = cur.val + delta
		} else {
			want = delta
		}
		if got != want {
			return fmt.Sprintf("add %q: post-value %d, want %d", key, got, want)
		}
		return ""
	}
	for _, e := range ks.hist {
		want := delta
		if e.present {
			want = e.val + delta
		}
		if got == want {
			return ""
		}
	}
	return fmt.Sprintf("add %q: post-value %d not derivable from any of %d surviving states",
		key, got, len(ks.hist))
}

// maybeWrite records a write whose admission is unknown (the
// connection died before a response): both the pre-state and the
// written value survive as legal outcomes.
func (md *model) maybeWrite(key string, val uint64, present bool) {
	ks := md.state(key)
	ks.hist = append(ks.hist, entry{val: val, present: present})
	ks.uncertain = true
}

// markUncertain flags a key whose current value may have been rolled
// back by a crash (e.g. the final commit of its shard was torn).
func (md *model) markUncertain(key string) {
	if ks := md.m[key]; ks != nil {
		ks.uncertain = true
	}
}

// failover marks every key with an unconfirmed suffix uncertain: the
// promoted follower holds some prefix of the unconfirmed writes.
// Fully confirmed keys stay exact — synchronous replication acked
// them only after the follower applied them.
func (md *model) failover() {
	for _, ks := range md.m {
		if ks.unconf > 0 {
			ks.uncertain = true
		}
	}
}

// sortedKeys returns the model's keys in deterministic order. Every
// iteration that drives service operations must use it: map order
// would leak scheduling nondeterminism into virtual time.
func (md *model) sortedKeys() []string {
	keys := make([]string, 0, len(md.m))
	for k := range md.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
