package perfbench

// Replica wire benchmark: bytes on the replication link per write
// transaction, with sub-page delta shipping on (the default) and off
// (Config.FullPages — the pre-diffing baseline). Every number here is
// virtual-time deterministic — same seed, same workload, same bytes —
// so BENCH_replica.json is committable and CI gates on the reduction
// factor, not on runner jitter.

import (
	"fmt"

	"memsnap/internal/core"
	"memsnap/internal/replica"
	"memsnap/internal/shard"
	"memsnap/internal/workload"
)

// repShards and repRegionBytes size the benchmark cluster, matching
// the chaos grid defaults.
const (
	repShards      = 2
	repRegionBytes = int64(1 << 18)
	repSeed        = uint64(1)
)

// ReplicaReductionFloor is the committed CI floor for the sub-page
// bytes-per-transaction win on the write-heavy OLTP workloads: diffing
// must ship at least 3x fewer bytes than full pages on TATP and TPC-C.
const ReplicaReductionFloor = 3.0

// ReplicaScenario is one (workload, mode) measurement.
type ReplicaScenario struct {
	Workload string `json:"workload"`
	// Mode is "full" (FullPages baseline) or "diff" (sub-page frames).
	Mode string `json:"mode"`
	Ops  int    `json:"ops"`
	// Txns counts the write transactions (puts, adds, deletes) — the
	// denominator for the per-transaction numbers.
	Txns      int64 `json:"write_txns"`
	WireBytes int64 `json:"wire_bytes"`
	// BytesPerTxn is the headline number: replication link bytes per
	// write transaction.
	BytesPerTxn float64 `json:"bytes_per_txn"`
	// EncodeUsPerTxn is the virtual encode cost (diff scan + frame
	// assembly) per write transaction, microseconds.
	EncodeUsPerTxn float64 `json:"encode_us_per_txn"`
	DiffSavedBytes int64   `json:"diff_saved_bytes"`
	Extents        int64   `json:"extents"`
	// PatchedBytes is the follower-side count of bytes written through
	// decoded frames — page-sized for full frames, the patched runs for
	// extent and XOR frames — so diff mode writes far fewer.
	PatchedBytes int64 `json:"follower_patched_bytes"`
}

// ReplicaReport is the full replica wire benchmark output.
type ReplicaReport struct {
	Note      string            `json:"note"`
	Scale     float64           `json:"scale"`
	Scenarios []ReplicaScenario `json:"scenarios"`
	// Reduction maps workload -> full-pages bytes/txn divided by
	// sub-page bytes/txn.
	Reduction map[string]float64 `json:"bytes_per_txn_reduction"`
}

// ReplicaWorkloads lists the benchmarked workloads in report order.
func ReplicaWorkloads() []string { return []string{"tatp", "tpcc", "ycsb-a"} }

// RunReplica measures every workload in both modes at the given scale
// (scale multiplies the op count) and returns the report.
func RunReplica(scale float64) (*ReplicaReport, error) {
	if scale <= 0 {
		scale = 1
	}
	ops := int(1200 * scale)
	if ops < 200 {
		ops = 200
	}
	r := &ReplicaReport{
		Note:      "bytes on the replication link per write txn; see EXPERIMENTS.md (Sub-page delta shipping)",
		Scale:     scale,
		Reduction: make(map[string]float64, 3),
	}
	for _, wl := range ReplicaWorkloads() {
		full, err := runReplicaMode(wl, ops, true)
		if err != nil {
			return nil, fmt.Errorf("perfbench: %s full-pages: %w", wl, err)
		}
		diff, err := runReplicaMode(wl, ops, false)
		if err != nil {
			return nil, fmt.Errorf("perfbench: %s diffing: %w", wl, err)
		}
		r.Scenarios = append(r.Scenarios, full, diff)
		if diff.BytesPerTxn > 0 {
			r.Reduction[wl] = full.BytesPerTxn / diff.BytesPerTxn
		}
	}
	return r, nil
}

// CheckReplicaCeilings validates the report against the committed
// floors: the OLTP workloads must hold the 3x reduction, and every
// workload must at least improve.
func CheckReplicaCeilings(r *ReplicaReport) error {
	for _, wl := range ReplicaWorkloads() {
		red, ok := r.Reduction[wl]
		if !ok {
			return fmt.Errorf("perfbench: no reduction measured for %s", wl)
		}
		floor := 1.0
		if wl == "tatp" || wl == "tpcc" {
			floor = ReplicaReductionFloor
		}
		if red < floor {
			return fmt.Errorf("perfbench: %s bytes/txn reduction %.2fx below the %.1fx floor", wl, red, floor)
		}
	}
	return nil
}

// runReplicaMode runs one workload through a synchronously replicated
// two-shard service and aggregates the wire accounting.
func runReplicaMode(name string, ops int, fullPages bool) (ReplicaScenario, error) {
	src, err := replicaSource(name, repSeed)
	if err != nil {
		return ReplicaScenario{}, err
	}
	sysOpts := core.Options{CPUs: repShards, DiskBytesEach: 64 << 20}
	folSys, err := core.NewSystem(sysOpts)
	if err != nil {
		return ReplicaScenario{}, err
	}
	link := replica.NewLink(replica.LinkConfig{})
	fol, err := replica.NewFollower(folSys, replica.FollowerConfig{Shards: repShards, RegionBytes: repRegionBytes})
	if err != nil {
		return ReplicaScenario{}, err
	}
	ship := replica.NewShipper(link, fol, repShards, replica.Config{Mode: replica.Sync, FullPages: fullPages})
	sys, err := core.NewSystem(sysOpts)
	if err != nil {
		return ReplicaScenario{}, err
	}
	svc, err := shard.New(sys, shard.Config{Shards: repShards, RegionBytes: repRegionBytes, Replicator: ship})
	if err != nil {
		return ReplicaScenario{}, err
	}
	ship.Attach(svc)

	sc := ReplicaScenario{Workload: name, Mode: "full", Ops: ops}
	if !fullPages {
		sc.Mode = "diff"
	}
	// Warm up to steady state: the first touch of every page ships a
	// full frame (no pre-image yet), which is cold-start noise, not the
	// per-transaction wire cost. The counters are snapshotted after the
	// warmup and subtracted below.
	warmup := ops/4 + 100
	for i := 0; i < warmup; i++ {
		op := src.Next()
		if r := svc.Do(op); r.Err != nil {
			return ReplicaScenario{}, fmt.Errorf("warmup op %d (%v %q): %w", i, op.Kind, op.Key, r.Err)
		}
	}
	baseShip := ship.Stats()
	baseFol := fol.Stats()
	for i := 0; i < ops; i++ {
		op := src.Next()
		if r := svc.Do(op); r.Err != nil {
			return ReplicaScenario{}, fmt.Errorf("op %d (%v %q): %w", i, op.Kind, op.Key, r.Err)
		}
		if op.Kind != shard.OpGet {
			sc.Txns++
		}
	}
	pd, err := svc.ShardDigests()
	if err != nil {
		return ReplicaScenario{}, err
	}
	for sh, fd := range fol.Digests() {
		if fd != pd[sh] {
			return ReplicaScenario{}, fmt.Errorf("shard %d diverged: primary %#x follower %#x", sh, pd[sh], fd)
		}
	}
	if err := svc.Close(); err != nil {
		return ReplicaScenario{}, err
	}

	var encodeUs float64
	for sh, st := range ship.Stats() {
		sc.WireBytes += st.WireBytes - baseShip[sh].WireBytes
		sc.DiffSavedBytes += st.DiffSavedBytes - baseShip[sh].DiffSavedBytes
		sc.Extents += st.Extents - baseShip[sh].Extents
		encodeUs += float64((st.EncodeTime - baseShip[sh].EncodeTime).Microseconds())
	}
	for sh, st := range fol.Stats() {
		sc.PatchedBytes += st.PatchedBytes - baseFol[sh].PatchedBytes
	}
	if err := ship.Close(); err != nil {
		return ReplicaScenario{}, err
	}
	if sc.Txns > 0 {
		sc.BytesPerTxn = float64(sc.WireBytes) / float64(sc.Txns)
		sc.EncodeUsPerTxn = encodeUs / float64(sc.Txns)
	}
	return sc, nil
}

// replicaOpSource is a deterministic stream of shard operations.
type replicaOpSource interface {
	Next() shard.Op
}

// replicaSource builds the named workload generator. The keyspaces
// mirror the chaos grid's: small enough that writes collide on hot
// keys and the pre-image store stays within budget.
func replicaSource(name string, seed uint64) (replicaOpSource, error) {
	switch name {
	case "ycsb-a":
		cfg := workload.YCSBWorkloadA()
		cfg.Records = 512
		return &repYCSB{y: workload.NewYCSB(seed, cfg)}, nil
	case "tatp":
		return &repTATP{t: workload.NewTATP(seed, 1024)}, nil
	case "tpcc":
		return &repTPCC{t: workload.NewTPCC(seed, 4)}, nil
	}
	return nil, fmt.Errorf("unknown replica workload %q", name)
}

type repYCSB struct{ y *workload.YCSB }

func (s *repYCSB) Next() shard.Op {
	op := s.y.Next()
	key := fmt.Sprintf("y%06d", op.Key)
	switch op.Kind {
	case workload.YCSBRead:
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: key}
	case workload.YCSBRMW:
		return shard.Op{Kind: shard.OpAdd, Tenant: "t", Key: key, Value: op.Value}
	default: // update, insert
		return shard.Op{Kind: shard.OpPut, Tenant: "t", Key: key, Value: op.Value}
	}
}

type repTATP struct{ t *workload.TATP }

func (s *repTATP) Next() shard.Op {
	tx := s.t.Next()
	sub := fmt.Sprintf("sub%06d", tx.Subscriber)
	cf := fmt.Sprintf("cf%06d-%d", tx.Subscriber, tx.AIType)
	switch tx.Op {
	case workload.TATPGetSubscriberData, workload.TATPGetAccessData:
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: sub}
	case workload.TATPGetNewDestination:
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: cf}
	case workload.TATPUpdateSubscriberData:
		return shard.Op{Kind: shard.OpPut, Tenant: "t", Key: sub, Value: uint64(tx.AIType)}
	case workload.TATPUpdateLocation:
		return shard.Op{Kind: shard.OpPut, Tenant: "t", Key: sub, Value: uint64(tx.Location)}
	case workload.TATPInsertCallForwarding:
		return shard.Op{Kind: shard.OpPut, Tenant: "t", Key: cf, Value: uint64(tx.Subscriber) + 1}
	default: // TATPDeleteCallForwarding
		return shard.Op{Kind: shard.OpDelete, Tenant: "t", Key: cf}
	}
}

type repTPCC struct{ t *workload.TPCC }

func (s *repTPCC) Next() shard.Op {
	tx := s.t.Next()
	district := fmt.Sprintf("w%02d-d%02d", tx.Warehouse, tx.District)
	switch tx.Op {
	case workload.TPCCNewOrder:
		return shard.Op{Kind: shard.OpAdd, Tenant: "t", Key: district + "-orders", Value: uint64(len(tx.Items))}
	case workload.TPCCPayment:
		return shard.Op{Kind: shard.OpAdd, Tenant: "t", Key: district + "-ytd", Value: uint64(tx.Amount%10000) + 1}
	case workload.TPCCDelivery:
		return shard.Op{Kind: shard.OpAdd, Tenant: "t", Key: district + "-delivered", Value: 1}
	case workload.TPCCOrderStatus:
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: district + "-orders"}
	default: // TPCCStockLevel
		return shard.Op{Kind: shard.OpGet, Tenant: "t", Key: district + "-ytd"}
	}
}
