package perfbench

import "testing"

// TestReplicaBenchCeilings runs the replica wire benchmark at a
// reduced scale and holds it to the committed floors: every workload
// improves, and the OLTP workloads keep the 3x bytes/txn reduction.
// The run is virtual-time deterministic, so this is a hard gate, not a
// flaky perf assertion.
func TestReplicaBenchCeilings(t *testing.T) {
	rep, err := RunReplica(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckReplicaCeilings(rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2*len(ReplicaWorkloads()) {
		t.Fatalf("%d scenarios, want full+diff per workload", len(rep.Scenarios))
	}
	for _, sc := range rep.Scenarios {
		if sc.Txns == 0 || sc.WireBytes == 0 {
			t.Fatalf("%s/%s measured no write traffic: %+v", sc.Workload, sc.Mode, sc)
		}
		switch sc.Mode {
		case "full":
			if sc.DiffSavedBytes != 0 || sc.Extents != 0 {
				t.Fatalf("%s full-pages baseline reports diff stats: %+v", sc.Workload, sc)
			}
		case "diff":
			if sc.DiffSavedBytes == 0 || sc.EncodeUsPerTxn <= 0 {
				t.Fatalf("%s diff mode reports no encode work: %+v", sc.Workload, sc)
			}
		}
	}
}
