// Package perfbench measures the real-machine persist hot path: heap
// allocations, bytes allocated, and wall-clock throughput of the
// Persist pipeline, plus its virtual-time latency distribution. The
// simulation's virtual clocks make the *modeled* cost deterministic;
// this package tracks the orthogonal axis ROADMAP names — how fast the
// simulator itself runs on real hardware — so regressions in the hot
// path show up as numbers, not vibes.
//
// Run produces a machine-readable Report (serialized by memsnap-bench
// -json into BENCH_persist.json). PreChangeBaseline pins the numbers
// measured immediately before the zero-allocation rework, giving every
// future run a fixed trajectory origin.
package perfbench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/obs"
	"memsnap/internal/replica"
	"memsnap/internal/sim"
)

// pagesPerOp is the dirty-set size each benchmark op persists: big
// enough that per-page work dominates, small enough to stay a
// "uCheckpoint", matching the paper's 64 KiB working set (Table 5).
const pagesPerOp = 16

// regionBytes sizes the benchmark region (and the follower's replica
// of it).
const regionBytes int64 = 4 << 20

// SteadyStateAllocCeiling is the committed CI ceiling for the
// persist_steady and persist_steady_traced scenarios: steady-state
// Persist must stay allocation-free — with lifecycle tracing enabled
// too (testing.AllocsPerRun reports whole allocations per op, so any
// value below 1 means zero).
const SteadyStateAllocCeiling = 0.5

// Scenario is one measured benchmark configuration.
type Scenario struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	DirtyPages  int     `json:"dirty_pages_per_op"`
	Ops         int     `json:"ops_measured"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// RealOpsPerSec is wall-clock throughput of the measured loop on
	// the machine running the benchmark (the one deliberately
	// non-deterministic number in the repo).
	RealOpsPerSec float64 `json:"real_ops_per_sec"`
	// VirtualP50Us/VirtualP99Us summarize the simulated Persist
	// latency (microseconds of virtual time) — deterministic.
	VirtualP50Us float64 `json:"virtual_persist_p50_us"`
	VirtualP99Us float64 `json:"virtual_persist_p99_us"`
}

// BaselineEntry pins one scenario's pre-change allocation numbers.
type BaselineEntry struct {
	Name        string  `json:"name"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Report is the full benchmark output.
type Report struct {
	Note      string          `json:"note"`
	Scale     float64         `json:"scale"`
	Baseline  []BaselineEntry `json:"pre_change_baseline"`
	Scenarios []Scenario      `json:"scenarios"`
}

// PreChangeBaseline returns the allocation numbers measured on the
// commit immediately before the zero-allocation persist rework
// (3804cb1, scale 1). These are committed constants, not re-measured:
// they are the fixed origin every future BENCH_persist.json compares
// against.
func PreChangeBaseline() []BaselineEntry {
	return []BaselineEntry{
		{Name: "persist_steady", AllocsPerOp: 109, BytesPerOp: 89740},
		{Name: "persist_capture", AllocsPerOp: 131, BytesPerOp: 156317},
		{Name: "persist_capture_replicated", AllocsPerOp: 240, BytesPerOp: 246312},
	}
}

// Run executes every scenario at the given scale (scale multiplies the
// measured-loop op count; allocation measurements use a fixed run
// count) and returns the report.
func Run(scale float64) (*Report, error) {
	if scale <= 0 {
		scale = 1
	}
	ops := int(1500 * scale)
	if ops < 50 {
		ops = 50
	}
	r := &Report{
		Note:     "real-machine persist hot path; see EXPERIMENTS.md (Real-machine hot path)",
		Scale:    scale,
		Baseline: PreChangeBaseline(),
	}
	for _, fn := range []func(int) (Scenario, error){steady, steadyTraced, capture, captureReplicated} {
		sc, err := fn(ops)
		if err != nil {
			return nil, err
		}
		r.Scenarios = append(r.Scenarios, sc)
	}
	return r, nil
}

// CheckCeilings validates the report against the committed CI
// ceilings: the steady-state scenario must be allocation-free.
func CheckCeilings(r *Report) error {
	for _, sc := range r.Scenarios {
		if (sc.Name == "persist_steady" || sc.Name == "persist_steady_traced") &&
			sc.AllocsPerOp > SteadyStateAllocCeiling {
			return fmt.Errorf("perfbench: %s allocs/op = %g exceeds ceiling %g",
				sc.Name, sc.AllocsPerOp, SteadyStateAllocCeiling)
		}
	}
	return nil
}

// rig is one benchmark's system-under-test: a process with one region
// and one context.
type rig struct {
	sys    *core.System
	ctx    *core.Context
	region *core.Region
}

func newRig() (*rig, error) {
	sys, err := core.NewSystem(core.Options{CPUs: 4})
	if err != nil {
		return nil, err
	}
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	region, err := p.Open(ctx, "bench", regionBytes)
	if err != nil {
		return nil, err
	}
	return &rig{sys: sys, ctx: ctx, region: region}, nil
}

// dirtyAndPersist is the core benchmark op: dirty pagesPerOp pages,
// persist them synchronously.
func (r *rig) dirtyAndPersist() error {
	for i := 0; i < pagesPerOp; i++ {
		pg := r.ctx.PageForWrite(r.region, int64(i)*core.PageSize)
		pg[0]++
	}
	_, err := r.ctx.Persist(r.region, core.MSSync)
	return err
}

// measure runs op through the three instruments: AllocsPerRun for
// allocs/op, MemStats for bytes/op, and a wall-clock loop for real
// throughput.
func measure(name, desc string, ops int, lat *sim.LatencyRecorder, op func() error) (Scenario, error) {
	// Warm up: fault every page in, populate pools and map buckets.
	var opErr error
	for i := 0; i < 64; i++ {
		if err := op(); err != nil {
			return Scenario{}, err
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := op(); err != nil {
			opErr = err
		}
	})
	if opErr != nil {
		return Scenario{}, opErr
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now() //lint:allow walltime real-machine throughput is the measurement here
	for i := 0; i < ops; i++ {
		if err := op(); err != nil {
			return Scenario{}, err
		}
	}
	elapsed := time.Since(start) //lint:allow walltime real-machine throughput is the measurement here
	runtime.ReadMemStats(&m1)
	sum := lat.Summarize()
	return Scenario{
		Name:          name,
		Description:   desc,
		DirtyPages:    pagesPerOp,
		Ops:           ops,
		AllocsPerOp:   allocs,
		BytesPerOp:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
		RealOpsPerSec: float64(ops) / elapsed.Seconds(),
		VirtualP50Us:  float64(sum.P50) / float64(time.Microsecond),
		VirtualP99Us:  float64(sum.P99) / float64(time.Microsecond),
	}, nil
}

// steady measures the bare persist loop: no capture, no replication —
// the path the zero-allocation criterion pins at 0 allocs/op.
func steady(ops int) (Scenario, error) {
	r, err := newRig()
	if err != nil {
		return Scenario{}, err
	}
	return measure("persist_steady",
		"dirty 16 pages + Persist(MSSync), warm pools, no capture",
		ops, r.ctx.PersistLatency, r.dirtyAndPersist)
}

// steadyTraced is steady with observability on: a span recorder
// attached to the context (persist-stage spans and fault instants land
// in the ring every op) and a latency histogram sample per op. Held to
// the same zero-allocation ceiling as persist_steady — tracing must be
// free to leave enabled.
func steadyTraced(ops int) (Scenario, error) {
	r, err := newRig()
	if err != nil {
		return Scenario{}, err
	}
	rec := obs.NewRecorder(4096)
	r.ctx.SetRecorder(rec, obs.ShardTrack(0))
	var hist obs.Histogram
	op := func() error {
		if err := r.dirtyAndPersist(); err != nil {
			return err
		}
		hist.Record(r.ctx.LastBreakdown.Total)
		return nil
	}
	return measure("persist_steady_traced",
		"dirty 16 pages + Persist(MSSync) with span recorder and latency histogram enabled",
		ops, r.ctx.PersistLatency, op)
}

// capture measures persist with commit capture on: every op also
// drains and releases the captured delta, the primary's half of the
// replication pipeline.
func capture(ops int) (Scenario, error) {
	r, err := newRig()
	if err != nil {
		return Scenario{}, err
	}
	r.ctx.CaptureCommits(true)
	var caps []core.CapturedCommit
	op := func() error {
		if err := r.dirtyAndPersist(); err != nil {
			return err
		}
		caps = r.ctx.TakeCaptured()
		releaseCaptured(caps)
		return nil
	}
	return measure("persist_capture",
		"dirty 16 pages + Persist(MSSync) + TakeCaptured + release",
		ops, r.ctx.PersistLatency, op)
}

// captureReplicated measures the full replication round: persist with
// capture, build the delta, apply it on a follower (one MSSync
// uCheckpoint there too), release.
func captureReplicated(ops int) (Scenario, error) {
	r, err := newRig()
	if err != nil {
		return Scenario{}, err
	}
	r.ctx.CaptureCommits(true)
	sysB, err := core.NewSystem(core.Options{CPUs: 4})
	if err != nil {
		return Scenario{}, err
	}
	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: 1, RegionBytes: regionBytes})
	if err != nil {
		return Scenario{}, err
	}
	var seq uint64
	var d replica.Delta
	var flat []core.CommittedPage
	var caps []core.CapturedCommit
	op := func() error {
		if err := r.dirtyAndPersist(); err != nil {
			return err
		}
		caps = r.ctx.TakeCaptured()
		flat = flat[:0]
		for _, cc := range caps {
			flat = append(flat, cc.Pages...)
		}
		seq++
		d = replica.Delta{Shard: 0, Seq: seq, Pages: flat}
		_, st := fol.Apply(r.ctx.Clock().Now(), &d)
		if st.Code != replica.ApplyOK {
			return fmt.Errorf("perfbench: follower apply seq %d: code %d", seq, st.Code)
		}
		releaseCaptured(caps)
		return nil
	}
	return measure("persist_capture_replicated",
		"dirty 16 pages + Persist(MSSync) + capture + follower Apply (MSSync) + release",
		ops, r.ctx.PersistLatency, op)
}

// releaseCaptured returns every captured page to the capture pool.
func releaseCaptured(caps []core.CapturedCommit) {
	for i := range caps {
		caps[i].Release()
	}
}
