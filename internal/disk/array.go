package disk

import (
	"sync"
	"time"

	"memsnap/internal/sim"
)

// Extent names one contiguous run of bytes on the array for vectored
// IO.
type Extent struct {
	Offset int64
	Data   []byte
}

// Array is a striped set of devices presenting one flat address
// space — the paper's two Intel 900Ps striped in 64 KiB blocks.
type Array struct {
	costs   *sim.CostModel
	devices []*Device
	stripe  int64
}

// NewArray builds an array of n devices of capacityEach bytes striped
// at the cost model's StripeSize.
func NewArray(costs *sim.CostModel, n int, capacityEach int64) *Array {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	if n <= 0 {
		n = 1
	}
	a := &Array{costs: costs, stripe: int64(costs.StripeSize)}
	for i := 0; i < n; i++ {
		a.devices = append(a.devices, NewDevice(costs, capacityEach))
	}
	return a
}

// Capacity returns the total array capacity in bytes.
func (a *Array) Capacity() int64 {
	return int64(len(a.devices)) * a.devices[0].Capacity()
}

// NumDevices returns the stripe width.
func (a *Array) NumDevices() int { return len(a.devices) }

// Write issues a contiguous write at virtual time at and returns the
// completion time (the max across devices). Per-device pieces of one
// logical IO are issued as a single command per device: the stripe
// controller coalesces them, so each device pays one base latency.
func (a *Array) Write(at time.Duration, offset int64, data []byte) time.Duration {
	// A fixed-size array keeps the one-extent vector off the heap on
	// the per-commit path.
	ext := [1]Extent{{Offset: offset, Data: data}}
	return a.WriteV(at, ext[:])
}

// WriteV issues a vectored write of several extents as one logical
// operation (MemSnap's scatter/gather uCheckpoint IO). Bytes are
// grouped per device; each device receives one command covering its
// share, paying one base latency plus the transfer of its bytes. The
// returned completion is the time the last device finishes.
func (a *Array) WriteV(at time.Duration, extents []Extent) time.Duration {
	plan := getWritePlan(len(a.devices))
	perDev := plan.perDev
	for _, e := range extents {
		off := e.Offset
		data := e.Data
		for len(data) > 0 {
			stripeIdx := off / a.stripe
			within := off % a.stripe
			take := int(a.stripe - within)
			if take > len(data) {
				take = len(data)
			}
			dev := int(stripeIdx % int64(len(a.devices)))
			row := stripeIdx / int64(len(a.devices))
			perDev[dev].segs = append(perDev[dev].segs, Extent{
				Offset: row*a.stripe + within,
				Data:   data[:take],
			})
			perDev[dev].size += take
			off += int64(take)
			data = data[take:]
		}
	}
	var completion time.Duration
	for i, io := range perDev {
		if io.size == 0 {
			continue
		}
		done := a.devices[i].submitWriteV(at, io.segs, io.size)
		if done > completion {
			completion = done
		}
	}
	if completion == 0 {
		completion = at
	}
	putWritePlan(plan)
	return completion
}

// devIO is one device's share of a vectored write.
type devIO struct {
	segs []Extent
	size int
}

// writePlan is the reusable per-WriteV scatter plan; the devices copy
// segment data synchronously during submit, so the plan recycles as
// soon as WriteV returns.
type writePlan struct {
	perDev []devIO
}

var writePlans sync.Pool

func getWritePlan(devices int) *writePlan {
	p, _ := writePlans.Get().(*writePlan)
	if p == nil {
		//lint:allow hotalloc sync.Pool miss; plans recycle in steady state
		p = &writePlan{}
	}
	if cap(p.perDev) < devices {
		//lint:allow hotalloc plan growth to stripe width, amortized across reuse
		p.perDev = make([]devIO, devices)
	}
	p.perDev = p.perDev[:devices]
	for i := range p.perDev {
		p.perDev[i].segs = p.perDev[i].segs[:0]
		p.perDev[i].size = 0
	}
	return p
}

func putWritePlan(p *writePlan) {
	// Drop the data references so the pooled plan does not pin frames.
	for i := range p.perDev {
		clear(p.perDev[i].segs)
	}
	writePlans.Put(p)
}

// submitWriteV applies several segments as one device command. Undo
// buffers it acquires are parked in d.inflight until released.
//
//memsnap:owns
func (d *Device) submitWriteV(at time.Duration, segs []Extent, total int) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := at
	if d.nextFree > start {
		start = d.nextFree
	}
	completion := start + d.ioCostLocked(start, total)
	d.nextFree = completion
	for _, s := range segs {
		d.checkRange(s.Offset, len(s.Data))
		buf, old := getOldBuf(len(s.Data))
		d.data.readAt(s.Offset, old)
		d.inflight = append(d.inflight, inflightWrite{submit: at, completion: completion, offset: s.Offset, oldData: old, buf: buf})
		d.data.writeAt(s.Offset, s.Data)
		d.bytesWritten += int64(len(s.Data))
	}
	d.writes++
	d.gcInflightLocked(at)
	return completion
}

// Read issues a contiguous read and returns the completion time.
func (a *Array) Read(at time.Duration, offset int64, buf []byte) time.Duration {
	var completion time.Duration
	off := offset
	remaining := buf
	for len(remaining) > 0 {
		stripeIdx := off / a.stripe
		within := off % a.stripe
		take := int(a.stripe - within)
		if take > len(remaining) {
			take = len(remaining)
		}
		dev := int(stripeIdx % int64(len(a.devices)))
		row := stripeIdx / int64(len(a.devices))
		done := a.devices[dev].SubmitRead(at, row*a.stripe+within, remaining[:take])
		if done > completion {
			completion = done
		}
		off += int64(take)
		remaining = remaining[take:]
	}
	if completion == 0 {
		completion = at
	}
	return completion
}

// CutPower tears all devices' in-flight writes at virtual time at.
// The cut is clamped forward to the highest undo-reclaim floor across
// the devices (see Device.CutPower) and the clamped instant is applied
// to every device uniformly, so the whole array crashes at one
// consistent virtual time.
func (a *Array) CutPower(at time.Duration, rng *sim.RNG) {
	for _, d := range a.devices {
		if f := d.GCFloor(); f > at {
			at = f
		}
	}
	for _, d := range a.devices {
		d.CutPower(at, rng)
	}
}

// SetStraggler installs a slow-IO window on device dev (see
// Device.SetStraggler). Because the array fans one logical IO out
// across the stripe and completes at the max across devices, a single
// straggling device throttles the whole array — the fail-slow
// amplification fault schedules exercise.
func (a *Array) SetStraggler(dev int, from, to time.Duration, factor int) {
	a.devices[dev].SetStraggler(from, to, factor)
}

// PeekAt reads array contents without cost, for tests and tooling.
//
//lint:allow faultpath deliberate zero-cost escape hatch for tests and tooling
func (a *Array) PeekAt(offset int64, buf []byte) {
	off := offset
	remaining := buf
	for len(remaining) > 0 {
		stripeIdx := off / a.stripe
		within := off % a.stripe
		take := int(a.stripe - within)
		if take > len(remaining) {
			take = len(remaining)
		}
		dev := int(stripeIdx % int64(len(a.devices)))
		row := stripeIdx / int64(len(a.devices))
		a.devices[dev].PeekAt(row*a.stripe+within, remaining[:take])
		off += int64(take)
		remaining = remaining[take:]
	}
}

// Stats sums the counters across all devices.
func (a *Array) Stats() Stats {
	var total Stats
	for _, d := range a.devices {
		s := d.Stats()
		total.Writes += s.Writes
		total.Reads += s.Reads
		total.BytesWritten += s.BytesWritten
		total.BytesRead += s.BytesRead
	}
	return total
}
