package disk

// sparseBuf is a lazily allocated byte store: chunks materialize on
// first write, so multi-GiB simulated devices cost real memory only
// for the bytes actually used.
type sparseBuf struct {
	capacity int64
	chunks   map[int64][]byte
}

// sparseChunk is the allocation unit.
const sparseChunk = 256 << 10

func newSparseBuf(capacity int64) *sparseBuf {
	return &sparseBuf{capacity: capacity, chunks: make(map[int64][]byte)}
}

func (b *sparseBuf) readAt(off int64, dst []byte) {
	for len(dst) > 0 {
		ci := off / sparseChunk
		within := off % sparseChunk
		n := int64(sparseChunk) - within
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		if chunk := b.chunks[ci]; chunk != nil {
			copy(dst[:n], chunk[within:])
		} else {
			for i := int64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		off += n
		dst = dst[n:]
	}
}

func (b *sparseBuf) writeAt(off int64, src []byte) {
	for len(src) > 0 {
		ci := off / sparseChunk
		within := off % sparseChunk
		n := int64(sparseChunk) - within
		if n > int64(len(src)) {
			n = int64(len(src))
		}
		chunk := b.chunks[ci]
		if chunk == nil {
			//lint:allow hotalloc first-touch chunk materialization, once per chunk for the device lifetime
			chunk = make([]byte, sparseChunk)
			b.chunks[ci] = chunk
		}
		copy(chunk[within:], src[:n])
		off += n
		src = src[n:]
	}
}
