// Package disk simulates the storage hardware of the paper's testbed:
// low-latency PCIe SSDs (Intel 900P class) striped pairwise in 64 KiB
// blocks.
//
// The device model is a single-server FIFO queue per SSD: an IO
// submitted at virtual time t starts at max(t, queue drain time) and
// costs a fixed per-command base latency plus a per-byte transfer
// cost. The base/transfer constants are calibrated against the direct
// disk IO column of the paper's Table 6. Striping splits large IOs
// across devices, which is why large sequential writes outrun a single
// queue-depth-one device — the effect the paper notes for MemSnap's
// random IO (sequential on disk).
//
// Devices persist data immediately but track in-flight writes until
// their completion time; CutPower tears in-flight writes at sector
// granularity, which is exactly the failure the crash-consistency
// machinery upstream (COW object store roots, WAL checksums) must
// survive.
package disk

import (
	"fmt"
	"sync"
	"time"

	"memsnap/internal/pool"
	"memsnap/internal/sim"
)

// Size-classed pools for the pre-write contents snapshots (oldData)
// the tear model keeps per in-flight write. The two classes cover the
// store's IO units (sectors and blocks); larger writes fall back to
// plain allocation.
var (
	oldBufSector = pool.NewPagePool(512)
	oldBufBlock  = pool.NewPagePool(4096)
)

// getOldBuf returns an n-byte scratch buffer plus its pool handle
// (nil when n falls outside the pooled size classes); the caller
// Releases the handle when the undo data is no longer needed.
//
//memsnap:owns
func getOldBuf(n int) (*pool.Page, []byte) {
	switch {
	case n <= 512:
		pg := oldBufSector.Get()
		return pg, pg.Data[:n]
	case n <= 4096:
		pg := oldBufBlock.Get()
		return pg, pg.Data[:n]
	}
	//lint:allow hotalloc oversize old-data reads bypass the sector/block pools; rare
	return nil, make([]byte, n)
}

// Device is one simulated SSD.
type Device struct {
	costs *sim.CostModel

	mu       sync.Mutex
	data     *sparseBuf
	nextFree time.Duration
	inflight []inflightWrite
	// gcFloor is the highest horizon gcInflightLocked has reclaimed
	// undo history up to: state before it cannot be reconstructed, so
	// CutPower clamps earlier cut times forward to it.
	gcFloor time.Duration
	// Straggler window: IO starting in [stragFrom, stragTo) costs
	// stragFactor times the normal base+transfer latency, modeling a
	// degraded device (fail-slow SSD, garbage-collection stall).
	stragFrom, stragTo time.Duration
	stragFactor        int

	writes       int64
	reads        int64
	bytesWritten int64
	bytesRead    int64
}

type inflightWrite struct {
	submit     time.Duration
	completion time.Duration
	offset     int64
	oldData    []byte
	// buf is oldData's pool handle, released when the record is
	// dropped (gc or power cut); nil for unpooled buffers.
	buf *pool.Page
}

// NewDevice returns an empty device of the given capacity in bytes.
func NewDevice(costs *sim.CostModel, capacity int64) *Device {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &Device{costs: costs, data: newSparseBuf(capacity)}
}

// Capacity returns the device size in bytes.
func (d *Device) Capacity() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.data.capacity
}

// SetStraggler installs a slow-IO window: any IO whose service starts
// in [from, to) costs factor times the normal base+transfer latency.
// Windows may be installed ahead of virtual time (fault schedules
// pre-install them), and factor <= 1 clears the window. Queueing still
// applies: a straggling IO delays everything behind it, which is the
// fail-slow amplification the window is meant to exercise.
func (d *Device) SetStraggler(from, to time.Duration, factor int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if factor <= 1 {
		d.stragFrom, d.stragTo, d.stragFactor = 0, 0, 0
		return
	}
	d.stragFrom, d.stragTo, d.stragFactor = from, to, factor
}

// ioCostLocked returns the service cost of an n-byte IO whose service
// starts at start, applying the straggler window if one covers start.
func (d *Device) ioCostLocked(start time.Duration, n int) time.Duration {
	cost := d.costs.DiskBaseLatency + d.costs.TransferCost(n)
	if d.stragFactor > 1 && start >= d.stragFrom && start < d.stragTo {
		cost *= time.Duration(d.stragFactor)
	}
	return cost
}

func (d *Device) checkRange(offset int64, n int) {
	if offset < 0 || offset+int64(n) > d.data.capacity {
		//lint:allow hotalloc fatal-path formatting on an out-of-range IO
		panic(fmt.Sprintf("disk: IO out of range: off=%d len=%d cap=%d", offset, n, d.data.capacity))
	}
}

// SubmitWrite issues a write at virtual time at and returns its
// completion time. Data lands in the backing store immediately but is
// only durable once the returned completion time has passed relative
// to any later CutPower. The undo buffer it acquires is parked in
// d.inflight until gcInflightLocked or CutPower releases it.
//
//memsnap:owns
func (d *Device) SubmitWrite(at time.Duration, offset int64, data []byte) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(offset, len(data))

	start := at
	if d.nextFree > start {
		start = d.nextFree
	}
	completion := start + d.ioCostLocked(start, len(data))
	d.nextFree = completion

	buf, old := getOldBuf(len(data))
	d.data.readAt(offset, old)
	d.inflight = append(d.inflight, inflightWrite{submit: at, completion: completion, offset: offset, oldData: old, buf: buf})
	d.data.writeAt(offset, data)

	d.writes++
	d.bytesWritten += int64(len(data))
	d.gcInflightLocked(at)
	return completion
}

// SubmitRead issues a read at virtual time at, fills buf, and returns
// the completion time.
func (d *Device) SubmitRead(at time.Duration, offset int64, buf []byte) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(offset, len(buf))

	start := at
	if d.nextFree > start {
		start = d.nextFree
	}
	completion := start + d.ioCostLocked(start, len(buf))
	d.nextFree = completion

	d.data.readAt(offset, buf)
	d.reads++
	d.bytesRead += int64(len(buf))
	return completion
}

// gcInflightLocked drops in-flight records that completed before the
// oldest time any caller could still cut power at. We use the issue
// time 'at' as a conservative horizon: a power cut is always injected
// at a time >= the last activity observed by the injector.
func (d *Device) gcInflightLocked(at time.Duration) {
	if len(d.inflight) < 64 {
		return
	}
	kept := d.inflight[:0]
	for _, w := range d.inflight {
		if w.completion > at {
			kept = append(kept, w)
		} else {
			w.buf.Release()
		}
	}
	if len(kept) < len(d.inflight) && at > d.gcFloor {
		d.gcFloor = at
	}
	// Zero the dropped tail so the backing array does not retain
	// released buffers.
	clear(d.inflight[len(kept):])
	d.inflight = kept
}

// CutPower simulates a power failure at virtual time at. Writes whose
// completion is after at are torn: each sector is independently either
// durable or rolled back to its previous contents, chosen by rng.
// Sectors themselves are never torn (disks guarantee sector
// atomicity). The in-flight list is cleared; the device is then in its
// post-crash state.
//
// A cut earlier than undo history the device has already reclaimed
// (gcInflightLocked finalizes writes behind the latest submission
// times) is clamped forward to the reclaim floor: the device cannot
// reconstruct state before it. Callers cutting an Array should go
// through Array.CutPower, which applies one uniform clamped instant
// across all devices — per-device clamping would crash each device at
// a different virtual time and tear cross-device consistency.
func (d *Device) CutPower(at time.Duration, rng *sim.RNG) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if at < d.gcFloor {
		at = d.gcFloor
	}
	sector := d.costs.DiskSectorSize
	// Roll back newest-first so overlapping in-flight writes resolve
	// to the oldest surviving contents for rolled-back sectors.
	for i := len(d.inflight) - 1; i >= 0; i-- {
		w := d.inflight[i]
		if w.completion <= at {
			continue
		}
		for s := 0; s < len(w.oldData); s += sector {
			// Writes issued at or after the cut never reached the
			// device; writes straddling the cut tear per sector.
			if w.submit < at && rng.Float64() < 0.5 {
				continue // this sector made it to the platter
			}
			end := s + sector
			if end > len(w.oldData) {
				end = len(w.oldData)
			}
			d.data.writeAt(w.offset+int64(s), w.oldData[s:end])
		}
	}
	for i := range d.inflight {
		d.inflight[i].buf.Release()
	}
	d.inflight = nil
	d.nextFree = 0
}

// GCFloor reports the time CutPower would clamp an earlier cut
// forward to: the highest horizon the device has reclaimed undo
// history up to (zero while all history is still held).
func (d *Device) GCFloor() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gcFloor
}

// PeekAt copies device contents without charging any cost or touching
// the queue. For tests and tooling only.
//
//lint:allow faultpath deliberate zero-cost escape hatch for tests and tooling
func (d *Device) PeekAt(offset int64, buf []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(offset, len(buf))
	d.data.readAt(offset, buf)
}

// Stats reports device counters.
type Stats struct {
	Writes       int64
	Reads        int64
	BytesWritten int64
	BytesRead    int64
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Writes:       d.writes,
		Reads:        d.reads,
		BytesWritten: d.bytesWritten,
		BytesRead:    d.bytesRead,
	}
}
