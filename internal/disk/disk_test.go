package disk

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"memsnap/internal/sim"
)

func costs() *sim.CostModel { return sim.DefaultCosts() }

func TestWriteReadRoundTrip(t *testing.T) {
	d := NewDevice(costs(), 1<<20)
	data := []byte("persistent bytes")
	d.SubmitWrite(0, 4096, data)
	buf := make([]byte, len(data))
	d.SubmitRead(time.Millisecond, 4096, buf)
	if !bytes.Equal(buf, data) {
		t.Fatalf("read back %q", buf)
	}
}

func TestIOLatencyMatchesTable6DirectColumn(t *testing.T) {
	m := costs()
	d := NewDevice(m, 1<<30)
	cases := []struct {
		bytes  int
		lo, hi time.Duration
	}{
		{4 << 10, 16 * time.Microsecond, 18 * time.Microsecond},
		{64 << 10, 42 * time.Microsecond, 47 * time.Microsecond},
	}
	var at time.Duration
	for _, tc := range cases {
		buf := make([]byte, tc.bytes)
		done := d.SubmitWrite(at, 0, buf)
		lat := done - at
		if lat < tc.lo || lat > tc.hi {
			t.Errorf("%d B write latency %v, want [%v, %v]", tc.bytes, lat, tc.lo, tc.hi)
		}
		at = done
	}
}

func TestQueueSerializes(t *testing.T) {
	d := NewDevice(costs(), 1<<20)
	buf := make([]byte, 4096)
	c1 := d.SubmitWrite(0, 0, buf)
	c2 := d.SubmitWrite(0, 4096, buf) // same submit time: must queue
	if c2 <= c1 {
		t.Fatalf("second IO (%v) did not queue behind first (%v)", c2, c1)
	}
	// An IO after the queue drains starts immediately.
	c3 := d.SubmitWrite(c2+time.Millisecond, 8192, buf)
	if got := c3 - (c2 + time.Millisecond); got != costs().IOCost(4096) {
		t.Fatalf("idle-device IO latency %v", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := NewDevice(costs(), 8192)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range write did not panic")
		}
	}()
	d.SubmitWrite(0, 8000, make([]byte, 4096))
}

func TestCutPowerDurableWritesSurvive(t *testing.T) {
	d := NewDevice(costs(), 1<<20)
	data := bytes.Repeat([]byte{0xAB}, 4096)
	done := d.SubmitWrite(0, 0, data)
	// Power cut strictly after completion: write is durable.
	d.CutPower(done, sim.NewRNG(1))
	buf := make([]byte, 4096)
	d.PeekAt(0, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("completed write torn by power cut")
	}
}

func TestCutPowerTearsInflight(t *testing.T) {
	m := costs()
	d := NewDevice(m, 1<<20)
	data := bytes.Repeat([]byte{0xFF}, 64<<10)
	done := d.SubmitWrite(0, 0, data)
	// Cut in the middle of the IO.
	d.CutPower(done/2, sim.NewRNG(7))
	buf := make([]byte, len(data))
	d.PeekAt(0, buf)
	zeros, ffs, mixed := 0, 0, 0
	for s := 0; s < len(buf); s += m.DiskSectorSize {
		sector := buf[s : s+m.DiskSectorSize]
		switch {
		case bytes.Equal(sector, bytes.Repeat([]byte{0}, m.DiskSectorSize)):
			zeros++
		case bytes.Equal(sector, bytes.Repeat([]byte{0xFF}, m.DiskSectorSize)):
			ffs++
		default:
			mixed++
		}
	}
	if mixed != 0 {
		t.Fatalf("%d sectors torn mid-sector (sector atomicity violated)", mixed)
	}
	if zeros == 0 || ffs == 0 {
		t.Fatalf("tear not partial: %d old, %d new sectors", zeros, ffs)
	}
}

func TestStats(t *testing.T) {
	d := NewDevice(costs(), 1<<20)
	d.SubmitWrite(0, 0, make([]byte, 4096))
	d.SubmitRead(0, 0, make([]byte, 512))
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.BytesWritten != 4096 || s.BytesRead != 512 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestArrayRoundTrip(t *testing.T) {
	a := NewArray(costs(), 2, 1<<20)
	data := make([]byte, 200000) // spans several stripes
	for i := range data {
		data[i] = byte(i * 7)
	}
	a.Write(0, 12345, data)
	buf := make([]byte, len(data))
	a.Read(time.Second, 12345, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("array round trip mismatch")
	}
}

func TestArrayStripingParallelism(t *testing.T) {
	m := costs()
	single := NewArray(m, 1, 1<<24)
	double := NewArray(m, 2, 1<<24)
	big := make([]byte, 1<<20)
	lat1 := single.Write(0, 0, big)
	lat2 := double.Write(0, 0, big)
	if lat2 >= lat1 {
		t.Fatalf("striping did not help: 1 disk %v, 2 disks %v", lat1, lat2)
	}
	// Two disks should roughly halve transfer-dominated latency.
	if lat2 > lat1*2/3 {
		t.Fatalf("striping speedup too small: %v vs %v", lat2, lat1)
	}
}

func TestArrayWriteVSingleCommandPerDevice(t *testing.T) {
	m := costs()
	a := NewArray(m, 2, 1<<24)
	// 16 scattered 4 KiB extents within one stripe on device 0.
	var extents []Extent
	for i := 0; i < 16; i++ {
		extents = append(extents, Extent{Offset: int64(i * 4096), Data: make([]byte, 4096)})
	}
	done := a.WriteV(0, extents)
	// All on device 0, coalesced: one base latency + 64 KiB transfer.
	want := m.IOCost(64 << 10)
	if done != want {
		t.Fatalf("vectored write latency %v, want %v", done, want)
	}
	if s := a.Stats(); s.Writes != 1 {
		t.Fatalf("expected 1 device command, got %d", s.Writes)
	}
}

func TestArrayCutPower(t *testing.T) {
	a := NewArray(costs(), 2, 1<<20)
	data := bytes.Repeat([]byte{1}, 128<<10)
	done := a.Write(0, 0, data)
	a.CutPower(done/4, sim.NewRNG(3))
	buf := make([]byte, len(data))
	a.PeekAt(0, buf)
	if bytes.Equal(buf, data) {
		t.Fatal("power cut at 25% left write fully durable (suspicious)")
	}
}

func TestArrayRoundTripProperty(t *testing.T) {
	f := func(off uint16, val byte, size uint8) bool {
		a := NewArray(costs(), 2, 1<<20)
		n := int(size) + 1
		data := bytes.Repeat([]byte{val}, n)
		offset := int64(off)
		a.Write(0, offset, data)
		buf := make([]byte, n)
		a.PeekAt(offset, buf)
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadLatency(t *testing.T) {
	a := NewArray(costs(), 2, 1<<20)
	buf := make([]byte, 4096)
	done := a.Read(0, 0, buf)
	if done != costs().IOCost(4096) {
		t.Fatalf("read latency %v", done)
	}
}

func TestEmptyWriteV(t *testing.T) {
	a := NewArray(costs(), 2, 1<<20)
	if done := a.WriteV(5*time.Microsecond, nil); done != 5*time.Microsecond {
		t.Fatalf("empty WriteV advanced time: %v", done)
	}
}

// TestCutPowerClampsToGCFloorAcrossArray pins the undo-reclaim clamp:
// once a device has GC'd its in-flight undo history past some horizon,
// a later CutPower cannot rewind behind it — and the whole array must
// crash at ONE clamped instant. Before the clamp, each device cut at
// its own effective time: a device whose GC horizon had advanced kept
// late writes while a sibling rolled back earlier ones, so recovery
// saw a commit record whose data blocks were gone (the flaky
// power-cut integration failure).
func TestCutPowerClampsToGCFloorAcrossArray(t *testing.T) {
	m := costs()
	a := NewArray(m, 2, 1<<30)
	stripe := int64(m.StripeSize)

	// Device 0: enough spaced-out writes that gcInflightLocked fires
	// and reclaims every prior write's undo buffer. Submissions are
	// 1s apart, far beyond per-write latency, so write i completes
	// before submit i+1 and the GC at the last write finalizes all
	// earlier ones.
	for i := 0; i < 65; i++ {
		a.devices[0].SubmitWrite(time.Duration(i)*time.Second, 0, []byte{byte(i + 1)})
	}
	if f := a.devices[0].GCFloor(); f == 0 {
		t.Fatal("GC never fired on device 0; the scenario needs a reclaimed horizon")
	}

	// Device 1: one write submitted just before the intended cut,
	// completing after it (base latency alone spans the 1µs gap) but
	// well before device 0's reclaimed horizon.
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	done := a.devices[1].SubmitWrite(1500*time.Millisecond, stripe, payload)
	cut := 1500*time.Millisecond + time.Microsecond
	if done <= cut {
		t.Fatalf("scenario broken: device-1 write completes at %v, before the %v cut", done, cut)
	}
	if floor := a.devices[0].GCFloor(); done >= floor {
		t.Fatalf("scenario broken: device-1 write completes at %v, after the %v floor", done, floor)
	}

	// Cut at just past the device-1 submit. Device 0 already
	// reclaimed history up to ~63s, so its writes survive regardless;
	// a consistent single-instant crash therefore must also keep
	// device 1's earlier-completing write instead of rolling it back.
	a.CutPower(cut, sim.NewRNG(1))

	got := make([]byte, 8)
	a.devices[1].PeekAt(stripe, got)
	if got[0] != 0xAB {
		t.Fatalf("device-1 write rolled back (got %#x): devices crashed at divergent instants", got[0])
	}
	// At the clamped instant (the ~63s floor) device 0's write 63
	// straddles the cut (tears by coin flip between patterns 63 and
	// 64) and write 64, submitted after it, always rolls back — but
	// everything the GC finalized must still be on the platter.
	var d0 [1]byte
	a.devices[0].PeekAt(0, d0[:])
	if d0[0] != 63 && d0[0] != 64 {
		t.Fatalf("device-0 state %d inconsistent with a crash at the reclaim floor", d0[0])
	}
}

func TestStragglerWindowMultipliesCost(t *testing.T) {
	m := costs()
	d := NewDevice(m, 1<<20)
	buf := make([]byte, 4096)
	normal := m.IOCost(4096)

	// Pre-install a future window — fault schedules install faults
	// before virtual time reaches them.
	from, to := 10*time.Millisecond, 20*time.Millisecond
	d.SetStraggler(from, to, 8)

	if got := d.SubmitWrite(0, 0, buf) - 0; got != normal {
		t.Fatalf("pre-window write cost %v, want %v", got, normal)
	}
	at := from + time.Millisecond
	if got := d.SubmitWrite(at, 0, buf) - at; got != 8*normal {
		t.Fatalf("in-window write cost %v, want %v", got, 8*normal)
	}
	at = from + 2*time.Millisecond
	if got := d.SubmitRead(at, 0, buf) - at; got != 8*normal {
		t.Fatalf("in-window read cost %v, want %v", got, 8*normal)
	}
	at = to + time.Millisecond
	if got := d.SubmitWrite(at, 0, buf) - at; got != normal {
		t.Fatalf("post-window write cost %v, want %v", got, normal)
	}

	// The window keys off service start, not submit time: an IO queued
	// from before the window whose service begins inside it straggles.
	d2 := NewDevice(m, 1<<20)
	d2.SetStraggler(normal, time.Minute, 8)
	c1 := d2.SubmitWrite(0, 0, buf)      // services at 0, normal cost
	c2 := d2.SubmitWrite(0, 4096, buf)   // queues; services at c1, inside window
	if c1 != normal {
		t.Fatalf("first write cost %v, want %v", c1, normal)
	}
	if got := c2 - c1; got != 8*normal {
		t.Fatalf("queued in-window write cost %v, want %v", got, 8*normal)
	}

	// factor <= 1 clears the window.
	d3 := NewDevice(m, 1<<20)
	d3.SetStraggler(0, time.Minute, 8)
	d3.SetStraggler(0, time.Minute, 1)
	if got := d3.SubmitWrite(0, 0, buf); got != normal {
		t.Fatalf("cleared-window write cost %v, want %v", got, normal)
	}
}

func TestArrayStragglerThrottlesWholeArray(t *testing.T) {
	m := costs()
	a := NewArray(m, 2, 1<<20)
	// One logical IO spanning both devices completes at the max across
	// devices, so one straggling device throttles the array.
	big := make([]byte, 2*m.StripeSize)
	base := a.Write(0, 0, big)
	a.SetStraggler(0, 0, time.Minute, 8)
	at := base + time.Millisecond
	slow := a.Write(at, 0, big) - at
	if slow <= (base-0)*2 {
		t.Fatalf("straggling device did not throttle array: %v vs healthy %v", slow, base)
	}
}
