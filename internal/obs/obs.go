// Package obs is the observability substrate for the MemSnap
// simulation: a fixed-capacity, allocation-free span/event ring
// recorder stamped with virtual time, log2-bucketed latency
// histograms, a Chrome trace-event JSON exporter, and a minimal TCP
// front end serving Prometheus text, expvar-style JSON and trace
// drains (see server.go).
//
// Everything in this package is denominated in virtual time: call
// sites stamp events with durations read from their own sim.Clock, so
// a drained trace is deterministic for a deterministic workload and
// byte-identical across machines. The recorder itself never reads the
// wall clock (the walltime lint analyzer enforces this) and never
// allocates on the record path (a pre-sized ring of value events
// behind a plain mutex), so tracing can stay enabled on the persist
// hot path without breaking the repo's zero-allocation ceilings.
package obs

import (
	"sync"
	"time"
)

// Cat is the event category — the "cat" field of the exported trace,
// one per instrumented subsystem.
type Cat uint8

const (
	// CatVM: page-fault machinery (tracking faults, in-flight COW
	// duplications, page-ins) from internal/vm.
	CatVM Cat = iota
	// CatPersist: the uCheckpoint pipeline stages of Context.Persist
	// (reset tracking, initiate writes, wait for IO) from internal/core.
	CatPersist
	// CatShard: group-commit and queue-wait spans from internal/shard.
	CatShard
	// CatReplica: ship/retry/apply/snapshot spans from internal/replica.
	CatReplica
	// CatNet: wire-edge request spans from internal/netsvc (server conn
	// handling and client round trips of sampled requests).
	CatNet
	catCount
)

var catNames = [catCount]string{"vm", "persist", "shard", "replica", "net"}

// String returns the category's trace label.
func (c Cat) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "unknown"
}

// Name identifies an instrumentation point. Names are a closed enum so
// recording never formats or interns strings.
type Name uint8

const (
	// NameTrackingFault: first write to a clean tracked page (no copy).
	NameTrackingFault Name = iota
	// NameCOWFault: write to a checkpoint-in-progress page (frame copy).
	NameCOWFault
	// NamePageIn: page faulted in from backing storage.
	NamePageIn
	// NamePersist: one whole Persist call (arg: pages).
	NamePersist
	// NameResetTracking: protection reset + TLB shootdown phase.
	NameResetTracking
	// NameInitiateWrites: snapshot + IO submission phase.
	NameInitiateWrites
	// NameWaitIO: durability wait (Persist MSSync tail, or Wait).
	NameWaitIO
	// NameQueueWait: submit-to-apply wait of a shard batch's first
	// request (arg: batch size).
	NameQueueWait
	// NameGroupCommit: apply-to-ack span of one shard group commit
	// (arg: write ops).
	NameGroupCommit
	// NameShip: one delta's durability-to-follower-ack round (arg: seq).
	NameShip
	// NameShipBatch: a coalesced delta run's round (arg: deltas).
	NameShipBatch
	// NameRetry: a retransmission after a lost delta or ack (arg: try).
	NameRetry
	// NameSnapshot: a full-region catch-up transfer (arg: pages).
	NameSnapshot
	// NameApply: follower applying one delta as a uCheckpoint (arg: seq).
	NameApply
	// NameApplyBatch: follower applying a coalesced run (arg: deltas).
	NameApplyBatch
	// NameEncode: sub-page delta encoding of one shipped commit
	// (arg: encoded wire bytes).
	NameEncode
	// NameNetRequest: server-side decode-to-complete span of one sampled
	// wire request (arg: frame bytes).
	NameNetRequest
	// NameClientRequest: client-side submit-to-response round trip of
	// one sampled request (arg: wire op kind).
	NameClientRequest
	nameCount
)

var nameStrings = [nameCount]string{
	"fault_track", "fault_cow", "page_in",
	"persist", "reset_tracking", "initiate_writes", "wait_io",
	"queue_wait", "group_commit",
	"ship", "ship_batch", "retry", "snapshot", "apply", "apply_batch",
	"encode",
	"net_request", "client_request",
}

// String returns the name's trace label.
func (n Name) String() string {
	if int(n) < len(nameStrings) {
		return nameStrings[n]
	}
	return "unknown"
}

// Kind selects the trace-event phase an Event exports as.
type Kind uint8

const (
	// KindSpan is a complete span: Start plus Dur ("X" phase).
	KindSpan Kind = iota
	// KindInstant is a point event at Start ("i" phase).
	KindInstant
	// KindCounter is a counter sample: Arg graphed over time ("C").
	KindCounter
)

// Track lanes: every event carries a track id — the "tid" of the
// exported trace. By convention shard workers (and the vm/persist
// events of their worker threads) use the shard id, replica shippers
// shard+2000, followers shard+3000, so a primary/backup pair drains
// into one trace without lane collisions.
const (
	shipTrackBase     = 2000
	followerTrackBase = 3000
	netTrackBase      = 4000
	clientTrackBase   = 5000
)

// ShardTrack returns the trace lane of a shard worker.
func ShardTrack(shard int) int32 { return int32(shard) }

// ShipTrack returns the trace lane of a shard's replication sender.
func ShipTrack(shard int) int32 { return int32(shipTrackBase + shard) }

// FollowerTrack returns the trace lane of a follower shard.
func FollowerTrack(shard int) int32 { return int32(followerTrackBase + shard) }

// NetTrack returns the trace lane of the network server's wire edge.
func NetTrack(i int) int32 { return int32(netTrackBase + i) }

// ClientTrack returns the trace lane of a tracing client.
func ClientTrack(i int) int32 { return int32(clientTrackBase + i) }

// TrackName renders a track id as the human lane label exported in
// trace thread-name metadata.
func TrackName(track int32) (string, int32) {
	switch {
	case track >= clientTrackBase:
		return "client", track - clientTrackBase
	case track >= netTrackBase:
		return "netsvc", track - netTrackBase
	case track >= followerTrackBase:
		return "follower", track - followerTrackBase
	case track >= shipTrackBase:
		return "shipper", track - shipTrackBase
	default:
		return "worker", track
	}
}

// Event is one recorded span, instant or counter sample. Events are
// plain values: recording copies one into the ring, so the hot path
// performs no allocation and retains no pointers.
type Event struct {
	Kind  Kind
	Cat   Cat
	Name  Name
	Track int32
	// Start is the event's virtual timestamp; Dur is the span length
	// (zero for instants and counters).
	Start time.Duration
	Dur   time.Duration
	// Arg is the event's one numeric payload (pages, sequence number,
	// batch size, counter value — see the Name doc comments).
	Arg int64
	// Flow is the trace id binding this span into a cross-lane request
	// flow (0: not part of a flow). WriteTrace stitches all spans
	// sharing a Flow with Chrome flow events, so one sampled request
	// reads as a single arrow-connected path across lanes.
	Flow uint64
}

// RecorderStats snapshots a recorder's accounting counters.
type RecorderStats struct {
	// Recorded counts events written into the ring.
	Recorded int64
	// Dropped counts events offered but not recorded: sampled out, or
	// refused because the ring was full in drop-on-full mode.
	Dropped int64
	// Wraps counts cursor cycles around a full ring (overwrite mode
	// evicts the oldest events each cycle).
	Wraps int64
	// Capacity is the ring size in events.
	Capacity int
}

// Recorder is the fixed-capacity event ring. All methods are safe for
// concurrent use and safe on a nil receiver (a nil *Recorder is the
// disabled recorder: every record call is a cheap no-op), so
// instrumentation points call unconditionally.
//
// The record path takes one mutex and copies one Event value — no
// allocation, no string formatting, no wall-clock reads.
type Recorder struct {
	mu   sync.Mutex
	ring []Event
	next int // next write slot
	size int // valid events (≤ len(ring))

	recorded int64
	dropped  int64
	wraps    int64
	offered  int64

	dropOnFull bool
	sampleN    int64 // record 1 of every sampleN offered events; <=1: all
}

// NewRecorder returns a recorder with a pre-sized ring of capacity
// events (minimum 16). The default policy overwrites the oldest events
// when full (counted in Wraps) and records every offered event.
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{ring: make([]Event, capacity)}
}

// SetDropOnFull switches the full-ring policy: true drops new events
// (counted in Dropped) instead of overwriting the oldest.
func (r *Recorder) SetDropOnFull(drop bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.dropOnFull = drop
	r.mu.Unlock()
}

// SetSampling records only one of every n offered events (n <= 1
// restores full recording). Sampled-out events count as Dropped.
// Sampling bounds tracing overhead on pathological fault storms while
// keeping the ring statistically representative.
func (r *Recorder) SetSampling(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sampleN = n
	r.mu.Unlock()
}

// Span records a complete span.
func (r *Recorder) Span(cat Cat, name Name, track int32, start, dur time.Duration, arg int64) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindSpan, Cat: cat, Name: name, Track: track, Start: start, Dur: dur, Arg: arg})
}

// SpanFlow records a complete span bound into the cross-lane request
// flow identified by flow (a sampled request's trace id; 0 records a
// plain span). The record path is identical to Span — one mutex, one
// value copy, no allocation — so trace propagation stays safe on the
// hot paths.
//
//memsnap:hotpath
func (r *Recorder) SpanFlow(cat Cat, name Name, track int32, start, dur time.Duration, arg int64, flow uint64) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindSpan, Cat: cat, Name: name, Track: track, Start: start, Dur: dur, Arg: arg, Flow: flow})
}

// Instant records a point event.
func (r *Recorder) Instant(cat Cat, name Name, track int32, at time.Duration, arg int64) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindInstant, Cat: cat, Name: name, Track: track, Start: at, Arg: arg})
}

// Counter records a counter sample.
func (r *Recorder) Counter(cat Cat, name Name, track int32, at time.Duration, value int64) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindCounter, Cat: cat, Name: name, Track: track, Start: at, Arg: value})
}

// Enabled reports whether the recorder records (false on nil), for
// call sites that want to skip computing expensive arguments.
func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	r.offered++
	if r.sampleN > 1 && r.offered%r.sampleN != 0 {
		r.dropped++
		r.mu.Unlock()
		return
	}
	if r.dropOnFull && r.size == len(r.ring) {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wraps++
	}
	if r.size < len(r.ring) {
		r.size++
	}
	r.recorded++
	r.mu.Unlock()
}

// Drain returns the ring's events oldest-first and resets it to empty.
// Accounting counters survive the drain. Drain allocates the returned
// slice — it is the cold path, called by trace export and /tracez.
func (r *Recorder) Drain() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.size)
	if r.size == len(r.ring) && r.next != 0 {
		// Wrapped: oldest event sits at the cursor.
		n := copy(out, r.ring[r.next:])
		copy(out[n:], r.ring[:r.next])
	} else {
		start := r.next - r.size
		if start < 0 {
			start += len(r.ring)
		}
		for i := 0; i < r.size; i++ {
			out[i] = r.ring[(start+i)%len(r.ring)]
		}
	}
	r.next = 0
	r.size = 0
	return out
}

// Peek returns a copy of the ring's events oldest-first without
// resetting it — the flight-recorder read: a post-mortem bundle can
// snapshot the recent past while /tracez draining keeps working for
// the living. Cold path; allocates the returned slice.
func (r *Recorder) Peek() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.size)
	if r.size == len(r.ring) && r.next != 0 {
		n := copy(out, r.ring[r.next:])
		copy(out[n:], r.ring[:r.next])
	} else {
		start := r.next - r.size
		if start < 0 {
			start += len(r.ring)
		}
		for i := 0; i < r.size; i++ {
			out[i] = r.ring[(start+i)%len(r.ring)]
		}
	}
	return out
}

// Stats snapshots the accounting counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return RecorderStats{
		Recorded: r.recorded,
		Dropped:  r.dropped,
		Wraps:    r.wraps,
		Capacity: len(r.ring),
	}
}

// Len returns the number of events currently buffered.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}
