package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net" //lint:allow sockio obs.Serve is the documented loopback observability boundary
	"strings"
	"sync"
	"time"

	"memsnap/internal/sim"
)

// ServerSources supplies the live data the observability server
// exposes. All callbacks must be safe for concurrent use (they run on
// per-connection goroutines).
type ServerSources struct {
	// Metrics writes the Prometheus text exposition for /metricz.
	Metrics func(w io.Writer) error
	// Vars returns the expvar-style state marshaled as JSON for /varz
	// (typically shard stats + replication stats + pool stats).
	Vars func() any
	// Trace drains the event ring for /tracez.
	Trace func() []Event
	// Health reports readiness for /healthz: ready yields 200, a
	// draining/unready process yields 503, each with detail as the
	// body. A nil Health means /healthz always answers 200 "ok".
	Health func() (ready bool, detail string)
	// TopK returns the per-tenant attribution entries for /topz.
	TopK func() []TenantStat
	// Clock, when set, bridges virtual time at the boundary: /varz
	// responses carry the current virtual time alongside the
	// caller-supplied vars. Reads go through the clock's atomic Now —
	// the one cross-goroutine access the clock ownership rule permits
	// (internal/sim/clock.go).
	Clock *sim.Clock
}

// Server is the loopback observability front end: a real TCP listener
// speaking just enough HTTP/1.0 for curl, Prometheus scrapers and the
// CI smoke test, without importing net/http. It serves:
//
//	GET /metricz  Prometheus text exposition (ServerSources.Metrics)
//	GET /varz     expvar-style JSON state (ServerSources.Vars)
//	GET /tracez   Chrome trace-event JSON drained from the ring
//	GET /healthz  readiness probe: 200 ready / 503 draining
//	GET /topz     per-tenant top-K attribution as JSON
//
// Inside the simulation all timestamps are virtual; the server is the
// boundary where a wall-clock world (a scraper, a browser) observes
// them, so responses carry virtual times as plain numbers and the
// server itself never advances any clock.
type Server struct {
	ln  net.Listener
	src ServerSources
	// hasClock caches src.Clock != nil so the per-connection goroutine
	// touches the clock only as the receiver of its atomic Now — the
	// one cross-goroutine clock access the clockcapture design rule
	// permits.
	hasClock bool

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Serve starts the server on addr (e.g. "127.0.0.1:0") and begins
// accepting connections.
func Serve(addr string, src ServerSources) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, src: src, hasClock: src.Clock != nil, conns: map[net.Conn]bool{}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				return
			}
			if !s.track(conn) {
				conn.Close()
				return
			}
			s.wg.Add(1)
			go func(c net.Conn) {
				defer s.wg.Done()
				defer s.untrack(c)
				// Stamp the boundary's virtual now once per request,
				// through the clock's atomic Now (the documented
				// cross-goroutine clock access).
				var vnow time.Duration
				if s.hasClock {
					vnow = s.src.Clock.Now()
				}
				s.handle(c, vnow)
			}(conn)
		}
	}()
	return s, nil
}

// Addr returns the listener's address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = true
	return true
}

func (s *Server) untrack(c net.Conn) {
	c.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Close stops accepting, closes open connections and waits for the
// handler goroutines. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// handle serves one connection: one request, one response, close.
func (s *Server) handle(c net.Conn, vnow time.Duration) {
	path, ok := readRequestPath(c)
	if !ok {
		writeResponse(c, 400, "text/plain; charset=utf-8", []byte("bad request\n"))
		return
	}
	var body bytes.Buffer
	switch path {
	case "/metricz":
		if s.src.Metrics == nil {
			writeResponse(c, 404, "text/plain; charset=utf-8", []byte("no metrics source\n"))
			return
		}
		if err := s.src.Metrics(&body); err != nil {
			writeError(c, err)
			return
		}
		writeResponse(c, 200, "text/plain; version=0.0.4; charset=utf-8", body.Bytes())
	case "/varz":
		var vars any
		if s.src.Vars != nil {
			vars = s.src.Vars()
		}
		wrapped := struct {
			VirtualSeconds float64 `json:"virtual_now_seconds"`
			Vars           any     `json:"vars"`
		}{vnow.Seconds(), vars}
		data, err := json.MarshalIndent(wrapped, "", "  ")
		if err != nil {
			writeError(c, err)
			return
		}
		writeResponse(c, 200, "application/json", append(data, '\n'))
	case "/tracez":
		var events []Event
		if s.src.Trace != nil {
			events = s.src.Trace()
		}
		if err := WriteTrace(&body, events); err != nil {
			writeError(c, err)
			return
		}
		writeResponse(c, 200, "application/json", body.Bytes())
	case "/healthz":
		ready, detail := true, "ok"
		if s.src.Health != nil {
			ready, detail = s.src.Health()
		}
		code := 200
		if !ready {
			code = 503
		}
		writeResponse(c, code, "text/plain; charset=utf-8", []byte(detail+"\n"))
	case "/topz":
		var top []TenantStat
		if s.src.TopK != nil {
			top = s.src.TopK()
		}
		wrapped := struct {
			VirtualSeconds float64      `json:"virtual_now_seconds"`
			Tenants        []TenantStat `json:"tenants"`
		}{vnow.Seconds(), top}
		data, err := json.MarshalIndent(wrapped, "", "  ")
		if err != nil {
			writeError(c, err)
			return
		}
		writeResponse(c, 200, "application/json", append(data, '\n'))
	default:
		writeResponse(c, 404, "text/plain; charset=utf-8", []byte("not found (try /metricz, /varz, /tracez, /healthz, /topz)\n"))
	}
}

// readRequestPath reads the request line of a GET request and returns
// its path. The read is bounded; headers are consumed best-effort (the
// response closes the connection either way).
func readRequestPath(c net.Conn) (string, bool) {
	buf := make([]byte, 0, 1024)
	tmp := make([]byte, 256)
	for !bytes.Contains(buf, []byte("\n")) && len(buf) < 4096 {
		n, err := c.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	line, _, ok := bytes.Cut(buf, []byte("\n"))
	if !ok {
		return "", false
	}
	fields := strings.Fields(string(line))
	if len(fields) < 2 || fields[0] != "GET" {
		return "", false
	}
	path := fields[1]
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	return path, true
}

var statusText = map[int]string{200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Internal Server Error", 503: "Service Unavailable"}

func writeResponse(c net.Conn, code int, contentType string, body []byte) {
	fmt.Fprintf(c, "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		code, statusText[code], contentType, len(body))
	c.Write(body)
}

func writeError(c net.Conn, err error) {
	writeResponse(c, 500, "text/plain; charset=utf-8", []byte(err.Error()+"\n"))
}
