package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderDrainOrder(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 5; i++ {
		r.Instant(CatVM, NameTrackingFault, 0, time.Duration(i), int64(i))
	}
	if got := r.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	evs := r.Drain()
	if len(evs) != 5 {
		t.Fatalf("drained %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Start != time.Duration(i) || ev.Arg != int64(i) {
			t.Errorf("event %d = {Start:%v Arg:%d}, want oldest-first order", i, ev.Start, ev.Arg)
		}
	}
	if got := r.Len(); got != 0 {
		t.Errorf("Len after drain = %d, want 0", got)
	}
	st := r.Stats()
	if st.Recorded != 5 || st.Dropped != 0 || st.Wraps != 0 {
		t.Errorf("stats after drain = %+v, want counters to survive", st)
	}
}

func TestRecorderWrapOverwritesOldest(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.Instant(CatVM, NamePageIn, 0, time.Duration(i), int64(i))
	}
	st := r.Stats()
	if st.Recorded != 40 {
		t.Errorf("Recorded = %d, want 40", st.Recorded)
	}
	if st.Wraps != 2 {
		t.Errorf("Wraps = %d, want 2 (40 events through a 16-slot ring)", st.Wraps)
	}
	evs := r.Drain()
	if len(evs) != 16 {
		t.Fatalf("drained %d events, want capacity 16", len(evs))
	}
	for i, ev := range evs {
		if want := int64(24 + i); ev.Arg != want {
			t.Errorf("event %d arg = %d, want %d (newest 16 retained oldest-first)", i, ev.Arg, want)
		}
	}
}

func TestRecorderDropOnFull(t *testing.T) {
	r := NewRecorder(16)
	r.SetDropOnFull(true)
	for i := 0; i < 20; i++ {
		r.Instant(CatVM, NamePageIn, 0, time.Duration(i), int64(i))
	}
	st := r.Stats()
	// The cursor cycles once as the ring fills; after that, drop-on-full
	// refuses new events instead of evicting.
	if st.Recorded != 16 || st.Dropped != 4 || st.Wraps != 1 {
		t.Errorf("stats = %+v, want 16 recorded / 4 dropped / 1 wrap", st)
	}
	evs := r.Drain()
	if len(evs) != 16 || evs[0].Arg != 0 || evs[15].Arg != 15 {
		t.Errorf("drop-on-full must retain the oldest events; got %d events", len(evs))
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(128)
	r.SetSampling(4)
	for i := 0; i < 40; i++ {
		r.Instant(CatVM, NamePageIn, 0, time.Duration(i), int64(i))
	}
	st := r.Stats()
	if st.Recorded != 10 || st.Dropped != 30 {
		t.Errorf("stats = %+v, want 10 recorded / 30 sampled out", st)
	}
	r.SetSampling(0)
	r.Instant(CatVM, NamePageIn, 0, 0, 0)
	if got := r.Stats().Recorded; got != 11 {
		t.Errorf("Recorded after disabling sampling = %d, want 11", got)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Span(CatPersist, NamePersist, 0, 0, time.Microsecond, 1)
	r.Instant(CatVM, NameCOWFault, 0, 0, 1)
	r.Counter(CatShard, NameGroupCommit, 0, 0, 1)
	r.SetDropOnFull(true)
	r.SetSampling(2)
	if r.Enabled() {
		t.Error("nil recorder must report Enabled() == false")
	}
	if evs := r.Drain(); evs != nil {
		t.Errorf("nil Drain = %v, want nil", evs)
	}
	if st := r.Stats(); st != (RecorderStats{}) {
		t.Errorf("nil Stats = %+v, want zero", st)
	}
	if r.Len() != 0 {
		t.Error("nil Len != 0")
	}
}

// TestRecorderConcurrent hammers one recorder from several writer
// goroutines while a reader drains — the shard-worker shape, run under
// -race in CI. Every offered event must be accounted for as recorded
// (drained or still buffered) with wrap-evictions explained by the
// wrap counter.
func TestRecorderConcurrent(t *testing.T) {
	const writers, perWriter = 8, 1000
	r := NewRecorder(256)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var drained int
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				drained += len(r.Drain())
				return
			default:
				drained += len(r.Drain())
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				switch i % 3 {
				case 0:
					r.Span(CatShard, NameGroupCommit, int32(w), time.Duration(i), time.Microsecond, int64(i))
				case 1:
					r.Instant(CatVM, NameTrackingFault, int32(w), time.Duration(i), int64(i))
				default:
					r.Counter(CatPersist, NamePersist, int32(w), time.Duration(i), int64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWg.Wait()
	drained += len(r.Drain())
	st := r.Stats()
	if st.Recorded != writers*perWriter {
		t.Errorf("Recorded = %d, want %d", st.Recorded, writers*perWriter)
	}
	// Drained events plus wrap-evicted events account for everything
	// recorded. Each wrap evicts at most one event per recorded slot;
	// the exact split is timing-dependent, but nothing may exceed the
	// recorded total.
	if int64(drained) > st.Recorded {
		t.Errorf("drained %d events, more than the %d recorded", drained, st.Recorded)
	}
	if drained == 0 {
		t.Error("reader drained nothing")
	}
}

func TestTrackNames(t *testing.T) {
	for _, tc := range []struct {
		track int32
		role  string
		idx   int32
	}{
		{ShardTrack(3), "worker", 3},
		{ShipTrack(2), "shipper", 2},
		{FollowerTrack(7), "follower", 7},
	} {
		role, idx := TrackName(tc.track)
		if role != tc.role || idx != tc.idx {
			t.Errorf("TrackName(%d) = %q %d, want %q %d", tc.track, role, idx, tc.role, tc.idx)
		}
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(1)                    // bucket 1: (0, 2)
	h.Record(100 * time.Nanosecond)
	h.Record(time.Microsecond)
	h.Record(time.Millisecond)
	h.Record(10 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.Max != 10*time.Millisecond {
		t.Errorf("Max = %v, want 10ms", s.Max)
	}
	if got, wantLo := s.P50(), 100*time.Nanosecond; got < wantLo || got > time.Microsecond {
		t.Errorf("P50 = %v, want within a power of two of the median sample", got)
	}
	// P99/P999 of 6 samples land on the max sample's bucket upper bound.
	if got := s.P999(); got < 10*time.Millisecond {
		t.Errorf("P999 = %v, want >= 10ms", got)
	}
	if mean := s.Mean(); mean <= 0 {
		t.Errorf("Mean = %v, want positive", mean)
	}
}

func TestHistogramOverflowAndMerge(t *testing.T) {
	var h Histogram
	huge := 10 * time.Hour // beyond the last finite bucket
	h.Record(huge)
	s := h.Snapshot()
	if got := s.Quantile(1); got != huge {
		t.Errorf("overflow quantile = %v, want recorded max %v", got, huge)
	}
	var h2 Histogram
	h2.Record(time.Millisecond)
	m := h2.Snapshot()
	m.Merge(s)
	if m.Count != 2 || m.Max != huge || m.Sum != huge+time.Millisecond {
		t.Errorf("merged = {Count:%d Max:%v Sum:%v}, want 2/%v/%v", m.Count, m.Max, m.Sum, huge, huge+time.Millisecond)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil Snapshot count = %d, want 0", s.Count)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramWriteProm(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.Record(2 * time.Millisecond)
	s := h.Snapshot()
	var b strings.Builder
	if err := s.WriteProm(&b, "m", `shard="0"`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`m_bucket{shard="0",le="0.001048576"} 1`,
		`m_bucket{shard="0",le="0.002097152"} 2`,
		`m_bucket{shard="0",le="+Inf"} 2`,
		`m_sum{shard="0"} 0.003`,
		`m_count{shard="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
	// Unlabeled: no stray {} on _sum/_count, le is the only label.
	b.Reset()
	if err := s.WriteProm(&b, "m", ""); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	if !strings.Contains(out, "m_sum 0.003") || !strings.Contains(out, "m_count 2") {
		t.Errorf("unlabeled WriteProm malformed:\n%s", out)
	}
	if strings.Contains(out, "{}") || strings.Contains(out, "{,") {
		t.Errorf("unlabeled WriteProm produced empty label braces:\n%s", out)
	}
}
