package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"memsnap/internal/sim"
)

// get performs one GET over a fresh loopback connection and returns
// the status code and body.
func get(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET %s HTTP/1.0\r\nHost: test\r\n\r\n", path)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading status line: %v", err)
	}
	var proto string
	var code int
	if _, err := fmt.Sscanf(status, "%s %d", &proto, &code); err != nil {
		t.Fatalf("bad status line %q: %v", status, err)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading headers: %v", err)
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	body, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return code, body
}

func TestServerEndpoints(t *testing.T) {
	clk := sim.NewClock()
	clk.Advance(1500 * time.Millisecond)
	rec := NewRecorder(64)
	rec.Span(CatShard, NameGroupCommit, ShardTrack(0), time.Millisecond, time.Millisecond, 3)
	rec.Instant(CatVM, NameTrackingFault, ShardTrack(0), 2*time.Millisecond, 7)

	srv, err := Serve("127.0.0.1:0", ServerSources{
		Metrics: func(w io.Writer) error {
			_, err := io.WriteString(w, "# HELP memsnap_up 1 when serving\n# TYPE memsnap_up gauge\nmemsnap_up 1\n")
			return err
		},
		Vars:  func() any { return map[string]int64{"commits": 42} },
		Trace: func() []Event { return rec.Drain() },
		Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.Addr(), "/metricz")
	if code != 200 || !bytes.Contains(body, []byte("memsnap_up 1")) {
		t.Errorf("/metricz = %d %q", code, body)
	}

	code, body = get(t, srv.Addr(), "/varz")
	if code != 200 {
		t.Fatalf("/varz = %d %q", code, body)
	}
	var varz struct {
		VirtualSeconds float64          `json:"virtual_now_seconds"`
		Vars           map[string]int64 `json:"vars"`
	}
	if err := json.Unmarshal(body, &varz); err != nil {
		t.Fatalf("/varz is not valid JSON: %v\n%s", err, body)
	}
	if varz.VirtualSeconds != 1.5 {
		t.Errorf("virtual_now_seconds = %v, want 1.5", varz.VirtualSeconds)
	}
	if varz.Vars["commits"] != 42 {
		t.Errorf("vars = %v, want commits:42", varz.Vars)
	}

	code, body = get(t, srv.Addr(), "/tracez")
	if code != 200 {
		t.Fatalf("/tracez = %d %q", code, body)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("/tracez is not valid JSON: %v\n%s", err, body)
	}
	// Metadata lane + span + instant.
	if len(trace.TraceEvents) != 3 {
		t.Errorf("/tracez events = %d, want 3\n%s", len(trace.TraceEvents), body)
	}
	// The drain emptied the ring: a second scrape returns a valid empty
	// trace.
	code, body = get(t, srv.Addr(), "/tracez")
	if code != 200 {
		t.Fatalf("second /tracez = %d", code)
	}
	if err := json.Unmarshal(body, &trace); err != nil || len(trace.TraceEvents) != 0 {
		t.Errorf("second /tracez = %v events (err %v), want empty valid JSON", len(trace.TraceEvents), err)
	}

	code, _ = get(t, srv.Addr(), "/nope")
	if code != 404 {
		t.Errorf("/nope = %d, want 404", code)
	}
}

func TestServerNoSources(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerSources{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, srv.Addr(), "/metricz"); code != 404 {
		t.Errorf("/metricz without source = %d, want 404", code)
	}
	code, body := get(t, srv.Addr(), "/varz")
	if code != 200 || !strings.Contains(string(body), `"virtual_now_seconds": 0`) {
		t.Errorf("/varz without sources = %d %q", code, body)
	}
	code, body = get(t, srv.Addr(), "/tracez")
	if code != 200 || !bytes.Contains(body, []byte("traceEvents")) {
		t.Errorf("/tracez without sources = %d %q", code, body)
	}
}

func TestServerBadRequest(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerSources{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /metricz HTTP/1.0\r\n\r\n")
	resp, _ := io.ReadAll(conn)
	if !bytes.Contains(resp, []byte("400")) {
		t.Errorf("POST response = %q, want 400", resp)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerSources{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := net.Dial("tcp", srv.Addr()); err == nil {
		t.Error("listener still accepting after Close")
	}
}
