package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// TenantSketch is a space-saving top-K heavy-hitter sketch charging
// work to tenants on the shard commit path: operations, wire bytes and
// commit-latency sum per tenant, in O(K) memory regardless of how many
// tenants exist. The classic space-saving guarantee applies to the op
// counts: every tenant whose true op count exceeds total/K is present,
// and a reported count overestimates the truth by at most that entry's
// ErrFloor (the count it inherited when it evicted the previous
// minimum). Byte and latency sums restart at eviction, so for
// long-lived heavy hitters they converge on the truth and for churning
// small tenants they are best-effort — exactly the attribution
// question ("which tenant is burning the wire *now*") the sketch
// exists to answer.
//
// The update path is allocation-free at steady state: a map hit plus
// three adds under one mutex; an eviction rewrites one slot and two
// map entries of a pre-sized map. A nil *TenantSketch ignores updates,
// so the shard worker calls unconditionally.

// DefaultTenantTopK is the sketch width production binaries default to.
const DefaultTenantTopK = 64

// TenantStat is one sketch entry as reported by Top.
type TenantStat struct {
	Tenant string `json:"tenant"`
	// Ops is the (over)estimated operation count; the true count lies
	// in [Ops-ErrFloor, Ops].
	Ops uint64 `json:"ops"`
	// ErrFloor is the space-saving overestimation bound for Ops.
	ErrFloor uint64 `json:"ops_error_floor"`
	// WireBytes sums the request frame bytes since this tenant last
	// entered the sketch.
	WireBytes uint64 `json:"wire_bytes"`
	// CommitLatency sums commit (write) / completion (read) latency
	// since this tenant last entered the sketch.
	CommitLatency time.Duration `json:"commit_latency_nanos"`
}

type tenantSlot struct {
	tenant   string
	ops      uint64
	errFloor uint64
	bytes    uint64
	lat      time.Duration
}

// TenantSketch tracks the top-K tenants by operation count.
type TenantSketch struct {
	mu    sync.Mutex
	slots []tenantSlot
	index map[string]int
}

// NewTenantSketch returns a sketch of width k (k <= 0 uses
// DefaultTenantTopK).
func NewTenantSketch(k int) *TenantSketch {
	if k <= 0 {
		k = DefaultTenantTopK
	}
	return &TenantSketch{
		slots: make([]tenantSlot, 0, k),
		index: make(map[string]int, k),
	}
}

// Observe charges one completed operation to tenant: wireBytes of
// request frame and lat of commit (or completion) latency. Safe for
// concurrent use; no-op on a nil sketch or an empty tenant (internal
// probes carry no tenant).
//
//memsnap:hotpath
func (s *TenantSketch) Observe(tenant string, wireBytes uint32, lat time.Duration) {
	if s == nil || tenant == "" {
		return
	}
	s.mu.Lock()
	if i, ok := s.index[tenant]; ok {
		s.slots[i].ops++
		s.slots[i].bytes += uint64(wireBytes)
		s.slots[i].lat += lat
		s.mu.Unlock()
		return
	}
	if len(s.slots) < cap(s.slots) {
		s.index[tenant] = len(s.slots)
		s.slots = append(s.slots, tenantSlot{tenant: tenant, ops: 1, bytes: uint64(wireBytes), lat: lat})
		s.mu.Unlock()
		return
	}
	// Space-saving eviction: the new tenant inherits the minimum count
	// plus one, with that minimum recorded as its error floor.
	min := 0
	for i := 1; i < len(s.slots); i++ {
		if s.slots[i].ops < s.slots[min].ops {
			min = i
		}
	}
	delete(s.index, s.slots[min].tenant)
	s.slots[min] = tenantSlot{
		tenant:   tenant,
		ops:      s.slots[min].ops + 1,
		errFloor: s.slots[min].ops,
		bytes:    uint64(wireBytes),
		lat:      lat,
	}
	s.index[tenant] = min
	s.mu.Unlock()
}

// Top returns the sketch entries ordered by descending op count
// (tenant name breaks ties), so the output is deterministic for a
// deterministic workload. Cold path; allocates the returned slice.
func (s *TenantSketch) Top() []TenantStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]TenantStat, len(s.slots))
	for i, sl := range s.slots {
		out[i] = TenantStat{
			Tenant:        sl.tenant,
			Ops:           sl.ops,
			ErrFloor:      sl.errFloor,
			WireBytes:     sl.bytes,
			CommitLatency: sl.lat,
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ops != out[j].Ops {
			return out[i].Ops > out[j].Ops
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// WriteProm writes the sketch as memsnap_tenant_* Prometheus series,
// one labeled sample per tracked tenant. Counts are exposed as gauges:
// space-saving entries can reset at eviction, which would violate
// counter monotonicity.
func (s *TenantSketch) WriteProm(w io.Writer) error {
	if s == nil {
		return nil
	}
	top := s.Top()
	metrics := []struct {
		name, help string
		value      func(t TenantStat) string
	}{
		{"memsnap_tenant_ops", "Estimated operations per top-K tenant (space-saving sketch; see _ops_error_floor).",
			func(t TenantStat) string { return fmt.Sprintf("%d", t.Ops) }},
		{"memsnap_tenant_ops_error_floor", "Space-saving overestimation bound for memsnap_tenant_ops.",
			func(t TenantStat) string { return fmt.Sprintf("%d", t.ErrFloor) }},
		{"memsnap_tenant_wire_bytes", "Request wire bytes per top-K tenant since sketch entry.",
			func(t TenantStat) string { return fmt.Sprintf("%d", t.WireBytes) }},
		{"memsnap_tenant_commit_latency_seconds_sum", "Summed commit latency per top-K tenant since sketch entry.",
			func(t TenantStat) string { return promFloat(t.CommitLatency.Seconds()) }},
	}
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", m.name, m.help, m.name); err != nil {
			return err
		}
		for _, t := range top {
			if _, err := fmt.Fprintf(w, "%s{tenant=\"%s\"} %s\n", m.name, promLabelEscape(t.Tenant), m.value(t)); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabelEscape escapes a tenant name for use inside a quoted
// Prometheus label value (tenants are arbitrary client bytes).
func promLabelEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
