package obs

import (
	"sync"
	"testing"
	"time"
)

// Edge cases of the latency histogram pinned separately from the happy
// path: empty snapshots, degenerate single-bucket distributions, the
// overflow bucket's quantile behavior, and concurrent record/merge.

func TestHistogramEmptySnapshotQuantiles(t *testing.T) {
	var s HistSnapshot
	for _, q := range []float64{0.0001, 0.5, 0.99, 0.999, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if s.P50() != 0 || s.P99() != 0 || s.P999() != 0 {
		t.Errorf("empty quantile helpers = %v/%v/%v, want zeros", s.P50(), s.P99(), s.P999())
	}
	if s.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", s.Mean())
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	var h Histogram
	const sample = 700 * time.Nanosecond // bucket (512, 1024]ns
	for i := 0; i < 1000; i++ {
		h.Record(sample)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	// Every quantile must land on the one populated bucket's upper
	// bound — no quantile may wander into a neighboring bucket.
	want := BucketUpper(bucketOf(sample))
	for _, q := range []float64{0.001, 0.5, 0.99, 0.999, 1} {
		if got := s.Quantile(q); got != want {
			t.Errorf("single-bucket Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if s.Mean() != sample {
		t.Errorf("Mean = %v, want exact %v", s.Mean(), sample)
	}
	if s.Max != sample {
		t.Errorf("Max = %v, want %v", s.Max, sample)
	}
}

func TestHistogramOverflowBucketP999(t *testing.T) {
	var h Histogram
	// One fast sample, the tail deep in the overflow bucket: p999's
	// nearest rank lands in overflow, which must report the true
	// recorded maximum rather than a fake finite bucket bound.
	h.Record(time.Microsecond)
	worst := 9 * time.Hour
	for i := 0; i < 999; i++ {
		h.Record(worst - time.Duration(i)*time.Minute)
	}
	s := h.Snapshot()
	if got := s.P999(); got != worst {
		t.Errorf("overflow P999 = %v, want recorded max %v", got, worst)
	}
	if got := s.Quantile(1); got != worst {
		t.Errorf("overflow Quantile(1) = %v, want %v", got, worst)
	}
	// p50 still resolves to a finite bucket... unless the majority is
	// overflow, which it is here — it must also report Max, never a
	// bound beyond the last finite bucket.
	if got := s.P50(); got != worst {
		t.Errorf("overflow-majority P50 = %v, want %v", got, worst)
	}
}

// TestHistogramConcurrentRecordMerge exercises lock-free recording
// from many goroutines plus per-worker snapshot merging, the
// service-wide aggregation pattern — meaningful under -race.
func TestHistogramConcurrentRecordMerge(t *testing.T) {
	const workers, perWorker = 8, 2000
	shared := &Histogram{}
	locals := make([]Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := time.Duration(w*perWorker+i+1) * time.Microsecond
				shared.Record(d)
				locals[w].Record(d)
			}
		}(w)
	}
	wg.Wait()

	var merged HistSnapshot
	for w := range locals {
		merged.Merge(locals[w].Snapshot())
	}
	got := shared.Snapshot()
	if merged.Count != got.Count || merged.Count != workers*perWorker {
		t.Fatalf("counts: merged %d, shared %d, want %d", merged.Count, got.Count, workers*perWorker)
	}
	if merged.Sum != got.Sum {
		t.Errorf("sums: merged %v != shared %v", merged.Sum, got.Sum)
	}
	if merged.Max != got.Max {
		t.Errorf("max: merged %v != shared %v", merged.Max, got.Max)
	}
	if merged.Counts != got.Counts {
		t.Errorf("bucket counts diverge between merged locals and the shared histogram")
	}
}
