package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

func TestSamplerRateAndDeterminism(t *testing.T) {
	s := NewSampler(42, 8)
	var ids []uint64
	for i := 0; i < 8000; i++ {
		if id, ok := s.Sample(); ok {
			if id == 0 {
				t.Fatal("sampled a zero trace id (0 means untraced)")
			}
			ids = append(ids, id)
		}
	}
	if len(ids) != 1000 {
		t.Fatalf("sampled %d of 8000 at rate 8, want exactly 1000", len(ids))
	}
	// Same seed and rate replay the same id sequence.
	s2 := NewSampler(42, 8)
	for i := 0; i < 8000; i++ {
		if id, ok := s2.Sample(); ok && id != ids[i/8] {
			t.Fatalf("sample %d: id %#x, want %#x (determinism)", i, id, ids[i/8])
		}
	}
	// Distinct ids: splitmix64 over distinct counters cannot collide in
	// a thousand draws unless something is broken.
	seen := map[uint64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate trace id %#x", id)
		}
		seen[id] = true
	}
}

func TestSamplerDisabled(t *testing.T) {
	var nilSampler *Sampler
	if _, ok := nilSampler.Sample(); ok {
		t.Error("nil sampler sampled")
	}
	off := NewSampler(1, 0)
	for i := 0; i < 100; i++ {
		if _, ok := off.Sample(); ok {
			t.Error("rate<=0 sampler sampled")
		}
	}
}

func TestTenantSketchTopAndEviction(t *testing.T) {
	s := NewTenantSketch(2)
	for i := 0; i < 5; i++ {
		s.Observe("alpha", 100, time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		s.Observe("beta", 50, time.Millisecond)
	}
	top := s.Top()
	if len(top) != 2 || top[0].Tenant != "alpha" || top[0].Ops != 5 || top[1].Tenant != "beta" {
		t.Fatalf("Top = %+v, want alpha(5) then beta(3)", top)
	}
	if top[0].WireBytes != 500 || top[0].CommitLatency != 5*time.Millisecond {
		t.Errorf("alpha accounting = %d bytes %v latency, want 500/5ms", top[0].WireBytes, top[0].CommitLatency)
	}
	if top[0].ErrFloor != 0 {
		t.Errorf("never-evicted tenant has error floor %d, want 0", top[0].ErrFloor)
	}

	// A new tenant evicts the min slot (beta at 3 ops) and inherits its
	// count as the space-saving error floor.
	s.Observe("gamma", 10, time.Microsecond)
	top = s.Top()
	if len(top) != 2 {
		t.Fatalf("Top after eviction = %+v, want 2 slots", top)
	}
	var gamma *TenantStat
	for i := range top {
		if top[i].Tenant == "gamma" {
			gamma = &top[i]
		}
		if top[i].Tenant == "beta" {
			t.Fatalf("beta survived eviction: %+v", top)
		}
	}
	if gamma == nil {
		t.Fatalf("gamma not admitted: %+v", top)
	}
	if gamma.Ops != 4 || gamma.ErrFloor != 3 {
		t.Errorf("gamma = ops %d floor %d, want ops 4 (min+1) floor 3", gamma.Ops, gamma.ErrFloor)
	}
	if gamma.WireBytes != 10 {
		t.Errorf("gamma bytes = %d, want accounting restarted at 10", gamma.WireBytes)
	}
}

func TestTenantSketchNilAndEmptyTenant(t *testing.T) {
	var s *TenantSketch
	s.Observe("x", 1, time.Second) // must not panic
	if top := s.Top(); top != nil {
		t.Errorf("nil Top = %v, want nil", top)
	}
	if err := s.WriteProm(io.Discard); err != nil {
		t.Errorf("nil WriteProm = %v", err)
	}
	real := NewTenantSketch(4)
	real.Observe("", 1, time.Second) // internal probes carry no tenant
	if top := real.Top(); len(top) != 0 {
		t.Errorf("empty-tenant observe landed in the sketch: %v", top)
	}
}

func TestTenantSketchWriteProm(t *testing.T) {
	s := NewTenantSketch(4)
	s.Observe(`we"ird\ten`+"\nant", 7, 1500*time.Millisecond)
	var b strings.Builder
	if err := s.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE memsnap_tenant_ops gauge",
		`memsnap_tenant_ops{tenant="we\"ird\\ten\nant"} 1`,
		`memsnap_tenant_wire_bytes{tenant="we\"ird\\ten\nant"} 7`,
		"memsnap_tenant_commit_latency_seconds_sum",
		"} 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderPeekNonDestructive(t *testing.T) {
	rec := NewRecorder(8)
	rec.Span(CatShard, NameGroupCommit, ShardTrack(0), 0, time.Millisecond, 1)
	rec.Span(CatShard, NameGroupCommit, ShardTrack(0), time.Millisecond, time.Millisecond, 2)
	if got := rec.Peek(); len(got) != 2 {
		t.Fatalf("Peek = %d events, want 2", len(got))
	}
	if got := rec.Peek(); len(got) != 2 {
		t.Fatalf("second Peek = %d events, want 2 (Peek must not drain)", len(got))
	}
	if got := rec.Drain(); len(got) != 2 {
		t.Fatalf("Drain after Peek = %d events, want 2", len(got))
	}
	if got := rec.Peek(); len(got) != 0 {
		t.Fatalf("Peek after Drain = %d events, want 0", len(got))
	}
}

func TestWriteTraceFlowEvents(t *testing.T) {
	const flow = 0xabcdef12345
	events := []Event{
		{Kind: KindSpan, Cat: CatNet, Name: NameClientRequest, Track: ClientTrack(0), Start: 0, Dur: 4 * time.Millisecond, Flow: flow},
		{Kind: KindSpan, Cat: CatNet, Name: NameNetRequest, Track: NetTrack(0), Start: time.Millisecond, Dur: 2 * time.Millisecond, Flow: flow},
		{Kind: KindSpan, Cat: CatShard, Name: NameGroupCommit, Track: ShardTrack(0), Start: 2 * time.Millisecond, Dur: time.Millisecond, Flow: flow},
		{Kind: KindSpan, Cat: CatShard, Name: NameGroupCommit, Track: ShardTrack(1), Start: 0, Dur: time.Millisecond}, // no flow
		{Kind: KindSpan, Cat: CatNet, Name: NameClientRequest, Track: ClientTrack(1), Start: 0, Dur: time.Millisecond, Flow: 0x77}, // single-span flow
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	spanFlows := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph := ev["ph"].(string)
		switch ph {
		case "s", "t", "f":
			phases = append(phases, ph)
			if id := ev["id"].(string); id != "abcdef12345" {
				t.Errorf("flow event id %q, want abcdef12345", id)
			}
			if ph == "f" {
				if bp, _ := ev["bp"].(string); bp != "e" {
					t.Errorf("flow finish missing bp:e: %v", ev)
				}
			}
		case "X":
			if args, ok := ev["args"].(map[string]any); ok {
				if f, ok := args["flow"].(string); ok {
					spanFlows[f]++
				}
			}
		}
	}
	if got, want := strings.Join(phases, ""), "stf"; got != want {
		t.Errorf("flow phases = %q, want %q (3-span flow; single-span flow suppressed)", got, want)
	}
	if spanFlows["abcdef12345"] != 3 {
		t.Errorf("span args carried flow id %d times, want 3", spanFlows["abcdef12345"])
	}
	if spanFlows["77"] != 1 {
		t.Errorf("single-span flow must still stamp its span args (got %v)", spanFlows)
	}
}

func TestWriteBundle(t *testing.T) {
	rec := NewRecorder(16)
	rec.Span(CatShard, NameGroupCommit, ShardTrack(0), 0, time.Millisecond, 9)
	var buf bytes.Buffer
	err := WriteBundle(&buf, Bundle{
		Reason:     "unit test",
		VirtualNow: 2500 * time.Millisecond,
		Vars:       map[string]int{"commits": 3},
		Metrics: func(w io.Writer) error {
			_, err := io.WriteString(w, "memsnap_up 1\n")
			return err
		},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason  string         `json:"reason"`
		Virtual float64        `json:"virtual_now_seconds"`
		Rec     RecorderStats  `json:"recorder"`
		Vars    map[string]int `json:"varz"`
		Metrics string         `json:"metrics"`
		Trace   struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("bundle is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Reason != "unit test" || doc.Virtual != 2.5 {
		t.Errorf("header = %q %v, want unit test / 2.5", doc.Reason, doc.Virtual)
	}
	if doc.Vars["commits"] != 3 || doc.Metrics != "memsnap_up 1\n" {
		t.Errorf("varz/metrics = %v / %q", doc.Vars, doc.Metrics)
	}
	if len(doc.Trace.TraceEvents) == 0 {
		t.Error("bundle trace is empty")
	}
	// The bundle must not consume the ring.
	if got := rec.Peek(); len(got) != 1 {
		t.Errorf("bundle drained the ring: %d events left, want 1", len(got))
	}
	// Minimal bundle: every source optional.
	var small bytes.Buffer
	if err := WriteBundle(&small, Bundle{Reason: "empty"}); err != nil {
		t.Fatalf("empty bundle: %v", err)
	}
}

func TestServerHealthAndTopz(t *testing.T) {
	ready := true
	sketch := NewTenantSketch(4)
	sketch.Observe("acme", 64, time.Millisecond)
	srv, err := Serve("127.0.0.1:0", ServerSources{
		Health: func() (bool, string) {
			if ready {
				return true, "serving"
			}
			return false, "draining"
		},
		TopK: sketch.Top,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.Addr(), "/healthz")
	if code != 200 || !bytes.Contains(body, []byte("serving")) {
		t.Errorf("/healthz ready = %d %q, want 200 serving", code, body)
	}
	ready = false
	code, body = get(t, srv.Addr(), "/healthz")
	if code != 503 || !bytes.Contains(body, []byte("draining")) {
		t.Errorf("/healthz draining = %d %q, want 503 draining", code, body)
	}

	code, body = get(t, srv.Addr(), "/topz")
	if code != 200 {
		t.Fatalf("/topz = %d %q", code, body)
	}
	var doc struct {
		Tenants []TenantStat `json:"tenants"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/topz is not valid JSON: %v\n%s", err, body)
	}
	if len(doc.Tenants) != 1 || doc.Tenants[0].Tenant != "acme" || doc.Tenants[0].Ops != 1 {
		t.Errorf("/topz = %+v, want acme with 1 op", doc.Tenants)
	}

	// The 404 hint advertises every endpoint.
	code, body = get(t, srv.Addr(), "/nope")
	if code != 404 {
		t.Fatalf("/nope = %d", code)
	}
	for _, want := range []string{"/metricz", "/varz", "/tracez", "/healthz", "/topz"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("404 hint missing %s: %q", want, body)
		}
	}
}

func TestServerHealthDefault(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerSources{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// No Health source: liveness-only, always 200.
	if code, _ := get(t, srv.Addr(), "/healthz"); code != 200 {
		t.Errorf("/healthz without source = %d, want 200", code)
	}
	code, body := get(t, srv.Addr(), "/topz")
	if code != 200 || !bytes.Contains(body, []byte("tenants")) {
		t.Errorf("/topz without source = %d %q, want valid empty JSON", code, body)
	}
}
