package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Flight recorder: the black-box post-mortem path. A Bundle snapshots
// everything a crash investigation wants from a live process — the
// recorder ring (via Peek, so the flight read does not consume the
// /tracez drain), recorder accounting, the varz state snapshot
// (shard/replica stats with their histogram snapshots ride in here),
// and the Prometheus text exposition — into one self-contained JSON
// document. Producers call it on demand: chaos.RunCell writes one per
// failing cell, msnap-serve writes one on SIGTERM and on panic.
//
// Bundle building is deliberately cold-path code: it allocates,
// marshals and formats freely. Nothing here runs unless something
// already went wrong (or a human asked).

// Bundle describes one flight-recorder snapshot to write.
type Bundle struct {
	// Reason says why the bundle exists ("chaos cell failed: ...",
	// "SIGTERM", "panic: ...").
	Reason string
	// VirtualNow is the simulation's current virtual time.
	VirtualNow time.Duration
	// Vars is the varz-style state snapshot (marshaled as-is).
	Vars any
	// Metrics writes the Prometheus text exposition (optional).
	Metrics func(io.Writer) error
	// Recorder is the ring to snapshot (optional; Peek, not Drain).
	Recorder *Recorder
}

// bundleDoc is the serialized shape; field order is the output order.
type bundleDoc struct {
	Reason            string          `json:"reason"`
	VirtualNowSeconds float64         `json:"virtual_now_seconds"`
	RecorderStats     RecorderStats   `json:"recorder"`
	Vars              any             `json:"varz,omitempty"`
	Metrics           string          `json:"metrics,omitempty"`
	Trace             json.RawMessage `json:"trace"`
}

// WriteBundle writes the bundle as indented JSON.
func WriteBundle(w io.Writer, b Bundle) error {
	doc := bundleDoc{
		Reason:            b.Reason,
		VirtualNowSeconds: b.VirtualNow.Seconds(),
		RecorderStats:     b.Recorder.Stats(),
		Vars:              b.Vars,
	}
	if b.Metrics != nil {
		var mbuf bytes.Buffer
		if err := b.Metrics(&mbuf); err != nil {
			return fmt.Errorf("flight bundle metrics: %w", err)
		}
		doc.Metrics = mbuf.String()
	}
	var tbuf bytes.Buffer
	if err := WriteTrace(&tbuf, b.Recorder.Peek()); err != nil {
		return fmt.Errorf("flight bundle trace: %w", err)
	}
	doc.Trace = tbuf.Bytes()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteBundleFile writes the bundle to path (0644, truncating).
func WriteBundleFile(path string, b Bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBundle(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
