package obs

import "sync/atomic"

// Sampler decides, allocation-free and deterministically, which
// requests get a trace id. Sampling is 1-in-N on an atomic admission
// counter: for a fixed seed and a fixed request order the same
// requests are sampled with the same trace ids on every run, so
// traced workloads stay reproducible end to end. The unsampled
// fast path is one atomic add and one modulo — no locks, no
// allocation — which keeps the wire hot path at its 0 allocs/op
// ceiling with sampling enabled.
//
// A nil *Sampler never samples, so call sites hold an optional
// sampler without branching on configuration.
type Sampler struct {
	seed uint64
	rate uint64 // sample 1 of every rate offered requests; 0: never
	n    atomic.Uint64
}

// DefaultSampleRate is the 1-in-N trace sampling rate production
// binaries default to: sparse enough that the sampled-path work is
// invisible in the allocs/op gates, dense enough that a load run of a
// few thousand ops yields several stitched traces.
const DefaultSampleRate = 1024

// NewSampler returns a sampler tracing 1 of every rate requests.
// rate <= 0 disables sampling; rate 1 traces everything (test rigs).
func NewSampler(seed uint64, rate int) *Sampler {
	if rate <= 0 {
		return &Sampler{seed: seed}
	}
	return &Sampler{seed: seed, rate: uint64(rate)}
}

// Sample admits one request: it returns a nonzero trace id and true
// when this request is sampled, 0 and false otherwise.
//
//memsnap:hotpath
func (s *Sampler) Sample() (uint64, bool) {
	if s == nil || s.rate == 0 {
		return 0, false
	}
	n := s.n.Add(1)
	if n%s.rate != 0 {
		return 0, false
	}
	id := splitmix64(s.seed + n)
	if id == 0 {
		id = 1 // 0 means "untraced" everywhere downstream
	}
	return id, true
}

// splitmix64 is the standard 64-bit finalizer-style mixer; its output
// over distinct inputs is a bijection, so sampled requests of one
// seeded sampler never collide on trace id.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
