package obs

import (
	"fmt"
	"io"
	"time"
)

// WriteTrace writes events as Chrome trace-event JSON (the "JSON
// Array Format" with a traceEvents wrapper object), loadable directly
// in Perfetto or chrome://tracing. Timestamps are virtual time
// expressed in microseconds (the format's unit), with nanosecond
// precision preserved as fractional digits.
//
// Span events export as complete ("X") events, instants as "i",
// counters as "C". One thread-name metadata record per distinct track
// labels the lanes (worker/shipper/follower per the Track
// conventions). All names come from the closed Cat/Name enums, so the
// output needs no JSON string escaping and is deterministic for a
// deterministic event sequence.
func WriteTrace(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	// Lane metadata, in order of first appearance.
	seen := map[int32]bool{}
	for _, ev := range events {
		if seen[ev.Track] {
			continue
		}
		seen[ev.Track] = true
		role, idx := TrackName(ev.Track)
		if err := emit(`{"ph":"M","name":"thread_name","pid":0,"tid":%d,"args":{"name":"%s %d"}}`,
			ev.Track, role, idx); err != nil {
			return err
		}
	}

	for _, ev := range events {
		ts := usec(ev.Start)
		switch ev.Kind {
		case KindSpan:
			if err := emit(`{"ph":"X","cat":"%s","name":"%s","pid":0,"tid":%d,"ts":%s,"dur":%s,"args":{"v":%d}}`,
				ev.Cat, ev.Name, ev.Track, ts, usec(ev.Dur), ev.Arg); err != nil {
				return err
			}
		case KindInstant:
			if err := emit(`{"ph":"i","s":"t","cat":"%s","name":"%s","pid":0,"tid":%d,"ts":%s,"args":{"v":%d}}`,
				ev.Cat, ev.Name, ev.Track, ts, ev.Arg); err != nil {
				return err
			}
		case KindCounter:
			if err := emit(`{"ph":"C","cat":"%s","name":"%s","pid":0,"tid":%d,"ts":%s,"args":{"value":%d}}`,
				ev.Cat, ev.Name, ev.Track, ts, ev.Arg); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// usec renders a virtual duration as microseconds with fixed
// nanosecond precision — deterministic (no float formatting
// shortest-form variation across values).
func usec(d time.Duration) string {
	ns := int64(d)
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}
