package obs

import (
	"fmt"
	"io"
	"time"
)

// WriteTrace writes events as Chrome trace-event JSON (the "JSON
// Array Format" with a traceEvents wrapper object), loadable directly
// in Perfetto or chrome://tracing. Timestamps are virtual time
// expressed in microseconds (the format's unit), with nanosecond
// precision preserved as fractional digits.
//
// Span events export as complete ("X") events, instants as "i",
// counters as "C". One thread-name metadata record per distinct track
// labels the lanes (worker/shipper/follower/netsvc/client per the
// Track conventions). All names come from the closed Cat/Name enums,
// so the output needs no JSON string escaping and is deterministic for
// a deterministic event sequence.
//
// Spans carrying a nonzero Flow additionally emit Chrome flow events
// ("s" start / "t" step / "f" finish, one shared id per trace id)
// anchored at each span's start timestamp, so Perfetto draws one
// arrow-connected path for a sampled request across every lane it
// crossed (client → netsvc → shard → shipper → follower). Events
// without a Flow export exactly as before.
func WriteTrace(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	// Lane metadata, in order of first appearance.
	seen := map[int32]bool{}
	for _, ev := range events {
		if seen[ev.Track] {
			continue
		}
		seen[ev.Track] = true
		role, idx := TrackName(ev.Track)
		if err := emit(`{"ph":"M","name":"thread_name","pid":0,"tid":%d,"args":{"name":"%s %d"}}`,
			ev.Track, role, idx); err != nil {
			return err
		}
	}

	// Flow occurrence counts: the first span of a trace id starts the
	// flow, the last finishes it, the middle ones step. A single pre-pass
	// keeps the phase choice deterministic in event order. A trace id
	// seen on only one span binds nothing (e.g. a client-side-only trace
	// document, where the other half of the flow lives in the server's),
	// so it emits no flow events — Chrome rejects dangling starts.
	flowTotal := map[uint64]int{}
	for _, ev := range events {
		if ev.Kind == KindSpan && ev.Flow != 0 {
			flowTotal[ev.Flow]++
		}
	}
	flowSeen := map[uint64]int{}

	for _, ev := range events {
		ts := usec(ev.Start)
		switch ev.Kind {
		case KindSpan:
			if ev.Flow != 0 {
				// The flow id rides on the span's args too: flow events
				// bind lanes within one document, but correlating traces
				// from different processes (a client's -trace-out against
				// the server's /tracez) needs the id on the span itself.
				if err := emit(`{"ph":"X","cat":"%s","name":"%s","pid":0,"tid":%d,"ts":%s,"dur":%s,"args":{"v":%d,"flow":"%x"}}`,
					ev.Cat, ev.Name, ev.Track, ts, usec(ev.Dur), ev.Arg, ev.Flow); err != nil {
					return err
				}
			} else if err := emit(`{"ph":"X","cat":"%s","name":"%s","pid":0,"tid":%d,"ts":%s,"dur":%s,"args":{"v":%d}}`,
				ev.Cat, ev.Name, ev.Track, ts, usec(ev.Dur), ev.Arg); err != nil {
				return err
			}
			if ev.Flow != 0 && flowTotal[ev.Flow] > 1 {
				flowSeen[ev.Flow]++
				ph, bind := "t", ""
				switch {
				case flowSeen[ev.Flow] == 1:
					ph = "s"
				case flowSeen[ev.Flow] == flowTotal[ev.Flow]:
					ph, bind = "f", `,"bp":"e"`
				}
				if err := emit(`{"ph":"%s"%s,"cat":"flow","name":"req","id":"%x","pid":0,"tid":%d,"ts":%s}`,
					ph, bind, ev.Flow, ev.Track, ts); err != nil {
					return err
				}
			}
		case KindInstant:
			if err := emit(`{"ph":"i","s":"t","cat":"%s","name":"%s","pid":0,"tid":%d,"ts":%s,"args":{"v":%d}}`,
				ev.Cat, ev.Name, ev.Track, ts, ev.Arg); err != nil {
				return err
			}
		case KindCounter:
			if err := emit(`{"ph":"C","cat":"%s","name":"%s","pid":0,"tid":%d,"ts":%s,"args":{"value":%d}}`,
				ev.Cat, ev.Name, ev.Track, ts, ev.Arg); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// usec renders a virtual duration as microseconds with fixed
// nanosecond precision — deterministic (no float formatting
// shortest-form variation across values).
func usec(d time.Duration) string {
	ns := int64(d)
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}
