// Golden test for the Chrome trace-event exporter: a deterministic
// single-threaded uCheckpoint workload (tracking faults, an in-flight
// COW, sync and async persists, a durability wait) drained through
// WriteTrace must reproduce testdata/trace.golden byte for byte, and
// the output must parse as the trace-event JSON schema Perfetto loads.
//
// The test lives in package obs_test because the workload drives
// internal/core, which itself imports obs.
package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"memsnap/internal/core"
	"memsnap/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata")

// buildTrace runs the golden workload and returns the exported trace.
func buildTrace(t testing.TB) []byte {
	t.Helper()
	rec := obs.NewRecorder(1024)
	sys, err := core.NewSystem(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	ctx.SetRecorder(rec, obs.ShardTrack(0))
	r, err := p.Open(ctx, "golden", 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	// First-touch writes: tracking-fault instants, then a sync persist
	// (reset/initiate/wait_io/persist spans).
	for i := 0; i < 4; i++ {
		ctx.WriteAt(r, int64(i)*int64(core.PageSize), []byte{byte(i + 1)})
	}
	if _, err := ctx.Persist(r, core.MSSync); err != nil {
		t.Fatal(err)
	}

	// Async persist with a write to a checkpoint-in-progress page: a
	// COW-fault instant lands between the persist span and the wait.
	ctx.WriteAt(r, 0, []byte{0xaa})
	ctx.WriteAt(r, int64(core.PageSize), []byte{0xbb})
	epoch, err := ctx.Persist(r, core.MSAsync)
	if err != nil {
		t.Fatal(err)
	}
	ctx.WriteAt(r, 0, []byte{0xcc})
	ctx.Wait(r, epoch)

	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, rec.Drain()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteTraceGolden(t *testing.T) {
	got := buildTrace(t)
	if again := buildTrace(t); !bytes.Equal(got, again) {
		t.Fatal("trace export is not deterministic across identical runs")
	}

	golden := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (rerun with -update-golden to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace drifted from %s (rerun with -update-golden after an intentional change)\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

func TestWriteTraceParsesAsTraceEventJSON(t *testing.T) {
	got := buildTrace(t)
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, got)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	phases := map[string]int{}
	names := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if name, ok := ev["name"].(string); ok {
			names[name] = true
		}
		switch ph {
		case "M":
			if ev["name"] != "thread_name" {
				t.Errorf("event %d: metadata name = %v, want thread_name", i, ev["name"])
			}
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("event %d: complete event missing dur", i)
			}
			fallthrough
		case "i", "C":
			if _, ok := ev["ts"]; !ok {
				t.Errorf("event %d: missing ts", i)
			}
			if _, ok := ev["cat"]; !ok {
				t.Errorf("event %d: missing cat", i)
			}
		default:
			t.Errorf("event %d: unexpected phase %q", i, ph)
		}
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["i"] == 0 {
		t.Errorf("phase mix %v, want metadata + spans + instants", phases)
	}
	for _, want := range []string{"fault_track", "fault_cow", "reset_tracking", "initiate_writes", "wait_io", "persist"} {
		if !names[want] {
			t.Errorf("workload trace missing %q event (have %v)", want, names)
		}
	}
}
