package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of log2 latency buckets. Bucket 0 holds
// sub-nanosecond (zero) samples; bucket i holds [2^(i-1), 2^i)
// nanoseconds; the last bucket is the overflow (anything from ~4.6
// virtual minutes up).
const HistBuckets = 39

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpper returns the exclusive upper bound of bucket i (the
// Prometheus le boundary). The last bucket has no finite bound.
func BucketUpper(i int) time.Duration { return time.Duration(int64(1) << uint(i)) }

// Histogram is an HDR-style log2-bucketed latency histogram. Record
// is lock-free (three atomic adds plus a CAS loop for the max) and
// allocation-free, so hot paths record unconditionally; quantiles are
// computed from snapshots on the cold path. The zero value is ready
// to use.
type Histogram struct {
	counts [HistBuckets]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Int64
	max    atomic.Int64
}

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[bucketOf(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Snapshot copies the histogram into an immutable value. Buckets are
// read without a global lock, so a snapshot taken concurrently with
// recording is approximate (each counter individually consistent) —
// exact once recording has quiesced.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Count = h.count.Load()
	s.Max = time.Duration(h.max.Load())
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram: a plain value
// (fixed bucket array) that can ride inside stats structs without
// allocation.
type HistSnapshot struct {
	Counts [HistBuckets]int64
	Sum    time.Duration
	Count  int64
	Max    time.Duration
}

// Merge folds other into s (for service-wide aggregation).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	s.Count += other.Count
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Quantile returns the q-th quantile (0 < q <= 1) as the upper bound
// of the bucket holding the nearest-rank sample — a conservative
// estimate within a factor of two, like HDR histograms at 0 precision
// digits. The overflow bucket reports the recorded maximum. Returns
// zero on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += s.Counts[i]
		if cum >= rank {
			if i == HistBuckets-1 {
				return s.Max
			}
			return BucketUpper(i)
		}
	}
	return s.Max
}

// P50 returns the median estimate.
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P99 returns the 99th percentile estimate.
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// P999 returns the 99.9th percentile estimate.
func (s HistSnapshot) P999() time.Duration { return s.Quantile(0.999) }

// Mean returns the average sample.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// promFloat renders a float in the repo's Prometheus exposition style.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePromHeader writes the # HELP / # TYPE histogram preamble for
// metric name.
func WritePromHeader(w io.Writer, name, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	return err
}

// WriteProm writes the snapshot as Prometheus histogram series:
// cumulative name_bucket{...,le="..."} lines (le in seconds, log2
// boundaries, emitted up to the last occupied bucket plus +Inf),
// then name_sum and name_count. labels is the caller's label set
// without braces (e.g. `shard="0"`); it may be empty.
func (s HistSnapshot) WriteProm(w io.Writer, name, labels string) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	plain := ""
	if labels != "" {
		plain = "{" + labels + "}"
	}
	last := -1
	for i := HistBuckets - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			last = i
			break
		}
	}
	var cum int64
	for i := 0; i <= last && i < HistBuckets-1; i++ {
		cum += s.Counts[i]
		le := promFloat(BucketUpper(i).Seconds())
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, plain, promFloat(s.Sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, plain, s.Count)
	return err
}
