package rockskv

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"memsnap/internal/core"
	"memsnap/internal/sim"
)

// The persistent skip list (§7.2): the MemSnap-mode MemTable.
//
// Each key-value pair occupies its own 4 KiB region page (Property 2:
// no two nodes share an OS page), so MemSnap's per-thread page
// tracking captures exactly the nodes a write dirtied. Only the
// level-0 linked list is persistent; skip pointers are a volatile
// index rebuilt after a crash by walking the restored list — the
// paper's optimization that halves persisted metadata.
//
// Writers hold per-node locks from modification until their
// uCheckpoint is durable (Property 3: a dirty page cannot be
// re-dirtied by another thread before it is flushed); the simulation
// models the wait in virtual time via sim.VLock.

// nodePageSize is one node's page.
const nodePageSize = 4096

// plistMagic marks an initialized region (header page 0).
const plistMagic = 0x504c4953 // "PLIS"

// Node page layout:
//
//	keyLen  u16
//	valLen  u16
//	flags   u8 (bit 0: tombstone)
//	next0   u32 (page number of the level-0 successor; 0 = none)
//	key, value
const (
	nodeKeyLen = 0
	nodeValLen = 2
	nodeFlags  = 4
	nodeNext0  = 5
	nodeHdr    = 9
)

// maxNodePayload bounds key+value to one page.
const maxNodePayload = nodePageSize - nodeHdr

// Header page layout: magic u32, head0 u32 (page of the first node).
type plistNode struct {
	pageNo uint32
	key    []byte
	next   [maxHeight]*plistNode
}

// plist is the persistent skip list plus its volatile index.
type plist struct {
	region *core.Region

	head     *plistNode // sentinel (pageNo 0 = header page)
	height   int
	rng      *sim.RNG
	numPages uint32 // allocation frontier (page 0 is the header)
	count    int
}

// openPlist initializes or recovers the list from the region.
func openPlist(ctx *core.Context, region *core.Region) (*plist, error) {
	p := &plist{
		region: region,
		head:   &plistNode{pageNo: 0},
		height: 1,
		rng:    sim.NewRNG(42),
	}
	hdr := ctx.PageForRead(region, 0)
	if binary.LittleEndian.Uint32(hdr) != plistMagic {
		// Fresh region.
		w := ctx.PageForWrite(region, 0)
		binary.LittleEndian.PutUint32(w, plistMagic)
		binary.LittleEndian.PutUint32(w[4:], 0)
		if _, err := ctx.Persist(region, core.MSSync); err != nil {
			return nil, err
		}
		p.numPages = 1
		return p, nil
	}
	// Recovery: walk the level-0 chain, rebuilding skip pointers.
	p.numPages = 1
	var preds [maxHeight]*plistNode
	for i := range preds {
		preds[i] = p.head
	}
	pageNo := binary.LittleEndian.Uint32(hdr[4:])
	for pageNo != 0 {
		page := ctx.PageForRead(region, int64(pageNo)*nodePageSize)
		kl := int(binary.LittleEndian.Uint16(page[nodeKeyLen:]))
		n := &plistNode{
			pageNo: pageNo,
			key:    append([]byte(nil), page[nodeHdr:nodeHdr+kl]...),
		}
		h := p.randomHeight()
		if h > p.height {
			p.height = h
		}
		for level := 0; level < h; level++ {
			preds[level].next[level] = n
			preds[level] = n
		}
		p.count++
		if pageNo >= p.numPages {
			p.numPages = pageNo + 1
		}
		pageNo = binary.LittleEndian.Uint32(page[nodeNext0:])
	}
	return p, nil
}

func (p *plist) randomHeight() int {
	h := 1
	for h < maxHeight && p.rng.Uint64()%4 == 0 {
		h++
	}
	return h
}

// findPredecessors locates key's position; preds[i] is the rightmost
// node before key at level i.
func (p *plist) findPredecessors(key []byte, preds *[maxHeight]*plistNode) *plistNode {
	x := p.head
	for level := p.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		preds[level] = x
	}
	return x.next[0]
}

// pageLockFor stripes page locks.
func pageLockFor(locks *[1024]sim.VLock, pageNo uint32) *sim.VLock {
	return &locks[pageNo%1024]
}

// put inserts or updates one key and persists the dirtied nodes as a
// uCheckpoint before returning.
func (p *plist) put(ctx *core.Context, key, val []byte, tombstone bool, structLock *sim.VLock, pageLocks *[1024]sim.VLock) error {
	clk := ctx.Clock()
	structLock.Lock(clk)
	locked, err := p.apply(ctx, key, val, tombstone, pageLocks, map[*sim.VLock]bool{})
	structLock.Unlock(clk)
	if err != nil {
		return err
	}
	_, err = ctx.Persist(p.region, core.MSSync)
	for _, l := range locked {
		l.Unlock(clk)
	}
	return err
}

// multiPut applies a batch and persists once (WriteCommitted).
// multiPut applies a batch under one structure-lock critical section
// and persists once (WriteCommitted). Holding the structure lock
// across the whole batch keeps page-lock acquisition globally ordered
// (no thread ever waits for the structure lock while holding page
// locks), which rules out deadlock between concurrent batches.
func (p *plist) multiPut(ctx *core.Context, kvs []KV, structLock *sim.VLock, pageLocks *[1024]sim.VLock) error {
	clk := ctx.Clock()
	var locked []*sim.VLock
	held := map[*sim.VLock]bool{}
	structLock.Lock(clk)
	for _, kv := range kvs {
		ls, err := p.apply(ctx, kv.Key, kv.Value, false, pageLocks, held)
		if err != nil {
			structLock.Unlock(clk)
			for _, l := range locked {
				l.Unlock(clk)
			}
			return err
		}
		locked = append(locked, ls...)
	}
	structLock.Unlock(clk)
	_, err := ctx.Persist(p.region, core.MSSync)
	for _, l := range locked {
		l.Unlock(clk)
	}
	return err
}

// apply performs the in-memory and in-region mutation for one write
// and returns the page locks acquired (released by the caller after
// the persist). The caller holds the structure lock. held tracks
// locks already owned by this batch so stripe collisions are not
// re-acquired.
func (p *plist) apply(ctx *core.Context, key, val []byte, tombstone bool, pageLocks *[1024]sim.VLock, held map[*sim.VLock]bool) ([]*sim.VLock, error) {
	if len(key)+len(val) > maxNodePayload {
		return nil, fmt.Errorf("rockskv: payload %d exceeds node page", len(key)+len(val))
	}
	clk := ctx.Clock()

	// Page locks are only ever acquired while holding structLock and
	// are released without reacquiring it, so cross-thread deadlock is
	// impossible; held dedupes stripe collisions within one batch.
	var locked []*sim.VLock
	acquire := func(pageNo uint32) {
		l := pageLockFor(pageLocks, pageNo)
		if held[l] {
			return
		}
		held[l] = true
		l.Lock(clk)
		locked = append(locked, l)
	}

	var preds [maxHeight]*plistNode
	next := p.findPredecessors(key, &preds)

	if next != nil && bytes.Equal(next.key, key) {
		// Update in place: dirty only the node's page.
		acquire(next.pageNo)
		page := ctx.PageForWrite(p.region, int64(next.pageNo)*nodePageSize)
		succ := binary.LittleEndian.Uint32(page[nodeNext0:])
		p.encodeNode(ctx, page, key, val, tombstone, succ)
		return locked, nil
	}

	// Insert: allocate a fresh node page.
	if int64(p.numPages+1)*nodePageSize > p.region.Len() {
		return nil, fmt.Errorf("rockskv: region full (%d nodes)", p.numPages-1)
	}
	pageNo := p.numPages
	p.numPages++

	var succPage uint32
	if next != nil {
		succPage = next.pageNo
	}

	// Lock the predecessor's page for the persist window, then the
	// new node's own page (uncontended).
	pred := preds[0]
	acquire(pred.pageNo)
	acquire(pageNo)

	// Write the new node, then hook the persistent level-0 chain.
	page := ctx.PageForWrite(p.region, int64(pageNo)*nodePageSize)
	p.encodeNode(ctx, page, key, val, tombstone, succPage)
	predPage := ctx.PageForWrite(p.region, int64(pred.pageNo)*nodePageSize)
	if pred == p.head {
		binary.LittleEndian.PutUint32(predPage[4:], pageNo) // header head0
	} else {
		binary.LittleEndian.PutUint32(predPage[nodeNext0:], pageNo)
	}

	// Publish in the volatile index.
	n := &plistNode{pageNo: pageNo, key: append([]byte(nil), key...)}
	h := p.randomHeight()
	if h > p.height {
		for level := p.height; level < h; level++ {
			preds[level] = p.head
		}
		p.height = h
	}
	for level := 0; level < h; level++ {
		n.next[level] = preds[level].next[level]
		preds[level].next[level] = n
	}
	p.count++
	return locked, nil
}

// encodeNode fills a node page.
func (p *plist) encodeNode(ctx *core.Context, page []byte, key, val []byte, tombstone bool, next0 uint32) {
	binary.LittleEndian.PutUint16(page[nodeKeyLen:], uint16(len(key)))
	binary.LittleEndian.PutUint16(page[nodeValLen:], uint16(len(val)))
	if tombstone {
		page[nodeFlags] = 1
	} else {
		page[nodeFlags] = 0
	}
	binary.LittleEndian.PutUint32(page[nodeNext0:], next0)
	copy(page[nodeHdr:], key)
	copy(page[nodeHdr+len(key):], val)
}

// get reads a key through the volatile index.
func (p *plist) get(ctx *core.Context, key []byte, structLock *sim.VLock) ([]byte, bool) {
	clk := ctx.Clock()
	structLock.Lock(clk)
	var preds [maxHeight]*plistNode
	next := p.findPredecessors(key, &preds)
	var pageNo uint32
	if next != nil && bytes.Equal(next.key, key) {
		pageNo = next.pageNo
	}
	structLock.Unlock(clk)
	if pageNo == 0 {
		return nil, false
	}
	page := ctx.PageForRead(p.region, int64(pageNo)*nodePageSize)
	if page[nodeFlags]&1 != 0 {
		return nil, false
	}
	vl := int(binary.LittleEndian.Uint16(page[nodeValLen:]))
	kl := int(binary.LittleEndian.Uint16(page[nodeKeyLen:]))
	clk.Advance(ctx.Thread().AddressSpace().Costs().MemcpyCost(vl))
	return append([]byte(nil), page[nodeHdr+kl:nodeHdr+kl+vl]...), true
}

// scan returns up to n live entries with key >= start.
func (p *plist) scan(ctx *core.Context, start []byte, n int, structLock *sim.VLock) []KV {
	clk := ctx.Clock()
	structLock.Lock(clk)
	var preds [maxHeight]*plistNode
	x := p.findPredecessors(start, &preds)
	var nodes []*plistNode
	for x != nil && len(nodes) < n*2 {
		nodes = append(nodes, x)
		x = x.next[0]
	}
	structLock.Unlock(clk)

	var out []KV
	for _, node := range nodes {
		page := ctx.PageForRead(p.region, int64(node.pageNo)*nodePageSize)
		if page[nodeFlags]&1 != 0 {
			continue
		}
		kl := int(binary.LittleEndian.Uint16(page[nodeKeyLen:]))
		vl := int(binary.LittleEndian.Uint16(page[nodeValLen:]))
		out = append(out, KV{
			Key:   append([]byte(nil), page[nodeHdr:nodeHdr+kl]...),
			Value: append([]byte(nil), page[nodeHdr+kl:nodeHdr+kl+vl]...),
		})
		if len(out) >= n {
			break
		}
	}
	return out
}

// Count returns the number of nodes (including tombstones).
func (p *plist) Count() int { return p.count }
