package rockskv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"testing"

	"memsnap/internal/aurora"
	"memsnap/internal/core"
	"memsnap/internal/disk"
	"memsnap/internal/fs"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

func newWALKV(t *testing.T) *DB {
	t.Helper()
	costs := sim.DefaultCosts()
	fsys := fs.New(costs, disk.NewArray(costs, 2, 1<<30), fs.FFS)
	return NewWAL(fsys, sim.NewClock(), Config{MemTableLimit: 256 << 10})
}

func newMemSnapKV(t *testing.T) (*DB, *core.System) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{DiskBytesEach: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	db, err := NewMemSnap(proc, ctx, "memtable", 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	return db, sys
}

func newAuroraKV(t *testing.T) *DB {
	t.Helper()
	costs := sim.DefaultCosts()
	arr := disk.NewArray(costs, 2, 1<<30)
	region := aurora.NewRegion(costs, arr, "memtable", 0, 512<<20)
	return NewAurora(region, Config{})
}

func eachMode(t *testing.T, fn func(t *testing.T, db *DB)) {
	t.Run("wal", func(t *testing.T) { fn(t, newWALKV(t)) })
	t.Run("memsnap", func(t *testing.T) {
		db, _ := newMemSnapKV(t)
		fn(t, db)
	})
	t.Run("aurora", func(t *testing.T) { fn(t, newAuroraKV(t)) })
}

func TestPutGetDelete(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		s := db.NewSession(0)
		if err := s.Put([]byte("key1"), []byte("val1")); err != nil {
			t.Fatal(err)
		}
		s.Put([]byte("key2"), []byte("val2"))
		v, ok := s.Get([]byte("key1"))
		if !ok || string(v) != "val1" {
			t.Fatalf("get = %q ok=%v", v, ok)
		}
		if _, ok := s.Get([]byte("missing")); ok {
			t.Fatal("found missing key")
		}
		s.Delete([]byte("key1"))
		if _, ok := s.Get([]byte("key1")); ok {
			t.Fatal("deleted key visible")
		}
		// Overwrite.
		s.Put([]byte("key2"), []byte("replaced"))
		v, _ = s.Get([]byte("key2"))
		if string(v) != "replaced" {
			t.Fatalf("overwrite = %q", v)
		}
	})
}

func TestSeekOrdered(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		s := db.NewSession(0)
		for i := 99; i >= 0; i-- {
			s.Put(workload.Key16(int64(i)), []byte(fmt.Sprint(i)))
		}
		out := s.Seek(workload.Key16(40), 10)
		if len(out) != 10 {
			t.Fatalf("seek returned %d", len(out))
		}
		for i, kv := range out {
			if !bytes.Equal(kv.Key, workload.Key16(int64(40+i))) {
				t.Fatalf("seek[%d] = %q", i, kv.Key)
			}
		}
	})
}

func TestMultiPutVisible(t *testing.T) {
	eachMode(t, func(t *testing.T, db *DB) {
		s := db.NewSession(0)
		var kvs []KV
		for i := 0; i < 20; i++ {
			kvs = append(kvs, KV{workload.Key16(int64(i)), []byte(fmt.Sprint(i * 10))})
		}
		if err := s.MultiPut(kvs); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			v, ok := s.Get(workload.Key16(int64(i)))
			if !ok || string(v) != fmt.Sprint(i*10) {
				t.Fatalf("key %d after MultiPut: %q ok=%v", i, v, ok)
			}
		}
	})
}

func TestWALFlushAndCompaction(t *testing.T) {
	db := newWALKV(t)
	s := db.NewSession(0)
	val := bytes.Repeat([]byte{7}, 100)
	const n = 20000
	for i := 0; i < n; i++ {
		s.Put(workload.Key16(int64(i%4000)), val)
	}
	if db.Stats.Flushes.Value() == 0 {
		t.Fatal("no SSTable flush happened")
	}
	if db.Stats.Compactions.Value() == 0 {
		t.Fatal("no compaction happened")
	}
	if db.Tables() > maxL0Tables {
		t.Fatalf("L0 grew unbounded: %d", db.Tables())
	}
	// Everything still readable (memtable + tables merged).
	for i := 0; i < 4000; i += 997 {
		if _, ok := s.Get(workload.Key16(int64(i))); !ok {
			t.Fatalf("key %d lost across flush/compaction", i)
		}
	}
}

func TestMemSnapPerThreadDirtySets(t *testing.T) {
	db, _ := newMemSnapKV(t)
	s1 := db.NewSession(0)
	s2 := db.NewSession(1)
	s1.Put([]byte("from-1"), []byte("a"))
	s2.Put([]byte("from-2"), []byte("b"))
	// Each Put persisted its own dirty set; nothing should linger.
	if s1.Context().DirtyPages() != 0 || s2.Context().DirtyPages() != 0 {
		t.Fatalf("dirty leftovers: %d, %d", s1.Context().DirtyPages(), s2.Context().DirtyPages())
	}
	if v, ok := s1.Get([]byte("from-2")); !ok || string(v) != "b" {
		t.Fatal("cross-session read failed")
	}
}

func TestMemSnapRecovery(t *testing.T) {
	sys, _ := core.NewSystem(core.Options{DiskBytesEach: 512 << 20})
	proc := sys.NewProcess()
	ctx := proc.NewContext(0)
	db, err := NewMemSnap(proc, ctx, "memtable", 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession(0)
	const n = 500
	for i := 0; i < n; i++ {
		s.Put(workload.Key16(int64(i)), []byte(fmt.Sprint(i)))
	}
	s.Delete(workload.Key16(123))
	at := s.Clock().Now()

	// Crash and recover: skip pointers must be rebuilt from the
	// level-0 chain.
	sys.Array().CutPower(at, sim.NewRNG(4))
	sys2, doneAt, err := core.Recover(core.Options{DiskBytesEach: 512 << 20}, sys.Array(), at)
	if err != nil {
		t.Fatal(err)
	}
	proc2 := sys2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(doneAt)
	db2, err := NewMemSnap(proc2, ctx2, "memtable", 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	s2 := db2.NewSession(0)
	for i := 0; i < n; i++ {
		v, ok := s2.Get(workload.Key16(int64(i)))
		if i == 123 {
			if ok {
				t.Fatal("deleted key resurrected")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("key %d after recovery: %q ok=%v", i, v, ok)
		}
	}
	// Ordered iteration still works (index rebuilt correctly).
	out := s2.Seek(workload.Key16(0), 50)
	for i := 1; i < len(out); i++ {
		if bytes.Compare(out[i-1].Key, out[i].Key) >= 0 {
			t.Fatal("rebuilt index out of order")
		}
	}
}

// TestCrashConsistencyValueSum reproduces the paper's §7.2 atomicity
// test (scaled): threads transactionally increment random subsets of
// counters via MultiPut; after a crash mid-run, every acknowledged
// transaction must be fully present and unacknowledged ones fully
// absent, which the value-sum invariant checks.
func TestCrashConsistencyValueSum(t *testing.T) {
	const (
		keys      = 200
		threads   = 4
		txPerThr  = 25
		keysPerTx = 10
	)
	sys, _ := core.NewSystem(core.Options{DiskBytesEach: 512 << 20})
	proc := sys.NewProcess()
	setup := proc.NewContext(0)
	db, err := NewMemSnap(proc, setup, "memtable", 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	enc := func(v int64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(v))
		return b
	}
	dec := func(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

	init := db.NewSession(0)
	for i := 0; i < keys; i++ {
		init.Put(workload.Key16(int64(i)), enc(0))
	}

	// Each thread increments random keys; acked counts increments in
	// durable transactions. Write-write isolation between transactions
	// is the upper layer's job in RocksDB (its transaction lock
	// manager), so the test takes per-key locks in sorted order around
	// each read-modify-write transaction.
	keyLocks := make([]sync.Mutex, keys)
	var ackedMu sync.Mutex
	acked := int64(0)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			s := db.NewSession(th)
			rng := sim.NewRNG(uint64(th) + 55)
			for txn := 0; txn < txPerThr; txn++ {
				seen := map[int64]bool{}
				ids := make([]int64, 0, keysPerTx)
				for len(ids) < keysPerTx {
					id := rng.Int63n(keys)
					if seen[id] {
						continue
					}
					seen[id] = true
					ids = append(ids, id)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				for _, id := range ids {
					keyLocks[id].Lock()
				}
				var kvs []KV
				for _, id := range ids {
					cur, ok := s.Get(workload.Key16(id))
					if !ok {
						continue
					}
					kvs = append(kvs, KV{workload.Key16(id), enc(dec(cur) + 1)})
				}
				err := s.MultiPut(kvs)
				for i := len(ids) - 1; i >= 0; i-- {
					keyLocks[ids[i]].Unlock()
				}
				if err != nil {
					return
				}
				ackedMu.Lock()
				acked += int64(len(kvs))
				ackedMu.Unlock()
			}
		}(th)
	}
	wg.Wait()

	// Crash at the maximum observed virtual time: all acknowledged
	// transactions are durable.
	var maxAt = setup.Clock().Now()
	for _, th := range proc.AddressSpace().Threads() {
		if th.Clock().Now() > maxAt {
			maxAt = th.Clock().Now()
		}
	}
	sys.Array().CutPower(maxAt, sim.NewRNG(123))

	sys2, doneAt, err := core.Recover(core.Options{DiskBytesEach: 512 << 20}, sys.Array(), maxAt)
	if err != nil {
		t.Fatal(err)
	}
	proc2 := sys2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(doneAt)
	db2, err := NewMemSnap(proc2, ctx2, "memtable", 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	s2 := db2.NewSession(0)
	var sum int64
	for i := 0; i < keys; i++ {
		v, ok := s2.Get(workload.Key16(int64(i)))
		if !ok {
			t.Fatalf("counter %d lost", i)
		}
		sum += dec(v)
	}
	if sum != acked {
		t.Fatalf("value sum %d != acknowledged increments %d", sum, acked)
	}
}

func TestModeAccessors(t *testing.T) {
	if newWALKV(t).Mode() != ModeWAL {
		t.Fatal("wal mode")
	}
	db, _ := newMemSnapKV(t)
	if db.Mode() != ModeMemSnap {
		t.Fatal("memsnap mode")
	}
	if newAuroraKV(t).Mode() != ModeAurora {
		t.Fatal("aurora mode")
	}
}

func TestOversizedPayload(t *testing.T) {
	db, _ := newMemSnapKV(t)
	s := db.NewSession(0)
	if err := s.Put([]byte("k"), make([]byte, nodePageSize)); err == nil {
		t.Fatal("oversized node accepted")
	}
}

func TestMemSnapPutLatencyBeatsAurora(t *testing.T) {
	// Table 9's shape: MemSnap persists one write in ~51 us; Aurora's
	// region checkpoint costs ~208 us plus serialization.
	dbM, _ := newMemSnapKV(t)
	sM := dbM.NewSession(0)
	sM.Put([]byte("warm"), []byte("up"))
	start := sM.Clock().Now()
	const n = 50
	for i := 0; i < n; i++ {
		sM.Put(workload.Key16(int64(i)), bytes.Repeat([]byte{1}, 100))
	}
	memsnapPer := (sM.Clock().Now() - start) / n

	dbA := newAuroraKV(t)
	sA := dbA.NewSession(0)
	sA.Put([]byte("warm"), []byte("up"))
	start = sA.Clock().Now()
	for i := 0; i < n; i++ {
		sA.Put(workload.Key16(int64(i)), bytes.Repeat([]byte{1}, 100))
	}
	auroraPer := (sA.Clock().Now() - start) / n

	// Single-threaded ratio; under thread pressure Aurora's serialized
	// checkpoints widen the gap much further (Table 9).
	if memsnapPer*3 > auroraPer*2 {
		t.Fatalf("memsnap put %v not clearly faster than aurora %v", memsnapPer, auroraPer)
	}
}

func TestWALvsMemSnapEquivalence(t *testing.T) {
	ops := func(db *DB) map[string]string {
		s := db.NewSession(0)
		rng := sim.NewRNG(17)
		for i := 0; i < 400; i++ {
			id := rng.Int63n(50)
			switch rng.Intn(4) {
			case 0, 1, 2:
				s.Put(workload.Key16(id), []byte(fmt.Sprintf("v%d", i)))
			case 3:
				s.Delete(workload.Key16(id))
			}
		}
		out := map[string]string{}
		for _, kv := range s.Seek(nil, 1000) {
			out[string(kv.Key)] = string(kv.Value)
		}
		return out
	}
	dbW := newWALKV(t)
	dbM, _ := newMemSnapKV(t)
	a, b := ops(dbW), ops(dbM)
	if len(a) != len(b) {
		t.Fatalf("state diverged: %d vs %d keys", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("key %q: %q vs %q", k, v, b[k])
		}
	}
}
