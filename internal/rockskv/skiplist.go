// Package rockskv is the reproduction's RocksDB: a write-optimized
// key-value store with three persistence modes —
//
//   - ModeWAL (the baseline): Puts append to a write-ahead log and
//     fsync it, then insert into an in-memory skip-list MemTable;
//     full MemTables are serialized to SSTable files, which are
//     background-compacted (the LSM design of §7.2).
//   - ModeMemSnap (the paper's port): the MemTable is a persistent
//     skip list living in a MemSnap region, one 4 KiB node per
//     key-value pair. A Put dirties exactly the new node and its
//     level-0 predecessor and commits them with one msnap_persist.
//     Skip pointers are volatile and rebuilt on recovery. No WAL, no
//     SSTables, no compaction.
//   - ModeAurora (the SLS baseline): the MemTable is volatile but
//     mirrored into an Aurora region that is checkpointed after
//     every write, with Aurora's stop-the-world shadowing costs.
package rockskv

import (
	"bytes"

	"memsnap/internal/sim"
)

// maxHeight bounds skip-list towers.
const maxHeight = 16

// memNode is one volatile skip-list node.
type memNode struct {
	key, val  []byte
	tombstone bool
	next      [maxHeight]*memNode
}

// memTable is the volatile skip list used by the WAL and Aurora
// modes.
type memTable struct {
	head   *memNode
	height int
	rng    *sim.RNG
	count  int
	bytes  int64
}

func newMemTable(seed uint64) *memTable {
	return &memTable{head: &memNode{}, height: 1, rng: sim.NewRNG(seed)}
}

func (m *memTable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Uint64()%4 == 0 {
		h++
	}
	return h
}

// findPredecessors fills pred[i] with the rightmost node at level i
// whose key precedes key.
func (m *memTable) findPredecessors(key []byte, pred *[maxHeight]*memNode) *memNode {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		pred[level] = x
	}
	return x.next[0]
}

// put inserts or updates; val nil with tombstone marks deletion.
func (m *memTable) put(key, val []byte, tombstone bool) {
	var pred [maxHeight]*memNode
	next := m.findPredecessors(key, &pred)
	if next != nil && bytes.Equal(next.key, key) {
		m.bytes += int64(len(val) - len(next.val))
		next.val = append([]byte(nil), val...)
		next.tombstone = tombstone
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			pred[level] = m.head
		}
		m.height = h
	}
	n := &memNode{key: append([]byte(nil), key...), val: append([]byte(nil), val...), tombstone: tombstone}
	for level := 0; level < h; level++ {
		n.next[level] = pred[level].next[level]
		pred[level].next[level] = n
	}
	m.count++
	m.bytes += int64(len(key) + len(val) + 64)
}

// get returns (value, found, tombstone).
func (m *memTable) get(key []byte) ([]byte, bool, bool) {
	var pred [maxHeight]*memNode
	next := m.findPredecessors(key, &pred)
	if next != nil && bytes.Equal(next.key, key) {
		return next.val, true, next.tombstone
	}
	return nil, false, false
}

// scan visits keys >= start in order until fn returns false.
func (m *memTable) scan(start []byte, fn func(k, v []byte, tombstone bool) bool) {
	var pred [maxHeight]*memNode
	x := m.findPredecessors(start, &pred)
	for x != nil {
		if !fn(x.key, x.val, x.tombstone) {
			return
		}
		x = x.next[0]
	}
}
