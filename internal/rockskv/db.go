package rockskv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"memsnap/internal/aurora"
	"memsnap/internal/core"
	"memsnap/internal/fs"
	"memsnap/internal/sim"
	"memsnap/internal/wal"
)

// Mode selects the persistence design.
type Mode int

// Persistence modes.
const (
	// ModeWAL is baseline RocksDB: WAL + MemTable + SSTables.
	ModeWAL Mode = iota
	// ModeMemSnap is the paper's port: a persistent MemTable.
	ModeMemSnap
	// ModeAurora checkpoints a region after every write using
	// Aurora's system shadowing.
	ModeAurora
)

// DefaultMemTableLimit is the MemTable size that triggers an SSTable
// flush in WAL mode (the paper uses 64 MiB; scaled for simulation).
const DefaultMemTableLimit = 8 << 20

// maxL0Tables triggers compaction.
const maxL0Tables = 4

// KV is one key-value pair returned by scans.
type KV struct {
	Key   []byte
	Value []byte
}

// Stats counts database activity.
type Stats struct {
	Puts        sim.Counter
	Gets        sim.Counter
	Seeks       sim.Counter
	Flushes     sim.Counter
	Compactions sim.Counter
}

// DB is one rockskv store.
type DB struct {
	mode  Mode
	costs *sim.CostModel

	lock sim.VLock // structure lock (MemTable / table list / index)

	// WAL mode state.
	fsys     *fs.FS
	log      *wal.WAL
	mem      *memTable
	tables   []*sstable // newest first
	memLimit int64
	seq      int64

	// MemSnap mode state.
	proc      *core.Process
	region    *core.Region
	plist     *plist
	pageLocks [1024]sim.VLock

	// Aurora mode state.
	aur      *aurora.Region
	aurMem   *memTable
	aurSlots map[string]uint32
	aurNext  uint32

	// Stats is the activity counter set.
	Stats Stats

	// Buckets, when set, accumulates userspace CPU time by component
	// (Table 1): "tx memory", "log", "serialization", "io generation".
	Buckets *sim.TimeBuckets
}

// Config configures OpenWAL / OpenAurora.
type Config struct {
	Costs *sim.CostModel
	// MemTableLimit overrides DefaultMemTableLimit (WAL mode).
	MemTableLimit int64
}

// NewWAL creates a baseline (WAL + LSM) store over a filesystem.
func NewWAL(fsys *fs.FS, clk *sim.Clock, cfg Config) *DB {
	if cfg.Costs == nil {
		cfg.Costs = sim.DefaultCosts()
	}
	if cfg.MemTableLimit <= 0 {
		cfg.MemTableLimit = DefaultMemTableLimit
	}
	return &DB{
		mode:     ModeWAL,
		costs:    cfg.Costs,
		fsys:     fsys,
		log:      wal.Create(fsys, clk, "rockskv-wal"),
		mem:      newMemTable(1),
		memLimit: cfg.MemTableLimit,
	}
}

// NewMemSnap creates (or recovers) the MemSnap port: a persistent
// skip-list MemTable in the named region.
func NewMemSnap(proc *core.Process, ctx *core.Context, regionName string, regionBytes int64) (*DB, error) {
	region, err := proc.Open(ctx, regionName, regionBytes)
	if err != nil {
		return nil, err
	}
	db := &DB{
		mode:   ModeMemSnap,
		costs:  proc.AddressSpace().Costs(),
		proc:   proc,
		region: region,
	}
	db.plist, err = openPlist(ctx, region)
	if err != nil {
		return nil, err
	}
	return db, nil
}

// NewAurora creates the Aurora baseline: a volatile MemTable mirrored
// into an Aurora region checkpointed after every write.
func NewAurora(region *aurora.Region, cfg Config) *DB {
	if cfg.Costs == nil {
		cfg.Costs = sim.DefaultCosts()
	}
	return &DB{
		mode:     ModeAurora,
		costs:    cfg.Costs,
		aur:      region,
		aurMem:   newMemTable(1),
		aurSlots: make(map[string]uint32),
		aurNext:  1,
	}
}

// Mode returns the persistence mode.
func (db *DB) Mode() Mode { return db.mode }

// Tables returns the current SSTable count (WAL mode).
func (db *DB) Tables() int { return len(db.tables) }

// Session is one application thread's handle: it owns the virtual
// clock (and, in MemSnap mode, the fault context) all its operations
// charge.
type Session struct {
	db  *DB
	clk *sim.Clock
	ctx *core.Context
}

// NewSession creates a session on simulated CPU cpu.
func (db *DB) NewSession(cpu int) *Session {
	s := &Session{db: db}
	if db.mode == ModeMemSnap {
		s.ctx = db.proc.NewContext(cpu)
		s.clk = s.ctx.Clock()
	} else {
		s.clk = sim.NewClock()
	}
	return s
}

// Clock returns the session clock.
func (s *Session) Clock() *sim.Clock { return s.clk }

// Context returns the MemSnap context (nil in other modes).
func (s *Session) Context() *core.Context { return s.ctx }

// Put stores a key durably before returning (the synchronous-write
// configuration the paper benchmarks).
func (s *Session) Put(key, val []byte) error {
	return s.write(key, val, false)
}

// Delete removes a key (durable tombstone).
func (s *Session) Delete(key []byte) error {
	return s.write(key, nil, true)
}

func (s *Session) write(key, val []byte, tombstone bool) error {
	db := s.db
	db.Stats.Puts.Add(1)
	s.clk.Advance(db.costs.KVOpCost)
	// Roughly a quarter of the per-op CPU is MemTable work; the rest
	// is block/iterator handling ("Other Userspace" in Table 1).
	s.bucket("tx memory", db.costs.KVOpCost/4)
	switch db.mode {
	case ModeWAL:
		return s.walWrite(key, val, tombstone)
	case ModeMemSnap:
		return db.plist.put(s.ctx, key, val, tombstone, &db.lock, &db.pageLocks)
	case ModeAurora:
		return s.auroraWrite(key, val, tombstone)
	}
	return fmt.Errorf("rockskv: bad mode")
}

// MultiPut commits a batch of writes as one durable unit (RocksDB's
// WriteCommitted transaction path: all changes reach the MemTable at
// commit, §7.2).
func (s *Session) MultiPut(kvs []KV) error {
	db := s.db
	db.Stats.Puts.Add(int64(len(kvs)))
	s.clk.Advance(db.costs.KVOpCost * time.Duration(len(kvs)))
	switch db.mode {
	case ModeWAL:
		db.lock.Lock(s.clk)
		defer db.lock.Unlock(s.clk)
		for _, kv := range kvs {
			rec := encodeRecord(kv.Key, kv.Value, false)
			db.log.Append(s.clk, rec)
		}
		db.log.Sync(s.clk)
		for _, kv := range kvs {
			db.mem.put(kv.Key, kv.Value, false)
		}
		s.maybeFlushLocked()
		return nil
	case ModeMemSnap:
		return db.plist.multiPut(s.ctx, kvs, &db.lock, &db.pageLocks)
	case ModeAurora:
		for _, kv := range kvs {
			db.lock.Lock(s.clk)
			db.aurMem.put(kv.Key, kv.Value, false)
			s.auroraMirror(kv.Key, kv.Value, false)
			db.lock.Unlock(s.clk)
		}
		db.aur.Checkpoint(s.clk)
		return nil
	}
	return fmt.Errorf("rockskv: bad mode")
}

func encodeRecord(key, val []byte, tombstone bool) []byte {
	rec := make([]byte, 9+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec, uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(val)))
	if tombstone {
		rec[8] = 1
	}
	copy(rec[9:], key)
	copy(rec[9+len(key):], val)
	return rec
}

func (s *Session) walWrite(key, val []byte, tombstone bool) error {
	db := s.db
	db.lock.Lock(s.clk)
	defer db.lock.Unlock(s.clk)
	serStart := s.clk.Now()
	rec := encodeRecord(key, val, tombstone)
	s.clk.Advance(db.costs.MemcpyCost(len(rec)))
	s.bucket("serialization", s.clk.Now()-serStart)
	logStart := s.clk.Now()
	db.log.Append(s.clk, rec)
	db.log.Sync(s.clk)
	s.bucket("log", s.clk.Now()-logStart)
	memStart := s.clk.Now()
	s.clk.Advance(db.costs.MemcpyCost(len(key) + len(val)))
	db.mem.put(key, val, tombstone)
	s.bucket("tx memory", s.clk.Now()-memStart)
	s.maybeFlushLocked()
	return nil
}

// bucket charges userspace accounting when enabled.
func (s *Session) bucket(name string, d time.Duration) {
	if s.db.Buckets != nil {
		s.db.Buckets.Add(name, d)
	}
}

// maybeFlushLocked flushes a full MemTable to a new SSTable and
// compacts L0 when it grows too deep. Called with db.lock held.
func (s *Session) maybeFlushLocked() {
	db := s.db
	if db.mem.bytes < db.memLimit {
		return
	}
	db.seq++
	flushStart := s.clk.Now()
	t := flushMemTable(db.fsys, s.clk, tableName(db.seq), db.mem)
	s.bucket("io generation", s.clk.Now()-flushStart)
	db.tables = append([]*sstable{t}, db.tables...)
	db.mem = newMemTable(uint64(db.seq))
	db.log.Reset(s.clk)
	db.log.Sync(s.clk)
	db.Stats.Flushes.Add(1)

	if len(db.tables) > maxL0Tables {
		db.seq++
		compactStart := s.clk.Now()
		merged := compact(db.fsys, s.clk, tableName(db.seq), db.tables)
		s.bucket("io generation", s.clk.Now()-compactStart)
		db.tables = []*sstable{merged}
		db.Stats.Compactions.Add(1)
	}
}

func (s *Session) auroraWrite(key, val []byte, tombstone bool) error {
	db := s.db
	db.lock.Lock(s.clk)
	db.aurMem.put(key, val, tombstone)
	s.auroraMirror(key, val, tombstone)
	db.lock.Unlock(s.clk)
	// Checkpoint after every write; Aurora serializes these per
	// region internally.
	db.aur.Checkpoint(s.clk)
	return nil
}

// auroraMirror writes the serialized node into the Aurora region (one
// 4 KiB slot per key, mirroring the MemSnap layout's amplification).
func (s *Session) auroraMirror(key, val []byte, tombstone bool) {
	db := s.db
	slot, ok := db.aurSlots[string(key)]
	if !ok {
		slot = db.aurNext
		db.aurNext++
		db.aurSlots[string(key)] = slot
	}
	rec := encodeRecord(key, val, tombstone)
	if len(rec) > nodePageSize {
		rec = rec[:nodePageSize]
	}
	db.aur.Write(s.clk, int64(slot)*nodePageSize, rec)
}

// Get returns the value for key.
func (s *Session) Get(key []byte) ([]byte, bool) {
	db := s.db
	db.Stats.Gets.Add(1)
	s.clk.Advance(db.costs.KVOpCost)
	// Roughly a quarter of the per-op CPU is MemTable work; the rest
	// is block/iterator handling ("Other Userspace" in Table 1).
	s.bucket("tx memory", db.costs.KVOpCost/4)
	switch db.mode {
	case ModeWAL:
		db.lock.Lock(s.clk)
		defer db.lock.Unlock(s.clk)
		s.clk.Advance(db.costs.MemcpyCost(len(key)) + 300)
		if v, ok, tomb := db.mem.get(key); ok {
			if tomb {
				return nil, false
			}
			return append([]byte(nil), v...), true
		}
		for _, t := range db.tables {
			if v, ok, tomb := t.get(s.clk, key); ok {
				if tomb {
					return nil, false
				}
				return v, true
			}
		}
		return nil, false
	case ModeMemSnap:
		return db.plist.get(s.ctx, key, &db.lock)
	case ModeAurora:
		db.lock.Lock(s.clk)
		defer db.lock.Unlock(s.clk)
		s.clk.Advance(db.costs.MemcpyCost(len(key)) + 300)
		v, ok, tomb := db.aurMem.get(key)
		if !ok || tomb {
			return nil, false
		}
		return append([]byte(nil), v...), true
	}
	return nil, false
}

// Seek returns up to n entries with keys >= start, in order.
func (s *Session) Seek(start []byte, n int) []KV {
	db := s.db
	db.Stats.Seeks.Add(1)
	s.clk.Advance(db.costs.KVOpCost)
	// Roughly a quarter of the per-op CPU is MemTable work; the rest
	// is block/iterator handling ("Other Userspace" in Table 1).
	s.bucket("tx memory", db.costs.KVOpCost/4)
	switch db.mode {
	case ModeMemSnap:
		return db.plist.scan(s.ctx, start, n, &db.lock)
	case ModeAurora:
		db.lock.Lock(s.clk)
		defer db.lock.Unlock(s.clk)
		var out []KV
		db.aurMem.scan(start, func(k, v []byte, tomb bool) bool {
			if !tomb {
				out = append(out, KV{append([]byte(nil), k...), append([]byte(nil), v...)})
			}
			return len(out) < n
		})
		return out
	}

	// WAL mode: merge the MemTable with every SSTable.
	db.lock.Lock(s.clk)
	defer db.lock.Unlock(s.clk)
	type src struct {
		entries []KV
		tomb    map[string]bool
	}
	collect := func(scanFn func(fn func(k, v []byte, tombstone bool) bool)) src {
		out := src{tomb: map[string]bool{}}
		scanFn(func(k, v []byte, tombstone bool) bool {
			if tombstone {
				out.tomb[string(k)] = true
			} else {
				out.entries = append(out.entries, KV{append([]byte(nil), k...), append([]byte(nil), v...)})
			}
			return len(out.entries) < n
		})
		return out
	}
	sources := []src{collect(func(fn func(k, v []byte, t bool) bool) { db.mem.scan(start, fn) })}
	for _, t := range db.tables {
		tt := t
		sources = append(sources, collect(func(fn func(k, v []byte, t bool) bool) { tt.scan(s.clk, start, fn) }))
	}
	// Newest source wins per key.
	seen := map[string]bool{}
	var merged []KV
	for _, source := range sources {
		for k := range source.tomb {
			seen[k] = true
		}
		for _, kv := range source.entries {
			if seen[string(kv.Key)] {
				continue
			}
			seen[string(kv.Key)] = true
			merged = append(merged, kv)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return bytes.Compare(merged[i].Key, merged[j].Key) < 0 })
	if len(merged) > n {
		merged = merged[:n]
	}
	return merged
}
