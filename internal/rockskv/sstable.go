package rockskv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"memsnap/internal/fs"
	"memsnap/internal/sim"
)

// sstable is one immutable sorted table: records on disk plus an
// in-memory sparse index (key -> file offset), as RocksDB keeps block
// indexes resident.
type sstable struct {
	file  *fs.File
	index []indexEntry
	size  int64
}

type indexEntry struct {
	key       []byte
	off       int64
	len       int32
	tombstone bool
}

// writeSSTable serializes sorted entries into a new table file and
// fsyncs it.
func writeSSTable(fsys *fs.FS, clk *sim.Clock, name string, entries []indexEntry, payload [][]byte) *sstable {
	file := fsys.Create(clk, name)
	t := &sstable{file: file}
	var off int64
	// Buffer the whole table and write once: SSTable creation is one
	// large sequential IO.
	var buf bytes.Buffer
	for i := range entries {
		rec := payload[i]
		hdr := make([]byte, 8)
		binary.LittleEndian.PutUint32(hdr, uint32(len(entries[i].key)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(rec)))
		start := off + int64(buf.Len()) // == buf.Len() since off stays 0
		_ = start
		entries[i].off = int64(buf.Len()) + 8 + int64(len(entries[i].key))
		entries[i].len = int32(len(rec))
		buf.Write(hdr)
		buf.Write(entries[i].key)
		buf.Write(rec)
	}
	file.Write(clk, 0, buf.Bytes())
	file.Fsync(clk)
	t.index = entries
	t.size = int64(buf.Len())
	return t
}

// get looks the key up via the index and reads the value from disk.
func (t *sstable) get(clk *sim.Clock, key []byte) ([]byte, bool, bool) {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, key) >= 0
	})
	if i >= len(t.index) || !bytes.Equal(t.index[i].key, key) {
		return nil, false, false
	}
	e := t.index[i]
	val := make([]byte, e.len)
	t.file.Read(clk, e.off, val)
	return val, true, e.tombstone
}

// scan visits entries with key >= start in order.
func (t *sstable) scan(clk *sim.Clock, start []byte, fn func(k, v []byte, tombstone bool) bool) {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, start) >= 0
	})
	for ; i < len(t.index); i++ {
		e := t.index[i]
		val := make([]byte, e.len)
		t.file.Read(clk, e.off, val)
		if !fn(e.key, val, e.tombstone) {
			return
		}
	}
}

// flushMemTable turns a full MemTable into an SSTable.
func flushMemTable(fsys *fs.FS, clk *sim.Clock, name string, m *memTable) *sstable {
	var entries []indexEntry
	var payload [][]byte
	m.scan(nil, func(k, v []byte, tomb bool) bool {
		entries = append(entries, indexEntry{key: append([]byte(nil), k...), tombstone: tomb})
		payload = append(payload, append([]byte(nil), v...))
		return true
	})
	return writeSSTable(fsys, clk, name, entries, payload)
}

// compact merges tables (newest first) into one, dropping shadowed
// and deleted entries. This is RocksDB's background garbage
// collection, charged to the calling thread.
func compact(fsys *fs.FS, clk *sim.Clock, name string, tables []*sstable) *sstable {
	latest := make(map[string]int) // key -> table index that wins
	for i, t := range tables {
		for _, e := range t.index {
			k := string(e.key)
			if _, seen := latest[k]; !seen {
				latest[k] = i
			}
		}
	}
	type merged struct {
		entry   indexEntry
		payload []byte
	}
	var out []merged
	for i, t := range tables {
		for _, e := range t.index {
			if latest[string(e.key)] != i || e.tombstone {
				continue
			}
			val := make([]byte, e.len)
			t.file.Read(clk, e.off, val)
			out = append(out, merged{entry: indexEntry{key: e.key}, payload: val})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].entry.key, out[j].entry.key) < 0
	})
	entries := make([]indexEntry, len(out))
	payload := make([][]byte, len(out))
	for i, m := range out {
		entries[i] = m.entry
		payload[i] = m.payload
	}
	mergedTable := writeSSTable(fsys, clk, name, entries, payload)
	for i, t := range tables {
		fsys.Remove(clk, t.file.Name())
		_ = i
	}
	return mergedTable
}

// tableName generates sstable file names.
func tableName(n int64) string { return fmt.Sprintf("sst-%06d", n) }
