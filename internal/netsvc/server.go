// Package netsvc exposes the shard service over real TCP: the data
// plane counterpart to the loopback observability endpoint in
// internal/obs. It follows the server / protocol / execution layering:
// this file owns the listener lifecycle, conn.go owns per-connection
// framing and pipelining, and execution stays inside internal/shard —
// the server is a thin adapter from decoded proto.Requests to tagged
// shard submissions.
//
// Each connection pipelines up to MaxInFlight requests through a
// bounded slot table; responses complete out of order as shard workers
// acknowledge durability. Admission control surfaces on the wire: a
// full shard queue answers RETRY_AFTER (with a backoff hint) instead
// of stalling the read loop or dropping the connection.
//
// Time domains: the simulation underneath runs on virtual sim.Clocks,
// but a network client lives in wall time, so this package is — like
// obs.Serve — a deliberate wall boundary. Op latency histograms here
// measure real client-visible time and every wall-clock read carries a
// //lint:allow walltime annotation; virtual-time trace lanes remain
// the shard workers' own.
package netsvc

import (
	"net" //lint:allow sockio netsvc is the real-TCP data plane boundary
	"sync"
	"time"

	"memsnap/internal/obs"
	"memsnap/internal/shard"
)

// Config sizes the server.
type Config struct {
	// MaxInFlight bounds each connection's pipelined in-flight
	// requests (default 64). A reader that fills its slot table stops
	// reading frames until a response frees a slot, pushing flow
	// control onto TCP.
	MaxInFlight int
	// RetryAfter is the backoff hint carried in RETRY_AFTER responses
	// (default 200µs of wall time).
	RetryAfter time.Duration
	// MaxFrame bounds one request frame (default proto.MaxFrame).
	MaxFrame int
	// Recorder, when set, records a net-lane span (obs.CatNet /
	// obs.NameNetRequest) for every request that arrives carrying wire
	// trace context, stamped with the shard service's virtual clock so
	// the span shares a timeline with the shard/replica lanes. Untraced
	// requests — the overwhelming majority under sampling — record
	// nothing and touch no clock.
	Recorder *obs.Recorder
}

func (c *Config) fill() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 200 * time.Microsecond
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 0 // FrameReader applies proto.MaxFrame
	}
}

// Server accepts proto-framed connections and executes their requests
// against a shard.Service.
type Server struct {
	cfg Config
	svc *shard.Service
	ln  net.Listener

	st counters
	// opLatency is the wall-clock request latency histogram (frame
	// decoded to response encoded), reusing the obs machinery so the
	// exposition format matches the shard-side histograms.
	opLatency obs.Histogram

	mu     sync.Mutex
	conns  map[*conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server for svc on addr (e.g. "127.0.0.1:0") and
// begins accepting connections.
func Serve(addr string, svc *shard.Service, cfg Config) (*Server, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, svc: svc, ln: ln, conns: map[*conn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := newConn(s, nc)
		if !s.track(c) {
			nc.Close()
			return
		}
		s.st.accepted.Add(1)
		s.st.openConns.Add(1)
		s.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

func (s *Server) track(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = true
	return true
}

func (s *Server) untrack(c *conn) {
	s.mu.Lock()
	if s.conns[c] {
		delete(s.conns, c)
		s.st.openConns.Add(-1)
	}
	s.mu.Unlock()
}

// Close drains the server gracefully: it stops accepting, half-closes
// every connection's read side (so readers see EOF and admit nothing
// new), waits for all in-flight requests to complete and their
// responses to flush, then closes the connections. Idempotent. The
// shard.Service itself is not closed — it belongs to the caller, and
// must be closed only after the server has drained.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.closeRead()
	}
	s.wg.Wait()
	return err
}

// wallNow reads the wall clock. The network boundary measures real
// client-visible latency, not simulated cost, so this is one of the
// package's documented wall-time sites.
func wallNow() time.Duration {
	return time.Duration(time.Now().UnixNano()) //lint:allow walltime client-visible latency at the real-TCP boundary
}
