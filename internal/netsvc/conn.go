package netsvc

import (
	"bufio"
	"io"
	"net" //lint:allow sockio per-connection framing of the real-TCP data plane
	"sync"
	"sync/atomic"
	"time"

	"memsnap/internal/obs"
	"memsnap/internal/proto"
	"memsnap/internal/shard"
)

// maxIntern caps each connection's tenant/key string intern table.
// Steady-state workloads reuse a bounded key set, so interning removes
// the per-op []byte→string copies; a hostile peer churning unique keys
// just falls back to plain copies once the table is full.
const maxIntern = 1 << 16

// slotInfo describes one in-flight request. Written by the reader when
// the slot is acquired, read (by value) by the writer when the
// response arrives; the slot index travels through the shard tag, so
// each slot has exactly one owner at a time.
type slotInfo struct {
	id    uint64
	kind  proto.Kind
	start time.Duration // wall time the request was decoded
	// Trace context of a sampled request: its wire trace id, the
	// virtual time the frame was decoded, and the frame size. Zero
	// traceID (the common case) records no span.
	traceID uint64
	vstart  time.Duration
	wire    uint32
}

// conn is one client connection: a reader goroutine that decodes
// frames and submits tagged shard ops, and a writer goroutine that
// completes them out of order as responses arrive.
//
// Flow control: slots (capacity MaxInFlight) bounds the in-flight
// table. The reader blocks acquiring a slot when the table is full —
// it stops reading frames, and TCP pushes back on the client. Because
// at most MaxInFlight requests are outstanding and every acquired slot
// produces exactly one message on out (the shard contract: admission
// means exactly one response; rejections are synthesized by the
// reader), sends on out never block, so shard workers never stall on a
// slow connection.
type conn struct {
	srv *Server
	c   net.Conn

	// out carries completions: shard worker responses and
	// reader-synthesized rejections, multiplexed by slot tag.
	out  chan shard.Response
	free chan uint32
	slot []slotInfo

	// inflight counts acquired slots; the writer exits once the reader
	// is done and it reaches zero.
	inflight   atomic.Int64
	readerDone chan struct{}

	// ids tracks in-flight request ids for duplicate detection.
	// Reader inserts, writer deletes.
	idsMu sync.Mutex
	ids   map[uint64]bool

	// strs interns tenant/key strings (reader-owned).
	strs map[string]string

	closeReadOnce sync.Once
}

func newConn(s *Server, nc net.Conn) *conn {
	n := s.cfg.MaxInFlight
	c := &conn{
		srv:        s,
		c:          nc,
		out:        make(chan shard.Response, n),
		free:       make(chan uint32, n),
		slot:       make([]slotInfo, n),
		readerDone: make(chan struct{}),
		ids:        make(map[uint64]bool, n),
		strs:       make(map[string]string),
	}
	for i := 0; i < n; i++ {
		c.free <- uint32(i)
	}
	return c
}

// closeRead half-closes the connection for graceful drain: the reader
// sees EOF and admits nothing new, while the write side stays open so
// in-flight responses still reach the client.
func (c *conn) closeRead() {
	c.closeReadOnce.Do(func() {
		if tc, ok := c.c.(*net.TCPConn); ok {
			tc.CloseRead()
			return
		}
		c.c.Close()
	})
}

// readLoop decodes frames and submits them. It exits on EOF, read
// error, or the first malformed frame (protocol errors are not
// recoverable mid-stream: framing may be lost).
//
//memsnap:hotpath
func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	defer close(c.readerDone)
	fr := proto.NewFrameReader(c.c, c.srv.cfg.MaxFrame)
	var q proto.Request
	for {
		payload, err := fr.Next()
		if err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				// A frame-level violation (oversized or zero-length
				// prefix), as opposed to the peer just hanging up.
				c.srv.st.badFrames.Add(1)
			}
			return
		}
		c.srv.st.bytesIn.Add(int64(4 + len(payload)))
		if err := proto.DecodeRequest(payload, &q); err != nil {
			c.srv.st.badFrames.Add(1)
			return
		}
		// Bounded in-flight table: block here — not in the shard — when
		// the pipeline is full. Responses draining on the writer side
		// free slots and wake us.
		s := <-c.free
		c.idsMu.Lock()
		dup := c.ids[q.ID]
		if !dup {
			c.ids[q.ID] = true
		}
		c.idsMu.Unlock()
		if dup {
			// Two in-flight requests with one id make completions
			// ambiguous; treat it as a framing-level violation.
			c.free <- s
			c.srv.st.badFrames.Add(1)
			return
		}
		c.srv.st.requests.Add(1)
		si := slotInfo{id: q.ID, kind: q.Kind, start: wallNow()}
		if q.TraceID != 0 && c.srv.cfg.Recorder.Enabled() {
			// Sampled request: stamp the net-lane span start with the
			// service's virtual clock (the one cross-goroutine clock
			// access the ownership rule permits) so the span lands on
			// the same timeline as the shard lanes it flows into.
			si.traceID = q.TraceID
			si.vstart = c.srv.svc.EndTime()
			si.wire = uint32(4 + len(payload))
		}
		c.slot[s] = si
		c.inflight.Add(1)
		c.srv.st.inFlight.Add(1)

		if q.Kind == proto.KindPing {
			c.out <- shard.Response{Tag: uint64(s)}
			continue
		}
		op := shard.Op{
			Kind:      opKind(q.Kind),
			Tenant:    c.intern(q.Tenant),
			Key:       c.intern(q.Key),
			Key2:      c.intern(q.Key2),
			Value:     q.Value,
			TraceID:   q.TraceID,
			WireBytes: uint32(4 + len(payload)),
		}
		// Non-blocking admission: a full shard queue becomes a
		// RETRY_AFTER on the wire instead of a stalled read loop.
		if err := c.srv.svc.TryDoTagged(op, uint64(s), c.out); err != nil {
			c.out <- shard.Response{Tag: uint64(s), Err: err}
		}
	}
}

// writeLoop encodes completions, batching opportunistically: it blocks
// for one response, drains whatever else is ready, then flushes once.
// After a write error it keeps draining (freeing slots and stats) but
// discards output, so shard workers and the reader never wedge on a
// broken peer. It exits when the reader is done and the in-flight
// table is empty, then closes the connection.
//
//memsnap:hotpath
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	defer c.srv.untrack(c)
	defer c.c.Close()
	bw := bufio.NewWriterSize(c.c, 16<<10)
	//lint:allow hotalloc per-connection setup before the loop, not per frame
	buf := make([]byte, 0, 64)
	broken := false
	done := c.readerDone
	for done != nil || c.inflight.Load() > 0 {
		select {
		case r := <-c.out:
			buf = c.complete(r, bw, buf, &broken)
		drain:
			for {
				select {
				case r := <-c.out:
					buf = c.complete(r, bw, buf, &broken)
				default:
					break drain
				}
			}
			if !broken {
				if err := bw.Flush(); err != nil {
					broken = true
				}
			}
		case <-done:
			done = nil
		}
	}
	if !broken {
		bw.Flush()
	}
}

// complete turns one shard completion into a wire response, records
// stats, and frees the slot. buf is the caller's reusable encode
// buffer (returned possibly regrown).
func (c *conn) complete(r shard.Response, bw *bufio.Writer, buf []byte, broken *bool) []byte {
	s := uint32(r.Tag)
	si := c.slot[s] // copy before freeing: the reader may reuse the slot
	resp := proto.Response{
		ID:     si.id,
		Status: statusOf(r.Err),
		Found:  r.Found,
		Value:  r.Value,
		Epoch:  uint64(r.Epoch),
	}
	if resp.Status == proto.StatusRetryAfter {
		resp.RetryAfter = c.srv.cfg.RetryAfter
		c.srv.st.retryAfter.Add(1)
	}
	c.srv.opLatency.Record(wallNow() - si.start)
	if si.traceID != 0 {
		vnow := c.srv.svc.EndTime()
		c.srv.cfg.Recorder.SpanFlow(obs.CatNet, obs.NameNetRequest, obs.NetTrack(0),
			si.vstart, vnow-si.vstart, int64(si.wire), si.traceID)
	}
	c.idsMu.Lock()
	delete(c.ids, si.id)
	c.idsMu.Unlock()
	c.srv.st.responses.Add(1)
	c.srv.st.inFlight.Add(-1)
	c.inflight.Add(-1)
	c.free <- s
	if *broken {
		return buf
	}
	buf = proto.AppendResponse(buf[:0], &resp)
	if _, err := bw.Write(buf); err != nil {
		*broken = true
		return buf
	}
	c.srv.st.bytesOut.Add(int64(len(buf)))
	return buf
}

// intern converts a wire string (aliasing the frame buffer) into a
// stable Go string, reusing prior copies while the table has room.
func (c *conn) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := c.strs[string(b)]; ok { // no-copy map lookup
		return s
	}
	//lint:allow hotalloc intern miss path; copies amortize to zero while the table has room
	s := string(b)
	if len(c.strs) < maxIntern {
		c.strs[s] = s
	}
	return s
}

// opKind maps a wire kind to the shard op kind. KindPing never reaches
// the shard.
func opKind(k proto.Kind) shard.OpKind {
	switch k {
	case proto.KindGet:
		return shard.OpGet
	case proto.KindPut:
		return shard.OpPut
	case proto.KindAdd:
		return shard.OpAdd
	case proto.KindDelete:
		return shard.OpDelete
	case proto.KindTransfer:
		return shard.OpTransfer
	}
	return shard.OpGet // unreachable: DecodeRequest rejects unknown kinds
}

// statusOf maps a shard error to its wire status.
func statusOf(err error) proto.Status {
	switch err {
	case nil:
		return proto.StatusOK
	case shard.ErrBackpressure:
		return proto.StatusRetryAfter
	case shard.ErrClosed:
		return proto.StatusClosed
	case shard.ErrKeyTooLong:
		return proto.StatusKeyTooLong
	case shard.ErrCrossShard:
		return proto.StatusCrossShard
	case shard.ErrShardFull:
		return proto.StatusShardFull
	case shard.ErrInsufficient:
		return proto.StatusInsufficient
	}
	return proto.StatusInternal
}
