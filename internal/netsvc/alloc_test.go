package netsvc

import (
	"fmt"
	"runtime"
	"testing"

	"memsnap/internal/obs"
	"memsnap/internal/proto"
	"memsnap/internal/shard"
)

// maxAllocsPerOp is the CI-enforced ceiling on whole-process
// steady-state heap allocations per network op (server + lean client
// over loopback TCP). The serving path is designed to stay flat: the
// frame reader reuses one buffer, request structs are pooled, tenant
// and key strings are interned per connection, and the client reuses
// per-slot encode buffers — what remains is composeKey and small
// worker-side batch bookkeeping. Measured ~6 allocs/op; the ceiling
// leaves headroom for runtime noise, not for regressions.
const maxAllocsPerOp = 24

// measureAllocsPerOp runs a warmed-up put/get mix through a loopback
// server and returns the steady-state whole-process allocations per op.
func measureAllocsPerOp(t *testing.T, svcCfg shard.Config, srvCfg Config, tune func(*shard.Service, *Client)) float64 {
	t.Helper()
	svc := newService(t, svcCfg)
	defer svc.Close()
	srv := startServer(t, svc, srvCfg)
	defer srv.Close()

	c, err := Dial(srv.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if tune != nil {
		tune(svc, c)
	}

	const keys = 64
	tenants := [][]byte{[]byte("acme"), []byte("globex")}
	keyb := make([][]byte, keys)
	for i := range keyb {
		keyb[i] = []byte(fmt.Sprintf("key%03d", i))
	}
	op := func(i int) {
		q := proto.Request{Tenant: tenants[i%len(tenants)], Key: keyb[i%keys], Value: uint64(i)}
		if i%4 == 0 {
			q.Kind = proto.KindPut
		} else {
			q.Kind = proto.KindGet
		}
		p, err := c.Do(&q)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if p.Status != proto.StatusOK {
			t.Fatalf("op %d status: %v", i, p.Status)
		}
	}

	// Warmup: fill intern tables, request pools, map buckets, bufio.
	for i := 0; i < 2*keys; i++ {
		op(i)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const ops = 2000
	for i := 0; i < ops; i++ {
		op(i)
	}
	runtime.ReadMemStats(&m1)
	perOp := float64(m1.Mallocs-m0.Mallocs) / ops
	t.Logf("steady-state allocations: %.2f/op (%d ops)", perOp, ops)
	return perOp
}

// TestSteadyStateAllocsPerOp pins the per-op allocation budget of the
// whole serving path: a put/get mix over a real loopback connection,
// measured with runtime.MemStats after a warmup that populates the
// intern tables and pools.
func TestSteadyStateAllocsPerOp(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	perOp := measureAllocsPerOp(t, shard.Config{Shards: 4}, Config{}, nil)
	if perOp > maxAllocsPerOp {
		t.Fatalf("steady-state allocations %.2f/op exceed the ceiling %d/op", perOp, maxAllocsPerOp)
	}
}

// TestSteadyStateAllocsPerOpObserved pins that the observability added
// to the serving path rides under the same ceiling: trace sampling at
// the default rate (client and server recorders armed) and per-tenant
// attribution on every commit. The sketch's Observe runs on every op;
// the trace path triggers only ~ops/DefaultSampleRate times — neither
// may move the steady-state budget.
func TestSteadyStateAllocsPerOpObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	rec := obs.NewRecorder(1 << 14)
	svcCfg := shard.Config{
		Shards:   4,
		Recorder: rec,
		Tenants:  obs.NewTenantSketch(obs.DefaultTenantTopK),
	}
	tune := func(svc *shard.Service, c *Client) {
		c.EnableTracing(Tracing{
			Recorder: rec,
			Sampler:  obs.NewSampler(1, obs.DefaultSampleRate),
			Now:      svc.EndTime,
			Track:    obs.ClientTrack(0),
		})
	}
	perOp := measureAllocsPerOp(t, svcCfg, Config{Recorder: rec}, tune)
	if perOp > maxAllocsPerOp {
		t.Fatalf("sampled steady-state allocations %.2f/op exceed the ceiling %d/op", perOp, maxAllocsPerOp)
	}
}
