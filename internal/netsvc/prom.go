package netsvc

import (
	"fmt"
	"io"

	"memsnap/internal/obs"
)

// promHeader writes one metric's # HELP / # TYPE preamble.
func promHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// FormatPrometheus writes network server statistics to w in the
// Prometheus text exposition format. Counters carry the _total suffix;
// the op latency histogram is exported in (wall) seconds with the same
// log2 le boundaries as the shard-side histograms. The output is
// deterministic for a given Stats value, so it can be golden-tested.
func FormatPrometheus(w io.Writer, st Stats) error {
	metrics := []struct {
		name, help, typ string
		value           int64
	}{
		{"memsnap_net_accepted_total", "Connections accepted by the data-plane server.", "counter", st.Accepted},
		{"memsnap_net_open_connections", "Currently open data-plane connections.", "gauge", st.OpenConns},
		{"memsnap_net_inflight_requests", "Requests admitted but not yet answered.", "gauge", st.InFlight},
		{"memsnap_net_requests_total", "Well-formed requests decoded.", "counter", st.Requests},
		{"memsnap_net_responses_total", "Responses completed.", "counter", st.Responses},
		{"memsnap_net_retry_after_total", "Responses answered RETRY_AFTER (shard backpressure on the wire).", "counter", st.RetryAfter},
		{"memsnap_net_bad_frames_total", "Protocol violations that closed a connection.", "counter", st.BadFrames},
		{"memsnap_net_bytes_in_total", "Wire bytes read, length prefixes included.", "counter", st.BytesIn},
		{"memsnap_net_bytes_out_total", "Wire bytes written, length prefixes included.", "counter", st.BytesOut},
	}
	for _, m := range metrics {
		if err := promHeader(w, m.name, m.help, m.typ); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.value); err != nil {
			return err
		}
	}
	const histName = "memsnap_net_op_latency_seconds"
	if err := obs.WritePromHeader(w, histName, "Client-visible request latency histogram (wall seconds)."); err != nil {
		return err
	}
	return st.OpLatency.WriteProm(w, histName, "")
}

// FormatPrometheus writes the server's current statistics to w. Safe
// to call while the server is running.
func (s *Server) FormatPrometheus(w io.Writer) error {
	return FormatPrometheus(w, s.Stats())
}
