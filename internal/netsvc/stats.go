package netsvc

import (
	"sync/atomic"

	"memsnap/internal/obs"
)

// counters is the server's live stat block. All fields are atomics:
// they are bumped from per-connection reader/writer goroutines and
// snapshotted by Stats without locks.
type counters struct {
	accepted   atomic.Int64
	openConns  atomic.Int64
	inFlight   atomic.Int64
	requests   atomic.Int64
	responses  atomic.Int64
	retryAfter atomic.Int64
	badFrames  atomic.Int64
	bytesIn    atomic.Int64
	bytesOut   atomic.Int64
}

// Stats is a point-in-time snapshot of the server's counters, exposed
// through FormatPrometheus and (as JSON) the obs server's /varz.
type Stats struct {
	// Accepted counts connections accepted since start.
	Accepted int64 `json:"accepted"`
	// OpenConns is the number of currently open connections.
	OpenConns int64 `json:"open_conns"`
	// InFlight is the number of requests admitted but not yet answered,
	// across all connections.
	InFlight int64 `json:"in_flight"`
	// Requests counts well-formed requests decoded; Responses counts
	// completions written (or discarded on a broken peer). They differ
	// only by the in-flight window.
	Requests  int64 `json:"requests"`
	Responses int64 `json:"responses"`
	// RetryAfter counts responses carrying StatusRetryAfter — shard
	// backpressure surfaced on the wire.
	RetryAfter int64 `json:"retry_after"`
	// BadFrames counts protocol violations that closed a connection
	// (malformed frames, oversized prefixes, duplicate in-flight ids).
	BadFrames int64 `json:"bad_frames"`
	// BytesIn / BytesOut are wire bytes, length prefixes included.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// OpLatency is the wall-clock request latency histogram (request
	// decoded to response encoded), including queueing and durability
	// waits inside the shard service.
	OpLatency obs.HistSnapshot `json:"-"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:   s.st.accepted.Load(),
		OpenConns:  s.st.openConns.Load(),
		InFlight:   s.st.inFlight.Load(),
		Requests:   s.st.requests.Load(),
		Responses:  s.st.responses.Load(),
		RetryAfter: s.st.retryAfter.Load(),
		BadFrames:  s.st.badFrames.Load(),
		BytesIn:    s.st.bytesIn.Load(),
		BytesOut:   s.st.bytesOut.Load(),
		OpLatency:  s.opLatency.Snapshot(),
	}
}
