package netsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"memsnap/internal/core"
	"memsnap/internal/obs"
	"memsnap/internal/proto"
	"memsnap/internal/replica"
	"memsnap/internal/shard"
)

// newTracedCluster builds a replicated single-shard service with one
// shared recorder across the client, net, shard, shipper and follower
// lanes, served over real TCP.
func newTracedCluster(t *testing.T, rec *obs.Recorder) (*Server, *shard.Service) {
	t.Helper()
	sysOpts := core.Options{CPUs: 1, DiskBytesEach: 256 << 20}
	sysA, err := core.NewSystem(sysOpts)
	if err != nil {
		t.Fatalf("primary system: %v", err)
	}
	sysB, err := core.NewSystem(sysOpts)
	if err != nil {
		t.Fatalf("follower system: %v", err)
	}
	link := replica.NewLink(replica.LinkConfig{})
	fol, err := replica.NewFollower(sysB, replica.FollowerConfig{Shards: 1, Recorder: rec})
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	// Sync mode: the follower has applied (and its spans are recorded)
	// before the client's ack arrives, so draining the ring after the
	// last response sees the whole chain.
	ship := replica.NewShipper(link, fol, 1, replica.Config{Mode: replica.Sync, Recorder: rec})
	svc, err := shard.New(sysA, shard.Config{Shards: 1, Replicator: ship, Recorder: rec})
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	ship.Attach(svc)
	t.Cleanup(func() {
		svc.Close()
		ship.Close()
	})
	srv := startServer(t, svc, Config{Recorder: rec})
	return srv, svc
}

// TestTraceStitchAcrossLanes pins the tentpole end-to-end contract: a
// sampled request produces spans that share one flow id across every
// lane — client, netsvc, shard worker, shipper and follower — and
// obs.WriteTrace renders them as one valid trace-event JSON document
// whose flow events bind the lanes together.
func TestTraceStitchAcrossLanes(t *testing.T) {
	rec := obs.NewRecorder(1 << 14)
	srv, svc := newTracedCluster(t, rec)

	cl, err := Dial(srv.Addr(), 4)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	cl.EnableTracing(Tracing{
		Recorder: rec,
		Sampler:  obs.NewSampler(7, 1), // sample everything
		Now:      svc.EndTime,
		Track:    obs.ClientTrack(0),
	})

	// Sequential writes: one request per group commit, so every flow id
	// that wins its batch covers the full chain.
	for i := 0; i < 8; i++ {
		q := proto.Request{
			Kind:   proto.KindPut,
			Tenant: []byte("acme"),
			Key:    []byte(fmt.Sprintf("k%03d", i)),
			Value:  uint64(i),
		}
		p, err := cl.Do(&q)
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if p.Status != proto.StatusOK {
			t.Fatalf("put %d: status %v", i, p.Status)
		}
	}

	evs := rec.Peek()
	// lanesByFlow collects the set of lane labels each flow id touched.
	lanesByFlow := map[uint64]map[string]bool{}
	for _, ev := range evs {
		if ev.Flow == 0 {
			continue
		}
		lane, _ := obs.TrackName(ev.Track)
		m := lanesByFlow[ev.Flow]
		if m == nil {
			m = map[string]bool{}
			lanesByFlow[ev.Flow] = m
		}
		m[lane] = true
	}
	if len(lanesByFlow) == 0 {
		t.Fatal("no flow-tagged events recorded")
	}
	want := []string{"client", "netsvc", "worker", "shipper", "follower"}
	stitched := 0
	for flow, lanes := range lanesByFlow {
		all := true
		for _, lane := range want {
			if !lanes[lane] {
				all = false
				break
			}
		}
		if all {
			stitched++
		}
		if lanes["client"] && !lanes["netsvc"] {
			t.Errorf("flow %#x reached the client lane but not netsvc", flow)
		}
	}
	if stitched == 0 {
		t.Fatalf("no flow spans all lanes %v; got %d partial flows", want, len(lanesByFlow))
	}

	// The rendered trace must be valid trace-event JSON whose flow
	// events (s/t/f) share ids and terminate with bp:"e".
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, evs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	flowPhases := map[string][]string{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M", "X", "i", "C":
			continue
		case "s", "t", "f":
			id, _ := ev["id"].(string)
			if id == "" {
				t.Fatalf("flow event without id: %v", ev)
			}
			if ph == "f" {
				if bp, _ := ev["bp"].(string); bp != "e" {
					t.Errorf("flow finish without bp:e: %v", ev)
				}
			}
			flowPhases[id] = append(flowPhases[id], ph)
		default:
			t.Fatalf("unexpected phase %q in trace", ph)
		}
	}
	if len(flowPhases) != len(lanesByFlow) {
		t.Errorf("trace has %d flow ids, recorder had %d", len(flowPhases), len(lanesByFlow))
	}
	for id, phases := range flowPhases {
		if phases[0] != "s" {
			t.Errorf("flow %s does not start with s: %v", id, phases)
		}
		if phases[len(phases)-1] != "f" {
			t.Errorf("flow %s does not finish with f: %v", id, phases)
		}
		for _, ph := range phases[1 : len(phases)-1] {
			if ph != "t" {
				t.Errorf("flow %s has interior phase %q: %v", id, ph, phases)
			}
		}
	}
}

// TestUntracedWireUnchanged pins that a client without tracing enabled
// produces frames with no trace context and records nothing.
func TestUntracedWireUnchanged(t *testing.T) {
	rec := obs.NewRecorder(1 << 10)
	svc := newService(t, shard.Config{Shards: 1})
	srv := startServer(t, svc, Config{Recorder: rec})
	cl, err := Dial(srv.Addr(), 2)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	q := proto.Request{Kind: proto.KindPut, Tenant: []byte("t"), Key: []byte("k"), Value: 7}
	if _, err := cl.Do(&q); err != nil {
		t.Fatalf("put: %v", err)
	}
	if q.Traced || q.TraceID != 0 {
		t.Fatalf("untraced client set trace context: %+v", q)
	}
	for _, ev := range rec.Peek() {
		if ev.Cat == obs.CatNet {
			t.Fatalf("untraced request recorded a net span: %+v", ev)
		}
	}
}
