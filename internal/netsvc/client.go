package netsvc

import (
	"errors"
	"net" //lint:allow sockio reference client for the real-TCP data plane
	"sync"
	"sync/atomic"
	"time"

	"memsnap/internal/obs"
	"memsnap/internal/proto"
)

// ErrClientClosed is returned by Do once the connection is gone.
var ErrClientClosed = errors.New("netsvc: client closed")

// Tracing configures client-side trace sampling: the Sampler decides
// which requests carry wire trace context, the Recorder receives the
// client round-trip span, and Now supplies the span timestamps (the
// client has no virtual clock, so the caller picks the timeline — a
// wall-epoch offset for standalone clients, or the service clock in
// single-process tests). Track is the client's trace lane, normally
// obs.ClientTrack(i).
type Tracing struct {
	Recorder *obs.Recorder
	Sampler  *obs.Sampler
	Now      func() time.Duration
	Track    int32
}

// clientSlot is one pipelined request slot. id is atomic because the
// reader goroutine checks it to route (and drop stale) responses; ch
// has capacity 1 so the reader never blocks; buf is the slot-owned
// encode buffer, making steady-state sends allocation-free.
type clientSlot struct {
	id  atomic.Uint64
	ch  chan proto.Response
	buf []byte
}

// Client is a pipelined protocol client: up to depth concurrent Do
// calls share one TCP connection, each owning a slot for the duration
// of its request. Request ids are slot|generation, so a late or stale
// response can never be delivered to the wrong caller. Do transparently
// retries RETRY_AFTER responses after the server's backoff hint —
// the client half of the wire backpressure contract.
type Client struct {
	c     net.Conn
	wmu   sync.Mutex
	slots []clientSlot
	free  chan uint32
	done  chan struct{}

	retries  atomic.Int64
	closed   atomic.Bool
	readErr  error // set before done is closed
	closeOne sync.Once

	trace Tracing
}

// EnableTracing installs client-side trace sampling. Call it once,
// before the first request — it is not synchronized against in-flight
// Do calls. With a nil Sampler (the default) the client passes any
// caller-set trace context through unchanged.
func (c *Client) EnableTracing(t Tracing) { c.trace = t }

// Dial connects to a netsvc server with the given pipeline depth
// (minimum 1).
func Dial(addr string, depth int) (*Client, error) {
	if depth < 1 {
		depth = 1
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		c:     nc,
		slots: make([]clientSlot, depth),
		free:  make(chan uint32, depth),
		done:  make(chan struct{}),
	}
	for i := range c.slots {
		c.slots[i].ch = make(chan proto.Response, 1)
		c.slots[i].buf = make([]byte, 0, 128)
		c.free <- uint32(i)
	}
	go c.readLoop()
	return c, nil
}

// readLoop routes response frames to their slots by id.
func (c *Client) readLoop() {
	fr := proto.NewFrameReader(c.c, 0)
	var p proto.Response
	for {
		payload, err := fr.Next()
		if err != nil {
			c.readErr = err
			close(c.done)
			return
		}
		if err := proto.DecodeResponse(payload, &p); err != nil {
			c.readErr = err
			close(c.done)
			return
		}
		slot := uint32(p.ID & 0xffffffff)
		if int(slot) >= len(c.slots) {
			continue // not ours; ignore
		}
		s := &c.slots[slot]
		if s.id.Load() != p.ID {
			continue // stale generation
		}
		s.ch <- p // capacity 1, slot exclusively owned: never blocks
	}
}

// DoOnce sends one request and waits for its response without
// retrying, exposing RETRY_AFTER (and every other status) to the
// caller. q.ID is overwritten with the slot-generation id.
func (c *Client) DoOnce(q *proto.Request) (proto.Response, error) {
	var slot uint32
	select {
	case slot = <-c.free:
	case <-c.done:
		return proto.Response{}, c.closeErr()
	}
	s := &c.slots[slot]
	gen := (s.id.Load() >> 32) + 1
	id := gen<<32 | uint64(slot)
	s.id.Store(id)
	q.ID = id
	var tid uint64
	var tstart time.Duration
	if c.trace.Sampler != nil {
		q.Traced, q.TraceID = false, 0
		if tid2, ok := c.trace.Sampler.Sample(); ok {
			q.Traced, q.TraceID = true, tid2
			tid = tid2
			if c.trace.Now != nil {
				tstart = c.trace.Now()
			}
		}
	}
	var err error
	s.buf, err = proto.AppendRequest(s.buf[:0], q)
	if err != nil {
		c.free <- slot
		return proto.Response{}, err
	}
	c.wmu.Lock()
	_, err = c.c.Write(s.buf)
	c.wmu.Unlock()
	if err != nil {
		c.free <- slot
		return proto.Response{}, err
	}
	select {
	case p := <-s.ch:
		c.free <- slot
		c.finishTrace(tid, tstart, q.Kind)
		return p, nil
	case <-c.done:
		// done is closed only after the read loop has exited, so any
		// response for this slot was already delivered: prefer it over
		// the close (the select above picks arbitrarily when both are
		// ready).
		select {
		case p := <-s.ch:
			c.free <- slot
			c.finishTrace(tid, tstart, q.Kind)
			return p, nil
		default:
		}
		// Mark the slot stale before freeing so nothing lands in the
		// next generation.
		s.id.Store(0)
		c.free <- slot
		return proto.Response{}, c.closeErr()
	}
}

// finishTrace records the client round-trip span of a sampled request
// once its response has arrived. A zero tid (untraced — the common
// case) returns immediately.
func (c *Client) finishTrace(tid uint64, tstart time.Duration, kind proto.Kind) {
	if tid == 0 || !c.trace.Recorder.Enabled() {
		return
	}
	end := tstart
	if c.trace.Now != nil {
		end = c.trace.Now()
	}
	c.trace.Recorder.SpanFlow(obs.CatNet, obs.NameClientRequest, c.trace.Track,
		tstart, end-tstart, int64(kind), tid)
}

// Do sends one request and waits for a terminal response, resending
// after the server's backoff hint for as long as it answers
// RETRY_AFTER (the server guarantees a RETRY_AFTER'd request was not
// applied, so the resend is safe for non-idempotent ops too).
func (c *Client) Do(q *proto.Request) (proto.Response, error) {
	for {
		p, err := c.DoOnce(q)
		if err != nil || !p.Status.Retryable() {
			return p, err
		}
		c.retries.Add(1)
		backoff := p.RetryAfter
		if backoff <= 0 {
			backoff = 100 * time.Microsecond
		}
		time.Sleep(backoff) //lint:allow walltime wire-level retry backoff against a real server
	}
}

// Retries returns the number of RETRY_AFTER-triggered resends.
func (c *Client) Retries() int64 { return c.retries.Load() }

func (c *Client) closeErr() error {
	if c.closed.Load() {
		return ErrClientClosed
	}
	if err := c.readErr; err != nil {
		return err
	}
	return ErrClientClosed
}

// Close tears the connection down; outstanding and future Do calls
// fail. Idempotent.
func (c *Client) Close() error {
	c.closed.Store(true)
	var err error
	c.closeOne.Do(func() { err = c.c.Close() })
	return err
}
