package netsvc

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"memsnap/internal/obs"
	"memsnap/internal/proto"
	"memsnap/internal/shard"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata")

// histSnap builds a deterministic histogram snapshot from samples.
func histSnap(ds ...time.Duration) obs.HistSnapshot {
	var h obs.Histogram
	for _, d := range ds {
		h.Record(d)
	}
	return h.Snapshot()
}

// TestFormatPrometheusGolden pins the network exposition byte-for-byte
// against a golden file: handcrafted stats in, deterministic text out.
func TestFormatPrometheusGolden(t *testing.T) {
	st := Stats{
		Accepted:   3,
		OpenConns:  2,
		InFlight:   5,
		Requests:   120,
		Responses:  115,
		RetryAfter: 7,
		BadFrames:  1,
		BytesIn:    4096,
		BytesOut:   3584,
		OpLatency:  histSnap(50*time.Microsecond, 80*time.Microsecond, 2*time.Millisecond),
	}
	var buf bytes.Buffer
	if err := FormatPrometheus(&buf, st); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("FormatPrometheus output drifted from %s (rerun with -update-golden after an intentional change)\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

var (
	netPlainRe  = regexp.MustCompile(`^[a-z0-9_]+ -?[0-9.e+-]+$`)
	netBucketRe = regexp.MustCompile(`^[a-z0-9_]+_bucket\{le="(\+Inf|[0-9.e+-]+)"\} \d+$`)
)

// TestServerFormatPrometheus runs the formatter against a live server
// and checks the output is well-formed exposition text.
func TestServerFormatPrometheus(t *testing.T) {
	svc := newService(t, shard.Config{Shards: 2})
	defer svc.Close()
	srv := startServer(t, svc, Config{})
	defer srv.Close()

	c, err := Dial(srv.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		q := proto.Request{Kind: proto.KindPut, Tenant: []byte("t"), Key: []byte("k"), Value: uint64(i)}
		if _, err := c.Do(&q); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := srv.FormatPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var plain, buckets int
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		switch {
		case netBucketRe.Match(line):
			buckets++
		case netPlainRe.Match(line):
			plain++
		default:
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	// 9 scalar metrics plus the histogram's _sum and _count.
	if plain != 9+2 {
		t.Errorf("got %d plain lines, want 11", plain)
	}
	if buckets < 1 {
		t.Error("histogram emitted no bucket lines")
	}
	for _, name := range []string{
		"memsnap_net_requests_total",
		"memsnap_net_bytes_in_total",
		"memsnap_net_op_latency_seconds_bucket",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Errorf("exposition missing %s", name)
		}
	}
}
