package netsvc

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/proto"
	"memsnap/internal/shard"
)

func newService(t *testing.T, cfg shard.Config) *shard.Service {
	t.Helper()
	cpus := cfg.Shards
	if cpus <= 0 {
		cpus = 8
	}
	sys, err := core.NewSystem(core.Options{CPUs: cpus, DiskBytesEach: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := shard.New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func startServer(t *testing.T, svc *shard.Service, cfg Config) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", svc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestEndToEnd exercises every op kind through a real TCP round trip.
func TestEndToEnd(t *testing.T) {
	svc := newService(t, shard.Config{Shards: 4})
	defer svc.Close()
	srv := startServer(t, svc, Config{})
	defer srv.Close()

	c, err := Dial(srv.Addr(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	do := func(q proto.Request) proto.Response {
		t.Helper()
		p, err := c.Do(&q)
		if err != nil {
			t.Fatalf("%s: %v", q.Kind, err)
		}
		return p
	}

	if p := do(proto.Request{Kind: proto.KindPing}); p.Status != proto.StatusOK {
		t.Fatalf("ping status = %v", p.Status)
	}
	p := do(proto.Request{Kind: proto.KindPut, Tenant: []byte("acme"), Key: []byte("alpha"), Value: 100})
	if p.Status != proto.StatusOK || p.Epoch == 0 {
		t.Fatalf("put = %+v, want OK with nonzero durable epoch", p)
	}
	p = do(proto.Request{Kind: proto.KindGet, Tenant: []byte("acme"), Key: []byte("alpha")})
	if p.Status != proto.StatusOK || !p.Found || p.Value != 100 {
		t.Fatalf("get = %+v, want Found 100", p)
	}
	// Tenants namespace keys.
	if p = do(proto.Request{Kind: proto.KindGet, Tenant: []byte("globex"), Key: []byte("alpha")}); p.Found {
		t.Fatal("tenant namespaces leak over the wire")
	}
	if p = do(proto.Request{Kind: proto.KindAdd, Tenant: []byte("acme"), Key: []byte("alpha"), Value: 11}); p.Value != 111 {
		t.Fatalf("add = %+v, want 111", p)
	}
	if p = do(proto.Request{Kind: proto.KindDelete, Tenant: []byte("acme"), Key: []byte("alpha")}); !p.Found || p.Value != 111 {
		t.Fatalf("delete = %+v, want Found 111", p)
	}
	if p = do(proto.Request{Kind: proto.KindGet, Tenant: []byte("acme"), Key: []byte("alpha")}); p.Found {
		t.Fatal("key survives delete")
	}
	// Transfer between co-sharded keys (find a pair on one shard).
	tenant := "bank"
	from, to := "", ""
	for i := 0; to == "" && i < 1000; i++ {
		k := fmt.Sprintf("acct%03d", i)
		if from == "" {
			from = k
			continue
		}
		if svc.ShardOf(tenant, k) == svc.ShardOf(tenant, from) {
			to = k
		}
	}
	if to == "" {
		t.Fatal("no co-sharded key pair found")
	}
	do(proto.Request{Kind: proto.KindPut, Tenant: []byte(tenant), Key: []byte(from), Value: 50})
	p = do(proto.Request{Kind: proto.KindTransfer, Tenant: []byte(tenant), Key: []byte(from), Key2: []byte(to), Value: 20})
	if p.Status != proto.StatusOK || p.Value != 30 {
		t.Fatalf("transfer = %+v, want OK remaining 30", p)
	}
	// Semantic errors come back as statuses on a healthy connection.
	if p = do(proto.Request{Kind: proto.KindTransfer, Tenant: []byte(tenant), Key: []byte(from), Key2: []byte(to), Value: 9999}); p.Status != proto.StatusInsufficient {
		t.Fatalf("overdraft status = %v, want insufficient", p.Status)
	}
	long := bytes.Repeat([]byte("k"), shard.MaxKeyLen+1)
	if p = do(proto.Request{Kind: proto.KindGet, Tenant: []byte("t"), Key: long}); p.Status != proto.StatusKeyTooLong {
		t.Fatalf("long-key status = %v, want key_too_long", p.Status)
	}

	st := srv.Stats()
	if st.Requests == 0 || st.Requests != st.Responses {
		t.Errorf("requests %d != responses %d", st.Requests, st.Responses)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Errorf("bytes in/out = %d/%d, want nonzero", st.BytesIn, st.BytesOut)
	}
	if st.Accepted != 1 || st.OpenConns != 1 {
		t.Errorf("accepted/open = %d/%d, want 1/1", st.Accepted, st.OpenConns)
	}
	if st.OpLatency.Count != st.Responses {
		t.Errorf("latency samples %d != responses %d", st.OpLatency.Count, st.Responses)
	}
}

// TestPipelinedOutOfOrder drives raw frames: many requests written
// back-to-back, responses collected in whatever order durability acks
// land. Every id must be answered exactly once with the right value.
func TestPipelinedOutOfOrder(t *testing.T) {
	svc := newService(t, shard.Config{Shards: 4})
	defer svc.Close()
	srv := startServer(t, svc, Config{MaxInFlight: 128})
	defer srv.Close()

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	const n = 100
	var frames []byte
	for i := 0; i < n; i++ {
		q := proto.Request{
			ID:     uint64(i + 1),
			Kind:   proto.KindPut,
			Tenant: []byte("t"),
			Key:    []byte(fmt.Sprintf("key%03d", i)),
			Value:  uint64(i),
		}
		frames, err = proto.AppendRequest(frames, &q)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(frames); err != nil {
		t.Fatal(err)
	}
	fr := proto.NewFrameReader(nc, 0)
	got := map[uint64]uint64{}
	var p proto.Response
	for len(got) < n {
		payload, err := fr.Next()
		if err != nil {
			t.Fatalf("after %d responses: %v", len(got), err)
		}
		if err := proto.DecodeResponse(payload, &p); err != nil {
			t.Fatal(err)
		}
		if p.Status != proto.StatusOK {
			t.Fatalf("id %d: status %v", p.ID, p.Status)
		}
		if _, dup := got[p.ID]; dup {
			t.Fatalf("id %d answered twice", p.ID)
		}
		got[p.ID] = p.Value
	}
	for i := 0; i < n; i++ {
		if got[uint64(i+1)] != uint64(i) {
			t.Fatalf("id %d value = %d, want %d", i+1, got[uint64(i+1)], i)
		}
	}
	// All slots must be free again.
	if st := srv.Stats(); st.InFlight != 0 {
		t.Errorf("in-flight = %d after all responses", st.InFlight)
	}
}

// TestDuplicateInFlightID: reusing an id while it is in flight is a
// protocol violation that closes the connection.
func TestDuplicateInFlightID(t *testing.T) {
	svc := newService(t, shard.Config{Shards: 2})
	defer svc.Close()
	srv := startServer(t, svc, Config{})
	defer srv.Close()

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var frames []byte
	for i := 0; i < 2; i++ {
		q := proto.Request{ID: 7, Kind: proto.KindPut, Tenant: []byte("t"), Key: []byte("k"), Value: 1}
		frames, err = proto.AppendRequest(frames, &q)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(frames); err != nil {
		t.Fatal(err)
	}
	// The server answers the first and then drops the connection; the
	// reader sees at most one response followed by EOF.
	fr := proto.NewFrameReader(nc, 0)
	responses := 0
	for {
		_, err := fr.Next()
		if err != nil {
			break
		}
		responses++
	}
	if responses > 1 {
		t.Fatalf("got %d responses to a duplicate-id pair, want at most 1", responses)
	}
	waitFor(t, func() bool { return srv.Stats().BadFrames == 1 }, "bad-frame count")
}

// TestBadFrameClosesConn: garbage framing closes the connection and
// counts a bad frame, without touching the shard service.
func TestBadFrameClosesConn(t *testing.T) {
	svc := newService(t, shard.Config{Shards: 2})
	defer svc.Close()
	srv := startServer(t, svc, Config{})
	defer srv.Close()

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Oversized length prefix: refused before any allocation.
	if _, err := nc.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	if buf := make([]byte, 1); readEOF(nc, buf) != io.EOF {
		t.Fatal("connection survived an oversized frame prefix")
	}
	waitFor(t, func() bool { return srv.Stats().BadFrames == 1 }, "bad-frame count")
}

func readEOF(nc net.Conn, buf []byte) error {
	for {
		_, err := nc.Read(buf)
		if err != nil {
			return err
		}
	}
}

// gate is a Replicator whose ShipCommit blocks until released,
// deterministically wedging a shard worker mid-retire so its queue
// fills and backpressure surfaces on the wire.
type gate struct {
	release chan struct{}
}

func (g *gate) ShipCommit(shardID int, at time.Duration, c shard.Commit, snap func() shard.Snapshot) (time.Duration, error) {
	<-g.release
	if c.Owned {
		core.ReleasePages(c.Pages)
	}
	return at, nil
}

// waitFor polls cond with a deadline. Wall-clock waiting is fine here:
// the test coordinates with real goroutines, not virtual time.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRetryAfterOnTheWire pins the acceptance criterion: a full-queue
// shard answers RETRY_AFTER on the wire (connection stays open), and
// the client's retry path resends until the op succeeds.
func TestRetryAfterOnTheWire(t *testing.T) {
	g := &gate{release: make(chan struct{})}
	svc := newService(t, shard.Config{Shards: 1, QueueDepth: 2, BatchSize: 1, Replicator: g})
	defer svc.Close()
	srv := startServer(t, svc, Config{MaxInFlight: 16, RetryAfter: 100 * time.Microsecond})
	defer srv.Close()

	c, err := Dial(srv.Addr(), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 8 concurrent puts against one shard with queue depth 2 and a
	// wedged worker: the overflow must come back as RETRY_AFTER, and
	// the retry loop must carry every op to completion once released.
	const puts = 8
	var wg sync.WaitGroup
	errs := make([]error, puts)
	resps := make([]proto.Response, puts)
	for i := 0; i < puts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := proto.Request{Kind: proto.KindPut, Tenant: []byte("t"), Key: []byte(fmt.Sprintf("k%d", i)), Value: uint64(i + 1)}
			resps[i], errs[i] = c.Do(&q)
		}(i)
	}
	// Backpressure must surface while the gate is held.
	waitFor(t, func() bool { return srv.Stats().RetryAfter > 0 }, "RETRY_AFTER on the wire")
	close(g.release)
	wg.Wait()
	for i := 0; i < puts; i++ {
		if errs[i] != nil {
			t.Fatalf("put %d: %v (connection must survive backpressure)", i, errs[i])
		}
		if resps[i].Status != proto.StatusOK {
			t.Fatalf("put %d status = %v", i, resps[i].Status)
		}
	}
	if c.Retries() == 0 {
		t.Fatal("client retry path not exercised")
	}
	if st := srv.Stats(); st.RetryAfter == 0 {
		t.Fatal("server did not count RETRY_AFTER responses")
	}
	// The connection survived: a fresh op still works.
	p, err := c.Do(&proto.Request{Kind: proto.KindGet, Tenant: []byte("t"), Key: []byte("k0")})
	if err != nil || !p.Found || p.Value != 1 {
		t.Fatalf("post-backpressure get = %+v, %v", p, err)
	}
}

// TestGracefulDrain: server Close with pipelined writes still in
// flight completes every admitted request with its real durable
// outcome before the connections go away.
func TestGracefulDrain(t *testing.T) {
	g := &gate{release: make(chan struct{})}
	svc := newService(t, shard.Config{Shards: 1, QueueDepth: 16, BatchSize: 1, Replicator: g})
	defer svc.Close()
	srv := startServer(t, svc, Config{MaxInFlight: 16})

	c, err := Dial(srv.Addr(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 6 puts, all admitted (queue depth 16), wedged behind the gate.
	const puts = 6
	var wg sync.WaitGroup
	errs := make([]error, puts)
	resps := make([]proto.Response, puts)
	for i := 0; i < puts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := proto.Request{Kind: proto.KindPut, Tenant: []byte("t"), Key: []byte(fmt.Sprintf("k%d", i)), Value: uint64(i + 1)}
			resps[i], errs[i] = c.Do(&q)
		}(i)
	}
	waitFor(t, func() bool { return srv.Stats().InFlight == puts }, "puts in flight")

	// Drain while all 6 are outstanding. Close blocks until they are
	// answered, so release the gate from the side.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	close(g.release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	for i := 0; i < puts; i++ {
		if errs[i] != nil {
			t.Fatalf("draining lost put %d: %v", i, errs[i])
		}
		if resps[i].Status != proto.StatusOK || resps[i].Epoch == 0 {
			t.Fatalf("drained put %d = %+v, want durable OK", i, resps[i])
		}
	}
	st := srv.Stats()
	if st.Requests != st.Responses {
		t.Errorf("drain left requests %d != responses %d", st.Requests, st.Responses)
	}
	if st.OpenConns != 0 {
		t.Errorf("open connections after drain = %d", st.OpenConns)
	}
	// Durability check: the writes really landed in the shard.
	for i := 0; i < puts; i++ {
		v, ok, err := svc.Get("t", fmt.Sprintf("k%d", i))
		if err != nil || !ok || v != uint64(i+1) {
			t.Fatalf("k%d = %d, %v, %v after drain", i, v, ok, err)
		}
	}
}

// TestServiceClosedStatus: ops against a closed shard service come
// back as StatusClosed on a live connection (server outliving service).
func TestServiceClosedStatus(t *testing.T) {
	svc := newService(t, shard.Config{Shards: 2})
	srv := startServer(t, svc, Config{})
	defer srv.Close()

	c, err := Dial(srv.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := c.Do(&proto.Request{Kind: proto.KindPut, Tenant: []byte("t"), Key: []byte("k"), Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != proto.StatusClosed {
		t.Fatalf("status = %v, want closed", p.Status)
	}
	// Ping bypasses the shard service and still works.
	if p, err = c.Do(&proto.Request{Kind: proto.KindPing}); err != nil || p.Status != proto.StatusOK {
		t.Fatalf("ping on closed service = %+v, %v", p, err)
	}
}
