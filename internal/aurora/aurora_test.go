package aurora

import (
	"bytes"
	"testing"
	"time"

	"memsnap/internal/disk"
	"memsnap/internal/sim"
)

func newRegion(size int64) (*Region, *disk.Array) {
	costs := sim.DefaultCosts()
	arr := disk.NewArray(costs, 2, 2<<30)
	return NewRegion(costs, arr, "r", 0, size), arr
}

func TestWriteReadRoundTrip(t *testing.T) {
	r, _ := newRegion(1 << 20)
	clk := sim.NewClock()
	data := []byte("aurora region data")
	r.Write(clk, 5000, data)
	buf := make([]byte, len(data))
	r.Read(clk, 5000, buf)
	if !bytes.Equal(buf, data) {
		t.Fatalf("read back %q", buf)
	}
	if r.DirtyPages() != 1 {
		t.Fatalf("dirty pages = %d", r.DirtyPages())
	}
	// A write spanning a page boundary dirties both pages (page 1 is
	// already dirty, so one new page appears).
	r.Write(clk, 2*PageSize-4, make([]byte, 8))
	if r.DirtyPages() != 2 {
		t.Fatalf("dirty pages after spanning write = %d", r.DirtyPages())
	}
}

func TestCheckpointPersistsToDisk(t *testing.T) {
	r, arr := newRegion(1 << 20)
	clk := sim.NewClock()
	r.Write(clk, 0, bytes.Repeat([]byte{0x5A}, PageSize))
	r.Checkpoint(clk)
	buf := make([]byte, PageSize)
	arr.PeekAt(0, buf)
	if buf[0] != 0x5A || buf[PageSize-1] != 0x5A {
		t.Fatal("checkpoint did not reach disk")
	}
	if r.DirtyPages() != 0 {
		t.Fatal("checkpoint left dirty pages")
	}
	if r.Checkpoints() != 1 {
		t.Fatalf("checkpoint count = %d", r.Checkpoints())
	}
}

func TestBreakdownMatchesTable2Shape(t *testing.T) {
	// Table 2: waiting 26.7, shadow 79.8, IO 27.9, collapse 91.7,
	// total 208.1 us for 64 KiB dirty in a ~1 GiB region.
	r, _ := newRegion(1 << 30)
	clk := sim.NewClock()
	r.Write(clk, 0, make([]byte, 64<<10))
	b := r.Checkpoint(clk)

	within := func(got, want time.Duration) bool {
		return got > want/2 && got < want*2
	}
	if !within(b.WaitingForCalls, 26700*time.Nanosecond) {
		t.Errorf("waiting = %v", b.WaitingForCalls)
	}
	if !within(b.ApplyingCOW, 79800*time.Nanosecond) {
		t.Errorf("shadow = %v", b.ApplyingCOW)
	}
	if !within(b.FlushIO, 27900*time.Nanosecond) {
		t.Errorf("flush = %v", b.FlushIO)
	}
	if !within(b.RemovingCOW, 91700*time.Nanosecond) {
		t.Errorf("collapse = %v", b.RemovingCOW)
	}
	if !within(b.Total, 208100*time.Nanosecond) {
		t.Errorf("total = %v", b.Total)
	}
	// The headline claim: ~80% of latency is shadow management, not
	// IO.
	overhead := b.WaitingForCalls + b.ApplyingCOW + b.RemovingCOW
	if float64(overhead) < 0.6*float64(b.Total) {
		t.Errorf("shadowing overhead %v not dominant in %v", overhead, b.Total)
	}
}

func TestCheckpointCostScalesWithMappingNotDirtySet(t *testing.T) {
	small, _ := newRegion(64 << 20)
	large, _ := newRegion(1 << 30)
	clkS, clkL := sim.NewClock(), sim.NewClock()
	small.Write(clkS, 0, make([]byte, PageSize))
	large.Write(clkL, 0, make([]byte, PageSize))
	bs := small.Checkpoint(clkS)
	bl := large.Checkpoint(clkL)
	if bl.Total <= bs.Total {
		t.Fatalf("checkpoint cost did not scale with mapping: %v vs %v", bs.Total, bl.Total)
	}
}

func TestCheckpointsSerialize(t *testing.T) {
	// Two checkpoints issued at the same virtual time: the second
	// must queue behind the first's collapse.
	r, _ := newRegion(1 << 30)
	clkA, clkB := sim.NewClock(), sim.NewClock()
	r.Write(clkA, 0, make([]byte, PageSize))
	a := r.Checkpoint(clkA)
	r.Write(clkB, PageSize, make([]byte, PageSize))
	b := r.Checkpoint(clkB)
	// B started at time 0 but had to wait for A to finish.
	if clkB.Now() < clkA.Now() {
		t.Fatalf("second checkpoint (%v) did not serialize behind first (%v)", clkB.Now(), clkA.Now())
	}
	if b.Total <= a.Total {
		t.Fatalf("queued checkpoint total %v should include wait (first %v)", b.Total, a.Total)
	}
}

func TestIncrementalCheckpoints(t *testing.T) {
	r, arr := newRegion(1 << 20)
	clk := sim.NewClock()
	r.Write(clk, 0, bytes.Repeat([]byte{1}, PageSize))
	r.Checkpoint(clk)
	w1 := arr.Stats().BytesWritten
	r.Write(clk, 8*PageSize, bytes.Repeat([]byte{2}, PageSize))
	r.Checkpoint(clk)
	w2 := arr.Stats().BytesWritten - w1
	if w2 != PageSize {
		t.Fatalf("second checkpoint wrote %d bytes, want one page (incremental)", w2)
	}
}

func TestAppCheckpointSlowerThanRegion(t *testing.T) {
	costs := sim.DefaultCosts()
	arr := disk.NewArray(costs, 2, 2<<30)
	r := NewRegion(costs, arr, "r", 0, 1<<30)
	app := NewApp(costs, []*Region{r}, 2<<30)

	clkR := sim.NewClock()
	r.Write(clkR, 0, make([]byte, 64<<10))
	region := r.Checkpoint(clkR)

	clkA := sim.NewClock()
	r.Write(clkA, 0, make([]byte, 64<<10))
	full := app.Checkpoint(clkA)

	if full.Total < 5*region.Total {
		t.Fatalf("app checkpoint %v not much slower than region %v (Figure 3)", full.Total, region.Total)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	r, _ := newRegion(PageSize)
	clk := sim.NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.Write(clk, PageSize-1, []byte{1, 2})
}
