// Package aurora reimplements the checkpointing baseline MemSnap is
// compared against: the Aurora single level store's "system
// shadowing" mechanism (SOSP'21), with both region checkpoints and
// whole-application checkpoints.
//
// Aurora's region checkpoint works in four phases, reproduced here
// with their cost structure (Tables 2 and 10 of the MemSnap paper):
//
//  1. Waiting for calls — every application thread is stopped; a
//     serialization point whose cost does not scale down with the
//     dirty set.
//  2. Applying COW — a "shadow object" is created covering the whole
//     mapping; cost proportional to the mapping size.
//  3. Flush IO — the dirty pages are written out (threads may resume).
//  4. Removing COW — the shadow object is collapsed back into the
//     base object; cost proportional to the mapping size, and the
//     region cannot start another checkpoint until it finishes.
//
// Only one checkpoint per region can be outstanding, so concurrent
// callers serialize — the effect that collapses RocksDB throughput in
// Table 9.
package aurora

import (
	"fmt"
	"sync"
	"time"

	"memsnap/internal/disk"
	"memsnap/internal/sim"
)

// PageSize is Aurora's checkpoint granularity.
const PageSize = 4096

// Breakdown is the cost split of one checkpoint (Table 2 / Table 10).
type Breakdown struct {
	WaitingForCalls time.Duration
	ApplyingCOW     time.Duration
	FlushIO         time.Duration
	RemovingCOW     time.Duration
	Total           time.Duration
}

// Region is one Aurora memory region backed by a contiguous disk
// area.
type Region struct {
	costs    *sim.CostModel
	arr      *disk.Array
	diskBase int64
	name     string

	mu    sync.Mutex
	data  []byte
	dirty map[int64]bool // page index -> dirty since last checkpoint

	// nextFree is the virtual time at which the region can accept
	// another checkpoint (collapse must finish first).
	nextFree time.Duration

	checkpoints int64
}

// NewRegion creates a region of size bytes whose checkpoints persist
// to [diskBase, diskBase+size) on arr.
func NewRegion(costs *sim.CostModel, arr *disk.Array, name string, diskBase, size int64) *Region {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &Region{
		costs:    costs,
		arr:      arr,
		diskBase: diskBase,
		name:     name,
		data:     make([]byte, size),
		dirty:    make(map[int64]bool),
	}
}

// Name returns the region name.
func (r *Region) Name() string { return r.name }

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return int64(len(r.data)) }

// Checkpoints returns how many checkpoints have been taken.
func (r *Region) Checkpoints() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checkpoints
}

// Write stores data at off, dirtying the covered pages. Aurora does
// not fault per write; tracking happens wholesale at checkpoint time
// via the shadow object, so writes cost only the memcpy.
func (r *Region) Write(clk *sim.Clock, off int64, data []byte) {
	if off < 0 || off+int64(len(data)) > int64(len(r.data)) {
		panic(fmt.Sprintf("aurora: write out of range: off=%d len=%d", off, len(data)))
	}
	clk.Advance(r.costs.MemcpyCost(len(data)))
	r.mu.Lock()
	copy(r.data[off:], data)
	for p := off / PageSize; p <= (off+int64(len(data))-1)/PageSize; p++ {
		r.dirty[p] = true
	}
	r.mu.Unlock()
}

// Read copies bytes out of the region.
func (r *Region) Read(clk *sim.Clock, off int64, buf []byte) {
	if off < 0 || off+int64(len(buf)) > int64(len(r.data)) {
		panic(fmt.Sprintf("aurora: read out of range: off=%d len=%d", off, len(buf)))
	}
	clk.Advance(r.costs.MemcpyCost(len(buf)))
	r.mu.Lock()
	copy(buf, r.data[off:])
	r.mu.Unlock()
}

// DirtyPages returns the current dirty-set size.
func (r *Region) DirtyPages() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.dirty)
}

// perGiB scales a per-GiB cost by a byte count.
func perGiB(cost time.Duration, bytes int64) time.Duration {
	return time.Duration(int64(cost) * bytes / (1 << 30))
}

// Checkpoint synchronously persists the region's dirty set using
// system shadowing and returns the phase breakdown. Concurrent
// checkpoints of one region serialize: a caller whose region is busy
// first waits for the previous collapse to finish.
func (r *Region) Checkpoint(clk *sim.Clock) Breakdown {
	start := clk.Now()
	r.mu.Lock()

	// Serialize on the region: only one outstanding checkpoint.
	if r.nextFree > clk.Now() {
		clk.AdvanceTo(r.nextFree)
	}

	var b Breakdown

	// Phase 1: stop all threads.
	clk.Advance(r.costs.AuroraStopThreadsFixed)
	b.WaitingForCalls = r.costs.AuroraStopThreadsFixed

	// Phase 2: apply COW over the whole mapping (shadow object).
	shadow := perGiB(r.costs.AuroraShadowPerGiB, int64(len(r.data)))
	clk.Advance(shadow)
	b.ApplyingCOW = shadow

	// Snapshot the dirty set; threads resume after shadowing.
	var extents []disk.Extent
	for p := range r.dirty {
		pageData := make([]byte, PageSize)
		copy(pageData, r.data[p*PageSize:])
		extents = append(extents, disk.Extent{Offset: r.diskBase + p*PageSize, Data: pageData})
	}
	r.dirty = make(map[int64]bool)
	r.checkpoints++

	// Phase 3: flush IO.
	ioStart := clk.Now()
	done := r.arr.WriteV(ioStart, extents)
	clk.AdvanceTo(done)
	b.FlushIO = clk.Now() - ioStart

	// Phase 4: collapse the shadow object. The region stays busy
	// until this completes.
	collapse := perGiB(r.costs.AuroraCollapsePerGiB, int64(len(r.data)))
	clk.Advance(collapse)
	b.RemovingCOW = collapse
	r.nextFree = clk.Now()

	r.mu.Unlock()
	b.Total = clk.Now() - start
	return b
}

// App models a whole application for Aurora's full checkpoints: the
// sum of its regions plus anonymous memory (heap, stacks, OS state).
type App struct {
	costs *sim.CostModel
	// Regions included in the application image.
	Regions []*Region
	// ExtraBytes is the non-region application footprint.
	ExtraBytes int64
}

// NewApp creates an application wrapper.
func NewApp(costs *sim.CostModel, regions []*Region, extraBytes int64) *App {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &App{costs: costs, Regions: regions, ExtraBytes: extraBytes}
}

// Checkpoint takes a full application checkpoint: protect and scan
// the entire address space, then checkpoint every region. An order of
// magnitude costlier than region checkpoints (Figure 3).
func (a *App) Checkpoint(clk *sim.Clock) Breakdown {
	start := clk.Now()
	var total int64 = a.ExtraBytes
	for _, r := range a.Regions {
		total += r.Size()
	}
	clk.Advance(a.costs.AuroraAppCheckpointFixed)
	clk.Advance(perGiB(a.costs.AuroraAppCheckpointPerGiB, total))
	var b Breakdown
	for _, r := range a.Regions {
		rb := r.Checkpoint(clk)
		b.WaitingForCalls += rb.WaitingForCalls
		b.ApplyingCOW += rb.ApplyingCOW
		b.FlushIO += rb.FlushIO
		b.RemovingCOW += rb.RemovingCOW
	}
	b.Total = clk.Now() - start
	return b
}
