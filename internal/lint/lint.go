// Package lint is a repo-specific static-analysis suite built on the
// standard library's go/ast, go/parser and go/types only (the module
// must stay offline-buildable, so no golang.org/x/tools).
//
// The reproduction rests on invariants the Go compiler cannot see:
// simulated work charges a virtual sim.Clock, never the wall clock;
// randomness comes only from the deterministic sim.RNG; clocks are
// per-thread and must not leak into goroutines; and every access to
// MemSnap region memory goes through the vm.Thread API so minor
// faults fire and dirty-set tracking stays sound. Each analyzer here
// encodes one of those design rules and is enforced for the whole
// module by the repo-root lint test and by cmd/memsnap-lint.
//
// Suppression: a comment of the form
//
//	//lint:allow <rule>[,<rule>...] [reason]
//
// disables the named rules for the line the comment is on and for the
// line immediately below it (so it can trail the offending line or sit
// on its own line above it). Use it sparingly and give a reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// File is one parsed source file of a package.
type File struct {
	AST *ast.File
	// Name is the file's base name; Test reports a _test.go file.
	Name string
	Test bool
}

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("memsnap/internal/shard"). External
	// test packages share the directory's import path; Name
	// distinguishes them ("shard" vs "shard_test").
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the absolute directory the files live in.
	Dir   string
	Fset  *token.FileSet
	Files []*File
	Types *types.Package
	Info  *types.Info
}

// Diagnostic is one rule violation.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Pkg    *Package
	rule   string
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one checkable design rule. Exactly one of Run and
// RunProgram is set: Run analyzes one package at a time, RunProgram
// analyzes the whole loaded program at once (shared call graph,
// cross-package annotations).
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:allow.
	Name string
	// Doc is a one-line statement of the enforced design rule.
	Doc string
	// Run reports violations found in pass.Pkg.
	Run func(pass *Pass)
	// RunProgram reports violations found anywhere in pass.Prog.
	RunProgram func(pass *ProgramPass)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallTime,
		GlobalRand,
		ClockCapture,
		FaultPath,
		SockIO,
		HotAlloc,
		PoolOwn,
	}
}

// Run applies the analyzers to every package and returns surviving
// diagnostics (suppressed ones removed, deduplicated, sorted by
// position). Per-package analyzers run over each package; program
// analyzers run once over the whole package set, with the same
// //lint:allow suppression semantics.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	allow := map[lineKey]map[string]bool{}
	for _, pkg := range pkgs {
		for k, rules := range allowedLines(pkg) {
			if allow[k] == nil {
				allow[k] = map[string]bool{}
			}
			for r := range rules {
				allow[k][r] = true
			}
		}
	}
	seen := map[string]bool{}
	report := func(d Diagnostic) {
		if allow[lineKey{d.Pos.Filename, d.Pos.Line}][d.Rule] {
			return
		}
		key := fmt.Sprintf("%s|%s|%s", d.Pos, d.Rule, d.Message)
		if seen[key] {
			return
		}
		seen[key] = true
		diags = append(diags, d)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{Pkg: pkg, rule: a.Name, report: report})
		}
	}
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = NewProgram(pkgs)
		}
		a.RunProgram(&ProgramPass{Prog: prog, rule: a.Name, report: report})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

type lineKey struct {
	file string
	line int
}

var allowRe = regexp.MustCompile(`^lint:allow\s+([A-Za-z0-9_,-]+)(\s|$)`)

// allowedLines scans every comment in the package for //lint:allow
// directives and returns the set of (file, line) -> rules they
// suppress. A directive covers its own line and the next line.
func allowedLines(pkg *Package) map[lineKey]map[string]bool {
	out := map[lineKey]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, rule := range strings.Split(m[1], ",") {
					rule = strings.TrimSpace(rule)
					if rule == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := lineKey{pos.Filename, line}
						if out[k] == nil {
							out[k] = map[string]bool{}
						}
						out[k][rule] = true
					}
				}
			}
		}
	}
	return out
}

// pathIsUnder reports whether the package import path is the prefix
// itself or lies below it.
func pathIsUnder(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
