package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc makes the 0-allocs/op property of the persist and network
// hot paths a compile-gated invariant instead of a bench-time counter:
// every function annotated //memsnap:hotpath must be transitively free
// of allocation sites, walking the shared conservative call graph
// (static calls exactly, interface calls by class-hierarchy analysis,
// //memsnap:coldpath pruning retry/catch-up boundaries).
//
// Allocation sites flagged inside a reachable function:
//
//   - map, slice and &composite literals
//   - make and new
//   - append to a slice declared fresh in the same function (nil or
//     empty literal — its capacity grows on every call; appends into
//     caller-owned or struct-field scratch amortize to zero and pass)
//   - string <-> []byte/[]rune conversions
//   - explicit conversions of concrete values to interface types
//     (boxing)
//   - calls into fmt (every call boxes its operands) and the other
//     known-allocating stdlib entry points (errors.New, strings.Join,
//     strconv.Format*, ...)
//   - capturing function literals and go statements
//
// Known limitations, by design: calls through func-typed values are
// not traversed, and stdlib internals outside the deny-list are
// trusted (the bench-gate ceilings in CI keep them honest). Cold
// sub-paths that allocate deliberately (pool misses, error paths,
// panics) carry //lint:allow hotalloc escapes with reasons.
var HotAlloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "functions marked //memsnap:hotpath (and everything they transitively call) must be free of allocation sites",
	RunProgram: runHotAlloc,
}

// allocStdlib are non-fmt stdlib functions known to allocate per call.
// Key is the funcKey form ("pkgpath.Name" / "pkgpath.(Recv).Name").
var allocStdlib = map[string]bool{
	"errors.New":               true,
	"strings.Join":             true,
	"strings.Repeat":           true,
	"strings.Replace":          true,
	"strings.ReplaceAll":       true,
	"strings.ToUpper":          true,
	"strings.ToLower":          true,
	"strings.Fields":           true,
	"strings.Split":            true,
	"strings.SplitN":           true,
	"strings.Clone":            true,
	"strings.(Builder).String": true,
	"strconv.Quote":            true,
	"strconv.QuoteRune":        true,
	"strconv.FormatInt":        true,
	"strconv.FormatUint":       true,
	"strconv.FormatFloat":      true,
	"strconv.FormatBool":       true,
	"strconv.Itoa":             true,
	"bytes.Clone":              true,
	"slices.Clone":             true,
	"maps.Clone":               true,
}

func runHotAlloc(pass *ProgramPass) {
	prog := pass.Prog

	// Roots in deterministic order.
	var roots []*FuncNode
	for _, node := range prog.Funcs() {
		if node.Hot && !node.File.Test {
			roots = append(roots, node)
		}
	}

	// BFS from each root so the diagnostic can name the shortest call
	// chain that makes a site hot. A site reachable from several roots
	// is reported once per distinct (position, message) by the dedup in
	// Run, and the chain shown is the first root's.
	type visit struct {
		node  *FuncNode
		chain string
	}
	reported := map[token.Pos]bool{}
	seen := map[*FuncNode]bool{}
	var queue []visit
	for _, root := range roots {
		if !seen[root] {
			seen[root] = true
			queue = append(queue, visit{root, root.Decl.Name.Name})
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		checkAllocSites(pass, v.node, v.chain, reported)
		for _, callee := range v.node.Callees {
			if seen[callee] || callee.Cold || callee.File.Test {
				continue
			}
			seen[callee] = true
			queue = append(queue, visit{callee, v.chain + " → " + callee.Decl.Name.Name})
		}
	}
}

// checkAllocSites reports every allocation site in node's body. chain
// is the call path from the hot root for the diagnostic.
func checkAllocSites(pass *ProgramPass, node *FuncNode, chain string, reported map[token.Pos]bool) {
	pkg := node.Pkg
	info := pkg.Info
	fresh := freshSlices(info, node.Decl.Body)
	mapKeys := mapIndexConversions(info, node.Decl.Body)
	report := func(n ast.Node, what string) {
		if reported[n.Pos()] {
			return
		}
		reported[n.Pos()] = true
		pass.Reportf(pkg, n,
			"%s on the hot path %s (design rule: //memsnap:hotpath code is allocation-free; cold sub-paths take //lint:allow hotalloc with a reason)",
			what, chain)
	}

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Map:
				report(x, "map literal allocates")
			case *types.Slice:
				report(x, "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x, "&composite literal allocates")
				}
			}
		case *ast.GoStmt:
			report(x, "go statement allocates a goroutine")
		case *ast.FuncLit:
			if capturesVariables(info, x) {
				report(x, "capturing func literal allocates a closure")
			}
		case *ast.BinaryExpr:
			// Constant concatenation folds at compile time.
			if x.Op == token.ADD && isStringType(info.Types[x.X].Type) && info.Types[x].Value == nil {
				report(x, "string concatenation allocates")
			}
		case *ast.CallExpr:
			if !mapKeys[x] {
				checkAllocCall(info, x, fresh, report)
			}
		}
		return true
	})
}

// mapIndexConversions collects []byte→string conversions used directly
// as a map index (m[string(b)]): the compiler guarantees these do not
// copy, so they are exempt from the conversion-allocates rule.
func mapIndexConversions(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	keys := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if xt := info.Types[ix.X].Type; xt == nil {
			return true
		} else if _, isMap := xt.Underlying().(*types.Map); !isMap {
			return true
		}
		call, ok := ast.Unparen(ix.Index).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && isStringType(tv.Type) {
			keys[call] = true
		}
		return true
	})
	return keys
}

// checkAllocCall classifies one call expression: builtin allocators,
// allocating conversions, and deny-listed stdlib calls.
func checkAllocCall(info *types.Info, call *ast.CallExpr, fresh map[*types.Var]bool, report func(ast.Node, string)) {
	fun := ast.Unparen(call.Fun)

	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) != 1 {
			return
		}
		src := info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		switch {
		case isStringType(dst) && isByteOrRuneSlice(src):
			report(call, "[]byte/[]rune→string conversion allocates")
		case isByteOrRuneSlice(dst) && isStringType(src):
			report(call, "string→[]byte/[]rune conversion allocates")
		case types.IsInterface(dst) && !types.IsInterface(src) && src != types.Typ[types.UntypedNil]:
			report(call, "conversion to interface boxes the value and allocates")
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				switch info.Types[call].Type.Underlying().(type) {
				case *types.Map:
					report(call, "make(map) allocates")
				case *types.Chan:
					report(call, "make(chan) allocates")
				default:
					report(call, "make allocates")
				}
			case "new":
				report(call, "new allocates")
			case "append":
				if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if v, ok := info.Uses[base].(*types.Var); ok && fresh[v] {
						report(call, "append to a fresh slice grows per call (unknown capacity)")
					}
				}
			}
			return
		}
	}

	// Deny-listed stdlib calls.
	for _, fn := range staticCallTarget(info, fun) {
		if fn.Pkg() == nil {
			continue
		}
		key := funcKey(fn)
		if fn.Pkg().Path() == "fmt" {
			report(call, "fmt."+fn.Name()+" boxes its operands and allocates")
		} else if allocStdlib[key] {
			report(call, key+" allocates")
		}
	}
}

// staticCallTarget resolves fun to its exact *types.Func target when
// the call is static (no CHA here: implementations are traversed as
// graph nodes and checked in their own right).
func staticCallTarget(info *types.Info, fun ast.Expr) []*types.Func {
	switch x := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[x].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return []*types.Func{fn}
			}
			return nil
		}
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
			return []*types.Func{fn}
		}
	}
	return nil
}

// freshSlices collects the local slice variables declared with no
// backing capacity — `var s []T` or `s := []T{}` — whose appends
// therefore allocate on (almost) every call. Slices arriving through
// parameters, fields or calls are assumed to be reused scratch.
func freshSlices(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
							fresh[v] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lit, ok := ast.Unparen(x.Rhs[i]).(*ast.CompositeLit)
				if !ok || len(lit.Elts) != 0 {
					continue
				}
				if v, ok := info.Defs[id].(*types.Var); ok {
					if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
						fresh[v] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// capturesVariables reports whether the literal references a variable
// declared outside itself (a closure that must heap-allocate its
// environment). Non-capturing literals compile to static functions.
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captured.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captures = true
			return false
		}
		return true
	})
	return captures
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32
}

// pkgPathOf is a tiny helper for diagnostics.
func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return strings.TrimPrefix(fn.Pkg().Path(), "memsnap/")
}
