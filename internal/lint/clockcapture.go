package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ClockCapture flags *sim.Clock variables captured by function
// literals launched with a go statement. Clocks are per-thread state
// (see the ownership rule documented in internal/sim/clock.go): a
// goroutine that needs a clock must receive it as an explicit
// parameter (which this analyzer permits) or create its own, so
// ownership transfer is visible at the spawn site instead of being an
// accidental data race on virtual time.
//
// One use is exempt: a captured clock whose use is the receiver of an
// immediate Now() or AdvanceTo() call. Those two methods are the
// clock's documented atomic operations — the one cross-goroutine
// access the ownership rule itself permits (an observability boundary
// stamping virtual time, a client reading a worker's clock). Any other
// captured use, including Advance, is still reported.
var ClockCapture = &Analyzer{
	Name: "clockcapture",
	Doc:  "forbid *sim.Clock captured by go-statement closures; pass clocks as explicit goroutine parameters (atomic Now/AdvanceTo receivers exempt)",
	Run:  runClockCapture,
}

// atomicClockMethods are the *sim.Clock methods documented as safe for
// cross-goroutine use (implemented on the clock's atomic counter).
var atomicClockMethods = map[string]bool{"Now": true, "AdvanceTo": true}

func runClockCapture(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			// Pre-scan for idents whose use is the receiver of an
			// immediate atomic-method call: in `clk.Now()` or
			// `s.src.Clock.AdvanceTo(t)` the terminal receiver ident is
			// exempt below.
			atomicRecv := map[token.Pos]bool{}
			ast.Inspect(lit, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !atomicClockMethods[sel.Sel.Name] {
					return true
				}
				switch recv := sel.X.(type) {
				case *ast.Ident:
					atomicRecv[recv.Pos()] = true
				case *ast.SelectorExpr:
					atomicRecv[recv.Sel.Pos()] = true
				}
				return true
			})
			// Only the literal's body can capture; arguments to the
			// call are evaluated in the spawning goroutine's scope.
			ast.Inspect(lit, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Uses[id].(*types.Var)
				if !ok || !isSimClockPtr(obj.Type()) {
					return true
				}
				// Declared inside the literal (parameter or local):
				// explicit ownership transfer, allowed.
				if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
					return true
				}
				// Receiver of an immediate atomic Now/AdvanceTo call:
				// the documented cross-goroutine exception.
				if atomicRecv[id.Pos()] {
					return true
				}
				pass.Reportf(id.Pos(),
					"goroutine closure captures *sim.Clock %q; clocks are per-thread (internal/sim/clock.go) — pass the clock as an explicit goroutine parameter or create one inside (design rule: per-thread clock ownership)",
					id.Name)
				return true
			})
			return true
		})
	}
}

// isSimClockPtr reports whether t is *sim.Clock.
func isSimClockPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Clock" && obj.Pkg() != nil && obj.Pkg().Path() == "memsnap/internal/sim"
}
