package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRes match the two expectation-comment forms:
//
//	// want `regexp`
//	// want "regexp"
//
// in the spirit of x/tools analysistest, stdlib-only.
var (
	wantBacktickRe = regexp.MustCompile("want\\s+`([^`]*)`")
	wantQuotedRe   = regexp.MustCompile(`want\s+("(?:[^"\\]|\\.)*")`)
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// TestAnalyzersOnFixtures runs the whole suite over every fixture
// package under testdata/src and requires an exact match between
// reported diagnostics and `// want` comments: every diagnostic must
// be expected, every expectation must fire. Lines carrying a
// //lint:allow directive and no want comment therefore prove the
// suppression mechanism (each fixture has a suppressed line whose
// unsuppressed twin fails).
func TestAnalyzersOnFixtures(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	fixRoot := filepath.Join(root, "internal", "lint", "testdata", "src")
	ents, err := os.ReadDir(fixRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			pkgs, err := loader.LoadDir(filepath.Join(fixRoot, name), "memsnap/internal/lintfixtures/"+name)
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, pkgs)
			for _, d := range Run(pkgs, Analyzers()) {
				matched := false
				for _, w := range wants {
					if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
						continue
					}
					if w.re.MatchString(d.Message) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// collectWants extracts `// want` expectations from every comment in
// the fixture packages.
func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					if !strings.Contains(c.Text, "want ") {
						continue
					}
					var pat string
					if m := wantBacktickRe.FindStringSubmatch(c.Text); m != nil {
						pat = m[1]
					} else if m := wantQuotedRe.FindStringSubmatch(c.Text); m != nil {
						unq, err := strconv.Unquote(m[1])
						if err != nil {
							t.Fatalf("bad want string %s: %v", m[1], err)
						}
						pat = unq
					} else {
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", pat, err)
					}
					pos := pkg.Fset.Position(c.Slash)
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// TestAllowDirectiveParsing pins down the //lint:allow grammar:
// multiple comma-separated rules, optional reason, coverage of the
// directive's own line and the next.
func TestAllowDirectiveParsing(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := `package allowfix

// plain comment
//lint:allow ruleone,ruletwo because reasons
var a = 1

var b = 2 //lint:allow rulethree
`
	if err := os.WriteFile(filepath.Join(dir, "allowfix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir(dir, "memsnap/internal/lintfixtures/allowfix")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	allow := allowedLines(pkgs[0])
	file := filepath.Join(dir, "allowfix.go")
	for _, tc := range []struct {
		line int
		rule string
		want bool
	}{
		{4, "ruleone", true},
		{4, "ruletwo", true},
		{5, "ruleone", true}, // next line covered
		{5, "ruletwo", true},
		{6, "ruleone", false}, // two lines down: not covered
		{7, "rulethree", true},
		{8, "rulethree", true},
		{4, "rulethree", false},
		{5, "because", false}, // reason text is not a rule
	} {
		got := allow[lineKey{file, tc.line}][tc.rule]
		if got != tc.want {
			t.Errorf("line %d rule %q: allowed=%v, want %v", tc.line, tc.rule, got, tc.want)
		}
	}
}

// TestAnalyzerDocs makes sure every analyzer is registered with a name
// and a one-line rule statement (the CLI -list output and DESIGN.md
// table both lean on these).
func TestAnalyzerDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunProgram", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"walltime", "globalrand", "clockcapture", "faultpath", "sockio", "hotalloc", "poolown"} {
		if !seen[want] {
			t.Errorf("suite is missing the %s analyzer", want)
		}
	}
}
