package lint

import (
	"go/ast"
	"go/types"
)

// faultPathExempt lists the packages that implement the simulated MMU
// and may therefore touch physical frames directly. Everyone else must
// go through the vm.Thread access API (Write/Read/PageForWrite/
// PageForRead) so minor faults fire and dirty-set tracking stays
// sound.
var faultPathExempt = map[string]bool{
	"memsnap/internal/mem":       true,
	"memsnap/internal/vm":        true,
	"memsnap/internal/pagetable": true,
}

// faultPathMethods are the mem.PhysMem frame accessors client packages
// must not call: raw frame bytes (Data), frame duplication (Copy),
// page metadata with mutable tracking flags (Page), and allocator
// entry points that mint frames outside any address space (Alloc,
// Free).
var faultPathMethods = map[string]bool{
	"Data":  true,
	"Copy":  true,
	"Page":  true,
	"Alloc": true,
	"Free":  true,
}

// FaultPath flags direct use of mem.PhysMem frame accessors outside
// the MMU packages. Writing frame bytes behind the vm.Thread API's
// back skips the minor-fault path, so the write never lands in a
// dirty set and the next uCheckpoint silently misses it (PAPER.md §3:
// dirty-set tracking is the whole persistence contract).
var FaultPath = &Analyzer{
	Name: "faultpath",
	Doc:  "forbid mem.PhysMem frame access outside internal/{mem,vm,pagetable}; clients use the vm.Thread API",
	Run:  runFaultPath,
}

func runFaultPath(pass *Pass) {
	pkg := pass.Pkg
	if faultPathExempt[pkg.Path] {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pkg.Info.Selections[sel]
			if s == nil {
				return true
			}
			fn, ok := s.Obj().(*types.Func)
			if !ok || !faultPathMethods[fn.Name()] {
				return true
			}
			if !isPhysMemMethod(fn) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"(*mem.PhysMem).%s bypasses the simulated MMU: writes skip minor faults and dirty-set tracking, so the next uCheckpoint misses them — use the vm.Thread access API (design rule: all region access through the fault path)",
				fn.Name())
			return true
		})
	}
}

// isPhysMemMethod reports whether fn is a method of mem.PhysMem.
func isPhysMemMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "PhysMem" && obj.Pkg() != nil && obj.Pkg().Path() == "memsnap/internal/mem"
}
