package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// faultPathExempt lists the packages that implement the simulated MMU
// and may therefore touch physical frames directly. Everyone else must
// go through the vm.Thread access API (Write/Read/PageForWrite/
// PageForRead) so minor faults fire and dirty-set tracking stays
// sound.
var faultPathExempt = map[string]bool{
	"memsnap/internal/mem":       true,
	"memsnap/internal/vm":        true,
	"memsnap/internal/pagetable": true,
}

// faultPathMethods are the mem.PhysMem frame accessors client packages
// must not call: raw frame bytes (Data), frame duplication (Copy),
// page metadata with mutable tracking flags (Page), and allocator
// entry points that mint frames outside any address space (Alloc,
// Free).
var faultPathMethods = map[string]bool{
	"Data":  true,
	"Copy":  true,
	"Page":  true,
	"Alloc": true,
	"Free":  true,
}

// chargeBacking registers the simulated hardware types whose exported
// methods must charge virtual time before touching backing state:
// package path -> receiver type name -> backing state fields. The
// lintfixtures entry is the analyzer's own test double.
var chargeBacking = map[string]map[string][]string{
	"memsnap/internal/disk": {
		"Device": {"data"},
		"Array":  {"devices"},
	},
	"memsnap/internal/replica": {
		"Link": {"nextFree"},
	},
	"memsnap/internal/lintfixtures/faultdev": {
		"SimDev": {"backing"},
	},
}

// chargeTouchMethods are the state accessors that count as touching
// backing state when called through a backing field.
var chargeTouchMethods = map[string]bool{
	"readAt":       true,
	"writeAt":      true,
	"SubmitRead":   true,
	"SubmitWrite":  true,
	"submitWriteV": true,
	"PeekAt":       true,
	"CutPower":     true,
}

// FaultPath enforces two fault-path invariants. First, direct use of
// mem.PhysMem frame accessors outside the MMU packages: writing frame
// bytes behind the vm.Thread API's back skips the minor-fault path, so
// the write never lands in a dirty set and the next uCheckpoint
// silently misses it (PAPER.md §3: dirty-set tracking is the whole
// persistence contract). Second, charge discipline on the simulated
// hardware (disk.Device, disk.Array, replica.Link): every exported
// method that touches backing state must charge virtual time —
// accept an `at time.Duration` or *sim.Clock parameter, or consult
// the receiver's cost model before the access — or the latency model
// silently grows zero-cost fast paths.
var FaultPath = &Analyzer{
	Name: "faultpath",
	Doc:  "all region access through the MMU fault path; all device/link state access charges sim.Clock first",
	Run:  runFaultPath,
}

func runFaultPath(pass *Pass) {
	runChargeDiscipline(pass)
	pkg := pass.Pkg
	if faultPathExempt[pkg.Path] {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pkg.Info.Selections[sel]
			if s == nil {
				return true
			}
			fn, ok := s.Obj().(*types.Func)
			if !ok || !faultPathMethods[fn.Name()] {
				return true
			}
			if !isPhysMemMethod(fn) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"(*mem.PhysMem).%s bypasses the simulated MMU: writes skip minor faults and dirty-set tracking, so the next uCheckpoint misses them — use the vm.Thread access API (design rule: all region access through the fault path)",
				fn.Name())
			return true
		})
	}
}

// runChargeDiscipline checks the registered device types' exported
// methods: a touch of backing state (a chargeTouchMethods call rooted
// at a backing field, or an assignment to one) must be preceded by a
// virtual-time charge — an `at time.Duration` or *sim.Clock parameter
// anywhere in the signature, or a reference to the receiver's costs
// field earlier in the body.
func runChargeDiscipline(pass *Pass) {
	pkg := pass.Pkg
	byType := chargeBacking[pkg.Path]
	if byType == nil {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			typeName := receiverTypeName(fd)
			fields, ok := byType[typeName]
			if !ok {
				continue
			}
			recv := receiverIdent(fd)
			if recv == "" || recv == "_" {
				continue
			}
			backing := map[string]bool{}
			for _, b := range fields {
				backing[b] = true
			}
			if hasChargeParam(pkg, fd) {
				continue
			}
			touchPos := firstBackingTouch(fd.Body, recv, backing)
			if !touchPos.IsValid() {
				continue
			}
			if costsRefBefore(fd.Body, recv, touchPos) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"(*%s.%s).%s touches backing device state without charging virtual time: accept an `at time.Duration` or *sim.Clock parameter, or consult the cost model before the access (design rule: every device/link operation charges sim.Clock before touching backing state)",
				pkg.Name, typeName, fd.Name.Name)
		}
	}
}

// receiverTypeName extracts the receiver's type name, stripping any
// pointer.
func receiverTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// receiverIdent extracts the receiver's variable name ("" when
// anonymous).
func receiverIdent(fd *ast.FuncDecl) string {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return ""
	}
	return names[0].Name
}

// hasChargeParam reports whether the method's signature carries a
// virtual-time parameter: a time.Duration or a *sim.Clock.
func hasChargeParam(pkg *Package, fd *ast.FuncDecl) bool {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isNamedType(t, "time", "Duration") {
			return true
		}
		if ptr, ok := t.(*types.Pointer); ok && isNamedType(ptr.Elem(), "memsnap/internal/sim", "Clock") {
			return true
		}
	}
	return false
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// firstBackingTouch returns the position of the earliest touch of a
// backing field in body: a chargeTouchMethods call whose receiver
// chain roots at recv.<backing>, or an assignment targeting one.
func firstBackingTouch(body *ast.BlockStmt, recv string, backing map[string]bool) token.Pos {
	var first token.Pos
	note := func(pos token.Pos) {
		if !first.IsValid() || pos < first {
			first = pos
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && chargeTouchMethods[sel.Sel.Name] &&
				rootsAtBacking(sel.X, recv, backing) {
				note(x.Pos())
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if rootsAtBacking(lhs, recv, backing) {
					note(lhs.Pos())
				}
			}
		}
		return true
	})
	return first
}

// rootsAtBacking walks a selector/index chain and reports whether it
// passes through recv.<backing field>.
func rootsAtBacking(e ast.Expr, recv string, backing map[string]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == recv && backing[x.Sel.Name] {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// costsRefBefore reports whether recv.costs is referenced in body at
// a position strictly before pos (the cost model consulted before the
// touch).
func costsRefBefore(body *ast.BlockStmt, recv string, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv && sel.Sel.Name == "costs" && sel.Pos() < pos {
			found = true
		}
		return true
	})
	return found
}

// isPhysMemMethod reports whether fn is a method of mem.PhysMem.
func isPhysMemMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "PhysMem" && obj.Pkg() != nil && obj.Pkg().Path() == "memsnap/internal/mem"
}
