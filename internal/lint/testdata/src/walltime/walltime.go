// Fixture for the walltime analyzer. The harness loads this package
// under a synthetic memsnap/internal/... import path so the
// internal/+cmd/ scoping applies.
package walltime

import "time"

func bad() time.Duration {
	t := time.Now()                // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep reads the wall clock`
	d := time.Since(t)             // want `time\.Since reads the wall clock`
	<-time.After(time.Microsecond) // want `time\.After reads the wall clock`
	_ = time.NewTimer(d)           // want `time\.NewTimer reads the wall clock`
	return d
}

// Durations, constants and conversions are the currency of virtual
// time and stay legal.
func ok() time.Duration {
	const d = 3 * time.Microsecond
	return d + time.Duration(17)
}

// The escape hatch: a suppressed call passes while its unsuppressed
// twin in bad() fails.
func suppressed() time.Time {
	return time.Now() //lint:allow walltime fixture: proves suppression works
}

// A chaos schedule handler: a callback fired at a virtual instant
// (chaos.Event.At). Everything it needs must derive from that instant;
// reading the wall clock inside a handler would make the fault's
// firing point — and therefore the whole cell — nonreproducible.
type scheduleEvent struct {
	at, dur time.Duration
}

func badScheduleHandler(ev scheduleEvent) time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(ev.dur)           // want `time\.Sleep reads the wall clock`
	elapsed := time.Since(start) // want `time\.Since reads the wall clock`
	return elapsed
}

// The sanctioned handler shape: window arithmetic on the scheduled
// virtual instant only.
func okScheduleHandler(ev scheduleEvent, now time.Duration) bool {
	return now >= ev.at && now < ev.at+ev.dur
}

// Suppressed twin of badScheduleHandler.
func suppressedScheduleHandler(ev scheduleEvent) time.Time {
	return time.Now().Add(ev.at) //lint:allow walltime fixture: schedule-handler suppression twin
}
