// Fixture for the walltime analyzer. The harness loads this package
// under a synthetic memsnap/internal/... import path so the
// internal/+cmd/ scoping applies.
package walltime

import "time"

func bad() time.Duration {
	t := time.Now()                // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep reads the wall clock`
	d := time.Since(t)             // want `time\.Since reads the wall clock`
	<-time.After(time.Microsecond) // want `time\.After reads the wall clock`
	_ = time.NewTimer(d)           // want `time\.NewTimer reads the wall clock`
	return d
}

// Durations, constants and conversions are the currency of virtual
// time and stay legal.
func ok() time.Duration {
	const d = 3 * time.Microsecond
	return d + time.Duration(17)
}

// The escape hatch: a suppressed call passes while its unsuppressed
// twin in bad() fails.
func suppressed() time.Time {
	return time.Now() //lint:allow walltime fixture: proves suppression works
}
