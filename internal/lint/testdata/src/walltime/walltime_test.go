package walltime

import "time"

// Test files are exempt from walltime: tests may measure real
// durations (timeouts, -race stress loops). No `want` below.
func helperUsedByTests() time.Time {
	return time.Now()
}
