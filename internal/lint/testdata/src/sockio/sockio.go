// Fixture for the sockio analyzer. The harness loads this package
// under a synthetic memsnap/internal/... import path so the
// internal/+cmd/ scoping applies.
package sockio

import (
	_ "net"      // want `real-socket I/O belongs only to documented wall boundaries`
	_ "net/http" // want `real-socket I/O belongs only to documented wall boundaries`
)

// Non-socket networking-adjacent stdlib stays legal: the rule is about
// opening real sockets, not about parsing addresses or URLs.
import _ "net/url"
