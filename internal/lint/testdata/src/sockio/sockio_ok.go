package sockio

// The escape hatch: a suppressed import passes while its unsuppressed
// twin in sockio.go fails.
import (
	_ "net" //lint:allow sockio fixture: proves suppression works
)
