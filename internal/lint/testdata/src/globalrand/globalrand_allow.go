package globalrand

// The escape hatch: the suppressed import passes while its
// unsuppressed twin in globalrand.go fails.

//lint:allow globalrand fixture: proves suppression works
import crand "math/rand"

func allowed() int { return crand.Int() }
