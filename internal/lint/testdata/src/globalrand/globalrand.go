// Fixture for the globalrand analyzer.
package globalrand

import (
	"math/rand" // want `import of "math/rand": randomness must come from the deterministic sim\.RNG`

	"memsnap/internal/sim"
)

func bad() int { return rand.Int() }

func ok(r *sim.RNG) int { return r.Intn(10) }
