package globalrand

// globalrand applies to test files too: a test seeded from global
// randomness is a flaky test.

import "math/rand/v2" // want `import of "math/rand/v2": randomness must come from the deterministic sim\.RNG`

func testHelper() int { return rand.IntN(10) }
