// Fixture for the hotalloc analyzer: functions annotated
// //memsnap:hotpath (and everything they transitively call, interface
// calls resolved by CHA) must be free of allocation sites;
// //memsnap:coldpath prunes the traversal, //lint:allow suppresses a
// site.
package hotalloc

import (
	"fmt"
	"strconv"
)

var (
	sinkBytes []byte
	sinkInt   int
)

type entry struct{ k, v int }

// step is a clean hot leaf.
func step(x int) int { return x + 1 }

// HotClean exercises the allowed idioms: calls to clean leaves,
// appends into caller-owned scratch (amortized, no fresh backing),
// basic-type conversions.
//
//memsnap:hotpath
func HotClean(xs []int, scratch []byte) int {
	n := 0
	for _, x := range xs {
		n += step(x)
	}
	scratch = append(scratch, byte(n))
	sinkBytes = scratch
	return n
}

// HotDirect allocates in its own body.
//
//memsnap:hotpath
func HotDirect(k int) {
	m := map[int]int{} // want `map literal allocates`
	m[k] = k
	s := []int{k} // want `slice literal allocates`
	sinkInt = s[0]
	p := &entry{k: k} // want `&composite literal allocates`
	sinkInt = p.v
	b := make([]byte, k) // want `make allocates`
	sinkBytes = b
}

// helper is itself clean but reaches an allocating leaf.
func helper(k int) []byte { return leaf(k) }

func leaf(k int) []byte {
	return make([]byte, k) // want `make allocates`
}

// HotTransitive only allocates two calls down.
//
//memsnap:hotpath
func HotTransitive(k int) { sinkBytes = helper(k) }

// HotConvert covers the allocating conversions.
//
//memsnap:hotpath
func HotConvert(s string, b []byte) int {
	sinkBytes = []byte(s)   // want `string→\[\]byte/\[\]rune conversion allocates`
	return len(string(b)) + // want `\[\]byte/\[\]rune→string conversion allocates`
		len(any(b).([]byte)) // want `conversion to interface boxes the value and allocates`
}

// HotFmt hits the fmt deny rule and the stdlib deny-list.
//
//memsnap:hotpath
func HotFmt(k int) string {
	if k < 0 {
		return strconv.Itoa(k) // want `strconv.Itoa allocates`
	}
	return fmt.Sprintf("k=%d", k) // want `fmt\.Sprintf boxes its operands and allocates`
}

// HotConcat allocates the joined string.
//
//memsnap:hotpath
func HotConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// HotFreshAppend grows a slice declared with no backing capacity.
//
//memsnap:hotpath
func HotFreshAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to a fresh slice grows per call`
	}
	return out
}

// HotClosure allocates a closure environment and a goroutine.
//
//memsnap:hotpath
func HotClosure(k int) func() int {
	f := func() int { return k } // want `capturing func literal allocates a closure`
	go spin()                    // want `go statement allocates a goroutine`
	return f
}

func spin() {}

// HotStatic uses a non-capturing literal: compiled statically, clean.
//
//memsnap:hotpath
func HotStatic() {
	f := func(a int) int { return a + 1 }
	sinkInt = f(1)
}

// HotWithColdEdge calls into an annotated cold boundary: the traversal
// stops there, so slowRecover's allocation is not hot.
//
//memsnap:hotpath
func HotWithColdEdge(k int) {
	if k < 0 {
		slowRecover(k)
	}
	sinkInt = step(k)
}

// slowRecover allocates freely but is off the steady-state path.
//
//memsnap:coldpath
func slowRecover(k int) {
	sinkBytes = make([]byte, k)
}

// flusher models an interface edge the CHA step must resolve.
type flusher interface{ flush(n int) }

type cleanFlusher struct{ buf []byte }

func (c *cleanFlusher) flush(n int) { c.buf = c.buf[:0] }

type dirtyFlusher struct{}

func (dirtyFlusher) flush(n int) {
	sinkBytes = make([]byte, n) // want `make allocates`
}

// HotIface dispatches through the interface: every module
// implementation becomes hot.
//
//memsnap:hotpath
func HotIface(f flusher, n int) { f.flush(n) }

// HotAllowed is the suppressed twin of HotDirect's make.
//
//memsnap:hotpath
func HotAllowed(k int) {
	sinkBytes = make([]byte, k) //lint:allow hotalloc fixture: proves suppression works
}
