// Fixture for the faultpath analyzer's charge-discipline check: this
// package stands in for a simulated hardware type (disk.Device,
// disk.Array, replica.Link) whose exported methods must charge
// virtual time before touching backing state.
package faultdev

import (
	"time"

	"memsnap/internal/sim"
)

// simBuf is the backing state behind the device model.
type simBuf struct{ data []byte }

func (b *simBuf) readAt(off int64, buf []byte)  { copy(buf, b.data[off:]) }
func (b *simBuf) writeAt(off int64, buf []byte) { copy(b.data[off:], buf) }

// SimDev is registered in the analyzer's chargeBacking table with
// backing field "backing".
type SimDev struct {
	costs   *sim.CostModel
	backing *simBuf
}

// Submit charges through its at parameter: the caller's virtual
// timestamp prices the operation.
func (d *SimDev) Submit(at time.Duration, off int64, buf []byte) time.Duration {
	d.backing.writeAt(off, buf)
	return at + d.costs.DiskBaseLatency
}

// Tick charges through a *sim.Clock parameter.
func (d *SimDev) Tick(clk *sim.Clock, off int64, buf []byte) {
	clk.Advance(d.costs.DiskBaseLatency)
	d.backing.readAt(off, buf)
}

// Charged consults the cost model before touching backing state.
func (d *SimDev) Charged(off int64, buf []byte) time.Duration {
	cost := d.costs.TransferCost(len(buf))
	d.backing.readAt(off, buf)
	return cost
}

// Drain reads backing state with no virtual-time accounting at all.
func (d *SimDev) Drain(off int64, buf []byte) { // want `touches backing device state without charging virtual time`
	d.backing.readAt(off, buf)
}

// Reset assigns the backing field itself — also a touch.
func (d *SimDev) Reset() { // want `touches backing device state without charging virtual time`
	d.backing = &simBuf{}
}

// Backwards consults the cost model only after the touch: the access
// itself ran for free.
func (d *SimDev) Backwards(off int64, buf []byte) time.Duration { // want `touches backing device state without charging virtual time`
	d.backing.readAt(off, buf)
	return d.costs.DiskBaseLatency
}

// unexported internals are what the charged exported API wraps.
func (d *SimDev) drainLocked(off int64, buf []byte) {
	d.backing.readAt(off, buf)
}

// Peek is the suppressed twin of Drain.
//
//lint:allow faultpath fixture: proves suppression works
func (d *SimDev) Peek(off int64, buf []byte) {
	d.backing.readAt(off, buf)
}

// use keeps the unexported helper referenced.
var _ = (*SimDev).drainLocked
