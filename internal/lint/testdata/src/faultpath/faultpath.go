// Fixture for the faultpath analyzer: this package stands in for a
// client (litedb, pgdb, rockskv, shard, objstore) that must reach
// region memory only through the vm.Thread access API.
package faultpath

import (
	"memsnap/internal/mem"
	"memsnap/internal/sim"
	"memsnap/internal/vm"
)

func bad(pm *mem.PhysMem, clk *sim.Clock) {
	pg := pm.Alloc(clk)         // want `\(\*mem\.PhysMem\)\.Alloc bypasses the simulated MMU`
	data := pm.Data(pg.Frame()) // want `\(\*mem\.PhysMem\)\.Data bypasses the simulated MMU`
	data[0] = 1
	dup := pm.Copy(clk, pg)  // want `\(\*mem\.PhysMem\)\.Copy bypasses the simulated MMU`
	_ = pm.Page(dup.Frame()) // want `\(\*mem\.PhysMem\)\.Page bypasses the simulated MMU`
	pm.Free(dup)             // want `\(\*mem\.PhysMem\)\.Free bypasses the simulated MMU`
}

// Method values bypass just as effectively as calls.
func badMethodValue(pm *mem.PhysMem) func(mem.Frame) []byte {
	return pm.Data // want `\(\*mem\.PhysMem\)\.Data bypasses the simulated MMU`
}

// The sanctioned route: every access goes through the thread so minor
// faults fire and the dirty set stays sound.
func ok(t *vm.Thread, addr uint64) byte {
	t.Write(addr, []byte{42})
	buf := make([]byte, 1)
	t.Read(addr, buf)
	return buf[0]
}

// Constructing a PhysMem is not frame access; wiring one into an
// address space is how systems boot.
func okConstruct(costs *sim.CostModel) *mem.PhysMem {
	pm := mem.New(costs)
	_ = pm.Stats()
	return pm
}

// The escape hatch: suppressed twin of bad().
func suppressed(pm *mem.PhysMem) []byte {
	return pm.Data(0) //lint:allow faultpath fixture: proves suppression works
}

// A chaos schedule handler: a fault callback fired at a virtual
// instant. Handlers inject faults through charged, clock-carrying
// APIs; reaching into frames behind the MMU would mutate state no
// device ever paid latency for.
func badScheduleHandler(pm *mem.PhysMem, clk *sim.Clock) {
	pg := pm.Alloc(clk)        // want `\(\*mem\.PhysMem\)\.Alloc bypasses the simulated MMU`
	buf := pm.Data(pg.Frame()) // want `\(\*mem\.PhysMem\)\.Data bypasses the simulated MMU`
	for i := range buf {
		buf[i] = 0xff
	}
}

// The sanctioned handler shape: corrupt state only through the access
// API, which fires faults and keeps the dirty set sound.
func okScheduleHandler(t *vm.Thread, addr uint64) {
	t.Write(addr, []byte{0xff})
}

// Suppressed twin of badScheduleHandler.
func suppressedScheduleHandler(pm *mem.PhysMem, clk *sim.Clock) {
	pm.Free(pm.Alloc(clk)) //lint:allow faultpath fixture: schedule-handler suppression twin
}
