// Fixture for the poolown analyzer: BufPool/Buf stand in for
// pool.PagePool/pool.Page and RC for the refcounted replica.Delta;
// all three are registered in the analyzer's acquire/release table.
// Every Get must reach a Put/Release on every path, and pooled values
// escape (return, store, channel send) only through //memsnap:owns
// functions.
package poolown

import "errors"

var errFixture = errors.New("fixture")

// Buf is a pooled buffer (test double for pool.Page).
type Buf struct{ data []byte }

// Release returns the buffer to its pool.
func (b *Buf) Release() { b.data = b.data[:0] }

// BufPool is a freelist (test double for pool.PagePool).
type BufPool struct{ free []*Buf }

// Get hands out a buffer the caller must Release or Put back.
//
//memsnap:owns
func (p *BufPool) Get() *Buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &Buf{}
}

// Put returns a buffer to the freelist.
func (p *BufPool) Put(b *Buf) { p.free = append(p.free, b) }

// RC is a refcounted handle (test double for replica.Delta).
type RC struct{ refs int }

// Acquire adds a reference.
func (r *RC) Acquire() { r.refs++ }

// Release drops one.
func (r *RC) Release() { r.refs-- }

func use(b *Buf) {}

// LeakOnError releases on success but not on the early error return.
func LeakOnError(p *BufPool, fail bool) error {
	b := p.Get() // want `pooled buffer acquired here is not released on every path`
	if fail {
		return errFixture
	}
	b.Release()
	return nil
}

// CleanDeferred is the deferred twin: settled on every exit.
func CleanDeferred(p *BufPool, fail bool) error {
	b := p.Get()
	defer b.Release()
	if fail {
		return errFixture
	}
	use(b)
	return nil
}

// CleanBothArms releases explicitly on each path, one arm via Put.
func CleanBothArms(p *BufPool, fail bool) {
	b := p.Get()
	if fail {
		p.Put(b)
		return
	}
	b.Release()
}

// DropLeak discards the acquire result outright.
func DropLeak(p *BufPool) {
	p.Get() // want `pooled buffer acquired here is not released on every path`
}

// DropAllowed is the suppressed twin of DropLeak.
func DropAllowed(p *BufPool) {
	p.Get() //lint:allow poolown fixture: proves suppression works
}

// LoopLeak reacquires every iteration but releases only after the
// loop: all but the final buffer are lost.
func LoopLeak(p *BufPool, n int) {
	var b *Buf
	for i := 0; i < n; i++ {
		b = p.Get() // want `pooled buffer acquired here is not released on every path`
	}
	if b != nil {
		b.Release()
	}
}

// CleanLoop releases within the iteration that acquired.
func CleanLoop(p *BufPool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get()
		use(b)
		b.Release()
	}
}

type holder struct{ b *Buf }

// StoreLeak parks a pooled buffer in a longer-lived struct with no
// ownership annotation.
func StoreLeak(p *BufPool, h *holder) {
	b := p.Get()
	h.b = b // want `pooled buffer escapes via store into a longer-lived structure`
}

// StoreOwned is the annotated twin: callers know h takes the buffer.
//
//memsnap:owns
func StoreOwned(p *BufPool, h *holder) {
	b := p.Get()
	h.b = b
}

// ReturnLeak hands the buffer to its caller with no annotation.
func ReturnLeak(p *BufPool) *Buf {
	b := p.Get()
	return b // want `pooled buffer escapes via return`
}

// Borrow is the annotated twin: ownership transfers up the stack.
//
//memsnap:owns
func Borrow(p *BufPool) *Buf {
	return p.Get()
}

// ship takes ownership of b and releases it downstream.
//
//memsnap:owns
func ship(b *Buf) { b.Release() }

// CleanTransfer discharges its obligation by handing the buffer to an
// owns-annotated function.
func CleanTransfer(p *BufPool) {
	b := p.Get()
	ship(b)
}

// QueueLeak enqueues a pooled buffer with no ownership annotation.
func QueueLeak(p *BufPool, ch chan *Buf) {
	b := p.Get()
	ch <- b // want `pooled buffer escapes via channel send`
}

// QueueOwned is the annotated twin: the consumer owns the buffer.
//
//memsnap:owns
func QueueOwned(p *BufPool, ch chan *Buf) {
	b := p.Get()
	ch <- b
}

// RetainLeak takes a reference it never drops.
func RetainLeak(r *RC) {
	r.Acquire() // want `refcounted handle acquired here is not released on every path`
}

// CleanRetain pairs the reference.
func CleanRetain(r *RC) {
	r.Acquire()
	r.Release()
}

// DoubleRetainSingleRelease leaves one reference outstanding.
func DoubleRetainSingleRelease(r *RC) {
	r.Acquire() // want `refcounted handle acquired here is not released on every path`
	r.Acquire()
	r.Release()
}

// RetainAllowed is the suppressed twin of RetainLeak.
func RetainAllowed(r *RC) {
	r.Acquire() //lint:allow poolown fixture: proves suppression works
}
