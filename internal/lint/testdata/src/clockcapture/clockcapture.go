// Fixture for the clockcapture analyzer.
package clockcapture

import "memsnap/internal/sim"

// A goroutine closure capturing an enclosing *sim.Clock violates the
// per-thread ownership rule of internal/sim/clock.go.
func bad() {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func() {
		clk.Advance(5) // want `goroutine closure captures \*sim\.Clock "clk"`
		close(done)
	}()
	<-done
	clk.Advance(1)
}

// Passing the clock as an explicit goroutine parameter transfers
// ownership visibly at the spawn site: allowed.
func okParam() {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func(c *sim.Clock) {
		c.Advance(5)
		close(done)
	}(clk)
	<-done
}

// A clock created inside the goroutine is owned by it: allowed.
func okLocal() {
	done := make(chan struct{})
	go func() {
		clk := sim.NewClock()
		clk.Advance(5)
		close(done)
	}()
	<-done
}

// Capture inside a nested literal is still a capture.
func badNested() {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func() {
		f := func() { clk.Advance(5) } // want `goroutine closure captures \*sim\.Clock "clk"`
		f()
		close(done)
	}()
	<-done
	clk.Advance(1)
}

// The escape hatch: suppressed twin of bad().
func suppressed() {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func() {
		clk.Advance(5) //lint:allow clockcapture fixture: proves suppression works
		close(done)
	}()
	<-done
	clk.Advance(1)
}
