// Fixture for the clockcapture analyzer.
package clockcapture

import "memsnap/internal/sim"

// A goroutine closure capturing an enclosing *sim.Clock violates the
// per-thread ownership rule of internal/sim/clock.go.
func bad() {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func() {
		clk.Advance(5) // want `goroutine closure captures \*sim\.Clock "clk"`
		close(done)
	}()
	<-done
	clk.Advance(1)
}

// Passing the clock as an explicit goroutine parameter transfers
// ownership visibly at the spawn site: allowed.
func okParam() {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func(c *sim.Clock) {
		c.Advance(5)
		close(done)
	}(clk)
	<-done
}

// A clock created inside the goroutine is owned by it: allowed.
func okLocal() {
	done := make(chan struct{})
	go func() {
		clk := sim.NewClock()
		clk.Advance(5)
		close(done)
	}()
	<-done
}

// Capture inside a nested literal is still a capture.
func badNested() {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func() {
		f := func() { clk.Advance(5) } // want `goroutine closure captures \*sim\.Clock "clk"`
		f()
		close(done)
	}()
	<-done
	clk.Advance(1)
}

// Now and AdvanceTo are the clock's documented atomic cross-goroutine
// operations (internal/sim/clock.go): a captured clock used only as
// their receiver is allowed — the observability-boundary pattern.
func okAtomicNow(t int64) {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func() {
		_ = clk.Now()
		clk.AdvanceTo(5)
		close(done)
	}()
	<-done
}

// The exemption is per-use: the same captured clock calling a
// non-atomic method is still reported, even with an atomic read as the
// argument.
func badMixed() {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func() {
		clk.Advance(clk.Now()) // want `goroutine closure captures \*sim\.Clock "clk"`
		close(done)
	}()
	<-done
	clk.Advance(1)
}

// The exemption also covers clocks reached through struct fields —
// the shape of a server closure stamping s.src.Clock.Now().
type clockHolder struct {
	Clock *sim.Clock
}

func okFieldNow(h clockHolder) {
	done := make(chan struct{})
	go func() {
		_ = h.Clock.Now()
		close(done)
	}()
	<-done
}

// A struct-field clock used non-atomically in a goroutine is still a
// capture.
func badFieldAdvance(h clockHolder) {
	done := make(chan struct{})
	go func() {
		h.Clock.Advance(5) // want `goroutine closure captures \*sim\.Clock "Clock"`
		close(done)
	}()
	<-done
}

// The escape hatch: suppressed twin of bad().
func suppressed() {
	clk := sim.NewClock()
	done := make(chan struct{})
	go func() {
		clk.Advance(5) //lint:allow clockcapture fixture: proves suppression works
		close(done)
	}()
	<-done
	clk.Advance(1)
}
