// Fixture for the walltime analyzer in observability-recorder shape:
// event timestamps must come from a virtual sim.Clock, never the wall
// clock, or drained traces stop being deterministic.
package obsring

import (
	"time"

	"memsnap/internal/sim"
)

// event is a miniature obs.Event: one ring slot with a virtual
// timestamp.
type event struct {
	at  time.Duration
	arg int64
}

// recorder is a miniature ring recorder.
type recorder struct {
	ring []event
	next int
}

// badRecord stamps the event with the wall clock: flagged.
func (r *recorder) badRecord(arg int64) {
	at := time.Duration(time.Now().UnixNano()) // want `time\.Now reads the wall clock`
	r.ring[r.next] = event{at: at, arg: arg}
	r.next = (r.next + 1) % len(r.ring)
}

// allowedRecord is badRecord's suppressed twin.
func (r *recorder) allowedRecord(arg int64) {
	at := time.Duration(time.Now().UnixNano()) //lint:allow walltime fixture: proves suppression works
	r.ring[r.next] = event{at: at, arg: arg}
	r.next = (r.next + 1) % len(r.ring)
}

// okRecord stamps the event with virtual time read from the caller's
// clock: the pattern internal/obs uses.
func (r *recorder) okRecord(clk *sim.Clock, arg int64) {
	r.ring[r.next] = event{at: clk.Now(), arg: arg}
	r.next = (r.next + 1) % len(r.ring)
}

// badWait polls with a wall-clock sleep: flagged.
func (r *recorder) badWait() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}
