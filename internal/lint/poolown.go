package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolOwn enforces the pooled-value lifecycle discipline that the
// zero-alloc hot paths depend on: every pool Get must reach its Put or
// Release on every return path (error and early returns included),
// every refcounted delta retain must pair with a release, and pooled
// values may only escape their acquiring function — returned, stored
// into a struct or slice, sent on a channel — through a function
// annotated //memsnap:owns, which documents the ownership transfer.
// Annotated functions themselves are trusted manual-ownership zones
// (they move pooled values through containers the binding-based
// walker cannot follow) and are skipped, not checked.
//
// The check is an intraprocedural abstract walk over each function
// body: acquires bind an obligation to the receiving variable,
// releases discharge it, branches analyze both arms and keep an
// obligation live if either arm leaves it live (release must happen on
// ALL paths), and loops require obligations acquired inside an
// iteration to be discharged before the iteration ends. A `defer
// v.Release()` (directly or inside a deferred closure) settles the
// variable for every exit. Passing a pooled value to an ordinary
// function is a borrow and carries no obligation either way.
//
// Known limitations, by design: functions containing goto are skipped;
// variables captured by non-deferred closures are treated as settled
// (their lifecycle moved out of scope); and releases of values acquired
// in another function are ignored rather than matched (the pipeline
// hand-off pattern — retain here, release in the receiving loop — is
// legalized by //memsnap:owns at the hand-off and checked structurally
// at both ends).
var PoolOwn = &Analyzer{
	Name:       "poolown",
	Doc:        "pooled Get/retain must reach Put/Release on every path; pooled values escape only via //memsnap:owns functions",
	RunProgram: runPoolOwn,
}

// ownRelease names one accepted release call for an acquire API: the
// funcKey plus where the pooled value is passed (arg index, or -1 for
// the method receiver).
type ownRelease struct {
	key string
	arg int
}

// ownAPI describes one acquire entry point.
type ownAPI struct {
	// what names the pooled value in diagnostics.
	what string
	// refcount acquires stack (retain/retain/release/release);
	// plain acquires are single-shot.
	refcount bool
	// onRecv acquires bind the obligation to the method receiver
	// (retain-style) instead of to a result value.
	onRecv bool
	// result is the index of the pooled value among the call's results
	// (value acquires only).
	result   int
	releases []ownRelease
}

// poolAPIs is the acquire/release registry, keyed by funcKey. The
// lintfixtures entries are test doubles for the fixture packages,
// mirroring faultpath's faultdev registry pattern.
var poolAPIs = map[string]*ownAPI{
	"memsnap/internal/pool.(PagePool).Get": {what: "pooled page", releases: []ownRelease{
		{"memsnap/internal/pool.(Page).Release", -1},
	}},
	"memsnap/internal/pool.(SlicePool).Get": {what: "pooled slice", releases: []ownRelease{
		{"memsnap/internal/pool.(SlicePool).Put", 0},
	}},
	"memsnap/internal/core.GetCommittedPages": {what: "committed-page slice", releases: []ownRelease{
		{"memsnap/internal/core.ReleasePages", 0},
		{"memsnap/internal/core.RecyclePageSlice", 0},
	}},
	"memsnap/internal/disk.getOldBuf": {what: "old-data buffer", releases: []ownRelease{
		{"memsnap/internal/pool.(Page).Release", -1},
	}},
	"memsnap/internal/replica.(Delta).retain": {what: "delta reference", refcount: true, onRecv: true, releases: []ownRelease{
		{"memsnap/internal/replica.(Delta).release", -1},
	}},

	"memsnap/internal/lintfixtures/poolown.(BufPool).Get": {what: "pooled buffer", releases: []ownRelease{
		{"memsnap/internal/lintfixtures/poolown.(Buf).Release", -1},
		{"memsnap/internal/lintfixtures/poolown.(BufPool).Put", 0},
	}},
	"memsnap/internal/lintfixtures/poolown.(RC).Acquire": {what: "refcounted handle", refcount: true, onRecv: true, releases: []ownRelease{
		{"memsnap/internal/lintfixtures/poolown.(RC).Release", -1},
	}},
}

// releaseMatches reports whether key at position arg releases api.
func releaseMatches(api *ownAPI, key string, arg int) bool {
	for _, r := range api.releases {
		if r.key == key && r.arg == arg {
			return true
		}
	}
	return false
}

// anyReleaseKey reports whether key is a release entry point of any
// registered API, returning the argument position.
func anyReleaseKey(key string) (int, bool) {
	for _, api := range poolAPIs {
		for _, r := range api.releases {
			if r.key == key {
				return r.arg, true
			}
		}
	}
	return 0, false
}

// obligation is one live acquire awaiting its release.
type obligation struct {
	api *ownAPI
	// site is the acquire expression, where leaks are reported.
	site ast.Node
	// count is the outstanding reference count (1 for plain acquires).
	count int
	// depth is the loop-nesting depth at acquire time; obligations with
	// depth >= the current loop's depth were acquired this iteration.
	depth int
}

// ownState maps each bound variable to its live obligation.
type ownState map[*types.Var]*obligation

func (st ownState) clone() ownState {
	out := make(ownState, len(st))
	for v, ob := range st {
		c := *ob
		out[v] = &c
	}
	return out
}

// mergeOwn joins two branch results: an obligation live in either arm
// stays live (release is required on ALL paths), and refcounts keep
// the larger outstanding count.
func mergeOwn(a, b ownState) ownState {
	out := a
	for v, ob := range b {
		if cur, ok := out[v]; !ok || ob.count > cur.count {
			out[v] = ob
		}
	}
	return out
}

func runPoolOwn(pass *ProgramPass) {
	for _, node := range pass.Prog.Funcs() {
		// //memsnap:owns functions are manual-ownership zones: they
		// move pooled values through containers and hand-offs the
		// binding-based walker cannot follow, so they are trusted
		// rather than checked.
		if node.File.Test || node.Owns {
			continue
		}
		w := &poolWalker{
			pass:     pass,
			prog:     pass.Prog,
			node:     node,
			info:     node.Pkg.Info,
			settled:  map[*types.Var]bool{},
			reported: map[token.Pos]bool{},
		}
		w.run()
	}
}

// poolWalker analyzes one function body.
type poolWalker struct {
	pass     *ProgramPass
	prog     *Program
	node     *FuncNode
	info     *types.Info
	settled  map[*types.Var]bool
	reported map[token.Pos]bool
	depth    int
}

func (w *poolWalker) run() {
	body := w.node.Decl.Body
	if containsGoto(body) {
		return
	}
	w.prescanDefers(body)
	st, terminated := w.stmts(body.List, ownState{})
	if !terminated {
		w.leakCheck(st, 0)
	}
}

func (w *poolWalker) reportAt(n ast.Node, format string, args ...any) {
	if w.reported[n.Pos()] {
		return
	}
	w.reported[n.Pos()] = true
	w.pass.Reportf(w.node.Pkg, n, format, args...)
}

// leakCheck reports every obligation still live that was acquired at
// loop depth >= minDepth (0 checks everything).
func (w *poolWalker) leakCheck(st ownState, minDepth int) {
	for v, ob := range st {
		if w.settled[v] || ob.count <= 0 || ob.depth < minDepth {
			continue
		}
		w.leakAt(ob)
	}
}

func (w *poolWalker) leakAt(ob *obligation) {
	w.reportAt(ob.site,
		"%s acquired here is not released on every path (pair the acquire with its Put/Release on all returns, or hand ownership to a //memsnap:owns function)",
		ob.api.what)
}

// escape handles a pooled value leaving the function's frame: legal
// when permitted (the enclosing or receiving function is annotated
// //memsnap:owns), a diagnostic otherwise. Either way the obligation
// is discharged so it is not re-reported as a leak.
func (w *poolWalker) escape(st ownState, v *types.Var, site ast.Node, via string, permitted bool) {
	ob := st[v]
	if ob == nil || w.settled[v] {
		return
	}
	delete(st, v)
	if permitted {
		return
	}
	w.reportAt(site,
		"%s escapes via %s without an ownership transfer (annotate the receiving function //memsnap:owns, or release before this point)",
		ob.api.what, via)
}

// release discharges one reference of v's obligation.
func (w *poolWalker) release(st ownState, v *types.Var) {
	ob := st[v]
	if ob == nil {
		return
	}
	ob.count--
	if ob.count <= 0 {
		delete(st, v)
	}
}

func (w *poolWalker) varOf(id *ast.Ident) *types.Var {
	v, _ := w.info.Uses[id].(*types.Var)
	return v
}

// stmts walks a statement list. The returned bool reports that control
// cannot fall off the end (return/break/continue on every path so far).
func (w *poolWalker) stmts(list []ast.Stmt, st ownState) (ownState, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *poolWalker) stmt(s ast.Stmt, st ownState) (ownState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(s.X, st)
	case *ast.AssignStmt:
		w.assign(s, st)
	case *ast.DeclStmt:
		w.declStmt(s, st)
	case *ast.ReturnStmt:
		w.ret(s, st)
		return st, true
	case *ast.DeferStmt:
		// Releases inside defers were credited by the pre-scan; the
		// call itself does not run here.
	case *ast.GoStmt:
		// A goroutine's lifecycle is out of scope: captured pooled
		// values are settled rather than tracked (see the analyzer doc).
		w.settleCaptured(s, st)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, st)
		if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok {
			if v := w.varOf(id); v != nil && st[v] != nil {
				w.escape(st, v, s, "channel send", w.node.Owns)
				break
			}
		}
		w.scanExpr(s.Value, st)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, st)
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		return w.ifStmt(s, st)
	case *ast.ForStmt:
		return w.forStmt(s, st)
	case *ast.RangeStmt:
		return w.rangeStmt(s, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, st)
		}
		return w.caseClauses(s.Body, st, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st, _ = w.stmt(s.Assign, st)
		return w.caseClauses(s.Body, st, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		// Exactly one comm clause runs; merge every non-terminating arm.
		return w.caseClauses(s.Body, st, true)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			// The iteration ends here: anything acquired inside the
			// loop body is gone.
			w.leakCheck(st, w.depth)
		}
		// break may target a switch or a loop; skipping the check there
		// trades a missed leak for zero false positives.
		return st, true
	}
	return st, false
}

func (w *poolWalker) ifStmt(s *ast.IfStmt, st ownState) (ownState, bool) {
	if s.Init != nil {
		st, _ = w.stmt(s.Init, st)
	}
	w.scanExpr(s.Cond, st)
	thenSt, thenTerm := w.stmts(s.Body.List, st.clone())
	elseSt, elseTerm := st, false
	if s.Else != nil {
		elseSt, elseTerm = w.stmt(s.Else, st.clone())
	}
	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseSt, false
	case elseTerm:
		return thenSt, false
	default:
		return mergeOwn(thenSt, elseSt), false
	}
}

func (w *poolWalker) forStmt(s *ast.ForStmt, st ownState) (ownState, bool) {
	if s.Init != nil {
		st, _ = w.stmt(s.Init, st)
	}
	if s.Cond != nil {
		w.scanExpr(s.Cond, st)
	}
	w.depth++
	bodySt, terminated := w.stmts(s.Body.List, st.clone())
	if !terminated && s.Post != nil {
		bodySt, _ = w.stmt(s.Post, bodySt)
	}
	// Obligations acquired during the iteration must be discharged by
	// its end — the next iteration cannot see them.
	if !terminated {
		w.leakCheck(bodySt, w.depth)
	}
	w.depth--
	bodySt = dropDeeper(bodySt, w.depth)
	// The loop may run zero times: the pre-loop state stays reachable.
	return mergeOwn(bodySt, st), false
}

func (w *poolWalker) rangeStmt(s *ast.RangeStmt, st ownState) (ownState, bool) {
	w.scanExpr(s.X, st)
	w.depth++
	bodySt, terminated := w.stmts(s.Body.List, st.clone())
	if !terminated {
		w.leakCheck(bodySt, w.depth)
	}
	w.depth--
	bodySt = dropDeeper(bodySt, w.depth)
	return mergeOwn(bodySt, st), false
}

// dropDeeper removes obligations acquired at loop depth > depth (they
// were already leak-checked at the iteration boundary).
func dropDeeper(st ownState, depth int) ownState {
	for v, ob := range st {
		if ob.depth > depth {
			delete(st, v)
		}
	}
	return st
}

// caseClauses walks each clause body against a copy of st and merges
// the non-terminating results; without a default clause the pre-switch
// state stays reachable too.
func (w *poolWalker) caseClauses(body *ast.BlockStmt, st ownState, exhaustive bool) (ownState, bool) {
	var merged ownState
	allTerminated := true
	for _, c := range body.List {
		var list []ast.Stmt
		clauseSt := st.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, st)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				clauseSt, _ = w.stmt(c.Comm, clauseSt)
			}
			list = c.Body
		default:
			continue
		}
		out, terminated := w.stmts(list, clauseSt)
		if terminated {
			continue
		}
		allTerminated = false
		if merged == nil {
			merged = out
		} else {
			merged = mergeOwn(merged, out)
		}
	}
	if !exhaustive {
		allTerminated = false
		if merged == nil {
			merged = st
		} else {
			merged = mergeOwn(merged, st)
		}
	}
	if allTerminated {
		return st, true
	}
	if merged == nil {
		merged = st
	}
	return merged, false
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// ret handles a return statement: returning a pooled value is an
// ownership transfer to the caller and needs //memsnap:owns; then every
// obligation still live leaks.
func (w *poolWalker) ret(s *ast.ReturnStmt, st ownState) {
	for _, e := range s.Results {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v := w.varOf(x); v != nil && st[v] != nil {
				w.escape(st, v, s, "return", w.node.Owns)
				continue
			}
		case *ast.CallExpr:
			if api := w.call(x, st); api != nil {
				if !w.node.Owns {
					w.reportAt(x,
						"%s is acquired and returned by a function not annotated //memsnap:owns (the caller cannot know it must release)",
						api.what)
				}
				continue
			}
		default:
			w.scanExpr(e, st)
		}
	}
	w.leakCheck(st, 0)
}

// assign handles bindings, rebindings and stores.
func (w *poolWalker) assign(s *ast.AssignStmt, st ownState) {
	// Single call on the right: a potential acquire to bind.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			api := w.call(call, st)
			if api != nil {
				w.bind(s.Lhs, api, call, st)
			} else {
				w.storeTargets(s.Lhs, st)
			}
			return
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			w.assignOne(s.Lhs[i], s.Rhs[i], s.Tok, st)
		}
		return
	}
	for _, e := range s.Rhs {
		w.scanExpr(e, st)
	}
	w.storeTargets(s.Lhs, st)
}

// assignOne handles one lhs = rhs pair outside the acquire case.
func (w *poolWalker) assignOne(lhs, rhs ast.Expr, tok token.Token, st ownState) {
	if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if v := w.varOf(id); v != nil && st[v] != nil {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				if l.Name == "_" {
					return
				}
				// Aliasing: the obligation follows the new name.
				var nv *types.Var
				if tok == token.DEFINE {
					nv, _ = w.info.Defs[l].(*types.Var)
				} else {
					nv = w.varOf(l)
				}
				if nv != nil && nv != v {
					st[nv] = st[v]
					delete(st, v)
				}
			default:
				// Stored into a field, slice element or map: the value
				// now outlives the frame.
				w.escape(st, v, lhs, "store into a longer-lived structure", w.node.Owns)
			}
			return
		}
	}
	w.scanExpr(rhs, st)
}

// bind attaches a fresh obligation from an acquire call to its
// left-hand side.
func (w *poolWalker) bind(lhs []ast.Expr, api *ownAPI, call *ast.CallExpr, st ownState) {
	if api.result >= len(lhs) {
		w.leakAt(&obligation{api: api, site: call, count: 1})
		return
	}
	switch l := ast.Unparen(lhs[api.result]).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			w.leakAt(&obligation{api: api, site: call, count: 1})
			return
		}
		var v *types.Var
		if d, ok := w.info.Defs[l].(*types.Var); ok {
			v = d
		} else {
			v = w.varOf(l)
		}
		if v == nil {
			return
		}
		if old := st[v]; old != nil && !w.settled[v] {
			// Rebinding before release loses the old value.
			w.leakAt(old)
		}
		st[v] = &obligation{api: api, site: call, count: 1, depth: w.depth}
	default:
		// Acquired straight into a field or element: an immediate
		// escape.
		if !w.node.Owns {
			w.reportAt(call,
				"%s is acquired directly into a longer-lived structure by a function not annotated //memsnap:owns",
				api.what)
		}
	}
}

// storeTargets scans non-ident assignment targets for nested events
// (index expressions may contain calls).
func (w *poolWalker) storeTargets(lhs []ast.Expr, st ownState) {
	for _, l := range lhs {
		if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			w.scanExpr(ix.Index, st)
		}
	}
}

// declStmt handles `var v = pool.Get()` bindings.
func (w *poolWalker) declStmt(s *ast.DeclStmt, st ownState) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 {
			if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
				if api := w.call(call, st); api != nil {
					if api.result < len(vs.Names) {
						if v, ok := w.info.Defs[vs.Names[api.result]].(*types.Var); ok {
							st[v] = &obligation{api: api, site: call, count: 1, depth: w.depth}
							continue
						}
					}
					w.leakAt(&obligation{api: api, site: call, count: 1})
				}
				continue
			}
		}
		for _, e := range vs.Values {
			w.scanExpr(e, st)
		}
	}
}

// scanExpr walks an expression for events: calls (acquires whose
// result is dropped leak immediately), composite literals capturing
// pooled values (escapes), and closures capturing them (settled).
func (w *poolWalker) scanExpr(e ast.Expr, st ownState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if api := w.call(x, st); api != nil {
				// A value acquire in a discarding context.
				w.leakAt(&obligation{api: api, site: x, count: 1})
			}
			return false // w.call scanned the arguments
		case *ast.CompositeLit:
			w.compositeEscapes(x, st, w.node.Owns)
			return true
		case *ast.FuncLit:
			w.settleCaptured(x, st)
			return false
		}
		return true
	})
}

// compositeEscapes treats pooled values placed in composite literals
// as escapes: the literal usually outlives the frame (returned,
// stored, queued), and tracking it further is out of scope.
func (w *poolWalker) compositeEscapes(lit *ast.CompositeLit, st ownState, permitted bool) {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		if id, ok := ast.Unparen(el).(*ast.Ident); ok {
			if v := w.varOf(id); v != nil && st[v] != nil {
				w.escape(st, v, id, "composite literal", permitted)
			}
		}
	}
}

// settleCaptured marks every tracked variable referenced inside n as
// settled: a closure or goroutine took over its lifecycle.
func (w *poolWalker) settleCaptured(n ast.Node, st ownState) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v := w.varOf(id); v != nil && st[v] != nil {
				w.settled[v] = true
			}
		}
		return true
	})
}

// call processes one call expression's events — receiver retains and
// releases, argument releases, ownership transfers, borrowed uses —
// and returns the API when the call is a value acquire whose result
// the caller should bind (nil otherwise).
func (w *poolWalker) call(call *ast.CallExpr, st ownState) *ownAPI {
	fun := ast.Unparen(call.Fun)

	// A conversion, not a call.
	if tv, ok := w.info.Types[fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.scanExpr(a, st)
		}
		return nil
	}

	var key string
	var calleeOwns bool
	for _, fn := range staticCallTarget(w.info, fun) {
		key = funcKey(fn)
		if n := w.prog.FuncByKey(key); n != nil {
			calleeOwns = n.Owns
		}
	}
	api := poolAPIs[key]

	// Builtin append aliases its trailing arguments into the slice.
	isAppend := false
	if id, ok := fun.(*ast.Ident); ok {
		if b, okb := w.info.Uses[id].(*types.Builtin); okb {
			isAppend = b.Name() == "append"
		}
	}

	// Receiver events: retain-style acquires and receiver releases.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if v := w.varOf(id); v != nil {
				if api != nil && api.onRecv {
					if ob := st[v]; ob != nil && ob.api == api {
						ob.count++
					} else {
						st[v] = &obligation{api: api, site: call, count: 1, depth: w.depth}
					}
				} else if ob := st[v]; ob != nil && releaseMatches(ob.api, key, -1) {
					w.release(st, v)
				}
			}
		}
	}

	for i, a := range call.Args {
		switch arg := ast.Unparen(a).(type) {
		case *ast.Ident:
			v := w.varOf(arg)
			if v == nil || st[v] == nil {
				continue
			}
			switch {
			case releaseMatches(st[v].api, key, i):
				w.release(st, v)
			case calleeOwns:
				// Explicit ownership transfer.
				delete(st, v)
			case isAppend && i > 0:
				w.escape(st, v, call, "append", w.node.Owns)
			default:
				// Borrowed for the duration of the call.
			}
		case *ast.CallExpr:
			if innerAPI := w.call(arg, st); innerAPI != nil && !calleeOwns {
				w.leakAt(&obligation{api: innerAPI, site: arg, count: 1})
			}
		case *ast.CompositeLit:
			w.compositeEscapes(arg, st, calleeOwns || w.node.Owns)
		case *ast.UnaryExpr:
			if arg.Op == token.AND {
				if lit, ok := ast.Unparen(arg.X).(*ast.CompositeLit); ok {
					w.compositeEscapes(lit, st, calleeOwns || w.node.Owns)
					continue
				}
			}
			w.scanExpr(a, st)
		default:
			w.scanExpr(a, st)
		}
	}

	if api != nil && !api.onRecv {
		return api
	}
	return nil
}

// prescanDefers settles every variable released by a defer — directly
// (`defer v.Release()`) or inside a deferred closure.
func (w *poolWalker) prescanDefers(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		w.settleIfRelease(d.Call)
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					w.settleIfRelease(c)
				}
				return true
			})
		}
		return false
	})
}

// settleIfRelease marks the subject variable of a release call settled.
func (w *poolWalker) settleIfRelease(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	var key string
	for _, fn := range staticCallTarget(w.info, fun) {
		key = funcKey(fn)
	}
	arg, ok := anyReleaseKey(key)
	if !ok {
		return
	}
	var subject ast.Expr
	if arg == -1 {
		sel, ok := fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		subject = sel.X
	} else if arg < len(call.Args) {
		subject = call.Args[arg]
	}
	if subject == nil {
		return
	}
	if id, ok := ast.Unparen(subject).(*ast.Ident); ok {
		if v := w.varOf(id); v != nil {
			w.settled[v] = true
		}
	}
}

// containsGoto reports whether the body uses goto (the walker's
// block-structured abstraction cannot model it; such functions are
// skipped).
func containsGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}
