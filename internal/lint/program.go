package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file grows the suite from per-file AST rules to whole-program
// analysis: a Program aggregates every loaded package, indexes every
// function declaration under a stable cross-package key, records the
// //memsnap:* annotations, and builds a conservative call graph from
// go/types — static calls resolved exactly, interface method calls
// resolved by class-hierarchy analysis over the module's named types.
// The graph is shared by the program-level analyzers (hotalloc,
// poolown).
//
// Function annotations (directive comments in a declaration's doc
// block):
//
//	//memsnap:hotpath   the function and everything it transitively
//	                    calls must be free of allocation sites
//	                    (enforced by hotalloc)
//	//memsnap:coldpath  prune hot-path traversal at this boundary: the
//	                    function is reachable from a hot path but is
//	                    not steady-state (retry, catch-up, the far end
//	                    of a simulated link)
//	//memsnap:owns      the function takes or transfers ownership of
//	                    pooled values: poolown permits Get results to
//	                    escape through it (returned, stored, queued)
//
// Cross-package identity: the loader type-checks each module package
// twice (once through the import graph, once as the analysis package
// with its test files), so *types.Func pointers are not stable across
// packages. FuncNodes are therefore keyed by the printable form
// "pkgpath.(Recv).Name", which is identical in both universes.

// FuncNode is one module function in the program's call graph.
type FuncNode struct {
	// Key is the stable identity "pkgpath.(Recv).Name".
	Key string
	Pkg *Package
	// File is the source file holding the declaration.
	File *File
	Decl *ast.FuncDecl
	// Obj is the function's types object in its package's universe.
	Obj *types.Func

	// Hot, Cold, Owns mirror the //memsnap:hotpath, //memsnap:coldpath
	// and //memsnap:owns annotations.
	Hot, Cold, Owns bool

	// Callees are the functions this one may call, in source order,
	// deduplicated: static callees plus every module implementation of
	// each interface method called (class-hierarchy analysis).
	Callees []*FuncNode
}

// Program is the whole-module view shared by program analyzers.
type Program struct {
	Pkgs []*Package

	// funcs indexes every declared module function by stable key.
	funcs map[string]*FuncNode
	// namedTypes lists every exported-or-not named (non-interface)
	// type declared in an analysis package, for CHA.
	namedTypes []*types.Named
}

// FuncByKey returns the node for a stable function key, or nil.
func (prog *Program) FuncByKey(key string) *FuncNode { return prog.funcs[key] }

// Funcs returns every function node in deterministic key order.
func (prog *Program) Funcs() []*FuncNode {
	keys := make([]string, 0, len(prog.funcs))
	for k := range prog.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*FuncNode, 0, len(keys))
	for _, k := range keys {
		out = append(out, prog.funcs[k])
	}
	return out
}

// funcKey builds the stable cross-universe identity of fn:
// "pkgpath.Name" for package functions, "pkgpath.(Recv).Name" for
// methods (pointerness of the receiver is erased — Go permits one
// method set per name anyway). Generic instantiations collapse onto
// their origin.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	var b strings.Builder
	if fn.Pkg() != nil {
		b.WriteString(fn.Pkg().Path())
		b.WriteString(".")
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			b.WriteString("(")
			b.WriteString(named.Obj().Name())
			b.WriteString(").")
		}
	}
	b.WriteString(fn.Name())
	return b.String()
}

// moduleFunc reports whether fn belongs to this module.
func moduleFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), "memsnap")
}

// hasDirective reports whether the declaration's doc block carries the
// given //memsnap:<name> directive.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "memsnap:"+name {
			return true
		}
	}
	return false
}

// NewProgram indexes the packages and builds the call graph.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, funcs: map[string]*FuncNode{}}

	// Pass 1: index declarations and named types.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{
					Key:  funcKey(obj),
					Pkg:  pkg,
					File: f,
					Decl: fd,
					Obj:  obj,
					Hot:  hasDirective(fd.Doc, "hotpath"),
					Cold: hasDirective(fd.Doc, "coldpath"),
					Owns: hasDirective(fd.Doc, "owns"),
				}
				// Test-file twins of a declaration never displace the
				// primary one; otherwise last writer wins (external test
				// packages have distinct keys via their _test path).
				if prev, exists := prog.funcs[node.Key]; !exists || prev.File.Test {
					prog.funcs[node.Key] = node
				}
			}
		}
		if strings.HasSuffix(pkg.Name, "_test") || pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			prog.namedTypes = append(prog.namedTypes, named)
		}
	}

	// Pass 2: edges.
	for _, node := range prog.funcs {
		prog.buildEdges(node)
	}
	return prog
}

// buildEdges collects node's callees: every call expression in the
// body (nested function literals included — they run on behalf of the
// declaring function or capture its frame either way).
func (prog *Program) buildEdges(node *FuncNode) {
	info := node.Pkg.Info
	seen := map[*FuncNode]bool{}
	add := func(n *FuncNode) {
		if n != nil && n != node && !seen[n] {
			seen[n] = true
			node.Callees = append(node.Callees, n)
		}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, fn := range prog.callees(info, call) {
			add(prog.funcs[funcKey(fn)])
		}
		return true
	})
}

// callees resolves the possible targets of one call expression:
// nothing for conversions, builtins and func-typed values; the exact
// target for static calls; every module implementation for interface
// method calls.
func (prog *Program) callees(info *types.Info, call *ast.CallExpr) []*types.Func {
	fun := ast.Unparen(call.Fun)
	// A conversion, not a call.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	switch x := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[x].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return prog.implementations(sel.Recv(), fn.Name())
			}
			return []*types.Func{fn}
		}
		// Qualified package call (pkg.Fn).
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
			return []*types.Func{fn}
		}
	}
	return nil
}

// implementations is the CHA step: every module named type whose
// method set (value or pointer) satisfies iface contributes its method
// named name. Types from different type-check universes compare
// structurally as long as the interface's signatures mention only
// shared imported types — true for the module's small interfaces; a
// mismatch errs on the side of a missing edge, which the analyzers
// document as the dynamic-call limitation.
func (prog *Program) implementations(iface types.Type, name string) []*types.Func {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range prog.namedTypes {
		var recv types.Type = named
		if !types.Implements(recv, it) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, it) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}

// ProgramPass carries one program analyzer's run.
type ProgramPass struct {
	Prog   *Program
	rule   string
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos, located through the shared
// file set.
func (p *ProgramPass) Reportf(pkg *Package, pos ast.Node, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     pkg.Fset.Position(pos.Pos()),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}
