package lint

import "strconv"

// GlobalRand forbids importing math/rand (and math/rand/v2) anywhere
// in the module: every workload generator and randomized component
// must take an explicit *sim.RNG so experiments replay bit-for-bit
// from a seed (see internal/sim/rng.go). The ban covers test files
// too — a test seeded from global randomness is a flaky test.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand imports; all randomness must come from the deterministic sim.RNG",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.AST.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %q: randomness must come from the deterministic sim.RNG so runs replay bit-for-bit from a seed (design rule: seeded determinism)",
					path)
			}
		}
	}
}
