package lint

import "strconv"

// SockIO confines real-socket I/O to the module's declared wall
// boundaries. Importing "net" puts a package on the wall-clock,
// real-kernel side of the simulation line: its latencies are machine
// timings, its failures are real syscall failures, and none of it
// replays from a seed. Only the designated boundary packages — the
// observability endpoint (internal/obs), the TCP data plane
// (internal/netsvc) and the binaries that drive them — may cross that
// line, and each import site must carry a documented //lint:allow
// sockio suppression so new sockets are a reviewed decision, not an
// accident.
var SockIO = &Analyzer{
	Name: "sockio",
	Doc:  "forbid \"net\" imports outside documented wall boundaries; real sockets only in obs/netsvc and their binaries",
	Run:  runSockIO,
}

func runSockIO(pass *Pass) {
	pkg := pass.Pkg
	if !pathIsUnder(pkg.Path, "memsnap/internal") && !pathIsUnder(pkg.Path, "memsnap/cmd") {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, imp := range f.AST.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "net" || path == "net/http" {
				pass.Reportf(imp.Pos(),
					"import of %q: real-socket I/O belongs only to documented wall boundaries (obs, netsvc, their binaries); annotate intentional boundaries with //lint:allow sockio (design rule: simulation stays off the network)",
					path)
			}
		}
	}
}
