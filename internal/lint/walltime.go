package lint

import (
	"go/ast"
	"go/types"
)

// wallTimeFuncs are the package-level time functions that read or wait
// on the wall clock. Types and constants (time.Duration,
// time.Microsecond, ...) stay usable: virtual time is denominated in
// time.Duration throughout the simulation.
var wallTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallTime forbids wall-clock time sources in non-test code under
// internal/ and cmd/: all simulated work must charge a virtual
// sim.Clock so experiments are deterministic and machine-independent
// (PAPER.md §6 methodology; see internal/sim package comment).
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Sleep/Since/timers in simulation code; only sim.Clock may advance time",
	Run:  runWallTime,
}

func runWallTime(pass *Pass) {
	pkg := pass.Pkg
	if !pathIsUnder(pkg.Path, "memsnap/internal") && !pathIsUnder(pkg.Path, "memsnap/cmd") {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if wallTimeFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; simulated work must charge a virtual sim.Clock so runs are deterministic (design rule: virtual time only)",
					sel.Sel.Name)
			}
			return true
		})
	}
}
