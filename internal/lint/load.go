package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of this module without the
// go command: module packages are resolved from the repo tree, the
// standard library is type-checked from GOROOT source via go/importer's
// source importer. Everything works offline.
type Loader struct {
	// Root is the absolute module root (directory holding go.mod).
	Root string
	// Module is the module path from go.mod.
	Module string

	fset  *token.FileSet
	imp   *moduleImporter
	cache map[string]*ast.File // filename -> parsed file
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Root:   root,
		Module: mod,
		fset:   token.NewFileSet(),
		cache:  map[string]*ast.File{},
	}
	l.imp = &moduleImporter{
		l:       l,
		std:     importer.ForCompiler(l.fset, "source", nil),
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
	return l, nil
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every package in the module
// (including test files; external _test packages are returned as their
// own Package sharing the directory's import path).
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		ipath := l.Module
		if rel != "." {
			ipath = l.Module + "/" + filepath.ToSlash(rel)
		}
		got, err := l.LoadDir(dir, ipath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

// LoadDir type-checks the packages in one directory under the given
// import path: the primary package (with its in-package test files)
// and, if present, the external _test package. Used both by LoadModule
// and by the fixture harness (which assigns synthetic import paths to
// testdata directories).
func (l *Loader) LoadDir(dir, ipath string) ([]*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Group files by declared package name.
	groups := map[string][]*File{}
	for _, f := range files {
		groups[f.AST.Name.Name] = append(groups[f.AST.Name.Name], f)
	}
	var names []string
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)

	var pkgs []*Package
	for _, name := range names {
		group := groups[name]
		// The checker's package path must differ from the import path
		// for external test packages, which import the primary.
		checkPath := ipath
		if strings.HasSuffix(name, "_test") {
			checkPath = ipath + "_test"
		}
		tpkg, info, err := l.check(checkPath, group)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s (%s): %w", ipath, name, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  ipath,
			Name:  name,
			Dir:   dir,
			Fset:  l.fset,
			Files: group,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// parseDir parses every .go file directly in dir that satisfies the
// default build constraints, in name order. Honoring //go:build lines
// matters: tag-gated twins (e.g. a race / !race constant pair) would
// otherwise both land in one type-check and collide.
func (l *Loader) parseDir(dir string) ([]*File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		af, err := l.parseFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		files = append(files, &File{
			AST:  af,
			Name: name,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	return files, nil
}

func (l *Loader) parseFile(path string) (*ast.File, error) {
	if f, ok := l.cache[path]; ok {
		return f, nil
	}
	f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	l.cache[path] = f
	return f, nil
}

// check type-checks one file group, collecting the type info the
// analyzers need.
func (l *Loader) check(path string, group []*File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	asts := make([]*ast.File, len(group))
	for i, f := range group {
		asts[i] = f.AST
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if len(errs) > 0 {
		// Report the first few errors; one is usually enough.
		msgs := make([]string, 0, 3)
		for i, e := range errs {
			if i == 3 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-3))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, nil, fmt.Errorf("%s", strings.Join(msgs, "; "))
	}
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

// moduleImporter resolves module-internal import paths from the repo
// tree (non-test files only) and delegates everything else to the
// stdlib source importer. Results are cached so shared dependencies
// (sim, mem, core, ...) are type-checked once.
type moduleImporter struct {
	l       *Loader
	std     types.Importer
	pkgs    map[string]*types.Package
	loading map[string]bool
}

func (imp *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := imp.pkgs[path]; ok {
		return p, nil
	}
	mod := imp.l.Module
	if path == mod || strings.HasPrefix(path, mod+"/") {
		if imp.loading[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		imp.loading[path] = true
		defer delete(imp.loading, path)

		dir := filepath.Join(imp.l.Root, filepath.FromSlash(strings.TrimPrefix(path, mod)))
		files, err := imp.l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		// Importable view: non-test files of the primary package only.
		asts := make([]*ast.File, 0, len(files))
		for _, f := range files {
			if !f.Test && !strings.HasSuffix(f.AST.Name.Name, "_test") {
				asts = append(asts, f.AST)
			}
		}
		if len(asts) == 0 {
			return nil, fmt.Errorf("no non-test Go files in %s", dir)
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, imp.l.fset, asts, nil)
		if err != nil {
			return nil, err
		}
		imp.pkgs[path] = tpkg
		return tpkg, nil
	}
	return imp.std.Import(path)
}
