// Package proto defines the shard service's wire format: a small
// length-prefixed framed binary protocol carrying pipelined KV
// requests and their out-of-order responses (internal/netsvc is the
// server, cmd/msnap-load the reference client).
//
// Framing: every message is a 4-byte big-endian payload length
// followed by the payload. Payloads start with a one-byte frame type
// (request or response) and use fixed-width big-endian integers, so
// encode and decode are straight byte moves: AppendRequest and
// AppendResponse build frames into caller-reused buffers, and
// DecodeRequest returns byte slices aliasing the input frame — zero
// copies on either side of the socket.
//
// The decoder is hostile-input safe by construction: the length
// prefix is validated against MaxFrame before any buffer grows, every
// field read is bounds-checked, trailing garbage is an error, and
// unknown frame types or op kinds fail cleanly (FuzzFrameDecode pins
// this). A malformed frame can therefore cost the peer at most one
// bounded allocation and one closed connection — never a panic.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// MaxFrame bounds one frame's payload. The decoder refuses larger
// length prefixes before allocating, so a hostile peer cannot make
// the server reserve more than this per connection.
const MaxFrame = 64 << 10

// Wire limits. Tenant and keys are length-prefixed with u16 but
// additionally capped well below MaxFrame so the three of them plus
// the fixed header always fit one frame.
const MaxStringLen = 1 << 12

// Frame types (first payload byte).
const (
	frameRequest  = 0x01
	frameResponse = 0x02
)

// Kind is the wire operation code of a request.
type Kind uint8

const (
	// KindPing answers immediately with StatusOK; it never touches the
	// shard service (liveness probes, drain tests).
	KindPing Kind = iota
	// KindGet reads Tenant/Key.
	KindGet
	// KindPut durably sets Tenant/Key to Value.
	KindPut
	// KindAdd durably increments Tenant/Key by Value.
	KindAdd
	// KindDelete durably removes Tenant/Key.
	KindDelete
	// KindTransfer durably moves Value from Key to Key2 (same tenant,
	// same shard).
	KindTransfer
	kindCount
)

var kindNames = [kindCount]string{"ping", "get", "put", "add", "delete", "transfer"}

// kindTraceFlag is the trace-context bit of the request kind byte.
// When set, an 8-byte big-endian trace id follows the strings at the
// end of the payload; the low 7 bits still carry the Kind. Old
// decoders never saw the bit set (kinds are tiny), and this decoder
// still rejects any kind whose low bits are unknown, so the flag is a
// backward- and forward-compatible extension of the frame: the fuzz
// corpus's untraced frames decode byte-identically.
const kindTraceFlag = 0x80

// traceIDLen is the wire size of the optional trailing trace id.
const traceIDLen = 8

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Status is the response outcome code.
type Status uint8

const (
	// StatusOK: the operation was applied (writes: durably committed).
	// Reads report presence via the Found flag, not the status.
	StatusOK Status = iota
	// StatusRetryAfter: the target shard's queue was full. The request
	// was not applied; the client should wait RetryAfter and resend.
	// This is admission control surfacing on the wire — the connection
	// stays open.
	StatusRetryAfter
	// StatusClosed: the service is shutting down; the request was not
	// applied.
	StatusClosed
	// StatusBadRequest: the request failed wire- or key-validation
	// (oversized strings, unknown kind reported by decode).
	StatusBadRequest
	// StatusKeyTooLong: tenant+key exceed the service's key limit.
	StatusKeyTooLong
	// StatusCrossShard: a transfer's keys route to different shards.
	StatusCrossShard
	// StatusShardFull: the shard's slot table is at capacity.
	StatusShardFull
	// StatusInsufficient: a transfer's source balance is too small.
	StatusInsufficient
	// StatusInternal: any other server-side failure.
	StatusInternal
	statusCount
)

var statusNames = [statusCount]string{
	"ok", "retry_after", "closed", "bad_request", "key_too_long",
	"cross_shard", "shard_full", "insufficient", "internal",
}

// String returns the status's wire name.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Retryable reports whether a client may safely resend the request
// (the server guarantees it was not applied).
func (s Status) Retryable() bool { return s == StatusRetryAfter }

// Request is one decoded client request. After DecodeRequest the
// Tenant/Key/Key2 slices alias the frame buffer: they are valid only
// until the buffer is reused, so consumers that outlive the read loop
// (e.g. ops queued into shard workers) must copy them.
type Request struct {
	// ID is the client-chosen correlation id, echoed verbatim in the
	// response. IDs must be unique among a connection's in-flight
	// requests; reuse after completion is fine.
	ID     uint64
	Kind   Kind
	Tenant []byte
	Key    []byte
	Key2   []byte // transfer destination
	Value  uint64 // put value / add delta / transfer amount
	// Traced marks a sampled request carrying distributed trace
	// context: the frame's kind byte has the trace flag set and TraceID
	// rides at the end of the payload. Untraced requests pay zero extra
	// wire bytes. (Traced with TraceID 0 is representable on the wire
	// but receivers treat id 0 as "untraced".)
	Traced  bool
	TraceID uint64
}

// Response is one decoded server response.
type Response struct {
	// ID echoes the request's correlation id.
	ID     uint64
	Status Status
	// Found reports key presence for get/delete.
	Found bool
	// Value is the read value (get), post-increment value (add),
	// deleted value (delete) or remaining source balance (transfer).
	Value uint64
	// Epoch is the uCheckpoint epoch that made a write durable.
	Epoch uint64
	// RetryAfter is the backoff hint accompanying StatusRetryAfter,
	// with microsecond wire granularity; zero otherwise.
	RetryAfter time.Duration
}

// Decode errors. ErrTruncated covers every "frame shorter than its
// fields claim" shape; ErrTrailingBytes the converse.
var (
	ErrFrameTooLarge = errors.New("proto: frame length exceeds MaxFrame")
	ErrTruncated     = errors.New("proto: truncated frame")
	ErrTrailingBytes = errors.New("proto: trailing bytes after payload")
	ErrUnknownFrame  = errors.New("proto: unknown frame type")
	ErrUnknownKind   = errors.New("proto: unknown op kind")
	ErrUnknownStatus = errors.New("proto: unknown status")
	ErrUnknownFlags  = errors.New("proto: unknown response flag bits")
	ErrStringTooLong = errors.New("proto: tenant/key exceeds MaxStringLen")
)

// Fixed payload sizes: the request header before the variable-length
// strings, and the whole (fixed-size) response payload.
const (
	reqFixedLen  = 1 + 1 + 8 + 2 + 2 + 2 + 8 // type kind id tlen klen k2len value
	respFixedLen = 1 + 1 + 1 + 8 + 8 + 8 + 4 // type status flags id value epoch retry_us
)

// AppendRequest appends q as one complete frame (length prefix
// included) to dst and returns the extended slice. It validates the
// string lengths against MaxStringLen.
func AppendRequest(dst []byte, q *Request) ([]byte, error) {
	if len(q.Tenant) > MaxStringLen || len(q.Key) > MaxStringLen || len(q.Key2) > MaxStringLen {
		return dst, ErrStringTooLong
	}
	if q.Kind >= kindCount {
		return dst, ErrUnknownKind
	}
	kindByte := byte(q.Kind)
	n := reqFixedLen + len(q.Tenant) + len(q.Key) + len(q.Key2)
	if q.Traced {
		kindByte |= kindTraceFlag
		n += traceIDLen
	}
	dst = appendU32(dst, uint32(n))
	dst = append(dst, frameRequest, kindByte)
	dst = appendU64(dst, q.ID)
	dst = appendU16(dst, uint16(len(q.Tenant)))
	dst = appendU16(dst, uint16(len(q.Key)))
	dst = appendU16(dst, uint16(len(q.Key2)))
	dst = appendU64(dst, q.Value)
	dst = append(dst, q.Tenant...)
	dst = append(dst, q.Key...)
	dst = append(dst, q.Key2...)
	if q.Traced {
		dst = appendU64(dst, q.TraceID)
	}
	return dst, nil
}

// AppendResponse appends p as one complete frame (length prefix
// included) to dst and returns the extended slice.
func AppendResponse(dst []byte, p *Response) []byte {
	dst = appendU32(dst, respFixedLen)
	var flags byte
	if p.Found {
		flags |= 1
	}
	dst = append(dst, frameResponse, byte(p.Status), flags)
	dst = appendU64(dst, p.ID)
	dst = appendU64(dst, p.Value)
	dst = appendU64(dst, p.Epoch)
	us := p.RetryAfter / time.Microsecond
	if us < 0 {
		us = 0
	}
	if us > 0xffffffff {
		us = 0xffffffff
	}
	dst = appendU32(dst, uint32(us))
	return dst
}

// DecodeRequest parses one request payload (the bytes after the
// length prefix) into q. Tenant/Key/Key2 alias payload. Every decode
// failure leaves q unspecified and returns a typed error; the
// function never panics on malformed input.
func DecodeRequest(payload []byte, q *Request) error {
	if len(payload) < reqFixedLen {
		return ErrTruncated
	}
	if payload[0] != frameRequest {
		return ErrUnknownFrame
	}
	traced := payload[1]&kindTraceFlag != 0
	kind := Kind(payload[1] &^ kindTraceFlag)
	if kind >= kindCount {
		return ErrUnknownKind
	}
	id := binary.BigEndian.Uint64(payload[2:])
	tlen := int(binary.BigEndian.Uint16(payload[10:]))
	klen := int(binary.BigEndian.Uint16(payload[12:]))
	k2len := int(binary.BigEndian.Uint16(payload[14:]))
	value := binary.BigEndian.Uint64(payload[16:])
	if tlen > MaxStringLen || klen > MaxStringLen || k2len > MaxStringLen {
		return ErrStringTooLong
	}
	want := reqFixedLen + tlen + klen + k2len
	if traced {
		want += traceIDLen
	}
	if len(payload) < want {
		return ErrTruncated
	}
	if len(payload) > want {
		return ErrTrailingBytes
	}
	rest := payload[reqFixedLen:]
	q.ID = id
	q.Kind = kind
	q.Tenant = rest[:tlen:tlen]
	q.Key = rest[tlen : tlen+klen : tlen+klen]
	q.Key2 = rest[tlen+klen : tlen+klen+k2len : tlen+klen+k2len]
	q.Value = value
	q.Traced = traced
	q.TraceID = 0
	if traced {
		q.TraceID = binary.BigEndian.Uint64(payload[want-traceIDLen:])
	}
	return nil
}

// DecodeResponse parses one response payload into p. It never panics
// on malformed input.
func DecodeResponse(payload []byte, p *Response) error {
	if len(payload) < respFixedLen {
		return ErrTruncated
	}
	if payload[0] != frameResponse {
		return ErrUnknownFrame
	}
	if len(payload) > respFixedLen {
		return ErrTrailingBytes
	}
	st := Status(payload[1])
	if st >= statusCount {
		return ErrUnknownStatus
	}
	if payload[2]&^1 != 0 {
		return ErrUnknownFlags
	}
	p.Status = st
	p.Found = payload[2]&1 != 0
	p.ID = binary.BigEndian.Uint64(payload[3:])
	p.Value = binary.BigEndian.Uint64(payload[11:])
	p.Epoch = binary.BigEndian.Uint64(payload[19:])
	p.RetryAfter = time.Duration(binary.BigEndian.Uint32(payload[27:])) * time.Microsecond
	return nil
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
