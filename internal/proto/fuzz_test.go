package proto

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the whole decode surface:
// the frame reader (length-prefix handling) and both payload decoders.
// Invariants pinned here:
//
//   - no input panics or hangs;
//   - the frame reader never allocates past its cap (hostile length
//     prefixes are refused before the buffer grows);
//   - a payload DecodeRequest accepts re-encodes byte-identically
//     (decode∘encode is the identity on valid frames).
//
// The committed corpus under testdata/fuzz/FuzzFrameDecode seeds
// truncated frames, oversized length prefixes, unknown opcodes,
// unknown frame types and valid frames of every kind.
func FuzzFrameDecode(f *testing.F) {
	// Valid frames of each kind (payload-level and full-frame).
	for _, q := range []Request{
		{ID: 1, Kind: KindPing},
		{ID: 2, Kind: KindGet, Tenant: []byte("t"), Key: []byte("k")},
		{ID: 3, Kind: KindPut, Tenant: []byte("tenant"), Key: []byte("key"), Value: 77},
		{ID: 4, Kind: KindTransfer, Tenant: []byte("t"), Key: []byte("a"), Key2: []byte("b"), Value: 5},
		// Trace-context frames: the kind byte's trace flag plus the
		// trailing 8-byte trace id.
		{ID: 5, Kind: KindPut, Tenant: []byte("t"), Key: []byte("k"), Value: 9, Traced: true, TraceID: 0xdeadbeefcafef00d},
		{ID: 6, Kind: KindGet, Tenant: []byte("t"), Key: []byte("k"), Traced: true},
	} {
		frame, err := AppendRequest(nil, &q)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[4:])
	}
	resp := AppendResponse(nil, &Response{ID: 9, Status: StatusRetryAfter, RetryAfter: 100})
	f.Add(resp)
	f.Add(resp[4:])
	// Hostile shapes.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                   // oversized prefix
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})                   // zero prefix
	f.Add([]byte{0x00, 0x00, 0x00, 0x05, 0x01, 0x63})       // truncated payload
	f.Add([]byte{0x01, 0xee, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // unknown opcode
	// Traced flag set but trace id missing: must fail as truncated.
	trunc, err := AppendRequest(nil, &Request{ID: 7, Kind: KindGet, Tenant: []byte("t"), Key: []byte("k"), Traced: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(trunc[4 : len(trunc)-traceIDLen])

	f.Fuzz(func(t *testing.T, data []byte) {
		// Payload-level decoders on the raw input.
		var q Request
		if err := DecodeRequest(data, &q); err == nil {
			re, err := AppendRequest(nil, &q)
			if err != nil {
				t.Fatalf("decoded request %+v does not re-encode: %v", q, err)
			}
			if !bytes.Equal(re[4:], data) {
				t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", data, re[4:])
			}
		}
		var p Response
		if err := DecodeResponse(data, &p); err == nil {
			re := AppendResponse(nil, &p)
			if !bytes.Equal(re[4:], data) {
				t.Fatalf("response re-encode mismatch:\n in: %x\nout: %x", data, re[4:])
			}
		}
		// Frame reader over the input as a byte stream: walk every
		// frame until an error; decode whatever comes out.
		fr := NewFrameReader(bytes.NewReader(data), 0)
		for i := 0; i < 64; i++ {
			payload, err := fr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					err != ErrFrameTooLarge && err != ErrTruncated {
					t.Fatalf("unexpected frame reader error: %v", err)
				}
				break
			}
			if len(fr.buf) > MaxFrame {
				t.Fatalf("frame buffer over-allocated: %d", len(fr.buf))
			}
			DecodeRequest(payload, &q)
			DecodeResponse(payload, &p)
		}
	})
}
