package proto

import (
	"encoding/binary"
	"io"
)

// FrameReader reads length-prefixed frames from an io.Reader into one
// reusable buffer. Next returns the payload of the next frame; the
// returned slice aliases the internal buffer and is valid only until
// the following Next call. The buffer grows at most to the configured
// maximum, so a hostile length prefix cannot force a large
// allocation: prefixes above the cap fail with ErrFrameTooLarge
// before any buffer grows.
type FrameReader struct {
	r   io.Reader
	buf []byte
	max int
	// n counts payload+prefix bytes consumed from r (wire accounting
	// for the server's bytes-in stat).
	n int64
}

// NewFrameReader wraps r with a frame decoder capped at max payload
// bytes (0 or negative: MaxFrame).
func NewFrameReader(r io.Reader, max int) *FrameReader {
	if max <= 0 {
		max = MaxFrame
	}
	//lint:allow hotalloc per-connection constructor, not per frame
	return &FrameReader{r: r, buf: make([]byte, 512), max: max}
}

// Next reads one frame and returns its payload. io.EOF is returned
// only on a clean boundary (no partial frame read); a connection cut
// mid-frame yields io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			fr.n += int64(len(hdr)) // partial; close enough for stats
		}
		return nil, err
	}
	fr.n += 4
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, ErrTruncated
	}
	if int64(n) > int64(fr.max) {
		return nil, ErrFrameTooLarge
	}
	if int(n) > len(fr.buf) {
		//lint:allow hotalloc frame buffer growth to the high-water payload size, amortized
		fr.buf = make([]byte, int(n))
	}
	payload := fr.buf[:n]
	m, err := io.ReadFull(fr.r, payload)
	fr.n += int64(m)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// BytesRead returns the total wire bytes consumed so far.
func (fr *FrameReader) BytesRead() int64 { return fr.n }
