package proto

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Kind: KindPing},
		{ID: 0xdeadbeefcafe, Kind: KindGet, Tenant: []byte("t0"), Key: []byte("alpha")},
		{ID: 2, Kind: KindPut, Tenant: []byte("tenant"), Key: []byte("k"), Value: 42},
		{ID: 3, Kind: KindAdd, Tenant: []byte(""), Key: []byte("counter"), Value: ^uint64(0)},
		{ID: 4, Kind: KindDelete, Tenant: []byte("t"), Key: []byte("gone")},
		{ID: 5, Kind: KindTransfer, Tenant: []byte("t"), Key: []byte("from"), Key2: []byte("to"), Value: 7},
	}
	for _, want := range cases {
		frame, err := AppendRequest(nil, &want)
		if err != nil {
			t.Fatalf("%v: %v", want, err)
		}
		var got Request
		if err := DecodeRequest(frame[4:], &got); err != nil {
			t.Fatalf("%v: decode: %v", want, err)
		}
		if got.ID != want.ID || got.Kind != want.Kind || got.Value != want.Value ||
			!bytes.Equal(got.Tenant, want.Tenant) || !bytes.Equal(got.Key, want.Key) ||
			!bytes.Equal(got.Key2, want.Key2) {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

// Trace context: the kind byte's high bit plus a trailing 8-byte
// trace id, costing exactly traceIDLen extra wire bytes and nothing
// on untraced frames.
func TestRequestTraceContext(t *testing.T) {
	plain, err := AppendRequest(nil, &Request{ID: 7, Kind: KindPut, Tenant: []byte("t"), Key: []byte("k"), Value: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := Request{ID: 7, Kind: KindPut, Tenant: []byte("t"), Key: []byte("k"), Value: 3, Traced: true, TraceID: 0x0123456789abcdef}
	traced, err := AppendRequest(nil, &want)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain)+traceIDLen {
		t.Fatalf("traced frame is %d bytes, want %d (+%d)", len(traced), len(plain)+traceIDLen, traceIDLen)
	}
	if traced[5]&kindTraceFlag == 0 {
		t.Fatal("kind byte trace flag not set")
	}
	var got Request
	if err := DecodeRequest(traced[4:], &got); err != nil {
		t.Fatal(err)
	}
	if !got.Traced || got.TraceID != want.TraceID || got.Kind != KindPut {
		t.Fatalf("decode = %+v, want traced id %x kind put", got, want.TraceID)
	}
	// Decoding an untraced frame must clear any stale trace context in
	// the reused Request value.
	if err := DecodeRequest(plain[4:], &got); err != nil {
		t.Fatal(err)
	}
	if got.Traced || got.TraceID != 0 {
		t.Fatalf("untraced decode left stale trace context: %+v", got)
	}
	// A traced frame missing its id is truncated, never misparsed.
	var q Request
	if err := DecodeRequest(traced[4:len(traced)-traceIDLen], &q); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
	// The unknown-kind check still applies under the flag.
	bad := append([]byte(nil), traced[4:]...)
	bad[1] = kindTraceFlag | byte(kindCount)
	if err := DecodeRequest(bad, &q); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("got %v, want ErrUnknownKind", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, Status: StatusOK},
		{ID: 2, Status: StatusOK, Found: true, Value: 99, Epoch: 12},
		{ID: 3, Status: StatusRetryAfter, RetryAfter: 1500 * time.Microsecond},
		{ID: 4, Status: StatusInsufficient},
		{ID: 5, Status: StatusClosed},
	}
	for _, want := range cases {
		frame := AppendResponse(nil, &want)
		var got Response
		if err := DecodeResponse(frame[4:], &got); err != nil {
			t.Fatalf("%+v: decode: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

// Zero-copy contract: decoded strings alias the frame buffer.
func TestDecodeRequestAliasesFrame(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{ID: 9, Kind: KindPut, Tenant: []byte("ten"), Key: []byte("key"), Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	var q Request
	if err := DecodeRequest(frame[4:], &q); err != nil {
		t.Fatal(err)
	}
	frame[4+reqFixedLen] = 'X' // first tenant byte
	if string(q.Tenant) != "Xen" {
		t.Errorf("Tenant does not alias frame: %q", q.Tenant)
	}
}

func TestDecodeErrors(t *testing.T) {
	okReq, err := AppendRequest(nil, &Request{ID: 1, Kind: KindGet, Tenant: []byte("t"), Key: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	okResp := AppendResponse(nil, &Response{ID: 1, Status: StatusOK})

	t.Run("truncated request", func(t *testing.T) {
		for cut := 0; cut < len(okReq)-4; cut++ {
			var q Request
			if err := DecodeRequest(okReq[4:4+cut], &q); err == nil {
				t.Errorf("cut=%d: decode accepted truncated frame", cut)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		var q Request
		if err := DecodeRequest(append(append([]byte(nil), okReq[4:]...), 0), &q); !errors.Is(err, ErrTrailingBytes) {
			t.Errorf("got %v, want ErrTrailingBytes", err)
		}
		var p Response
		if err := DecodeResponse(append(append([]byte(nil), okResp[4:]...), 0), &p); !errors.Is(err, ErrTrailingBytes) {
			t.Errorf("got %v, want ErrTrailingBytes", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		bad := append([]byte(nil), okReq[4:]...)
		bad[1] = byte(kindCount)
		var q Request
		if err := DecodeRequest(bad, &q); !errors.Is(err, ErrUnknownKind) {
			t.Errorf("got %v, want ErrUnknownKind", err)
		}
	})
	t.Run("unknown frame type", func(t *testing.T) {
		bad := append([]byte(nil), okReq[4:]...)
		bad[0] = 0x7f
		var q Request
		if err := DecodeRequest(bad, &q); !errors.Is(err, ErrUnknownFrame) {
			t.Errorf("got %v, want ErrUnknownFrame", err)
		}
	})
	t.Run("string lengths exceeding payload", func(t *testing.T) {
		bad := append([]byte(nil), okReq[4:]...)
		bad[10], bad[11] = 0x0f, 0xff // tenant len 4095 but payload is short
		var q Request
		if err := DecodeRequest(bad, &q); !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("oversize string refused at encode", func(t *testing.T) {
		if _, err := AppendRequest(nil, &Request{Kind: KindGet, Key: bytes.Repeat([]byte("k"), MaxStringLen+1)}); !errors.Is(err, ErrStringTooLong) {
			t.Errorf("got %v, want ErrStringTooLong", err)
		}
	})
	t.Run("unknown status", func(t *testing.T) {
		bad := append([]byte(nil), okResp[4:]...)
		bad[1] = byte(statusCount)
		var p Response
		if err := DecodeResponse(bad, &p); !errors.Is(err, ErrUnknownStatus) {
			t.Errorf("got %v, want ErrUnknownStatus", err)
		}
	})
}

func TestFrameReader(t *testing.T) {
	var wire []byte
	var err error
	reqs := []Request{
		{ID: 1, Kind: KindPut, Tenant: []byte("t"), Key: []byte("a"), Value: 10},
		{ID: 2, Kind: KindGet, Tenant: []byte("t"), Key: []byte("a")},
		{ID: 3, Kind: KindPing},
	}
	for i := range reqs {
		wire, err = AppendRequest(wire, &reqs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(wire), 0)
	for i := range reqs {
		payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var q Request
		if err := DecodeRequest(payload, &q); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if q.ID != reqs[i].ID {
			t.Errorf("frame %d: id %d want %d", i, q.ID, reqs[i].ID)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("after last frame: %v, want io.EOF", err)
	}
	if fr.BytesRead() != int64(len(wire)) {
		t.Errorf("BytesRead = %d, want %d", fr.BytesRead(), len(wire))
	}
}

func TestFrameReaderHostileInput(t *testing.T) {
	t.Run("oversized length prefix refused without allocating", func(t *testing.T) {
		fr := NewFrameReader(strings.NewReader("\xff\xff\xff\xff garbage"), 0)
		if _, err := fr.Next(); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v, want ErrFrameTooLarge", err)
		}
		if len(fr.buf) > MaxFrame {
			t.Fatalf("buffer grew to %d on a refused frame", len(fr.buf))
		}
	})
	t.Run("zero length prefix", func(t *testing.T) {
		fr := NewFrameReader(strings.NewReader("\x00\x00\x00\x00"), 0)
		if _, err := fr.Next(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("cut mid-frame", func(t *testing.T) {
		frame, err := AppendRequest(nil, &Request{ID: 1, Kind: KindGet, Tenant: []byte("t"), Key: []byte("k")})
		if err != nil {
			t.Fatal(err)
		}
		fr := NewFrameReader(bytes.NewReader(frame[:len(frame)-2]), 0)
		if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("cut mid-prefix", func(t *testing.T) {
		fr := NewFrameReader(strings.NewReader("\x00\x00"), 0)
		if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
		}
	})
}

// The reader's buffer must be reused across frames, not reallocated.
func TestFrameReaderReusesBuffer(t *testing.T) {
	var wire []byte
	var err error
	for i := 0; i < 100; i++ {
		wire, err = AppendRequest(wire, &Request{ID: uint64(i), Kind: KindPut, Tenant: []byte("t"), Key: []byte("key"), Value: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(wire), 0)
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	before := &fr.buf[0]
	for {
		if _, err := fr.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if &fr.buf[0] != before {
		t.Error("frame buffer reallocated for same-size frames")
	}
}
