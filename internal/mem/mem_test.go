package mem

import (
	"testing"
	"testing/quick"

	"memsnap/internal/sim"
)

func newTestMem() *PhysMem { return New(sim.DefaultCosts()) }

func TestAllocZeroed(t *testing.T) {
	m := newTestMem()
	pg := m.Alloc(nil)
	data := m.Data(pg.Frame())
	if len(data) != PageSize {
		t.Fatalf("frame size = %d", len(data))
	}
	for i, b := range data {
		if b != 0 {
			t.Fatalf("byte %d not zero", i)
		}
	}
}

func TestAllocChargesClock(t *testing.T) {
	m := newTestMem()
	clk := sim.NewClock()
	m.Alloc(clk)
	if clk.Now() == 0 {
		t.Fatal("Alloc did not charge the clock")
	}
}

func TestFreeReuseZeroes(t *testing.T) {
	m := newTestMem()
	pg := m.Alloc(nil)
	copy(m.Data(pg.Frame()), []byte("dirty data"))
	f := pg.Frame()
	m.Free(pg)
	pg2 := m.Alloc(nil)
	if pg2.Frame() != f {
		t.Fatalf("free frame not reused: got %d want %d", pg2.Frame(), f)
	}
	for i, b := range m.Data(pg2.Frame()) {
		if b != 0 {
			t.Fatalf("reused frame byte %d not zeroed", i)
		}
	}
}

func TestPageLookup(t *testing.T) {
	m := newTestMem()
	pg := m.Alloc(nil)
	if got := m.Page(pg.Frame()); got != pg {
		t.Fatal("Page lookup mismatch")
	}
	m.Free(pg)
	if got := m.Page(pg.Frame()); got != nil {
		t.Fatal("freed frame still has metadata")
	}
	if got := m.Page(Frame(9999)); got != nil {
		t.Fatal("out-of-range frame returned metadata")
	}
}

func TestFlags(t *testing.T) {
	m := newTestMem()
	pg := m.Alloc(nil)
	if pg.HasFlag(FlagCheckpointInProgress) {
		t.Fatal("fresh page has flag set")
	}
	pg.SetFlag(FlagCheckpointInProgress)
	if !pg.HasFlag(FlagCheckpointInProgress) {
		t.Fatal("SetFlag did not stick")
	}
	pg.SetFlag(FlagTracked)
	if !pg.HasFlag(FlagCheckpointInProgress | FlagTracked) {
		t.Fatal("combined flags not set")
	}
	pg.ClearFlag(FlagCheckpointInProgress)
	if pg.HasFlag(FlagCheckpointInProgress) {
		t.Fatal("ClearFlag did not clear")
	}
	if !pg.HasFlag(FlagTracked) {
		t.Fatal("ClearFlag cleared unrelated flag")
	}
}

func TestFlagsConcurrent(t *testing.T) {
	m := newTestMem()
	pg := m.Alloc(nil)
	done := make(chan bool)
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				pg.SetFlag(FlagTracked)
				pg.ClearFlag(FlagTracked)
			}
			done <- true
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

func TestReverseMappings(t *testing.T) {
	m := newTestMem()
	pg := m.Alloc(nil)
	ownerA, ownerB := "asA", "asB"
	pg.AddMapping(ReverseMapping{Owner: ownerA, VPN: 10})
	pg.AddMapping(ReverseMapping{Owner: ownerB, VPN: 20})
	if pg.RefCount() != 2 {
		t.Fatalf("refcount = %d", pg.RefCount())
	}
	maps := pg.Mappings()
	if len(maps) != 2 {
		t.Fatalf("mappings = %v", maps)
	}
	pg.RemoveMapping(ownerA, 10)
	if pg.RefCount() != 1 {
		t.Fatalf("refcount after remove = %d", pg.RefCount())
	}
	if got := pg.Mappings(); len(got) != 1 || got[0].Owner != ownerB {
		t.Fatalf("wrong mapping removed: %v", got)
	}
	// Removing a non-existent mapping is a no-op.
	pg.RemoveMapping(ownerA, 99)
	if pg.RefCount() != 1 {
		t.Fatal("no-op remove changed refcount")
	}
}

func TestCopy(t *testing.T) {
	m := newTestMem()
	src := m.Alloc(nil)
	copy(m.Data(src.Frame()), []byte("hello memsnap"))
	clk := sim.NewClock()
	dst := m.Copy(clk, src)
	if dst.Frame() == src.Frame() {
		t.Fatal("Copy returned same frame")
	}
	if string(m.Data(dst.Frame())[:13]) != "hello memsnap" {
		t.Fatal("Copy did not copy data")
	}
	if clk.Now() == 0 {
		t.Fatal("Copy did not charge the clock")
	}
	// Mutating the copy must not affect the source.
	m.Data(dst.Frame())[0] = 'X'
	if m.Data(src.Frame())[0] != 'h' {
		t.Fatal("copy aliases source")
	}
}

func TestStats(t *testing.T) {
	m := newTestMem()
	a := m.Alloc(nil)
	m.Alloc(nil)
	m.Free(a)
	s := m.Stats()
	if s.TotalFrames != 2 || s.FreeFrames != 1 || s.Allocations != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAllocUniqueFramesProperty(t *testing.T) {
	f := func(n uint8) bool {
		m := newTestMem()
		seen := make(map[Frame]bool)
		for i := 0; i < int(n); i++ {
			pg := m.Alloc(nil)
			if seen[pg.Frame()] {
				return false
			}
			seen[pg.Frame()] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
