// Package mem simulates physical memory: 4 KiB frames, per-frame page
// metadata (the analogue of FreeBSD's vm_page), a frame allocator, and
// physical-to-virtual reverse mappings.
//
// MemSnap's kernel implementation tags physical pages with a
// "checkpoint in progress" flag and walks a page's physical-to-virtual
// mappings to reset PTE protections in every address space that maps
// it. Both mechanisms live here.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"memsnap/internal/sim"
)

const (
	// PageSize is the size of a physical frame in bytes.
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
	// PageMask masks the offset within a page.
	PageMask = PageSize - 1
)

// PageFlags is a bitfield of per-page state.
type PageFlags uint32

const (
	// FlagCheckpointInProgress marks a page that belongs to an
	// in-flight uCheckpoint. Writes to such a page must take the COW
	// path instead of modifying the original frame.
	FlagCheckpointInProgress PageFlags = 1 << iota
	// FlagTracked marks a page currently present in some thread's
	// dirty set (written since the last protection reset).
	FlagTracked
)

// Frame identifies a physical frame.
type Frame uint32

// NoFrame is the zero-value sentinel for "no frame assigned".
const NoFrame Frame = ^Frame(0)

// ReverseMapping records one virtual mapping of a physical page. The
// holder is opaque to this package; the VM layer stores enough context
// to locate the PTE (supporting multiprocess applications, where one
// physical page appears in several page tables).
type ReverseMapping struct {
	// Owner identifies the address space holding the mapping.
	Owner any
	// VPN is the virtual page number within that address space.
	VPN uint64
}

// Page is the metadata for one physical frame (vm_page).
type Page struct {
	frame Frame
	flags atomic.Uint32

	mu   sync.Mutex
	rmap []ReverseMapping
	refs int32
}

// Frame returns the frame this metadata describes.
func (p *Page) Frame() Frame { return p.frame }

// SetFlag atomically sets the given flag bits.
func (p *Page) SetFlag(f PageFlags) {
	for {
		old := p.flags.Load()
		if p.flags.CompareAndSwap(old, old|uint32(f)) {
			return
		}
	}
}

// ClearFlag atomically clears the given flag bits.
func (p *Page) ClearFlag(f PageFlags) {
	for {
		old := p.flags.Load()
		if p.flags.CompareAndSwap(old, old&^uint32(f)) {
			return
		}
	}
}

// HasFlag reports whether all of the given flag bits are set.
func (p *Page) HasFlag(f PageFlags) bool {
	return PageFlags(p.flags.Load())&f == f
}

// AddMapping records a reverse mapping for this page.
func (p *Page) AddMapping(m ReverseMapping) {
	p.mu.Lock()
	p.rmap = append(p.rmap, m)
	p.refs++
	p.mu.Unlock()
}

// RemoveMapping removes one matching reverse mapping, if present.
func (p *Page) RemoveMapping(owner any, vpn uint64) {
	p.mu.Lock()
	for i, m := range p.rmap {
		if m.Owner == owner && m.VPN == vpn {
			p.rmap = append(p.rmap[:i], p.rmap[i+1:]...)
			p.refs--
			break
		}
	}
	p.mu.Unlock()
}

// Mappings returns a snapshot of the page's reverse mappings.
func (p *Page) Mappings() []ReverseMapping {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ReverseMapping(nil), p.rmap...)
}

// RefCount returns the number of reverse mappings.
func (p *Page) RefCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.refs)
}

// PhysMem is the simulated physical memory of one machine: a frame
// allocator plus per-frame data and metadata. It is safe for
// concurrent use.
type PhysMem struct {
	costs *sim.CostModel

	mu     sync.Mutex
	frames [][]byte
	pages  []*Page
	free   []Frame

	allocated int64
}

// New returns an empty physical memory backed by the given cost model.
func New(costs *sim.CostModel) *PhysMem {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &PhysMem{costs: costs}
}

// Alloc allocates one zeroed frame, charging the allocation cost to
// clk (which may be nil for setup-time allocations that should not be
// measured).
func (m *PhysMem) Alloc(clk *sim.Clock) *Page {
	if clk != nil {
		clk.Advance(m.costs.FrameAlloc)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.allocated++
	if n := len(m.free); n > 0 {
		f := m.free[n-1]
		m.free = m.free[:n-1]
		data := m.frames[f]
		for i := range data {
			data[i] = 0
		}
		//lint:allow hotalloc fresh Page identity per frame reuse keeps stale frame pointers inert
		pg := &Page{frame: f}
		m.pages[f] = pg
		return pg
	}
	f := Frame(len(m.frames))
	//lint:allow hotalloc physical memory growth, once per frame for the machine lifetime
	m.frames = append(m.frames, make([]byte, PageSize))
	//lint:allow hotalloc physical memory growth, once per frame for the machine lifetime
	pg := &Page{frame: f}
	m.pages = append(m.pages, pg)
	return pg
}

// Free returns a frame to the allocator. The caller must guarantee no
// mappings remain.
func (m *PhysMem) Free(pg *Page) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if pg.frame == NoFrame || int(pg.frame) >= len(m.frames) {
		panic(fmt.Sprintf("mem: freeing invalid frame %d", pg.frame))
	}
	m.pages[pg.frame] = nil
	m.free = append(m.free, pg.frame)
}

// Data returns the backing bytes of a frame. The slice aliases the
// frame; writes through it are writes to simulated physical memory.
func (m *PhysMem) Data(f Frame) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frames[f]
}

// Page returns the metadata for a frame, or nil if the frame is free.
func (m *PhysMem) Page(f Frame) *Page {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(f) >= len(m.pages) {
		return nil
	}
	return m.pages[f]
}

// Copy duplicates src into a new frame (the COW copy), charging frame
// allocation plus a 4 KiB memcpy to clk.
func (m *PhysMem) Copy(clk *sim.Clock, src *Page) *Page {
	dst := m.Alloc(clk)
	if clk != nil {
		clk.Advance(m.costs.MemcpyCost(PageSize))
	}
	copy(m.Data(dst.frame), m.Data(src.frame))
	return dst
}

// Stats reports allocator statistics.
type Stats struct {
	TotalFrames int
	FreeFrames  int
	Allocations int64
}

// Stats returns a snapshot of allocator state.
func (m *PhysMem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		TotalFrames: len(m.frames),
		FreeFrames:  len(m.free),
		Allocations: m.allocated,
	}
}
