package objstore

import (
	"fmt"
	"sync"
	"time"

	"memsnap/internal/disk"
)

// Object is one named COW region in the store. Each object carries
// its own logical history: a monotonic epoch incremented per commit,
// independent of every other object, so uCheckpoints of different
// objects proceed concurrently.
type Object struct {
	store     *Store
	name      string
	ringOff   int64
	maxBlocks int64

	mu    sync.Mutex
	tree  *tree
	epoch Epoch
	sc    commitScratch
}

// commitScratch holds per-object buffers reused across Commit calls
// (safe under o.mu), keeping the steady-state commit path
// allocation-free.
type commitScratch struct {
	freed   []int64
	extents []disk.Extent
	// nodeBufs are BlockSize marshal buffers for dirty tree nodes;
	// nused counts how many are handed out this commit. The buffers
	// must stay live until WriteV returns (the disk copies
	// synchronously), so they cannot be shared across nodes.
	nodeBufs [][]byte
	nused    int
	recBuf   []byte // commit-record sector scratch
}

func (sc *commitScratch) reset() {
	sc.freed = sc.freed[:0]
	sc.extents = sc.extents[:0]
	sc.nused = 0
}

func (sc *commitScratch) nodeBuf() []byte {
	if sc.nused < len(sc.nodeBufs) {
		b := sc.nodeBufs[sc.nused]
		sc.nused++
		return b
	}
	//lint:allow hotalloc scratch growth to the commit's node count, reused across commits
	b := make([]byte, BlockSize)
	sc.nodeBufs = append(sc.nodeBufs, b)
	sc.nused++
	return b
}

// BlockWrite is one dirty block in a commit.
type BlockWrite struct {
	// Index is the block index within the object.
	Index int64
	// Data is the 4 KiB block contents. Shorter slices are
	// zero-padded.
	Data []byte
}

// Name returns the object name.
func (o *Object) Name() string { return o.name }

// Epoch returns the current epoch.
func (o *Object) Epoch() Epoch {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.epoch
}

// MaxBlocks returns the object's capacity in blocks.
func (o *Object) MaxBlocks() int64 { return o.maxBlocks }

// Commit persists one uCheckpoint: every block lands in newly
// allocated space, the dirtied radix-tree path is rewritten COW
// bottom-up, and a checksummed commit record is written strictly
// after the data. Returns the new epoch and the virtual time at which
// the commit is durable.
//
// Commits to one object serialize; commits to different objects are
// independent (per-object epochs).
func (o *Object) Commit(at time.Duration, writes []BlockWrite) (Epoch, time.Duration, error) {
	o.mu.Lock()
	defer o.mu.Unlock()

	if len(writes) == 0 {
		o.epoch++
		return o.epoch, at, nil
	}
	for _, w := range writes {
		if w.Index < 0 || w.Index >= o.maxBlocks {
			//lint:allow hotalloc caller-bug error path
			return 0, at, fmt.Errorf("objstore: block %d out of range for %q (max %d)", w.Index, o.name, o.maxBlocks)
		}
		if len(w.Data) > BlockSize {
			//lint:allow hotalloc caller-bug error path
			return 0, at, fmt.Errorf("objstore: block write of %d bytes", len(w.Data))
		}
	}

	s := o.store
	s.mu.Lock()
	defer s.mu.Unlock()

	sc := &o.sc
	sc.reset()

	// Data blocks: fresh space, sequential on disk thanks to the bump
	// allocator — this is how random object updates become sequential
	// writes. tree.set marks the touched path dirty for the COW
	// rewrite below.
	for _, w := range writes {
		addr, err := s.alloc.alloc(at)
		if err != nil {
			return 0, at, err
		}
		data := w.Data
		if len(data) < BlockSize {
			// Pad short writes in a recycled scratch block (nodeBuf
			// buffers are dirty: clear the tail explicitly).
			padded := sc.nodeBuf()
			copy(padded, data)
			clear(padded[len(data):])
			data = padded
		}
		sc.extents = append(sc.extents, disk.Extent{Offset: addr, Data: data})
		if old := o.tree.set(w.Index, addr); old != 0 {
			sc.freed = append(sc.freed, old)
		}
	}

	// COW the dirtied tree path: every dirty node moves to a new
	// address; parents pick up the new child addresses, bottom-up from
	// the root.
	rootAddr, err := o.serializeNode(at, o.tree.root, o.tree.levels)
	if err != nil {
		return 0, at, err
	}

	// Phase 1: data + tree nodes as one vectored IO.
	done := s.arr.WriteV(at, sc.extents)

	// Phase 2: the commit record, ordered after phase 1.
	o.epoch++
	rec := commitRecord{
		Magic:    magicObjRec,
		Epoch:    uint64(o.epoch),
		RootAddr: rootAddr,
		Levels:   int64(o.tree.levels),
	}
	if sc.recBuf == nil {
		//lint:allow hotalloc one-time lazy init of the commit-record sector
		sc.recBuf = make([]byte, sectorSize)
	}
	rec.marshalInto(sc.recBuf)
	slot := int64(uint64(o.epoch) % objRingSlots)
	done = s.arr.Write(done, o.ringOff+slot*sectorSize, sc.recBuf)

	// Replaced blocks become reusable once this commit is durable.
	s.alloc.freeAt(sc.freed, done)
	return o.epoch, done, nil
}

// serializeNode rewrites n (and, recursively, its dirty descendants)
// to fresh disk addresses, clearing the dirty flags. Returns n's new
// address.
func (o *Object) serializeNode(at time.Duration, n *node, levelsLeft int) (int64, error) {
	s := o.store
	sc := &o.sc
	if levelsLeft > 1 {
		for i, kid := range n.kids {
			if kid == nil || !kid.dirty {
				continue
			}
			addr, err := o.serializeNode(at, kid, levelsLeft-1)
			if err != nil {
				return 0, err
			}
			n.children[i] = addr
		}
	}
	n.dirty = false
	if n.addr != 0 {
		sc.freed = append(sc.freed, n.addr)
	}
	addr, err := s.alloc.alloc(at)
	if err != nil {
		return 0, err
	}
	n.addr = addr
	buf := sc.nodeBuf()
	marshalNodeInto(buf, n.children)
	sc.extents = append(sc.extents, disk.Extent{Offset: addr, Data: buf})
	return addr, nil
}

// ReadBlock fills dst with block idx's contents (zeroes if the block
// was never written) and returns the completion time.
func (o *Object) ReadBlock(at time.Duration, idx int64, dst []byte) (time.Duration, error) {
	if idx < 0 || idx >= o.maxBlocks {
		//lint:allow hotalloc caller-bug error path
		return at, fmt.Errorf("objstore: read block %d out of range for %q", idx, o.name)
	}
	o.mu.Lock()
	addr := o.tree.lookup(idx)
	o.mu.Unlock()
	if addr == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return at, nil
	}
	if len(dst) > BlockSize {
		dst = dst[:BlockSize]
	}
	return o.store.arr.Read(at, addr, dst), nil
}

// WrittenBlocks returns the indices of all blocks ever written, in
// order. Used by restore paths that page data back in.
func (o *Object) WrittenBlocks() []int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var idxs []int64
	o.tree.forEach(func(idx, _ int64) { idxs = append(idxs, idx) })
	return idxs
}
