package objstore

// treeFanout is the number of children per radix node (4 KiB node of
// 8-byte disk addresses).
const treeFanout = BlockSize / 8

// node is the in-memory form of one radix-tree node. The children
// array holds disk addresses (0 = absent); kids caches loaded child
// nodes for interior levels.
type node struct {
	addr     int64 // disk address of the serialized form of this node
	children []int64
	kids     []*node // interior nodes only
	// dirty marks nodes whose path was modified since the last commit;
	// Commit's serializer descends exactly the dirty subtrees and
	// clears the flags.
	dirty bool
}

func newNode(interior bool) *node {
	//lint:allow hotalloc tree structure growth, retained across commits (COW rewrites reuse nodes)
	n := &node{children: make([]int64, treeFanout)}
	if interior {
		//lint:allow hotalloc tree structure growth, retained across commits
		n.kids = make([]*node, treeFanout)
	}
	return n
}

// tree is the COW radix tree of one object. Leaves map block indices
// to data-block disk addresses.
type tree struct {
	root   *node
	levels int // 1 = root is a leaf
	// topDiv is treeFanout^(levels-1): the divisor that extracts the
	// root-level slot from a block index, so path walks need no
	// per-call slot-path allocation.
	topDiv int64
}

// levelsFor returns how many radix levels are needed for maxBlocks
// blocks.
func levelsFor(maxBlocks int64) int {
	levels := 1
	capacity := int64(treeFanout)
	for capacity < maxBlocks {
		capacity *= treeFanout
		levels++
	}
	return levels
}

func newTree(maxBlocks int64) *tree {
	levels := levelsFor(maxBlocks)
	topDiv := int64(1)
	for i := 0; i < levels-1; i++ {
		topDiv *= treeFanout
	}
	return &tree{root: newNode(levels > 1), levels: levels, topDiv: topDiv}
}

// lookup returns the data-block address for idx, or 0.
func (t *tree) lookup(idx int64) int64 {
	n := t.root
	div := t.topDiv
	for level := 0; level < t.levels-1; level++ {
		n = n.kids[int((idx/div)%treeFanout)]
		if n == nil {
			return 0
		}
		div /= treeFanout
	}
	return n.children[int((idx/div)%treeFanout)]
}

// set installs addr for idx, marking the touched path dirty for the
// next commit's COW rewrite, and returns the previous address (0 if
// none). Interior nodes are created as needed.
func (t *tree) set(idx int64, addr int64) (old int64) {
	n := t.root
	div := t.topDiv
	for level := 0; level < t.levels-1; level++ {
		n.dirty = true
		slot := int((idx / div) % treeFanout)
		next := n.kids[slot]
		if next == nil {
			next = newNode(level < t.levels-2)
			n.kids[slot] = next
			n.children[slot] = 0 // not yet on disk
		}
		n = next
		div /= treeFanout
	}
	n.dirty = true
	slot := int((idx / div) % treeFanout)
	old = n.children[slot]
	n.children[slot] = addr
	return old
}

// forEach visits every (blockIdx, addr) pair in the tree in index
// order.
func (t *tree) forEach(fn func(idx int64, addr int64)) {
	t.walk(t.root, 0, t.levels, fn)
}

func (t *tree) walk(n *node, base int64, levelsLeft int, fn func(idx, addr int64)) {
	if n == nil {
		return
	}
	if levelsLeft == 1 {
		for i, addr := range n.children {
			if addr != 0 {
				fn(base+int64(i), addr)
			}
		}
		return
	}
	span := int64(1)
	for i := 0; i < levelsLeft-1; i++ {
		span *= treeFanout
	}
	for i := 0; i < treeFanout; i++ {
		if n.kids[i] != nil {
			t.walk(n.kids[i], base+int64(i)*span, levelsLeft-1, fn)
		}
	}
}

// nodeAddrs visits every node in the tree (for recovery's used-block
// accounting).
func (t *tree) nodeAddrs(fn func(addr int64)) {
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		if n.addr != 0 {
			fn(n.addr)
		}
		for _, k := range n.kids {
			if k != nil {
				visit(k)
			}
		}
	}
	visit(t.root)
}
