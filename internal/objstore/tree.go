package objstore

// treeFanout is the number of children per radix node (4 KiB node of
// 8-byte disk addresses).
const treeFanout = BlockSize / 8

// node is the in-memory form of one radix-tree node. The children
// array holds disk addresses (0 = absent); kids caches loaded child
// nodes for interior levels.
type node struct {
	addr     int64 // disk address of the serialized form of this node
	children []int64
	kids     []*node // interior nodes only
}

func newNode(interior bool) *node {
	n := &node{children: make([]int64, treeFanout)}
	if interior {
		n.kids = make([]*node, treeFanout)
	}
	return n
}

// tree is the COW radix tree of one object. Leaves map block indices
// to data-block disk addresses.
type tree struct {
	root   *node
	levels int // 1 = root is a leaf
}

// levelsFor returns how many radix levels are needed for maxBlocks
// blocks.
func levelsFor(maxBlocks int64) int {
	levels := 1
	capacity := int64(treeFanout)
	for capacity < maxBlocks {
		capacity *= treeFanout
		levels++
	}
	return levels
}

func newTree(maxBlocks int64) *tree {
	levels := levelsFor(maxBlocks)
	return &tree{root: newNode(levels > 1), levels: levels}
}

// slotPath returns the child index at each level for block idx, from
// the root down.
func (t *tree) slotPath(idx int64) []int {
	path := make([]int, t.levels)
	for level := t.levels - 1; level >= 0; level-- {
		path[level] = int(idx % treeFanout)
		idx /= treeFanout
	}
	return path
}

// lookup returns the data-block address for idx, or 0.
func (t *tree) lookup(idx int64) int64 {
	n := t.root
	path := t.slotPath(idx)
	for level := 0; level < t.levels-1; level++ {
		n = n.kids[path[level]]
		if n == nil {
			return 0
		}
	}
	return n.children[path[t.levels-1]]
}

// set installs addr for idx and returns the previous address (0 if
// none). Interior nodes are created as needed; the dirtied path is
// the caller's responsibility to rewrite during commit.
func (t *tree) set(idx int64, addr int64) (old int64) {
	n := t.root
	path := t.slotPath(idx)
	for level := 0; level < t.levels-1; level++ {
		next := n.kids[path[level]]
		if next == nil {
			next = newNode(level < t.levels-2)
			n.kids[path[level]] = next
			n.children[path[level]] = 0 // not yet on disk
		}
		n = next
	}
	slot := path[t.levels-1]
	old = n.children[slot]
	n.children[slot] = addr
	return old
}

// pathNodes returns the nodes along idx's path, root first. Nodes are
// created if missing (matching set's behavior).
func (t *tree) pathNodes(idx int64) []*node {
	nodes := make([]*node, 0, t.levels)
	n := t.root
	nodes = append(nodes, n)
	path := t.slotPath(idx)
	for level := 0; level < t.levels-1; level++ {
		next := n.kids[path[level]]
		if next == nil {
			next = newNode(level < t.levels-2)
			n.kids[path[level]] = next
			n.children[path[level]] = 0
		}
		n = next
		nodes = append(nodes, n)
	}
	return nodes
}

// forEach visits every (blockIdx, addr) pair in the tree in index
// order.
func (t *tree) forEach(fn func(idx int64, addr int64)) {
	t.walk(t.root, 0, t.levels, fn)
}

func (t *tree) walk(n *node, base int64, levelsLeft int, fn func(idx, addr int64)) {
	if n == nil {
		return
	}
	if levelsLeft == 1 {
		for i, addr := range n.children {
			if addr != 0 {
				fn(base+int64(i), addr)
			}
		}
		return
	}
	span := int64(1)
	for i := 0; i < levelsLeft-1; i++ {
		span *= treeFanout
	}
	for i := 0; i < treeFanout; i++ {
		if n.kids[i] != nil {
			t.walk(n.kids[i], base+int64(i)*span, levelsLeft-1, fn)
		}
	}
}

// nodeAddrs visits every node in the tree (for recovery's used-block
// accounting).
func (t *tree) nodeAddrs(fn func(addr int64)) {
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		if n.addr != 0 {
			fn(n.addr)
		}
		for _, k := range n.kids {
			if k != nil {
				visit(k)
			}
		}
	}
	visit(t.root)
}
