package objstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"memsnap/internal/disk"
	"memsnap/internal/sim"
)

func newStore(t *testing.T) (*Store, *disk.Array) {
	t.Helper()
	costs := sim.DefaultCosts()
	arr := disk.NewArray(costs, 2, 64<<20)
	s, _, err := Format(costs, arr, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s, arr
}

func block(b byte) []byte { return bytes.Repeat([]byte{b}, BlockSize) }

func TestCreateOpenObject(t *testing.T) {
	s, _ := newStore(t)
	obj, _, err := s.CreateObject(0, "alpha", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Name() != "alpha" || obj.MaxBlocks() != 256 {
		t.Fatalf("object = %q max=%d", obj.Name(), obj.MaxBlocks())
	}
	got, err := s.OpenObject("alpha")
	if err != nil || got != obj {
		t.Fatal("OpenObject mismatch")
	}
	if _, err := s.OpenObject("missing"); err == nil {
		t.Fatal("missing object opened")
	}
	if _, _, err := s.CreateObject(0, "alpha", 4096); err == nil {
		t.Fatal("duplicate create allowed")
	}
}

func TestCommitReadBack(t *testing.T) {
	s, _ := newStore(t)
	obj, _, _ := s.CreateObject(0, "o", 1<<20)
	epoch, done, err := obj.Commit(0, []BlockWrite{
		{Index: 3, Data: block(0xAA)},
		{Index: 77, Data: block(0xBB)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d", epoch)
	}
	buf := make([]byte, BlockSize)
	if _, err := obj.ReadBlock(done, 3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, block(0xAA)) {
		t.Fatal("block 3 mismatch")
	}
	obj.ReadBlock(done, 77, buf)
	if !bytes.Equal(buf, block(0xBB)) {
		t.Fatal("block 77 mismatch")
	}
	// Unwritten block reads as zeroes.
	obj.ReadBlock(done, 5, buf)
	if !bytes.Equal(buf, make([]byte, BlockSize)) {
		t.Fatal("sparse block not zero")
	}
}

func TestCommitOverwrite(t *testing.T) {
	s, _ := newStore(t)
	obj, _, _ := s.CreateObject(0, "o", 1<<20)
	_, done, _ := obj.Commit(0, []BlockWrite{{Index: 0, Data: block(1)}})
	_, done, _ = obj.Commit(done, []BlockWrite{{Index: 0, Data: block(2)}})
	buf := make([]byte, BlockSize)
	obj.ReadBlock(done, 0, buf)
	if buf[0] != 2 {
		t.Fatalf("overwrite lost: %d", buf[0])
	}
}

func TestEpochMonotonic(t *testing.T) {
	s, _ := newStore(t)
	obj, _, _ := s.CreateObject(0, "o", 1<<20)
	var at time.Duration
	for i := 1; i <= 20; i++ {
		epoch, done, err := obj.Commit(at, []BlockWrite{{Index: int64(i % 5), Data: block(byte(i))}})
		if err != nil {
			t.Fatal(err)
		}
		if epoch != Epoch(i) {
			t.Fatalf("epoch = %d at commit %d", epoch, i)
		}
		at = done
	}
}

func TestShortWritePadded(t *testing.T) {
	s, _ := newStore(t)
	obj, _, _ := s.CreateObject(0, "o", 1<<20)
	_, done, err := obj.Commit(0, []BlockWrite{{Index: 9, Data: []byte("short")}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	obj.ReadBlock(done, 9, buf)
	if string(buf[:5]) != "short" || buf[5] != 0 {
		t.Fatal("short write not padded")
	}
}

func TestCommitOutOfRange(t *testing.T) {
	s, _ := newStore(t)
	obj, _, _ := s.CreateObject(0, "o", 8*BlockSize)
	if _, _, err := obj.Commit(0, []BlockWrite{{Index: 8, Data: block(1)}}); err == nil {
		t.Fatal("out-of-range commit accepted")
	}
	if _, _, err := obj.Commit(0, []BlockWrite{{Index: -1, Data: block(1)}}); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := obj.ReadBlock(0, 99, make([]byte, BlockSize)); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestRecoveryRoundTrip(t *testing.T) {
	costs := sim.DefaultCosts()
	arr := disk.NewArray(costs, 2, 64<<20)
	s, at, _ := Format(costs, arr, 0)
	objA, at, _ := s.CreateObject(at, "a", 1<<20)
	objB, at, _ := s.CreateObject(at, "b", 1<<20)
	_, at, _ = objA.Commit(at, []BlockWrite{{Index: 1, Data: block(0x11)}})
	_, at, _ = objB.Commit(at, []BlockWrite{{Index: 2, Data: block(0x22)}})
	_, at, _ = objA.Commit(at, []BlockWrite{{Index: 1, Data: block(0x33)}, {Index: 200, Data: block(0x44)}})

	// Reopen from the raw array: everything must come back.
	s2, at2, err := Open(costs, arr, at)
	if err != nil {
		t.Fatal(err)
	}
	if names := s2.Objects(); len(names) != 2 {
		t.Fatalf("objects after recovery: %v", names)
	}
	a2, _ := s2.OpenObject("a")
	if a2.Epoch() != 2 {
		t.Fatalf("a epoch = %d", a2.Epoch())
	}
	buf := make([]byte, BlockSize)
	a2.ReadBlock(at2, 1, buf)
	if buf[0] != 0x33 {
		t.Fatalf("a block1 = %#x", buf[0])
	}
	a2.ReadBlock(at2, 200, buf)
	if buf[0] != 0x44 {
		t.Fatalf("a block200 = %#x", buf[0])
	}
	b2, _ := s2.OpenObject("b")
	b2.ReadBlock(at2, 2, buf)
	if buf[0] != 0x22 {
		t.Fatalf("b block2 = %#x", buf[0])
	}
	if got := a2.WrittenBlocks(); len(got) != 2 || got[0] != 1 || got[1] != 200 {
		t.Fatalf("WrittenBlocks = %v", got)
	}
}

func TestTornCommitInvisibleAfterRecovery(t *testing.T) {
	costs := sim.DefaultCosts()
	arr := disk.NewArray(costs, 2, 64<<20)
	s, at, _ := Format(costs, arr, 0)
	obj, at, _ := s.CreateObject(at, "o", 1<<20)
	_, at, _ = obj.Commit(at, []BlockWrite{{Index: 0, Data: block(0xA0)}})

	// Submit a second commit but cut power before it is durable.
	_, done, _ := obj.Commit(at, []BlockWrite{{Index: 0, Data: block(0xB0)}})
	cut := at + (done-at)/2
	arr.CutPower(cut, sim.NewRNG(99))

	s2, at2, err := Open(costs, arr, done)
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := s2.OpenObject("o")
	buf := make([]byte, BlockSize)
	o2.ReadBlock(at2, 0, buf)
	// Either the new commit fully made it (record sector survived) or
	// we are back at epoch 1 contents. Never garbage.
	switch {
	case buf[0] == 0xB0 && o2.Epoch() == 2:
	case buf[0] == 0xA0 && o2.Epoch() == 1:
	default:
		t.Fatalf("corrupt state after torn commit: byte=%#x epoch=%d", buf[0], o2.Epoch())
	}
	for _, b := range buf {
		if b != buf[0] {
			t.Fatal("torn data visible through recovered tree")
		}
	}
}

func TestCrashTortureManyCuts(t *testing.T) {
	// Repeatedly cut power at random points inside a commit and check
	// that recovery always lands on a complete epoch.
	costs := sim.DefaultCosts()
	for seed := uint64(0); seed < 25; seed++ {
		rng := sim.NewRNG(seed + 1000)
		arr := disk.NewArray(costs, 2, 64<<20)
		s, at, _ := Format(costs, arr, 0)
		obj, at, _ := s.CreateObject(at, "o", 4<<20)

		// A few durable commits.
		nDurable := 1 + int(seed%4)
		for i := 0; i < nDurable; i++ {
			_, at, _ = obj.Commit(at, []BlockWrite{
				{Index: int64(i), Data: block(byte(0x10 + i))},
				{Index: 500, Data: block(byte(0x10 + i))},
			})
		}
		// One in-flight commit, torn at a random instant.
		_, done, _ := obj.Commit(at, []BlockWrite{
			{Index: 0, Data: block(0xEE)},
			{Index: 500, Data: block(0xEE)},
		})
		cut := at + time.Duration(rng.Int63n(int64(done-at)+1))
		arr.CutPower(cut, rng)

		s2, at2, err := Open(costs, arr, done)
		if err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		o2, _ := s2.OpenObject("o")
		b0, b500 := make([]byte, BlockSize), make([]byte, BlockSize)
		o2.ReadBlock(at2, 0, b0)
		o2.ReadBlock(at2, 500, b500)
		// Block 0 and block 500 were always written in the same
		// commit, so they must agree on the epoch they came from.
		if b500[0] != byte(0x10+nDurable-1) && b500[0] != 0xEE {
			t.Fatalf("seed %d: block 500 from unknown epoch: %#x", seed, b500[0])
		}
		if b500[0] == 0xEE && b0[0] != 0xEE {
			t.Fatalf("seed %d: atomicity violated: b0=%#x b500=%#x", seed, b0[0], b500[0])
		}
		if b0[0] == 0xEE && b500[0] != 0xEE {
			t.Fatalf("seed %d: atomicity violated: b0=%#x b500=%#x", seed, b0[0], b500[0])
		}
		for i, b := range b0 {
			if b != b0[0] {
				t.Fatalf("seed %d: torn block content at %d", seed, i)
			}
		}
	}
}

func TestSpaceReclamation(t *testing.T) {
	// Overwriting the same block forever must not leak space.
	s, _ := newStore(t)
	obj, _, _ := s.CreateObject(0, "o", 1<<20)
	var at time.Duration
	_, at, _ = obj.Commit(at, []BlockWrite{{Index: 0, Data: block(0)}})
	baseline := s.FreeBlocks()
	for i := 0; i < 200; i++ {
		_, done, err := obj.Commit(at, []BlockWrite{{Index: 0, Data: block(byte(i))}})
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	if got := s.FreeBlocks(); baseline-got > 8 {
		t.Fatalf("space leak: free went %d -> %d over 200 overwrites", baseline, got)
	}
}

func TestRandomCommitsSequentialOnDisk(t *testing.T) {
	// The paper: "MemSnap's COW object store translates random object
	// updates into sequential writes on disk." With a bump allocator
	// and vectored IO, a commit of N random blocks should cost far
	// less than N separate random IOs.
	costs := sim.DefaultCosts()
	s, _ := newStore(t)
	obj, _, _ := s.CreateObject(0, "o", 16<<20)
	rng := sim.NewRNG(1)
	writes := make([]BlockWrite, 16)
	for i := range writes {
		writes[i] = BlockWrite{Index: rng.Int63n(4096), Data: block(byte(i))}
	}
	_, done, err := obj.Commit(0, writes)
	if err != nil {
		t.Fatal(err)
	}
	perPageRandom := 16 * costs.IOCost(BlockSize)
	if done >= perPageRandom {
		t.Fatalf("random commit %v not faster than 16 random IOs %v", done, perPageRandom)
	}
}

func TestCommitRecordOrderedAfterData(t *testing.T) {
	// The commit record must be a second IO phase: total latency of a
	// commit is strictly greater than the data IO alone.
	costs := sim.DefaultCosts()
	s, _ := newStore(t)
	obj, _, _ := s.CreateObject(0, "o", 1<<20)
	_, done, _ := obj.Commit(0, []BlockWrite{{Index: 0, Data: block(1)}})
	if done < 2*costs.DiskBaseLatency {
		t.Fatalf("commit %v too fast for two ordered IO phases", done)
	}
}

func TestEmptyCommit(t *testing.T) {
	s, _ := newStore(t)
	obj, _, _ := s.CreateObject(0, "o", 1<<20)
	epoch, done, err := obj.Commit(5*time.Microsecond, nil)
	if err != nil || epoch != 1 || done != 5*time.Microsecond {
		t.Fatalf("empty commit: epoch=%d done=%v err=%v", epoch, done, err)
	}
}

func TestManyObjectsIndependentEpochs(t *testing.T) {
	s, _ := newStore(t)
	var at time.Duration
	for i := 0; i < 10; i++ {
		obj, done, err := s.CreateObject(at, fmt.Sprintf("obj%d", i), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		at = done
		for j := 0; j <= i; j++ {
			_, at, _ = obj.Commit(at, []BlockWrite{{Index: 0, Data: block(byte(j))}})
		}
		if obj.Epoch() != Epoch(i+1) {
			t.Fatalf("obj%d epoch = %d", i, obj.Epoch())
		}
	}
}

func TestCommitRecoverProperty(t *testing.T) {
	// Arbitrary committed states always recover exactly.
	f := func(seed uint64, nCommits uint8) bool {
		costs := sim.DefaultCosts()
		rng := sim.NewRNG(seed)
		arr := disk.NewArray(costs, 2, 64<<20)
		s, at, _ := Format(costs, arr, 0)
		obj, at, _ := s.CreateObject(at, "o", 4<<20)
		want := make(map[int64]byte)
		n := int(nCommits%8) + 1
		for c := 0; c < n; c++ {
			var writes []BlockWrite
			for w := 0; w < 1+int(rng.Uint64()%4); w++ {
				idx := rng.Int63n(1024)
				val := byte(rng.Uint64())
				writes = append(writes, BlockWrite{Index: idx, Data: block(val)})
				want[idx] = val
			}
			_, done, err := obj.Commit(at, writes)
			if err != nil {
				return false
			}
			at = done
		}
		s2, at2, err := Open(costs, arr, at)
		if err != nil {
			return false
		}
		o2, _ := s2.OpenObject("o")
		buf := make([]byte, BlockSize)
		for idx, val := range want {
			o2.ReadBlock(at2, idx, buf)
			if buf[0] != val || buf[BlockSize-1] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
