// Package objstore implements MemSnap's copy-on-write object store
// (§3, "Persisting MemSnap Regions"): a key-value store of named
// objects whose block contents are indexed by COW radix trees. Every
// uCheckpoint commit writes data to freshly allocated space, rewrites
// the affected tree path bottom-up, and finally persists a checksummed
// commit record; the commit record write is ordered after the data
// write, so an interrupted commit is invisible after recovery.
//
// The store deliberately has no file API, no buffer cache and no
// POSIX semantics — it does direct IO against the disk array and
// optimizes for random 4 KiB writes, which it lays out sequentially.
package objstore

import (
	"fmt"
	"sort"
	"time"
)

// BlockSize is the store's allocation and IO unit.
const BlockSize = 4096

// allocator hands out 4 KiB blocks from the data area. Freed blocks
// enter a quarantine keyed by the virtual time at which the commit
// that freed them becomes durable; they are only reused by
// allocations that happen after that time. This preserves the
// previous epoch's blocks until the new epoch's commit record is
// durable, which is what makes torn commits recoverable.
type allocator struct {
	next  int64 // bump pointer (byte offset)
	limit int64 // end of the data area

	free       []int64 // reusable block offsets
	quarantine []quarantinedBlock
}

type quarantinedBlock struct {
	offset  int64
	release time.Duration
}

func newAllocator(start, limit int64) *allocator {
	return &allocator{next: start, limit: limit}
}

// alloc returns one block offset for an allocation occurring at
// virtual time at.
func (a *allocator) alloc(at time.Duration) (int64, error) {
	a.releaseQuarantine(at)
	if n := len(a.free); n > 0 {
		off := a.free[n-1]
		a.free = a.free[:n-1]
		return off, nil
	}
	if a.next+BlockSize > a.limit {
		//lint:allow hotalloc out-of-space error path
		return 0, fmt.Errorf("objstore: out of space (limit %d)", a.limit)
	}
	off := a.next
	a.next += BlockSize
	return off, nil
}

// allocN allocates n blocks, preferring a contiguous bump run so
// commit IO stays sequential on disk.
func (a *allocator) allocN(at time.Duration, n int) ([]int64, error) {
	offs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		off, err := a.alloc(at)
		if err != nil {
			return nil, err
		}
		offs = append(offs, off)
	}
	return offs, nil
}

// freeAt queues blocks for reuse once the commit that freed them is
// durable at the given virtual time.
func (a *allocator) freeAt(offsets []int64, release time.Duration) {
	for _, off := range offsets {
		a.quarantine = append(a.quarantine, quarantinedBlock{offset: off, release: release})
	}
}

// releaseQuarantine moves matured blocks to the free list.
func (a *allocator) releaseQuarantine(at time.Duration) {
	kept := a.quarantine[:0]
	for _, q := range a.quarantine {
		if q.release <= at {
			a.free = append(a.free, q.offset)
		} else {
			kept = append(kept, q)
		}
	}
	a.quarantine = kept
}

// markUsed removes specific blocks from availability during recovery:
// the allocator is rebuilt by scanning live trees, so everything not
// marked is free.
type usedSet map[int64]bool

// rebuild resets the allocator from a used-block set: the bump pointer
// moves past the highest used block and every hole below it becomes
// free.
func (a *allocator) rebuild(start int64, used usedSet) {
	a.free = nil
	a.quarantine = nil
	high := start
	for off := range used {
		if off+BlockSize > high {
			high = off + BlockSize
		}
	}
	a.next = high
	var holes []int64
	for off := start; off < high; off += BlockSize {
		if !used[off] {
			holes = append(holes, off)
		}
	}
	sort.Slice(holes, func(i, j int) bool { return holes[i] > holes[j] })
	a.free = holes
}

// freeBlocks reports how many blocks are currently allocatable.
func (a *allocator) freeBlocks() int64 {
	return int64(len(a.free)) + (a.limit-a.next)/BlockSize
}
