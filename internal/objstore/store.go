package objstore

import (
	"fmt"
	"sync"
	"time"

	"memsnap/internal/disk"
	"memsnap/internal/sim"
)

// Epoch is an object's monotonic checkpoint counter. Each successful
// commit increments it; recovery restores the object at its highest
// durable epoch.
type Epoch uint64

// Store is a COW object store on a disk array.
type Store struct {
	costs *sim.CostModel
	arr   *disk.Array

	mu      sync.Mutex
	alloc   *allocator
	objects map[string]*Object
	entries []dirEntry
	dirAddr int64 // current directory block (0 = empty directory)
	dirSeq  uint64
}

// Format initializes an empty store on the array, returning the store
// and the virtual time at which formatting is durable.
func Format(costs *sim.CostModel, arr *disk.Array, at time.Duration) (*Store, time.Duration, error) {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	s := &Store{
		costs:   costs,
		arr:     arr,
		alloc:   newAllocator(dataStart(), arr.Capacity()),
		objects: make(map[string]*Object),
		dirSeq:  1,
	}
	sb := &superblock{Magic: magicSuper, Version: 1, DataStart: dataStart(), Capacity: arr.Capacity()}
	done := arr.Write(at, 0, sb.marshal())
	rec := &dirRecord{Magic: magicDirRec, Seq: s.dirSeq, DirBlock: 0}
	done = arr.Write(done, dirRingOff, rec.marshal())
	return s, done, nil
}

// Open recovers a store from the array: it locates the newest valid
// directory, loads every object at its highest durable epoch, and
// rebuilds the allocator from the union of live blocks. All reads are
// charged to the returned completion time.
func Open(costs *sim.CostModel, arr *disk.Array, at time.Duration) (*Store, time.Duration, error) {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	buf := make([]byte, sectorSize)
	at = arr.Read(at, 0, buf)
	if _, err := unmarshalSuperblock(buf); err != nil {
		return nil, at, err
	}

	s := &Store{
		costs:   costs,
		arr:     arr,
		alloc:   newAllocator(dataStart(), arr.Capacity()),
		objects: make(map[string]*Object),
	}

	// Newest valid directory record wins.
	var best *dirRecord
	for slot := 0; slot < dirRingSlots; slot++ {
		at = arr.Read(at, int64(dirRingOff+slot*sectorSize), buf)
		if rec, ok := unmarshalDirRecord(buf); ok {
			if best == nil || rec.Seq > best.Seq {
				best = rec
			}
		}
	}
	if best == nil {
		return nil, at, fmt.Errorf("objstore: no valid directory record (not formatted?)")
	}
	s.dirSeq = best.Seq
	s.dirAddr = best.DirBlock

	used := usedSet{}
	if s.dirAddr != 0 {
		used[s.dirAddr] = true
		dirBuf := make([]byte, BlockSize)
		at = arr.Read(at, s.dirAddr, dirBuf)
		s.entries = unmarshalDirectory(dirBuf)
	}

	for _, e := range s.entries {
		obj, doneAt, err := s.loadObject(e, at, used)
		if err != nil {
			return nil, at, err
		}
		at = doneAt
		s.objects[e.Name] = obj
	}
	s.alloc.rebuild(dataStart(), used)
	return s, at, nil
}

// loadObject recovers one object from its commit ring.
func (s *Store) loadObject(e dirEntry, at time.Duration, used usedSet) (*Object, time.Duration, error) {
	used[e.RingOff] = true
	buf := make([]byte, sectorSize)
	var best *commitRecord
	for slot := 0; slot < objRingSlots; slot++ {
		at = s.arr.Read(at, e.RingOff+int64(slot*sectorSize), buf)
		if rec, ok := unmarshalCommitRecord(buf); ok {
			if best == nil || rec.Epoch > best.Epoch {
				best = rec
			}
		}
	}
	obj := &Object{
		store:     s,
		name:      e.Name,
		ringOff:   e.RingOff,
		maxBlocks: e.MaxBlocks,
		tree:      newTree(e.MaxBlocks),
	}
	if best == nil || best.RootAddr == 0 {
		// Never committed (or only the zeroed ring exists): empty.
		return obj, at, nil
	}
	obj.epoch = Epoch(best.Epoch)
	obj.tree.levels = int(best.Levels)
	root, doneAt, err := s.loadNode(best.RootAddr, int(best.Levels), at, used)
	if err != nil {
		return nil, at, err
	}
	obj.tree.root = root
	// Mark data blocks used.
	obj.tree.forEach(func(_, addr int64) { used[addr] = true })
	return obj, doneAt, nil
}

// loadNode reads a serialized tree node and its descendants.
func (s *Store) loadNode(addr int64, levelsLeft int, at time.Duration, used usedSet) (*node, time.Duration, error) {
	used[addr] = true
	buf := make([]byte, BlockSize)
	at = s.arr.Read(at, addr, buf)
	n := &node{addr: addr, children: unmarshalNode(buf)}
	if levelsLeft > 1 {
		n.kids = make([]*node, treeFanout)
		for i, child := range n.children {
			if child == 0 {
				continue
			}
			kid, doneAt, err := s.loadNode(child, levelsLeft-1, at, used)
			if err != nil {
				return nil, at, err
			}
			at = doneAt
			n.kids[i] = kid
		}
	}
	return n, at, nil
}

// CreateObject adds a named object sized for maxBytes and persists
// the updated directory. Returns the object and the durability time.
func (s *Store) CreateObject(at time.Duration, name string, maxBytes int64) (*Object, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.objects[name]; exists {
		return nil, at, fmt.Errorf("objstore: object %q exists", name)
	}
	maxBlocks := (maxBytes + BlockSize - 1) / BlockSize
	if maxBlocks == 0 {
		maxBlocks = 1
	}

	ringOff, err := s.alloc.alloc(at)
	if err != nil {
		return nil, at, err
	}
	newDirAddr, err := s.alloc.alloc(at)
	if err != nil {
		return nil, at, err
	}

	entries := append(append([]dirEntry(nil), s.entries...), dirEntry{
		Name:      name,
		RingOff:   ringOff,
		MaxBlocks: maxBlocks,
	})
	dirBuf, err := marshalDirectory(entries)
	if err != nil {
		return nil, at, err
	}

	// Phase 1: zero the object ring (so stale bytes can never parse
	// as a commit record) and write the new directory block.
	done := s.arr.WriteV(at, []disk.Extent{
		{Offset: ringOff, Data: make([]byte, BlockSize)},
		{Offset: newDirAddr, Data: dirBuf},
	})
	// Phase 2: flip the directory ring to the new block.
	s.dirSeq++
	rec := &dirRecord{Magic: magicDirRec, Seq: s.dirSeq, DirBlock: newDirAddr}
	slot := int64(s.dirSeq % dirRingSlots)
	done = s.arr.Write(done, dirRingOff+slot*sectorSize, rec.marshal())

	if s.dirAddr != 0 {
		s.alloc.freeAt([]int64{s.dirAddr}, done)
	}
	s.dirAddr = newDirAddr
	s.entries = entries

	obj := &Object{
		store:     s,
		name:      name,
		ringOff:   ringOff,
		maxBlocks: maxBlocks,
		tree:      newTree(maxBlocks),
	}
	s.objects[name] = obj
	return obj, done, nil
}

// OpenObject returns an existing object by name.
func (s *Store) OpenObject(name string) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[name]
	if !ok {
		return nil, fmt.Errorf("objstore: object %q not found", name)
	}
	return obj, nil
}

// Objects returns the names of all objects.
func (s *Store) Objects() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.objects))
	for _, e := range s.entries {
		names = append(names, e.Name)
	}
	return names
}

// FreeBlocks reports allocatable space, for tests and tooling.
func (s *Store) FreeBlocks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alloc.freeBlocks()
}

// Array exposes the underlying disk array (for stats and crash
// injection by tests and the harness).
func (s *Store) Array() *disk.Array { return s.arr }
