package objstore

import (
	"encoding/binary"
	"fmt"
)

// On-disk layout.
//
//	offset 0:              superblock (1 sector)
//	offset 4096:           directory ring (dirRingSlots sectors)
//	offset dirDataStart:   directory block (1 block, COW)
//	data area:             everything else (object rings, tree nodes,
//	                       data blocks), managed by the allocator
const (
	magicSuper  = 0x4d534e41505355 // "MSNAPSU"
	magicDirRec = 0x4d534e41504452 // "MSNAPDR"
	magicObjRec = 0x4d534e41504f52 // "MSNAPOR"

	sectorSize   = 512
	dirRingOff   = BlockSize
	dirRingSlots = 8
	dataStartOff = dirRingOff + dirRingSlots*sectorSize // rounded up below

	// objRingSlots is the number of commit-record slots per object;
	// commits rotate through them so a torn write can never destroy
	// the previous valid record.
	objRingSlots = 8
	objRingBytes = objRingSlots * sectorSize
)

// dataStart returns the first block-aligned offset after the fixed
// areas.
func dataStart() int64 {
	off := int64(dataStartOff)
	if r := off % BlockSize; r != 0 {
		off += BlockSize - r
	}
	return off
}

// checksum is FNV-1a inlined (identical to hash/fnv's 64-bit variant)
// so the commit hot path does not allocate a hasher per record.
func checksum(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// superblock is written once at format time.
type superblock struct {
	Magic     uint64
	Version   uint64
	DataStart int64
	Capacity  int64
}

func (sb *superblock) marshal() []byte {
	buf := make([]byte, sectorSize)
	binary.LittleEndian.PutUint64(buf[0:], sb.Magic)
	binary.LittleEndian.PutUint64(buf[8:], sb.Version)
	binary.LittleEndian.PutUint64(buf[16:], uint64(sb.DataStart))
	binary.LittleEndian.PutUint64(buf[24:], uint64(sb.Capacity))
	binary.LittleEndian.PutUint64(buf[40:], checksum(buf[:40]))
	return buf
}

func unmarshalSuperblock(buf []byte) (*superblock, error) {
	if checksum(buf[:40]) != binary.LittleEndian.Uint64(buf[40:]) {
		return nil, fmt.Errorf("objstore: superblock checksum mismatch")
	}
	sb := &superblock{
		Magic:     binary.LittleEndian.Uint64(buf[0:]),
		Version:   binary.LittleEndian.Uint64(buf[8:]),
		DataStart: int64(binary.LittleEndian.Uint64(buf[16:])),
		Capacity:  int64(binary.LittleEndian.Uint64(buf[24:])),
	}
	if sb.Magic != magicSuper {
		return nil, fmt.Errorf("objstore: bad superblock magic %#x", sb.Magic)
	}
	return sb, nil
}

// dirRecord is one directory-ring slot: a pointer to the current
// directory block.
type dirRecord struct {
	Magic    uint64
	Seq      uint64
	DirBlock int64
}

func (r *dirRecord) marshal() []byte {
	buf := make([]byte, sectorSize)
	binary.LittleEndian.PutUint64(buf[0:], r.Magic)
	binary.LittleEndian.PutUint64(buf[8:], r.Seq)
	binary.LittleEndian.PutUint64(buf[16:], uint64(r.DirBlock))
	binary.LittleEndian.PutUint64(buf[24:], checksum(buf[:24]))
	return buf
}

func unmarshalDirRecord(buf []byte) (*dirRecord, bool) {
	if checksum(buf[:24]) != binary.LittleEndian.Uint64(buf[24:]) {
		return nil, false
	}
	r := &dirRecord{
		Magic:    binary.LittleEndian.Uint64(buf[0:]),
		Seq:      binary.LittleEndian.Uint64(buf[8:]),
		DirBlock: int64(binary.LittleEndian.Uint64(buf[16:])),
	}
	if r.Magic != magicDirRec {
		return nil, false
	}
	return r, true
}

// dirEntry is one object in the directory block.
type dirEntry struct {
	Name      string
	RingOff   int64
	MaxBlocks int64
}

const maxNameLen = 48

// marshalDirectory packs entries into one block.
func marshalDirectory(entries []dirEntry) ([]byte, error) {
	buf := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(entries)))
	off := 8
	for _, e := range entries {
		if len(e.Name) > maxNameLen {
			return nil, fmt.Errorf("objstore: name %q too long", e.Name)
		}
		if off+maxNameLen+24 > BlockSize {
			return nil, fmt.Errorf("objstore: directory full (%d objects)", len(entries))
		}
		copy(buf[off:], e.Name)
		binary.LittleEndian.PutUint64(buf[off+maxNameLen:], uint64(len(e.Name)))
		binary.LittleEndian.PutUint64(buf[off+maxNameLen+8:], uint64(e.RingOff))
		binary.LittleEndian.PutUint64(buf[off+maxNameLen+16:], uint64(e.MaxBlocks))
		off += maxNameLen + 24
	}
	return buf, nil
}

func unmarshalDirectory(buf []byte) []dirEntry {
	n := int(binary.LittleEndian.Uint32(buf[0:]))
	entries := make([]dirEntry, 0, n)
	off := 8
	for i := 0; i < n; i++ {
		nameLen := int(binary.LittleEndian.Uint64(buf[off+maxNameLen:]))
		if nameLen > maxNameLen {
			break // corrupt entry; directory writes are COW so this
			// only happens with a torn dir block, caught by the ring
		}
		entries = append(entries, dirEntry{
			Name:      string(buf[off : off+nameLen]),
			RingOff:   int64(binary.LittleEndian.Uint64(buf[off+maxNameLen+8:])),
			MaxBlocks: int64(binary.LittleEndian.Uint64(buf[off+maxNameLen+16:])),
		})
		off += maxNameLen + 24
	}
	return entries
}

// commitRecord is one object-ring slot: the durable root of one epoch.
type commitRecord struct {
	Magic    uint64
	Epoch    uint64
	RootAddr int64 // disk offset of the root tree node (0 = empty tree)
	Levels   int64
}

func (r *commitRecord) marshal() []byte {
	buf := make([]byte, sectorSize)
	r.marshalInto(buf)
	return buf
}

// marshalInto writes the record into a caller-owned sector buffer.
func (r *commitRecord) marshalInto(buf []byte) {
	clear(buf[:sectorSize])
	binary.LittleEndian.PutUint64(buf[0:], r.Magic)
	binary.LittleEndian.PutUint64(buf[8:], r.Epoch)
	binary.LittleEndian.PutUint64(buf[16:], uint64(r.RootAddr))
	binary.LittleEndian.PutUint64(buf[24:], uint64(r.Levels))
	binary.LittleEndian.PutUint64(buf[32:], checksum(buf[:32]))
}

func unmarshalCommitRecord(buf []byte) (*commitRecord, bool) {
	if checksum(buf[:32]) != binary.LittleEndian.Uint64(buf[32:]) {
		return nil, false
	}
	r := &commitRecord{
		Magic:    binary.LittleEndian.Uint64(buf[0:]),
		Epoch:    binary.LittleEndian.Uint64(buf[8:]),
		RootAddr: int64(binary.LittleEndian.Uint64(buf[16:])),
		Levels:   int64(binary.LittleEndian.Uint64(buf[24:])),
	}
	if r.Magic != magicObjRec {
		return nil, false
	}
	return r, true
}

// marshalNode serializes a tree node: 512 child addresses.
func marshalNode(children []int64) []byte {
	buf := make([]byte, BlockSize)
	marshalNodeInto(buf, children)
	return buf
}

// marshalNodeInto serializes a tree node into a caller-owned
// BlockSize buffer.
func marshalNodeInto(buf []byte, children []int64) {
	for i, c := range children {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(c))
	}
}

func unmarshalNode(buf []byte) []int64 {
	children := make([]int64, treeFanout)
	for i := range children {
		children[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return children
}
