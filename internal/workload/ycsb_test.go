package workload

import (
	"testing"

	"memsnap/internal/sim"
)

// TestYCSBDeterministicReplay pins that two generators built from the
// same seed and config emit identical op streams, and that a different
// seed diverges.
func TestYCSBDeterministicReplay(t *testing.T) {
	cfg := YCSBConfig{Records: 512, ReadPct: 40, UpdatePct: 30, InsertPct: 20, RMWPct: 10, Theta: 0.99}
	a := NewYCSB(42, cfg)
	b := NewYCSB(42, cfg)
	c := NewYCSB(43, cfg)
	diverged := false
	for i := 0; i < 5000; i++ {
		oa, ob, oc := a.Next(), b.Next(), c.Next()
		if oa != ob {
			t.Fatalf("op %d: same seed diverged: %+v vs %+v", i, oa, ob)
		}
		if oa != oc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatalf("different seeds produced identical 5000-op streams")
	}
	if a.Keys() != b.Keys() {
		t.Fatalf("keyspace growth diverged: %d vs %d", a.Keys(), b.Keys())
	}
}

// TestYCSBMixRatios draws a large sample and checks the realized
// operation mix lands within tolerance of the configured percentages.
func TestYCSBMixRatios(t *testing.T) {
	cases := []struct {
		name string
		cfg  YCSBConfig
	}{
		{"workload-a", YCSBWorkloadA()},
		{"workload-b", YCSBWorkloadB()},
		{"workload-f", YCSBWorkloadF()},
		{"custom", YCSBConfig{ReadPct: 40, UpdatePct: 30, InsertPct: 20, RMWPct: 10}},
	}
	const n = 100000
	const tolerance = 1.5 // percentage points
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			y := NewYCSB(7, tc.cfg)
			var counts [4]int
			for i := 0; i < n; i++ {
				counts[y.Next().Kind]++
			}
			want := [4]int{tc.cfg.ReadPct, tc.cfg.UpdatePct, tc.cfg.InsertPct, tc.cfg.RMWPct}
			for k, w := range want {
				got := float64(counts[k]) * 100 / n
				if got < float64(w)-tolerance || got > float64(w)+tolerance {
					t.Errorf("%v: got %.2f%%, want %d%% ±%.1f", YCSBKind(k), got, w, tolerance)
				}
			}
		})
	}
}

// TestYCSBZipfMatchesSimZipf pins the key-choice path to sim.Zipf
// exactly: for a read-only mix (no keyspace growth), every key must be
// the sample a reference sim.Zipf draws from a replayed RNG.
func TestYCSBZipfMatchesSimZipf(t *testing.T) {
	cfg := YCSBWorkloadC()
	cfg.Records = 1024
	y := NewYCSB(99, cfg)
	ref := sim.NewRNG(99)
	zipf := sim.NewZipf(1024, cfg.Theta)
	for i := 0; i < 5000; i++ {
		op := y.Next()
		if op.Kind != YCSBRead {
			t.Fatalf("op %d: workload C produced %v", i, op.Kind)
		}
		ref.Intn(100) // the generator's mix draw
		if want := zipf.Next(ref); op.Key != want {
			t.Fatalf("op %d: key %d, want sim.Zipf sample %d", i, op.Key, want)
		}
	}
}

// TestYCSBHotKeyConcentration checks zipfian skew concentrates mass on
// a small hot set — and that uniform (Theta=0) does not.
func TestYCSBHotKeyConcentration(t *testing.T) {
	const records = 1000
	const n = 50000
	mass := func(theta float64) float64 {
		cfg := YCSBConfig{Records: records, ReadPct: 100, Theta: theta}
		y := NewYCSB(5, cfg)
		counts := make([]int, records)
		for i := 0; i < n; i++ {
			counts[y.Next().Key]++
		}
		// sim.Zipf ranks keys by id: the hot set is the lowest ids.
		hot := 0
		for k := 0; k < records/100; k++ { // hottest 1%
			hot += counts[k]
		}
		return float64(hot) / n
	}
	if m := mass(0.99); m < 0.25 {
		t.Errorf("theta=0.99: hottest 1%% of keys got %.1f%% of accesses, want >= 25%%", m*100)
	}
	if m := mass(0); m > 0.05 {
		t.Errorf("uniform: hottest 1%% of keys got %.1f%% of accesses, want <= 5%%", m*100)
	}
}

// TestYCSBInsertGrowsKeyspace checks inserts extend the keyspace with
// consecutive fresh keys and later picks can land on them.
func TestYCSBInsertGrowsKeyspace(t *testing.T) {
	cfg := YCSBConfig{Records: 64, InsertPct: 50, ReadPct: 50, Theta: 0.99}
	y := NewYCSB(3, cfg)
	next := int64(64)
	sawGrownRead := false
	for i := 0; i < 2000; i++ {
		op := y.Next()
		switch op.Kind {
		case YCSBInsert:
			if op.Key != next {
				t.Fatalf("insert %d: key %d, want %d", i, op.Key, next)
			}
			next++
		case YCSBRead:
			if op.Key >= y.Keys() {
				t.Fatalf("read key %d outside keyspace %d", op.Key, y.Keys())
			}
			if op.Key >= 64 {
				sawGrownRead = true
			}
		}
	}
	if y.Keys() != next {
		t.Fatalf("Keys() = %d, want %d", y.Keys(), next)
	}
	if !sawGrownRead {
		t.Errorf("no read ever landed on an inserted key")
	}
}
