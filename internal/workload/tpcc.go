package workload

import "memsnap/internal/sim"

// TPCCOp enumerates the five TPC-C transaction types.
type TPCCOp int

// TPC-C transaction types with the standard sysbench mix.
const (
	TPCCNewOrder    TPCCOp = iota // 45%, write
	TPCCPayment                   // 43%, write
	TPCCOrderStatus               // 4%, read
	TPCCDelivery                  // 4%, write
	TPCCStockLevel                // 4%, read
)

// IsWrite reports whether the transaction modifies the database.
func (op TPCCOp) IsWrite() bool {
	return op == TPCCNewOrder || op == TPCCPayment || op == TPCCDelivery
}

// String implements fmt.Stringer.
func (op TPCCOp) String() string {
	switch op {
	case TPCCNewOrder:
		return "NEW_ORDER"
	case TPCCPayment:
		return "PAYMENT"
	case TPCCOrderStatus:
		return "ORDER_STATUS"
	case TPCCDelivery:
		return "DELIVERY"
	case TPCCStockLevel:
		return "STOCK_LEVEL"
	}
	return "UNKNOWN"
}

// TPCCTx is one generated TPC-C transaction.
type TPCCTx struct {
	Op        TPCCOp
	Warehouse int64
	District  int64
	Customer  int64
	// Items are the order lines for NEW_ORDER (item id, quantity).
	Items []TPCCItem
	// Amount is the payment amount for PAYMENT.
	Amount int64
}

// TPCCItem is one order line.
type TPCCItem struct {
	Item     int64
	Quantity int
}

// TPCC generates the OLTP mix of the sysbench TPC-C benchmark used in
// Figure 6 (roughly 50% of transactions write).
type TPCC struct {
	// Warehouses scales the database (paper: 150).
	Warehouses int64
	// ItemCount is the size of the item table (standard: 100000).
	ItemCount int64
	rng       *sim.RNG
}

// NewTPCC returns a generator for the given warehouse count.
func NewTPCC(seed uint64, warehouses int64) *TPCC {
	if warehouses <= 0 {
		warehouses = 150
	}
	return &TPCC{Warehouses: warehouses, ItemCount: 100000, rng: sim.NewRNG(seed)}
}

// Next returns the next transaction.
func (t *TPCC) Next() TPCCTx {
	p := t.rng.Intn(100)
	tx := TPCCTx{
		Warehouse: t.rng.Int63n(t.Warehouses),
		District:  t.rng.Int63n(10),
		Customer:  t.rng.Int63n(3000),
	}
	switch {
	case p < 45:
		tx.Op = TPCCNewOrder
		n := 5 + t.rng.Intn(11) // 5..15 order lines
		tx.Items = make([]TPCCItem, n)
		for i := range tx.Items {
			tx.Items[i] = TPCCItem{Item: t.rng.Int63n(t.ItemCount), Quantity: 1 + t.rng.Intn(10)}
		}
	case p < 88:
		tx.Op = TPCCPayment
		tx.Amount = 1 + t.rng.Int63n(5000)
	case p < 92:
		tx.Op = TPCCOrderStatus
	case p < 96:
		tx.Op = TPCCDelivery
	default:
		tx.Op = TPCCStockLevel
	}
	return tx
}
