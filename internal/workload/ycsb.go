package workload

import "memsnap/internal/sim"

// YCSBKind is one operation kind in the YCSB-style mixed workload.
type YCSBKind int

// YCSB operation kinds. The generator draws them from a configured
// ratio mix, so any of the standard YCSB core workloads (A: 50/50
// read/update, B: 95/5, C: read-only, F: read-modify-write) — and
// arbitrary custom mixes — come from one generator.
const (
	// YCSBRead reads an existing key.
	YCSBRead YCSBKind = iota
	// YCSBUpdate overwrites an existing key.
	YCSBUpdate
	// YCSBInsert writes a fresh key just past the loaded keyspace,
	// growing it (later reads/updates can then pick the new key).
	YCSBInsert
	// YCSBRMW reads an existing key and writes it back modified — the
	// workload-F read-modify-write transaction.
	YCSBRMW
)

// String implements fmt.Stringer.
func (k YCSBKind) String() string {
	switch k {
	case YCSBRead:
		return "READ"
	case YCSBUpdate:
		return "UPDATE"
	case YCSBInsert:
		return "INSERT"
	case YCSBRMW:
		return "READ_MODIFY_WRITE"
	}
	return "UNKNOWN"
}

// YCSBOp is one generated operation.
type YCSBOp struct {
	Kind YCSBKind
	// Key is the record id in [0, Records+inserts).
	Key int64
	// Value is the deterministic payload for writes (update, insert,
	// and the write half of RMW).
	Value uint64
}

// YCSBConfig parameterizes the mixed-ratio generator.
type YCSBConfig struct {
	// Records is the loaded keyspace size (default 4096).
	Records int64
	// ReadPct, UpdatePct, InsertPct, RMWPct are the operation mix in
	// percent; they must sum to 100 once filled (an all-zero mix
	// defaults to workload A: 50 read / 50 update).
	ReadPct, UpdatePct, InsertPct, RMWPct int
	// Theta is the zipfian skew exponent over the keyspace
	// (0 < Theta < 1; YCSB default 0.99 ~ hot-key heavy). Theta == 0
	// selects uniform key choice.
	Theta float64
}

func (c *YCSBConfig) fill() {
	if c.Records <= 0 {
		c.Records = 4096
	}
	if c.ReadPct == 0 && c.UpdatePct == 0 && c.InsertPct == 0 && c.RMWPct == 0 {
		c.ReadPct, c.UpdatePct = 50, 50
	}
}

// Standard YCSB core mixes (zipfian 0.99 unless noted).

// YCSBWorkloadA is the update-heavy mix: 50% read / 50% update.
func YCSBWorkloadA() YCSBConfig { return YCSBConfig{ReadPct: 50, UpdatePct: 50, Theta: 0.99} }

// YCSBWorkloadB is the read-mostly mix: 95% read / 5% update.
func YCSBWorkloadB() YCSBConfig { return YCSBConfig{ReadPct: 95, UpdatePct: 5, Theta: 0.99} }

// YCSBWorkloadC is read-only.
func YCSBWorkloadC() YCSBConfig { return YCSBConfig{ReadPct: 100, Theta: 0.99} }

// YCSBWorkloadD is read-latest: 95% read / 5% insert (the reads skew
// to recently inserted keys via the zipfian over a growing keyspace).
func YCSBWorkloadD() YCSBConfig { return YCSBConfig{ReadPct: 95, InsertPct: 5, Theta: 0.99} }

// YCSBWorkloadF is read-modify-write: 50% read / 50% RMW.
func YCSBWorkloadF() YCSBConfig { return YCSBConfig{ReadPct: 50, RMWPct: 50, Theta: 0.99} }

// YCSB generates a YCSB-style mixed-ratio KV workload with optional
// zipfian hot-key skew, deterministic from its seed. Inserts grow the
// keyspace; the zipfian sampler maps its rank space onto the current
// keyspace size so hot ranks stay hot as the space grows.
type YCSB struct {
	cfg      YCSBConfig
	rng      *sim.RNG
	zipf     *sim.Zipf
	inserted int64
}

// NewYCSB returns a generator for cfg seeded with seed.
func NewYCSB(seed uint64, cfg YCSBConfig) *YCSB {
	cfg.fill()
	y := &YCSB{cfg: cfg, rng: sim.NewRNG(seed)}
	if cfg.Theta > 0 {
		y.zipf = sim.NewZipf(cfg.Records, cfg.Theta)
	}
	return y
}

// Keys returns the current keyspace size (loaded records + inserts).
func (y *YCSB) Keys() int64 { return y.cfg.Records + y.inserted }

// pick selects an existing key: zipfian rank scaled onto the current
// keyspace, or uniform when Theta == 0.
func (y *YCSB) pick() int64 {
	n := y.Keys()
	if y.zipf == nil {
		return y.rng.Int63n(n)
	}
	k := y.zipf.Next(y.rng)
	if n != y.cfg.Records {
		// Scale the sampler's rank space onto the grown keyspace so
		// insert-heavy mixes keep a stationary skew without rebuilding
		// the sampler per insert.
		k = k * n / y.cfg.Records
		if k >= n {
			k = n - 1
		}
	}
	return k
}

// Next returns the next operation.
func (y *YCSB) Next() YCSBOp {
	p := y.rng.Intn(100)
	switch {
	case p < y.cfg.ReadPct:
		return YCSBOp{Kind: YCSBRead, Key: y.pick()}
	case p < y.cfg.ReadPct+y.cfg.UpdatePct:
		k := y.pick()
		return YCSBOp{Kind: YCSBUpdate, Key: k, Value: y.rng.Uint64() % (1 << 32)}
	case p < y.cfg.ReadPct+y.cfg.UpdatePct+y.cfg.InsertPct:
		k := y.cfg.Records + y.inserted
		y.inserted++
		return YCSBOp{Kind: YCSBInsert, Key: k, Value: y.rng.Uint64() % (1 << 32)}
	default:
		return YCSBOp{Kind: YCSBRMW, Key: y.pick(), Value: 1 + y.rng.Uint64()%997}
	}
}
