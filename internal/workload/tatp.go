package workload

import "memsnap/internal/sim"

// TATPOp enumerates the seven TATP transaction types.
type TATPOp int

// TATP transaction types with their standard mix percentages.
const (
	TATPGetSubscriberData    TATPOp = iota // 35%, read
	TATPGetNewDestination                  // 10%, read
	TATPGetAccessData                      // 35%, read
	TATPUpdateSubscriberData               // 2%, write
	TATPUpdateLocation                     // 14%, write
	TATPInsertCallForwarding               // 2%, write
	TATPDeleteCallForwarding               // 2%, write
)

// IsWrite reports whether the transaction type modifies the database.
func (op TATPOp) IsWrite() bool { return op >= TATPUpdateSubscriberData }

// String implements fmt.Stringer.
func (op TATPOp) String() string {
	switch op {
	case TATPGetSubscriberData:
		return "GET_SUBSCRIBER_DATA"
	case TATPGetNewDestination:
		return "GET_NEW_DESTINATION"
	case TATPGetAccessData:
		return "GET_ACCESS_DATA"
	case TATPUpdateSubscriberData:
		return "UPDATE_SUBSCRIBER_DATA"
	case TATPUpdateLocation:
		return "UPDATE_LOCATION"
	case TATPInsertCallForwarding:
		return "INSERT_CALL_FORWARDING"
	case TATPDeleteCallForwarding:
		return "DELETE_CALL_FORWARDING"
	}
	return "UNKNOWN"
}

// TATPTx is one generated TATP transaction.
type TATPTx struct {
	Op         TATPOp
	Subscriber int64
	// AIType/SFType parameterize the access-data and call-forwarding
	// transactions (1..4).
	AIType int
	// Location is the new location for UPDATE_LOCATION.
	Location int64
}

// TATP generates the telecom application transaction processing mix:
// 80% reads / 20% writes across subscriber records, used by SQLite's
// authors and Figure 5 of the paper.
type TATP struct {
	// Subscribers is the database size in records (paper: 1K-1M).
	Subscribers int64
	rng         *sim.RNG
}

// NewTATP returns a generator over the given subscriber count.
func NewTATP(seed uint64, subscribers int64) *TATP {
	if subscribers <= 0 {
		subscribers = 100000
	}
	return &TATP{Subscribers: subscribers, rng: sim.NewRNG(seed)}
}

// Next returns the next transaction, following the standard mix.
func (t *TATP) Next() TATPTx {
	p := t.rng.Intn(100)
	tx := TATPTx{
		Subscriber: t.rng.Int63n(t.Subscribers),
		AIType:     1 + t.rng.Intn(4),
		Location:   t.rng.Int63n(1 << 31),
	}
	switch {
	case p < 35:
		tx.Op = TATPGetSubscriberData
	case p < 45:
		tx.Op = TATPGetNewDestination
	case p < 80:
		tx.Op = TATPGetAccessData
	case p < 82:
		tx.Op = TATPUpdateSubscriberData
	case p < 96:
		tx.Op = TATPUpdateLocation
	case p < 98:
		tx.Op = TATPInsertCallForwarding
	default:
		tx.Op = TATPDeleteCallForwarding
	}
	return tx
}
