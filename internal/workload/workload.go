// Package workload generates the benchmark workloads used in the
// paper's evaluation: dbbench-style batched KV writes (SQLite §7.1),
// the TATP telecom mix (Figure 5), Meta's MixGraph (RocksDB §7.2),
// and sysbench TPC-C (PostgreSQL §7.3).
//
// All generators are deterministic from a seed.
package workload

import (
	"encoding/binary"
	"fmt"

	"memsnap/internal/sim"
)

// KV is one key-value pair.
type KV struct {
	Key   []byte
	Value []byte
}

// DBBench generates key-value writes batched into transactions of a
// configured byte size — the dbbench workload of §7.1: up to 1M keys
// with 128-byte values, batched sequentially or randomly into write
// transactions from 4 KiB to 1 MiB.
type DBBench struct {
	// Keys is the key-space size.
	Keys int64
	// ValueSize is the value length in bytes (paper: 128).
	ValueSize int
	// TxBytes is the transaction size in bytes (paper: 4 KiB-1 MiB).
	TxBytes int
	// Random selects random keys; otherwise keys are sequential.
	Random bool

	rng  *sim.RNG
	next int64
}

// NewDBBench returns a generator with the paper's defaults filled in.
func NewDBBench(seed uint64, keys int64, valueSize, txBytes int, random bool) *DBBench {
	if keys <= 0 {
		keys = 1 << 20
	}
	if valueSize <= 0 {
		valueSize = 128
	}
	if txBytes <= 0 {
		txBytes = 4096
	}
	return &DBBench{
		Keys:      keys,
		ValueSize: valueSize,
		TxBytes:   txBytes,
		Random:    random,
		rng:       sim.NewRNG(seed),
	}
}

// PairsPerTx returns how many KV pairs fit one transaction.
func (d *DBBench) PairsPerTx() int {
	per := d.TxBytes / (d.ValueSize + 16)
	if per < 1 {
		per = 1
	}
	return per
}

// NextTx returns the next write transaction's KV pairs.
func (d *DBBench) NextTx() []KV {
	n := d.PairsPerTx()
	kvs := make([]KV, n)
	for i := range kvs {
		var id int64
		if d.Random {
			id = d.rng.Int63n(d.Keys)
		} else {
			id = d.next % d.Keys
			d.next++
		}
		kvs[i] = KV{Key: Key16(id), Value: d.value(id)}
	}
	return kvs
}

func (d *DBBench) value(id int64) []byte {
	v := make([]byte, d.ValueSize)
	binary.LittleEndian.PutUint64(v, uint64(id))
	for i := 8; i < len(v); i++ {
		v[i] = byte(id + int64(i))
	}
	return v
}

// Key16 renders an id as a fixed-width 16-byte key (sortable).
func Key16(id int64) []byte {
	return []byte(fmt.Sprintf("%016d", id))
}

// MixGraphOp is one operation kind in the MixGraph workload.
type MixGraphOp int

// MixGraph operation kinds (84% Get, 14% Put, 3% Seek, normalized).
const (
	OpGet MixGraphOp = iota
	OpPut
	OpSeek
)

// MixGraph generates Meta's social-graph KV workload: uniformly
// distributed reads, Pareto-distributed writes, short range scans.
// Paper parameters: 20M keys, 48-byte keys, 100-byte values.
type MixGraph struct {
	Keys      int64
	KeySize   int
	ValueSize int

	rng *sim.RNG
}

// NewMixGraph returns the generator with the paper's parameters as
// defaults.
func NewMixGraph(seed uint64, keys int64) *MixGraph {
	if keys <= 0 {
		keys = 20 << 20
	}
	return &MixGraph{
		Keys:      keys,
		KeySize:   48,
		ValueSize: 100,
		rng:       sim.NewRNG(seed),
	}
}

// MixGraphRequest is one generated operation.
type MixGraphRequest struct {
	Op      MixGraphOp
	Key     []byte
	Value   []byte // Put only
	ScanLen int    // Seek only
}

// Next returns the next request.
func (m *MixGraph) Next() MixGraphRequest {
	p := m.rng.Float64() * 101 // 84 + 14 + 3
	switch {
	case p < 84:
		return MixGraphRequest{Op: OpGet, Key: m.key(m.rng.Int63n(m.Keys))}
	case p < 98:
		id := m.rng.Pareto(10, 0.2, m.Keys)
		return MixGraphRequest{Op: OpPut, Key: m.key(id), Value: m.val(id)}
	default:
		return MixGraphRequest{Op: OpSeek, Key: m.key(m.rng.Int63n(m.Keys)), ScanLen: 10 + m.rng.Intn(90)}
	}
}

func (m *MixGraph) key(id int64) []byte {
	k := make([]byte, m.KeySize)
	copy(k, fmt.Sprintf("%024d", id))
	for i := 24; i < m.KeySize; i++ {
		k[i] = byte('a' + (id+int64(i))%26)
	}
	return k
}

func (m *MixGraph) val(id int64) []byte {
	v := make([]byte, m.ValueSize)
	binary.LittleEndian.PutUint64(v, uint64(id))
	return v
}
