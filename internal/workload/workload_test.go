package workload

import (
	"bytes"
	"testing"
)

func TestDBBenchSequentialKeys(t *testing.T) {
	d := NewDBBench(1, 1000, 128, 4096, false)
	tx := d.NextTx()
	if len(tx) != d.PairsPerTx() {
		t.Fatalf("tx size = %d", len(tx))
	}
	if string(tx[0].Key) != "0000000000000000" {
		t.Fatalf("first key = %q", tx[0].Key)
	}
	if string(tx[1].Key) != "0000000000000001" {
		t.Fatalf("second key = %q", tx[1].Key)
	}
	for _, kv := range tx {
		if len(kv.Value) != 128 {
			t.Fatalf("value size = %d", len(kv.Value))
		}
	}
}

func TestDBBenchRandomDeterministic(t *testing.T) {
	a := NewDBBench(7, 1000, 128, 4096, true)
	b := NewDBBench(7, 1000, 128, 4096, true)
	ta, tb := a.NextTx(), b.NextTx()
	for i := range ta {
		if !bytes.Equal(ta[i].Key, tb[i].Key) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDBBenchTxBytes(t *testing.T) {
	// A 64 KiB transaction with 128 B values holds ~455 pairs.
	d := NewDBBench(1, 1<<20, 128, 64<<10, false)
	if got := d.PairsPerTx(); got < 400 || got > 512 {
		t.Fatalf("pairs per 64 KiB tx = %d", got)
	}
	// Tiny transactions still carry at least one pair.
	d2 := NewDBBench(1, 100, 128, 1, false)
	if d2.PairsPerTx() != 1 {
		t.Fatalf("minimum pairs = %d", d2.PairsPerTx())
	}
}

func TestMixGraphMix(t *testing.T) {
	m := NewMixGraph(3, 100000)
	counts := map[MixGraphOp]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		req := m.Next()
		counts[req.Op]++
		if len(req.Key) != 48 {
			t.Fatalf("key size = %d", len(req.Key))
		}
		switch req.Op {
		case OpPut:
			if len(req.Value) != 100 {
				t.Fatalf("value size = %d", len(req.Value))
			}
		case OpSeek:
			if req.ScanLen <= 0 {
				t.Fatal("seek without scan length")
			}
		}
	}
	getFrac := float64(counts[OpGet]) / n
	putFrac := float64(counts[OpPut]) / n
	seekFrac := float64(counts[OpSeek]) / n
	if getFrac < 0.80 || getFrac > 0.86 {
		t.Fatalf("get fraction = %.3f", getFrac)
	}
	if putFrac < 0.11 || putFrac > 0.17 {
		t.Fatalf("put fraction = %.3f", putFrac)
	}
	if seekFrac < 0.01 || seekFrac > 0.05 {
		t.Fatalf("seek fraction = %.3f", seekFrac)
	}
}

func TestMixGraphWriteSkew(t *testing.T) {
	// Puts follow a Pareto distribution: a small fraction of the key
	// space receives most writes.
	m := NewMixGraph(5, 1<<20)
	writes := map[string]int{}
	for i := 0; i < 200000; i++ {
		if req := m.Next(); req.Op == OpPut {
			writes[string(req.Key)]++
		}
	}
	var hot int
	for _, c := range writes {
		if c > 1 {
			hot++
		}
	}
	if hot == 0 {
		t.Fatal("no hot keys in Pareto-distributed writes")
	}
}

func TestTATPMix(t *testing.T) {
	g := NewTATP(11, 100000)
	counts := map[TATPOp]int{}
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		tx := g.Next()
		counts[tx.Op]++
		if tx.Op.IsWrite() {
			writes++
		}
		if tx.Subscriber < 0 || tx.Subscriber >= 100000 {
			t.Fatalf("subscriber out of range: %d", tx.Subscriber)
		}
		if tx.AIType < 1 || tx.AIType > 4 {
			t.Fatalf("ai_type = %d", tx.AIType)
		}
	}
	writeFrac := float64(writes) / n
	if writeFrac < 0.18 || writeFrac > 0.22 {
		t.Fatalf("write fraction = %.3f, want ~0.20", writeFrac)
	}
	if frac := float64(counts[TATPGetSubscriberData]) / n; frac < 0.32 || frac > 0.38 {
		t.Fatalf("GET_SUBSCRIBER_DATA fraction = %.3f", frac)
	}
}

func TestTPCCMix(t *testing.T) {
	g := NewTPCC(13, 150)
	counts := map[TPCCOp]int{}
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		tx := g.Next()
		counts[tx.Op]++
		if tx.Op.IsWrite() {
			writes++
		}
		if tx.Warehouse < 0 || tx.Warehouse >= 150 {
			t.Fatalf("warehouse = %d", tx.Warehouse)
		}
		if tx.Op == TPCCNewOrder {
			if len(tx.Items) < 5 || len(tx.Items) > 15 {
				t.Fatalf("order lines = %d", len(tx.Items))
			}
		}
	}
	// ~92% of transactions write under the sysbench mix; the paper
	// describes TPC-C as a heavily write OLTP benchmark.
	writeFrac := float64(writes) / n
	if writeFrac < 0.88 || writeFrac > 0.96 {
		t.Fatalf("write fraction = %.3f", writeFrac)
	}
	if float64(counts[TPCCNewOrder])/n < 0.40 {
		t.Fatalf("NEW_ORDER fraction = %.3f", float64(counts[TPCCNewOrder])/n)
	}
}

func TestKey16Sortable(t *testing.T) {
	if !(string(Key16(5)) < string(Key16(50))) {
		t.Fatal("Key16 not sortable")
	}
	if len(Key16(123)) != 16 {
		t.Fatal("Key16 length")
	}
}
