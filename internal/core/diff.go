package core

import (
	"encoding/binary"

	"memsnap/internal/pool"
)

// Sub-page delta capture: while capture is enabled, a Context retains a
// pooled copy of the last captured content of every page it commits
// (the pre-image store). At the next capture of the same page the
// retained copy becomes the CommittedPage's pre-image — filled at
// capture time, never re-faulted — and a byte-range diff against it is
// computed on the spot, so replication can ship only the bytes that
// actually changed. Pages without a retained pre-image (first capture,
// post-recovery context, budget eviction) carry a nil Prev and ship
// whole.

// Extent is one modified byte range of a captured page, relative to
// the page start. PageSize fits in uint16 for both fields.
type Extent struct {
	Off uint16
	Len uint16
}

const (
	// maxDiffExtents caps the extent list of one page; a diff more
	// fragmented than this collapses to a single spanning extent.
	maxDiffExtents = 96
	// diffMergeGap merges modified runs separated by fewer than this
	// many equal bytes: extent framing overhead would exceed the bytes
	// saved.
	diffMergeGap = 16
	// DefaultPreImagePages bounds the pre-image store per (context,
	// region): FIFO eviction beyond it drops the oldest page's
	// pre-image, forcing its next capture to ship whole.
	DefaultPreImagePages = 1024
)

// extentsPool recycles per-page extent lists.
var extentsPool = pool.NewSlicePool[Extent]()

// GetExtents returns a pooled zero-length extent list.
//
//memsnap:owns
func GetExtents() []Extent { return extentsPool.Get(16) }

// ReleaseExtents recycles an extent list. Safe on nil.
func ReleaseExtents(e []Extent) {
	if e != nil {
		extentsPool.Put(e)
	}
}

// CaptureExtentStats snapshots the extent pool (the leak-check hook
// companion of CapturePoolStats).
func CaptureExtentStats() pool.Stats { return extentsPool.Stats() }

// DiffExtents appends the modified byte ranges of cur relative to prev
// to dst (usually a pooled list from GetExtents). The two slices must
// have equal length. Runs closer than diffMergeGap coalesce; a result
// that would exceed maxDiffExtents collapses to one extent spanning
// the first to the last modified byte. An identical page yields an
// empty (but non-nil when dst was non-nil) list.
//
//memsnap:hotpath
func DiffExtents(prev, cur []byte, dst []Extent) []Extent {
	n := len(cur)
	i := 0
	for i < n {
		// Skip equal bytes, 8 at a time while aligned chunks remain.
		for i+8 <= n {
			if binary.LittleEndian.Uint64(prev[i:]) != binary.LittleEndian.Uint64(cur[i:]) {
				break
			}
			i += 8
		}
		for i < n && prev[i] == cur[i] {
			i++
		}
		if i >= n {
			break
		}
		start := i
		// Extend the modified run, absorbing equal gaps shorter than
		// diffMergeGap.
		end := i + 1
		for j := end; j < n; {
			if prev[j] != cur[j] {
				end = j + 1
				j++
				continue
			}
			// Count the equal run.
			k := j
			for k < n && k-j < diffMergeGap && prev[k] == cur[k] {
				k++
			}
			if k-j >= diffMergeGap || k == n {
				break
			}
			j = k
		}
		if len(dst) >= maxDiffExtents {
			// Too fragmented: collapse everything seen so far plus the
			// rest of the page's modifications into one spanning extent.
			first := int(dst[0].Off)
			last := end
			for j := end; j < n; j++ {
				if prev[j] != cur[j] {
					last = j + 1
				}
			}
			dst = dst[:0]
			dst = append(dst, Extent{Off: uint16(first), Len: uint16(last - first)})
			return dst
		}
		dst = append(dst, Extent{Off: uint16(start), Len: uint16(end - start)})
		i = end
	}
	return dst
}

// prevStore is one region's retained pre-image set: a dense
// page-index-to-buffer table plus a fixed-capacity FIFO ring of
// resident indices for deterministic eviction.
type prevStore struct {
	region  *Region
	pages   []*pool.Page
	ring    []int32
	head, n int
}

// swap stores newPg as the retained copy of page idx and returns the
// previous retained copy (nil when idx had none). Inserting a new
// index past the ring capacity evicts — releases — the oldest resident
// page's pre-image.
//
//memsnap:owns
func (ps *prevStore) swap(idx int64, newPg *pool.Page) *pool.Page {
	old := ps.pages[idx]
	ps.pages[idx] = newPg
	if old != nil {
		return old
	}
	if ps.n == len(ps.ring) {
		ev := ps.ring[ps.head]
		if ps.pages[ev] != nil {
			ps.pages[ev].Release()
			ps.pages[ev] = nil
		}
		ps.ring[ps.head] = int32(idx)
		ps.head++
		if ps.head == len(ps.ring) {
			ps.head = 0
		}
		return nil
	}
	tail := ps.head + ps.n
	if tail >= len(ps.ring) {
		tail -= len(ps.ring)
	}
	ps.ring[tail] = int32(idx)
	ps.n++
	return nil
}

// drop releases every retained pre-image and empties the store.
func (ps *prevStore) drop() {
	for i, pg := range ps.pages {
		if pg != nil {
			pg.Release()
			ps.pages[i] = nil
		}
	}
	ps.head, ps.n = 0, 0
}

// prevStoreFor returns (building on first use) the context's pre-image
// store for region r. The linear scan mirrors the regionWrites lookup:
// a context touches at most a handful of regions.
func (ctx *Context) prevStoreFor(r *Region) *prevStore {
	for _, ps := range ctx.prevStores {
		if ps.region == r {
			return ps
		}
	}
	npages := int(r.Len() / PageSize)
	budget := ctx.preImageBudget
	if budget <= 0 {
		budget = DefaultPreImagePages
	}
	if budget > npages {
		budget = npages
	}
	//lint:allow hotalloc one-time per (context, region) store construction
	ps := &prevStore{region: r}
	//lint:allow hotalloc one-time per (context, region) dense page table
	ps.pages = make([]*pool.Page, npages)
	//lint:allow hotalloc one-time per (context, region) eviction ring
	ps.ring = make([]int32, budget)
	ctx.prevStores = append(ctx.prevStores, ps)
	return ps
}

// SetPreImageBudget bounds the pre-image store (in pages) for regions
// whose store has not been built yet; n <= 0 restores the default.
// Intended for tests exercising the eviction fallback.
func (ctx *Context) SetPreImageBudget(n int) { ctx.preImageBudget = n }

// dropPreImages releases every retained pre-image across the context's
// stores (capture disable, worker shutdown).
func (ctx *Context) dropPreImages() {
	for _, ps := range ctx.prevStores {
		ps.drop()
	}
}
